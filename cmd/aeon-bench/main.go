// Command aeon-bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	aeon-bench -exp fig5a            # one experiment
//	aeon-bench -exp all -quick       # everything, CI-speed
//	aeon-bench -list                 # available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"aeon/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aeon-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment to run (or 'all')")
		quick    = flag.Bool("quick", false, "shrink sweeps and durations")
		duration = flag.Duration("duration", 0, "override per-point measurement duration")
		seed     = flag.Int64("seed", 1, "workload seed")
		list     = flag.Bool("list", false, "list experiments and exit")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.Experiments(), "\n"))
		return nil
	}
	opts := bench.Options{
		Quick:    *quick,
		Duration: *duration,
		Seed:     *seed,
		Verbose:  true,
		Out:      os.Stderr,
	}
	names := []string{*exp}
	if *exp == "all" {
		names = bench.Experiments()
	}
	for _, name := range names {
		start := time.Now()
		tables, err := bench.Run(name, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		for _, t := range tables {
			if *csv {
				fmt.Printf("# %s\n%s", t.Title, t.CSV())
			} else {
				t.Fprint(os.Stdout)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
