// Command aeon-bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	aeon-bench -exp fig5a            # one experiment
//	aeon-bench -exp all -quick       # everything, CI-speed
//	aeon-bench -list                 # available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"aeon/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aeon-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment to run (or 'all')")
		quick    = flag.Bool("quick", false, "shrink sweeps and durations")
		duration = flag.Duration("duration", 0, "override per-point measurement duration")
		seed     = flag.Int64("seed", 1, "workload seed")
		list     = flag.Bool("list", false, "list experiments and exit")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut  = flag.String("json", "", "also write a machine-readable report to this file (e.g. BENCH_1.json)")
		label    = flag.String("label", "", "label recorded in the JSON report")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "aeon-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "aeon-bench: memprofile:", err)
			}
		}()
	}

	if *list {
		fmt.Println(strings.Join(bench.Experiments(), "\n"))
		return nil
	}
	opts := bench.Options{
		Quick:    *quick,
		Duration: *duration,
		Seed:     *seed,
		Verbose:  true,
		Out:      os.Stderr,
	}
	var names []string
	if *exp == "all" {
		names = bench.Experiments()
	} else {
		for _, n := range strings.Split(*exp, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	report := bench.NewJSONReport(*label, *quick)
	writeReport := func() error {
		if *jsonOut == "" || len(report.Experiments) == 0 {
			return nil
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.Write(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[json report written to %s]\n", *jsonOut)
		return nil
	}
	for _, name := range names {
		start := time.Now()
		tables, err := bench.Run(name, opts)
		if err != nil {
			// Preserve the experiments that already finished: a failure late
			// in a long sweep must not discard hours of measurement.
			if werr := writeReport(); werr != nil {
				fmt.Fprintln(os.Stderr, "aeon-bench:", werr)
			}
			return fmt.Errorf("%s: %w", name, err)
		}
		report.Add(name, tables)
		for _, t := range tables {
			if *csv {
				fmt.Printf("# %s\n%s", t.Title, t.CSV())
			} else {
				t.Fprint(os.Stdout)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
	return writeReport()
}
