// Command aeon-game deploys the paper's MMO game application on a chosen
// system variant and drives it with closed-loop clients, printing live
// throughput/latency — handy for eyeballing the behaviour behind
// Figures 5a/5b.
//
// Usage:
//
//	aeon-game -system AEON -servers 8 -clients 128 -duration 10s
//	aeon-game -system EventWave -servers 8 -clients 128
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/game"
	"aeon/internal/transport"
	"aeon/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aeon-game:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		system   = flag.String("system", "AEON", "AEON | AEON_SO | EventWave | Orleans | Orleans*")
		servers  = flag.Int("servers", 8, "number of servers")
		clients  = flag.Int("clients", 128, "closed-loop clients")
		duration = flag.Duration("duration", 10*time.Second, "run duration")
		players  = flag.Int("players", 8, "players per room")
	)
	flag.Parse()

	cfg := game.DefaultConfig()
	cfg.Rooms = *servers
	cfg.PlayersPerRoom = *players
	cfg.Mix = game.OpMix{PrivateGoldPct: 70, InteractPct: 20, CountPct: 10}

	cl := cluster.New(transport.NewSim(transport.DefaultSimConfig()))
	for i := 0; i < *servers; i++ {
		cl.AddServer(cluster.M3Large)
	}

	var (
		app game.App
		err error
	)
	switch *system {
	case "AEON":
		app, err = game.BuildAEON(cl, cfg, false)
	case "AEON_SO":
		app, err = game.BuildAEON(cl, cfg, true)
	case "EventWave":
		app, err = game.BuildEventWave(cl, cfg)
	case "Orleans":
		app, err = game.BuildOrleans(cl, cfg, false)
	case "Orleans*":
		app, err = game.BuildOrleans(cl, cfg, true)
	default:
		return fmt.Errorf("unknown system %q", *system)
	}
	if err != nil {
		return err
	}
	defer app.Close()

	fmt.Printf("%s: %d servers, %d rooms × %d players, %d clients, %v\n",
		app.Name(), *servers, cfg.Rooms, cfg.PlayersPerRoom, *clients, *duration)
	res := workload.RunClosedLoop(app.DoOp, *clients, 0, *duration, 1)
	if res.Errors > 0 {
		return fmt.Errorf("%d op errors", res.Errors)
	}
	fmt.Printf("throughput: %.0f events/s\nlatency:    %s\n", res.Throughput, res.Latency)
	return nil
}
