// Command aeon-node runs one AEON server as an OS process attached to the
// TCP transport mesh, so a deployment of N processes serves one logical
// AEON system (multi-process deployment; see README "Multi-process
// deployment").
//
// Every process is launched from the same flags and deterministically
// rebuilds the same topology, so context IDs and placements agree without
// coordination; each process then embodies the server matching its -id.
// Node 1 (by default) also serves the authoritative cloud store to its
// peers.
//
// Serve two nodes on loopback, then drive cross-node traffic and a live
// migration from node 1:
//
//	aeon-node -id 2 -peers "1=127.0.0.1:7101,2=127.0.0.1:7102" &
//	aeon-node -id 1 -peers "1=127.0.0.1:7101,2=127.0.0.1:7102" -drive
//
// With the sharded, replicated store plane, dedicated store-server
// processes replace the store-serving node: store replica k appears in
// -peers as "s<k>=host:port", partition p is served by the StoreRF-replica
// set s(3p+1)..s(3p+3) (boot primary first; writes are acknowledged only
// once a majority of the set holds them), and -store-parts tells the nodes
// how many partitions the plane has. A 1-partition plane on loopback:
//
//	aeon-node -serve-store 1 -peers "$P" &
//	aeon-node -serve-store 2 -peers "$P" &
//	aeon-node -serve-store 3 -peers "$P" &
//	aeon-node -id 2 -peers "$P" -store-parts 1 &
//	aeon-node -id 1 -peers "$P" -store-parts 1 -drive
//
// where P="1=127.0.0.1:7101,2=127.0.0.1:7102,s1=127.0.0.1:7201,s2=127.0.0.1:7202,s3=127.0.0.1:7203".
//
// -drive replays a deterministic bank workload across the deployment,
// compares every result with a single-process oracle run, migrates the last
// node's bank group onto server 1 over the mesh (verifying the transferred
// state and the NIC accounting), and finally shuts the peers down. A
// non-zero exit means the multi-process run diverged from single-process
// semantics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/emanager"
	"aeon/internal/ingress"
	"aeon/internal/node"
	"aeon/internal/ops"
	"aeon/internal/ownership"
	"aeon/internal/transport"
	"aeon/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aeon-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id         = flag.Int("id", 1, "this node's ID (also the server it embodies)")
		listen     = flag.String("listen", "", "listen address (defaults to this process's -peers entry)")
		peers      = flag.String("peers", "1=127.0.0.1:7101", "comma-separated id=host:port peer list (including this process; store servers as s<k>=host:port)")
		workloadF  = flag.String("workload", "bank", "workload to host (bank, or a scenario: iot, social)")
		accounts   = flag.Int("accounts", 4, "accounts per bank (bank workload)")
		balance    = flag.Int("balance", 1000, "initial balance per account")
		storeID    = flag.Int("store", 1, "node serving the authoritative cloud store (ignored with -store-parts)")
		storeParts = flag.Int("store-parts", 0, "partitions of the sharded store plane; partition p is served by the replica set s<3p+1>..s<3p+3> (boot primary first); 0 = single store node (-store)")
		serveStore = flag.Int("serve-store", 0, "run as dedicated store server k (mesh address s<k>) instead of an AEON node")
		storeBack  = flag.String("store-backend", "memory", "store server backend: memory, or disk:<dir> (only with -serve-store)")
		drive      = flag.Bool("drive", false, "drive the smoke workload against the deployment, then shut peers down")
		repl       = flag.Bool("replicate", true, "sequence runtime topology mutations through the replicated mutation log (dynamic topologies)")
		admin      = flag.String("admin", "", "serve the ops admin plane (/healthz, /metrics, /events, /debug/pprof) on host:port")
		adminPeers = flag.String("admin-peers", "", "comma-separated id=host:port peer admin addresses; with -drive, the smoke phase curls every one and verifies a cross-node trace")
	)
	flag.Parse()

	addrs, nodeCount, storeCount, err := parsePeers(*peers)
	if err != nil {
		return err
	}
	// Scenario workloads (internal/workload) rebuild deterministically on
	// every process, exactly like the bank: same flags, same IDs.
	var scen workload.Scenario
	if *workloadF != "bank" {
		scen, err = workload.NewScenario(*workloadF, nodeCount)
		if err != nil {
			return fmt.Errorf("unknown workload %q (have: bank, %v)",
				*workloadF, strings.Join(workload.ScenarioNames(), ", "))
		}
	}

	if *serveStore > 0 {
		return runStoreServer(addrs, *serveStore, *listen, *storeBack, *admin)
	}

	self := transport.NodeID(*id)
	if _, ok := addrs[self]; !ok && *listen == "" {
		return fmt.Errorf("node %d not in -peers and no -listen given", *id)
	}
	if *listen != "" {
		addrs[self] = *listen
	}
	if *storeParts > 0 && storeCount < node.StoreRF**storeParts {
		return fmt.Errorf("-store-parts %d needs %d store servers (s1..s%d) in -peers, have %d",
			*storeParts, node.StoreRF**storeParts, node.StoreRF**storeParts, storeCount)
	}

	// Deterministic replica: every process builds the same cluster and bank
	// topology, then embodies only its own server. Store servers host no
	// AEON servers, so they don't count toward the cluster.
	cl := cluster.New(transport.NewSim(transport.SimConfig{}))
	for i := 0; i < nodeCount; i++ {
		cl.AddServer(cluster.M3Large)
	}
	s := node.BankSchema()
	if scen != nil {
		s = scen.Schema()
	}
	if err := s.Freeze(); err != nil {
		return err
	}
	rtCfg := core.DefaultConfig()
	rtCfg.ChargeClientHops = false
	rt, err := core.New(s, ownership.NewGraph(), cl, rtCfg)
	if err != nil {
		return err
	}
	defer rt.Close()
	var top *node.BankTopology
	if scen != nil {
		if err := scen.Build(rt); err != nil {
			return err
		}
	} else {
		top, err = node.BuildBank(rt, *accounts, *balance)
		if err != nil {
			return err
		}
	}

	mesh := transport.NewTCPMesh()
	for pid, addr := range addrs {
		mesh.Register(pid, addr)
	}
	var peerIDs []transport.NodeID
	for pid := range addrs {
		if pid < node.StoreIDBase {
			peerIDs = append(peerIDs, pid)
		}
	}
	cfg := node.Config{
		ID:         self,
		Runtime:    rt,
		LocalStore: cloudstore.New(),
		Manager:    emanager.DefaultConfig(),
		Replicate:  *repl,
		Peers:      peerIDs,
	}
	if *storeParts > 0 {
		// Same derivation on every process: partition p's replica set is
		// s(3p+1)..s(3p+3) — boot primary first, failover in epoch order.
		for p := 0; p < *storeParts; p++ {
			ids := make([]transport.NodeID, node.StoreRF)
			for r := 0; r < node.StoreRF; r++ {
				ids[r] = node.StoreIDBase + transport.NodeID(node.StoreRF*p+r+1)
			}
			cfg.StoreReplicas = append(cfg.StoreReplicas, node.StorePartition{Replicas: ids})
		}
	} else {
		cfg.StoreNode = transport.NodeID(*storeID)
	}
	var reg *ops.Registry
	if *admin != "" {
		reg = ops.NewRegistry(0)
		cfg.Ops = reg
	}
	n, err := node.Start(mesh, cfg)
	if err != nil {
		return err
	}
	defer n.Close()
	if reg != nil {
		adm, err := ops.ServeAdmin(*admin, reg)
		if err != nil {
			return fmt.Errorf("-admin %s: %w", *admin, err)
		}
		defer adm.Close()
		fmt.Printf("aeon-node %d admin plane on http://%s\n", *id, adm.Addr())
	}
	if *storeParts > 0 {
		fmt.Printf("aeon-node %d listening on %s (%d-node deployment, %d-partition store plane)\n",
			*id, addrs[self], nodeCount, *storeParts)
	} else {
		fmt.Printf("aeon-node %d listening on %s (%d-node deployment, store on node %d)\n",
			*id, addrs[self], nodeCount, *storeID)
	}
	if p := n.Plane(); p != nil {
		if err := p.LastError(); err != nil {
			// Normal when the store node boots after this one (the tailer
			// keeps retrying); a persisting message means a wedged replica.
			fmt.Printf("aeon-node %d: replication catch-up pending: %v\n", *id, err)
		}
	}

	if *drive {
		if scen != nil {
			return runDriveScenario(n, scen, *workloadF, nodeCount, addrs)
		}
		return runDrive(n, mesh, top, addrs, *accounts, *balance, *repl, reg, *admin, *adminPeers)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-n.Done():
		fmt.Printf("aeon-node %d: shutdown requested by peer\n", *id)
	case <-sig:
		fmt.Printf("aeon-node %d: signal received\n", *id)
	}
	return nil
}

// runStoreServer runs this process as dedicated store server k: a mesh
// attachment at s<k> serving the cloud-store wire protocol from the given
// backend, until a peer sends shutdown or the process is signalled.
func runStoreServer(addrs map[transport.NodeID]string, k int, listen, backendSpec, admin string) error {
	self := node.StoreIDBase + transport.NodeID(k)
	if _, ok := addrs[self]; !ok && listen == "" {
		return fmt.Errorf("store server s%d not in -peers and no -listen given", k)
	}
	if listen != "" {
		addrs[self] = listen
	}
	be, err := cloudstore.Open(backendSpec)
	if err != nil {
		return fmt.Errorf("-store-backend %q: %w", backendSpec, err)
	}
	defer be.Close()

	mesh := transport.NewTCPMesh()
	for pid, addr := range addrs {
		mesh.Register(pid, addr)
	}
	srv, err := node.ServeStore(mesh, self, be)
	if err != nil {
		return err
	}
	defer srv.Close()
	if admin != "" {
		reg := ops.NewRegistry(0)
		srv.RegisterOps(reg)
		adm, err := ops.ServeAdmin(admin, reg)
		if err != nil {
			return fmt.Errorf("-admin %s: %w", admin, err)
		}
		defer adm.Close()
		fmt.Printf("aeon-node store server s%d admin plane on http://%s\n", k, adm.Addr())
	}
	fmt.Printf("aeon-node store server s%d listening on %s (backend %s)\n", k, addrs[self], backendSpec)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-srv.Done():
		fmt.Printf("aeon-node store server s%d: shutdown requested by peer\n", k)
	case <-sig:
		fmt.Printf("aeon-node store server s%d: signal received\n", k)
	}
	return nil
}

// parsePeers parses "1=host:port,2=host:port,s1=host:port". Plain entries
// are AEON nodes and must be contiguous 1..N; "s<k>" entries are store
// servers (mesh address StoreIDBase+k) and must be contiguous s1..sM.
func parsePeers(spec string) (addrs map[transport.NodeID]string, nodeCount, storeCount int, err error) {
	addrs = make(map[transport.NodeID]string)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, 0, 0, fmt.Errorf("bad peer entry %q (want id=host:port)", part)
		}
		key, base := kv[0], transport.NodeID(0)
		if strings.HasPrefix(key, "s") {
			key, base = key[1:], node.StoreIDBase
		}
		pid, err := strconv.Atoi(key)
		if err != nil || pid <= 0 {
			return nil, 0, 0, fmt.Errorf("bad peer id %q", kv[0])
		}
		addrs[base+transport.NodeID(pid)] = kv[1]
		if base == 0 {
			nodeCount++
		} else {
			storeCount++
		}
	}
	for i := 1; i <= nodeCount; i++ {
		if _, ok := addrs[transport.NodeID(i)]; !ok {
			return nil, 0, 0, fmt.Errorf("peer IDs must be contiguous 1..%d (missing %d)", nodeCount, i)
		}
	}
	for i := 1; i <= storeCount; i++ {
		if _, ok := addrs[node.StoreIDBase+transport.NodeID(i)]; !ok {
			return nil, 0, 0, fmt.Errorf("store server IDs must be contiguous s1..s%d (missing s%d)", storeCount, i)
		}
	}
	return addrs, nodeCount, storeCount, nil
}

// runDrive is the smoke driver: wait for the peers, replay the bank script
// across the deployment, compare with the single-process oracle, migrate a
// remote bank group over the mesh, verify the transferred state, replay the
// dynamic-topology script (runtime context creation on every process,
// sequenced through the replicated mutation log), drive pipelined traffic
// from an external ingress client, and shut everything down.
func runDrive(n *node.Node, mesh transport.Mesh, top *node.BankTopology, addrs map[transport.NodeID]string, accounts, balance int, replicate bool, reg *ops.Registry, adminSelf, adminPeerSpec string) error {
	var peerIDs, storeIDs []transport.NodeID
	for pid := range addrs {
		switch {
		case pid >= node.StoreIDBase:
			storeIDs = append(storeIDs, pid)
		case pid != n.ID():
			peerIDs = append(peerIDs, pid)
		}
	}
	sort.Slice(peerIDs, func(i, j int) bool { return peerIDs[i] < peerIDs[j] })
	sort.Slice(storeIDs, func(i, j int) bool { return storeIDs[i] < storeIDs[j] })

	// Peers (and store servers — they answer the same pings) may still be
	// binding their listeners.
	deadline := time.Now().Add(15 * time.Second)
	for _, pid := range append(append([]transport.NodeID(nil), peerIDs...), storeIDs...) {
		for {
			if err := n.Ping(pid); err == nil {
				break
			} else if time.Now().After(deadline) {
				return fmt.Errorf("peer %v never became reachable: %w", pid, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	fmt.Printf("drive: %d peers reachable (%d store servers)\n", len(peerIDs)+len(storeIDs), len(storeIDs))
	shutdownPeers := func() {
		// Nodes first, store servers last: a shutting-down node may still
		// flush through the store plane.
		for _, pid := range append(append([]transport.NodeID(nil), peerIDs...), storeIDs...) {
			if err := n.Shutdown(pid); err != nil {
				fmt.Fprintf(os.Stderr, "drive: shutdown %v: %v\n", pid, err)
			}
		}
	}

	// Phase 1: the deterministic script, every op submitted at this node,
	// so every other bank's ops cross the mesh. Results must be identical
	// to a single-process run.
	got := node.RunBankScript(n.Submit, top)
	want, wantDynamic, err := node.BankDynamicOracle(len(top.Banks), accounts, balance)
	if err != nil {
		shutdownPeers()
		return err
	}
	if err := diffResults("script", got, want); err != nil {
		shutdownPeers()
		return err
	}
	fmt.Printf("drive: %d script results identical to single-process run\n", len(got))

	// Phase 2: live migration over the mesh — move the last node's bank
	// group onto this node's server and verify the state arrived.
	if len(peerIDs) > 0 {
		src := peerIDs[len(peerIDs)-1]
		bankIdx := int(src) - 1
		bank := top.Banks[bankIdx]
		preAudit, err := n.Submit(bank, "audit")
		if err != nil {
			shutdownPeers()
			return fmt.Errorf("pre-migration audit: %w", err)
		}
		if err := n.MigrateRemote(src, bank, cluster.ServerID(n.ID())); err != nil {
			shutdownPeers()
			return fmt.Errorf("commanded migration from node %v: %w", src, err)
		}
		fwdBefore := n.Forwarded()
		postAudit, err := n.Submit(bank, "audit")
		if err != nil {
			shutdownPeers()
			return fmt.Errorf("post-migration audit: %w", err)
		}
		if preAudit.(int) != postAudit.(int) {
			shutdownPeers()
			return fmt.Errorf("migration changed the audit total: %d → %d", preAudit, postAudit)
		}
		if n.Forwarded() != fwdBefore {
			shutdownPeers()
			return fmt.Errorf("post-migration audit still crossed the mesh")
		}
		srv, ok := n.Runtime().Cluster().Server(cluster.ServerID(n.ID()))
		if !ok || srv.TransferBytes() == 0 {
			shutdownPeers()
			return fmt.Errorf("no migration state bytes arrived over the mesh")
		}
		fmt.Printf("drive: migrated bank %v from node %v over the mesh (%d state bytes, audit total %d preserved)\n",
			bank, src, srv.TransferBytes(), postAudit)
	}

	// Phase 3: runtime topology churn — open a fresh account at every bank
	// (creations execute on whichever process hosts the bank, so every peer
	// captures mutations into the replicated log), deposit into the new
	// accounts by their returned IDs, and audit. Results — including the
	// log-assigned context IDs — must match the single-process oracle,
	// which pins fleet-wide ID-assignment determinism.
	if replicate {
		gotDynamic := node.RunBankDynamicScript(n.Submit, top)
		if err := diffResults("dynamic script", gotDynamic, wantDynamic); err != nil {
			shutdownPeers()
			return err
		}
		fmt.Printf("drive: %d runtime-topology results identical to single-process run (replication plane at seq %d)\n",
			len(gotDynamic), n.Plane().Applied())
	}

	// Phase 4: external ingress — a client outside the fleet attaches to the
	// mesh, pipelines deposits over multiplexed connections, and repairs its
	// routing cache from authoritative responses (including the route the
	// phase-2 migration made stale). Submits are traced, so phase 5 can find
	// the forwarding hops in the fleet's event feeds.
	if err := driveIngress(n, mesh, top, reg); err != nil {
		shutdownPeers()
		return fmt.Errorf("ingress: %w", err)
	}

	// Phase 5: admin-plane smoke — curl every admin endpoint in the fleet
	// (liveness, Prometheus exposition, event feed) and verify at least one
	// trace from phase 4 shows spans on two or more forwarding hops.
	if adminSelf != "" || adminPeerSpec != "" {
		if err := driveAdminSmoke(adminSelf, adminPeerSpec); err != nil {
			shutdownPeers()
			return fmt.Errorf("admin smoke: %w", err)
		}
	}

	shutdownPeers()
	fmt.Println("drive: OK")
	return nil
}

// runDriveScenario replays a scenario workload's deterministic script at
// this node — every op targeting a peer-hosted context crosses the mesh —
// and diffs the transcript against the single-process oracle, then shuts
// the fleet down. The node layer must be semantically invisible.
func runDriveScenario(n *node.Node, scen workload.Scenario, name string, servers int, addrs map[transport.NodeID]string) error {
	var peerIDs, storeIDs []transport.NodeID
	for pid := range addrs {
		switch {
		case pid >= node.StoreIDBase:
			storeIDs = append(storeIDs, pid)
		case pid != n.ID():
			peerIDs = append(peerIDs, pid)
		}
	}
	sort.Slice(peerIDs, func(i, j int) bool { return peerIDs[i] < peerIDs[j] })
	sort.Slice(storeIDs, func(i, j int) bool { return storeIDs[i] < storeIDs[j] })
	deadline := time.Now().Add(15 * time.Second)
	for _, pid := range append(append([]transport.NodeID(nil), peerIDs...), storeIDs...) {
		for {
			if err := n.Ping(pid); err == nil {
				break
			} else if time.Now().After(deadline) {
				return fmt.Errorf("peer %v never became reachable: %w", pid, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	fmt.Printf("drive: %d peers reachable (%d store servers)\n", len(peerIDs)+len(storeIDs), len(storeIDs))
	shutdownPeers := func() {
		for _, pid := range append(append([]transport.NodeID(nil), peerIDs...), storeIDs...) {
			if err := n.Shutdown(pid); err != nil {
				fmt.Fprintf(os.Stderr, "drive: shutdown %v: %v\n", pid, err)
			}
		}
	}
	got := scen.Script(n.Submit)
	want, err := workload.Oracle(name, servers)
	if err != nil {
		shutdownPeers()
		return err
	}
	if err := diffResults(name+" script", got, want); err != nil {
		shutdownPeers()
		return err
	}
	fmt.Printf("drive: %d %s script results identical to single-process run\n", len(got), name)
	shutdownPeers()
	fmt.Println("drive: OK")
	return nil
}

// driveIngress verifies the client SDK against the live deployment:
// pipelined deposits from outside the fleet land exactly once (audit deltas
// match), and the client's dominator→node cache converges to the true hosts.
func driveIngress(n *node.Node, mesh transport.Mesh, top *node.BankTopology, reg *ops.Registry) error {
	var fleet []transport.NodeID
	for i := range top.Banks {
		fleet = append(fleet, transport.NodeID(i+1))
	}
	cli, err := ingress.Dial(mesh, ingress.Config{Nodes: fleet, Trace: true})
	if err != nil {
		return err
	}
	defer cli.Close()
	if reg != nil {
		cli.RegisterOps(reg)
	}

	before := make([]int, len(top.Banks))
	for i, bank := range top.Banks {
		audit, err := cli.Submit(bank, "audit")
		if err != nil {
			return fmt.Errorf("pre audit bank %d: %w", i+1, err)
		}
		before[i] = audit.(int)
	}

	const perAccount = 25
	start := time.Now()
	var futures []*ingress.Future
	for _, bankAccounts := range top.Accounts {
		for _, acct := range bankAccounts {
			for k := 0; k < perAccount; k++ {
				futures = append(futures, cli.Go(acct, "deposit", 1))
			}
		}
	}
	for _, f := range futures {
		if _, err := f.Wait(); err != nil {
			return fmt.Errorf("pipelined deposit: %w", err)
		}
	}
	elapsed := time.Since(start)

	for i, bank := range top.Banks {
		audit, err := cli.Submit(bank, "audit")
		if err != nil {
			return fmt.Errorf("post audit bank %d: %w", i+1, err)
		}
		if want := before[i] + perAccount*len(top.Accounts[i]); audit.(int) != want {
			return fmt.Errorf("bank %d audit = %d after pipelined deposits, want %d", i+1, audit, want)
		}
	}
	// The cache must agree with the fleet's directory — including the bank
	// the phase-2 migration moved onto this node.
	for i, bank := range top.Banks {
		host, _ := n.Runtime().Directory().Locate(bank)
		if cached, ok := cli.Route(bank); !ok || cached != transport.NodeID(host) {
			return fmt.Errorf("client route for bank %d = %v (ok=%v), directory says %v", i+1, cached, ok, host)
		}
	}
	fmt.Printf("drive: ingress client pipelined %d deposits in %v (%.0f ev/s), audits and routes converged\n",
		len(futures), elapsed.Round(time.Millisecond), float64(len(futures))/elapsed.Seconds())
	return nil
}

// driveAdminSmoke exercises the ops plane across the fleet: every admin
// endpoint (this process's plus every -admin-peers entry) must report
// healthy, serve Prometheus-parseable metrics, and serve its event feed.
// Fleet-wide, the executed-submit counters must be nonzero after the drive,
// and at least one phase-4 trace must appear with spans on ≥2 forwarding
// hops — proving trace IDs survive the hot codec and cross-node forwarding.
func driveAdminSmoke(adminSelf, adminPeerSpec string) error {
	urls := map[string]string{}
	if adminSelf != "" {
		urls["self"] = "http://" + adminSelf
	}
	for _, part := range strings.Split(adminPeerSpec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("bad -admin-peers entry %q (want id=host:port)", part)
		}
		urls[kv[0]] = "http://" + kv[1]
	}
	if len(urls) == 0 {
		return nil
	}

	httpc := &http.Client{Timeout: 5 * time.Second}
	get := func(url string) ([]byte, error) {
		resp, err := httpc.Get(url)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, body)
		}
		return body, nil
	}

	var executed float64
	traceHops := map[string]map[int]bool{}
	for name, base := range urls {
		body, err := get(base + "/healthz")
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		var health struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(body, &health); err != nil || health.Status != "ok" {
			return fmt.Errorf("%s /healthz degraded: %s", name, body)
		}

		body, err = get(base + "/metrics")
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, "aeon_node_submits_executed_total ") {
				v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
				if err != nil {
					return fmt.Errorf("%s: unparseable metric line %q", name, line)
				}
				executed += v
			}
		}

		body, err = get(base + "/events")
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		for _, line := range strings.Split(string(body), "\n") {
			if line == "" {
				continue
			}
			var ev struct {
				Type   string         `json:"type"`
				Fields map[string]any `json:"fields"`
			}
			if json.Unmarshal([]byte(line), &ev) != nil || ev.Type != "trace.span" {
				continue
			}
			tr, _ := ev.Fields["trace"].(string)
			hop, ok := ev.Fields["hop"].(float64)
			if tr == "" || !ok {
				continue
			}
			if traceHops[tr] == nil {
				traceHops[tr] = map[int]bool{}
			}
			traceHops[tr][int(hop)] = true
		}
	}
	if executed == 0 {
		return fmt.Errorf("fleet-wide executed-submit counters are all zero after the drive")
	}
	multiHop := 0
	for _, hops := range traceHops {
		if len(hops) >= 2 {
			multiHop++
		}
	}
	if multiHop == 0 {
		return fmt.Errorf("no trace spanned >=2 hops across the fleet (%d traces seen)", len(traceHops))
	}
	fmt.Printf("drive: admin smoke OK — %d endpoints healthy, %.0f submits executed fleet-wide, %d traces spanned >=2 hops\n",
		len(urls), executed, multiHop)
	return nil
}

// diffResults compares a deployment's outcome stream with the oracle's.
func diffResults(phase string, got, want []string) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s result counts differ: %d vs %d", phase, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("%s result %d diverged: multi-process=%q single-process=%q", phase, i, got[i], want[i])
		}
	}
	return nil
}
