// Command aeon-node runs one AEON server as an OS process attached to the
// TCP transport mesh, so a deployment of N processes serves one logical
// AEON system (multi-process deployment; see README "Multi-process
// deployment").
//
// Every process is launched from the same flags and deterministically
// rebuilds the same topology, so context IDs and placements agree without
// coordination; each process then embodies the server matching its -id.
// Node 1 (by default) also serves the authoritative cloud store to its
// peers.
//
// Serve two nodes on loopback, then drive cross-node traffic and a live
// migration from node 1:
//
//	aeon-node -id 2 -peers "1=127.0.0.1:7101,2=127.0.0.1:7102" &
//	aeon-node -id 1 -peers "1=127.0.0.1:7101,2=127.0.0.1:7102" -drive
//
// -drive replays a deterministic bank workload across the deployment,
// compares every result with a single-process oracle run, migrates the last
// node's bank group onto server 1 over the mesh (verifying the transferred
// state and the NIC accounting), and finally shuts the peers down. A
// non-zero exit means the multi-process run diverged from single-process
// semantics.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/emanager"
	"aeon/internal/ingress"
	"aeon/internal/node"
	"aeon/internal/ownership"
	"aeon/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aeon-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id       = flag.Int("id", 1, "this node's ID (also the server it embodies)")
		listen   = flag.String("listen", "", "listen address (defaults to this node's -peers entry)")
		peers    = flag.String("peers", "1=127.0.0.1:7101", "comma-separated id=host:port peer list (including this node)")
		workload = flag.String("workload", "bank", "workload to host (bank)")
		accounts = flag.Int("accounts", 4, "accounts per bank (bank workload)")
		balance  = flag.Int("balance", 1000, "initial balance per account")
		storeID  = flag.Int("store", 1, "node serving the authoritative cloud store")
		drive    = flag.Bool("drive", false, "drive the smoke workload against the deployment, then shut peers down")
		repl     = flag.Bool("replicate", true, "sequence runtime topology mutations through the replicated mutation log (dynamic topologies)")
	)
	flag.Parse()

	if *workload != "bank" {
		return fmt.Errorf("unknown workload %q (have: bank)", *workload)
	}
	addrs, err := parsePeers(*peers)
	if err != nil {
		return err
	}
	self := transport.NodeID(*id)
	if _, ok := addrs[self]; !ok && *listen == "" {
		return fmt.Errorf("node %d not in -peers and no -listen given", *id)
	}
	if *listen != "" {
		addrs[self] = *listen
	}

	// Deterministic replica: every process builds the same cluster and bank
	// topology, then embodies only its own server.
	cl := cluster.New(transport.NewSim(transport.SimConfig{}))
	for i := 0; i < len(addrs); i++ {
		cl.AddServer(cluster.M3Large)
	}
	s := node.BankSchema()
	if err := s.Freeze(); err != nil {
		return err
	}
	rtCfg := core.DefaultConfig()
	rtCfg.ChargeClientHops = false
	rt, err := core.New(s, ownership.NewGraph(), cl, rtCfg)
	if err != nil {
		return err
	}
	defer rt.Close()
	top, err := node.BuildBank(rt, *accounts, *balance)
	if err != nil {
		return err
	}

	mesh := transport.NewTCPMesh()
	for pid, addr := range addrs {
		mesh.Register(pid, addr)
	}
	var peerIDs []transport.NodeID
	for pid := range addrs {
		peerIDs = append(peerIDs, pid)
	}
	n, err := node.Start(mesh, node.Config{
		ID:         self,
		Runtime:    rt,
		LocalStore: cloudstore.New(),
		StoreNode:  transport.NodeID(*storeID),
		Manager:    emanager.DefaultConfig(),
		Replicate:  *repl,
		Peers:      peerIDs,
	})
	if err != nil {
		return err
	}
	defer n.Close()
	fmt.Printf("aeon-node %d listening on %s (%d-node deployment, store on node %d)\n",
		*id, addrs[self], len(addrs), *storeID)
	if p := n.Plane(); p != nil {
		if err := p.LastError(); err != nil {
			// Normal when the store node boots after this one (the tailer
			// keeps retrying); a persisting message means a wedged replica.
			fmt.Printf("aeon-node %d: replication catch-up pending: %v\n", *id, err)
		}
	}

	if *drive {
		return runDrive(n, mesh, top, addrs, *accounts, *balance, *repl)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-n.Done():
		fmt.Printf("aeon-node %d: shutdown requested by peer\n", *id)
	case <-sig:
		fmt.Printf("aeon-node %d: signal received\n", *id)
	}
	return nil
}

// parsePeers parses "1=host:port,2=host:port" and checks IDs are 1..N.
func parsePeers(spec string) (map[transport.NodeID]string, error) {
	addrs := make(map[transport.NodeID]string)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer entry %q (want id=host:port)", part)
		}
		pid, err := strconv.Atoi(kv[0])
		if err != nil || pid <= 0 {
			return nil, fmt.Errorf("bad peer id %q", kv[0])
		}
		addrs[transport.NodeID(pid)] = kv[1]
	}
	for i := 1; i <= len(addrs); i++ {
		if _, ok := addrs[transport.NodeID(i)]; !ok {
			return nil, fmt.Errorf("peer IDs must be contiguous 1..%d (missing %d)", len(addrs), i)
		}
	}
	return addrs, nil
}

// runDrive is the smoke driver: wait for the peers, replay the bank script
// across the deployment, compare with the single-process oracle, migrate a
// remote bank group over the mesh, verify the transferred state, replay the
// dynamic-topology script (runtime context creation on every process,
// sequenced through the replicated mutation log), drive pipelined traffic
// from an external ingress client, and shut everything down.
func runDrive(n *node.Node, mesh transport.Mesh, top *node.BankTopology, addrs map[transport.NodeID]string, accounts, balance int, replicate bool) error {
	var peerIDs []transport.NodeID
	for pid := range addrs {
		if pid != n.ID() {
			peerIDs = append(peerIDs, pid)
		}
	}
	sort.Slice(peerIDs, func(i, j int) bool { return peerIDs[i] < peerIDs[j] })

	// Peers may still be binding their listeners.
	deadline := time.Now().Add(15 * time.Second)
	for _, pid := range peerIDs {
		for {
			if err := n.Ping(pid); err == nil {
				break
			} else if time.Now().After(deadline) {
				return fmt.Errorf("peer %v never became reachable: %w", pid, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	fmt.Printf("drive: %d peers reachable\n", len(peerIDs))
	shutdownPeers := func() {
		for _, pid := range peerIDs {
			if err := n.Shutdown(pid); err != nil {
				fmt.Fprintf(os.Stderr, "drive: shutdown %v: %v\n", pid, err)
			}
		}
	}

	// Phase 1: the deterministic script, every op submitted at this node,
	// so every other bank's ops cross the mesh. Results must be identical
	// to a single-process run.
	got := node.RunBankScript(n.Submit, top)
	want, wantDynamic, err := node.BankDynamicOracle(len(addrs), accounts, balance)
	if err != nil {
		shutdownPeers()
		return err
	}
	if err := diffResults("script", got, want); err != nil {
		shutdownPeers()
		return err
	}
	fmt.Printf("drive: %d script results identical to single-process run\n", len(got))

	// Phase 2: live migration over the mesh — move the last node's bank
	// group onto this node's server and verify the state arrived.
	if len(peerIDs) > 0 {
		src := peerIDs[len(peerIDs)-1]
		bankIdx := int(src) - 1
		bank := top.Banks[bankIdx]
		preAudit, err := n.Submit(bank, "audit")
		if err != nil {
			shutdownPeers()
			return fmt.Errorf("pre-migration audit: %w", err)
		}
		if err := n.MigrateRemote(src, bank, cluster.ServerID(n.ID())); err != nil {
			shutdownPeers()
			return fmt.Errorf("commanded migration from node %v: %w", src, err)
		}
		fwdBefore := n.Forwarded()
		postAudit, err := n.Submit(bank, "audit")
		if err != nil {
			shutdownPeers()
			return fmt.Errorf("post-migration audit: %w", err)
		}
		if preAudit.(int) != postAudit.(int) {
			shutdownPeers()
			return fmt.Errorf("migration changed the audit total: %d → %d", preAudit, postAudit)
		}
		if n.Forwarded() != fwdBefore {
			shutdownPeers()
			return fmt.Errorf("post-migration audit still crossed the mesh")
		}
		srv, ok := n.Runtime().Cluster().Server(cluster.ServerID(n.ID()))
		if !ok || srv.TransferBytes() == 0 {
			shutdownPeers()
			return fmt.Errorf("no migration state bytes arrived over the mesh")
		}
		fmt.Printf("drive: migrated bank %v from node %v over the mesh (%d state bytes, audit total %d preserved)\n",
			bank, src, srv.TransferBytes(), postAudit)
	}

	// Phase 3: runtime topology churn — open a fresh account at every bank
	// (creations execute on whichever process hosts the bank, so every peer
	// captures mutations into the replicated log), deposit into the new
	// accounts by their returned IDs, and audit. Results — including the
	// log-assigned context IDs — must match the single-process oracle,
	// which pins fleet-wide ID-assignment determinism.
	if replicate {
		gotDynamic := node.RunBankDynamicScript(n.Submit, top)
		if err := diffResults("dynamic script", gotDynamic, wantDynamic); err != nil {
			shutdownPeers()
			return err
		}
		fmt.Printf("drive: %d runtime-topology results identical to single-process run (replication plane at seq %d)\n",
			len(gotDynamic), n.Plane().Applied())
	}

	// Phase 4: external ingress — a client outside the fleet attaches to the
	// mesh, pipelines deposits over multiplexed connections, and repairs its
	// routing cache from authoritative responses (including the route the
	// phase-2 migration made stale).
	if err := driveIngress(n, mesh, top); err != nil {
		shutdownPeers()
		return fmt.Errorf("ingress: %w", err)
	}

	shutdownPeers()
	fmt.Println("drive: OK")
	return nil
}

// driveIngress verifies the client SDK against the live deployment:
// pipelined deposits from outside the fleet land exactly once (audit deltas
// match), and the client's dominator→node cache converges to the true hosts.
func driveIngress(n *node.Node, mesh transport.Mesh, top *node.BankTopology) error {
	var fleet []transport.NodeID
	for i := range top.Banks {
		fleet = append(fleet, transport.NodeID(i+1))
	}
	cli, err := ingress.Dial(mesh, ingress.Config{Nodes: fleet})
	if err != nil {
		return err
	}
	defer cli.Close()

	before := make([]int, len(top.Banks))
	for i, bank := range top.Banks {
		audit, err := cli.Submit(bank, "audit")
		if err != nil {
			return fmt.Errorf("pre audit bank %d: %w", i+1, err)
		}
		before[i] = audit.(int)
	}

	const perAccount = 25
	start := time.Now()
	var futures []*ingress.Future
	for _, bankAccounts := range top.Accounts {
		for _, acct := range bankAccounts {
			for k := 0; k < perAccount; k++ {
				futures = append(futures, cli.Go(acct, "deposit", 1))
			}
		}
	}
	for _, f := range futures {
		if _, err := f.Wait(); err != nil {
			return fmt.Errorf("pipelined deposit: %w", err)
		}
	}
	elapsed := time.Since(start)

	for i, bank := range top.Banks {
		audit, err := cli.Submit(bank, "audit")
		if err != nil {
			return fmt.Errorf("post audit bank %d: %w", i+1, err)
		}
		if want := before[i] + perAccount*len(top.Accounts[i]); audit.(int) != want {
			return fmt.Errorf("bank %d audit = %d after pipelined deposits, want %d", i+1, audit, want)
		}
	}
	// The cache must agree with the fleet's directory — including the bank
	// the phase-2 migration moved onto this node.
	for i, bank := range top.Banks {
		host, _ := n.Runtime().Directory().Locate(bank)
		if cached, ok := cli.Route(bank); !ok || cached != transport.NodeID(host) {
			return fmt.Errorf("client route for bank %d = %v (ok=%v), directory says %v", i+1, cached, ok, host)
		}
	}
	fmt.Printf("drive: ingress client pipelined %d deposits in %v (%.0f ev/s), audits and routes converged\n",
		len(futures), elapsed.Round(time.Millisecond), float64(len(futures))/elapsed.Seconds())
	return nil
}

// diffResults compares a deployment's outcome stream with the oracle's.
func diffResults(phase string, got, want []string) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s result counts differ: %d vs %d", phase, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("%s result %d diverged: multi-process=%q single-process=%q", phase, i, got[i], want[i])
		}
	}
	return nil
}
