// Command aeon-tpcc drives the TPC-C benchmark application on a chosen
// system variant (the workload behind Figures 6a/6b).
//
// Usage:
//
//	aeon-tpcc -system AEON -servers 8 -clients 64 -duration 10s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/tpcc"
	"aeon/internal/transport"
	"aeon/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aeon-tpcc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		system    = flag.String("system", "AEON", "AEON | AEON_SO | EventWave | Orleans | Orleans*")
		servers   = flag.Int("servers", 8, "number of servers (= districts)")
		clients   = flag.Int("clients", 64, "closed-loop clients")
		duration  = flag.Duration("duration", 10*time.Second, "run duration")
		customers = flag.Int("customers", 40, "customers per district")
	)
	flag.Parse()

	cfg := tpcc.DefaultConfig()
	cfg.Districts = *servers
	cfg.CustomersPerDistrict = *customers

	cl := cluster.New(transport.NewSim(transport.DefaultSimConfig()))
	for i := 0; i < *servers; i++ {
		cl.AddServer(cluster.M3Large)
	}

	var (
		app tpcc.App
		err error
	)
	switch *system {
	case "AEON":
		app, err = tpcc.BuildAEON(cl, cfg, false)
	case "AEON_SO":
		app, err = tpcc.BuildAEON(cl, cfg, true)
	case "EventWave":
		app, err = tpcc.BuildEventWave(cl, cfg)
	case "Orleans":
		app, err = tpcc.BuildOrleans(cl, cfg, false)
	case "Orleans*":
		app, err = tpcc.BuildOrleans(cl, cfg, true)
	default:
		return fmt.Errorf("unknown system %q", *system)
	}
	if err != nil {
		return err
	}
	defer app.Close()

	fmt.Printf("%s: %d servers/districts × %d customers, %d clients, %v\n",
		app.Name(), *servers, *customers, *clients, *duration)
	res := workload.RunClosedLoop(app.DoTxn, *clients, 0, *duration, 1)
	if res.Errors > 0 {
		return fmt.Errorf("%d txn errors", res.Errors)
	}
	fmt.Printf("throughput: %.0f txns/s\nlatency:    %s\n", res.Throughput, res.Latency)
	return nil
}
