// Command aeon-top summarizes a live AEON fleet on one screen, the way top
// summarizes processes: it polls every node's admin /metrics endpoint
// (cmd/aeon-node -admin), computes per-interval rates from consecutive
// scrapes, and renders a table — one row per node — of the numbers an
// operator reaches for first: submit execution and forwarding rates, batch
// throughput, executor queue depth, event-latency p99, mux completion-slot
// occupancy, replication lag, and dropped late responses.
//
//	aeon-top -fleet "1=127.0.0.1:8101,2=127.0.0.1:8102,3=127.0.0.1:8103"
//
// -once scrapes a single time and prints absolute totals instead of rates
// (for scripts and CI smoke checks); otherwise the table refreshes every
// -interval until interrupted.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aeon-top:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fleet    = flag.String("fleet", "1=127.0.0.1:8101", "comma-separated id=host:port admin addresses to poll")
		interval = flag.Duration("interval", 2*time.Second, "poll interval")
		once     = flag.Bool("once", false, "scrape once, print absolute totals, exit")
	)
	flag.Parse()

	targets, err := parseFleet(*fleet)
	if err != nil {
		return err
	}

	if *once {
		rows := scrapeAll(targets)
		render(os.Stdout, rows, nil, 0)
		return nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	var prev map[string]sample
	for {
		rows := scrapeAll(targets)
		// Clear and home between frames; plain output stays readable when
		// piped because each frame still ends in newlines.
		fmt.Print("\033[H\033[2J")
		render(os.Stdout, rows, prev, *interval)
		prev = rows
		select {
		case <-sig:
			return nil
		case <-time.After(*interval):
		}
	}
}

type target struct {
	name string
	url  string
}

func parseFleet(spec string) ([]target, error) {
	var ts []target
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad -fleet entry %q (want id=host:port)", part)
		}
		ts = append(ts, target{name: kv[0], url: "http://" + kv[1]})
	}
	if len(ts) == 0 {
		return nil, fmt.Errorf("-fleet lists no targets")
	}
	return ts, nil
}

// sample is one node's scraped metric set (metric name + optional quantile
// label → value), plus scrape health.
type sample struct {
	ok      bool
	err     string
	metrics map[string]float64
}

func scrapeAll(targets []target) map[string]sample {
	out := make(map[string]sample, len(targets))
	httpc := &http.Client{Timeout: 3 * time.Second}
	for _, t := range targets {
		out[t.name] = scrape(httpc, t.url)
	}
	return out
}

func scrape(httpc *http.Client, base string) sample {
	resp, err := httpc.Get(base + "/metrics")
	if err != nil {
		return sample{err: err.Error()}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return sample{err: fmt.Sprintf("HTTP %d", resp.StatusCode)}
	}
	s := sample{ok: true, metrics: make(map[string]float64)}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || line[0] == '#' {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		key := line[:sp]
		// Collapse label sets we don't pivot on, but keep quantiles: a
		// summary line aeon_x{quantile="0.99"} stays distinct, while
		// per-partition counters sum into their family.
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if q := quantileOf(key[i:]); q != "" {
				key = key[:i] + ":" + q
			} else {
				key = key[:i]
			}
		}
		s.metrics[key] += v
	}
	return s
}

func quantileOf(labels string) string {
	const tag = `quantile="`
	i := strings.Index(labels, tag)
	if i < 0 {
		return ""
	}
	rest := labels[i+len(tag):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}

// columns maps table headers to metric keys. Counter columns render as
// per-second rates when a previous sample exists, absolute totals otherwise.
var columns = []struct {
	head    string
	key     string
	counter bool
}{
	{"EXEC", "aeon_node_submits_executed_total", true},
	{"FWD", "aeon_node_submits_forwarded_total", true},
	{"BATCH", "aeon_node_batch_frames_total", true},
	{"BEV", "aeon_node_batch_events_total", true},
	{"QDEPTH", "aeon_exec_queue_depth", false},
	{"P99MS", "aeon_event_latency_seconds:0.99", false},
	{"SLOTS", "aeon_mux_slots_in_use", false},
	{"RLAG", "aeon_replication_lag", false},
	{"DROPS", "aeon_mux_dropped_responses_total", true},
}

func render(w io.Writer, rows, prev map[string]sample, interval time.Duration) {
	names := make([]string, 0, len(rows))
	for name := range rows {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-8s %-5s", "NODE", "UP")
	for _, c := range columns {
		fmt.Fprintf(w, " %9s", c.head)
	}
	fmt.Fprintln(w)
	for _, name := range names {
		s := rows[name]
		if !s.ok {
			fmt.Fprintf(w, "%-8s %-5s %s\n", name, "down", s.err)
			continue
		}
		fmt.Fprintf(w, "%-8s %-5s", name, "ok")
		for _, c := range columns {
			v, have := s.metrics[c.key]
			switch {
			case !have:
				fmt.Fprintf(w, " %9s", "-")
			case c.key == "aeon_event_latency_seconds:0.99":
				fmt.Fprintf(w, " %9.2f", v*1000)
			case c.counter && prev != nil && interval > 0:
				p := prev[name]
				if !p.ok {
					fmt.Fprintf(w, " %9s", "-")
					break
				}
				fmt.Fprintf(w, " %9.0f", (v-p.metrics[c.key])/interval.Seconds())
			default:
				fmt.Fprintf(w, " %9.0f", v)
			}
		}
		fmt.Fprintln(w)
	}
	if prev != nil {
		fmt.Fprintf(w, "\ncounters are per-second rates over the last %v; ctrl-c to quit\n", interval)
	}
}
