package aeon_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aeon"
	"aeon/internal/bench"
)

// runExperiment executes one paper experiment in quick mode and reports its
// headline number as a benchmark metric. These benches regenerate the
// paper's tables/figures end to end; use cmd/aeon-bench for the full-size
// sweeps.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := bench.Run(name, bench.Options{
			Quick:    true,
			Duration: 400 * time.Millisecond,
			Seed:     int64(i + 1),
		})
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Logf("\n%s\n%s", t.Title, t.CSV())
			}
		}
	}
}

// BenchmarkFig5aGameScaleOut regenerates Figure 5a (game scale-out).
func BenchmarkFig5aGameScaleOut(b *testing.B) { runExperiment(b, "fig5a") }

// BenchmarkFig5bGamePerformance regenerates Figure 5b (game latency vs
// throughput).
func BenchmarkFig5bGamePerformance(b *testing.B) { runExperiment(b, "fig5b") }

// BenchmarkFig6aTPCCScaleOut regenerates Figure 6a (TPC-C scale-out).
func BenchmarkFig6aTPCCScaleOut(b *testing.B) { runExperiment(b, "fig6a") }

// BenchmarkFig6bTPCCPerformance regenerates Figure 6b (TPC-C latency vs
// throughput).
func BenchmarkFig6bTPCCPerformance(b *testing.B) { runExperiment(b, "fig6b") }

// BenchmarkFig7Elasticity regenerates Figures 7a/7b (elastic vs static).
func BenchmarkFig7Elasticity(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkTable1SLACost regenerates Table 1 (SLA violations and cost).
func BenchmarkTable1SLACost(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig8MigrationImpact regenerates Figure 8 (throughput while
// migrating contexts).
func BenchmarkFig8MigrationImpact(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9MigrationThroughput regenerates Figure 9 (eManager migration
// throughput).
func BenchmarkFig9MigrationThroughput(b *testing.B) { runExperiment(b, "fig9") }

// --- Ablation benches (DESIGN.md § 6) --------------------------------------

// ablationWorld builds a root context owning N leaves, with methods that
// exercise specific protocol features.
func ablationWorld(b *testing.B, leafCost time.Duration) (*aeon.System, aeon.ContextID, []aeon.ContextID) {
	b.Helper()
	s := aeon.NewSchema()
	leaf := s.MustDeclareClass("Leaf", func() any { return new(int) })
	leaf.MustDeclareMethod("bump", func(call aeon.Call, args []any) (any, error) {
		n := call.State().(*int)
		*n++
		return *n, nil
	}, aeon.Cost(leafCost))
	leaf.MustDeclareMethod("peek", func(call aeon.Call, args []any) (any, error) {
		return *call.State().(*int), nil
	}, aeon.RO(), aeon.Cost(leafCost))

	root := s.MustDeclareClass("Root", nil)
	root.MustDeclareMethod("fanSync", func(call aeon.Call, args []any) (any, error) {
		leaves, err := call.Children("Leaf")
		if err != nil {
			return nil, err
		}
		for _, l := range leaves {
			if _, err := call.Sync(l, "bump"); err != nil {
				return nil, err
			}
		}
		return len(leaves), nil
	}, aeon.MayCall("Leaf", "bump"))
	root.MustDeclareMethod("fanAsync", func(call aeon.Call, args []any) (any, error) {
		leaves, err := call.Children("Leaf")
		if err != nil {
			return nil, err
		}
		results := make([]aeon.AsyncResult, 0, len(leaves))
		for _, l := range leaves {
			results = append(results, call.Async(l, "bump"))
		}
		for _, r := range results {
			if _, err := r.Wait(); err != nil {
				return nil, err
			}
		}
		return len(leaves), nil
	}, aeon.MayCall("Leaf", "bump"))
	root.MustDeclareMethod("crabTail", func(call aeon.Call, args []any) (any, error) {
		return nil, call.Crab(args[0].(aeon.ContextID), "bump")
	}, aeon.MayCall("Leaf", "bump"))
	root.MustDeclareMethod("syncTail", func(call aeon.Call, args []any) (any, error) {
		return call.Sync(args[0].(aeon.ContextID), "bump")
	}, aeon.MayCall("Leaf", "bump"))

	sys, err := aeon.New(
		aeon.WithSchema(s),
		aeon.WithServers(4, aeon.M3Large),
		aeon.WithNetwork(aeon.SimNetworkConfig{}), // isolate protocol costs
	)
	if err != nil {
		b.Fatal(err)
	}
	rootID, err := sys.Runtime.CreateContext("Root")
	if err != nil {
		b.Fatal(err)
	}
	var leaves []aeon.ContextID
	for i := 0; i < 8; i++ {
		id, err := sys.Runtime.CreateContext("Leaf", rootID)
		if err != nil {
			b.Fatal(err)
		}
		leaves = append(leaves, id)
	}
	return sys, rootID, leaves
}

// BenchmarkAblationAsyncCalls compares synchronous vs asynchronous intra-
// event fan-out (the `async` decorator of § 3).
func BenchmarkAblationAsyncCalls(b *testing.B) {
	for _, mode := range []string{"sync", "async"} {
		b.Run(mode, func(b *testing.B) {
			sys, root, _ := ablationWorld(b, 100*time.Microsecond)
			defer sys.Close()
			method := "fanSync"
			if mode == "async" {
				method = "fanAsync"
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Runtime.Submit(root, method); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationReadOnly compares concurrent readonly events against
// exclusive ones on a single hot context (the read-lock sharing of
// Algorithm 2, line 11).
func BenchmarkAblationReadOnly(b *testing.B) {
	for _, mode := range []string{"exclusive", "readonly"} {
		b.Run(mode, func(b *testing.B) {
			sys, _, leaves := ablationWorld(b, 50*time.Microsecond)
			defer sys.Close()
			method := "bump"
			if mode == "readonly" {
				method = "peek"
			}
			hot := leaves[0]
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/8 + 1
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if _, err := sys.Runtime.Submit(hot, method); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkAblationCrab compares a tail call with and without the § 6.1.2
// early release under contention on the parent.
func BenchmarkAblationCrab(b *testing.B) {
	for _, mode := range []string{"hold", "crab"} {
		b.Run(mode, func(b *testing.B) {
			sys, root, leaves := ablationWorld(b, 200*time.Microsecond)
			defer sys.Close()
			method := "syncTail"
			if mode == "crab" {
				method = "crabTail"
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/8 + 1
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if _, err := sys.Runtime.Submit(root, method, leaves[(g+i)%len(leaves)]); err != nil {
							b.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// BenchmarkParallelDisjointSubmit measures the runtime hot path itself:
// events on disjoint single-context ownership trees, zero simulated network
// and zero method cost, so all that remains is registry lookup, directory
// routing, activation, and latency recording. Run with -cpu 1,4,8 to see
// whether throughput scales with cores (it cannot while any per-event
// operation takes a process-global lock).
func BenchmarkParallelDisjointSubmit(b *testing.B) {
	s := aeon.NewSchema()
	leaf := s.MustDeclareClass("Leaf", func() any { return new(int) })
	leaf.MustDeclareMethod("bump", func(call aeon.Call, args []any) (any, error) {
		n := call.State().(*int)
		*n++
		return *n, nil
	})
	sys, err := aeon.New(aeon.WithSchema(s), aeon.WithServers(8, aeon.M3Large),
		aeon.WithNetwork(aeon.SimNetworkConfig{}),
		aeon.WithRuntimeConfig(aeon.RuntimeConfig{ChargeClientHops: false}))
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()

	const nCtx = 1024
	ids := make([]aeon.ContextID, nCtx)
	for i := range ids {
		if ids[i], err = sys.Runtime.CreateContext("Leaf"); err != nil {
			b.Fatal(err)
		}
	}
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each worker cycles within a private 64-context window (disjoint up
		// to 16 workers) so events never conflict; contention, if any, is
		// purely runtime-structural.
		base := (int(next.Add(1)-1) * 64) % nCtx
		i := 0
		for pb.Next() {
			id := ids[base+i%64]
			i++
			if _, err := sys.Runtime.Submit(id, "bump"); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkAblationDominatorParallelism compares events on contexts with
// private dominators (parallel) against events funneled through one shared
// dominator — the heart of the ownership-network design.
func BenchmarkAblationDominatorParallelism(b *testing.B) {
	for _, mode := range []string{"shared-dominator", "private-dominators"} {
		b.Run(mode, func(b *testing.B) {
			s := aeon.NewSchema()
			leaf := s.MustDeclareClass("Leaf", func() any { return new(int) })
			leaf.MustDeclareMethod("bump", func(call aeon.Call, args []any) (any, error) {
				n := call.State().(*int)
				*n++
				return *n, nil
			}, aeon.Cost(100*time.Microsecond))
			owner := s.MustDeclareClass("Owner", nil)
			owner.MustDeclareMethod("bumpLeaf", func(call aeon.Call, args []any) (any, error) {
				return call.Sync(args[0].(aeon.ContextID), "bump")
			}, aeon.MayCall("Leaf", "bump"))
			s.MustDeclareClass("Room", nil)
			sys, err := aeon.New(aeon.WithSchema(s), aeon.WithServers(4, aeon.M3Large),
				aeon.WithNetwork(aeon.SimNetworkConfig{}))
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()

			room, err := sys.Runtime.CreateContext("Room")
			if err != nil {
				b.Fatal(err)
			}
			const n = 8
			owners := make([]aeon.ContextID, n)
			leaves := make([]aeon.ContextID, n)
			for i := range owners {
				owners[i], err = sys.Runtime.CreateContext("Owner", room)
				if err != nil {
					b.Fatal(err)
				}
			}
			for i := range leaves {
				if mode == "shared-dominator" {
					// The room also owns every leaf, so dom(owner) = room:
					// all owner events serialize at one context (the
					// Figure 3 Kings Room situation).
					leaves[i], err = sys.Runtime.CreateContext("Leaf",
						owners[i], room)
				} else {
					// Private subtrees: dom(owner) = owner, full
					// parallelism.
					leaves[i], err = sys.Runtime.CreateContext("Leaf", owners[i])
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/n + 1
			for g := 0; g < n; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if _, err := sys.Runtime.Submit(owners[g], "bumpLeaf", leaves[g]); err != nil {
							b.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}
