// Elasticity: the § 6.2 experiment in miniature, on the public API.
//
// A fleet of counter services starts on two small servers; as a bell-curve
// client ramp pushes latency past the 10 ms SLA, the eManager scales out
// (adding m1.small servers and migrating contexts onto them, using the
// five-step migration protocol), then scales back in as the load recedes.
//
// Run with: go run ./examples/elasticity
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"aeon"
)

type counter struct{ N int }

func buildSchema() *aeon.Schema {
	s := aeon.NewSchema()
	svc := s.MustDeclareClass("Service", func() any { return &counter{} })
	svc.MustDeclareMethod("handle", func(call aeon.Call, args []any) (any, error) {
		st := call.State().(*counter)
		st.N++
		call.Work(400 * time.Microsecond) // per-request compute
		return st.N, nil
	})
	return s
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		sla        = 10 * time.Millisecond
		minServers = 2
		maxServers = 8
		nServices  = 16
		duration   = 24 * time.Second
	)
	sys, err := aeon.New(
		aeon.WithSchema(buildSchema()),
		aeon.WithServers(minServers, aeon.M1Small),
	)
	if err != nil {
		return err
	}
	defer sys.Close()

	var services []aeon.ContextID
	servers := sys.Cluster.Servers()
	for i := 0; i < nServices; i++ {
		id, err := sys.Runtime.CreateContextOn(servers[i%len(servers)].ID(), "Service")
		if err != nil {
			return err
		}
		services = append(services, id)
	}

	sys.Manager.AddPolicy(&aeon.SLAPolicy{
		Target:     sla,
		Profile:    aeon.M1Small,
		MinServers: minServers,
		Cooldown:   2 * time.Second,
	})
	sys.Manager.AddConstraint(aeon.MaxServers(maxServers))
	sys.Manager.Start()
	defer sys.Manager.Stop()

	fmt.Printf("%-6s %-8s %-8s %-12s %s\n", "t", "clients", "servers", "latency", "SLA")

	var stop atomic.Bool
	var wg sync.WaitGroup
	activeClients := func(t float64) int {
		// Bell curve: 2 → 48 → 2 clients over the run.
		mid := duration.Seconds() / 2
		sigma := duration.Seconds() / 6
		bell := math.Exp(-((t - mid) * (t - mid)) / (2 * sigma * sigma))
		return 2 + int(46*bell)
	}

	var quits []chan struct{}
	start := time.Now()
	for now := time.Duration(0); now < duration; now += time.Second {
		want := activeClients(now.Seconds())
		for len(quits) < want {
			q := make(chan struct{})
			quits = append(quits, q)
			wg.Add(1)
			go func(q <-chan struct{}, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for !stop.Load() {
					select {
					case <-q:
						return
					default:
					}
					svc := services[rng.Intn(len(services))]
					if _, err := sys.Runtime.Submit(svc, "handle"); err != nil {
						return
					}
				}
			}(q, int64(len(quits)))
		}
		for len(quits) > want {
			close(quits[len(quits)-1])
			quits = quits[:len(quits)-1]
		}
		lat := sys.Runtime.RecentLatency()
		status := "ok"
		if lat > sla {
			status = "VIOLATED"
		}
		fmt.Printf("%-6.0fs %-8d %-8d %-12v %s\n",
			time.Since(start).Seconds(), want, sys.Cluster.Size(),
			lat.Round(100*time.Microsecond), status)
		time.Sleep(time.Second)
	}
	stop.Store(true)
	for _, q := range quits {
		close(q)
	}
	wg.Wait()

	fmt.Printf("run complete: %d requests, %d migrations performed by the eManager\n",
		sys.Runtime.Completed.Value(), sys.Manager.Migrations.Value())
	return nil
}
