// Multi-process deployment, in miniature: three AEON nodes attached to a
// TCP mesh on loopback — each embodying one server of the bank system —
// exchange events, and a live migration ships context state between them
// over the wire. The same node runtime powers real multi-process
// deployments via cmd/aeon-node (see README "Multi-process deployment");
// this example keeps the three "processes" in one binary so it runs as an
// ordinary `go run ./examples/mesh`.
package main

import (
	"fmt"
	"log"
	"time"

	"aeon/internal/node"
	"aeon/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	mesh := transport.NewTCPMesh()
	d, err := node.Deploy(mesh, node.Topology{Nodes: 3, AccountsPerBank: 4})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.WaitReady(5 * time.Second); err != nil {
		return err
	}
	n1 := d.Nodes[0]
	fmt.Println("3 nodes attached over TCP loopback; each hosts one bank of 4 accounts")

	// A local event and a remote one: the remote submit crosses the mesh to
	// the owning node and returns its result.
	if _, err := n1.Submit(d.Top.Accounts[0][0], "deposit", 100); err != nil {
		return err
	}
	res, err := n1.Submit(d.Top.Accounts[1][0], "deposit", 250)
	if err != nil {
		return err
	}
	fmt.Printf("remote deposit on node 2's account: balance %v (forwarded %d submits so far)\n",
		res, n1.Forwarded())

	// Audit a remote bank: a multi-context readonly event, executed wholly
	// on the node owning the bank.
	total, err := n1.Submit(d.Top.Banks[1], "audit")
	if err != nil {
		return err
	}
	fmt.Printf("audit of bank 2 across the mesh: total %v\n", total)

	// Live migration between two nodes: bank 2's whole group moves from
	// server 2 to server 1 — state travels over the TCP mesh, and node 1
	// serves it locally afterwards.
	if err := n1.MigrateRemote(2, d.Top.Banks[1], 1); err != nil {
		return err
	}
	res, err = n1.Submit(d.Top.Accounts[1][0], "balance")
	if err != nil {
		return err
	}
	srv, _ := n1.Runtime().Cluster().Server(1)
	fmt.Printf("after mesh migration: balance %v served locally on node 1 (%d state bytes transferred)\n",
		res, srv.TransferBytes())
	return nil
}
