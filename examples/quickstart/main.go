// Quickstart: a bank built on AEON's public API.
//
// A Bank context owns Account contexts; the `transfer` event atomically
// moves money between two accounts, and the readonly `audit` event sums all
// balances. AEON guarantees strict serializability, so concurrent transfers
// never lose money and audits never observe a half-applied transfer — with
// no locking in the application code.
//
// Run with: go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"aeon"
)

type account struct {
	Balance int
}

func buildSchema() *aeon.Schema {
	s := aeon.NewSchema()

	acc := s.MustDeclareClass("Account", func() any { return &account{} })
	acc.MustDeclareMethod("deposit", func(call aeon.Call, args []any) (any, error) {
		st := call.State().(*account)
		st.Balance += args[0].(int)
		return st.Balance, nil
	})
	acc.MustDeclareMethod("withdraw", func(call aeon.Call, args []any) (any, error) {
		st := call.State().(*account)
		amt := args[0].(int)
		if amt > st.Balance {
			return nil, errors.New("insufficient funds")
		}
		st.Balance -= amt
		return st.Balance, nil
	})
	acc.MustDeclareMethod("balance", func(call aeon.Call, args []any) (any, error) {
		return call.State().(*account).Balance, nil
	}, aeon.RO())

	bank := s.MustDeclareClass("Bank", nil)
	bank.MustDeclareMethod("transfer", func(call aeon.Call, args []any) (any, error) {
		from, to, amt := args[0].(aeon.ContextID), args[1].(aeon.ContextID), args[2].(int)
		if _, err := call.Sync(from, "withdraw", amt); err != nil {
			return nil, err
		}
		return call.Sync(to, "deposit", amt)
	}, aeon.MayCall("Account", "withdraw"), aeon.MayCall("Account", "deposit"))
	bank.MustDeclareMethod("audit", func(call aeon.Call, args []any) (any, error) {
		accounts, err := call.Children("Account")
		if err != nil {
			return nil, err
		}
		total := 0
		for _, a := range accounts {
			b, err := call.Sync(a, "balance")
			if err != nil {
				return nil, err
			}
			total += b.(int)
		}
		return total, nil
	}, aeon.RO(), aeon.MayCall("Account", "balance"))
	return s
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := aeon.New(
		aeon.WithSchema(buildSchema()),
		aeon.WithServers(4, aeon.M3Large),
	)
	if err != nil {
		return err
	}
	defer sys.Close()

	bank, err := sys.Runtime.CreateContext("Bank")
	if err != nil {
		return err
	}
	const nAccounts = 16
	accounts := make([]aeon.ContextID, 0, nAccounts)
	for i := 0; i < nAccounts; i++ {
		a, err := sys.Runtime.CreateContext("Account", bank)
		if err != nil {
			return err
		}
		if _, err := sys.Runtime.Submit(a, "deposit", 1000); err != nil {
			return err
		}
		accounts = append(accounts, a)
	}
	fmt.Printf("created bank with %d accounts of 1000 each\n", nAccounts)

	// 16 concurrent clients hammer random transfers while audits run.
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				from := accounts[rng.Intn(len(accounts))]
				to := accounts[rng.Intn(len(accounts))]
				if from == to {
					continue
				}
				_, err := sys.Runtime.Submit(bank, "transfer", from, to, rng.Intn(50))
				if err != nil && err.Error() != "insufficient funds" {
					log.Printf("transfer failed: %v", err)
				}
			}
		}(int64(c + 1))
	}
	auditDone := make(chan struct{})
	go func() {
		defer close(auditDone)
		for i := 0; i < 20; i++ {
			total, err := sys.Runtime.Submit(bank, "audit")
			if err != nil {
				log.Printf("audit failed: %v", err)
				return
			}
			if total.(int) != nAccounts*1000 {
				log.Printf("AUDIT VIOLATION: total = %d", total)
				return
			}
		}
	}()
	wg.Wait()
	<-auditDone

	total, err := sys.Runtime.Submit(bank, "audit")
	if err != nil {
		return err
	}
	fmt.Printf("after 1600 concurrent transfers: audit total = %d (money conserved: %v)\n",
		total, total.(int) == nAccounts*1000)
	fmt.Printf("events completed: %d, mean latency: %v\n",
		sys.Runtime.Completed.Value(), sys.Runtime.Latency.Snapshot().Mean)
	return nil
}
