// Game: the paper's § 2 MMO example on the public API.
//
// A Building owns Rooms; Rooms own Players and shared Items; Players own
// their private Mine and Treasure (multiple ownership: AEON's ownership DAG
// gives every player their own dominator, so private actions in the same
// room run in parallel, while shared-object interactions serialize at the
// room — exactly the sharing structure of Figure 3).
//
// Run with: go run ./examples/game
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"aeon"
)

type itemState struct{ Gold int }
type playerState struct{ Mine, Treasure uint64 }
type roomState struct{ NPlayers, TimeOfDay int }
type buildingState struct{ TimeOfDay int }

func buildSchema() *aeon.Schema {
	s := aeon.NewSchema()
	item := s.MustDeclareClass("Item", func() any { return &itemState{} })
	item.MustDeclareMethod("get", func(call aeon.Call, args []any) (any, error) {
		st := call.State().(*itemState)
		amt := args[0].(int)
		if amt > st.Gold {
			amt = st.Gold
		}
		st.Gold -= amt
		return amt, nil
	}, aeon.Cost(20*time.Microsecond))
	item.MustDeclareMethod("put", func(call aeon.Call, args []any) (any, error) {
		st := call.State().(*itemState)
		st.Gold += args[0].(int)
		return st.Gold, nil
	}, aeon.Cost(20*time.Microsecond))

	player := s.MustDeclareClass("Player", func() any { return &playerState{} })
	player.MustDeclareMethod("get_gold", func(call aeon.Call, args []any) (any, error) {
		st := call.State().(*playerState)
		taken, err := call.Sync(aeon.ContextID(st.Mine), "get", args[0])
		if err != nil {
			return nil, err
		}
		if taken.(int) == 0 {
			return false, nil
		}
		if _, err := call.Sync(aeon.ContextID(st.Treasure), "put", taken); err != nil {
			return nil, err
		}
		return true, nil
	}, aeon.MayCall("Item", "get"), aeon.MayCall("Item", "put"))
	player.MustDeclareMethod("receive", func(call aeon.Call, args []any) (any, error) {
		st := call.State().(*playerState)
		return call.Sync(aeon.ContextID(st.Treasure), "put", args[0])
	}, aeon.MayCall("Item", "put"))

	room := s.MustDeclareClass("Room", func() any { return &roomState{} })
	room.MustDeclareMethod("interact", func(call aeon.Call, args []any) (any, error) {
		item := args[0].(aeon.ContextID)
		player := args[1].(aeon.ContextID)
		taken, err := call.Sync(item, "get", args[2])
		if err != nil {
			return nil, err
		}
		if taken.(int) == 0 {
			return false, nil
		}
		return call.Sync(player, "receive", taken)
	}, aeon.MayCall("Item", "get"), aeon.MayCall("Player", "receive"))
	room.MustDeclareMethod("updateTimeOfDay", func(call aeon.Call, args []any) (any, error) {
		call.State().(*roomState).TimeOfDay = args[0].(int)
		return nil, nil
	})
	room.MustDeclareMethod("nr_players", func(call aeon.Call, args []any) (any, error) {
		return call.State().(*roomState).NPlayers, nil
	}, aeon.RO())

	building := s.MustDeclareClass("Building", func() any { return &buildingState{} })
	building.MustDeclareMethod("updateTimeOfDay", func(call aeon.Call, args []any) (any, error) {
		st := call.State().(*buildingState)
		st.TimeOfDay++
		rooms, err := call.Children("Room")
		if err != nil {
			return nil, err
		}
		// Async fan-out: all rooms update in parallel (Listing 1).
		for _, r := range rooms {
			call.Async(r, "updateTimeOfDay", st.TimeOfDay)
		}
		return st.TimeOfDay, nil
	}, aeon.MayCall("Room", "updateTimeOfDay"))
	building.MustDeclareMethod("countPlayers", func(call aeon.Call, args []any) (any, error) {
		rooms, err := call.Children("Room")
		if err != nil {
			return nil, err
		}
		total := 0
		for _, r := range rooms {
			n, err := call.Sync(r, "nr_players")
			if err != nil {
				return nil, err
			}
			total += n.(int)
		}
		return total, nil
	}, aeon.RO(), aeon.MayCall("Room", "nr_players"))
	return s
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		nRooms          = 4
		playersPerRoom  = 6
		itemsPerRoom    = 3
		actionsPerAgent = 200
	)
	sys, err := aeon.New(aeon.WithSchema(buildSchema()), aeon.WithServers(nRooms, aeon.M3Large))
	if err != nil {
		return err
	}
	defer sys.Close()
	rt := sys.Runtime

	castle, err := rt.CreateContext("Building")
	if err != nil {
		return err
	}
	type agent struct {
		player, room, item aeon.ContextID
	}
	var agents []agent
	servers := sys.Cluster.Servers()
	for r := 0; r < nRooms; r++ {
		room, err := rt.CreateContextOn(servers[r%len(servers)].ID(), "Room", castle)
		if err != nil {
			return err
		}
		var items []aeon.ContextID
		for i := 0; i < itemsPerRoom; i++ {
			it, err := rt.CreateContext("Item", room)
			if err != nil {
				return err
			}
			if _, err := rt.Submit(it, "put", 10_000); err != nil {
				return err
			}
			items = append(items, it)
		}
		for p := 0; p < playersPerRoom; p++ {
			player, err := rt.CreateContext("Player", room)
			if err != nil {
				return err
			}
			mine, err := rt.CreateContext("Item", player)
			if err != nil {
				return err
			}
			treasure, err := rt.CreateContext("Item", player)
			if err != nil {
				return err
			}
			if _, err := rt.Submit(mine, "put", 100_000); err != nil {
				return err
			}
			pc, err := rt.Context(player)
			if err != nil {
				return err
			}
			st := pc.State().(*playerState)
			st.Mine, st.Treasure = uint64(mine), uint64(treasure)
			rc, _ := rt.Context(room)
			rc.State().(*roomState).NPlayers++
			agents = append(agents, agent{player: player, room: room, item: items[p%len(items)]})
		}
	}
	fmt.Printf("castle with %d rooms, %d players deployed across %d servers\n",
		nRooms, len(agents), sys.Cluster.Size())

	start := time.Now()
	var wg sync.WaitGroup
	for i, ag := range agents {
		wg.Add(1)
		go func(ag agent, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < actionsPerAgent; n++ {
				var err error
				switch {
				case rng.Intn(100) < 70:
					_, err = rt.Submit(ag.player, "get_gold", 10)
				case rng.Intn(100) < 90:
					_, err = rt.Submit(ag.room, "interact", ag.item, ag.player, 5)
				default:
					_, err = rt.Submit(ag.room, "nr_players")
				}
				if err != nil {
					log.Printf("action failed: %v", err)
					return
				}
			}
		}(ag, int64(i+1))
	}
	// Meanwhile, day turns to night across all rooms, and a census runs.
	for i := 0; i < 3; i++ {
		if _, err := rt.Submit(castle, "updateTimeOfDay"); err != nil {
			return err
		}
	}
	count, err := rt.Submit(castle, "countPlayers")
	if err != nil {
		return err
	}
	wg.Wait()

	elapsed := time.Since(start)
	fmt.Printf("census: %d players online\n", count)
	fmt.Printf("%d events in %v — %.0f events/s, mean latency %v\n",
		rt.Completed.Value(), elapsed.Round(time.Millisecond),
		float64(rt.Completed.Value())/elapsed.Seconds(),
		rt.Latency.Snapshot().Mean.Round(time.Microsecond))
	return nil
}
