// TPC-C: drive the § 6.1.2 benchmark application on AEON and print a small
// scoreboard, comparing multiple ownership against single ownership.
//
// Run with: go run ./examples/tpcc
package main

import (
	"fmt"
	"log"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/tpcc"
	"aeon/internal/transport"
	"aeon/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := tpcc.DefaultConfig()
	cfg.Districts = 4
	cfg.CustomersPerDistrict = 20

	fmt.Println("TPC-C on AEON — 4 districts, 4 servers, 32 closed-loop clients, 5s")
	fmt.Printf("%-10s %12s %12s %12s\n", "system", "txns/s", "mean lat", "p99 lat")
	for _, so := range []bool{false, true} {
		net := transport.NewSim(transport.DefaultSimConfig())
		cl := cluster.New(net)
		for i := 0; i < cfg.Districts; i++ {
			cl.AddServer(cluster.M3Large)
		}
		app, err := tpcc.BuildAEON(cl, cfg, so)
		if err != nil {
			return err
		}
		res := workload.RunClosedLoop(app.DoTxn, 32, 0, 5*time.Second, 1)
		app.Close()
		if res.Errors > 0 {
			return fmt.Errorf("%s: %d txn errors", app.Name(), res.Errors)
		}
		fmt.Printf("%-10s %12.0f %12v %12v\n", app.Name(), res.Throughput,
			res.Latency.Mean.Round(10*time.Microsecond),
			res.Latency.P99.Round(10*time.Microsecond))
	}
	fmt.Println("\n(single ownership crabs the District into the Customer and avoids the")
	fmt.Println(" shared ownership-network updates, trading away District-level sharing)")
	return nil
}
