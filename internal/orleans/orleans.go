// Package orleans reimplements the Orleans baseline (Bykov et al., SoCC'11)
// the paper compares against in § 6: virtual actors ("grains") that are
// single-threaded and non-reentrant, communicate by asynchronous messages,
// and offer no multi-grain atomicity. Cyclic synchronous call chains
// deadlock in Orleans; this implementation detects them on the call path
// and fails the call (the paper: "it's easy to run into deadlocks in
// Orleans with (a cycle of) synchronous method calls").
//
// A configurable per-message overhead factor models the managed-runtime
// (C#) cost the paper cites when explaining why AEON's C++ implementation
// outperforms Orleans ("AEON is implemented in C++ and Orleans uses C#").
// Grain placement hashes over the servers with no locality awareness —
// reason 2 of the paper's § 6.1.1 performance analysis.
package orleans

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/metrics"
	"aeon/internal/transport"
)

var (
	// ErrClosed is returned when calling into a closed runtime.
	ErrClosed = errors.New("orleans: runtime closed")
	// ErrUnknown is returned for unknown grains, classes or methods.
	ErrUnknown = errors.New("orleans: unknown grain, class or method")
	// ErrDeadlock is returned when a synchronous call chain would cycle
	// back into a non-reentrant grain.
	ErrDeadlock = errors.New("orleans: call cycle into non-reentrant grain")
	// ErrDuplicate is returned when a class is registered twice.
	ErrDuplicate = errors.New("orleans: duplicate class")
)

// ClientNode is the logical client network location.
const ClientNode = transport.NodeID(-1)

// GrainID identifies a grain.
type GrainID uint64

// String renders the grain ID.
func (g GrainID) String() string { return fmt.Sprintf("grain#%d", uint64(g)) }

// Handler is a grain method body.
type Handler func(call *Call, args []any) (any, error)

// Method describes one grain method.
type Method struct {
	Name string
	// Cost is the simulated CPU per invocation (scaled by the runtime's
	// overhead factor).
	Cost    time.Duration
	Handler Handler
}

// Class describes a grain class.
type Class struct {
	Name string
	// New creates the grain state.
	New func() any
	// Reentrant allows calls from the grain's own call chain to execute
	// inline instead of deadlocking (Orleans' [Reentrant]).
	Reentrant bool
	// Stateless marks a stateless-worker grain: calls execute concurrently
	// up to Workers (Orleans' [StatelessWorker]).
	Stateless bool
	// Workers bounds stateless concurrency (default 8).
	Workers int

	methods map[string]*Method
}

// Config tunes the runtime.
type Config struct {
	// OverheadFactor scales method Cost (managed-runtime overhead vs the
	// paper's C++ AEON; ≥ 1).
	OverheadFactor float64
	// MessageCPU is the per-delivered-message dispatch cost (scheduling,
	// serialization) burned on the grain's server; every grain call pays it
	// where AEON's co-located calls are plain function calls — the locality
	// argument of § 6.1.1.
	MessageCPU time.Duration
	// MessageBytes sizes messages for latency charging.
	MessageBytes int
	// ChargeClientHops charges client↔server hops per call.
	ChargeClientHops bool
}

// DefaultConfig matches the benchmark harness settings.
func DefaultConfig() Config {
	return Config{
		OverheadFactor:   1.4,
		MessageCPU:       75 * time.Microsecond,
		MessageBytes:     256,
		ChargeClientHops: true,
	}
}

type invocation struct {
	method *Method
	args   []any
	chain  []GrainID
	reply  chan result
	// deferred is set when the handler takes over the reply.
	deferred bool
}

type result struct {
	res any
	err error
}

type grain struct {
	id     GrainID
	class  *Class
	state  any
	server cluster.ServerID

	mu     sync.Mutex
	queue  []*invocation
	notify chan struct{}

	// workers is the stateless-worker semaphore (nil for normal grains).
	workers chan struct{}
}

// Runtime hosts grains over a cluster.
type Runtime struct {
	cfg     Config
	cluster *cluster.Cluster

	mu      sync.RWMutex
	classes map[string]*Class
	grains  map[GrainID]*grain
	nextID  uint64

	closed atomic.Bool
	wg     sync.WaitGroup

	// Latency and Completed mirror the AEON runtime's counters; Deadlocks
	// counts detected call cycles.
	Latency   metrics.Histogram
	Completed metrics.Counter
	Deadlocks metrics.Counter
}

// New creates an Orleans runtime.
func New(cl *cluster.Cluster, cfg Config) *Runtime {
	if cfg.OverheadFactor < 1 {
		cfg.OverheadFactor = 1
	}
	if cfg.MessageBytes == 0 {
		cfg.MessageBytes = 256
	}
	return &Runtime{
		cfg:     cfg,
		cluster: cl,
		classes: make(map[string]*Class),
		grains:  make(map[GrainID]*grain),
	}
}

// Cluster returns the compute substrate.
func (r *Runtime) Cluster() *cluster.Cluster { return r.cluster }

// RegisterClass declares a grain class.
func (r *Runtime) RegisterClass(c *Class) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.classes[c.Name]; ok {
		return fmt.Errorf("%s: %w", c.Name, ErrDuplicate)
	}
	if c.methods == nil {
		c.methods = make(map[string]*Method)
	}
	if c.Stateless && c.Workers == 0 {
		c.Workers = 8
	}
	r.classes[c.Name] = c
	return nil
}

// DeclareMethod adds a method to a registered class.
func (r *Runtime) DeclareMethod(class, name string, cost time.Duration, h Handler) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.classes[class]
	if !ok {
		return fmt.Errorf("%s: %w", class, ErrUnknown)
	}
	if _, ok := c.methods[name]; ok {
		return fmt.Errorf("%s.%s: %w", class, name, ErrDuplicate)
	}
	c.methods[name] = &Method{Name: name, Cost: cost, Handler: h}
	return nil
}

// CreateGrain activates a grain of the given class; placement hashes the
// grain ID over the current servers (no locality awareness).
func (r *Runtime) CreateGrain(class string) (GrainID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cls, ok := r.classes[class]
	if !ok {
		return 0, fmt.Errorf("%s: %w", class, ErrUnknown)
	}
	servers := r.cluster.Servers()
	if len(servers) == 0 {
		return 0, fmt.Errorf("orleans: no servers")
	}
	r.nextID++
	id := GrainID(r.nextID)
	srv := servers[(uint64(id)*2654435761)%uint64(len(servers))]
	g := &grain{
		id:     id,
		class:  cls,
		state:  nil,
		server: srv.ID(),
		notify: make(chan struct{}, 1),
	}
	if cls.New != nil {
		g.state = cls.New()
	}
	if cls.Stateless {
		g.workers = make(chan struct{}, cls.Workers)
	} else {
		r.wg.Add(1)
		go r.grainLoop(g)
	}
	r.grains[id] = g
	srv.AddHosted(1)
	return id, nil
}

// grainLoop is the single-threaded message pump of a stateful grain.
func (r *Runtime) grainLoop(g *grain) {
	defer r.wg.Done()
	defer g.failPending()
	for {
		g.mu.Lock()
		for len(g.queue) == 0 {
			g.mu.Unlock()
			<-g.notify
			if r.closed.Load() {
				return
			}
			g.mu.Lock()
		}
		inv := g.queue[0]
		g.queue = g.queue[1:]
		g.mu.Unlock()

		r.execute(g, inv)
		if r.closed.Load() {
			return
		}
	}
}

// failPending rejects queued invocations when the loop exits so callers
// blocked on replies observe ErrClosed instead of hanging.
func (g *grain) failPending() {
	g.mu.Lock()
	pending := g.queue
	g.queue = nil
	g.mu.Unlock()
	for _, inv := range pending {
		inv.reply <- result{err: ErrClosed}
	}
}

func (r *Runtime) execute(g *grain, inv *invocation) {
	r.chargeCPU(g, inv.method)
	call := &Call{rt: r, grain: g, inv: inv}
	res, err := inv.method.Handler(call, inv.args)
	if !inv.deferred {
		inv.reply <- result{res: res, err: err}
	}
}

// chargeCPU burns the per-message dispatch cost plus the method's declared
// cost (both scaled by the managed-runtime overhead factor) on the grain's
// server.
func (r *Runtime) chargeCPU(g *grain, m *Method) {
	total := r.cfg.MessageCPU + m.Cost
	if total <= 0 {
		return
	}
	if srv, ok := r.cluster.Server(g.server); ok {
		srv.Work(time.Duration(float64(total) * r.cfg.OverheadFactor))
	}
}

// enqueue delivers an invocation to a grain's mailbox.
func (g *grain) enqueue(inv *invocation) {
	g.mu.Lock()
	g.queue = append(g.queue, inv)
	g.mu.Unlock()
	select {
	case g.notify <- struct{}{}:
	default:
	}
}

// Close stops grain loops after their current message.
func (r *Runtime) Close() {
	if r.closed.Swap(true) {
		return
	}
	r.mu.RLock()
	for _, g := range r.grains {
		select {
		case g.notify <- struct{}{}:
		default:
		}
	}
	r.mu.RUnlock()
	r.wg.Wait()
}

// Call invokes a grain method from a client and waits for the reply.
func (r *Runtime) Call(to GrainID, method string, args ...any) (any, error) {
	if r.closed.Load() {
		return nil, ErrClosed
	}
	start := time.Now()
	res, err := r.call(ClientNode, nil, to, method, args)
	r.Latency.Record(time.Since(start))
	r.Completed.Inc()
	return res, err
}

// call routes one invocation; chain carries the synchronous call path for
// deadlock detection.
func (r *Runtime) call(from transport.NodeID, chain []GrainID, to GrainID, method string, args []any) (any, error) {
	r.mu.RLock()
	g, ok := r.grains[to]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%v: %w", to, ErrUnknown)
	}
	m := g.class.methods[method]
	if m == nil {
		return nil, fmt.Errorf("%s.%s: %w", g.class.Name, method, ErrUnknown)
	}
	// Message hop (client calls charge only when configured).
	if from != g.server && (from != ClientNode || r.cfg.ChargeClientHops) {
		if err := r.cluster.Net().Hop(from, g.server, r.cfg.MessageBytes); err != nil {
			return nil, err
		}
	}

	inv := &invocation{method: m, args: args, reply: make(chan result, 1)}
	inv.chain = append(append([]GrainID(nil), chain...), to)

	// Cycle back into a grain already on the chain: reentrant classes run
	// inline (their loop is blocked awaiting this very chain, so state
	// access stays single-threaded); others deadlock.
	for _, link := range chain {
		if link == to {
			if g.class.Reentrant {
				r.chargeCPU(g, m)
				call := &Call{rt: r, grain: g, inv: inv}
				return m.Handler(call, args)
			}
			r.Deadlocks.Inc()
			return nil, fmt.Errorf("%v via %v: %w", to, chain, ErrDeadlock)
		}
	}

	if g.class.Stateless {
		g.workers <- struct{}{}
		defer func() { <-g.workers }()
		r.chargeCPU(g, m)
		call := &Call{rt: r, grain: g, inv: inv}
		return m.Handler(call, args)
	}

	g.enqueue(inv)
	out := <-inv.reply
	// Reply hop back to the caller.
	if from != g.server && (from != ClientNode || r.cfg.ChargeClientHops) {
		_ = r.cluster.Net().Hop(g.server, from, r.cfg.MessageBytes)
	}
	return out.res, out.err
}

// Location returns a grain's hosting server.
func (r *Runtime) Location(id GrainID) (cluster.ServerID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.grains[id]
	if !ok {
		return 0, false
	}
	return g.server, true
}

// State exposes grain state for tests and setup.
func (r *Runtime) State(id GrainID) (any, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.grains[id]
	if !ok {
		return nil, fmt.Errorf("%v: %w", id, ErrUnknown)
	}
	return g.state, nil
}

// Call is the environment a grain method executes in.
type Call struct {
	rt    *Runtime
	grain *grain
	inv   *invocation
}

// Self returns the executing grain.
func (c *Call) Self() GrainID { return c.grain.id }

// State returns the grain state.
func (c *Call) State() any { return c.grain.state }

// Call synchronously invokes another grain. The calling grain's message
// loop stays blocked until the reply arrives (non-reentrancy).
func (c *Call) Call(to GrainID, method string, args ...any) (any, error) {
	return c.rt.call(c.grain.server, c.inv.chain, to, method, args)
}

// Promise is an outstanding asynchronous grain call.
type Promise struct {
	done chan struct{}
	res  any
	err  error
}

// Wait blocks until the call completes.
func (p *Promise) Wait() (any, error) {
	<-p.done
	return p.res, p.err
}

// CallAsync invokes another grain without blocking the current handler;
// the grain still does not process new messages until the handler returns.
func (c *Call) CallAsync(to GrainID, method string, args ...any) *Promise {
	p := &Promise{done: make(chan struct{})}
	go func() {
		defer close(p.done)
		p.res, p.err = c.rt.call(c.grain.server, c.inv.chain, to, method, args)
	}()
	return p
}

// Deferred is a reply the handler resolves later (Orleans'
// TaskCompletionSource pattern, used by application-level lock grains).
type Deferred struct {
	inv *invocation
}

// DeferReply takes over the reply: the handler's return value is ignored
// and the caller stays blocked until Resolve is called.
func (c *Call) DeferReply() *Deferred {
	c.inv.deferred = true
	return &Deferred{inv: c.inv}
}

// Resolve completes a deferred reply.
func (d *Deferred) Resolve(res any, err error) {
	d.inv.reply <- result{res: res, err: err}
}

// Work consumes simulated CPU on the grain's server.
func (c *Call) Work(d time.Duration) {
	if srv, ok := c.rt.cluster.Server(c.grain.server); ok {
		srv.Work(time.Duration(float64(d) * c.rt.cfg.OverheadFactor))
	}
}
