package orleans

import (
	"errors"
	"sync"
	"testing"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/transport"
)

type counter struct {
	N int
}

func newRuntime(t *testing.T, servers int) *Runtime {
	t.Helper()
	cl := cluster.New(transport.NullNetwork{})
	for i := 0; i < servers; i++ {
		cl.AddServer(cluster.M3Large)
	}
	rt := New(cl, Config{OverheadFactor: 1})
	t.Cleanup(rt.Close)
	return rt
}

func declareCounter(t *testing.T, rt *Runtime, class string) {
	t.Helper()
	if err := rt.RegisterClass(&Class{Name: class, New: func() any { return &counter{} }}); err != nil {
		t.Fatal(err)
	}
	if err := rt.DeclareMethod(class, "inc", 0, func(call *Call, args []any) (any, error) {
		st := call.State().(*counter)
		st.N++
		return st.N, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.DeclareMethod(class, "get", 0, func(call *Call, args []any) (any, error) {
		return call.State().(*counter).N, nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCallBasic(t *testing.T) {
	rt := newRuntime(t, 1)
	declareCounter(t, rt, "C")
	id, err := rt.CreateGrain("C")
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Call(id, "inc")
	if err != nil {
		t.Fatal(err)
	}
	if res.(int) != 1 {
		t.Fatalf("res = %v", res)
	}
}

func TestUnknowns(t *testing.T) {
	rt := newRuntime(t, 1)
	declareCounter(t, rt, "C")
	if _, err := rt.CreateGrain("Ghost"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("err = %v; want ErrUnknown", err)
	}
	id, _ := rt.CreateGrain("C")
	if _, err := rt.Call(id, "ghost"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("err = %v; want ErrUnknown", err)
	}
	if _, err := rt.Call(GrainID(999), "inc"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("err = %v; want ErrUnknown", err)
	}
}

func TestDuplicateRegistration(t *testing.T) {
	rt := newRuntime(t, 1)
	declareCounter(t, rt, "C")
	if err := rt.RegisterClass(&Class{Name: "C"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v; want ErrDuplicate", err)
	}
	if err := rt.DeclareMethod("C", "inc", 0, nil); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v; want ErrDuplicate", err)
	}
}

// TestGrainSingleThreaded: concurrent calls to one grain serialize; the
// counter must not lose updates despite no locking in the handler.
func TestGrainSingleThreaded(t *testing.T) {
	rt := newRuntime(t, 2)
	declareCounter(t, rt, "C")
	id, _ := rt.CreateGrain("C")
	const calls = 200
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := rt.Call(id, "inc"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	res, _ := rt.Call(id, "get")
	if res.(int) != calls {
		t.Fatalf("count = %v; want %d", res, calls)
	}
}

// TestNonReentrantWhileAwaiting: while grain A awaits a call to B, A must
// not process other messages.
func TestNonReentrantWhileAwaiting(t *testing.T) {
	rt := newRuntime(t, 1)
	release := make(chan struct{})
	entered := make(chan struct{})
	if err := rt.RegisterClass(&Class{Name: "A", New: func() any { return &counter{} }}); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterClass(&Class{Name: "B"}); err != nil {
		t.Fatal(err)
	}
	if err := rt.DeclareMethod("B", "block", 0, func(call *Call, args []any) (any, error) {
		close(entered)
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	var bID GrainID
	if err := rt.DeclareMethod("A", "callB", 0, func(call *Call, args []any) (any, error) {
		return call.Call(bID, "block")
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.DeclareMethod("A", "quick", 0, func(call *Call, args []any) (any, error) {
		call.State().(*counter).N++
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	aID, _ := rt.CreateGrain("A")
	var err2 error
	bID, err2 = rt.CreateGrain("B")
	if err2 != nil {
		t.Fatal(err2)
	}

	slow := make(chan struct{})
	go func() {
		_, _ = rt.Call(aID, "callB")
		close(slow)
	}()
	<-entered // A is now blocked inside B

	quickDone := make(chan struct{})
	go func() {
		_, _ = rt.Call(aID, "quick")
		close(quickDone)
	}()
	select {
	case <-quickDone:
		t.Fatal("grain processed a message while awaiting (should be non-reentrant)")
	case <-time.After(30 * time.Millisecond):
	}
	close(release)
	<-slow
	<-quickDone
}

func TestDeadlockDetection(t *testing.T) {
	rt := newRuntime(t, 1)
	if err := rt.RegisterClass(&Class{Name: "P"}); err != nil {
		t.Fatal(err)
	}
	var a, b GrainID
	if err := rt.DeclareMethod("P", "ping", 0, func(call *Call, args []any) (any, error) {
		other := args[0].(GrainID)
		return call.Call(other, "ping", call.Self())
	}); err != nil {
		t.Fatal(err)
	}
	a, _ = rt.CreateGrain("P")
	b, _ = rt.CreateGrain("P")
	_, err := rt.Call(a, "ping", b)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v; want ErrDeadlock", err)
	}
	if rt.Deadlocks.Value() == 0 {
		t.Fatal("deadlock counter should increment")
	}
}

func TestReentrantAllowsCycle(t *testing.T) {
	rt := newRuntime(t, 1)
	if err := rt.RegisterClass(&Class{Name: "R", Reentrant: true, New: func() any { return &counter{} }}); err != nil {
		t.Fatal(err)
	}
	var a, b GrainID
	if err := rt.DeclareMethod("R", "bounce", 0, func(call *Call, args []any) (any, error) {
		depth := args[0].(int)
		if depth == 0 {
			return "done", nil
		}
		other := args[1].(GrainID)
		return call.Call(other, "bounce", depth-1, call.Self())
	}); err != nil {
		t.Fatal(err)
	}
	a, _ = rt.CreateGrain("R")
	b, _ = rt.CreateGrain("R")
	res, err := rt.Call(a, "bounce", 4, b)
	if err != nil {
		t.Fatal(err)
	}
	if res != "done" {
		t.Fatalf("res = %v", res)
	}
}

func TestStatelessWorkersRunConcurrently(t *testing.T) {
	rt := newRuntime(t, 1)
	if err := rt.RegisterClass(&Class{Name: "W", Stateless: true, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if err := rt.DeclareMethod("W", "slow", 0, func(call *Call, args []any) (any, error) {
		time.Sleep(30 * time.Millisecond)
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	id, _ := rt.CreateGrain("W")
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := rt.Call(id, "slow"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if el := time.Since(start); el > 90*time.Millisecond {
		t.Fatalf("4 stateless calls took %v; want ≈30ms", el)
	}
}

func TestDeferredReply(t *testing.T) {
	// An application-level lock grain: lock defers its reply until unlock.
	rt := newRuntime(t, 1)
	type lockState struct {
		held    bool
		waiters []*Deferred
	}
	if err := rt.RegisterClass(&Class{Name: "Lock", New: func() any { return &lockState{} }}); err != nil {
		t.Fatal(err)
	}
	if err := rt.DeclareMethod("Lock", "lock", 0, func(call *Call, args []any) (any, error) {
		st := call.State().(*lockState)
		if !st.held {
			st.held = true
			return "acquired", nil
		}
		st.waiters = append(st.waiters, call.DeferReply())
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.DeclareMethod("Lock", "unlock", 0, func(call *Call, args []any) (any, error) {
		st := call.State().(*lockState)
		if len(st.waiters) > 0 {
			next := st.waiters[0]
			st.waiters = st.waiters[1:]
			next.Resolve("acquired", nil)
		} else {
			st.held = false
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	id, _ := rt.CreateGrain("Lock")

	if res, err := rt.Call(id, "lock"); err != nil || res != "acquired" {
		t.Fatalf("first lock: %v %v", res, err)
	}
	second := make(chan struct{})
	go func() {
		if res, err := rt.Call(id, "lock"); err != nil || res != "acquired" {
			t.Errorf("second lock: %v %v", res, err)
		}
		close(second)
	}()
	select {
	case <-second:
		t.Fatal("second lock acquired while held")
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := rt.Call(id, "unlock"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-second:
	case <-time.After(time.Second):
		t.Fatal("second locker never admitted")
	}
}

func TestNoMultiGrainAtomicity(t *testing.T) {
	// Two grains updated by a two-step client operation interleave with a
	// reader: unlike AEON, Orleans exposes the intermediate state. This
	// documents the semantic gap (Orleans* in the paper's terms).
	rt := newRuntime(t, 1)
	declareCounter(t, rt, "C")
	g1, _ := rt.CreateGrain("C")
	g2, _ := rt.CreateGrain("C")

	var observedSkew bool
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			a, err1 := rt.Call(g1, "get")
			b, err2 := rt.Call(g2, "get")
			if err1 == nil && err2 == nil && a.(int) != b.(int) {
				mu.Lock()
				observedSkew = true
				mu.Unlock()
			}
		}
	}()
	for i := 0; i < 500; i++ {
		if _, err := rt.Call(g1, "inc"); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Call(g2, "inc"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if !observedSkew {
		t.Log("no skew observed this run (timing-dependent); not failing")
	}
}

func TestHashPlacementSpreads(t *testing.T) {
	rt := newRuntime(t, 4)
	declareCounter(t, rt, "C")
	hosts := make(map[cluster.ServerID]int)
	for i := 0; i < 64; i++ {
		id, err := rt.CreateGrain("C")
		if err != nil {
			t.Fatal(err)
		}
		srv, _ := rt.Location(id)
		hosts[srv]++
	}
	if len(hosts) < 3 {
		t.Fatalf("placement used only %d servers: %v", len(hosts), hosts)
	}
}

func TestCloseRejectsCalls(t *testing.T) {
	rt := newRuntime(t, 1)
	declareCounter(t, rt, "C")
	id, _ := rt.CreateGrain("C")
	rt.Close()
	if _, err := rt.Call(id, "inc"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v; want ErrClosed", err)
	}
}
