package chaos

// Seeded fault schedules. A schedule is generated up front from its own
// PRNG — no wall-clock, no runtime state — so the same seed always yields
// the same fault timeline, bit for bit. The runner then walks the slot
// clock and executes each action verbatim, which is what makes a chaos soak
// reproducible: a failure report names the seed, and re-running it replays
// the exact fault sequence against the same workload.
//
// Windows are sequential and non-overlapping (inject at slot s, heal at
// s+hold, next fault after a gap). That is a deliberate invariant, not a
// simplification: the node-kill protocol checkpoints against boot
// placements, and migration round-trips restore them, so "at most one fault
// in flight" is what lets every fault class reason about the state it finds.

import (
	"fmt"
	"math/rand"
)

// Fault classes.
const (
	ClassMesh    = "mesh"
	ClassKill    = "kill"
	ClassStore   = "store"
	ClassMigrate = "migrate"
	ClassLag     = "lag"
)

// Mesh fault variants.
const (
	MeshDrop      = "drop"      // drop one directed node link
	MeshPartition = "partition" // partition a node pair both ways
	MeshDup       = "dup"       // duplicate node→store-replica calls
)

// Action is one scheduled fault transition. Inject and heal of the same
// fault carry identical parameters.
type Action struct {
	Slot  int
	Heal  bool
	Class string
	Kind  string // mesh variant; empty for other classes
	A     int    // node / partition / root index (class-dependent)
	B     int    // peer node / replica offset / destination server
}

// String renders the canonical timeline line. Determinism checks compare
// these strings, so the format is part of the schedule's contract.
func (a Action) String() string {
	verb := "inject"
	if a.Heal {
		verb = "heal"
	}
	switch a.Class {
	case ClassMesh:
		return fmt.Sprintf("slot=%03d %s mesh/%s a=%d b=%d", a.Slot, verb, a.Kind, a.A, a.B)
	case ClassKill:
		return fmt.Sprintf("slot=%03d %s kill node=%d", a.Slot, verb, a.A)
	case ClassStore:
		return fmt.Sprintf("slot=%03d %s store part=%d replica=%d", a.Slot, verb, a.A, a.B)
	case ClassMigrate:
		return fmt.Sprintf("slot=%03d %s migrate root=%d to=%d", a.Slot, verb, a.A, a.B)
	case ClassLag:
		return fmt.Sprintf("slot=%03d %s lag node=%d", a.Slot, verb, a.A)
	}
	return fmt.Sprintf("slot=%03d %s %s", a.Slot, verb, a.Class)
}

// Shape is the deployment geometry a schedule is generated against. It is
// derived from the topology and scenario before deployment, so generation
// never touches live state.
type Shape struct {
	Nodes      int // node count; victims are picked from 2..Nodes
	StoreParts int // store partitions (0 disables the store class)
	Roots      int // migration-safe group roots (0 disables migrate)
	// RootServer gives the boot server (1-based) of root r, for choosing a
	// migration destination that is actually a move.
	RootServer func(r int) int
}

// Schedule is a pre-generated fault timeline over a fixed slot count.
type Schedule struct {
	Seed    int64
	Slots   int
	Actions []Action
}

// Lines renders the canonical timeline.
func (s *Schedule) Lines() []string {
	out := make([]string, len(s.Actions))
	for i, a := range s.Actions {
		out[i] = a.String()
	}
	return out
}

// Classes reports how many faults of each class the schedule injects.
func (s *Schedule) Classes() map[string]int {
	m := make(map[string]int)
	for _, a := range s.Actions {
		if !a.Heal {
			m[a.Class]++
		}
	}
	return m
}

// Generate builds the deterministic schedule for a seed: the first faults
// cycle through every applicable class in a seed-shuffled order (so even a
// short soak covers all five), then classes are drawn at random until the
// slots run out. Store-replica kills are budgeted to one per partition —
// killing a second replica would cost the partition its majority, which is
// an outage, not a fault the plane is specified to mask.
func Generate(seed int64, slots int, sh Shape) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Seed: seed, Slots: slots}
	if sh.Nodes < 2 {
		return s // nothing to fault: every class needs a peer to disturb
	}

	classes := []string{ClassMesh, ClassKill, ClassMigrate, ClassLag, ClassStore}
	rng.Shuffle(len(classes), func(i, j int) { classes[i], classes[j] = classes[j], classes[i] })

	storeBudget := make([]bool, sh.StoreParts)
	storeLeft := sh.StoreParts
	usable := func(class string) bool {
		switch class {
		case ClassKill, ClassLag:
			return sh.Nodes >= 2
		case ClassStore:
			return storeLeft > 0
		case ClassMigrate:
			return sh.Roots > 0 && sh.Nodes >= 2
		}
		return true
	}

	cursor := 1
	next := 0
	for {
		hold := 2 + rng.Intn(3) // fault active for 2..4 slots
		gap := 1 + rng.Intn(2)  // quiet slots after the heal
		if cursor+hold+1 >= slots {
			break
		}
		var class string
		for {
			if next < len(classes) {
				class = classes[next]
				next++
			} else {
				class = classes[rng.Intn(len(classes))]
			}
			if usable(class) {
				break
			}
		}
		inject := Action{Slot: cursor, Class: class}
		switch class {
		case ClassMesh:
			switch rng.Intn(3) {
			case 0:
				inject.Kind = MeshDrop
				inject.A = 1 + rng.Intn(sh.Nodes)
				inject.B = 1 + rng.Intn(sh.Nodes-1)
				if inject.B >= inject.A {
					inject.B++
				}
			case 1:
				inject.Kind = MeshPartition
				inject.A = 1 + rng.Intn(sh.Nodes)
				inject.B = 1 + rng.Intn(sh.Nodes-1)
				if inject.B >= inject.A {
					inject.B++
				}
				if inject.B < inject.A {
					inject.A, inject.B = inject.B, inject.A
				}
			default:
				inject.Kind = MeshDup
				inject.A = 1 + rng.Intn(sh.Nodes)
				if sh.StoreParts > 0 {
					inject.B = rng.Intn(sh.StoreParts * storeRF)
				}
			}
		case ClassKill, ClassLag:
			inject.A = 2 + rng.Intn(sh.Nodes-1)
		case ClassStore:
			p := rng.Intn(sh.StoreParts)
			for storeBudget[p] {
				p = (p + 1) % sh.StoreParts
			}
			storeBudget[p] = true
			storeLeft--
			inject.A = p
			inject.B = 0 // boot primary; only one kill per partition
		case ClassMigrate:
			r := rng.Intn(sh.Roots)
			boot := sh.RootServer(r)
			dest := 1 + rng.Intn(sh.Nodes-1)
			if dest >= boot {
				dest++
			}
			inject.A = r
			inject.B = dest
		}
		s.Actions = append(s.Actions, inject)
		heal := inject
		heal.Slot = cursor + hold
		heal.Heal = true
		s.Actions = append(s.Actions, heal)
		cursor += hold + gap
	}
	return s
}
