package chaos

// The oracle-diffed traffic driver. Workers generate scenario soak ops and
// submit them through live nodes while faults fire; per-entity accounting
// tracks exactly what the harness may later assert. The core discipline is
// outcome classification:
//
//   - acked: the submit returned success — its effects MUST be visible.
//   - failed: the error proves the event never executed (typed fail-fast
//     errors from the synchronous in-memory mesh: dropped, partitioned,
//     unknown node, lag-refused, backpressure, closed) — its effects MUST
//     NOT be counted.
//   - ambiguous: anything else. The event may or may not have executed, so
//     its effects widen the upper bound of the entity's counter.
//
// That yields the soak invariant checked at every checkpoint and at the
// final quiesce: for every entity, observed - baseline ∈ [ackedLow,
// started], where started is the delta sum of every op that began, and —
// after quiescing — observed - baseline ∈ [acked, acked + ambiguous], with
// equality required when ambiguity is zero.

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aeon/internal/core"
	"aeon/internal/ingress"
	"aeon/internal/metrics"
	"aeon/internal/node"
	"aeon/internal/replication"
	"aeon/internal/transport"
	"aeon/internal/workload"
)

// entityAcct is one entity's soak accounting.
type entityAcct struct {
	started  atomic.Uint64 // delta sum of every op that began (upper bound)
	acked    atomic.Uint64 // delta sum of acknowledged ops (lower bound)
	ambig    atomic.Uint64 // delta sum of ambiguous-outcome ops
	inflight atomic.Int64  // ops currently in flight touching this entity
	frozen   atomic.Bool   // set while the entity's host is being killed
}

// driver runs soak traffic against a deployment.
type driver struct {
	scen  workload.Scenario
	nodes []transport.NodeID
	alive []atomic.Bool // alive[i] gates submits via nodes[i]
	// byID is the driver's own node handle map: the runner swaps handles in
	// on restart under mu, so workers never race Deployment.Restart's write
	// to the deployment's slice.
	mu      sync.RWMutex
	byID    map[transport.NodeID]*node.Node
	ents    []entityAcct
	lat     *metrics.Histogram
	ingress *ingress.Client // non-nil: submits ride batched ingress frames

	attempts  atomic.Uint64
	acked     atomic.Uint64
	failed    atomic.Uint64
	ambiguous atomic.Uint64
	skipped   atomic.Uint64

	// hazard is the unixnano stamp of the latest reply-loss hazard: the
	// instant a partition finished engaging or a node finished dying. A
	// call in flight across that instant may have executed and lost only
	// its reply (the sim network checks the partition on the reply hop
	// too), so partition/closed errors on ops started before the stamp are
	// ambiguous, not proof of non-execution.
	hazard atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

func newDriver(scen workload.Scenario, d *node.Deployment, ing *ingress.Client) *driver {
	dr := &driver{
		scen:    scen,
		byID:    make(map[transport.NodeID]*node.Node),
		ents:    make([]entityAcct, scen.Entities()),
		lat:     &metrics.Histogram{},
		ingress: ing,
		stop:    make(chan struct{}),
	}
	for _, n := range d.Nodes {
		dr.nodes = append(dr.nodes, n.ID())
		dr.byID[n.ID()] = n
	}
	dr.alive = make([]atomic.Bool, len(dr.nodes))
	for i := range dr.alive {
		dr.alive[i].Store(true)
	}
	return dr
}

// retrySafe reports whether err proves the event did not execute. The
// in-memory mesh is synchronous: a request-side transport error means the
// handler never ran, and the typed admission errors (lag refusal,
// backpressure, closed runtime) fail before execution by construction.
// Server-side errors that crossed the ingress wire arrive re-typed by
// WireError, so errors.Is covers them too; the string fallback catches
// transport sentinels that were flattened into a message en route.
func retrySafe(err error) bool {
	switch {
	case errors.Is(err, transport.ErrDropped),
		errors.Is(err, transport.ErrPartitioned),
		errors.Is(err, transport.ErrNodeUnknown),
		errors.Is(err, transport.ErrClosed),
		errors.Is(err, replication.ErrReplicaLagging),
		errors.Is(err, core.ErrBackpressure),
		errors.Is(err, core.ErrClosed),
		errors.Is(err, node.ErrTooManyHops):
		return true
	}
	msg := err.Error()
	for _, s := range []string{"call dropped", "link partitioned", "unknown node", "replica lagging", "endpoint closed"} {
		if strings.Contains(msg, s) {
			return true
		}
	}
	return false
}

// noteHazard stamps a reply-loss hazard instant; the runner calls it right
// after a partition engages or a victim's process is torn down.
func (dr *driver) noteHazard() { dr.hazard.Store(time.Now().UnixNano()) }

// hazardSensitive reports whether err is one of the kinds a reply loss can
// masquerade as: the request-side variants of these are retry-safe, but a
// call that was already past its request hop fails identically when the
// fault lands on the reply.
func hazardSensitive(err error) bool {
	if errors.Is(err, transport.ErrPartitioned) || errors.Is(err, transport.ErrClosed) {
		return true
	}
	msg := err.Error()
	return strings.Contains(msg, "link partitioned") || strings.Contains(msg, "endpoint closed")
}

// markDead/markAlive gate which nodes workers submit through.
func (dr *driver) markDead(id transport.NodeID) {
	for i, n := range dr.nodes {
		if n == id {
			dr.alive[i].Store(false)
		}
	}
}

func (dr *driver) markAlive(id transport.NodeID) {
	for i, n := range dr.nodes {
		if n == id {
			dr.alive[i].Store(true)
		}
	}
}

// freeze marks every entity hosted on srv and waits for in-flight ops on
// them to drain, so a checkpoint of srv captures a quiescent state.
func (dr *driver) freeze(srv int, timeout time.Duration) []int {
	var frozen []int
	for e := range dr.ents {
		if int(dr.scen.EntityServer(e)) == srv {
			dr.ents[e].frozen.Store(true)
			frozen = append(frozen, e)
		}
	}
	deadline := time.Now().Add(timeout)
	for {
		busy := false
		for _, e := range frozen {
			if dr.ents[e].inflight.Load() != 0 {
				busy = true
				break
			}
		}
		if !busy || time.Now().After(deadline) {
			return frozen
		}
		time.Sleep(time.Millisecond)
	}
}

func (dr *driver) unfreeze(frozen []int) {
	for _, e := range frozen {
		dr.ents[e].frozen.Store(false)
	}
}

// submitter returns the submit function routed via the given live node —
// plain node submits, or batched ingress futures when the driver has an
// ingress client (the IoT soak shape: high fan-in telemetry riding
// coalesced submit frames).
func (dr *driver) submit(op workload.SoakOp) error {
	if dr.ingress != nil {
		_, err := dr.ingress.Go(op.Target, op.Method, op.Args...).Wait()
		return err
	}
	// Round-robin over live nodes, deterministic enough for soak purposes.
	start := int(dr.attempts.Load())
	for i := 0; i < len(dr.nodes); i++ {
		idx := (start + i) % len(dr.nodes)
		if !dr.alive[idx].Load() {
			continue
		}
		dr.mu.RLock()
		n := dr.byID[dr.nodes[idx]]
		dr.mu.RUnlock()
		if n == nil {
			continue
		}
		_, err := n.Submit(op.Target, op.Method, op.Args...)
		return err
	}
	return transport.ErrNodeUnknown // no live node to submit through
}

// setNode swaps in a restarted node's handle.
func (dr *driver) setNode(n *node.Node) {
	dr.mu.Lock()
	dr.byID[n.ID()] = n
	dr.mu.Unlock()
}

// run starts workers generating seeded soak traffic until stopDriver.
func (dr *driver) run(seed int64, workers int) {
	for w := 0; w < workers; w++ {
		rng := rand.New(rand.NewSource(seed + int64(w)*7919))
		dr.wg.Add(1)
		go func() {
			defer dr.wg.Done()
			for {
				select {
				case <-dr.stop:
					return
				default:
				}
				dr.step(rng)
			}
		}()
	}
}

// step generates and submits one op, classifying its outcome.
func (dr *driver) step(rng *rand.Rand) {
	op := dr.scen.SoakOp(rng)
	for _, ef := range op.Effects {
		if dr.ents[ef.Entity].frozen.Load() {
			dr.skipped.Add(1)
			time.Sleep(time.Millisecond)
			return
		}
	}
	for _, ef := range op.Effects {
		dr.ents[ef.Entity].inflight.Add(1)
		dr.ents[ef.Entity].started.Add(ef.Delta)
	}
	dr.attempts.Add(1)
	t0 := time.Now()
	err := dr.submit(op)
	dr.lat.Record(time.Since(t0))
	switch {
	case err == nil:
		dr.acked.Add(1)
		for _, ef := range op.Effects {
			dr.ents[ef.Entity].acked.Add(ef.Delta)
		}
	case retrySafe(err) && !(hazardSensitive(err) && t0.UnixNano() < dr.hazard.Load()):
		dr.failed.Add(1)
		time.Sleep(time.Millisecond) // back off instead of hammering a fault
	default:
		dr.ambiguous.Add(1)
		for _, ef := range op.Effects {
			dr.ents[ef.Entity].ambig.Add(ef.Delta)
		}
	}
	for _, ef := range op.Effects {
		dr.ents[ef.Entity].inflight.Add(-1)
	}
}

// stopDriver halts the workers and waits for in-flight ops to finish.
func (dr *driver) stopDriver() {
	close(dr.stop)
	dr.wg.Wait()
}

// availability is the fraction of attempted ops that were acknowledged.
func (dr *driver) availability() float64 {
	att := dr.attempts.Load()
	if att == 0 {
		return 1
	}
	return float64(dr.acked.Load()) / float64(att)
}
