// Package chaos is the seeded fault-injection soak harness: it deploys a
// scenario workload (internal/workload) on the multi-process node harness,
// drives oracle-diffed traffic through it, and walks a deterministic fault
// schedule — mesh drops/partitions/duplicates, node kill+restart, store
// replica kill+failover, migration churn, replication-lag windows — while
// model-checking convergence invariants and SLOs at every checkpoint.
//
// Everything is derived from the seed: the schedule from its own PRNG, the
// soak traffic from per-worker PRNGs seeded off the same value. A failure
// report therefore names one integer that replays the exact fault timeline.
package chaos

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/ingress"
	"aeon/internal/node"
	"aeon/internal/transport"
	"aeon/internal/workload"
)

// storeRF mirrors the harness's fixed store replication factor; schedule
// generation needs it to enumerate store replicas without importing node.
const storeRF = node.StoreRF

// Config parameterizes one chaos soak.
type Config struct {
	// Scenario is the workload name ("iot", "social").
	Scenario string
	// Nodes is the node/server count (default 3; victims come from 2..N).
	Nodes int
	// StoreParts is the store partition count (default 2); the store plane
	// always replicates (Replicate is forced on — chaos without a durable
	// log has nothing to converge to).
	StoreParts int
	// StoreBackend optionally overrides the store backend spec, e.g.
	// "disk+fsync:<dir>" to soak against fsynced journals.
	StoreBackend string
	// Seed drives the fault schedule and all soak traffic.
	Seed int64
	// Duration is the soak length (default 8s); Step is the slot width
	// (default 250ms). Slots = Duration/Step.
	Duration time.Duration
	Step     time.Duration
	// Workers is the soak worker count (default 4).
	Workers int
	// AvailabilityFloor is the minimum acked/attempted ratio asserted at
	// every checkpoint (default 0.5).
	AvailabilityFloor float64
	// P99Ceiling is the client-observed p99 latency ceiling (default 3s —
	// lag-gated submits legitimately block for the lag window's length).
	P99Ceiling time.Duration
	// Log, when set, receives progress lines.
	Log func(string)
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.StoreParts == 0 {
		c.StoreParts = 2
	}
	if c.Duration == 0 {
		c.Duration = 8 * time.Second
	}
	if c.Step == 0 {
		c.Step = 250 * time.Millisecond
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.AvailabilityFloor == 0 {
		c.AvailabilityFloor = 0.5
	}
	if c.P99Ceiling == 0 {
		c.P99Ceiling = 3 * time.Second
	}
	return c
}

// Report is the outcome of one soak.
type Report struct {
	Workload string         `json:"workload"`
	Seed     int64          `json:"seed"`
	Slots    int            `json:"slots"`
	Timeline []string       `json:"timeline"` // canonical schedule lines
	Faults   map[string]int `json:"faults"`   // injected faults per class

	Ops       uint64 `json:"ops"`
	Acked     uint64 `json:"acked"`
	Failed    uint64 `json:"failed"`
	Ambiguous uint64 `json:"ambiguous"`
	Skipped   uint64 `json:"skipped"`

	Availability float64       `json:"availability"`
	ClientP50    time.Duration `json:"client_p50_ns"`
	ClientP99    time.Duration `json:"client_p99_ns"`
	NodeP99      time.Duration `json:"node_p99_ns"`

	// Recovery is the worst observed post-heal recovery time per fault
	// class: heal-to-first-success for mesh and migrate, restart-to-ready
	// for kill, failover-to-first-write for store, resume-to-caught-up for
	// lag.
	Recovery map[string]time.Duration `json:"recovery_ns"`

	Checkpoints int      `json:"checkpoints"`
	OracleDiffs int      `json:"oracle_diffs"`
	Violations  []string `json:"violations"`
}

// runner holds the live soak state.
type runner struct {
	cfg   Config
	scen  workload.Scenario
	net   *transport.SimNetwork
	fm    *transport.FaultyMesh
	top   node.Topology
	d     *node.Deployment
	dr    *driver
	ing   *ingress.Client
	sched *Schedule

	base      []uint64 // per-entity baseline counter after the script
	fence     []uint64 // per-partition max observed fence epoch
	salts     []string // per-partition probe-key salt (salt/x lands in p)
	probes    int      // probe keys written so far
	frozen    []int    // entities frozen by the in-flight kill window
	migrated  map[int]bool
	deadStore map[int]bool

	recovery   map[string]time.Duration
	violations []string
	checks     int
}

func (r *runner) logf(format string, args ...any) {
	if r.cfg.Log != nil {
		r.cfg.Log(fmt.Sprintf(format, args...))
	}
}

func (r *runner) violate(format string, args ...any) {
	r.violations = append(r.violations, fmt.Sprintf(format, args...))
	r.logf("VIOLATION: "+format, args...)
}

func (r *runner) noteRecovery(class string, d time.Duration) {
	if d > r.recovery[class] {
		r.recovery[class] = d
	}
}

func (r *runner) node(i int) *node.Node { return r.d.Node(transport.NodeID(i)) }

// emit publishes a chaos lifecycle event into the ops plane's event ring
// (node 1 is never a victim, so its registry observes the whole soak).
func (r *runner) emit(a Action) {
	reg := r.node(1).Ops()
	if reg == nil {
		return
	}
	typ := "chaos.inject"
	if a.Heal {
		typ = "chaos.heal"
	}
	reg.Emit(typ, map[string]any{
		"slot": a.Slot, "class": a.Class, "kind": a.Kind, "a": a.A, "b": a.B,
	})
}

// waitUntil polls f until it succeeds or the timeout elapses, returning the
// elapsed time — the recovery-probe primitive.
func waitUntil(timeout time.Duration, f func() bool) (time.Duration, bool) {
	t0 := time.Now()
	for {
		if f() {
			return time.Since(t0), true
		}
		if time.Since(t0) > timeout {
			return time.Since(t0), false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// probeSalts finds, per store partition, a key-group salt that the
// partition hash maps into that partition, so failover probes can target a
// specific partition's primary.
func probeSalts(parts int) []string {
	salts := make([]string, parts)
	found := 0
	for i := 0; found < parts; i++ {
		salt := fmt.Sprintf("chaosprobe-%d", i)
		h := fnv.New32a()
		h.Write([]byte(salt))
		p := int(h.Sum32() % uint32(parts))
		if salts[p] == "" {
			salts[p] = salt
			found++
		}
	}
	return salts
}

// Run executes one seeded chaos soak end to end and returns its report.
// Invariant violations are reported, not returned as errors; err is non-nil
// only when the soak could not be set up at all.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	scen, err := workload.NewScenario(cfg.Scenario, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	oracle, err := workload.Oracle(cfg.Scenario, cfg.Nodes)
	if err != nil {
		return nil, fmt.Errorf("chaos: oracle: %w", err)
	}

	net := transport.NewSim(transport.SimConfig{})
	fm := transport.NewFaultyMesh(transport.NewInMemMesh(net))
	top := node.Topology{
		Nodes:        cfg.Nodes,
		Scenario:     scen,
		StoreParts:   cfg.StoreParts,
		StoreBackend: cfg.StoreBackend,
		Replicate:    true,
		EnableOps:    true,
	}
	d, err := node.Deploy(fm, top)
	if err != nil {
		return nil, fmt.Errorf("chaos: deploy: %w", err)
	}
	defer d.Close()
	if err := d.WaitReady(15 * time.Second); err != nil {
		return nil, fmt.Errorf("chaos: mesh never settled: %w", err)
	}

	r := &runner{
		cfg: cfg, scen: scen, net: net, fm: fm, top: top, d: d,
		migrated:  make(map[int]bool),
		deadStore: make(map[int]bool),
		recovery:  make(map[string]time.Duration),
		salts:     probeSalts(cfg.StoreParts),
	}

	// Preflight: the deterministic script through the live deployment must
	// match the single-process oracle line for line before any fault fires.
	// A mismatch here is a correctness bug, not a chaos finding.
	got := scen.Script(d.Nodes[0].Submit)
	diffs := 0
	for i := range oracle {
		if i >= len(got) || got[i] != oracle[i] {
			diffs++
		}
	}
	if len(got) != len(oracle) {
		diffs += abs(len(got) - len(oracle))
	}
	if diffs > 0 {
		r.violate("preflight: %d oracle transcript diffs", diffs)
	}

	// Baselines: entity counters after the script, and fence epochs.
	r.base = make([]uint64, scen.Entities())
	for e := range r.base {
		v, err := scen.ReadEntity(d.Nodes[0].Submit, e)
		if err != nil {
			return nil, fmt.Errorf("chaos: baseline read of entity %d: %w", e, err)
		}
		r.base[e] = v
	}
	r.fence = make([]uint64, cfg.StoreParts)
	for p := range r.fence {
		r.fence[p] = r.maxFence(p)
	}

	// The IoT soak rides batched ingress futures (the high fan-in telemetry
	// shape), sampling every 8th submit into a trace; social drives plain
	// node submits so the virtual-join forwarding path stays hot.
	var ing *ingress.Client
	if cfg.Scenario == "iot" {
		ids := make([]transport.NodeID, cfg.Nodes)
		for i := range ids {
			ids[i] = transport.NodeID(i + 1)
		}
		ing, err = ingress.Dial(fm, ingress.Config{Nodes: ids, Trace: true, TraceSample: 8})
		if err != nil {
			return nil, fmt.Errorf("chaos: ingress: %w", err)
		}
		defer ing.Close()
	}

	slots := int(cfg.Duration / cfg.Step)
	sh := Shape{
		Nodes:      cfg.Nodes,
		StoreParts: cfg.StoreParts,
		Roots:      len(scen.Roots()),
		RootServer: func(root int) int { return int(scen.RootServer(root)) },
	}
	r.sched = Generate(cfg.Seed, slots, sh)
	r.logf("chaos: seed=%d slots=%d faults=%v", cfg.Seed, slots, r.sched.Classes())

	r.dr = newDriver(scen, d, ing)
	r.dr.run(cfg.Seed+0x9e3779b9, cfg.Workers)

	// The slot clock. Actions are generated in slot order; recovery probes
	// run inline, so a slow recovery delays later slots but never reorders
	// them — the sequential-windows invariant holds even when wall time
	// slips.
	next := 0
	ticker := time.NewTicker(cfg.Step)
	for slot := 0; slot < slots; slot++ {
		<-ticker.C
		for next < len(r.sched.Actions) && r.sched.Actions[next].Slot <= slot {
			a := r.sched.Actions[next]
			next++
			r.logf("%s", a.String())
			r.emit(a)
			if a.Heal {
				r.heal(a)
			} else {
				r.inject(a)
			}
		}
		if slot > 0 && slot%6 == 0 {
			r.checkpoint()
		}
	}
	ticker.Stop()
	for next < len(r.sched.Actions) { // heal anything scheduled past the end
		a := r.sched.Actions[next]
		next++
		r.logf("%s (post-loop)", a.String())
		r.emit(a)
		if a.Heal {
			r.heal(a)
		} else {
			r.inject(a)
		}
	}

	r.dr.stopDriver()
	r.quiesce()
	r.finalCheck()

	rep := &Report{
		Workload:     cfg.Scenario,
		Seed:         cfg.Seed,
		Slots:        slots,
		Timeline:     r.sched.Lines(),
		Faults:       r.sched.Classes(),
		Ops:          r.dr.attempts.Load(),
		Acked:        r.dr.acked.Load(),
		Failed:       r.dr.failed.Load(),
		Ambiguous:    r.dr.ambiguous.Load(),
		Skipped:      r.dr.skipped.Load(),
		Availability: r.dr.availability(),
		ClientP50:    r.dr.lat.Quantile(0.50),
		ClientP99:    r.dr.lat.Quantile(0.99),
		NodeP99:      r.nodeP99(),
		Recovery:     r.recovery,
		Checkpoints:  r.checks,
		OracleDiffs:  diffs,
		Violations:   r.violations,
	}
	return rep, nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// ---- fault executors ----

func (r *runner) inject(a Action) {
	switch a.Class {
	case ClassMesh:
		switch a.Kind {
		case MeshDrop:
			r.fm.Drop(transport.NodeID(a.A), transport.NodeID(a.B))
		case MeshPartition:
			r.net.Partition(transport.NodeID(a.A), transport.NodeID(a.B))
			r.net.Partition(transport.NodeID(a.B), transport.NodeID(a.A))
			// Calls in flight across this instant may lose only their reply.
			r.dr.noteHazard()
		case MeshDup:
			// Duplicate node→store-replica calls: the store surface is
			// idempotent (CAS appends, versioned puts), so at-least-once
			// delivery must be absorbed. Node→node submits are deliberately
			// never duplicated — event execution is not idempotent.
			to := node.StoreIDBase + transport.NodeID(a.B+1)
			r.fm.Duplicate(transport.NodeID(a.A), to, 2)
		}
	case ClassKill:
		r.killNode(a.A)
	case ClassStore:
		r.killStore(a.A)
	case ClassMigrate:
		r.migrate(a, false)
	case ClassLag:
		r.lagStart(a.A)
	}
}

func (r *runner) heal(a Action) {
	switch a.Class {
	case ClassMesh:
		switch a.Kind {
		case MeshDrop:
			r.fm.Heal(transport.NodeID(a.A), transport.NodeID(a.B))
			r.probeLink(a.A, a.B)
		case MeshPartition:
			r.net.Heal(transport.NodeID(a.A), transport.NodeID(a.B))
			r.net.Heal(transport.NodeID(a.B), transport.NodeID(a.A))
			r.probeLink(a.A, a.B)
			r.probeLink(a.B, a.A)
		case MeshDup:
			// Duplication self-expires after its call budget; nothing to heal.
		}
	case ClassKill:
		r.restartNode(a.A)
	case ClassStore:
		// The killed primary stays dead: the partition runs on its quorum
		// remainder for the rest of the soak, which is itself an invariant
		// under test. Recovery was measured at inject time (failover).
	case ClassMigrate:
		r.migrate(a, true)
	case ClassLag:
		r.lagStop(a.A)
	}
}

// probeLink waits until a submit from node `from` reaching an entity hosted
// on server `to` succeeds — the mesh-heal recovery probe.
func (r *runner) probeLink(from, to int) {
	e := -1
	for i := 0; i < r.scen.Entities(); i++ {
		if int(r.scen.EntityServer(i)) == to {
			e = i
			break
		}
	}
	if e < 0 {
		return
	}
	n := r.node(from)
	el, ok := waitUntil(10*time.Second, func() bool {
		_, err := r.scen.ReadEntity(n.Submit, e)
		return err == nil
	})
	if !ok {
		r.violate("mesh heal %d->%d: no recovery after %v", from, to, el)
		return
	}
	r.noteRecovery(ClassMesh, el)
}

// killNode runs the crash protocol against node v: stop routing to it,
// freeze and drain its entities, checkpoint its server, then tear the
// process down. The freeze models what a real deployment gets from
// fencing: no acked writes race the checkpoint.
func (r *runner) killNode(v int) {
	id := transport.NodeID(v)
	r.dr.markDead(id)
	r.frozen = r.dr.freeze(v, 2*time.Second)
	vn := r.node(v)
	if _, err := vn.Manager().CheckpointServer(cluster.ServerID(v)); err != nil {
		r.violate("kill node=%d: checkpoint: %v", v, err)
	}
	_ = vn.Close()
	vn.Runtime().Close()
	// Ops that entered through the victim en route to other servers were
	// not drained by the freeze; any such call in flight across the close
	// may have executed downstream and lost only its reply.
	r.dr.noteHazard()
}

// restartNode brings the victim back: rebuild the process on the same mesh
// ID, wait for bidirectional reachability and replica catch-up, restore the
// freshest checkpoints for every context its directory places on the
// revived server, then reopen traffic.
func (r *runner) restartNode(v int) {
	id := transport.NodeID(v)
	t0 := time.Now()
	// The restarted process builds against a fresh scenario instance:
	// Build on the shared instance would rewrite its ID slices while soak
	// workers read them through SoakOp. Deterministic construction is the
	// point of the Scenario contract — the clone derives identical IDs.
	top := r.top
	if fresh, err := workload.NewScenario(r.cfg.Scenario, r.cfg.Nodes); err == nil {
		top.Scenario = fresh
	}
	nn, err := r.d.Restart(r.fm, top, id)
	if err != nil {
		r.violate("restart node=%d: %v", v, err)
		r.dr.unfreeze(r.frozen)
		r.frozen = nil
		return
	}
	r.dr.setNode(nn)
	one := r.node(1)
	if _, ok := waitUntil(10*time.Second, func() bool {
		return nn.Ping(one.ID()) == nil && one.Ping(id) == nil
	}); !ok {
		r.violate("restart node=%d: never re-meshed", v)
	}
	if err := nn.Plane().WaitFor(one.Plane().Applied(), 10*time.Second); err != nil {
		r.violate("restart node=%d: replica catch-up: %v", v, err)
	}
	r.restoreSnapshots(nn, cluster.ServerID(v))
	r.noteRecovery(ClassKill, time.Since(t0))
	r.dr.unfreeze(r.frozen)
	r.frozen = nil
	r.dr.markAlive(id)
}

// restoreSnapshots loads the freshest per-context checkpoint for every
// context the restarted node's directory places on srv. Contexts without a
// snapshot (virtual joins, zero-state churn creations) are skipped: replay
// of the replicated mutation log already rebuilt their structure.
func (r *runner) restoreSnapshots(nn *node.Node, srv cluster.ServerID) {
	ids := nn.Runtime().Directory().HostedOn(srv)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, ctx := range ids {
		keys, err := nn.Store().List(fmt.Sprintf("snapshot/%d/", uint64(ctx)))
		if err != nil || len(keys) == 0 {
			continue
		}
		best, bestSeq := "", uint64(0)
		for _, k := range keys {
			var root, seq uint64
			if _, err := fmt.Sscanf(k, "snapshot/%d/%d", &root, &seq); err == nil && seq >= bestSeq {
				best, bestSeq = k, seq
			}
		}
		states, err := nn.Manager().LoadSnapshot(best)
		if err != nil {
			r.violate("restore %v: load %q: %v", ctx, best, err)
			continue
		}
		if err := nn.Manager().Restore(states); err != nil {
			r.violate("restore %v: %v", ctx, err)
		}
	}
}

// killStore closes partition p's boot primary, then measures failover by
// probing writes into that partition until the survivors' quorum serves
// them, and asserts the fence epoch advanced — a promotion happened, and
// stale-primary writes are fenced out.
func (r *runner) killStore(p int) {
	id := node.StoreIDBase + transport.NodeID(storeRF*p+1)
	srv := r.d.StoreServerFor(id)
	if srv == nil {
		r.violate("store part=%d: no server at %v", p, id)
		return
	}
	_ = srv.Close()
	r.deadStore[p] = true
	st := r.node(1).Store()
	el, ok := waitUntil(20*time.Second, func() bool {
		r.probes++
		key := fmt.Sprintf("%s/probe-%d", r.salts[p], r.probes)
		_, err := st.Put(key, []byte("x"))
		return err == nil
	})
	if !ok {
		r.violate("store part=%d: no failover after %v", p, el)
		return
	}
	r.noteRecovery(ClassStore, el)
	if cur := r.maxFence(p); cur <= r.fence[p] {
		r.violate("store part=%d: fence epoch did not advance on failover (%d)", p, cur)
	} else {
		r.fence[p] = cur
	}
}

// maxFence reads partition p's highest fence epoch across all replica
// backends (backends outlive killed servers, so dead replicas still count —
// an epoch must never regress anywhere).
func (r *runner) maxFence(p int) uint64 {
	var max uint64
	for rr := 0; rr < storeRF; rr++ {
		be := r.d.StoreBackends[storeRF*p+rr]
		if be == nil {
			continue
		}
		if e, err := be.FenceEpoch(p); err == nil && e > max {
			max = e
		}
	}
	return max
}

// migrate moves root a.A to server a.B (inject) and back to its boot server
// (heal), probing a group member after each move. Soak traffic keeps
// running: ops against the moving group resolve via forwarding or fail with
// retry-safe errors, never ambiguously.
func (r *runner) migrate(a Action, back bool) {
	root := r.scen.Roots()[a.A]
	boot := int(r.scen.RootServer(a.A))
	owner, dest := boot, a.B
	if back {
		if !r.migrated[a.A] {
			return // the outbound move failed; nothing to bring home
		}
		owner, dest = a.B, boot
		delete(r.migrated, a.A)
	}
	if err := r.node(1).MigrateRemote(transport.NodeID(owner), root, cluster.ServerID(dest)); err != nil {
		r.violate("migrate root=%d %d->%d: %v", a.A, owner, dest, err)
		return
	}
	if !back {
		r.migrated[a.A] = true
	}
	e := r.scen.RootEntity(a.A)
	one := r.node(1)
	el, ok := waitUntil(10*time.Second, func() bool {
		_, err := r.scen.ReadEntity(one.Submit, e)
		return err == nil
	})
	if !ok {
		r.violate("migrate root=%d: entity %d unreachable after move", a.A, e)
		return
	}
	r.noteRecovery(ClassMigrate, el)
}

// lagStart pauses the victim's replication apply loop and pushes inert
// churn through the log from node 1, so every peer's applied sequence
// advances past the victim's. Submits forwarded to the victim now carry
// MinSeq above its replica and block in the lag gate — the latency spike
// this fault class exists to produce.
func (r *runner) lagStart(v int) {
	r.node(v).Plane().Pause()
	one := r.node(1)
	for i := 0; i < 8; i++ {
		target, method, args := r.scen.ChurnOp()
		if _, err := one.Submit(target, method, args...); err != nil {
			r.violate("lag churn %d: %v", i, err)
			return
		}
	}
}

// lagStop resumes the victim and measures catch-up to the head its peers
// already applied.
func (r *runner) lagStop(v int) {
	vp := r.node(v).Plane()
	target := r.node(1).Plane().Applied()
	t0 := time.Now()
	vp.Resume()
	if err := vp.WaitFor(target, 10*time.Second); err != nil {
		r.violate("lag node=%d: no catch-up to %d: %v", v, target, err)
		return
	}
	r.noteRecovery(ClassLag, time.Since(t0))
}

// ---- invariant checks ----

// readEntity reads entity e, preferring its home node: a local submit is
// the authoritative path and skips the forwarded-submit lag gate, so a
// checkpoint inside a replication-lag window doesn't stall the slot clock
// for ReplicaLagWait per entity. Mid-soak reads race live faults, so
// persistent failure means "skip", not "violation".
func (r *runner) readEntity(e int) (uint64, bool) {
	home := int(r.scen.EntityServer(e))
	order := make([]int, 0, r.cfg.Nodes)
	order = append(order, home)
	for i := 1; i <= r.cfg.Nodes; i++ {
		if i != home {
			order = append(order, i)
		}
	}
	for attempt := 0; attempt < 2; attempt++ {
		for _, i := range order {
			idx := i - 1
			if !r.dr.alive[idx].Load() {
				continue
			}
			r.dr.mu.RLock()
			n := r.dr.byID[r.dr.nodes[idx]]
			r.dr.mu.RUnlock()
			if n == nil {
				continue
			}
			if v, err := r.scen.ReadEntity(n.Submit, e); err == nil {
				return v, true
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return 0, false
}

// checkpoint asserts the mid-soak invariants: every readable entity's
// counter sits inside [acked-before-read, started-after-read]; fence epochs
// are monotone; availability and p99 hold their SLOs.
func (r *runner) checkpoint() {
	r.checks++
	checked := 0
	for e := range r.dr.ents {
		if r.dr.ents[e].frozen.Load() {
			continue
		}
		ackedLo := r.dr.ents[e].acked.Load()
		v, ok := r.readEntity(e)
		if !ok {
			continue // a live fault is in the read path; the final check is strict
		}
		started := r.dr.ents[e].started.Load()
		delta := v - r.base[e]
		if delta < ackedLo || delta > started {
			r.violate("checkpoint %d: entity %d counter %d outside [%d,%d]",
				r.checks, e, delta, ackedLo, started)
		}
		checked++
	}
	for p := range r.fence {
		cur := r.maxFence(p)
		if cur < r.fence[p] {
			r.violate("checkpoint %d: fence epoch regressed on part %d: %d < %d",
				r.checks, p, cur, r.fence[p])
		} else {
			r.fence[p] = cur
		}
	}
	if av := r.dr.availability(); av < r.cfg.AvailabilityFloor {
		r.violate("checkpoint %d: availability %.3f below floor %.3f",
			r.checks, av, r.cfg.AvailabilityFloor)
	}
	if p99 := r.dr.lat.Quantile(0.99); p99 > r.cfg.P99Ceiling {
		r.violate("checkpoint %d: client p99 %v above ceiling %v",
			r.checks, p99, r.cfg.P99Ceiling)
	}
	r.logf("checkpoint %d: %d/%d entities checked, availability %.3f",
		r.checks, checked, len(r.dr.ents), r.dr.availability())
}

// quiesce waits for every node's replica to apply the highest head any of
// them has observed, so the final check reads a converged system.
func (r *runner) quiesce() {
	var head uint64
	for _, n := range r.d.Nodes {
		if h := n.Plane().Head(); h > head {
			head = h
		}
	}
	for _, n := range r.d.Nodes {
		if err := n.Plane().WaitFor(head, 10*time.Second); err != nil {
			r.violate("quiesce: node %v never applied %d: %v", n.ID(), head, err)
		}
	}
	time.Sleep(100 * time.Millisecond)
}

// finalCheck is the strict post-quiesce audit: two independent nodes must
// agree on every entity counter, each counter must equal base + acked
// exactly when no op's outcome was ambiguous (and sit within the ambiguity
// envelope otherwise), and every replicated-log record the dead store
// primaries acked must survive on their partition's quorum remainder.
func (r *runner) finalCheck() {
	n1, n2 := r.d.Nodes[0], r.d.Nodes[1]
	for e := range r.dr.ents {
		v1, err1 := r.scen.ReadEntity(n1.Submit, e)
		v2, err2 := r.scen.ReadEntity(n2.Submit, e)
		if err1 != nil || err2 != nil {
			r.violate("final: entity %d unreadable (%v / %v)", e, err1, err2)
			continue
		}
		if v1 != v2 {
			r.violate("final: entity %d diverges across nodes: %d vs %d", e, v1, v2)
		}
		acked := r.dr.ents[e].acked.Load()
		ambig := r.dr.ents[e].ambig.Load()
		delta := v1 - r.base[e]
		if delta < acked || delta > acked+ambig {
			r.violate("final: entity %d counter %d outside [%d,%d] (acked-write loss or phantom)",
				e, delta, acked, acked+ambig)
		}
	}
	// No acked-write loss at the store layer: everything the dead boot
	// primary accepted into the replicated log must exist on a survivor. A
	// trailing record can legitimately be primary-local (accepted but never
	// quorum-acked before the kill), so tolerate a one-record straggle.
	for p := range r.deadStore {
		dead := r.d.StoreBackends[storeRF*p]
		deadKeys, err := dead.List("replog/rec/")
		if err != nil {
			continue
		}
		surv := make(map[string]bool)
		for rr := 1; rr < storeRF; rr++ {
			keys, err := r.d.StoreBackends[storeRF*p+rr].List("replog/rec/")
			if err != nil {
				continue
			}
			for _, k := range keys {
				surv[k] = true
			}
		}
		missing := 0
		for _, k := range deadKeys {
			if !surv[k] {
				missing++
			}
		}
		if missing > 1 {
			r.violate("final: store part %d lost %d acked log records on failover", p, missing)
		}
	}
}

// nodeP99 is the worst server-side submit p99 across the fleet, read from
// each node's ops registry.
func (r *runner) nodeP99() time.Duration {
	var worst time.Duration
	for _, n := range r.d.Nodes {
		reg := n.Ops()
		if reg == nil {
			continue
		}
		if _, _, p99, ok := reg.Summary("aeon_node_submit_seconds"); ok && p99 > worst {
			worst = p99
		}
	}
	return worst
}
