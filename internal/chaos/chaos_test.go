package chaos

import (
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"
)

func testShape() Shape {
	return Shape{Nodes: 3, StoreParts: 2, Roots: 3,
		RootServer: func(r int) int { return r + 1 }}
}

// Same seed, same shape ⇒ bit-identical timeline. This is the contract that
// makes a chaos failure reproducible from its seed alone.
func TestScheduleDeterministic(t *testing.T) {
	a := Generate(42, 64, testShape())
	b := Generate(42, 64, testShape())
	if !reflect.DeepEqual(a.Lines(), b.Lines()) {
		t.Fatalf("same seed diverged:\n%v\nvs\n%v", a.Lines(), b.Lines())
	}
	c := Generate(43, 64, testShape())
	if reflect.DeepEqual(a.Lines(), c.Lines()) {
		t.Fatalf("different seeds produced identical schedules")
	}
}

// A long enough schedule injects every fault class, and the early windows
// cycle through all of them before any class repeats.
func TestScheduleCoversAllClasses(t *testing.T) {
	s := Generate(7, 96, testShape())
	classes := s.Classes()
	for _, c := range []string{ClassMesh, ClassKill, ClassStore, ClassMigrate, ClassLag} {
		if classes[c] == 0 {
			t.Fatalf("seed 7 over 96 slots never injected %q: %v", c, classes)
		}
	}
	// Windows are sequential: every inject heals before the next inject.
	open := ""
	for _, a := range s.Actions {
		if a.Heal {
			if open != a.Class {
				t.Fatalf("heal %v without matching open inject (open=%q)", a, open)
			}
			open = ""
		} else {
			if open != "" {
				t.Fatalf("inject %v while %q still open", a, open)
			}
			open = a.Class
		}
	}
	if open != "" {
		t.Fatalf("schedule ends with %q unhealed", open)
	}
}

// Schedule parameters must respect the deployment geometry: victims never
// include node 1, store kills hit each partition's boot primary at most
// once, migrations actually move.
func TestScheduleParameterBounds(t *testing.T) {
	sh := testShape()
	s := Generate(99, 128, sh)
	storeKills := map[int]int{}
	for _, a := range s.Actions {
		if a.Heal {
			continue
		}
		switch a.Class {
		case ClassKill, ClassLag:
			if a.A < 2 || a.A > sh.Nodes {
				t.Fatalf("victim out of range: %v", a)
			}
		case ClassStore:
			storeKills[a.A]++
			if a.B != 0 {
				t.Fatalf("store kill must target the boot primary: %v", a)
			}
		case ClassMigrate:
			if a.B == sh.RootServer(a.A) {
				t.Fatalf("migration to its own boot server is not a move: %v", a)
			}
		case ClassMesh:
			if a.Kind == MeshDrop || a.Kind == MeshPartition {
				if a.A == a.B {
					t.Fatalf("self-link mesh fault: %v", a)
				}
			}
		}
	}
	for p, n := range storeKills {
		if n > 1 {
			t.Fatalf("partition %d primary killed %d times (majority lost)", p, n)
		}
	}
}

// runSoak drives a short but fault-complete chaos soak for one workload and
// asserts the report is violation-free.
func runSoak(t *testing.T, scenario string) *Report {
	t.Helper()
	// CHAOS_SOAK_SECONDS stretches the soak; CI runs ~30s per workload while
	// a local `go test` stays at the fault-complete 8s minimum.
	dur := 8 * time.Second
	if s := os.Getenv("CHAOS_SOAK_SECONDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			dur = time.Duration(n) * time.Second
		}
	}
	rep, err := Run(Config{
		Scenario: scenario,
		Seed:     11,
		Duration: dur,
		Log:      func(s string) { t.Log(s) },
	})
	if err != nil {
		t.Fatalf("soak setup: %v", err)
	}
	if rep.OracleDiffs != 0 {
		t.Fatalf("%d oracle diffs before any fault", rep.OracleDiffs)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Acked == 0 {
		t.Fatalf("soak acked nothing (ops=%d failed=%d)", rep.Ops, rep.Failed)
	}
	for _, c := range []string{ClassMesh, ClassKill, ClassStore, ClassMigrate, ClassLag} {
		if rep.Faults[c] == 0 {
			t.Errorf("soak never injected %q: %v", c, rep.Faults)
		}
	}
	t.Logf("%s: ops=%d acked=%d failed=%d ambig=%d skipped=%d avail=%.3f p99=%v checkpoints=%d recovery=%v",
		scenario, rep.Ops, rep.Acked, rep.Failed, rep.Ambiguous, rep.Skipped,
		rep.Availability, rep.ClientP99, rep.Checkpoints, rep.Recovery)
	return rep
}

func TestChaosSoakIoT(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is seconds-long")
	}
	runSoak(t, "iot")
}

func TestChaosSoakSocial(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is seconds-long")
	}
	runSoak(t, "social")
}
