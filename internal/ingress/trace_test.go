package ingress_test

import (
	"testing"

	"aeon/internal/ingress"
	"aeon/internal/node"
	"aeon/internal/transport"
)

// deployTraced builds a 2-node deployment with per-node ops registries and a
// traced ingress client pinned to node 2 — so submits against bank 1
// (hosted on node 1) must forward, leaving spans on both nodes.
func deployTraced(t *testing.T) (*node.Deployment, *ingress.Client) {
	t.Helper()
	mesh := transport.NewInMemMesh(transport.NewSim(transport.SimConfig{}))
	d, err := node.Deploy(mesh, node.Topology{Nodes: 2, EnableOps: true})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	t.Cleanup(d.Close)
	cli, err := ingress.Dial(mesh, ingress.Config{
		Nodes: []transport.NodeID{2},
		Trace: true,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { _ = cli.Close() })
	return d, cli
}

// spansOf drains a node's event feed and returns its trace spans as
// trace→hop→action.
func spansOf(t *testing.T, n *node.Node) map[string]map[int]string {
	t.Helper()
	events, _, _, _ := n.Ops().EventsSince(0)
	out := map[string]map[int]string{}
	for _, ev := range events {
		if ev.Type != "trace.span" {
			continue
		}
		tr := ev.Fields["trace"].(string)
		if out[tr] == nil {
			out[tr] = map[int]string{}
		}
		out[tr][ev.Fields["hop"].(int)] = ev.Fields["action"].(string)
	}
	return out
}

// TestTraceSpansAcrossForward pins end-to-end tracing: a traced ingress
// submit deliberately routed to the wrong node leaves a forward span (hop 0)
// on the misrouted node and an execute span (hop 1) on the owner — same
// trace ID on both, proving the 8-byte trace survives the hot codec and the
// forwarding hop.
func TestTraceSpansAcrossForward(t *testing.T) {
	d, cli := deployTraced(t)

	acct := d.Top.Accounts[0][0]
	if _, err := cli.Submit(acct, "deposit", 5); err != nil {
		t.Fatalf("traced deposit: %v", err)
	}

	entry, owner := spansOf(t, d.Nodes[1]), spansOf(t, d.Nodes[0])
	matched := false
	for tr, hops := range entry {
		if hops[0] == "forward" && owner[tr][1] == "execute" {
			matched = true
		}
	}
	if !matched {
		t.Fatalf("no trace spans both nodes: entry node saw %v, owner saw %v", entry, owner)
	}
}

// TestTraceSpansAcrossBatchForward pins trace propagation through batch
// sub-frames: a traced batch hitting the wrong node is regrouped and
// forwarded as a sub-batch carrying the same trace, so the entry node
// records batch-forward and the owner records batch-execute under one ID.
func TestTraceSpansAcrossBatchForward(t *testing.T) {
	d, cli := deployTraced(t)

	acct := d.Top.Accounts[0][0] // owned by node 1, routed to node 2
	res := cli.SubmitBatch([]ingress.BatchItem{
		{Target: acct, Method: "deposit", Args: []any{1}},
		{Target: acct, Method: "deposit", Args: []any{2}},
	})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("batch deposit %d: %v", i, r.Err)
		}
	}

	entry, owner := spansOf(t, d.Nodes[1]), spansOf(t, d.Nodes[0])
	matched := false
	for tr, hops := range entry {
		if hops[0] == "batch-forward" && owner[tr][1] == "batch-execute" {
			matched = true
		}
	}
	if !matched {
		t.Fatalf("no batch trace spans both nodes: entry saw %v, owner saw %v", entry, owner)
	}
}

// TestTraceSamplingMintsEveryNth pins Config.TraceSample: with a sample
// rate of N, exactly one submit in N carries a trace ID (observable as
// execute spans on the owner), and the rest ride untraced — the escape
// hatch from the ~15–25% always-on tracing tax.
func TestTraceSamplingMintsEveryNth(t *testing.T) {
	mesh := transport.NewInMemMesh(transport.NewSim(transport.SimConfig{}))
	d, err := node.Deploy(mesh, node.Topology{Nodes: 2, EnableOps: true})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	t.Cleanup(d.Close)
	const sample, submits = 4, 20
	cli, err := ingress.Dial(mesh, ingress.Config{
		Nodes:       []transport.NodeID{1},
		Trace:       true,
		TraceSample: sample,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { _ = cli.Close() })

	acct := d.Top.Accounts[0][0] // owned by node 1, no forwarding
	for i := 0; i < submits; i++ {
		if _, err := cli.Submit(acct, "deposit", 1); err != nil {
			t.Fatalf("deposit %d: %v", i, err)
		}
	}
	traces := spansOf(t, d.Nodes[0])
	if want := submits / sample; len(traces) != want {
		t.Fatalf("sampled %d traces out of %d submits at 1/%d, want %d: %v",
			len(traces), submits, sample, want, traces)
	}
}
