// Package ingress is the client SDK for submitting events to an AEON
// deployment from outside the fleet: a Client attaches to the transport mesh
// as a non-serving endpoint, speaks the node wire protocol's hot submit
// frames, and pipelines many in-flight submits over one multiplexed
// connection per node (transport.Stream) instead of paying a strict
// request/response round trip per event.
//
// Routing. Events execute on the node embodying the server that hosts their
// dominator. The client does not know placements a priori: it routes each
// target to its cached node (falling back to a default node round-robin for
// unseen targets) and repairs the cache from the authoritative Host field
// every submit response carries — exactly the stale-directory repair peer
// nodes use (§ 5.2). A stale route costs one server-side forwarding hop,
// never a failure, and the very next submit for that target goes direct.
//
// Backpressure. Pipelined submits share the per-stream in-flight window
// (transport.MuxWindow); when it fills, Submit blocks until a slot frees or
// the call timeout expires. Go (the async variant) additionally bounds the
// client's total in-flight futures by Config.Window so a producer that never
// waits cannot spawn unbounded goroutines.
//
// Batching. SubmitBatch ships many events per frame (see batch.go), and Go's
// futures transparently coalesce onto the same batch frames so high-rate
// async producers pay the per-event wakeup once per batch, not once per
// event. Failures stay per-event.
package ingress

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aeon/internal/node"
	"aeon/internal/ops"
	"aeon/internal/ownership"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

// ClientIDBase is the start of the mesh-address range ingress clients
// auto-assign from. Fleet nodes use small IDs (1:1 with server IDs), so the
// ranges cannot collide in any realistic deployment.
const ClientIDBase transport.NodeID = 1 << 16

var nextClientID atomic.Int64

// ErrClientClosed is returned by calls on a closed Client.
var ErrClientClosed = errors.New("ingress: client closed")

// Config describes one ingress client.
type Config struct {
	// ID is the client's mesh address. Zero auto-assigns from ClientIDBase.
	ID transport.NodeID
	// Nodes lists the fleet's mesh addresses. Targets with no cached route
	// are submitted round-robin across these (the response repairs the
	// cache). Required.
	Nodes []transport.NodeID
	// CallTimeout bounds each submit. Zero means 10s.
	CallTimeout time.Duration
	// Window bounds in-flight futures from Go. Zero means 256.
	Window int
	// NoPipeline disables multiplexed streams: every submit is a one-shot
	// mesh call (one outstanding request per connection). The bench uses it
	// as the baseline; real clients leave it off.
	NoPipeline bool
	// Linger is how long Go holds an async submit so batchmates bound for
	// the same node can coalesce into one frame before it flushes. Zero
	// means 100µs. Ignored when NoCoalesce or NoPipeline is set.
	Linger time.Duration
	// MaxBatch caps events per batch frame: SubmitBatch chunks larger
	// inputs and the coalescer flushes early when a batch fills. Zero means
	// 128; values above schema.MaxBatchEvents are clamped.
	MaxBatch int
	// NoCoalesce makes Go submit each event as its own frame (no linger,
	// no batching) instead of riding the per-node coalescer. SubmitBatch
	// still batches.
	NoCoalesce bool
	// Trace stamps submit and batch frames with a fresh 8-byte trace ID
	// (client ID in the high bits, a per-client sequence in the low).
	// Nodes propagate the ID across forwarding hops and surface per-hop
	// span records on their /events feed. Costs one varint per frame.
	Trace bool
	// TraceSample, when > 1, mints a trace ID on every Nth frame instead
	// of all of them: sampled-out frames carry trace 0, which the nodes'
	// span path treats as untraced (no event-ring mutex, no fields map).
	// Always-on tracing costs ~15–25% of ingress throughput at
	// saturation, so soaks and production-shaped runs trace sampled.
	// Ignored unless Trace is set; <= 1 means every frame.
	TraceSample int
}

// Client submits events to an AEON deployment over the mesh.
type Client struct {
	cfg Config
	ep  transport.Endpoint

	// routes caches target → node placement, repaired from authoritative
	// submit responses.
	routes sync.Map // ownership.ID → transport.NodeID

	streamMu sync.Mutex
	streams  map[transport.NodeID]transport.Stream

	// coals holds the per-node coalescers Go's futures ride; nil once the
	// client closes.
	coalMu sync.Mutex
	coals  map[transport.NodeID]*coalescer

	rr     atomic.Uint64 // round-robin cursor over cfg.Nodes
	window chan struct{} // Go's in-flight bound

	traceSeq atomic.Uint64 // per-client trace-ID sequence (Config.Trace)

	// Coalescer accounting: why batches flushed and how full they were.
	flushFill   atomic.Uint64 // batch reached MaxBatch
	flushLinger atomic.Uint64 // linger window elapsed first
	flushClose  atomic.Uint64 // client closed with events pending
	coalFlushes atomic.Uint64 // coalesced batches shipped
	coalEvents  atomic.Uint64 // events those batches carried

	closed atomic.Bool
}

// CoalescerStats reports why coalesced batches flushed and how full they
// were. FillRatio is mean batch occupancy relative to MaxBatch.
type CoalescerStats struct {
	FlushFill   uint64
	FlushLinger uint64
	FlushClose  uint64
	Flushes     uint64
	Events      uint64
	MaxBatch    int
}

// FillRatio returns mean events-per-flush divided by MaxBatch (0 when no
// batch has flushed yet).
func (s CoalescerStats) FillRatio() float64 {
	if s.Flushes == 0 || s.MaxBatch == 0 {
		return 0
	}
	return float64(s.Events) / float64(s.Flushes) / float64(s.MaxBatch)
}

// CoalescerStats snapshots the client's coalescer accounting.
func (c *Client) CoalescerStats() CoalescerStats {
	return CoalescerStats{
		FlushFill:   c.flushFill.Load(),
		FlushLinger: c.flushLinger.Load(),
		FlushClose:  c.flushClose.Load(),
		Flushes:     c.coalFlushes.Load(),
		Events:      c.coalEvents.Load(),
		MaxBatch:    c.cfg.MaxBatch,
	}
}

// nextTrace mints a frame trace ID, or 0 when tracing is off or the frame
// is sampled out. The sequence advances on every traced-eligible frame, so
// a sample rate of N traces exactly one frame in N.
func (c *Client) nextTrace() uint64 {
	if !c.cfg.Trace {
		return 0
	}
	seq := c.traceSeq.Add(1)
	if c.cfg.TraceSample > 1 && seq%uint64(c.cfg.TraceSample) != 0 {
		return 0
	}
	return uint64(c.ep.ID())<<32 | (seq & 0xffffffff)
}

// Dial attaches a client to the mesh. The client endpoint never serves
// requests; peers that call it get an error.
func Dial(mesh transport.Mesh, cfg Config) (*Client, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("ingress: Config.Nodes is required")
	}
	if cfg.ID == 0 {
		cfg.ID = ClientIDBase + transport.NodeID(nextClientID.Add(1))
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 10 * time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	if cfg.Linger <= 0 {
		cfg.Linger = 100 * time.Microsecond
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 128
	}
	if cfg.MaxBatch > schema.MaxBatchEvents {
		cfg.MaxBatch = schema.MaxBatchEvents
	}
	ep, err := mesh.Attach(cfg.ID, func(ctx context.Context, from transport.NodeID, req transport.Message) (transport.Message, error) {
		return transport.Message{}, fmt.Errorf("ingress client %v does not serve requests", cfg.ID)
	})
	if err != nil {
		return nil, fmt.Errorf("ingress: attach client %v: %w", cfg.ID, err)
	}
	return &Client{
		cfg:     cfg,
		ep:      ep,
		streams: make(map[transport.NodeID]transport.Stream),
		coals:   make(map[transport.NodeID]*coalescer),
		window:  make(chan struct{}, cfg.Window),
	}, nil
}

// ID returns the client's mesh address.
func (c *Client) ID() transport.NodeID { return c.ep.ID() }

// Close detaches the client and closes its streams. In-flight submits fail;
// coalesced futures not yet flushed resolve with ErrClientClosed.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	c.coalMu.Lock()
	coals := c.coals
	c.coals = nil
	c.coalMu.Unlock()
	for _, co := range coals {
		co.mu.Lock()
		_, futures := co.take()
		co.mu.Unlock()
		if len(futures) > 0 {
			c.flushClose.Add(1)
		}
		for _, f := range futures {
			f.err = ErrClientClosed
			close(f.done)
			<-c.window
		}
	}
	c.streamMu.Lock()
	streams := c.streams
	c.streams = make(map[transport.NodeID]transport.Stream)
	c.streamMu.Unlock()
	for _, st := range streams {
		_ = st.Close()
	}
	return c.ep.Close()
}

// route picks the node for a target: the cached placement when one is known,
// otherwise round-robin over the configured fleet.
func (c *Client) route(target ownership.ID) transport.NodeID {
	if v, ok := c.routes.Load(target); ok {
		return v.(transport.NodeID)
	}
	return c.cfg.Nodes[c.rr.Add(1)%uint64(len(c.cfg.Nodes))]
}

// learn repairs the routing cache from a response's authoritative host.
// Fleet deployments map servers to nodes 1:1, so the wire's ServerID is the
// node address.
func (c *Client) learn(target ownership.ID, host int64) {
	if host == 0 {
		return
	}
	c.routes.Store(target, transport.NodeID(host))
}

// Route reports the cached placement of a target (for tests and the bench).
func (c *Client) Route(target ownership.ID) (transport.NodeID, bool) {
	v, ok := c.routes.Load(target)
	if !ok {
		return 0, false
	}
	return v.(transport.NodeID), true
}

// stream returns the cached pipelined stream to a node, opening one on first
// use; nil means pipelining is off or unsupported and the caller one-shots.
func (c *Client) stream(to transport.NodeID) transport.Stream {
	if c.cfg.NoPipeline {
		return nil
	}
	c.streamMu.Lock()
	st, ok := c.streams[to]
	c.streamMu.Unlock()
	if ok {
		return st
	}
	st, supported, err := transport.OpenStream(c.ep, to)
	if !supported || err != nil {
		return nil
	}
	c.streamMu.Lock()
	if c.closed.Load() {
		c.streamMu.Unlock()
		_ = st.Close()
		return nil
	}
	if cur, ok := c.streams[to]; ok {
		c.streamMu.Unlock()
		_ = st.Close()
		return cur
	}
	c.streams[to] = st
	c.streamMu.Unlock()
	return st
}

// dropStream discards a broken stream so the next submit redials.
func (c *Client) dropStream(to transport.NodeID, st transport.Stream) {
	c.streamMu.Lock()
	if cur, ok := c.streams[to]; ok && cur == st {
		delete(c.streams, to)
	}
	c.streamMu.Unlock()
	_ = st.Close()
}

// Submit executes one event on the deployment and returns its result.
// Concurrent Submits from many goroutines pipeline onto shared per-node
// connections.
func (c *Client) Submit(target ownership.ID, method string, args ...any) (any, error) {
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	req := schema.SubmitReq{Target: target, Method: method, Args: args, Trace: c.nextTrace()}
	buf := schema.GetFrameBuf()
	payload, err := req.MarshalWire((*buf)[:0])
	if err != nil {
		schema.PutFrameBuf(buf)
		return nil, fmt.Errorf("ingress: encode submit: %w", err)
	}
	*buf = payload

	to := c.route(target)
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
	defer cancel()
	msg := transport.Message{Kind: node.KindSubmit, Payload: payload}
	var raw transport.Message
	if st := c.stream(to); st != nil {
		raw, err = st.Call(ctx, msg)
		var remote *transport.RemoteError
		if err != nil && !errors.As(err, &remote) {
			c.dropStream(to, st)
		}
	} else {
		raw, err = c.ep.Call(ctx, to, msg)
	}
	schema.PutFrameBuf(buf) // endpoints do not retain payloads past Call
	if err != nil {
		return nil, fmt.Errorf("ingress: submit %v to %v: %w", target, to, err)
	}

	var resp schema.SubmitResp
	if !schema.IsHotFrame(raw.Payload) {
		return nil, fmt.Errorf("ingress: node %v answered submit with a non-hot frame", to)
	}
	if err := resp.UnmarshalWire(raw.Payload); err != nil {
		return nil, fmt.Errorf("ingress: decode submit response: %w", err)
	}
	// Repair the routing cache even on failures — the authoritative host is
	// exactly what a mis-routed submit needs.
	c.learn(target, resp.Host)
	if resp.Err != "" {
		return nil, node.WireError(resp.ErrKind, resp.Err)
	}
	return resp.Result, nil
}

// Future is an in-flight asynchronous submit.
type Future struct {
	done   chan struct{}
	result any
	err    error
}

// Wait blocks until the submit completes.
func (f *Future) Wait() (any, error) {
	<-f.done
	return f.result, f.err
}

// Go submits asynchronously: it returns once the request occupies an
// in-flight slot (blocking when Config.Window submits are already pending —
// backpressure for producers that batch Waits). The returned Future resolves
// when the response arrives. Unless NoCoalesce or NoPipeline is set, the
// event rides the per-node coalescer: it lingers up to Config.Linger waiting
// for batchmates bound for the same node, then the whole batch flies as one
// frame.
func (c *Client) Go(target ownership.ID, method string, args ...any) *Future {
	f := &Future{done: make(chan struct{})}
	if c.closed.Load() {
		f.err = ErrClientClosed
		close(f.done)
		return f
	}
	c.window <- struct{}{}
	if c.cfg.NoCoalesce || c.cfg.NoPipeline {
		go func() {
			defer close(f.done)
			defer func() { <-c.window }()
			f.result, f.err = c.Submit(target, method, args...)
		}()
		return f
	}
	co := c.coalescerFor(c.route(target))
	if co == nil { // closed between the check above and here
		f.err = ErrClientClosed
		close(f.done)
		<-c.window
		return f
	}
	co.add(schema.BatchEvent{Target: target, Method: method, Args: args}, f)
	return f
}

// RegisterOps registers the client's coalescer accounting on an ops
// registry (typically the registry of the process embedding the client, so
// one /metrics scrape covers both sides of the ingress path).
func (c *Client) RegisterOps(reg *ops.Registry) {
	lbl := ops.Labels{"client": fmt.Sprint(int64(c.ep.ID()))}
	reg.Counter("aeon_ingress_flush_fill_total",
		"Coalesced batches flushed because they reached MaxBatch.", lbl, c.flushFill.Load)
	reg.Counter("aeon_ingress_flush_linger_total",
		"Coalesced batches flushed because the linger window elapsed.", lbl, c.flushLinger.Load)
	reg.Counter("aeon_ingress_flush_close_total",
		"Coalescers drained by Close with events still pending.", lbl, c.flushClose.Load)
	reg.Counter("aeon_ingress_coalesced_events_total",
		"Events shipped through the coalescer.", lbl, c.coalEvents.Load)
	reg.Gauge("aeon_ingress_coalescer_fill_ratio",
		"Mean coalesced batch occupancy relative to MaxBatch.", lbl,
		func() float64 { return c.CoalescerStats().FillRatio() })
}
