package ingress_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"aeon/internal/core"
	"aeon/internal/ingress"
	"aeon/internal/node"
	"aeon/internal/ownership"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

// TestClientSubmitBatchAcrossFleet pins the batch SDK contract over real
// TCP: one SubmitBatch spanning accounts on three nodes lands every event,
// results are index-aligned, and the routing cache converges from the
// per-event Host repair so the next batch goes direct.
func TestClientSubmitBatchAcrossFleet(t *testing.T) {
	d, mesh := deployTCP(t, 3)
	c := dial(t, mesh, d, ingress.Config{})

	var items []ingress.BatchItem
	for bi, accounts := range d.Top.Accounts {
		for ai, acct := range accounts {
			items = append(items, ingress.BatchItem{Target: acct, Method: "deposit", Args: []any{10*(bi+1) + ai}})
		}
	}
	for i, r := range c.SubmitBatch(items) {
		if r.Err != nil {
			t.Fatalf("deposit %d: %v", i, r.Err)
		}
	}
	var reads []ingress.BatchItem
	for _, accounts := range d.Top.Accounts {
		for _, acct := range accounts {
			reads = append(reads, ingress.BatchItem{Target: acct, Method: "balance"})
		}
	}
	res := c.SubmitBatch(reads)
	i := 0
	for bi, accounts := range d.Top.Accounts {
		for ai, acct := range accounts {
			if res[i].Err != nil {
				t.Fatalf("balance bank %d acct %d: %v", bi, ai, res[i].Err)
			}
			want := 1000 + 10*(bi+1) + ai
			if res[i].Result.(int) != want {
				t.Fatalf("bank %d acct %d balance = %v, want %d", bi, ai, res[i].Result, want)
			}
			if host, ok := c.Route(acct); !ok || host != transport.NodeID(bi+1) {
				t.Fatalf("route for bank %d acct %d = %v (ok=%v), want %d", bi, ai, host, ok, bi+1)
			}
			i++
		}
	}
}

// TestClientBatchPartialFailure pins per-event failure isolation: a batch
// mixing good events with an unknown target, an unknown method, and an
// app-level failure returns a typed error in exactly the failing slots —
// siblings execute and their effects are visible afterwards.
func TestClientBatchPartialFailure(t *testing.T) {
	d, mesh := deployTCP(t, 2)
	c := dial(t, mesh, d, ingress.Config{})

	acctA := d.Top.Accounts[0][0]
	acctB := d.Top.Accounts[1][0]
	res := c.SubmitBatch([]ingress.BatchItem{
		{Target: acctA, Method: "deposit", Args: []any{5}},
		{Target: ownership.ID(1 << 40), Method: "deposit", Args: []any{1}},
		{Target: acctB, Method: "no-such-method"},
		{Target: acctA, Method: "withdraw", Args: []any{1 << 30}},
		{Target: acctB, Method: "deposit", Args: []any{7}},
	})
	if res[0].Err != nil {
		t.Fatalf("good deposit poisoned by batchmates: %v", res[0].Err)
	}
	if !errors.Is(res[1].Err, core.ErrUnknownContext) {
		t.Fatalf("unknown target err = %v, want ErrUnknownContext", res[1].Err)
	}
	if !errors.Is(res[2].Err, core.ErrUnknownMethod) {
		t.Fatalf("unknown method err = %v, want ErrUnknownMethod", res[2].Err)
	}
	if res[3].Err == nil {
		t.Fatalf("overdraft withdraw succeeded inside batch")
	}
	if res[4].Err != nil {
		t.Fatalf("good deposit after failures: %v", res[4].Err)
	}
	// The failing slots must not have blocked their siblings' effects.
	if bal, err := c.Submit(acctA, "balance"); err != nil || bal.(int) != 1005 {
		t.Fatalf("acctA balance = %v (%v), want 1005", bal, err)
	}
	if bal, err := c.Submit(acctB, "balance"); err != nil || bal.(int) != 1007 {
		t.Fatalf("acctB balance = %v (%v), want 1007", bal, err)
	}
}

// TestClientBatchStaleRouteRepair pins the batch analogue of stale-route
// repair: after a migration invalidates the cached route, a batch of events
// for the moved group succeeds via server-side forwarding — regrouped as ONE
// forwarded frame, not one per event — and the per-event Host repair makes
// the next submit go direct.
func TestClientBatchStaleRouteRepair(t *testing.T) {
	d, mesh := deployTCP(t, 2)
	c := dial(t, mesh, d, ingress.Config{})

	bank2 := d.Top.Banks[1]
	acct := d.Top.Accounts[1][0]
	if _, err := c.Submit(acct, "deposit", 5); err != nil {
		t.Fatalf("warm deposit: %v", err)
	}
	if host, ok := c.Route(acct); !ok || host != 2 {
		t.Fatalf("route before migration = %v (ok=%v), want 2", host, ok)
	}
	if err := d.Nodes[0].MigrateRemote(2, bank2, 1); err != nil {
		t.Fatalf("migrate: %v", err)
	}

	fwdBefore := d.Nodes[1].Forwarded()
	subBatchesBefore := d.Nodes[0].Batches()
	res := c.SubmitBatch([]ingress.BatchItem{
		{Target: acct, Method: "deposit", Args: []any{1}},
		{Target: acct, Method: "deposit", Args: []any{1}},
		{Target: acct, Method: "deposit", Args: []any{1}},
	})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("stale-routed event %d: %v", i, r.Err)
		}
	}
	if got := d.Nodes[1].Forwarded() - fwdBefore; got != 3 {
		t.Fatalf("stale batch forwarded %d events, want 3", got)
	}
	// The three misrouted events must ride one regrouped sub-batch frame.
	if got := d.Nodes[0].Batches() - subBatchesBefore; got != 1 {
		t.Fatalf("forwarding used %d sub-batch frames, want 1", got)
	}
	if host, ok := c.Route(acct); !ok || host != 1 {
		t.Fatalf("route after batch repair = %v (ok=%v), want 1", host, ok)
	}
	fwdBefore = d.Nodes[1].Forwarded()
	if bal, err := c.Submit(acct, "balance"); err != nil || bal.(int) != 1008 {
		t.Fatalf("balance after repair = %v (%v), want 1008", bal, err)
	}
	if got := d.Nodes[1].Forwarded() - fwdBefore; got != 0 {
		t.Fatalf("repaired route still forwarded %d times", got)
	}
}

// TestClientBatchChunking pins MaxBatch chunking: a SubmitBatch larger than
// MaxBatch splits into ceil(n/MaxBatch) pipelined frames, every event lands,
// and the node-side frame count proves the split happened on the wire.
func TestClientBatchChunking(t *testing.T) {
	d, mesh := deployTCP(t, 2)
	c := dial(t, mesh, d, ingress.Config{MaxBatch: 8})

	acct := d.Top.Accounts[0][0]
	if _, err := c.Submit(acct, "deposit", 0); err != nil { // warm the route
		t.Fatal(err)
	}
	before := d.Nodes[0].Batches()
	items := make([]ingress.BatchItem, 30)
	for i := range items {
		items[i] = ingress.BatchItem{Target: acct, Method: "deposit", Args: []any{1}}
	}
	for i, r := range c.SubmitBatch(items) {
		if r.Err != nil {
			t.Fatalf("chunked deposit %d: %v", i, r.Err)
		}
	}
	if got := d.Nodes[0].Batches() - before; got != 4 {
		t.Fatalf("30 events at MaxBatch=8 used %d frames, want 4", got)
	}
	if bal, err := c.Submit(acct, "balance"); err != nil || bal.(int) != 1030 {
		t.Fatalf("balance = %v (%v), want 1030", bal, err)
	}
}

// TestClientBatchTypedErrorsRawProtocol pins the wire contract without a
// real fleet: a fake node speaks raw SubmitBatchReq/Resp frames and rejects
// one event with the backpressure error kind. The client must surface
// core.ErrBackpressure for that slot only — batchmates keep their results —
// proving typed errors round-trip through the batch codec itself.
func TestClientBatchTypedErrorsRawProtocol(t *testing.T) {
	mesh := transport.NewInMemMesh(transport.NewSim(transport.SimConfig{}))
	fake, err := mesh.Attach(1, func(ctx context.Context, from transport.NodeID, req transport.Message) (transport.Message, error) {
		if req.Kind != node.KindSubmitBatch {
			return transport.Message{}, errors.New("fake node: unexpected kind " + req.Kind)
		}
		var br schema.SubmitBatchReq
		if err := br.UnmarshalWire(req.Payload); err != nil {
			return transport.Message{}, err
		}
		resp := schema.SubmitBatchResp{Outcomes: make([]schema.BatchOutcome, len(br.Events))}
		for i := range br.Events {
			if br.Events[i].Method == "reject" {
				resp.Outcomes[i] = schema.BatchOutcome{Err: "queue full", ErrKind: "backpressure", Host: 1}
			} else {
				resp.Outcomes[i] = schema.BatchOutcome{Result: i, Host: 1}
			}
		}
		payload, err := resp.MarshalWire(nil)
		if err != nil {
			return transport.Message{}, err
		}
		return transport.Message{Kind: req.Kind, Payload: payload}, nil
	})
	if err != nil {
		t.Fatalf("attach fake node: %v", err)
	}
	t.Cleanup(func() { _ = fake.Close() })

	c, err := ingress.Dial(mesh, ingress.Config{Nodes: []transport.NodeID{1}})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })

	res := c.SubmitBatch([]ingress.BatchItem{
		{Target: ownership.ID(10), Method: "ok"},
		{Target: ownership.ID(11), Method: "reject"},
		{Target: ownership.ID(12), Method: "ok"},
	})
	if res[0].Err != nil || res[0].Result.(int) != 0 {
		t.Fatalf("slot 0 = (%v, %v), want (0, nil)", res[0].Result, res[0].Err)
	}
	if !errors.Is(res[1].Err, core.ErrBackpressure) {
		t.Fatalf("rejected slot err = %v, want ErrBackpressure", res[1].Err)
	}
	if res[2].Err != nil || res[2].Result.(int) != 2 {
		t.Fatalf("slot 2 = (%v, %v), want (2, nil)", res[2].Result, res[2].Err)
	}
}

// TestClientCoalescedGo pins the transparent batching of the async path:
// many Go futures issued back-to-back ride far fewer batch frames than
// events, every deposit lands, and the in-flight window recycles its slots
// exactly (a leaked slot would deadlock the later rounds under the small
// Window).
func TestClientCoalescedGo(t *testing.T) {
	d, mesh := deployTCP(t, 2)
	c := dial(t, mesh, d, ingress.Config{Window: 32, Linger: 20 * time.Millisecond})

	acct := d.Top.Accounts[1][0]
	if _, err := c.Submit(acct, "deposit", 0); err != nil { // warm the route
		t.Fatal(err)
	}
	before := d.Nodes[0].Batches() + d.Nodes[1].Batches()
	const deposits = 100
	futures := make([]*ingress.Future, 0, deposits)
	for i := 0; i < deposits; i++ {
		futures = append(futures, c.Go(acct, "deposit", 1))
	}
	for i, f := range futures {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("coalesced deposit %d: %v", i, err)
		}
	}
	frames := d.Nodes[0].Batches() + d.Nodes[1].Batches() - before
	if frames == 0 || frames > 20 {
		t.Fatalf("%d deposits rode %d batch frames, want coalescing (1..20)", deposits, frames)
	}
	if bal, err := c.Submit(acct, "balance"); err != nil || bal.(int) != 1000+deposits {
		t.Fatalf("balance = %v (%v), want %d", bal, err, 1000+deposits)
	}
}

// TestClientCoalescedGoCloseFailsPending pins Close's contract for the
// coalescer: futures still lingering when the client closes resolve promptly
// with ErrClientClosed instead of hanging until the linger window or forever.
func TestClientCoalescedGoCloseFailsPending(t *testing.T) {
	d, mesh := deployTCP(t, 2)
	c := dial(t, mesh, d, ingress.Config{Linger: time.Hour})

	f := c.Go(d.Top.Accounts[0][0], "deposit", 1)
	done := make(chan error, 1)
	go func() {
		_, err := f.Wait()
		done <- err
	}()
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ingress.ErrClientClosed) {
			t.Fatalf("pending future err = %v, want ErrClientClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("pending future not resolved by Close")
	}
}

// TestClientBatchConcurrentRace is the batched-ingress -race stress: several
// clients mix coalesced Go futures and explicit SubmitBatches against the
// same fleet concurrently; every event must land exactly once (verified
// balances) with no data race in the coalescer, batch codec, or completion
// plane.
func TestClientBatchConcurrentRace(t *testing.T) {
	d, mesh := deployTCP(t, 2)
	const clients = 3
	const goEvents = 60
	const batchRounds = 6
	const perBatch = 10
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	accts := make([]ownership.ID, clients)
	for ci := 0; ci < clients; ci++ {
		c := dial(t, mesh, d, ingress.Config{Window: 64, Linger: 200 * time.Microsecond})
		acct := d.Top.Accounts[ci%2][ci]
		accts[ci] = acct
		wg.Add(1)
		go func(c *ingress.Client, acct ownership.ID) {
			defer wg.Done()
			futures := make([]*ingress.Future, 0, goEvents)
			for i := 0; i < goEvents; i++ {
				futures = append(futures, c.Go(acct, "deposit", 1))
				if i%10 == 9 {
					items := make([]ingress.BatchItem, perBatch)
					for j := range items {
						items[j] = ingress.BatchItem{Target: acct, Method: "deposit", Args: []any{1}}
					}
					for _, r := range c.SubmitBatch(items) {
						if r.Err != nil {
							errs <- r.Err
							return
						}
					}
				}
			}
			for _, f := range futures {
				if _, err := f.Wait(); err != nil {
					errs <- err
					return
				}
			}
		}(c, acct)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	check := dial(t, mesh, d, ingress.Config{})
	want := 1000 + goEvents + batchRounds*perBatch
	for ci, acct := range accts {
		bal, err := check.Submit(acct, "balance")
		if err != nil || bal.(int) != want {
			t.Fatalf("client %d balance = %v (%v), want %d", ci, bal, err, want)
		}
	}
}

// TestCoalescerFlushReasons pins the flush-reason accounting the ops plane
// exports: a batch that reaches MaxBatch counts as a fill flush, one cut by
// the linger timer counts as a linger flush, and a coalescer drained by
// Close with futures still pending counts as a close flush. Fill ratio must
// land in (0, 1].
func TestCoalescerFlushReasons(t *testing.T) {
	d, mesh := deployTCP(t, 2)
	acct := d.Top.Accounts[1][0]

	// Fill: four async submits against a MaxBatch of four flush immediately.
	fill := dial(t, mesh, d, ingress.Config{MaxBatch: 4, Linger: time.Hour, Window: 32})
	if _, err := fill.Submit(acct, "deposit", 0); err != nil { // warm the route
		t.Fatal(err)
	}
	var futures []*ingress.Future
	for i := 0; i < 4; i++ {
		futures = append(futures, fill.Go(acct, "deposit", 1))
	}
	for i, f := range futures {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("fill deposit %d: %v", i, err)
		}
	}
	st := fill.CoalescerStats()
	if st.FlushFill == 0 || st.FlushLinger != 0 {
		t.Fatalf("fill client stats = %+v; want fill flushes only", st)
	}
	if st.Events < 4 || st.Flushes == 0 {
		t.Fatalf("fill client stats = %+v; want >=4 events over >=1 flush", st)
	}
	if r := st.FillRatio(); r <= 0 || r > 1 {
		t.Fatalf("fill ratio = %v; want (0, 1]", r)
	}

	// Linger: a lone async submit under a huge MaxBatch is cut by the timer.
	linger := dial(t, mesh, d, ingress.Config{MaxBatch: 64, Linger: 2 * time.Millisecond, Window: 32})
	if _, err := linger.Submit(acct, "deposit", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := linger.Go(acct, "deposit", 1).Wait(); err != nil {
		t.Fatalf("linger deposit: %v", err)
	}
	if st := linger.CoalescerStats(); st.FlushLinger == 0 {
		t.Fatalf("linger client stats = %+v; want a linger flush", st)
	}

	// Close: a future still lingering when the client closes is charged to
	// the close-drain counter (and fails with ErrClientClosed, pinned
	// elsewhere).
	closer := dial(t, mesh, d, ingress.Config{MaxBatch: 64, Linger: time.Hour, Window: 32})
	if _, err := closer.Submit(acct, "deposit", 0); err != nil {
		t.Fatal(err)
	}
	pending := closer.Go(acct, "deposit", 1)
	if err := closer.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := pending.Wait(); !errors.Is(err, ingress.ErrClientClosed) {
		t.Fatalf("pending future err = %v; want ErrClientClosed", err)
	}
	if st := closer.CoalescerStats(); st.FlushClose == 0 {
		t.Fatalf("closer client stats = %+v; want a close flush", st)
	}
}
