package ingress

// Batched submits. SubmitBatch packs many events into SubmitBatchReq frames —
// one frame per destination node (chunked at Config.MaxBatch) — so the fleet
// pays one wakeup and one admission per frame instead of per event. Go's
// futures ride the same frames transparently: a per-node coalescer holds each
// async submit for a short linger window (the client-side analogue of the mux
// writer's one-Gosched flush linger) and flushes when the batch fills or the
// window elapses. Outcomes are per-event: one event's typed error, stale
// route, or backpressure rejection never poisons its batchmates.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"aeon/internal/node"
	"aeon/internal/ownership"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

// BatchItem is one event in a client-side batch.
type BatchItem struct {
	Target ownership.ID
	Method string
	Args   []any
}

// BatchResult is the per-event outcome of SubmitBatch. Err carries the same
// typed sentinels as Submit (core.ErrUnknownContext, core.ErrBackpressure,
// ...); Result is only meaningful when Err is nil.
type BatchResult struct {
	Result any
	Err    error
}

// SubmitBatch executes many events in as few frames as possible: items are
// grouped by their routed node, each group rides SubmitBatchReq frames
// (chunked at Config.MaxBatch), and groups fly concurrently. The returned
// slice is index-aligned with items. Failures are per-event — a rejected or
// failed event never affects its batchmates — except transport-level faults,
// which fail every event that rode the broken connection.
func (c *Client) SubmitBatch(items []BatchItem) []BatchResult {
	res := make([]BatchResult, len(items))
	if len(items) == 0 {
		return res
	}
	if c.closed.Load() {
		for i := range res {
			res[i].Err = ErrClientClosed
		}
		return res
	}
	routes := make([]transport.NodeID, len(items))
	single := true
	for i := range items {
		routes[i] = c.route(items[i].Target)
		if routes[i] != routes[0] {
			single = false
		}
	}
	// Single-destination batches — the common case once routes are warm —
	// skip the grouping map and the per-group goroutine.
	if single {
		evs := make([]schema.BatchEvent, len(items))
		for i := range items {
			evs[i] = schema.BatchEvent{Target: items[i].Target, Method: items[i].Method, Args: items[i].Args}
		}
		return c.submitBatchTo(routes[0], evs)
	}
	groups := make(map[transport.NodeID][]int)
	for i := range items {
		groups[routes[i]] = append(groups[routes[i]], i)
	}
	var wg sync.WaitGroup
	for to, idxs := range groups {
		wg.Add(1)
		go func(to transport.NodeID, idxs []int) {
			defer wg.Done()
			evs := make([]schema.BatchEvent, len(idxs))
			for j, i := range idxs {
				evs[j] = schema.BatchEvent{Target: items[i].Target, Method: items[i].Method, Args: items[i].Args}
			}
			out := c.submitBatchTo(to, evs)
			for j, i := range idxs {
				res[i] = out[j]
			}
		}(to, idxs)
	}
	wg.Wait()
	return res
}

// submitBatchTo ships one node's events as pipelined SubmitBatchReq frames
// and returns outcomes index-aligned with events.
func (c *Client) submitBatchTo(to transport.NodeID, events []schema.BatchEvent) []BatchResult {
	res := make([]BatchResult, len(events))
	if c.closed.Load() {
		for i := range res {
			res[i].Err = ErrClientClosed
		}
		return res
	}
	// One frame suffices for most batches; ship it directly so small batches
	// pay no more than a plain Submit beyond the frame's own bytes.
	if len(events) <= c.cfg.MaxBatch {
		c.submitChunk(to, events, res, 0, len(events))
		return res
	}

	// Chunk at MaxBatch; each chunk is one frame. chunkRef remembers where a
	// chunk's events live in the flat slices so outcomes map back by index.
	type chunkRef struct {
		start, n int
		buf      *[]byte
	}
	var (
		refs []chunkRef
		msgs []transport.Message
	)
	for start := 0; start < len(events); start += c.cfg.MaxBatch {
		end := start + c.cfg.MaxBatch
		if end > len(events) {
			end = len(events)
		}
		req := schema.SubmitBatchReq{Events: events[start:end], Trace: c.nextTrace()}
		buf := schema.GetFrameBuf()
		payload, err := req.MarshalWire((*buf)[:0])
		if err != nil {
			schema.PutFrameBuf(buf)
			for i := start; i < end; i++ {
				res[i].Err = fmt.Errorf("ingress: encode batch: %w", err)
			}
			continue
		}
		*buf = payload
		refs = append(refs, chunkRef{start: start, n: end - start, buf: buf})
		msgs = append(msgs, transport.Message{Kind: node.KindSubmitBatch, Payload: payload})
	}
	if len(msgs) == 0 {
		return res
	}

	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
	defer cancel()

	var (
		resps []transport.Message
		errs  []error
		fatal error
	)
	st := c.stream(to)
	if st != nil {
		resps, errs, fatal = transport.StreamCallBatch(ctx, st, msgs)
	} else {
		resps = make([]transport.Message, len(msgs))
		errs = make([]error, len(msgs))
		for k := range msgs {
			resps[k], errs[k] = c.ep.Call(ctx, to, msgs[k])
		}
	}
	if fatal != nil {
		c.dropStream(to, st)
		for _, ref := range refs {
			schema.PutFrameBuf(ref.buf)
			for i := ref.start; i < ref.start+ref.n; i++ {
				res[i].Err = fmt.Errorf("ingress: batch submit to %v: %w", to, fatal)
			}
		}
		return res
	}

	for k, ref := range refs {
		schema.PutFrameBuf(ref.buf) // endpoints do not retain payloads past the call
		if errs[k] != nil {
			var remote *transport.RemoteError
			if st != nil && !errors.As(errs[k], &remote) {
				c.dropStream(to, st)
			}
			for i := ref.start; i < ref.start+ref.n; i++ {
				res[i].Err = fmt.Errorf("ingress: batch submit to %v: %w", to, errs[k])
			}
			continue
		}
		c.applyBatchResp(to, events, res, ref.start, ref.n, resps[k])
	}
	return res
}

// submitChunk ships one frame's worth of events and fills its outcome slots.
func (c *Client) submitChunk(to transport.NodeID, events []schema.BatchEvent, res []BatchResult, start, n int) {
	fail := func(err error) {
		for i := start; i < start+n; i++ {
			res[i].Err = err
		}
	}
	req := schema.SubmitBatchReq{Events: events[start : start+n], Trace: c.nextTrace()}
	buf := schema.GetFrameBuf()
	payload, err := req.MarshalWire((*buf)[:0])
	if err != nil {
		schema.PutFrameBuf(buf)
		fail(fmt.Errorf("ingress: encode batch: %w", err))
		return
	}
	*buf = payload

	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
	defer cancel()
	msg := transport.Message{Kind: node.KindSubmitBatch, Payload: payload}
	var raw transport.Message
	if st := c.stream(to); st != nil {
		raw, err = st.Call(ctx, msg)
		var remote *transport.RemoteError
		if err != nil && !errors.As(err, &remote) {
			c.dropStream(to, st)
		}
	} else {
		raw, err = c.ep.Call(ctx, to, msg)
	}
	schema.PutFrameBuf(buf) // endpoints do not retain payloads past the call
	if err != nil {
		fail(fmt.Errorf("ingress: batch submit to %v: %w", to, err))
		return
	}
	c.applyBatchResp(to, events, res, start, n, raw)
}

// applyBatchResp decodes one chunk's response and fills its slice of
// outcomes, repairing the routing cache from each event's authoritative host.
func (c *Client) applyBatchResp(to transport.NodeID, events []schema.BatchEvent, res []BatchResult, start, n int, raw transport.Message) {
	fail := func(err error) {
		for i := start; i < start+n; i++ {
			res[i].Err = err
		}
	}
	if !schema.IsHotFrame(raw.Payload) {
		fail(fmt.Errorf("ingress: node %v answered batch submit with a non-hot frame", to))
		return
	}
	var br schema.SubmitBatchResp
	if err := br.UnmarshalWire(raw.Payload); err != nil {
		fail(fmt.Errorf("ingress: decode batch response: %w", err))
		return
	}
	if len(br.Outcomes) != n {
		fail(fmt.Errorf("ingress: node %v returned %d outcomes for a %d-event batch", to, len(br.Outcomes), n))
		return
	}
	for j := 0; j < n; j++ {
		out := &br.Outcomes[j]
		// Repair the cache even on per-event failure — the authoritative host
		// is exactly what a mis-routed event needs.
		c.learn(events[start+j].Target, out.Host)
		if out.Err != "" {
			res[start+j].Err = node.WireError(out.ErrKind, out.Err)
		} else {
			res[start+j].Result = out.Result
		}
	}
}

// coalescer batches async submits bound for one node. add holds each event
// until the batch fills (Config.MaxBatch) or the linger window elapses
// (Config.Linger), then flushes every held future as one SubmitBatchReq
// frame. Flush and Close race on the pending slices under mu; take hands
// each future to exactly one owner.
type coalescer struct {
	c  *Client
	to transport.NodeID

	mu      sync.Mutex
	events  []schema.BatchEvent
	futures []*Future
	timer   *time.Timer
}

// take claims the pending batch. Callers hold mu.
func (co *coalescer) take() ([]schema.BatchEvent, []*Future) {
	events, futures := co.events, co.futures
	co.events, co.futures = nil, nil
	if co.timer != nil {
		co.timer.Stop()
		co.timer = nil
	}
	return events, futures
}

// add enqueues one async submit, arming the linger timer on the first event
// and flushing inline when the batch fills.
func (co *coalescer) add(ev schema.BatchEvent, f *Future) {
	co.mu.Lock()
	co.events = append(co.events, ev)
	co.futures = append(co.futures, f)
	if len(co.events) == 1 {
		co.timer = time.AfterFunc(co.c.cfg.Linger, co.flushAfterLinger)
	}
	if len(co.events) >= co.c.cfg.MaxBatch {
		events, futures := co.take()
		co.mu.Unlock()
		co.c.flushFill.Add(1)
		go co.c.flushBatch(co.to, events, futures)
		return
	}
	co.mu.Unlock()
}

func (co *coalescer) flushAfterLinger() {
	co.mu.Lock()
	events, futures := co.take()
	co.mu.Unlock()
	if len(events) > 0 {
		co.c.flushLinger.Add(1)
		co.c.flushBatch(co.to, events, futures)
	}
}

// flushBatch ships a coalesced batch and resolves its futures, releasing one
// window slot per future (the slot Go acquired).
func (c *Client) flushBatch(to transport.NodeID, events []schema.BatchEvent, futures []*Future) {
	c.coalFlushes.Add(1)
	c.coalEvents.Add(uint64(len(events)))
	out := c.submitBatchTo(to, events)
	for i, f := range futures {
		f.result, f.err = out[i].Result, out[i].Err
		close(f.done)
		<-c.window
	}
}

// coalescerFor returns the per-node coalescer, creating it on first use; nil
// means the client is closed.
func (c *Client) coalescerFor(to transport.NodeID) *coalescer {
	c.coalMu.Lock()
	defer c.coalMu.Unlock()
	if c.coals == nil {
		return nil
	}
	co, ok := c.coals[to]
	if !ok {
		co = &coalescer{c: c, to: to}
		c.coals[to] = co
	}
	return co
}
