package ingress_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"aeon/internal/core"
	"aeon/internal/ingress"
	"aeon/internal/node"
	"aeon/internal/ownership"
	"aeon/internal/transport"
)

func deployTCP(t *testing.T, nodes int) (*node.Deployment, *transport.TCPMesh) {
	t.Helper()
	mesh := transport.NewTCPMesh()
	d, err := node.Deploy(mesh, node.Topology{Nodes: nodes})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	t.Cleanup(d.Close)
	if err := d.WaitReady(10 * time.Second); err != nil {
		t.Fatalf("deployment not ready: %v", err)
	}
	return d, mesh
}

func dial(t *testing.T, mesh transport.Mesh, d *node.Deployment, cfg ingress.Config) *ingress.Client {
	t.Helper()
	if len(cfg.Nodes) == 0 {
		for _, n := range d.Nodes {
			cfg.Nodes = append(cfg.Nodes, n.ID())
		}
	}
	c, err := ingress.Dial(mesh, cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestClientSubmitAcrossFleet pins the basic SDK contract over real TCP:
// deposits and balance reads against accounts spread over three nodes all
// succeed, whichever node each submit is first routed to, and the routing
// cache converges to the hosting node from response repair.
func TestClientSubmitAcrossFleet(t *testing.T) {
	d, mesh := deployTCP(t, 3)
	c := dial(t, mesh, d, ingress.Config{})

	for bi, accounts := range d.Top.Accounts {
		for ai, acct := range accounts {
			if _, err := c.Submit(acct, "deposit", 10*(bi+1)+ai); err != nil {
				t.Fatalf("deposit bank %d acct %d: %v", bi, ai, err)
			}
		}
	}
	for bi, accounts := range d.Top.Accounts {
		for ai, acct := range accounts {
			res, err := c.Submit(acct, "balance")
			if err != nil {
				t.Fatalf("balance bank %d acct %d: %v", bi, ai, err)
			}
			want := 1000 + 10*(bi+1) + ai
			if res.(int) != want {
				t.Fatalf("bank %d acct %d balance = %v, want %d", bi, ai, res, want)
			}
			// The account's dominator (its bank) lives on server bi+1; after
			// two submits the cache must route direct.
			if host, ok := c.Route(acct); !ok || host != transport.NodeID(bi+1) {
				t.Fatalf("route for bank %d acct %d = %v (ok=%v), want %d", bi, ai, host, ok, bi+1)
			}
		}
	}
}

// TestClientRouteRepairAfterMigration pins stale-route repair: after a
// group migrates, the client's cached route is wrong; the next submit pays
// one server-side forwarding hop, succeeds, and repairs the cache from the
// authoritative response so the submit after that goes direct.
func TestClientRouteRepairAfterMigration(t *testing.T) {
	d, mesh := deployTCP(t, 2)
	c := dial(t, mesh, d, ingress.Config{})

	bank2 := d.Top.Banks[1]
	acct := d.Top.Accounts[1][0]
	if _, err := c.Submit(acct, "deposit", 5); err != nil {
		t.Fatalf("warm deposit: %v", err)
	}
	if host, ok := c.Route(acct); !ok || host != 2 {
		t.Fatalf("route before migration = %v (ok=%v), want 2", host, ok)
	}

	// Move bank 2's whole group to server 1; the client cache is now stale.
	if err := d.Nodes[0].MigrateRemote(2, bank2, 1); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	fwdBefore := d.Nodes[1].Forwarded()
	res, err := c.Submit(acct, "balance")
	if err != nil {
		t.Fatalf("submit with stale route: %v", err)
	}
	if res.(int) != 1005 {
		t.Fatalf("balance after migration = %v, want 1005", res)
	}
	if got := d.Nodes[1].Forwarded() - fwdBefore; got != 1 {
		t.Fatalf("stale submit paid %d forwards, want exactly 1", got)
	}
	if host, ok := c.Route(acct); !ok || host != 1 {
		t.Fatalf("route after repair = %v (ok=%v), want 1", host, ok)
	}
	// Repaired: the next submit goes direct, no forwarding.
	fwdBefore = d.Nodes[1].Forwarded()
	if _, err := c.Submit(acct, "balance"); err != nil {
		t.Fatalf("repaired submit: %v", err)
	}
	if got := d.Nodes[1].Forwarded() - fwdBefore; got != 0 {
		t.Fatalf("repaired route still forwarded %d times", got)
	}
}

// TestClientTypedErrors pins that handler failures come back as typed
// sentinels across the wire, not flattened strings.
func TestClientTypedErrors(t *testing.T) {
	d, mesh := deployTCP(t, 2)
	c := dial(t, mesh, d, ingress.Config{})

	if _, err := c.Submit(ownership.ID(1<<40), "deposit", 1); !errors.Is(err, core.ErrUnknownContext) {
		t.Fatalf("unknown target: %v, want ErrUnknownContext", err)
	}
	if _, err := c.Submit(d.Top.Accounts[0][0], "no-such-method"); !errors.Is(err, core.ErrUnknownMethod) {
		t.Fatalf("unknown method: %v, want ErrUnknownMethod", err)
	}
	// App-level failures surface their message.
	if _, err := c.Submit(d.Top.Accounts[0][0], "withdraw", 1<<30); err == nil {
		t.Fatalf("overdraft withdraw succeeded")
	}
}

// TestClientPipelinedFutures pins the async path: many in-flight deposits on
// one client — far more than could run with one outstanding call per
// connection — all land, and the final balance accounts for every one.
func TestClientPipelinedFutures(t *testing.T) {
	d, mesh := deployTCP(t, 2)
	c := dial(t, mesh, d, ingress.Config{Window: 64})

	acct := d.Top.Accounts[1][0]
	const deposits = 300
	futures := make([]*ingress.Future, 0, deposits)
	for i := 0; i < deposits; i++ {
		futures = append(futures, c.Go(acct, "deposit", 1))
	}
	for i, f := range futures {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("deposit %d: %v", i, err)
		}
	}
	res, err := c.Submit(acct, "balance")
	if err != nil {
		t.Fatal(err)
	}
	if res.(int) != 1000+deposits {
		t.Fatalf("balance = %v, want %d", res, 1000+deposits)
	}
}

// TestClientConcurrentClientsRace is the multi-client -race stress: several
// clients pipeline concurrent submits to disjoint accounts over the same
// fleet; every response must belong to its own request (distinct amounts,
// verified balances).
func TestClientConcurrentClientsRace(t *testing.T) {
	d, mesh := deployTCP(t, 2)
	const clients = 3
	const perClient = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		c := dial(t, mesh, d, ingress.Config{})
		acct := d.Top.Accounts[ci%2][ci%4]
		wg.Add(1)
		go func(ci int, c *ingress.Client, acct ownership.ID) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := c.Submit(acct, "deposit", 1); err != nil {
					errs <- fmt.Errorf("client %d deposit %d: %w", ci, i, err)
					return
				}
			}
		}(ci, c, acct)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestClientNoPipelineFallback pins the baseline path the bench compares
// against: with NoPipeline the client one-shots every submit and still gets
// identical semantics (results, route repair, typed errors).
func TestClientNoPipelineFallback(t *testing.T) {
	d, mesh := deployTCP(t, 2)
	c := dial(t, mesh, d, ingress.Config{NoPipeline: true})

	acct := d.Top.Accounts[1][1]
	if _, err := c.Submit(acct, "deposit", 7); err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(acct, "balance")
	if err != nil {
		t.Fatal(err)
	}
	if res.(int) != 1007 {
		t.Fatalf("balance = %v, want 1007", res)
	}
	if host, ok := c.Route(acct); !ok || host != 2 {
		t.Fatalf("route = %v (ok=%v), want 2", host, ok)
	}
}

// TestClientOnInMemMesh pins mesh-agnosticism: the SDK works over the
// in-memory mesh (streams expressed as windowed concurrent calls), so
// single-process tools and tests can use the same client code path.
func TestClientOnInMemMesh(t *testing.T) {
	mesh := transport.NewInMemMesh(transport.NewSim(transport.SimConfig{}))
	d, err := node.Deploy(mesh, node.Topology{Nodes: 2})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	t.Cleanup(d.Close)
	c := dial(t, mesh, d, ingress.Config{})
	if _, err := c.Submit(d.Top.Accounts[0][0], "deposit", 3); err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(d.Top.Accounts[0][0], "balance")
	if err != nil {
		t.Fatal(err)
	}
	if res.(int) != 1003 {
		t.Fatalf("balance = %v, want 1003", res)
	}
}
