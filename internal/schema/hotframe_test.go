package schema

import (
	"bytes"
	"encoding/gob"
	"math"
	"reflect"
	"testing"

	"aeon/internal/ownership"
)

func roundTripSubmitReq(t *testing.T, in SubmitReq) SubmitReq {
	t.Helper()
	b, err := in.MarshalWire(nil)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !IsHotFrame(b) {
		t.Fatalf("frame does not carry the hot magic: % x", b[:2])
	}
	var out SubmitReq
	if err := out.UnmarshalWire(b); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return out
}

// TestSubmitReqRoundTrip pins the request frame: every field and every value
// tag survives, with concrete types preserved (an int arrives as an int).
func TestSubmitReqRoundTrip(t *testing.T) {
	cases := []SubmitReq{
		{},
		{Target: 7, Method: "deposit", Args: []any{1}, Hops: 0, MinSeq: 0},
		{Target: math.MaxUint64, Method: "transfer", Args: []any{ownership.ID(3), ownership.ID(9), 250}, Hops: 4, MinSeq: 1 << 40},
		{Target: 1, Method: "m", Args: []any{
			nil, true, false, int(-42), int64(math.MinInt64), uint64(math.MaxUint64),
			3.14159, "hello", []byte{0, 1, 2}, ownership.ID(12345),
		}},
		{Target: 2, Method: "empty-args", Args: []any{}},
	}
	for i, in := range cases {
		out := roundTripSubmitReq(t, in)
		if out.Target != in.Target || out.Method != in.Method || out.Hops != in.Hops || out.MinSeq != in.MinSeq {
			t.Errorf("case %d: scalar fields changed: %+v vs %+v", i, out, in)
		}
		if len(out.Args) != len(in.Args) {
			t.Fatalf("case %d: %d args, want %d", i, len(out.Args), len(in.Args))
		}
		for j := range in.Args {
			if !reflect.DeepEqual(out.Args[j], in.Args[j]) {
				t.Errorf("case %d arg %d: got %#v (%T), want %#v (%T)",
					i, j, out.Args[j], out.Args[j], in.Args[j], in.Args[j])
			}
		}
	}
}

// TestSubmitReqGobFallback pins the exotic-type escape hatch: a value
// outside the tagged scalar set rides an embedded registered-gob blob and
// still round-trips with its concrete type.
func TestSubmitReqGobFallback(t *testing.T) {
	type exoticArg struct{ N int }
	RegisterWireType(exoticArg{})
	in := SubmitReq{Target: 1, Method: "m", Args: []any{exoticArg{N: 9}, "plain"}}
	out := roundTripSubmitReq(t, in)
	if got, ok := out.Args[0].(exoticArg); !ok || got.N != 9 {
		t.Fatalf("exotic arg: got %#v", out.Args[0])
	}
	if out.Args[1] != "plain" {
		t.Fatalf("arg after exotic: got %#v", out.Args[1])
	}
}

// TestSubmitRespRoundTrip pins the response frame, including error fields
// and the placement-repair Host.
func TestSubmitRespRoundTrip(t *testing.T) {
	cases := []SubmitResp{
		{},
		{Result: 450, Host: 3},
		{Result: nil, Host: -1, Err: "ctx: no such method", ErrKind: "bad-method"},
		{Result: []byte("blob"), Host: math.MaxInt64},
	}
	for i, in := range cases {
		b, err := in.MarshalWire(nil)
		if err != nil {
			t.Fatalf("case %d marshal: %v", i, err)
		}
		var out SubmitResp
		if err := out.UnmarshalWire(b); err != nil {
			t.Fatalf("case %d unmarshal: %v", i, err)
		}
		if !reflect.DeepEqual(out, in) {
			t.Errorf("case %d: got %+v, want %+v", i, out, in)
		}
	}
}

// TestNotifyAndTransferRoundTrip pins the replication and migration frames.
func TestNotifyAndTransferRoundTrip(t *testing.T) {
	nin := NotifyRec{Seq: 1<<50 + 17}
	b, err := nin.MarshalWire(nil)
	if err != nil {
		t.Fatalf("notify marshal: %v", err)
	}
	var nout NotifyRec
	if err := nout.UnmarshalWire(b); err != nil {
		t.Fatalf("notify unmarshal: %v", err)
	}
	if nout != nin {
		t.Fatalf("notify: got %+v, want %+v", nout, nin)
	}

	tin := TransferRec{
		Members:    []ownership.ID{5, 9, 11},
		From:       2,
		To:         0,
		TotalBytes: 4096,
		MinSeq:     77,
		States: map[uint64][]byte{
			5:  []byte("state-5"),
			11: {},
		},
	}
	b, err = tin.MarshalWire(nil)
	if err != nil {
		t.Fatalf("transfer marshal: %v", err)
	}
	var tout TransferRec
	if err := tout.UnmarshalWire(b); err != nil {
		t.Fatalf("transfer unmarshal: %v", err)
	}
	if !reflect.DeepEqual(tout, tin) {
		t.Fatalf("transfer: got %+v, want %+v", tout, tin)
	}

	// A state keyed by a non-member must be rejected, not silently dropped.
	bad := tin
	bad.States = map[uint64][]byte{99: []byte("orphan")}
	if _, err := bad.MarshalWire(nil); err == nil {
		t.Fatalf("transfer frame with non-member state encoded")
	}
}

// TestHotFrameRejectsWrongType pins the header check: a frame of one type
// must not decode as another, and gob bytes must not decode as hot frames.
func TestHotFrameRejectsWrongType(t *testing.T) {
	req := SubmitReq{Target: 1, Method: "m"}
	b, _ := req.MarshalWire(nil)
	var resp SubmitResp
	if err := resp.UnmarshalWire(b); err == nil {
		t.Fatalf("submitReq frame decoded as submitResp")
	}

	var gb bytes.Buffer
	if err := gob.NewEncoder(&gb).Encode(struct{ X int }{1}); err != nil {
		t.Fatal(err)
	}
	if IsHotFrame(gb.Bytes()) {
		t.Fatalf("gob payload classified as hot frame (first byte %#x)", gb.Bytes()[0])
	}
	var q SubmitReq
	if err := q.UnmarshalWire(gb.Bytes()); err == nil {
		t.Fatalf("gob payload decoded as hot frame")
	}
}

// TestSubmitReqZeroAlloc is the perf contract from the issue: steady-state
// encode+decode of a submit frame allocates nothing — pooled encode buffer,
// reused decode target, interned method, args drawn from the small-int
// cache.
func TestSubmitReqZeroAlloc(t *testing.T) {
	req := SubmitReq{Target: 42, Method: "deposit", Args: []any{1}, Hops: 1, MinSeq: 9}
	var dec SubmitReq
	// Warm the intern table and the pool outside the measured window.
	buf := GetFrameBuf()
	b, err := req.MarshalWire((*buf)[:0])
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.UnmarshalWire(b); err != nil {
		t.Fatal(err)
	}
	*buf = b
	PutFrameBuf(buf)

	allocs := testing.AllocsPerRun(200, func() {
		buf := GetFrameBuf()
		b, err := req.MarshalWire((*buf)[:0])
		if err != nil {
			t.Fatal(err)
		}
		if err := dec.UnmarshalWire(b); err != nil {
			t.Fatal(err)
		}
		*buf = b
		PutFrameBuf(buf)
	})
	if allocs != 0 {
		t.Fatalf("submit encode+decode allocates %.1f times per op, want 0", allocs)
	}
}

// TestSubmitRespZeroAlloc: same contract for the response direction (the
// result is a cached small int, the Host varint and interned ErrKind are
// free).
func TestSubmitRespZeroAlloc(t *testing.T) {
	resp := SubmitResp{Result: 7, Host: 3}
	var dec SubmitResp
	buf := GetFrameBuf()
	b, _ := resp.MarshalWire((*buf)[:0])
	_ = dec.UnmarshalWire(b)
	*buf = b
	PutFrameBuf(buf)

	allocs := testing.AllocsPerRun(200, func() {
		buf := GetFrameBuf()
		b, err := resp.MarshalWire((*buf)[:0])
		if err != nil {
			t.Fatal(err)
		}
		if err := dec.UnmarshalWire(b); err != nil {
			t.Fatal(err)
		}
		*buf = b
		PutFrameBuf(buf)
	})
	if allocs != 0 {
		t.Fatalf("resp encode+decode allocates %.1f times per op, want 0", allocs)
	}
}

// BenchmarkSubmitReqHotCodec reports the hot path cost; run with -benchmem
// to see the 0 B/op, 0 allocs/op contract.
func BenchmarkSubmitReqHotCodec(b *testing.B) {
	req := SubmitReq{Target: 42, Method: "deposit", Args: []any{1}, Hops: 1, MinSeq: 9}
	var dec SubmitReq
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := GetFrameBuf()
		fb, err := req.MarshalWire((*buf)[:0])
		if err != nil {
			b.Fatal(err)
		}
		if err := dec.UnmarshalWire(fb); err != nil {
			b.Fatal(err)
		}
		*buf = fb
		PutFrameBuf(buf)
	}
}

// BenchmarkSubmitReqGob is the baseline the hot codec replaces.
func BenchmarkSubmitReqGob(b *testing.B) {
	type gobSubmitReq struct {
		Target ownership.ID
		Method string
		Args   []any
		Hops   uint32
		MinSeq uint64
	}
	gob.Register(gobSubmitReq{})
	req := gobSubmitReq{Target: 42, Method: "deposit", Args: []any{1}, Hops: 1, MinSeq: 9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var bb bytes.Buffer
		if err := gob.NewEncoder(&bb).Encode(&req); err != nil {
			b.Fatal(err)
		}
		var dec gobSubmitReq
		if err := gob.NewDecoder(&bb).Decode(&dec); err != nil {
			b.Fatal(err)
		}
	}
}

// FuzzHotFrameRoundTrip feeds arbitrary bytes to every hot decoder (no
// panics allowed) and, when the bytes decode, re-encodes and re-decodes to
// check the codec agrees with itself — the round trip must be a fixed point.
func FuzzHotFrameRoundTrip(f *testing.F) {
	seedReq := SubmitReq{Target: 7, Method: "deposit", Args: []any{1, "x", ownership.ID(3)}, Hops: 2, MinSeq: 5}
	if b, err := seedReq.MarshalWire(nil); err == nil {
		f.Add(b)
	}
	seedResp := SubmitResp{Result: 450, Host: 3, Err: "boom", ErrKind: "ctx-missing"}
	if b, err := seedResp.MarshalWire(nil); err == nil {
		f.Add(b)
	}
	seedTr := TransferRec{Members: []ownership.ID{1, 2}, From: 1, To: 2, TotalBytes: 10, MinSeq: 3,
		States: map[uint64][]byte{1: []byte("s")}}
	if b, err := seedTr.MarshalWire(nil); err == nil {
		f.Add(b)
	}
	f.Add([]byte{HotMagic})
	f.Add([]byte{HotMagic, 1})
	f.Add([]byte{HotMagic, 4, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add([]byte("not a frame at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var q SubmitReq
		if err := q.UnmarshalWire(data); err == nil {
			b2, err := q.MarshalWire(nil)
			if err != nil {
				t.Fatalf("re-encode of decoded submitReq failed: %v", err)
			}
			var q2 SubmitReq
			if err := q2.UnmarshalWire(b2); err != nil {
				t.Fatalf("re-decode of re-encoded submitReq failed: %v", err)
			}
			if q2.Target != q.Target || q2.Method != q.Method || q2.Hops != q.Hops ||
				q2.MinSeq != q.MinSeq || len(q2.Args) != len(q.Args) {
				t.Fatalf("submitReq round trip not a fixed point: %+v vs %+v", q2, q)
			}
		}
		var p SubmitResp
		if err := p.UnmarshalWire(data); err == nil {
			b2, err := p.MarshalWire(nil)
			if err != nil {
				t.Fatalf("re-encode of decoded submitResp failed: %v", err)
			}
			var p2 SubmitResp
			if err := p2.UnmarshalWire(b2); err != nil {
				t.Fatalf("re-decode of re-encoded submitResp failed: %v", err)
			}
		}
		var n NotifyRec
		if err := n.UnmarshalWire(data); err == nil {
			b2, _ := n.MarshalWire(nil)
			var n2 NotifyRec
			if err := n2.UnmarshalWire(b2); err != nil || n2 != n {
				t.Fatalf("notify round trip not a fixed point: %+v vs %+v (%v)", n2, n, err)
			}
		}
		var tr TransferRec
		if err := tr.UnmarshalWire(data); err == nil {
			if b2, err := tr.MarshalWire(nil); err == nil {
				var tr2 TransferRec
				if err := tr2.UnmarshalWire(b2); err != nil {
					t.Fatalf("re-decode of re-encoded transfer failed: %v", err)
				}
			}
		}
	})
}
