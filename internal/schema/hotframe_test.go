package schema

import (
	"bytes"
	"encoding/gob"
	"math"
	"reflect"
	"testing"

	"aeon/internal/ownership"
)

func roundTripSubmitReq(t *testing.T, in SubmitReq) SubmitReq {
	t.Helper()
	b, err := in.MarshalWire(nil)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !IsHotFrame(b) {
		t.Fatalf("frame does not carry the hot magic: % x", b[:2])
	}
	var out SubmitReq
	if err := out.UnmarshalWire(b); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return out
}

// TestSubmitReqRoundTrip pins the request frame: every field and every value
// tag survives, with concrete types preserved (an int arrives as an int).
func TestSubmitReqRoundTrip(t *testing.T) {
	cases := []SubmitReq{
		{},
		{Target: 7, Method: "deposit", Args: []any{1}, Hops: 0, MinSeq: 0},
		{Target: math.MaxUint64, Method: "transfer", Args: []any{ownership.ID(3), ownership.ID(9), 250}, Hops: 4, MinSeq: 1 << 40, Trace: 0xdeadbeefcafe0123},
		{Target: 1, Method: "m", Args: []any{
			nil, true, false, int(-42), int64(math.MinInt64), uint64(math.MaxUint64),
			3.14159, "hello", []byte{0, 1, 2}, ownership.ID(12345),
		}},
		{Target: 2, Method: "empty-args", Args: []any{}},
	}
	for i, in := range cases {
		out := roundTripSubmitReq(t, in)
		if out.Target != in.Target || out.Method != in.Method || out.Hops != in.Hops || out.MinSeq != in.MinSeq || out.Trace != in.Trace {
			t.Errorf("case %d: scalar fields changed: %+v vs %+v", i, out, in)
		}
		if len(out.Args) != len(in.Args) {
			t.Fatalf("case %d: %d args, want %d", i, len(out.Args), len(in.Args))
		}
		for j := range in.Args {
			if !reflect.DeepEqual(out.Args[j], in.Args[j]) {
				t.Errorf("case %d arg %d: got %#v (%T), want %#v (%T)",
					i, j, out.Args[j], out.Args[j], in.Args[j], in.Args[j])
			}
		}
	}
}

// TestSubmitReqGobFallback pins the exotic-type escape hatch: a value
// outside the tagged scalar set rides an embedded registered-gob blob and
// still round-trips with its concrete type.
func TestSubmitReqGobFallback(t *testing.T) {
	type exoticArg struct{ N int }
	RegisterWireType(exoticArg{})
	in := SubmitReq{Target: 1, Method: "m", Args: []any{exoticArg{N: 9}, "plain"}}
	out := roundTripSubmitReq(t, in)
	if got, ok := out.Args[0].(exoticArg); !ok || got.N != 9 {
		t.Fatalf("exotic arg: got %#v", out.Args[0])
	}
	if out.Args[1] != "plain" {
		t.Fatalf("arg after exotic: got %#v", out.Args[1])
	}
}

// TestSubmitRespRoundTrip pins the response frame, including error fields
// and the placement-repair Host.
func TestSubmitRespRoundTrip(t *testing.T) {
	cases := []SubmitResp{
		{},
		{Result: 450, Host: 3},
		{Result: nil, Host: -1, Err: "ctx: no such method", ErrKind: "bad-method"},
		{Result: []byte("blob"), Host: math.MaxInt64},
	}
	for i, in := range cases {
		b, err := in.MarshalWire(nil)
		if err != nil {
			t.Fatalf("case %d marshal: %v", i, err)
		}
		var out SubmitResp
		if err := out.UnmarshalWire(b); err != nil {
			t.Fatalf("case %d unmarshal: %v", i, err)
		}
		if !reflect.DeepEqual(out, in) {
			t.Errorf("case %d: got %+v, want %+v", i, out, in)
		}
	}
}

// TestNotifyAndTransferRoundTrip pins the replication and migration frames.
func TestNotifyAndTransferRoundTrip(t *testing.T) {
	nin := NotifyRec{Seq: 1<<50 + 17}
	b, err := nin.MarshalWire(nil)
	if err != nil {
		t.Fatalf("notify marshal: %v", err)
	}
	var nout NotifyRec
	if err := nout.UnmarshalWire(b); err != nil {
		t.Fatalf("notify unmarshal: %v", err)
	}
	if nout != nin {
		t.Fatalf("notify: got %+v, want %+v", nout, nin)
	}

	tin := TransferRec{
		Members:    []ownership.ID{5, 9, 11},
		From:       2,
		To:         0,
		TotalBytes: 4096,
		MinSeq:     77,
		States: map[uint64][]byte{
			5:  []byte("state-5"),
			11: {},
		},
	}
	b, err = tin.MarshalWire(nil)
	if err != nil {
		t.Fatalf("transfer marshal: %v", err)
	}
	var tout TransferRec
	if err := tout.UnmarshalWire(b); err != nil {
		t.Fatalf("transfer unmarshal: %v", err)
	}
	if !reflect.DeepEqual(tout, tin) {
		t.Fatalf("transfer: got %+v, want %+v", tout, tin)
	}

	// A state keyed by a non-member must be rejected, not silently dropped.
	bad := tin
	bad.States = map[uint64][]byte{99: []byte("orphan")}
	if _, err := bad.MarshalWire(nil); err == nil {
		t.Fatalf("transfer frame with non-member state encoded")
	}
}

// TestHotFrameRejectsWrongType pins the header check: a frame of one type
// must not decode as another, and gob bytes must not decode as hot frames.
func TestHotFrameRejectsWrongType(t *testing.T) {
	req := SubmitReq{Target: 1, Method: "m"}
	b, _ := req.MarshalWire(nil)
	var resp SubmitResp
	if err := resp.UnmarshalWire(b); err == nil {
		t.Fatalf("submitReq frame decoded as submitResp")
	}

	var gb bytes.Buffer
	if err := gob.NewEncoder(&gb).Encode(struct{ X int }{1}); err != nil {
		t.Fatal(err)
	}
	if IsHotFrame(gb.Bytes()) {
		t.Fatalf("gob payload classified as hot frame (first byte %#x)", gb.Bytes()[0])
	}
	var q SubmitReq
	if err := q.UnmarshalWire(gb.Bytes()); err == nil {
		t.Fatalf("gob payload decoded as hot frame")
	}
}

// TestSubmitReqZeroAlloc is the perf contract from the issue: steady-state
// encode+decode of a submit frame allocates nothing — pooled encode buffer,
// reused decode target, interned method, args drawn from the small-int
// cache. The frame carries a nonzero trace ID so the gate also proves the
// trace field keeps the hot encode at 0 allocs.
func TestSubmitReqZeroAlloc(t *testing.T) {
	req := SubmitReq{Target: 42, Method: "deposit", Args: []any{1}, Hops: 1, MinSeq: 9, Trace: 0x0123456789abcdef}
	var dec SubmitReq
	// Warm the intern table and the pool outside the measured window.
	buf := GetFrameBuf()
	b, err := req.MarshalWire((*buf)[:0])
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.UnmarshalWire(b); err != nil {
		t.Fatal(err)
	}
	*buf = b
	PutFrameBuf(buf)

	allocs := testing.AllocsPerRun(200, func() {
		buf := GetFrameBuf()
		b, err := req.MarshalWire((*buf)[:0])
		if err != nil {
			t.Fatal(err)
		}
		if err := dec.UnmarshalWire(b); err != nil {
			t.Fatal(err)
		}
		*buf = b
		PutFrameBuf(buf)
	})
	if allocs != 0 {
		t.Fatalf("submit encode+decode allocates %.1f times per op, want 0", allocs)
	}
}

// TestSubmitRespZeroAlloc: same contract for the response direction (the
// result is a cached small int, the Host varint and interned ErrKind are
// free).
func TestSubmitRespZeroAlloc(t *testing.T) {
	resp := SubmitResp{Result: 7, Host: 3}
	var dec SubmitResp
	buf := GetFrameBuf()
	b, _ := resp.MarshalWire((*buf)[:0])
	_ = dec.UnmarshalWire(b)
	*buf = b
	PutFrameBuf(buf)

	allocs := testing.AllocsPerRun(200, func() {
		buf := GetFrameBuf()
		b, err := resp.MarshalWire((*buf)[:0])
		if err != nil {
			t.Fatal(err)
		}
		if err := dec.UnmarshalWire(b); err != nil {
			t.Fatal(err)
		}
		*buf = b
		PutFrameBuf(buf)
	})
	if allocs != 0 {
		t.Fatalf("resp encode+decode allocates %.1f times per op, want 0", allocs)
	}
}

// TestSubmitBatchReqRoundTrip pins the batched request frame: every event's
// fields survive index-aligned, including repeated targets (back-reference
// encoded), mixed targets beyond the scan window, and per-event args.
func TestSubmitBatchReqRoundTrip(t *testing.T) {
	mixed := make([]BatchEvent, 0, 24)
	for i := 0; i < 24; i++ {
		// 12 distinct targets — larger than the back-reference scan window —
		// interleaved so both raw and back-referenced encodings occur.
		mixed = append(mixed, BatchEvent{
			Target: ownership.ID(i % 12),
			Method: "deposit",
			Args:   []any{i},
		})
	}
	cases := []SubmitBatchReq{
		{},
		{Hops: 2, MinSeq: 99, Events: []BatchEvent{
			{Target: 7, Method: "deposit", Args: []any{1}},
			{Target: 7, Method: "withdraw", Args: []any{2, "memo"}},
			{Target: 9, Method: "balance"},
			{Target: 7, Method: "deposit", Args: []any{nil, true, 3.5, []byte{1, 2}, ownership.ID(4)}},
		}},
		{Events: mixed},
	}
	for i, in := range cases {
		b, err := in.MarshalWire(nil)
		if err != nil {
			t.Fatalf("case %d marshal: %v", i, err)
		}
		if !IsHotFrame(b) {
			t.Fatalf("case %d: frame does not carry the hot magic", i)
		}
		if got, want := HotFrameEvents(b), max(len(in.Events), 1); got != want {
			t.Errorf("case %d: HotFrameEvents = %d, want %d", i, got, want)
		}
		var out SubmitBatchReq
		if err := out.UnmarshalWire(b); err != nil {
			t.Fatalf("case %d unmarshal: %v", i, err)
		}
		if out.Hops != in.Hops || out.MinSeq != in.MinSeq || len(out.Events) != len(in.Events) {
			t.Fatalf("case %d: frame fields changed: %+v vs %+v", i, out, in)
		}
		for j := range in.Events {
			ie, oe := in.Events[j], out.Events[j]
			if oe.Target != ie.Target || oe.Method != ie.Method || len(oe.Args) != len(ie.Args) {
				t.Errorf("case %d event %d: got %+v, want %+v", i, j, oe, ie)
			}
			for k := range ie.Args {
				if !reflect.DeepEqual(oe.Args[k], ie.Args[k]) {
					t.Errorf("case %d event %d arg %d: got %#v (%T), want %#v (%T)",
						i, j, k, oe.Args[k], oe.Args[k], ie.Args[k], ie.Args[k])
				}
			}
		}
	}
}

// TestSubmitBatchRespRoundTrip pins the batched response frame, in
// particular the partial-failure contract: one outcome's typed error rides
// its own slot and its siblings' results are untouched.
func TestSubmitBatchRespRoundTrip(t *testing.T) {
	in := SubmitBatchResp{Outcomes: []BatchOutcome{
		{Result: 450, Host: 3},
		{Result: nil, Host: -1, Err: "no such context", ErrKind: "unknown-context"},
		{Result: "ok", Host: 2},
		{Err: "queue full", ErrKind: "backpressure"},
	}}
	b, err := in.MarshalWire(nil)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out SubmitBatchResp
	if err := out.UnmarshalWire(b); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v, want %+v", out, in)
	}

	var empty SubmitBatchResp
	b, err = empty.MarshalWire(nil)
	if err != nil {
		t.Fatalf("empty marshal: %v", err)
	}
	var eout SubmitBatchResp
	if err := eout.UnmarshalWire(b); err != nil {
		t.Fatalf("empty unmarshal: %v", err)
	}
	if len(eout.Outcomes) != 0 {
		t.Fatalf("empty batch decoded %d outcomes", len(eout.Outcomes))
	}
}

// TestSubmitBatchBounds pins the decoder's refusal to allocate for absurd
// counts and the encoder's refusal to exceed MaxBatchEvents, plus rejection
// of forward target back-references.
func TestSubmitBatchBounds(t *testing.T) {
	big := SubmitBatchReq{Events: make([]BatchEvent, MaxBatchEvents+1)}
	if _, err := big.MarshalWire(nil); err == nil {
		t.Fatalf("oversized batch encoded")
	}
	// Hand-build a frame declaring MaxBatchEvents+1 events.
	frame := []byte{HotMagic, 5}
	frame = putUvarint(frame, 0)                  // Hops
	frame = putUvarint(frame, 0)                  // MinSeq
	frame = putUvarint(frame, MaxBatchEvents+1)   // count
	var q SubmitBatchReq
	if err := q.UnmarshalWire(frame); err == nil {
		t.Fatalf("oversized batch count decoded")
	}
	// A back-reference pointing past the first event is corrupt.
	frame = []byte{HotMagic, 5}
	frame = putUvarint(frame, 0)
	frame = putUvarint(frame, 0)
	frame = putUvarint(frame, 1) // one event
	frame = putUvarint(frame, 3) // back-ref 3 with no prior events
	if err := q.UnmarshalWire(frame); err == nil {
		t.Fatalf("forward back-reference decoded")
	}
}

// TestSubmitBatchReqZeroAlloc extends the perf contract to the batch frame:
// steady-state encode+decode of an 8-event coalesced batch allocates
// nothing.
func TestSubmitBatchReqZeroAlloc(t *testing.T) {
	evs := make([]BatchEvent, 8)
	for i := range evs {
		evs[i] = BatchEvent{Target: ownership.ID(40 + i%2), Method: "deposit", Args: []any{1}}
	}
	req := SubmitBatchReq{MinSeq: 9, Trace: 0xfeedface01020304, Events: evs}
	var dec SubmitBatchReq
	buf := GetFrameBuf()
	b, err := req.MarshalWire((*buf)[:0])
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.UnmarshalWire(b); err != nil {
		t.Fatal(err)
	}
	*buf = b
	PutFrameBuf(buf)

	allocs := testing.AllocsPerRun(200, func() {
		buf := GetFrameBuf()
		b, err := req.MarshalWire((*buf)[:0])
		if err != nil {
			t.Fatal(err)
		}
		if err := dec.UnmarshalWire(b); err != nil {
			t.Fatal(err)
		}
		*buf = b
		PutFrameBuf(buf)
	})
	if allocs != 0 {
		t.Fatalf("batch encode+decode allocates %.1f times per op, want 0", allocs)
	}
}

// TestSubmitBatchRespZeroAlloc: same contract for the batched response.
func TestSubmitBatchRespZeroAlloc(t *testing.T) {
	outs := make([]BatchOutcome, 8)
	for i := range outs {
		outs[i] = BatchOutcome{Result: 7, Host: 3}
	}
	resp := SubmitBatchResp{Outcomes: outs}
	var dec SubmitBatchResp
	buf := GetFrameBuf()
	b, _ := resp.MarshalWire((*buf)[:0])
	_ = dec.UnmarshalWire(b)
	*buf = b
	PutFrameBuf(buf)

	allocs := testing.AllocsPerRun(200, func() {
		buf := GetFrameBuf()
		b, err := resp.MarshalWire((*buf)[:0])
		if err != nil {
			t.Fatal(err)
		}
		if err := dec.UnmarshalWire(b); err != nil {
			t.Fatal(err)
		}
		*buf = b
		PutFrameBuf(buf)
	})
	if allocs != 0 {
		t.Fatalf("batch resp encode+decode allocates %.1f times per op, want 0", allocs)
	}
}

// BenchmarkSubmitBatchReqHotCodec reports the amortized per-event codec cost
// at a coalescer-sized batch.
func BenchmarkSubmitBatchReqHotCodec(b *testing.B) {
	evs := make([]BatchEvent, 32)
	for i := range evs {
		evs[i] = BatchEvent{Target: ownership.ID(40 + i%4), Method: "deposit", Args: []any{1}}
	}
	req := SubmitBatchReq{Events: evs}
	var dec SubmitBatchReq
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := GetFrameBuf()
		fb, err := req.MarshalWire((*buf)[:0])
		if err != nil {
			b.Fatal(err)
		}
		if err := dec.UnmarshalWire(fb); err != nil {
			b.Fatal(err)
		}
		*buf = fb
		PutFrameBuf(buf)
	}
}

// BenchmarkSubmitReqHotCodec reports the hot path cost; run with -benchmem
// to see the 0 B/op, 0 allocs/op contract.
func BenchmarkSubmitReqHotCodec(b *testing.B) {
	req := SubmitReq{Target: 42, Method: "deposit", Args: []any{1}, Hops: 1, MinSeq: 9}
	var dec SubmitReq
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := GetFrameBuf()
		fb, err := req.MarshalWire((*buf)[:0])
		if err != nil {
			b.Fatal(err)
		}
		if err := dec.UnmarshalWire(fb); err != nil {
			b.Fatal(err)
		}
		*buf = fb
		PutFrameBuf(buf)
	}
}

// BenchmarkSubmitReqGob is the baseline the hot codec replaces.
func BenchmarkSubmitReqGob(b *testing.B) {
	type gobSubmitReq struct {
		Target ownership.ID
		Method string
		Args   []any
		Hops   uint32
		MinSeq uint64
	}
	gob.Register(gobSubmitReq{})
	req := gobSubmitReq{Target: 42, Method: "deposit", Args: []any{1}, Hops: 1, MinSeq: 9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var bb bytes.Buffer
		if err := gob.NewEncoder(&bb).Encode(&req); err != nil {
			b.Fatal(err)
		}
		var dec gobSubmitReq
		if err := gob.NewDecoder(&bb).Decode(&dec); err != nil {
			b.Fatal(err)
		}
	}
}

// FuzzHotFrameRoundTrip feeds arbitrary bytes to every hot decoder (no
// panics allowed) and, when the bytes decode, re-encodes and re-decodes to
// check the codec agrees with itself — the round trip must be a fixed point.
func FuzzHotFrameRoundTrip(f *testing.F) {
	seedReq := SubmitReq{Target: 7, Method: "deposit", Args: []any{1, "x", ownership.ID(3)}, Hops: 2, MinSeq: 5}
	if b, err := seedReq.MarshalWire(nil); err == nil {
		f.Add(b)
	}
	seedResp := SubmitResp{Result: 450, Host: 3, Err: "boom", ErrKind: "ctx-missing"}
	if b, err := seedResp.MarshalWire(nil); err == nil {
		f.Add(b)
	}
	seedTr := TransferRec{Members: []ownership.ID{1, 2}, From: 1, To: 2, TotalBytes: 10, MinSeq: 3,
		States: map[uint64][]byte{1: []byte("s")}}
	if b, err := seedTr.MarshalWire(nil); err == nil {
		f.Add(b)
	}
	seedBatch := SubmitBatchReq{Hops: 1, MinSeq: 4, Events: []BatchEvent{
		{Target: 7, Method: "deposit", Args: []any{1}},
		{Target: 7, Method: "withdraw", Args: []any{"x"}},
		{Target: 9, Method: "balance"},
	}}
	if b, err := seedBatch.MarshalWire(nil); err == nil {
		f.Add(b)
	}
	seedBatchResp := SubmitBatchResp{Outcomes: []BatchOutcome{
		{Result: 450, Host: 3},
		{Err: "boom", ErrKind: "backpressure", Host: -1},
	}}
	if b, err := seedBatchResp.MarshalWire(nil); err == nil {
		f.Add(b)
	}
	f.Add([]byte{HotMagic})
	f.Add([]byte{HotMagic, 1})
	f.Add([]byte{HotMagic, 4, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add([]byte{HotMagic, 5, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	f.Add([]byte("not a frame at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var q SubmitReq
		if err := q.UnmarshalWire(data); err == nil {
			b2, err := q.MarshalWire(nil)
			if err != nil {
				t.Fatalf("re-encode of decoded submitReq failed: %v", err)
			}
			var q2 SubmitReq
			if err := q2.UnmarshalWire(b2); err != nil {
				t.Fatalf("re-decode of re-encoded submitReq failed: %v", err)
			}
			if q2.Target != q.Target || q2.Method != q.Method || q2.Hops != q.Hops ||
				q2.MinSeq != q.MinSeq || len(q2.Args) != len(q.Args) {
				t.Fatalf("submitReq round trip not a fixed point: %+v vs %+v", q2, q)
			}
		}
		var p SubmitResp
		if err := p.UnmarshalWire(data); err == nil {
			b2, err := p.MarshalWire(nil)
			if err != nil {
				t.Fatalf("re-encode of decoded submitResp failed: %v", err)
			}
			var p2 SubmitResp
			if err := p2.UnmarshalWire(b2); err != nil {
				t.Fatalf("re-decode of re-encoded submitResp failed: %v", err)
			}
		}
		var n NotifyRec
		if err := n.UnmarshalWire(data); err == nil {
			b2, _ := n.MarshalWire(nil)
			var n2 NotifyRec
			if err := n2.UnmarshalWire(b2); err != nil || n2 != n {
				t.Fatalf("notify round trip not a fixed point: %+v vs %+v (%v)", n2, n, err)
			}
		}
		var tr TransferRec
		if err := tr.UnmarshalWire(data); err == nil {
			if b2, err := tr.MarshalWire(nil); err == nil {
				var tr2 TransferRec
				if err := tr2.UnmarshalWire(b2); err != nil {
					t.Fatalf("re-decode of re-encoded transfer failed: %v", err)
				}
			}
		}
		var bq SubmitBatchReq
		if err := bq.UnmarshalWire(data); err == nil {
			_ = HotFrameEvents(data) // must not panic on any decodable frame
			b2, err := bq.MarshalWire(nil)
			if err != nil {
				t.Fatalf("re-encode of decoded submitBatchReq failed: %v", err)
			}
			var bq2 SubmitBatchReq
			if err := bq2.UnmarshalWire(b2); err != nil {
				t.Fatalf("re-decode of re-encoded submitBatchReq failed: %v", err)
			}
			if bq2.Hops != bq.Hops || bq2.MinSeq != bq.MinSeq || len(bq2.Events) != len(bq.Events) {
				t.Fatalf("submitBatchReq round trip not a fixed point: %+v vs %+v", bq2, bq)
			}
			for i := range bq.Events {
				if bq2.Events[i].Target != bq.Events[i].Target || bq2.Events[i].Method != bq.Events[i].Method {
					t.Fatalf("submitBatchReq event %d not a fixed point", i)
				}
			}
		}
		var bp SubmitBatchResp
		if err := bp.UnmarshalWire(data); err == nil {
			b2, err := bp.MarshalWire(nil)
			if err != nil {
				t.Fatalf("re-encode of decoded submitBatchResp failed: %v", err)
			}
			var bp2 SubmitBatchResp
			if err := bp2.UnmarshalWire(b2); err != nil {
				t.Fatalf("re-decode of re-encoded submitBatchResp failed: %v", err)
			}
			if len(bp2.Outcomes) != len(bp.Outcomes) {
				t.Fatalf("submitBatchResp round trip not a fixed point")
			}
		}
	})
}
