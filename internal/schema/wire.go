package schema

// Central gob type registry for every codec that moves AEON values across a
// process or storage boundary: event payloads shipped between nodes over the
// transport mesh, migration state-transfer records, the migration WAL, and
// eManager checkpoints. Registering in one place keeps the codecs from
// drifting — a type registered for checkpoints is automatically decodable in
// a node wire frame and vice versa, and a payload type forgotten by one
// subsystem fails the same way everywhere instead of only on the rarely
// exercised path.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"

	"aeon/internal/ownership"
)

var (
	wireMu    sync.Mutex
	wireTypes = make(map[reflect.Type]bool)
)

// RegisterWireType registers a concrete type with the shared gob codec so
// values of that type can travel inside `any`-typed fields (event arguments
// and results, checkpointed context state, migration transfer records).
// Registration is idempotent per concrete type; call it from init or setup
// code for every application payload type.
func RegisterWireType(v any) {
	if v == nil {
		return
	}
	t := reflect.TypeOf(v)
	wireMu.Lock()
	defer wireMu.Unlock()
	if wireTypes[t] {
		return
	}
	gob.Register(v)
	wireTypes[t] = true
}

// RegisterWireTypes registers several payload types at once.
func RegisterWireTypes(vs ...any) {
	for _, v := range vs {
		RegisterWireType(v)
	}
}

func init() {
	// Types every AEON deployment exchanges: context IDs appear in event
	// arguments and results (gob pre-registers the ordinary scalars).
	RegisterWireTypes(
		ownership.ID(0),
		[]ownership.ID(nil),
		[]any(nil),
		map[string]any(nil),
	)
}

// wireBox wraps an arbitrary value so gob records its concrete type; the
// single box type is shared by checkpoints, migration transfer records, and
// node wire frames.
type wireBox struct {
	V any
}

// EncodeWire gob-encodes one value of any registered type.
func EncodeWire(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wireBox{V: v}); err != nil {
		return nil, fmt.Errorf("schema: encode wire value: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeWire decodes a value produced by EncodeWire.
func DecodeWire(b []byte) (any, error) {
	var box wireBox
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&box); err != nil {
		return nil, fmt.Errorf("schema: decode wire value: %w", err)
	}
	return box.V, nil
}
