package schema

import (
	"errors"
	"strings"
	"testing"
)

func nop(_ Call, _ []any) (any, error) { return nil, nil }

func TestDeclareAndFreeze(t *testing.T) {
	s := New()
	building, err := s.DeclareClass("Building", func() any { return struct{}{} })
	if err != nil {
		t.Fatal(err)
	}
	room, _ := s.DeclareClass("Room", nil)
	// Declaration order does not matter: references are resolved at Freeze.
	if err := building.DeclareMethod("updateTimeOfDay", nop,
		MayCall("Room", "updateTimeOfDay")); err != nil {
		t.Fatalf("DeclareMethod: %v", err)
	}
	if err := room.DeclareMethod("updateTimeOfDay", nop); err != nil {
		t.Fatalf("DeclareMethod: %v", err)
	}
	if err := s.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
}

func buildGameSchema(t *testing.T) *Schema {
	t.Helper()
	s := New()
	building := s.MustDeclareClass("Building", nil)
	room := s.MustDeclareClass("Room", nil)
	player := s.MustDeclareClass("Player", nil)
	item := s.MustDeclareClass("Item", nil)

	item.MustDeclareMethod("get", nop)
	item.MustDeclareMethod("put", nop)
	item.MustDeclareMethod("peek", nop, RO())
	player.MustDeclareMethod("get_gold", nop, MayCall("Item", "get"), MayCall("Item", "put"))
	room.MustDeclareMethod("updateTimeOfDay", nop)
	room.MustDeclareMethod("nr_players", nop, RO(), MayAccess("Player"))
	building.MustDeclareMethod("updateTimeOfDay", nop, MayCall("Room", "updateTimeOfDay"))
	building.MustDeclareMethod("countPlayers", nop, RO(), MayCall("Room", "nr_players"))
	return s
}

func TestFreezeGameSchema(t *testing.T) {
	s := buildGameSchema(t)
	if err := s.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if !s.Frozen() {
		t.Fatal("schema should be frozen")
	}
	// Freezing twice is fine.
	if err := s.Freeze(); err != nil {
		t.Fatalf("second Freeze: %v", err)
	}
}

func TestFrozenRejectsMutation(t *testing.T) {
	s := buildGameSchema(t)
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeclareClass("X", nil); !errors.Is(err, ErrFrozen) {
		t.Fatalf("err = %v; want ErrFrozen", err)
	}
	if err := s.Class("Room").DeclareMethod("x", nop); !errors.Is(err, ErrFrozen) {
		t.Fatalf("err = %v; want ErrFrozen", err)
	}
}

func TestDuplicateDeclarations(t *testing.T) {
	s := New()
	s.MustDeclareClass("A", nil)
	if _, err := s.DeclareClass("A", nil); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v; want ErrDuplicate", err)
	}
	a := s.Class("A")
	a.MustDeclareMethod("m", nop)
	if err := a.DeclareMethod("m", nop); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v; want ErrDuplicate", err)
	}
}

func TestFreezeRejectsUnknownClass(t *testing.T) {
	s := New()
	a := s.MustDeclareClass("A", nil)
	a.MustDeclareMethod("m", nop, MayAccess("Ghost"))
	if err := s.Freeze(); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("err = %v; want ErrUnknownClass", err)
	}
}

func TestFreezeRejectsUnknownMethod(t *testing.T) {
	s := New()
	a := s.MustDeclareClass("A", nil)
	s.MustDeclareClass("B", nil)
	a.MustDeclareMethod("m", nop, MayCall("B", "ghost"))
	if err := s.Freeze(); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("err = %v; want ErrUnknownMethod", err)
	}
}

func TestFreezeRejectsCycle(t *testing.T) {
	s := New()
	a := s.MustDeclareClass("A", nil)
	b := s.MustDeclareClass("B", nil)
	c := s.MustDeclareClass("C", nil)
	a.MustDeclareMethod("m", nop, MayAccess("B"))
	b.MustDeclareMethod("m", nop, MayAccess("C"))
	c.MustDeclareMethod("m", nop, MayAccess("A"))
	err := s.Freeze()
	if !errors.Is(err, ErrOwnershipCycle) {
		t.Fatalf("err = %v; want ErrOwnershipCycle", err)
	}
	// The error message should name the cycle path.
	for _, name := range []string{"A", "B", "C"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("cycle error %q should mention %s", err, name)
		}
	}
}

func TestFreezeAllowsReflexiveAccess(t *testing.T) {
	// Linked lists and trees: a class may access itself (§ 3 exception).
	s := New()
	list := s.MustDeclareClass("ListNode", nil)
	list.MustDeclareMethod("insert", nop, MayAccess("ListNode"))
	if err := s.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
}

func TestFreezeRejectsROCallingEX(t *testing.T) {
	s := New()
	a := s.MustDeclareClass("A", nil)
	b := s.MustDeclareClass("B", nil)
	b.MustDeclareMethod("mutate", nop)
	a.MustDeclareMethod("read", nop, RO(), MayCall("B", "mutate"))
	if err := s.Freeze(); !errors.Is(err, ErrReadOnlyViolation) {
		t.Fatalf("err = %v; want ErrReadOnlyViolation", err)
	}
}

func TestROCallingROIsFine(t *testing.T) {
	s := New()
	a := s.MustDeclareClass("A", nil)
	b := s.MustDeclareClass("B", nil)
	b.MustDeclareMethod("peek", nop, RO())
	a.MustDeclareMethod("read", nop, RO(), MayCall("B", "peek"))
	if err := s.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
}

func TestMayAccess(t *testing.T) {
	s := buildGameSchema(t)
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	if !s.MayAccess("Player", "get_gold", "Item") {
		t.Fatal("Player.get_gold should access Item")
	}
	if s.MayAccess("Player", "get_gold", "Room") {
		t.Fatal("Player.get_gold must not access Room")
	}
	if !s.MayAccess("Player", "get_gold", "Player") {
		t.Fatal("reflexive access must be allowed")
	}
	if s.MayAccess("Ghost", "x", "Item") || s.MayAccess("Player", "ghost", "Item") {
		t.Fatal("unknown class/method must not be accessible")
	}
}

func TestClassIntrospection(t *testing.T) {
	s := buildGameSchema(t)
	classes := s.Classes()
	want := []string{"Building", "Item", "Player", "Room"}
	if len(classes) != len(want) {
		t.Fatalf("classes = %v; want %v", classes, want)
	}
	for i := range want {
		if classes[i] != want[i] {
			t.Fatalf("classes = %v; want %v", classes, want)
		}
	}
	room := s.Class("Room")
	if room.Name() != "Room" {
		t.Fatalf("Name = %q", room.Name())
	}
	methods := room.Methods()
	if len(methods) != 2 || methods[0] != "nr_players" || methods[1] != "updateTimeOfDay" {
		t.Fatalf("methods = %v", methods)
	}
	if room.Method("nr_players") == nil || !room.Method("nr_players").ReadOnly {
		t.Fatal("nr_players should be a declared RO method")
	}
	if room.Method("ghost") != nil {
		t.Fatal("unknown method should be nil")
	}
}

func TestNewStateFactory(t *testing.T) {
	type state struct{ N int }
	s := New()
	c := s.MustDeclareClass("A", func() any { return &state{N: 7} })
	noState := s.MustDeclareClass("B", nil)
	st, ok := c.NewState().(*state)
	if !ok || st.N != 7 {
		t.Fatalf("NewState = %#v", c.NewState())
	}
	if noState.NewState() != nil {
		t.Fatal("nil factory should produce nil state")
	}
}
