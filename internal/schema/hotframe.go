package schema

// Hand-rolled binary codec for the hot wire frames: submit requests and
// responses (every remote event pays one of each), replication-notify hints
// (every durable append fans one out per peer), and migration transfer
// records. Gob is reflection-driven and re-sends type metadata per frame on
// the request/response path, which BENCH_4/5 show dominating the remote
// submit cost; these frames instead get a fixed little-endian layout with
// varint integers, a tagged value encoding for `any` fields, and buffer
// reuse via sync.Pool, so the steady-state ingress path encodes and decodes
// without allocating. Rare control frames (store ops, migrate commands,
// pings) stay on the registered-gob codec — see RegisterWireType.
//
// Frame layout: every hot frame starts with [HotMagic, type byte]. HotMagic
// (0xA7) can never begin a valid gob stream (gob's leading byte is either a
// small literal length ≤ 0x7F or a 0xF8–0xFF length-of-length marker), so a
// receiver can cheaply tell the two codecs apart. All integers are uvarint
// or zigzag varint; strings and byte slices are length-prefixed.
//
// `any` values (event arguments and results) are encoded with a one-byte
// tag covering the scalar kinds real workloads send — nil, bool, int,
// int64, uint64, float64, string, []byte, ownership.ID — and fall back to
// an embedded EncodeWire (gob) blob for anything else, so exotic payload
// types stay correct, merely slower. Decoding preserves the concrete type
// exactly like a gob round trip would (an int arrives as int, not int64),
// which application method bodies rely on for type assertions.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"aeon/internal/ownership"
)

// HotMagic is the first byte of every hot-codec frame.
const HotMagic byte = 0xA7

// Hot frame type bytes (the second byte of a frame).
const (
	hotTypeSubmitReq       byte = 1
	hotTypeSubmitResp      byte = 2
	hotTypeNotify          byte = 3
	hotTypeTransfer        byte = 4
	hotTypeSubmitBatchReq  byte = 5
	hotTypeSubmitBatchResp byte = 6
)

// Value tags for the `any` encoding.
const (
	tagNil    byte = 0
	tagFalse  byte = 1
	tagTrue   byte = 2
	tagInt    byte = 3
	tagInt64  byte = 4
	tagUint64 byte = 5
	tagFloat  byte = 6
	tagString byte = 7
	tagBytes  byte = 8
	tagID     byte = 9
	tagGob    byte = 10
)

// ErrHotFrame is wrapped by every hot-codec decode failure (truncated
// buffer, wrong magic or type byte, corrupt varint), so callers can branch
// on malformed frames without string matching.
var ErrHotFrame = errors.New("schema: malformed hot frame")

// hotMax bounds decoded lengths (strings, byte slices, collection counts)
// so corrupt or adversarial frames cannot demand absurd allocations before
// failing. 64 MiB matches the transport's frame bound.
const hotMax = 64 << 20

// SubmitReq is the hot submit request frame: execute one event on the
// receiving node. It mirrors the node wire contract: Hops counts forwards
// already taken, MinSeq is the sender's applied replication sequence (the
// receiver's admission floor). Trace is an optional 8-byte trace ID (0 =
// untraced); nodes propagate it across forwarding hops and emit a span
// record per hop on their ops event feed. An unset trace costs one zero
// byte on the wire.
type SubmitReq struct {
	Target ownership.ID
	Method string
	Args   []any
	Hops   uint32
	MinSeq uint64
	Trace  uint64
}

// SubmitResp is the hot submit response frame. Host is the authoritative
// placement of the event's dominator after execution (0 = unknown), which
// stale callers use to repair their routing caches; Err/ErrKind carry
// handler failures in-band so typed errors survive the wire.
type SubmitResp struct {
	Result  any
	Host    int64
	Err     string
	ErrKind string
}

// NotifyRec is the hot replication-notify hint: the mutation log reached
// Seq.
type NotifyRec struct {
	Seq uint64
}

// TransferRec ships a stopped migration group's serialized state to the
// destination node (migration step IV over the mesh). States maps member ID
// to its EncodeWire payload; members without an entry are remapped without
// a state install.
type TransferRec struct {
	Members    []ownership.ID
	From, To   int64
	TotalBytes int64
	MinSeq     uint64
	States     map[uint64][]byte
}

// IsHotFrame reports whether b begins like a hot-codec frame (as opposed to
// a gob payload).
func IsHotFrame(b []byte) bool {
	return len(b) >= 2 && b[0] == HotMagic
}

// MaxBatchEvents bounds the events one batch frame may carry. Encoders split
// larger batches; the decoder rejects counts above it before allocating.
const MaxBatchEvents = 4096

// HotFrameEvents reports how many application events a payload carries: the
// batch event count for a SubmitBatchReq frame, 1 for everything else. The
// transport uses it to weigh server-side admission so a 128-event batch
// frame takes 128 admission slots, not 1. It only peeks the fixed-size
// prefix, so it is cheap enough for the read loop.
func HotFrameEvents(b []byte) int {
	if len(b) < 2 || b[0] != HotMagic || b[1] != hotTypeSubmitBatchReq {
		return 1
	}
	r := hotReader{b: b, off: 2}
	if _, err := r.uvarint(); err != nil { // Hops
		return 1
	}
	if _, err := r.uvarint(); err != nil { // MinSeq
		return 1
	}
	if _, err := r.uvarint(); err != nil { // Trace
		return 1
	}
	n, err := r.uvarint()
	if err != nil || n == 0 || n > MaxBatchEvents {
		return 1
	}
	return int(n)
}

// ---- frame buffers ----

var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// GetFrameBuf returns a pooled byte slice (length 0) for MarshalWire to
// append into. Return it with PutFrameBuf once the encoded frame is no
// longer referenced — for mesh calls, after Call returns (endpoints do not
// retain request payloads).
func GetFrameBuf() *[]byte {
	return framePool.Get().(*[]byte)
}

// PutFrameBuf recycles a buffer obtained from GetFrameBuf.
func PutFrameBuf(b *[]byte) {
	if b == nil || cap(*b) > hotMax {
		return
	}
	*b = (*b)[:0]
	framePool.Put(b)
}

// ---- primitive encoders ----

func putUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func putVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

func putString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func putBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// hotReader walks a frame body with bounds checks; every failure is an
// ErrHotFrame, never a panic, so arbitrary bytes are safe to feed in.
type hotReader struct {
	b   []byte
	off int
}

func (r *hotReader) fail(what string) error {
	return fmt.Errorf("%w: %s at offset %d", ErrHotFrame, what, r.off)
}

func (r *hotReader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, r.fail("truncated byte")
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

func (r *hotReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, r.fail("bad uvarint")
	}
	r.off += n
	return v, nil
}

func (r *hotReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, r.fail("bad varint")
	}
	r.off += n
	return v, nil
}

// take returns the next n bytes of the frame without copying.
func (r *hotReader) take(n uint64) ([]byte, error) {
	if n > hotMax || r.off+int(n) > len(r.b) {
		return nil, r.fail("truncated field")
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// str decodes a length-prefixed string, copying out of the frame (frames
// may live in pooled buffers; decoded values must not alias them).
func (r *hotReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.take(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// internedStr decodes a length-prefixed string through the intern table:
// repeated values (method names, error kinds — small closed sets) decode
// with zero allocations after first sight.
func (r *hotReader) internedStr() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.take(n)
	if err != nil {
		return "", err
	}
	return intern(b), nil
}

func (r *hotReader) header(frameType byte) error {
	if len(r.b) < 2 || r.b[0] != HotMagic {
		return fmt.Errorf("%w: missing magic", ErrHotFrame)
	}
	if r.b[1] != frameType {
		return fmt.Errorf("%w: frame type %d, want %d", ErrHotFrame, r.b[1], frameType)
	}
	r.off = 2
	return nil
}

// ---- string interning ----

// Method names and error kinds are drawn from small closed sets (the frozen
// schema's methods, the wire error kinds), so the decoder interns them: a
// map hit with a []byte key compiles to zero allocations, making repeated
// decodes allocation-free. Only bounded sets go through here — free-form
// strings (error messages, app data) are copied instead, so the table
// cannot grow without bound.
var (
	internMu  sync.RWMutex
	internTab = make(map[string]string)
)

func intern(b []byte) string {
	internMu.RLock()
	s, ok := internTab[string(b)] // no alloc: mapaccess with byte-slice key
	internMu.RUnlock()
	if ok {
		return s
	}
	internMu.Lock()
	defer internMu.Unlock()
	if s, ok = internTab[string(b)]; ok {
		return s
	}
	s = string(b)
	internTab[s] = s
	return s
}

// ---- `any` value codec ----

// appendValue encodes one tagged value.
func appendValue(dst []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(dst, tagNil), nil
	case bool:
		if x {
			return append(dst, tagTrue), nil
		}
		return append(dst, tagFalse), nil
	case int:
		return putVarint(append(dst, tagInt), int64(x)), nil
	case int64:
		return putVarint(append(dst, tagInt64), x), nil
	case uint64:
		return putUvarint(append(dst, tagUint64), x), nil
	case float64:
		dst = append(dst, tagFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(x)), nil
	case string:
		return putString(append(dst, tagString), x), nil
	case []byte:
		return putBytes(append(dst, tagBytes), x), nil
	case ownership.ID:
		return putUvarint(append(dst, tagID), uint64(x)), nil
	default:
		// Exotic payload type: embed a registered-gob blob. Correct for
		// every RegisterWireType'd type, just not allocation-free.
		blob, err := EncodeWire(v)
		if err != nil {
			return nil, err
		}
		return putBytes(append(dst, tagGob), blob), nil
	}
}

// readValue decodes one tagged value.
func (r *hotReader) readValue() (any, error) {
	tag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNil:
		return nil, nil
	case tagFalse:
		return false, nil
	case tagTrue:
		return true, nil
	case tagInt:
		v, err := r.varint()
		return int(v), err
	case tagInt64:
		return r.varint()
	case tagUint64:
		return r.uvarint()
	case tagFloat:
		b, err := r.take(8)
		if err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
	case tagString:
		return r.str()
	case tagBytes:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := r.take(n)
		if err != nil {
			return nil, err
		}
		out := make([]byte, len(b))
		copy(out, b)
		return out, nil
	case tagID:
		v, err := r.uvarint()
		return ownership.ID(v), err
	case tagGob:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := r.take(n)
		if err != nil {
			return nil, err
		}
		v, err := DecodeWire(b)
		if err != nil {
			return nil, fmt.Errorf("%w: embedded gob: %v", ErrHotFrame, err)
		}
		return v, nil
	default:
		return nil, r.fail(fmt.Sprintf("unknown value tag %d", tag))
	}
}

// ---- SubmitReq ----

// MarshalWire appends the frame to dst and returns the extended slice. Pass
// a pooled buffer (GetFrameBuf) with its length reset to zero to encode
// without allocating.
func (q *SubmitReq) MarshalWire(dst []byte) ([]byte, error) {
	dst = append(dst, HotMagic, hotTypeSubmitReq)
	dst = putUvarint(dst, uint64(q.Target))
	dst = putString(dst, q.Method)
	dst = putUvarint(dst, uint64(q.Hops))
	dst = putUvarint(dst, q.MinSeq)
	dst = putUvarint(dst, q.Trace)
	dst = putUvarint(dst, uint64(len(q.Args)))
	var err error
	for _, a := range q.Args {
		if dst, err = appendValue(dst, a); err != nil {
			return nil, fmt.Errorf("submit arg: %w", err)
		}
	}
	return dst, nil
}

// UnmarshalWire decodes a frame produced by MarshalWire. The receiver's
// Args slice is reused when its capacity suffices, so a long-lived decode
// target reaches steady-state zero allocations; decoded values never alias
// b.
func (q *SubmitReq) UnmarshalWire(b []byte) error {
	r := hotReader{b: b}
	if err := r.header(hotTypeSubmitReq); err != nil {
		return err
	}
	target, err := r.uvarint()
	if err != nil {
		return err
	}
	method, err := r.internedStr()
	if err != nil {
		return err
	}
	hops, err := r.uvarint()
	if err != nil {
		return err
	}
	if hops > math.MaxUint32 {
		return r.fail("hop count overflow")
	}
	minSeq, err := r.uvarint()
	if err != nil {
		return err
	}
	trace, err := r.uvarint()
	if err != nil {
		return err
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n > hotMax {
		return r.fail("arg count overflow")
	}
	args := q.Args[:0]
	for i := uint64(0); i < n; i++ {
		v, err := r.readValue()
		if err != nil {
			return fmt.Errorf("submit arg %d: %w", i, err)
		}
		args = append(args, v)
	}
	q.Target = ownership.ID(target)
	q.Method = method
	q.Hops = uint32(hops)
	q.MinSeq = minSeq
	q.Trace = trace
	q.Args = args
	return nil
}

// ---- SubmitResp ----

// MarshalWire appends the frame to dst.
func (p *SubmitResp) MarshalWire(dst []byte) ([]byte, error) {
	dst = append(dst, HotMagic, hotTypeSubmitResp)
	dst = putVarint(dst, p.Host)
	dst = putString(dst, p.ErrKind)
	dst = putString(dst, p.Err)
	var err error
	if dst, err = appendValue(dst, p.Result); err != nil {
		return nil, fmt.Errorf("submit result: %w", err)
	}
	return dst, nil
}

// UnmarshalWire decodes a frame produced by MarshalWire.
func (p *SubmitResp) UnmarshalWire(b []byte) error {
	r := hotReader{b: b}
	if err := r.header(hotTypeSubmitResp); err != nil {
		return err
	}
	host, err := r.varint()
	if err != nil {
		return err
	}
	kind, err := r.internedStr()
	if err != nil {
		return err
	}
	msg, err := r.str()
	if err != nil {
		return err
	}
	res, err := r.readValue()
	if err != nil {
		return fmt.Errorf("submit result: %w", err)
	}
	p.Host = host
	p.ErrKind = kind
	p.Err = msg
	p.Result = res
	return nil
}

// ---- NotifyRec ----

// MarshalWire appends the frame to dst.
func (n *NotifyRec) MarshalWire(dst []byte) ([]byte, error) {
	dst = append(dst, HotMagic, hotTypeNotify)
	return putUvarint(dst, n.Seq), nil
}

// UnmarshalWire decodes a frame produced by MarshalWire.
func (n *NotifyRec) UnmarshalWire(b []byte) error {
	r := hotReader{b: b}
	if err := r.header(hotTypeNotify); err != nil {
		return err
	}
	seq, err := r.uvarint()
	if err != nil {
		return err
	}
	n.Seq = seq
	return nil
}

// ---- TransferRec ----

// MarshalWire appends the frame to dst.
func (t *TransferRec) MarshalWire(dst []byte) ([]byte, error) {
	dst = append(dst, HotMagic, hotTypeTransfer)
	dst = putVarint(dst, t.From)
	dst = putVarint(dst, t.To)
	dst = putVarint(dst, t.TotalBytes)
	dst = putUvarint(dst, t.MinSeq)
	dst = putUvarint(dst, uint64(len(t.Members)))
	for _, id := range t.Members {
		dst = putUvarint(dst, uint64(id))
	}
	dst = putUvarint(dst, uint64(len(t.States)))
	// Iterate members (ordered) rather than the map so the encoding is
	// deterministic; entries for non-members cannot exist by construction
	// but are guarded below anyway.
	written := 0
	for _, id := range t.Members {
		b, ok := t.States[uint64(id)]
		if !ok {
			continue
		}
		dst = putUvarint(dst, uint64(id))
		dst = putBytes(dst, b)
		written++
	}
	if written != len(t.States) {
		return nil, fmt.Errorf("schema: transfer frame has %d states for non-members", len(t.States)-written)
	}
	return dst, nil
}

// UnmarshalWire decodes a frame produced by MarshalWire.
func (t *TransferRec) UnmarshalWire(b []byte) error {
	r := hotReader{b: b}
	if err := r.header(hotTypeTransfer); err != nil {
		return err
	}
	var err error
	if t.From, err = r.varint(); err != nil {
		return err
	}
	if t.To, err = r.varint(); err != nil {
		return err
	}
	if t.TotalBytes, err = r.varint(); err != nil {
		return err
	}
	if t.MinSeq, err = r.uvarint(); err != nil {
		return err
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n > hotMax {
		return r.fail("member count overflow")
	}
	t.Members = make([]ownership.ID, 0, n)
	for i := uint64(0); i < n; i++ {
		id, err := r.uvarint()
		if err != nil {
			return err
		}
		t.Members = append(t.Members, ownership.ID(id))
	}
	n, err = r.uvarint()
	if err != nil {
		return err
	}
	if n > hotMax {
		return r.fail("state count overflow")
	}
	t.States = make(map[uint64][]byte, n)
	for i := uint64(0); i < n; i++ {
		id, err := r.uvarint()
		if err != nil {
			return err
		}
		ln, err := r.uvarint()
		if err != nil {
			return err
		}
		raw, err := r.take(ln)
		if err != nil {
			return err
		}
		st := make([]byte, len(raw))
		copy(st, raw)
		t.States[id] = st
	}
	return nil
}

// ---- SubmitBatchReq ----

// BatchEvent is one event inside a SubmitBatchReq.
type BatchEvent struct {
	Target ownership.ID
	Method string
	Args   []any
}

// SubmitBatchReq is the hot batched submit frame: execute N independent
// events on the receiving node in one exchange, amortizing the per-frame
// wakeup and window costs across the batch. Hops and MinSeq apply to the
// frame as a whole (one admission, one hop budget); outcomes are per-event
// and independent — see SubmitBatchResp.
//
// Targets are interned against the frame itself: coalesced batches often
// repeat a target (or a small set of them), so each event encodes either a
// back-reference to an earlier event's target or a raw ID, never the same
// varint twice in a row.
type SubmitBatchReq struct {
	Hops   uint32
	MinSeq uint64
	// Trace is an optional 8-byte trace ID covering the whole frame (0 =
	// untraced); forwarded sub-batches inherit it.
	Trace  uint64
	Events []BatchEvent
}

// BatchOutcome is the result of one event of a batch. The fields mirror
// SubmitResp: Host is the authoritative placement of that event's dominator
// after execution (0 = unknown), Err/ErrKind carry a handler failure typed.
// One event's failure never poisons its batchmates — each slot stands alone.
type BatchOutcome struct {
	Result  any
	Host    int64
	Err     string
	ErrKind string
}

// SubmitBatchResp carries one BatchOutcome per request event, index-aligned.
type SubmitBatchResp struct {
	Outcomes []BatchOutcome
}

// batchTargetScan bounds how far the encoder looks back for an equal target.
// Coalesced batches are either single-target runs (hit at distance 1) or
// small mixed sets; a short window keeps encoding O(n) in the worst case.
const batchTargetScan = 8

// MarshalWire appends the frame to dst. Pass a pooled buffer (GetFrameBuf)
// to encode without allocating.
func (q *SubmitBatchReq) MarshalWire(dst []byte) ([]byte, error) {
	if len(q.Events) > MaxBatchEvents {
		return nil, fmt.Errorf("schema: batch of %d events exceeds MaxBatchEvents", len(q.Events))
	}
	dst = append(dst, HotMagic, hotTypeSubmitBatchReq)
	dst = putUvarint(dst, uint64(q.Hops))
	dst = putUvarint(dst, q.MinSeq)
	dst = putUvarint(dst, q.Trace)
	dst = putUvarint(dst, uint64(len(q.Events)))
	var err error
	for i := range q.Events {
		ev := &q.Events[i]
		// Target: 0 = raw ID follows; k>0 = same target as event i-k.
		back := uint64(0)
		for k := 1; k <= batchTargetScan && k <= i; k++ {
			if q.Events[i-k].Target == ev.Target {
				back = uint64(k)
				break
			}
		}
		dst = putUvarint(dst, back)
		if back == 0 {
			dst = putUvarint(dst, uint64(ev.Target))
		}
		dst = putString(dst, ev.Method)
		dst = putUvarint(dst, uint64(len(ev.Args)))
		for _, a := range ev.Args {
			if dst, err = appendValue(dst, a); err != nil {
				return nil, fmt.Errorf("batch event %d arg: %w", i, err)
			}
		}
	}
	return dst, nil
}

// UnmarshalWire decodes a frame produced by MarshalWire. The receiver's
// Events slice — and each event's Args slice — is reused when capacity
// suffices, so a long-lived decode target reaches steady-state zero
// allocations; decoded values never alias b.
func (q *SubmitBatchReq) UnmarshalWire(b []byte) error {
	r := hotReader{b: b}
	if err := r.header(hotTypeSubmitBatchReq); err != nil {
		return err
	}
	hops, err := r.uvarint()
	if err != nil {
		return err
	}
	if hops > math.MaxUint32 {
		return r.fail("hop count overflow")
	}
	minSeq, err := r.uvarint()
	if err != nil {
		return err
	}
	trace, err := r.uvarint()
	if err != nil {
		return err
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n > MaxBatchEvents {
		return r.fail("batch event count overflow")
	}
	evs := q.Events
	if uint64(cap(evs)) < n {
		evs = make([]BatchEvent, n)
	} else {
		// Re-extend over prior entries: their Args capacity is what makes
		// repeated decodes allocation-free.
		evs = evs[:n]
	}
	for i := uint64(0); i < n; i++ {
		e := &evs[i]
		back, err := r.uvarint()
		if err != nil {
			return err
		}
		switch {
		case back == 0:
			raw, err := r.uvarint()
			if err != nil {
				return err
			}
			e.Target = ownership.ID(raw)
		case back > i:
			return r.fail("batch target back-reference out of range")
		default:
			e.Target = evs[i-back].Target
		}
		if e.Method, err = r.internedStr(); err != nil {
			return err
		}
		na, err := r.uvarint()
		if err != nil {
			return err
		}
		if na > hotMax {
			return r.fail("arg count overflow")
		}
		args := e.Args[:0]
		for j := uint64(0); j < na; j++ {
			v, err := r.readValue()
			if err != nil {
				return fmt.Errorf("batch event %d arg %d: %w", i, j, err)
			}
			args = append(args, v)
		}
		e.Args = args
	}
	q.Hops = uint32(hops)
	q.MinSeq = minSeq
	q.Trace = trace
	q.Events = evs
	return nil
}

// ---- SubmitBatchResp ----

// MarshalWire appends the frame to dst.
func (p *SubmitBatchResp) MarshalWire(dst []byte) ([]byte, error) {
	if len(p.Outcomes) > MaxBatchEvents {
		return nil, fmt.Errorf("schema: batch of %d outcomes exceeds MaxBatchEvents", len(p.Outcomes))
	}
	dst = append(dst, HotMagic, hotTypeSubmitBatchResp)
	dst = putUvarint(dst, uint64(len(p.Outcomes)))
	var err error
	for i := range p.Outcomes {
		o := &p.Outcomes[i]
		dst = putVarint(dst, o.Host)
		dst = putString(dst, o.ErrKind)
		dst = putString(dst, o.Err)
		if dst, err = appendValue(dst, o.Result); err != nil {
			return nil, fmt.Errorf("batch outcome %d result: %w", i, err)
		}
	}
	return dst, nil
}

// UnmarshalWire decodes a frame produced by MarshalWire. The receiver's
// Outcomes slice is reused when capacity suffices.
func (p *SubmitBatchResp) UnmarshalWire(b []byte) error {
	r := hotReader{b: b}
	if err := r.header(hotTypeSubmitBatchResp); err != nil {
		return err
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n > MaxBatchEvents {
		return r.fail("batch outcome count overflow")
	}
	outs := p.Outcomes
	if uint64(cap(outs)) < n {
		outs = make([]BatchOutcome, n)
	} else {
		outs = outs[:n]
	}
	for i := uint64(0); i < n; i++ {
		o := &outs[i]
		if o.Host, err = r.varint(); err != nil {
			return err
		}
		if o.ErrKind, err = r.internedStr(); err != nil {
			return err
		}
		if o.Err, err = r.str(); err != nil {
			return err
		}
		if o.Result, err = r.readValue(); err != nil {
			return fmt.Errorf("batch outcome %d result: %w", i, err)
		}
	}
	p.Outcomes = outs
	return nil
}
