// Package schema implements AEON's contextclass declarations and the static
// analysis of § 3 ("Type-based enforcement of DAG ownership").
//
// An AEON application declares a set of contextclasses, each with a state
// factory and a method table. Methods carry the paper's `ro` (readonly)
// modifier, the set of contextclasses they may access (the information the
// paper's compiler collects in one pass over ANF declarations), and the
// methods they may call. Freezing a schema runs the static checks:
//
//   - the class-level constraint graph C1 ≤ C0 (C0's methods may use C1) must
//     be acyclic, except for the reflexive case that permits inductive
//     structures such as linked lists and trees;
//   - readonly methods may only call readonly methods;
//   - every referenced class and method must exist.
//
// Go has no contextclass keyword, so the restriction that context-typed
// fields may appear only inside contextclass code is by convention: context
// references held by application state are ownership.IDs handed out by the
// runtime, and plain (non-context) classes are ordinary Go values inside a
// context's state.
package schema

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"aeon/internal/ownership"
)

var (
	// ErrFrozen is returned when mutating a frozen schema.
	ErrFrozen = errors.New("schema: frozen")
	// ErrDuplicate is returned when a class or method is declared twice.
	ErrDuplicate = errors.New("schema: duplicate declaration")
	// ErrUnknownClass is returned when a declaration references an
	// undeclared contextclass.
	ErrUnknownClass = errors.New("schema: unknown contextclass")
	// ErrUnknownMethod is returned when a declaration references an
	// undeclared method.
	ErrUnknownMethod = errors.New("schema: unknown method")
	// ErrOwnershipCycle is returned when the class constraint graph is
	// cyclic beyond the reflexive exception.
	ErrOwnershipCycle = errors.New("schema: contextclass ownership constraints are cyclic")
	// ErrReadOnlyViolation is returned when a readonly method declares a
	// call to a non-readonly method.
	ErrReadOnlyViolation = errors.New("schema: readonly method calls non-readonly method")
)

// Handler is the body of a contextclass method. It receives the invocation
// environment (the paper's implicit "this context" plus the event-scoped
// operations) and the call arguments.
type Handler func(call Call, args []any) (any, error)

// AsyncResult joins an asynchronous intra-event method call.
type AsyncResult interface {
	// Wait blocks until the call completes and returns its result.
	Wait() (any, error)
}

// Call is the environment a method body executes in. The core runtime
// provides the implementation; it is defined here so that application
// schemas do not depend on the runtime package.
type Call interface {
	// Self returns the context the method is executing on.
	Self() ownership.ID
	// Class returns the contextclass name of the executing context.
	Class() string
	// State returns the mutable state of the executing context. Readonly
	// methods must not modify it.
	State() any
	// EventID identifies the enclosing event (for logging and tracing).
	EventID() uint64
	// ReadOnly reports whether the enclosing event is readonly.
	ReadOnly() bool

	// Sync performs a synchronous method call on a directly-owned child
	// context, activating it for the enclosing event first.
	Sync(child ownership.ID, method string, args ...any) (any, error)
	// Async performs an asynchronous method call on a directly-owned child
	// context. The enclosing event does not complete until the call does;
	// Wait is optional.
	Async(child ownership.ID, method string, args ...any) AsyncResult
	// Crab performs an asynchronous tail call on a directly-owned child and
	// releases the *current* context once the child is activated, letting
	// the next event enter it (the § 6.1.2 optimization: "once a payment
	// transaction finishes its execution in a Warehouse context, it calls a
	// method in a District context asynchronously, and releases the
	// Warehouse context"). Safe only when the event will never again touch
	// this context or anything reachable around the child; the runtime
	// rejects later calls through a crabbed context.
	Crab(child ownership.ID, method string, args ...any) error
	// Dispatch schedules a fresh event that runs after the enclosing event
	// completes (§ 3: "an event that is dispatched within another event ...
	// will execute after its creator event finishes").
	Dispatch(target ownership.ID, method string, args ...any)

	// NewContext creates a context of the given class owned by the given
	// owners (which must include contexts the event currently holds).
	NewContext(class string, owners ...ownership.ID) (ownership.ID, error)
	// AddOwner adds a direct-ownership edge parent→child at runtime.
	AddOwner(parent, child ownership.ID) error

	// Children lists the directly-owned children of the executing context,
	// optionally filtered by class (empty string = all).
	Children(class string) ([]ownership.ID, error)

	// Work consumes the given amount of simulated CPU on the hosting server
	// (the substrate's stand-in for real computation).
	Work(d time.Duration)
}

// Method describes one contextclass method.
type Method struct {
	// Name of the method within its class.
	Name string
	// ReadOnly marks the paper's `ro` modifier: the method must not modify
	// context state and may only call readonly methods; readonly events
	// lock contexts in share mode.
	ReadOnly bool
	// Accesses lists the contextclass names whose instances this method may
	// touch via Sync/Async/Crab. It feeds the static constraint graph.
	Accesses []string
	// Calls lists (class, method) pairs this method may invoke; used for
	// the readonly-calls-readonly check.
	Calls []MethodRef
	// Cost is the simulated CPU consumed per invocation before the handler
	// body runs (zero means the handler does its own Work calls, if any).
	Cost time.Duration
	// Handler is the method body.
	Handler Handler
}

// MethodRef names a method of a contextclass.
type MethodRef struct {
	Class  string
	Method string
}

// Class describes one contextclass.
type Class struct {
	name    string
	newFn   func() any
	methods map[string]*Method
	schema  *Schema
}

// Name returns the contextclass name.
func (c *Class) Name() string { return c.name }

// NewState instantiates the class's state object.
func (c *Class) NewState() any {
	if c.newFn == nil {
		return nil
	}
	return c.newFn()
}

// Method returns the named method, or nil.
func (c *Class) Method(name string) *Method {
	return c.methods[name]
}

// Methods returns the method names in sorted order.
func (c *Class) Methods() []string {
	out := make([]string, 0, len(c.methods))
	for name := range c.methods {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// MethodOption configures a method declaration.
type MethodOption func(*Method)

// RO marks a method readonly (the paper's `ro` modifier).
func RO() MethodOption {
	return func(m *Method) { m.ReadOnly = true }
}

// MayAccess declares the contextclasses the method may reach.
func MayAccess(classes ...string) MethodOption {
	return func(m *Method) { m.Accesses = append(m.Accesses, classes...) }
}

// MayCall declares a method the declared method may invoke on a child
// context; it implies MayAccess(class).
func MayCall(class, method string) MethodOption {
	return func(m *Method) {
		m.Calls = append(m.Calls, MethodRef{Class: class, Method: method})
		m.Accesses = append(m.Accesses, class)
	}
}

// Cost declares the simulated CPU consumed per invocation.
func Cost(d time.Duration) MethodOption {
	return func(m *Method) { m.Cost = d }
}

// DeclareMethod adds a method to the class.
func (c *Class) DeclareMethod(name string, handler Handler, opts ...MethodOption) error {
	if c.schema.frozen {
		return ErrFrozen
	}
	if _, ok := c.methods[name]; ok {
		return fmt.Errorf("method %s.%s: %w", c.name, name, ErrDuplicate)
	}
	m := &Method{Name: name, Handler: handler}
	for _, opt := range opts {
		opt(m)
	}
	c.methods[name] = m
	return nil
}

// MustDeclareMethod is DeclareMethod that panics on error; intended for
// program initialization where a bad schema should abort startup.
func (c *Class) MustDeclareMethod(name string, handler Handler, opts ...MethodOption) {
	if err := c.DeclareMethod(name, handler, opts...); err != nil {
		panic(err)
	}
}

// VirtualContextClass returns a fresh class descriptor for the unnamed
// contexts the ownership graph inserts to restore the lattice property.
// Virtual contexts have no state and no methods; they exist only as
// sequencing points.
func VirtualContextClass() *Class {
	return &Class{name: ownership.VirtualClass, methods: map[string]*Method{}}
}

// Schema is a set of contextclass declarations.
type Schema struct {
	classes map[string]*Class
	frozen  bool
}

// New returns an empty schema.
func New() *Schema {
	return &Schema{classes: make(map[string]*Class)}
}

// DeclareClass adds a contextclass with the given state factory.
func (s *Schema) DeclareClass(name string, newState func() any) (*Class, error) {
	if s.frozen {
		return nil, ErrFrozen
	}
	if _, ok := s.classes[name]; ok {
		return nil, fmt.Errorf("class %s: %w", name, ErrDuplicate)
	}
	c := &Class{name: name, newFn: newState, methods: make(map[string]*Method), schema: s}
	s.classes[name] = c
	return c, nil
}

// MustDeclareClass is DeclareClass that panics on error.
func (s *Schema) MustDeclareClass(name string, newState func() any) *Class {
	c, err := s.DeclareClass(name, newState)
	if err != nil {
		panic(err)
	}
	return c
}

// Class returns the named contextclass, or nil.
func (s *Schema) Class(name string) *Class {
	return s.classes[name]
}

// Classes returns the declared class names in sorted order.
func (s *Schema) Classes() []string {
	out := make([]string, 0, len(s.classes))
	for name := range s.classes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Frozen reports whether the schema has been validated and frozen.
func (s *Schema) Frozen() bool { return s.frozen }

// Freeze validates the schema and makes it immutable. It runs the static
// analysis of § 3: the class constraint graph must be acyclic (reflexive
// edges excepted), readonly methods must only call readonly methods, and all
// references must resolve.
func (s *Schema) Freeze() error {
	if s.frozen {
		return nil
	}
	if err := s.checkReferences(); err != nil {
		return err
	}
	if err := s.checkReadOnly(); err != nil {
		return err
	}
	if err := s.checkAcyclic(); err != nil {
		return err
	}
	s.frozen = true
	return nil
}

// MustFreeze is Freeze that panics on error.
func (s *Schema) MustFreeze() *Schema {
	if err := s.Freeze(); err != nil {
		panic(err)
	}
	return s
}

func (s *Schema) checkReferences() error {
	for _, c := range s.classes {
		for _, m := range c.methods {
			for _, a := range m.Accesses {
				if _, ok := s.classes[a]; !ok {
					return fmt.Errorf("%s.%s accesses %q: %w", c.name, m.Name, a, ErrUnknownClass)
				}
			}
			for _, call := range m.Calls {
				callee, ok := s.classes[call.Class]
				if !ok {
					return fmt.Errorf("%s.%s calls %s.%s: %w", c.name, m.Name, call.Class, call.Method, ErrUnknownClass)
				}
				if _, ok := callee.methods[call.Method]; !ok {
					return fmt.Errorf("%s.%s calls %s.%s: %w", c.name, m.Name, call.Class, call.Method, ErrUnknownMethod)
				}
			}
		}
	}
	return nil
}

func (s *Schema) checkReadOnly() error {
	for _, c := range s.classes {
		for _, m := range c.methods {
			if !m.ReadOnly {
				continue
			}
			for _, call := range m.Calls {
				callee := s.classes[call.Class].methods[call.Method]
				if !callee.ReadOnly {
					return fmt.Errorf("%s.%s → %s.%s: %w",
						c.name, m.Name, call.Class, call.Method, ErrReadOnlyViolation)
				}
			}
		}
	}
	return nil
}

// checkAcyclic builds the constraint graph (edge C0 → C1 whenever a method of
// C0 may access C1, meaning C1 ≤ C0 in the ownership order) and rejects any
// cycle other than a self-loop.
func (s *Schema) checkAcyclic() error {
	edges := make(map[string]map[string]bool, len(s.classes))
	for name, c := range s.classes {
		edges[name] = make(map[string]bool)
		for _, m := range c.methods {
			for _, a := range m.Accesses {
				if a == name {
					continue // reflexive exception for inductive structures
				}
				edges[name][a] = true
			}
		}
	}
	// Iterative DFS cycle detection with path reconstruction.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(edges))
	parent := make(map[string]string, len(edges))

	names := make([]string, 0, len(edges))
	for n := range edges {
		names = append(names, n)
	}
	sort.Strings(names)

	var visit func(string) []string
	visit = func(u string) []string {
		color[u] = gray
		targets := make([]string, 0, len(edges[u]))
		for v := range edges[u] {
			targets = append(targets, v)
		}
		sort.Strings(targets)
		for _, v := range targets {
			switch color[v] {
			case white:
				parent[v] = u
				if cyc := visit(v); cyc != nil {
					return cyc
				}
			case gray:
				// Reconstruct the cycle v → ... → u → v.
				cycle := []string{v}
				for cur := u; cur != v; cur = parent[cur] {
					cycle = append(cycle, cur)
				}
				cycle = append(cycle, v)
				// Reverse for readability.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return cycle
			}
		}
		color[u] = black
		return nil
	}
	for _, n := range names {
		if color[n] == white {
			if cycle := visit(n); cycle != nil {
				return fmt.Errorf("%w: %s", ErrOwnershipCycle, strings.Join(cycle, " → "))
			}
		}
	}
	return nil
}

// MayAccess reports whether a method of class may access targetClass,
// honoring the reflexive exception. Used by the runtime to enforce the
// declarations dynamically.
func (s *Schema) MayAccess(class, method, targetClass string) bool {
	c, ok := s.classes[class]
	if !ok {
		return false
	}
	m, ok := c.methods[method]
	if !ok {
		return false
	}
	if targetClass == class {
		return true // reflexive: inductive structures
	}
	for _, a := range m.Accesses {
		if a == targetClass {
			return true
		}
	}
	return false
}
