package bench

// The `store` experiment measures what the sharded, replicated store plane
// buys: aggregate store write throughput at 1 vs 2 partitions (each
// partition a node.StoreRF-replica set of store servers with a bounded
// serial service rate — the ceiling partitioning removes), and the failover
// blackout window when a partition's primary is killed mid-traffic (time
// from the kill to the first write acknowledged through the promoted
// follower with a majority of the set holding it). Recorded as
// BENCH_7.json.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/node"
	"aeon/internal/transport"
)

// storeServiceTime is the simulated per-op service time charged under each
// store replica's lock: it models a store node with a bounded serial
// service rate (~1/d ops/s), so the single-partition throughput ceiling —
// and its removal by sharding — is observable on any host, including a
// 1-CPU CI container where lock-free scaling alone would be invisible.
const storeServiceTime = 200 * time.Microsecond

// StoreExp regenerates the store-plane experiment table.
func StoreExp(o Options) (*Table, error) {
	dur := o.duration()
	clients := 8
	if o.Quick {
		clients = 4
	}

	t := &Table{
		Title:   "Store plane: write throughput vs partition count, and failover blackout",
		Columns: []string{"partitions", "replicas", "store ops/s", "vs 1 part", "failover blackout"},
		Notes: []string{
			fmt.Sprintf("each replica models a store node with a %v serial service time (~%.0f ops/s ceiling per partition primary)", storeServiceTime, float64(time.Second)/float64(storeServiceTime)),
			fmt.Sprintf("every write = primary op + fenced commit applies; acks need a majority of the %d-replica set durable", node.StoreRF),
			fmt.Sprintf("%d client workers over prefix-group-sharded keys, %v per point, in-memory mesh", clients, dur),
			"blackout: kill a partition's primary store server mid-traffic; time until the first write acks through the CAS-fence-promoted follower",
			"expected shape: ops/s scales with partition count (the SPOF store was the ceiling); blackout is one failed call + one fence promotion",
		},
	}

	var base float64
	for _, parts := range []int{1, 2} {
		o.progressf("store: %d partition(s)\n", parts)
		ops, err := storePlaneThroughput(parts, clients, dur)
		if err != nil {
			return nil, fmt.Errorf("%d partitions: %w", parts, err)
		}
		scale := "1.00x"
		if parts == 1 {
			base = ops
		} else if base > 0 {
			scale = fmt.Sprintf("%.2fx", ops/base)
		}
		blackout := "-"
		if parts == 2 {
			o.progressf("store: failover blackout\n")
			w, err := storeFailoverBlackout(clients)
			if err != nil {
				return nil, fmt.Errorf("failover: %w", err)
			}
			blackout = fmtMS(w)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", parts), fmt.Sprintf("%d/part", node.StoreRF), fmtK(ops), scale, blackout,
		})
	}
	return t, nil
}

// storePlane builds a parts-partition store plane (node.StoreRF store
// servers per partition) on a fresh in-memory mesh and returns a client
// endpoint plus a constructor for per-worker partitioned clients.
type storePlane struct {
	mesh    transport.Mesh
	ep      transport.Endpoint
	servers []*node.StoreServer
	parts   int
}

func newStorePlane(parts int) (*storePlane, error) {
	mesh := transport.NewInMemMesh(transport.NewSim(transport.SimConfig{}))
	sp := &storePlane{mesh: mesh, parts: parts}
	for p := 0; p < parts; p++ {
		for r := 0; r < node.StoreRF; r++ {
			st := cloudstore.New(cloudstore.WithSerialLatency(storeServiceTime))
			srv, err := node.ServeStore(mesh, node.StoreIDBase+transport.NodeID(node.StoreRF*p+r+1), st)
			if err != nil {
				sp.Close()
				return nil, err
			}
			sp.servers = append(sp.servers, srv)
		}
	}
	ep, err := mesh.Attach(999, func(context.Context, transport.NodeID, transport.Message) (transport.Message, error) {
		return transport.Message{}, fmt.Errorf("bench client endpoint serves nothing")
	})
	if err != nil {
		sp.Close()
		return nil, err
	}
	sp.ep = ep
	return sp, nil
}

// client builds one worker's view of the plane: a Partitioned router over
// per-partition Replicated clients speaking RemoteStore to the servers.
func (sp *storePlane) client(base context.Context) *cloudstore.Partitioned {
	apis := make([]cloudstore.API, sp.parts)
	for p := 0; p < sp.parts; p++ {
		reps := make([]cloudstore.ReplicaAPI, node.StoreRF)
		for r := 0; r < node.StoreRF; r++ {
			reps[r] = node.NewRemoteStore(sp.ep, node.StoreIDBase+transport.NodeID(node.StoreRF*p+r+1), 5*time.Second, base)
		}
		apis[p] = cloudstore.NewReplicated(p, reps...)
	}
	return cloudstore.NewPartitioned(apis...)
}

func (sp *storePlane) Close() {
	if sp.ep != nil {
		_ = sp.ep.Close()
	}
	for _, s := range sp.servers {
		_ = s.Close()
	}
}

// storePlaneThroughput measures aggregate acknowledged writes/s from
// `clients` workers hammering the plane across many prefix groups (so the
// keyspace spreads over all partitions).
func storePlaneThroughput(parts, clients int, dur time.Duration) (float64, error) {
	sp, err := newStorePlane(parts)
	if err != nil {
		return 0, err
	}
	defer sp.Close()

	base, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		stop atomic.Bool
		ops  atomic.Uint64
		wg   sync.WaitGroup
		errc = make(chan error, clients)
	)
	for c := 0; c < clients; c++ {
		store := sp.client(base)
		wg.Add(1)
		go func(c int, store *cloudstore.Partitioned) {
			defer wg.Done()
			val := []byte("bench-value")
			for i := 0; !stop.Load(); i++ {
				// Many groups → both partitions see traffic; the group
				// count (32) is far above the partition count so the hash
				// split stays near-even.
				key := fmt.Sprintf("g%02d/c%d", (c*7+i)%32, c)
				if _, err := store.Put(key, val); err != nil {
					errc <- err
					return
				}
				ops.Add(1)
			}
		}(c, store)
	}
	start := time.Now()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return 0, err
	default:
	}
	return float64(ops.Load()) / elapsed.Seconds(), nil
}

// storeFailoverBlackout runs traffic against a 2-partition plane, kills the
// primary of the partition owning the probe key, and reports how long
// writes to that partition stayed unacknowledged: the gap between the kill
// and the first write acked through the promoted follower.
func storeFailoverBlackout(clients int) (time.Duration, error) {
	sp, err := newStorePlane(2)
	if err != nil {
		return 0, err
	}
	defer sp.Close()

	base, cancel := context.WithCancel(context.Background())
	defer cancel()
	probe := sp.client(base)
	probeKey := "g00/blackout"
	part := probe.PartitionOf(probeKey)

	// Background traffic on every worker, like the throughput run.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < clients-1; c++ {
		store := sp.client(base)
		wg.Add(1)
		go func(c int, store *cloudstore.Partitioned) {
			defer wg.Done()
			val := []byte("bench-value")
			for i := 0; !stop.Load(); i++ {
				// Background workers tolerate the blackout: their errors
				// are the failover in progress, not a bench failure.
				_, _ = store.Put(fmt.Sprintf("g%02d/c%d", (c*7+i)%32, c), val)
			}
		}(c, store)
	}
	defer func() { stop.Store(true); wg.Wait() }()

	// Warm the probe's view, then kill the partition primary.
	if _, err := probe.Put(probeKey, []byte("pre")); err != nil {
		return 0, err
	}
	kill := time.Now()
	_ = sp.servers[node.StoreRF*part].Close()
	for {
		if _, err := probe.Put(probeKey, []byte("post")); err == nil {
			return time.Since(kill), nil
		}
		if time.Since(kill) > 10*time.Second {
			return 0, fmt.Errorf("no write acked within 10s of the primary kill")
		}
	}
}
