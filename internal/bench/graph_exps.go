package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aeon/internal/ownership"
)

// GraphRead measures parallel ownership-graph read throughput — the Dom +
// Path + Children mix event admission issues 2–4 times per event — for the
// copy-on-write snapshot graph versus an RWMutex baseline replicating the
// pre-COW read path (read lock around plain maps with a warmed dominator
// cache). On real cores the snapshot holds flat with workers while the
// RWMutex baseline serializes on the lock's cache line; the numbers feed
// BENCH_N.json so the perf trajectory is tracked across PRs.
func GraphRead(o Options) (*Table, error) {
	workerCounts := []int{1, 2, 4, 8}
	dur := o.duration()
	if o.Quick && dur > 500*time.Millisecond {
		dur = 500 * time.Millisecond
	}

	t := &Table{
		Title:   "Graph reads: parallel Dom+Path+Children throughput (reads/s)",
		Columns: []string{"workers", "snapshot", "rwmutex", "speedup"},
		Notes: []string{
			fmt.Sprintf("GOMAXPROCS=%d; scaling with workers requires real cores", runtime.GOMAXPROCS(0)),
			"one read = Dom(player) + Path(dom,player) + Children(room) on the castle fixture",
		},
	}

	g, players, rooms, err := buildGraphFixture()
	if err != nil {
		return nil, err
	}
	base := newRWBaseline(g)

	for _, workers := range workerCounts {
		o.progressf("graph: %d workers\n", workers)
		snap := runGraphReaders(workers, dur, func(i int) {
			p := players[i%len(players)]
			// Dominators are pre-warmed, so s.Dom is a pure cache hit and the
			// result is always present in s (no mints during measurement).
			s := g.Snapshot()
			d, _ := s.Dom(p)
			if d != p {
				s.Path(d, p)
			}
			s.Children(rooms[i%len(rooms)])
		})
		rw := runGraphReaders(workers, dur, func(i int) {
			p := players[i%len(players)]
			d := base.dom1(p)
			if d != p {
				base.path(d, p)
			}
			base.childrenOf(rooms[i%len(rooms)])
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", workers),
			fmtK(float64(snap) / dur.Seconds()),
			fmtK(float64(rw) / dur.Seconds()),
			fmt.Sprintf("%.2fx", float64(snap)/float64(rw)),
		})
	}
	return t, nil
}

// buildGraphFixture assembles the castle graph (16 rooms × 8 players × 2
// private items + 1 room-shared item) with dominators pre-warmed.
func buildGraphFixture() (*ownership.Graph, []ownership.ID, []ownership.ID, error) {
	g := ownership.NewGraph()
	castle, _ := g.AddContext("Building")
	var players, rooms []ownership.ID
	for r := 0; r < 16; r++ {
		room, _ := g.AddContext("Room", castle)
		rooms = append(rooms, room)
		var roomPlayers []ownership.ID
		for p := 0; p < 8; p++ {
			pl, _ := g.AddContext("Player", room)
			roomPlayers = append(roomPlayers, pl)
			for i := 0; i < 2; i++ {
				if _, err := g.AddContext("Item", pl); err != nil {
					return nil, nil, nil, err
				}
			}
		}
		if _, err := g.AddContext("Item", append([]ownership.ID{room}, roomPlayers...)...); err != nil {
			return nil, nil, nil, err
		}
		players = append(players, roomPlayers...)
	}
	for {
		before := g.Len()
		for _, id := range g.Snapshot().IDs() {
			if _, err := g.Dom(id); err != nil {
				return nil, nil, nil, err
			}
		}
		if g.Len() == before {
			break
		}
	}
	return g, players, rooms, nil
}

// rwBaseline replicates the pre-COW read path: one RWMutex around plain
// adjacency maps and a warmed dominator cache.
type rwBaseline struct {
	mu       sync.RWMutex
	children map[ownership.ID][]ownership.ID
	parents  map[ownership.ID][]ownership.ID
	dom      map[ownership.ID]ownership.ID
}

func newRWBaseline(g *ownership.Graph) *rwBaseline {
	s := g.Snapshot()
	r := &rwBaseline{
		children: make(map[ownership.ID][]ownership.ID),
		parents:  make(map[ownership.ID][]ownership.ID),
		dom:      make(map[ownership.ID]ownership.ID),
	}
	for _, id := range s.IDs() {
		ch, _ := s.Children(id)
		pa, _ := s.Parents(id)
		d, _ := s.Dom(id)
		r.children[id] = ch
		r.parents[id] = pa
		r.dom[id] = d
	}
	return r
}

func (r *rwBaseline) dom1(id ownership.ID) ownership.ID {
	r.mu.RLock()
	d := r.dom[id]
	r.mu.RUnlock()
	return d
}

func (r *rwBaseline) childrenOf(id ownership.ID) []ownership.ID {
	r.mu.RLock()
	out := append([]ownership.ID(nil), r.children[id]...)
	r.mu.RUnlock()
	return out
}

func (r *rwBaseline) path(anc, desc ownership.ID) []ownership.ID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	prev := map[ownership.ID]ownership.ID{desc: ownership.None}
	queue := []ownership.ID{desc}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range r.parents[cur] {
			if _, seen := prev[p]; seen {
				continue
			}
			prev[p] = cur
			if p == anc {
				var path []ownership.ID
				for c := anc; c != ownership.None; c = prev[c] {
					path = append(path, c)
				}
				return path
			}
			queue = append(queue, p)
		}
	}
	return nil
}

// runGraphReaders runs a closed read loop on the given worker count for dur
// and returns the total reads completed.
func runGraphReaders(workers int, dur time.Duration, read func(i int)) uint64 {
	var total atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var n uint64
			for i := w; !stop.Load(); i++ {
				read(i)
				n++
			}
			total.Add(n)
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return total.Load()
}
