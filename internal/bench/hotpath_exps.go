package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/ownership"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

// Hotpath measures raw runtime hot-path throughput, independent of any
// paper figure: events on disjoint single-context ownership trees with zero
// simulated network and zero method cost, so the only work is registry
// lookup, directory routing, activation, execution, and latency recording.
// It runs a closed loop at several worker counts; on multi-core hardware
// throughput should grow with workers now that no per-event operation takes
// a process-global lock (the PR-1 sharding refactor). The numbers feed
// BENCH_N.json so the perf trajectory is tracked across PRs.
func Hotpath(o Options) (*Table, error) {
	workerCounts := []int{1, 2, 4, 8}
	dur := o.duration()
	if o.Quick && dur > 500*time.Millisecond {
		dur = 500 * time.Millisecond
	}

	t := &Table{
		Title:   "Hot path: disjoint-event throughput (events/s)",
		Columns: []string{"workers", "events/s", "ns/event"},
		Notes: []string{
			fmt.Sprintf("GOMAXPROCS=%d; scaling with workers requires real cores", runtime.GOMAXPROCS(0)),
		},
	}

	for _, workers := range workerCounts {
		o.progressf("hotpath: %d workers\n", workers)
		evs, err := hotpathRun(workers, dur)
		if err != nil {
			return nil, err
		}
		perSec := float64(evs) / dur.Seconds()
		nsPer := float64(dur.Nanoseconds()) * float64(workers) / float64(evs)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", workers), fmtK(perSec), fmt.Sprintf("%.0f", nsPer),
		})
	}
	return t, nil
}

func hotpathRun(workers int, dur time.Duration) (uint64, error) {
	s := schema.New()
	leaf := s.MustDeclareClass("Leaf", func() any { return new(int) })
	leaf.MustDeclareMethod("bump", func(call schema.Call, args []any) (any, error) {
		n := call.State().(*int)
		*n++
		return *n, nil
	})
	if err := s.Freeze(); err != nil {
		return 0, err
	}
	cl := cluster.New(transport.NullNetwork{})
	for i := 0; i < 8; i++ {
		cl.AddServer(cluster.M3Large)
	}
	rt, err := core.New(s, ownership.NewGraph(), cl, core.Config{ChargeClientHops: false})
	if err != nil {
		return 0, err
	}
	defer rt.Close()

	const nCtx = 1024
	ids := make([]ownership.ID, nCtx)
	for i := range ids {
		if ids[i], err = rt.CreateContext("Leaf"); err != nil {
			return 0, err
		}
	}

	var total atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var n uint64
			// Workers cycle within private context ranges: events are
			// always disjoint.
			span := nCtx / workers
			base := w * span
			for i := 0; !stop.Load(); i++ {
				if _, err := rt.Submit(ids[base+i%span], "bump"); err != nil {
					break
				}
				n++
			}
			total.Add(n)
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return total.Load(), nil
}
