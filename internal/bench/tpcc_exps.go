package bench

import (
	"fmt"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/tpcc"
	"aeon/internal/transport"
	"aeon/internal/workload"
)

// tpccSystems enumerates the five systems of Figures 6a/6b.
var tpccSystems = []string{"EventWave", "Orleans", "Orleans*", "AEON_SO", "AEON"}

// tpccConfig is the Figure 6 deployment: one District per server,
// partitioned by district à la Rococo (§ 6.1.2).
func tpccConfig(servers int, quick bool) tpcc.Config {
	cfg := tpcc.DefaultConfig()
	cfg.Districts = servers
	cfg.CustomersPerDistrict = 30
	if quick {
		cfg.CustomersPerDistrict = 12
	}
	cfg.Items = 1000
	cfg.StepCost = 100 * time.Microsecond
	return cfg
}

func buildTPCCSystem(name string, servers int, cfg tpcc.Config) (tpcc.App, *cluster.Cluster, error) {
	net := transport.NewSim(transport.DefaultSimConfig())
	cl := cluster.New(net)
	for i := 0; i < servers; i++ {
		cl.AddServer(cluster.M3Large)
	}
	var (
		app tpcc.App
		err error
	)
	switch name {
	case "AEON":
		app, err = tpcc.BuildAEON(cl, cfg, false)
	case "AEON_SO":
		app, err = tpcc.BuildAEON(cl, cfg, true)
	case "EventWave":
		app, err = tpcc.BuildEventWave(cl, cfg)
	case "Orleans":
		app, err = tpcc.BuildOrleans(cl, cfg, false)
	case "Orleans*":
		app, err = tpcc.BuildOrleans(cl, cfg, true)
	default:
		return nil, nil, fmt.Errorf("bench: unknown system %q", name)
	}
	return app, cl, err
}

// Fig6a regenerates Figure 6a (TPC-C scale-out).
func Fig6a(o Options) (*Table, error) {
	serverCounts := []int{2, 4, 8, 12, 16}
	if o.Quick {
		serverCounts = []int{2, 4, 8}
	}
	t := &Table{
		Title:   "Figure 6a: TPC-C scale-out (transactions/s)",
		Columns: append([]string{"servers"}, tpccSystems...),
		Notes: []string{
			"expected shape: AEON stops scaling around 4 servers (District serialization + shared ownership-network updates), AEON_SO around 8 (Warehouse); EventWave and Orleans flat; Orleans* overtakes AEON at 16",
		},
	}
	for _, n := range serverCounts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, sys := range tpccSystems {
			o.progressf("fig6a: %s @ %d servers\n", sys, n)
			app, _, err := buildTPCCSystem(sys, n, tpccConfig(n, o.Quick))
			if err != nil {
				return nil, fmt.Errorf("build %s@%d: %w", sys, n, err)
			}
			res := workload.RunClosedLoop(app.DoTxn, 8*n, 0, o.duration(), o.seed())
			app.Close()
			if res.Errors > 0 {
				return nil, fmt.Errorf("%s@%d: %d txn errors", sys, n, res.Errors)
			}
			row = append(row, fmtK(res.Throughput))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6b regenerates Figure 6b (TPC-C latency vs throughput at 8 servers).
func Fig6b(o Options) (*Table, error) {
	const servers = 8
	clientCounts := []int{8, 16, 32, 64, 128}
	if o.Quick {
		clientCounts = []int{8, 32, 128}
	}
	t := &Table{
		Title:   "Figure 6b: TPC-C latency vs throughput, 8 servers (cells: txns/s | mean latency)",
		Columns: append([]string{"clients"}, tpccSystems...),
		Notes: []string{
			"expected shape: EventWave/Orleans saturate with few clients and their latency skyrockets; Orleans* tops AEON (no strict-serializability overhead)",
		},
	}
	for _, clients := range clientCounts {
		row := []string{fmt.Sprintf("%d", clients)}
		for _, sys := range tpccSystems {
			o.progressf("fig6b: %s @ %d clients\n", sys, clients)
			app, _, err := buildTPCCSystem(sys, servers, tpccConfig(servers, o.Quick))
			if err != nil {
				return nil, fmt.Errorf("build %s: %w", sys, err)
			}
			res := workload.RunClosedLoop(app.DoTxn, clients, 0, o.duration(), o.seed())
			app.Close()
			if res.Errors > 0 {
				return nil, fmt.Errorf("%s@%d clients: %d txn errors", sys, clients, res.Errors)
			}
			row = append(row, fmt.Sprintf("%s | %s", fmtK(res.Throughput), fmtMS(res.Latency.Mean)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
