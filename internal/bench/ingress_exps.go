package bench

// The `ingress` experiment measures what the pipelined ingress layer buys a
// client outside the fleet: remote submit throughput over one TCP loopback
// connection with one outstanding frame per call (the old behaviour) vs the
// multiplexed stream at increasing pipeline depths, how aggregate throughput
// scales with extra client connections, and how quickly a client's routing
// cache converges after a migration makes it stale. PR 8 adds the batched
// sweep: SubmitBatch frames at increasing batch sizes and the coalesced Go
// path, which amortize the per-event wakeup that dominated the pipelined
// rows. Recorded as BENCH_6.json (pre-batching) and BENCH_8.json.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aeon/internal/ingress"
	"aeon/internal/node"
	"aeon/internal/transport"
)

// Ingress regenerates the ingress experiment tables.
func Ingress(o Options) ([]*Table, error) {
	dur := o.duration()
	accounts := 16

	tput := &Table{
		Title:   "Ingress: remote submit throughput — one-frame-per-call vs pipelined multiplexed connection (TCP loopback)",
		Columns: []string{"config", "clients", "depth", "ev/s", "mean", "speedup"},
		Notes: []string{
			"2-node fleet; every submit targets contexts hosted by a peer node, so each event crosses the mesh",
			"one-shot: strict request/response, one outstanding frame per connection — the PR 4/5 wire discipline, but already on the hot codec",
			fmt.Sprintf("pipelined: depth concurrent submits share one mux connection per node; %d accounts, %v per point", accounts, dur),
			"the PR 4/5 one-frame-per-event baseline (gob codec, no pipelining) measured 19.2k ev/s remote on TCP loopback (BENCH_4.json, mesh/tcp-mesh); speedup column is vs the one-shot row above, which the hot codec alone already lifted ~4× past that",
			"expected shape: pipelined depth ≥64 on one connection clears 10× the PR 4/5 baseline; extra clients add connections and scale further until the node saturates",
		},
	}

	type cfgRow struct {
		label   string
		clients int
		depth   int
		oneShot bool
	}
	rows := []cfgRow{
		{"one-shot", 1, 1, true},
		{"pipelined", 1, 16, false},
		{"pipelined", 1, 64, false},
		{"pipelined", 1, 256, false},
		{"pipelined", 2, 64, false},
		{"pipelined", 4, 64, false},
	}

	var baseline float64
	for _, r := range rows {
		o.progressf("ingress: %s clients=%d depth=%d\n", r.label, r.clients, r.depth)
		rate, mean, err := ingressThroughput(r.clients, r.depth, r.oneShot, accounts, dur)
		if err != nil {
			return nil, fmt.Errorf("%s depth %d: %w", r.label, r.depth, err)
		}
		if baseline == 0 {
			baseline = rate
		}
		tput.Rows = append(tput.Rows, []string{
			r.label, fmt.Sprint(r.clients), fmt.Sprint(r.depth),
			fmtK(rate), fmtMS(mean), fmt.Sprintf("%.1fx", rate/baseline),
		})
	}

	batched := &Table{
		Title:   "Ingress: batched submit throughput — events per frame vs per-event frames (one TCP loopback connection)",
		Columns: []string{"config", "batch", "depth", "ev/s", "mean/event", "speedup"},
		Notes: []string{
			"same 2-node fleet and remote-account workload as the pipelined table; one client connection throughout",
			"batched: depth workers each keep one SubmitBatch of `batch` events in flight, so batch×depth events share the in-flight window but the fleet pays one wakeup and one admission per frame",
			"coalesced-go: async Go futures ride the per-node coalescer (default 100µs linger); mean/event includes the linger wait by design",
			"speedup is vs this table's batch=1 row — the same frames-per-event discipline as the pipelined table, so it isolates what packing alone buys",
			"expected shape: batch=1 within noise of pipelined at equal depth (the batch frame costs a few bytes more); throughput climbs steeply with batch size as the per-event wakeup amortizes away",
		},
	}
	type batchRow struct {
		label string
		batch int
		depth int
	}
	brows := []batchRow{
		{"batched", 1, 64},
		{"batched", 8, 64},
		{"batched", 32, 16},
		{"batched", 128, 4},
	}
	var batchBase float64
	for _, r := range brows {
		o.progressf("ingress: batched batch=%d depth=%d\n", r.batch, r.depth)
		rate, mean, err := ingressBatchThroughput(r.batch, r.depth, accounts, dur)
		if err != nil {
			return nil, fmt.Errorf("batched batch=%d: %w", r.batch, err)
		}
		if batchBase == 0 {
			batchBase = rate
		}
		batched.Rows = append(batched.Rows, []string{
			r.label, fmt.Sprint(r.batch), fmt.Sprint(r.depth),
			fmtK(rate), fmtMS(mean), fmt.Sprintf("%.1fx", rate/batchBase),
		})
	}
	o.progressf("ingress: coalesced-go\n")
	rate, mean, frames, events, err := ingressCoalescedThroughput(accounts, dur)
	if err != nil {
		return nil, fmt.Errorf("coalesced-go: %w", err)
	}
	batched.Rows = append(batched.Rows, []string{
		"coalesced-go", fmt.Sprintf("~%d", events/max64(frames, 1)), "512",
		fmtK(rate), fmtMS(mean), fmt.Sprintf("%.1fx", rate/batchBase),
	})

	o.progressf("ingress: stale-route repair\n")
	repair, err := ingressRepair(dur)
	if err != nil {
		return nil, fmt.Errorf("repair: %w", err)
	}
	return []*Table{tput, batched, repair}, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// ingressThroughput deploys a 2-node TCP fleet and drives it with nClients
// ingress clients, each keeping depth submits in flight against remotely
// hosted accounts.
func ingressThroughput(nClients, depth int, oneShot bool, accounts int, dur time.Duration) (float64, time.Duration, error) {
	mesh := transport.NewTCPMesh()
	d, err := node.Deploy(mesh, node.Topology{Nodes: 2, AccountsPerBank: accounts, EnableOps: true})
	if err != nil {
		return 0, 0, err
	}
	defer d.Close()
	if err := d.WaitReady(10 * time.Second); err != nil {
		return 0, 0, err
	}
	// Bank 2's accounts live on node 2; every submit from a client is a
	// remote event on one connection to that node.
	targets := d.Top.Accounts[1]

	clients := make([]*ingress.Client, nClients)
	for i := range clients {
		// Ops registries stay on (the realistic production posture: the
		// hot path pays only striped counters); per-frame tracing does
		// not — at 100k+ ev/s a span per executed submit serializes on
		// the event ring. The repair experiment keeps tracing on.
		c, err := ingress.Dial(mesh, ingress.Config{
			Nodes:      []transport.NodeID{1, 2},
			NoPipeline: oneShot,
			Window:     depth,
		})
		if err != nil {
			return 0, 0, err
		}
		defer c.Close()
		// Warm the routing cache (and the connection) so the measured loop
		// never pays a first-touch forward or dial.
		for _, tgt := range targets {
			if _, err := c.Submit(tgt, "balance"); err != nil {
				return 0, 0, fmt.Errorf("warm: %w", err)
			}
		}
		clients[i] = c
	}

	var (
		ops      atomic.Int64
		totalNS  atomic.Int64
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	deadline := time.Now().Add(dur)
	start := time.Now()
	for ci, c := range clients {
		for w := 0; w < depth; w++ {
			wg.Add(1)
			go func(c *ingress.Client, seq int) {
				defer wg.Done()
				for i := seq; time.Now().Before(deadline); i++ {
					t0 := time.Now()
					if _, err := c.Submit(targets[i%len(targets)], "deposit", 1); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					totalNS.Add(time.Since(t0).Nanoseconds())
					ops.Add(1)
				}
			}(c, ci*depth+w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return 0, 0, err
	}
	n := ops.Load()
	if n == 0 {
		return 0, 0, fmt.Errorf("no operations completed")
	}
	return float64(n) / elapsed.Seconds(), time.Duration(totalNS.Load() / n), nil
}

// ingressBatchThroughput drives one client connection with depth workers,
// each keeping one SubmitBatch of `batch` events in flight against remotely
// hosted accounts. Returns event rate and mean per-event latency
// (frame latency / batch).
func ingressBatchThroughput(batch, depth, accounts int, dur time.Duration) (float64, time.Duration, error) {
	mesh := transport.NewTCPMesh()
	d, err := node.Deploy(mesh, node.Topology{Nodes: 2, AccountsPerBank: accounts, EnableOps: true})
	if err != nil {
		return 0, 0, err
	}
	defer d.Close()
	if err := d.WaitReady(10 * time.Second); err != nil {
		return 0, 0, err
	}
	targets := d.Top.Accounts[1]
	c, err := ingress.Dial(mesh, ingress.Config{Nodes: []transport.NodeID{1, 2}})
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	for _, tgt := range targets {
		if _, err := c.Submit(tgt, "balance"); err != nil {
			return 0, 0, fmt.Errorf("warm: %w", err)
		}
	}

	var (
		ops      atomic.Int64
		totalNS  atomic.Int64
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	deadline := time.Now().Add(dur)
	start := time.Now()
	for w := 0; w < depth; w++ {
		wg.Add(1)
		go func(seq int) {
			defer wg.Done()
			items := make([]ingress.BatchItem, batch)
			for i := seq; time.Now().Before(deadline); i += batch {
				for j := range items {
					items[j] = ingress.BatchItem{Target: targets[(i+j)%len(targets)], Method: "deposit", Args: []any{1}}
				}
				t0 := time.Now()
				for k, r := range c.SubmitBatch(items) {
					if r.Err != nil {
						firstErr.CompareAndSwap(nil, fmt.Errorf("event %d: %w", k, r.Err))
						return
					}
				}
				totalNS.Add(time.Since(t0).Nanoseconds())
				ops.Add(int64(batch))
			}
		}(w * batch)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return 0, 0, err
	}
	n := ops.Load()
	if n == 0 {
		return 0, 0, fmt.Errorf("no operations completed")
	}
	return float64(n) / elapsed.Seconds(), time.Duration(totalNS.Load() / n), nil
}

// ingressCoalescedThroughput drives the transparent batching path: producers
// fire async Go futures as fast as the in-flight window admits them and the
// per-node coalescer packs them into frames. Returns event rate, mean
// submit→resolve latency (linger included), and the fleet's frame/event
// counts so the table can report the achieved batch size.
func ingressCoalescedThroughput(accounts int, dur time.Duration) (float64, time.Duration, uint64, uint64, error) {
	mesh := transport.NewTCPMesh()
	d, err := node.Deploy(mesh, node.Topology{Nodes: 2, AccountsPerBank: accounts, EnableOps: true})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer d.Close()
	if err := d.WaitReady(10 * time.Second); err != nil {
		return 0, 0, 0, 0, err
	}
	targets := d.Top.Accounts[1]
	c, err := ingress.Dial(mesh, ingress.Config{Nodes: []transport.NodeID{1, 2}, Window: 512})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer c.Close()
	for _, tgt := range targets {
		if _, err := c.Submit(tgt, "balance"); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("warm: %w", err)
		}
	}
	framesBefore := d.Nodes[0].Batches() + d.Nodes[1].Batches()

	type inflight struct {
		f  *ingress.Future
		t0 time.Time
	}
	var (
		ops      atomic.Int64
		totalNS  atomic.Int64
		firstErr atomic.Value
		prodWG   sync.WaitGroup
		consWG   sync.WaitGroup
	)
	const producers = 4
	pending := make(chan inflight, 1024)
	deadline := time.Now().Add(dur)
	start := time.Now()
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(seq int) {
			defer prodWG.Done()
			for i := seq; time.Now().Before(deadline); i++ {
				f := c.Go(targets[i%len(targets)], "deposit", 1)
				pending <- inflight{f, time.Now()}
			}
		}(p)
	}
	consWG.Add(1)
	go func() {
		defer consWG.Done()
		for in := range pending {
			if _, err := in.f.Wait(); err != nil {
				firstErr.CompareAndSwap(nil, err)
				continue
			}
			totalNS.Add(time.Since(in.t0).Nanoseconds())
			ops.Add(1)
		}
	}()
	prodWG.Wait()
	close(pending)
	consWG.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return 0, 0, 0, 0, err
	}
	n := ops.Load()
	if n == 0 {
		return 0, 0, 0, 0, fmt.Errorf("no operations completed")
	}
	frames := d.Nodes[0].Batches() + d.Nodes[1].Batches() - framesBefore
	return float64(n) / elapsed.Seconds(), time.Duration(totalNS.Load() / n), frames, uint64(n), nil
}

// ingressRepair measures routing-cache convergence: a client with a warm
// route to a group watches it migrate, then keeps submitting. The stale
// route costs server-side forwarding hops until the authoritative response
// repairs the cache; convergence is how many submits that takes.
func ingressRepair(dur time.Duration) (*Table, error) {
	mesh := transport.NewTCPMesh()
	d, err := node.Deploy(mesh, node.Topology{Nodes: 2, EnableOps: true})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	if err := d.WaitReady(10 * time.Second); err != nil {
		return nil, err
	}
	c, err := ingress.Dial(mesh, ingress.Config{Nodes: []transport.NodeID{1, 2}, Trace: true})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	acct := d.Top.Accounts[1][0]
	if _, err := c.Submit(acct, "balance"); err != nil {
		return nil, fmt.Errorf("warm: %w", err)
	}
	// Move bank 2's group node 2 → node 1; the client's cache is now stale.
	if err := d.Nodes[0].MigrateRemote(2, d.Top.Banks[1], 1); err != nil {
		return nil, fmt.Errorf("migrate: %w", err)
	}

	fwdBefore := d.Nodes[1].Forwarded()
	staleSubmits := 0
	var repairLatency time.Duration
	for {
		t0 := time.Now()
		if _, err := c.Submit(acct, "balance"); err != nil {
			return nil, err
		}
		repairLatency = time.Since(t0)
		staleSubmits++
		if host, ok := c.Route(acct); ok && host == 1 {
			break
		}
		if staleSubmits > 100 {
			return nil, fmt.Errorf("route did not converge after %d submits", staleSubmits)
		}
	}
	hops := d.Nodes[1].Forwarded() - fwdBefore

	// Post-repair latency: direct submits to the new host.
	var (
		ops   int
		total time.Duration
		start = time.Now()
	)
	for time.Since(start) < dur {
		t0 := time.Now()
		if _, err := c.Submit(acct, "balance"); err != nil {
			return nil, err
		}
		total += time.Since(t0)
		ops++
	}
	directMean := total / time.Duration(ops)

	return &Table{
		Title:   "Ingress: stale-route repair after migration",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"submits to converge", fmt.Sprint(staleSubmits)},
			{"forward hops paid", fmt.Sprint(hops)},
			{"repairing submit latency", fmtMS(repairLatency)},
			{"post-repair direct mean", fmtMS(directMean)},
		},
		Notes: []string{
			"a stale route never fails a submit: the old host forwards and the response's Host field repairs the client cache",
			"expected shape: convergence in 1 submit paying exactly 1 forward hop; post-repair latency matches a normal remote submit",
		},
	}, nil
}
