package bench

import (
	"encoding/json"
	"io"
	"runtime"
)

// JSONReport is the machine-readable form of a benchmark run, written as
// BENCH_<n>.json at the repo root so the performance trajectory is tracked
// across PRs. Keep the schema additive: downstream tooling diffs these
// files between revisions.
type JSONReport struct {
	// Schema identifies the report format version.
	Schema int `json:"schema"`
	// Label names the run (e.g. "PR 1").
	Label string `json:"label,omitempty"`
	// GoMaxProcs records the parallelism available to the run — scaling
	// numbers are meaningless without it.
	GoMaxProcs int `json:"gomaxprocs"`
	// Quick indicates shrunk CI-speed sweeps.
	Quick bool `json:"quick"`
	// Experiments holds one entry per experiment run.
	Experiments []JSONExperiment `json:"experiments"`
}

// JSONExperiment is one experiment's tables.
type JSONExperiment struct {
	Name   string      `json:"name"`
	Tables []JSONTable `json:"tables"`
}

// JSONTable mirrors Table.
type JSONTable struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// NewJSONReport assembles a report from experiment results.
func NewJSONReport(label string, quick bool) *JSONReport {
	return &JSONReport{
		Schema:     1,
		Label:      label,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      quick,
	}
}

// Add appends one experiment's tables to the report.
func (r *JSONReport) Add(name string, tables []*Table) {
	exp := JSONExperiment{Name: name}
	for _, t := range tables {
		exp.Tables = append(exp.Tables, JSONTable{
			Title:   t.Title,
			Columns: t.Columns,
			Rows:    t.Rows,
			Notes:   t.Notes,
		})
	}
	r.Experiments = append(r.Experiments, exp)
}

// Write emits the report as indented JSON.
func (r *JSONReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
