package bench

import (
	"fmt"
	"sync"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/emanager"
	"aeon/internal/game"
	"aeon/internal/ownership"
	"aeon/internal/transport"
	"aeon/internal/workload"
)

// Fig8 regenerates Figure 8: overall throughput over time while different
// numbers of Room contexts (1 MB each) migrate concurrently. Per § 6.3, 20
// servers host one Room each; we migrate {1, 8, 12} rooms at once mid-run
// and record the events/s time series.
func Fig8(o Options) (*Table, error) {
	servers := 20
	migrateCounts := []int{1, 8, 12}
	runFor := 16 * time.Second
	migrateAt := 6 * time.Second
	window := time.Second
	pad := 1 << 20 // 1 MB contexts
	if o.Quick {
		servers = 6
		migrateCounts = []int{1, 3}
		runFor = 6 * time.Second
		migrateAt = 2 * time.Second
		window = 500 * time.Millisecond
	}

	t := &Table{
		Title:   "Figure 8: throughput while migrating N contexts (events/s per window; migration starts mid-run)",
		Columns: []string{"t"},
		Notes: []string{
			"expected shape: a mild throughput dip during the migration window, deeper as more contexts move, recovering afterwards",
			fmt.Sprintf("migration of 1MB Room contexts begins at t=%v", migrateAt),
		},
	}
	var series [][]string
	for _, n := range migrateCounts {
		t.Columns = append(t.Columns, fmt.Sprintf("%d contexts", n))
		o.progressf("fig8: migrating %d contexts\n", n)

		cfg := game.DefaultConfig()
		cfg.Rooms = servers
		cfg.PlayersPerRoom = 4
		cfg.SharedItemsPerRoom = 2
		cfg.ActionCost = 100 * time.Microsecond
		cfg.RoomStatePad = pad

		net := transport.NewSim(transport.DefaultSimConfig())
		cl := cluster.New(net)
		for i := 0; i < servers; i++ {
			cl.AddServer(cluster.M1Small)
		}
		app, err := game.BuildAEON(cl, cfg, false)
		if err != nil {
			return nil, err
		}
		mcfg := emanager.DefaultConfig()
		mcfg.MovableClasses = []string{"Room"}
		mgr := emanager.New(app.Runtime(), cloudstore.New(cloudstore.WithLatency(time.Millisecond)), mcfg)

		// Background load with per-window throughput accounting.
		type runOut struct {
			res    workload.Result
			series []float64
		}
		done := make(chan runOut, 1)
		go func() {
			res, ts := workload.RunClosedLoopSeries(app.DoOp, 4*servers, 0, runFor, window, o.seed())
			var rates []float64
			for _, p := range ts.Points() {
				rates = append(rates, p.Rate)
			}
			done <- runOut{res: res, series: rates}
		}()

		// Fire the migrations mid-run: move the first n rooms (and their
		// subtrees) to the next server over.
		time.Sleep(migrateAt)
		rooms := app.Rooms()
		dir := app.Runtime().Directory()
		var wg sync.WaitGroup
		for i := 0; i < n && i < len(rooms); i++ {
			from, _ := dir.Locate(rooms[i])
			to := cl.Servers()[(i+1)%len(cl.Servers())].ID()
			if to == from {
				to = cl.Servers()[(i+2)%len(cl.Servers())].ID()
			}
			wg.Add(1)
			go func(room ownership.ID, to cluster.ServerID) {
				defer wg.Done()
				_ = mgr.MigrateGroup(room, to)
			}(rooms[i], to)
		}
		wg.Wait()
		out := <-done
		app.Close()
		if out.res.Errors > 0 {
			return nil, fmt.Errorf("fig8 n=%d: %d op errors", n, out.res.Errors)
		}
		col := make([]string, 0, len(out.series))
		for _, r := range out.series {
			col = append(col, fmtK(r))
		}
		series = append(series, col)
	}

	maxLen := 0
	for _, s := range series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	for w := 0; w < maxLen; w++ {
		row := []string{fmt.Sprintf("%.1fs", (time.Duration(w) * window).Seconds())}
		for _, s := range series {
			row = append(row, seriesCell(s, w))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig9 regenerates Figure 9: maximum eManager migration throughput per
// instance type and context size (1 KB and 1 MB), by migrating a context
// back and forth between two servers as fast as the protocol allows.
func Fig9(o Options) (*Table, error) {
	profiles := []cluster.Profile{cluster.M1Large, cluster.M1Medium, cluster.M1Small}
	sizes := []struct {
		name string
		pad  int
	}{
		{"1KB", 1 << 10},
		{"1MB", 1 << 20},
	}
	t := &Table{
		Title:   "Figure 9: max migration throughput on eManager (contexts/s)",
		Columns: []string{"instance", "1KB", "1MB"},
		Notes: []string{
			"paper: m1.large 90/40, m1.medium 60/25, m1.small 40/20 contexts/s",
		},
	}
	dur := o.duration()
	if !o.Quick && dur < 2*time.Second {
		dur = 2 * time.Second
	}
	for _, p := range profiles {
		row := []string{p.Name}
		for _, size := range sizes {
			o.progressf("fig9: %s %s\n", p.Name, size.name)
			cfg := game.DefaultConfig()
			cfg.Rooms = 1
			cfg.PlayersPerRoom = 0
			cfg.SharedItemsPerRoom = 0
			cfg.RoomStatePad = size.pad

			net := transport.NewSim(transport.DefaultSimConfig())
			cl := cluster.New(net)
			s1 := cl.AddServer(p)
			s2 := cl.AddServer(p)
			app, err := game.BuildAEON(cl, cfg, false)
			if err != nil {
				return nil, err
			}
			mcfg := emanager.DefaultConfig()
			mcfg.Delta = time.Millisecond
			mcfg.ProtocolWork = 1500 * time.Microsecond
			mgr := emanager.New(app.Runtime(),
				cloudstore.New(cloudstore.WithLatency(time.Millisecond)), mcfg)

			room := app.Rooms()[0]
			deadline := time.Now().Add(dur)
			count := 0
			cur, _ := app.Runtime().Directory().Locate(room)
			for time.Now().Before(deadline) {
				to := s1.ID()
				if cur == s1.ID() {
					to = s2.ID()
				}
				if err := mgr.Migrate(room, to); err != nil {
					app.Close()
					return nil, fmt.Errorf("fig9 %s/%s: %w", p.Name, size.name, err)
				}
				cur = to
				count++
			}
			app.Close()
			row = append(row, fmt.Sprintf("%.0f", float64(count)/dur.Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
