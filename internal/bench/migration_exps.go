package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/emanager"
	"aeon/internal/game"
	"aeon/internal/migration"
	"aeon/internal/ownership"
	"aeon/internal/schema"
	"aeon/internal/transport"
	"aeon/internal/workload"
)

// Fig8 regenerates Figure 8: overall throughput over time while different
// numbers of Room contexts (1 MB each) migrate concurrently. Per § 6.3, 20
// servers host one Room each; we migrate {1, 8, 12} rooms at once mid-run
// and record the events/s time series.
func Fig8(o Options) (*Table, error) {
	servers := 20
	migrateCounts := []int{1, 8, 12}
	runFor := 16 * time.Second
	migrateAt := 6 * time.Second
	window := time.Second
	pad := 1 << 20 // 1 MB contexts
	if o.Quick {
		servers = 6
		migrateCounts = []int{1, 3}
		runFor = 6 * time.Second
		migrateAt = 2 * time.Second
		window = 500 * time.Millisecond
	}

	t := &Table{
		Title:   "Figure 8: throughput while migrating N contexts (events/s per window; migration starts mid-run)",
		Columns: []string{"t"},
		Notes: []string{
			"expected shape: a mild throughput dip during the migration window, deeper as more contexts move, recovering afterwards",
			fmt.Sprintf("migration of 1MB Room contexts begins at t=%v", migrateAt),
		},
	}
	var series [][]string
	for _, n := range migrateCounts {
		t.Columns = append(t.Columns, fmt.Sprintf("%d contexts", n))
		o.progressf("fig8: migrating %d contexts\n", n)

		cfg := game.DefaultConfig()
		cfg.Rooms = servers
		cfg.PlayersPerRoom = 4
		cfg.SharedItemsPerRoom = 2
		cfg.ActionCost = 100 * time.Microsecond
		cfg.RoomStatePad = pad

		net := transport.NewSim(transport.DefaultSimConfig())
		cl := cluster.New(net)
		for i := 0; i < servers; i++ {
			cl.AddServer(cluster.M1Small)
		}
		app, err := game.BuildAEON(cl, cfg, false)
		if err != nil {
			return nil, err
		}
		mcfg := emanager.DefaultConfig()
		mcfg.MovableClasses = []string{"Room"}
		mgr := emanager.New(app.Runtime(), cloudstore.New(cloudstore.WithLatency(time.Millisecond)), mcfg)

		// Background load with per-window throughput accounting.
		type runOut struct {
			res    workload.Result
			series []float64
		}
		done := make(chan runOut, 1)
		go func() {
			res, ts := workload.RunClosedLoopSeries(app.DoOp, 4*servers, 0, runFor, window, o.seed())
			var rates []float64
			for _, p := range ts.Points() {
				rates = append(rates, p.Rate)
			}
			done <- runOut{res: res, series: rates}
		}()

		// Fire the migrations mid-run: move the first n rooms (and their
		// subtrees) to the next server over.
		time.Sleep(migrateAt)
		rooms := app.Rooms()
		dir := app.Runtime().Directory()
		var wg sync.WaitGroup
		for i := 0; i < n && i < len(rooms); i++ {
			from, _ := dir.Locate(rooms[i])
			to := cl.Servers()[(i+1)%len(cl.Servers())].ID()
			if to == from {
				to = cl.Servers()[(i+2)%len(cl.Servers())].ID()
			}
			wg.Add(1)
			go func(room ownership.ID, to cluster.ServerID) {
				defer wg.Done()
				_ = mgr.MigrateGroup(room, to)
			}(rooms[i], to)
		}
		wg.Wait()
		out := <-done
		app.Close()
		if out.res.Errors > 0 {
			return nil, fmt.Errorf("fig8 n=%d: %d op errors", n, out.res.Errors)
		}
		col := make([]string, 0, len(out.series))
		for _, r := range out.series {
			col = append(col, fmtK(r))
		}
		series = append(series, col)
	}

	maxLen := 0
	for _, s := range series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	for w := 0; w < maxLen; w++ {
		row := []string{fmt.Sprintf("%.1fs", (time.Duration(w) * window).Seconds())}
		for _, s := range series {
			row = append(row, seriesCell(s, w))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig9 regenerates Figure 9: maximum eManager migration throughput per
// instance type and context size (1 KB and 1 MB), by migrating a context
// back and forth between two servers as fast as the protocol allows.
func Fig9(o Options) (*Table, error) {
	profiles := []cluster.Profile{cluster.M1Large, cluster.M1Medium, cluster.M1Small}
	sizes := []struct {
		name string
		pad  int
	}{
		{"1KB", 1 << 10},
		{"1MB", 1 << 20},
	}
	t := &Table{
		Title:   "Figure 9: max migration throughput on eManager (contexts/s)",
		Columns: []string{"instance", "1KB", "1MB"},
		Notes: []string{
			"paper: m1.large 90/40, m1.medium 60/25, m1.small 40/20 contexts/s",
		},
	}
	dur := o.duration()
	if !o.Quick && dur < 2*time.Second {
		dur = 2 * time.Second
	}
	for _, p := range profiles {
		row := []string{p.Name}
		for _, size := range sizes {
			o.progressf("fig9: %s %s\n", p.Name, size.name)
			cfg := game.DefaultConfig()
			cfg.Rooms = 1
			cfg.PlayersPerRoom = 0
			cfg.SharedItemsPerRoom = 0
			cfg.RoomStatePad = size.pad

			net := transport.NewSim(transport.DefaultSimConfig())
			cl := cluster.New(net)
			s1 := cl.AddServer(p)
			s2 := cl.AddServer(p)
			app, err := game.BuildAEON(cl, cfg, false)
			if err != nil {
				return nil, err
			}
			mcfg := emanager.DefaultConfig()
			mcfg.Delta = time.Millisecond
			mcfg.ProtocolWork = 1500 * time.Microsecond
			mgr := emanager.New(app.Runtime(),
				cloudstore.New(cloudstore.WithLatency(time.Millisecond)), mcfg)

			room := app.Rooms()[0]
			deadline := time.Now().Add(dur)
			count := 0
			cur, _ := app.Runtime().Directory().Locate(room)
			for time.Now().Before(deadline) {
				to := s1.ID()
				if cur == s1.ID() {
					to = s2.ID()
				}
				if err := mgr.Migrate(room, to); err != nil {
					app.Close()
					return nil, fmt.Errorf("fig9 %s/%s: %w", p.Name, size.name, err)
				}
				cur = to
				count++
			}
			app.Close()
			row = append(row, fmt.Sprintf("%.0f", float64(count)/dur.Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// MigrationBatch compares the serial per-member migration loop (the
// pre-engine behaviour: one protocol round, one stop/δ window, and one
// transfer sleep per group member, with the group split across servers
// until the loop finishes) against the batched group engine (one round, one
// window, one coalesced transfer per group). Events keep flowing against
// the group throughout each move, so the table reports both total
// group-move latency and event availability during the move.
func MigrationBatch(o Options) (*Table, error) {
	sizes := []int{4, 16, 48}
	pad := 128 << 10 // 128 KB per member
	if o.Quick {
		sizes = []int{4, 12}
		pad = 32 << 10
	}
	t := &Table{
		Title:   "Serial per-member vs batched group migration (group move latency and availability)",
		Columns: []string{"group size", "mode", "move latency", "stop/δ windows", "ev/s over window", "store writes"},
		Notes: []string{
			"serial = pre-engine behaviour: five-step protocol looped per member; batched = one protocol round per group",
			"events target the group root and a member throughout; ev/s is measured over the same fixed window (1.25× the serial move) for both modes = availability around the move",
			fmt.Sprintf("%d KB state per member; m1.small endpoints; 1ms cloud-store ops", pad>>10),
		},
	}

	for _, size := range sizes {
		// Availability is compared over a fixed observation window starting
		// at move start — the same wall-clock budget for both modes, sized
		// from the serial move's duration so it always contains the whole
		// move. Rating only the rate *during* each move would reward the
		// serial loop for dragging its degradation out 5-10× longer. Each
		// mode runs in a fresh world so neither inherits the other's
		// forwarding windows.
		var window time.Duration
		for _, mode := range []string{"serial", "batched"} {
			o.progressf("migration: size %d %s\n", size, mode)
			w, err := newMigrationWorld(size, pad)
			if err != nil {
				return nil, err
			}

			// Closed-loop traffic against the group for the whole window.
			var completed atomic.Int64
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for c := 0; c < 4; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := c; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						if _, err := w.rt.Submit(w.root, "poke", w.members[1+i%(size-1)]); err == nil {
							completed.Add(1)
						}
					}
				}(c)
			}

			_, w0 := w.store.Stats()
			start := time.Now()
			if mode == "serial" {
				// The pre-engine loop: one full protocol round per member.
				for _, id := range w.members {
					if err := w.engine.Migrate(id, w.dst.ID()); err != nil {
						close(stop)
						w.rt.Close()
						return nil, fmt.Errorf("serial member %v: %w", id, err)
					}
				}
			} else {
				if err := w.engine.MigrateGroup(w.root, w.dst.ID()); err != nil {
					close(stop)
					w.rt.Close()
					return nil, fmt.Errorf("batched group: %w", err)
				}
			}
			dur := time.Since(start)
			if window == 0 {
				// Serial runs first and sets the shared window.
				window = dur * 5 / 4
			}
			if rest := window - time.Since(start); rest > 0 {
				time.Sleep(rest)
			}
			evWindow := completed.Load()
			close(stop)
			wg.Wait()
			_, w1 := w.store.Stats()

			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", size),
				mode,
				fmtMS(dur),
				fmt.Sprintf("%d", w.engine.StopWindows.Value()),
				fmtK(float64(evWindow) / window.Seconds()),
				fmt.Sprintf("%d", w1-w0),
			})
			w.rt.Close()
		}
	}
	return t, nil
}

// migrationWorld is one fresh runtime for a MigrationBatch measurement: a
// Room owning size-1 Items on the source server of a two-server cluster.
type migrationWorld struct {
	rt       *core.Runtime
	store    *cloudstore.Store
	engine   *migration.Engine
	src, dst *cluster.Server
	root     ownership.ID
	members  []ownership.ID
}

func newMigrationWorld(size, pad int) (*migrationWorld, error) {
	sch := schema.New()
	room := sch.MustDeclareClass("Room", func() any { return &padState{pad: pad} })
	item := sch.MustDeclareClass("Item", func() any { return &padState{pad: pad} })
	item.MustDeclareMethod("inc", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*padState)
		st.n++
		return st.n, nil
	})
	room.MustDeclareMethod("poke", func(call schema.Call, args []any) (any, error) {
		// Touch one owned item, so a split group pays cross-server hops.
		return call.Sync(args[0].(ownership.ID), "inc")
	}, schema.MayCall("Item", "inc"))
	if err := sch.Freeze(); err != nil {
		return nil, err
	}

	net := transport.NewSim(transport.DefaultSimConfig())
	cl := cluster.New(net)
	src := cl.AddServer(cluster.M1Small)
	dst := cl.AddServer(cluster.M1Small)
	rt, err := core.New(sch, ownership.NewGraph(), cl, core.Config{
		MessageBytes:     256,
		ChargeClientHops: true,
		AcquireTimeout:   60 * time.Second,
		StalenessWindow:  100 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	store := cloudstore.New(cloudstore.WithLatency(time.Millisecond))
	engine := migration.NewEngine(rt, store, migration.Config{
		Delta:        2 * time.Millisecond,
		ProtocolWork: 1500 * time.Microsecond,
	})
	root, err := rt.CreateContextOn(src.ID(), "Room")
	if err != nil {
		rt.Close()
		return nil, err
	}
	members := []ownership.ID{root}
	for i := 1; i < size; i++ {
		id, err := rt.CreateContext("Item", root)
		if err != nil {
			rt.Close()
			return nil, err
		}
		members = append(members, id)
	}
	return &migrationWorld{
		rt: rt, store: store, engine: engine,
		src: src, dst: dst, root: root, members: members,
	}, nil
}

// padState is a fixed-size member state for the migration experiment.
type padState struct {
	n   int
	pad int
}

func (s *padState) StateBytes() int { return 64 + s.pad }
