// Package bench regenerates every table and figure of the paper's
// evaluation (§ 6). Each experiment builds the relevant systems on a fresh
// simulated cluster, drives them with the workload generators, and prints
// the same rows/series the paper reports. EXPERIMENTS.md records the
// paper-vs-measured comparison; absolute numbers differ (simulated substrate
// vs EC2) but the shapes are the acceptance criteria.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Options tunes an experiment run.
type Options struct {
	// Quick shrinks sweeps and durations for CI-speed runs.
	Quick bool
	// Duration per measured point (defaults: 3s, quick 800ms).
	Duration time.Duration
	// Seed for workload reproducibility.
	Seed int64
	// Verbose prints progress lines to Out during the run.
	Verbose bool
	// Out receives progress output (defaults to io.Discard).
	Out io.Writer
}

func (o Options) duration() time.Duration {
	if o.Duration > 0 {
		return o.Duration
	}
	if o.Quick {
		return 800 * time.Millisecond
	}
	return 3 * time.Second
}

func (o Options) progressf(format string, args ...any) {
	if o.Verbose && o.Out != nil {
		fmt.Fprintf(o.Out, format, args...)
	}
}

func (o Options) seed() int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}

// Table is a printable experiment result.
type Table struct {
	// Title names the table after the paper artifact it regenerates.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells.
	Rows [][]string
	// Notes are free-form footnotes (expected shapes, caveats).
	Notes []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Experiment names map to runner functions.
var experiments = map[string]func(Options) ([]*Table, error){
	"fig1":    func(o Options) ([]*Table, error) { return []*Table{Fig1()}, nil },
	"fig5a":   func(o Options) ([]*Table, error) { t, err := Fig5a(o); return wrap(t, err) },
	"fig5b":   func(o Options) ([]*Table, error) { t, err := Fig5b(o); return wrap(t, err) },
	"fig6a":   func(o Options) ([]*Table, error) { t, err := Fig6a(o); return wrap(t, err) },
	"fig6b":   func(o Options) ([]*Table, error) { t, err := Fig6b(o); return wrap(t, err) },
	"fig7":    Fig7,
	"table1":  func(o Options) ([]*Table, error) { t, err := Table1(o); return wrap(t, err) },
	"fig8":    func(o Options) ([]*Table, error) { t, err := Fig8(o); return wrap(t, err) },
	"fig9":    func(o Options) ([]*Table, error) { t, err := Fig9(o); return wrap(t, err) },
	"hotpath": func(o Options) ([]*Table, error) { t, err := Hotpath(o); return wrap(t, err) },
	"graph":   func(o Options) ([]*Table, error) { t, err := GraphRead(o); return wrap(t, err) },
	"migration": func(o Options) ([]*Table, error) {
		t, err := MigrationBatch(o)
		return wrap(t, err)
	},
	"mesh":    func(o Options) ([]*Table, error) { t, err := MeshExp(o); return wrap(t, err) },
	"ingress": Ingress,
	"replication": func(o Options) ([]*Table, error) {
		t, err := ReplicationExp(o)
		return wrap(t, err)
	},
	"store": func(o Options) ([]*Table, error) { t, err := StoreExp(o); return wrap(t, err) },
	"soak":  Soak,
}

func wrap(t *Table, err error) ([]*Table, error) {
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

// Experiments lists the available experiment names.
func Experiments() []string {
	names := make([]string, 0, len(experiments))
	for n := range experiments {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes the named experiment.
func Run(name string, o Options) ([]*Table, error) {
	fn, ok := experiments[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", name, Experiments())
	}
	return fn(o)
}

// Fig1 renders the qualitative comparison table (Figure 1 of the paper),
// reflecting the properties of the five implemented systems.
func Fig1() *Table {
	return &Table{
		Title:   "Figure 1: programming models for cloud-based stateful applications",
		Columns: []string{"Property", "EventWave", "Orleans", "AEON"},
		Rows: [][]string{
			{"Data encapsulation", "Contexts", "Grains", "Contexts"},
			{"Programmability restraint", "Context tree", "Unordered grains", "Context DAG"},
			{"Event consistency across actors", "Strict serializability", "No guarantees", "Strict serializability"},
			{"Event progress", "Minimal (root bottleneck)", "Deadlocks possible", "Starvation-freedom"},
			{"Automatic elasticity", "No", "Yes", "Yes"},
		},
		Notes: []string{
			"properties verified by tests: eventwave (root ordering, tree-only), orleans (deadlock detection, no atomicity), core (serializability, FIFO fairness), emanager (elastic policies)",
		},
	}
}

func fmtK(v float64) string {
	if v >= 1000 {
		return fmt.Sprintf("%.1fk", v/1000)
	}
	return fmt.Sprintf("%.0f", v)
}

func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}
