package bench

// The `soak` experiment runs the seeded chaos harness (internal/chaos)
// against both end-to-end workloads and reports what the fleet sustained:
// availability and client/node latency under a fault schedule covering all
// five fault classes, plus the worst post-heal recovery time per class. The
// schedule is derived purely from the seed, so `aeon-bench -exp soak -seed
// S` replays the identical fault timeline — a soak finding is a seed, not
// an anecdote. Recorded as BENCH_10.json.

import (
	"fmt"
	"time"

	"aeon/internal/chaos"
)

// soakClasses fixes the per-class column order of the recovery table.
var soakClasses = []string{
	chaos.ClassMesh, chaos.ClassKill, chaos.ClassStore, chaos.ClassMigrate, chaos.ClassLag,
}

// Soak regenerates the chaos soak tables.
func Soak(o Options) ([]*Table, error) {
	// The schedule needs enough slots to inject every class; four per-point
	// durations (min 6s) covers that comfortably at the 250ms default step.
	dur := 4 * o.duration()
	if dur < 6*time.Second {
		dur = 6 * time.Second
	}
	seed := o.Seed
	if seed == 0 {
		seed = 11
	}

	slo := &Table{
		Title:   "Chaos soak: availability and latency under a seeded all-class fault schedule",
		Columns: []string{"workload", "seed", "ops", "acked", "failed", "ambiguous", "availability", "client p50", "client p99", "node p99", "checkpoints", "violations"},
		Notes: []string{
			"3 nodes, replicated store (2 partitions x RF 3); faults: mesh drop/partition/duplicate, node kill+restart, store-primary kill, migration churn, replication lag",
			fmt.Sprintf("schedule generated from the seed alone (sequential non-overlapping windows), soak %v per workload", dur),
			"iot drives batched ingress submits with trace sampling; social drives plain node submits across the virtual-join fan-out path",
			"violations counts failed convergence/SLO assertions — any nonzero value is a bug, not a degradation",
			"expected shape: availability ≥0.99 (faults fail fast and heal), ambiguous 0 on the synchronous in-memory mesh, recovery well under a second per class except kill (restart + checkpoint restore)",
		},
	}
	rec := &Table{
		Title:   "Chaos soak: worst post-heal recovery time per fault class",
		Columns: append([]string{"workload"}, soakClasses...),
		Notes: []string{
			"mesh/migrate: heal-to-first-successful-read; kill: restart-to-ready (re-mesh, replica catch-up, checkpoint restore); store: primary-kill-to-first-write on the promoted quorum; lag: resume-to-caught-up",
		},
	}

	for _, wl := range []string{"iot", "social"} {
		o.progressf("soak: %s seed=%d dur=%v\n", wl, seed, dur)
		rep, err := chaos.Run(chaos.Config{
			Scenario: wl,
			Seed:     seed,
			Duration: dur,
			Log: func(s string) {
				o.progressf("  %s\n", s)
			},
		})
		if err != nil {
			return nil, fmt.Errorf("soak %s: %w", wl, err)
		}
		slo.Rows = append(slo.Rows, []string{
			wl,
			fmt.Sprintf("%d", rep.Seed),
			fmt.Sprintf("%d", rep.Ops),
			fmt.Sprintf("%d", rep.Acked),
			fmt.Sprintf("%d", rep.Failed),
			fmt.Sprintf("%d", rep.Ambiguous),
			fmt.Sprintf("%.4f", rep.Availability),
			rep.ClientP50.String(),
			rep.ClientP99.String(),
			rep.NodeP99.String(),
			fmt.Sprintf("%d", rep.Checkpoints),
			fmt.Sprintf("%d", len(rep.Violations)),
		})
		row := []string{wl}
		for _, c := range soakClasses {
			if d, ok := rep.Recovery[c]; ok {
				row = append(row, d.String())
			} else {
				row = append(row, "-")
			}
		}
		rec.Rows = append(rec.Rows, row)
		for _, v := range rep.Violations {
			slo.Notes = append(slo.Notes, fmt.Sprintf("VIOLATION (%s): %s", wl, v))
		}
	}
	return []*Table{slo, rec}, nil
}
