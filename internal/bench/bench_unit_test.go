package bench

import (
	"strings"
	"testing"
	"time"
)

func TestTableFprintAndCSV(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "long-header"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "long-header", "333", "a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,long-header\n1,2\n") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestExperimentsListed(t *testing.T) {
	names := Experiments()
	want := []string{"fig1", "fig5a", "fig5b", "fig6a", "fig6b", "fig7", "fig8", "fig9", "graph", "hotpath", "ingress", "mesh", "migration", "replication", "soak", "store", "table1"}
	if len(names) != len(want) {
		t.Fatalf("experiments = %v; want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("experiments = %v; want %v", names, want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig42", Options{}); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestFig1Static(t *testing.T) {
	tables, err := Run("fig1", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 5 {
		t.Fatalf("fig1 = %+v", tables)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.duration() != 3*time.Second {
		t.Fatalf("duration = %v", o.duration())
	}
	o.Quick = true
	if o.duration() != 800*time.Millisecond {
		t.Fatalf("quick duration = %v", o.duration())
	}
	o.Duration = time.Second
	if o.duration() != time.Second {
		t.Fatalf("explicit duration = %v", o.duration())
	}
	if o.seed() != 1 {
		t.Fatalf("seed = %d", o.seed())
	}
	o.Seed = 7
	if o.seed() != 7 {
		t.Fatalf("seed = %d", o.seed())
	}
}

func TestFormatters(t *testing.T) {
	if fmtK(1500) != "1.5k" || fmtK(999) != "999" {
		t.Fatalf("fmtK: %s %s", fmtK(1500), fmtK(999))
	}
	if fmtMS(1500*time.Microsecond) != "1.50ms" {
		t.Fatalf("fmtMS: %s", fmtMS(1500*time.Microsecond))
	}
}

// TestFig9Smoke runs the cheapest real experiment end to end with a tiny
// duration, covering the build+measure+report pipeline in unit tests.
func TestFig9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs migrations for ~1.2s")
	}
	tab, err := Fig9(Options{Quick: true, Duration: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Rows[0]) != 3 {
		t.Fatalf("fig9 rows = %v", tab.Rows)
	}
}
