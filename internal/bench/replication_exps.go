package bench

// The `replication` experiment measures what the replicated
// ownership-metadata control plane costs: the latency of a runtime context
// creation (one CAS-append round against the authoritative store plus the
// local apply), how long until the mutation is visible on a peer replica
// (one notify frame + tail apply), and — the property the design hinges on
// — that steady-state local submits stay mesh- and log-free, so event
// throughput is unchanged whether replication is on or off. Recorded as
// BENCH_5.json.

import (
	"fmt"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/node"
	"aeon/internal/ownership"
	"aeon/internal/replication"
	"aeon/internal/transport"
)

// ReplicationExp regenerates the replication experiment table.
func ReplicationExp(o Options) (*Table, error) {
	const nodes = 2
	accounts := 8
	dur := o.duration()

	t := &Table{
		Title:   "Replication: mutation propagation latency and steady-state submit overhead",
		Columns: []string{"substrate", "create mean", "peer-visible mean", "local ev/s (repl on)", "local ev/s (repl off)"},
		Notes: []string{
			"create: one runtime context creation = one CAS-append to the log + local apply (store round trips on mesh substrates)",
			"peer-visible: create on node 1 → ownership replica of node 2 contains the ID (one notify frame + tail apply)",
			fmt.Sprintf("%d nodes, bank workload, %v per throughput point", nodes, dur),
			"expected shape: local submit throughput identical with replication on and off — submits never touch the log or the mesh",
		},
	}
	for _, mode := range []string{"local-store", "inmem-mesh", "tcp-mesh"} {
		o.progressf("replication: %s\n", mode)
		row, err := replicationModeRow(o, mode, nodes, accounts, dur)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mode, err)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// replicationCreates measures the mean latency of n replicated context
// creations (owner picks the placement) and, when peer is non-nil, the mean
// time until each created ID is visible in peer's ownership replica.
func replicationCreates(rt *core.Runtime, peer *core.Runtime, owner ownership.ID, n int) (create, visible time.Duration, err error) {
	var totalCreate, totalVisible time.Duration
	for i := 0; i < n; i++ {
		t0 := time.Now()
		id, err := rt.CreateContext("Account", owner)
		if err != nil {
			return 0, 0, err
		}
		totalCreate += time.Since(t0)
		if peer != nil {
			// Park between probes instead of spinning: on a single-CPU box
			// a Gosched spin keeps every P busy, so the netpoller only runs
			// from sysmon (~20ms) and the measurement would report the
			// scheduler artifact, not the propagation path.
			for !peer.Graph().Contains(id) {
				time.Sleep(20 * time.Microsecond)
			}
			totalVisible += time.Since(t0)
		}
	}
	return totalCreate / time.Duration(n), totalVisible / time.Duration(n), nil
}

// replicationModeRow measures one substrate, with replication on and then a
// fresh identical deployment with it off (throughput baseline).
func replicationModeRow(o Options, mode string, nodes, accounts int, dur time.Duration) ([]string, error) {
	creates := 60
	if o.Quick {
		creates = 20
	}

	measure := func(replicate bool) (createMean, visibleMean time.Duration, localRate float64, err error) {
		if mode == "local-store" {
			// Single process, plane over the local store: the append round
			// pays no mesh, and there is no peer to propagate to.
			cl := cluster.New(transport.NewSim(transport.SimConfig{}))
			for i := 0; i < nodes; i++ {
				cl.AddServer(cluster.M3Large)
			}
			s := node.BankSchema()
			if err := s.Freeze(); err != nil {
				return 0, 0, 0, err
			}
			cfg := core.DefaultConfig()
			cfg.ChargeClientHops = false
			rt, err := core.New(s, ownership.NewGraph(), cl, cfg)
			if err != nil {
				return 0, 0, 0, err
			}
			defer rt.Close()
			top, err := node.BuildBank(rt, accounts, 1000)
			if err != nil {
				return 0, 0, 0, err
			}
			if replicate {
				p := replication.New(rt, cloudstore.New(), replication.Config{Origin: 1})
				rt.SetReplicator(p)
				if err := p.Start(); err != nil {
					return 0, 0, 0, err
				}
				defer p.Close()
			}
			var cm time.Duration
			if replicate {
				// Creates only on the replicated pass, matching the mesh
				// branches: the on/off throughput comparison runs against
				// identical topologies.
				cm, _, err = replicationCreates(rt, nil, top.Banks[0], creates)
				if err != nil {
					return 0, 0, 0, err
				}
			}
			rate, _, err := meshMeasure(rt.Submit, top.Accounts[0], dur)
			return cm, 0, rate, err
		}
		var mesh transport.Mesh
		if mode == "inmem-mesh" {
			mesh = transport.NewInMemMesh(transport.NewSim(transport.SimConfig{}))
		} else {
			mesh = transport.NewTCPMesh()
		}
		d, err := node.Deploy(mesh, node.Topology{
			Nodes:           nodes,
			AccountsPerBank: accounts,
			Replicate:       replicate,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		defer d.Close()
		if err := d.WaitReady(10 * time.Second); err != nil {
			return 0, 0, 0, err
		}
		n1, n2 := d.Nodes[0], d.Nodes[1]
		if replicate {
			// Create on node 1, owned by node 1's bank; node 2's replica
			// learns it via the notify frame.
			createMean, visibleMean, err = replicationCreates(n1.Runtime(), n2.Runtime(), d.Top.Banks[0], creates)
			if err != nil {
				return 0, 0, 0, err
			}
		}
		localRate, _, err = meshMeasure(n1.Submit, d.Top.Accounts[0], dur)
		return createMean, visibleMean, localRate, err
	}

	createMean, visibleMean, rateOn, err := measure(true)
	if err != nil {
		return nil, err
	}
	_, _, rateOff, err := measure(false)
	if err != nil {
		return nil, err
	}
	visibleCell := "n/a (same process)"
	if mode != "local-store" {
		visibleCell = fmtMS(visibleMean)
	}
	return []string{mode, fmtMS(createMean), visibleCell, fmtK(rateOn), fmtK(rateOff)}, nil
}
