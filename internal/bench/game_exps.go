package bench

import (
	"fmt"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/game"
	"aeon/internal/transport"
	"aeon/internal/workload"
)

// gameSystems enumerates the five systems of Figures 5a/5b.
var gameSystems = []string{"EventWave", "Orleans", "Orleans*", "AEON_SO", "AEON"}

// buildGameSystem deploys one system variant on a fresh cluster.
func buildGameSystem(name string, servers int, cfg game.Config) (game.App, *cluster.Cluster, error) {
	net := transport.NewSim(transport.DefaultSimConfig())
	cl := cluster.New(net)
	for i := 0; i < servers; i++ {
		cl.AddServer(cluster.M3Large)
	}
	var (
		app game.App
		err error
	)
	switch name {
	case "AEON":
		app, err = game.BuildAEON(cl, cfg, false)
	case "AEON_SO":
		app, err = game.BuildAEON(cl, cfg, true)
	case "EventWave":
		app, err = game.BuildEventWave(cl, cfg)
	case "Orleans":
		app, err = game.BuildOrleans(cl, cfg, false)
	case "Orleans*":
		app, err = game.BuildOrleans(cl, cfg, true)
	default:
		return nil, nil, fmt.Errorf("bench: unknown system %q", name)
	}
	return app, cl, err
}

// gameConfig is the Figure 5 deployment: one Room per server with a fixed
// number of items ("we make each server hold one Room with fixed number of
// Items", § 6.1.1).
func gameConfig(servers int) game.Config {
	cfg := game.DefaultConfig()
	cfg.Rooms = servers
	cfg.PlayersPerRoom = 8
	cfg.SharedItemsPerRoom = 4
	cfg.ActionCost = 50 * time.Microsecond
	// The building-wide time-of-day broadcast progressively locks every
	// room until the event terminates (strict 2PL); it is a rare
	// operation, and at benchmark rates even 1% would dominate the lock
	// schedule, so the throughput figures use the steady player mix.
	cfg.Mix = game.OpMix{PrivateGoldPct: 70, InteractPct: 20, CountPct: 10}
	return cfg
}

// Fig5a regenerates Figure 5a (game scale-out): throughput as servers grow,
// with closed-loop clients proportional to the cluster size.
func Fig5a(o Options) (*Table, error) {
	serverCounts := []int{2, 4, 8, 12, 16}
	if o.Quick {
		serverCounts = []int{2, 4, 8}
	}
	t := &Table{
		Title:   "Figure 5a: game scale-out (events/s)",
		Columns: append([]string{"servers"}, gameSystems...),
		Notes: []string{
			"expected shape: EventWave plateaus (root sequencing); AEON_SO ≈3× and AEON ≈5× EventWave at 16 servers; AEON ≈1.5× AEON_SO; Orleans lowest",
		},
	}
	for _, n := range serverCounts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, sys := range gameSystems {
			o.progressf("fig5a: %s @ %d servers\n", sys, n)
			app, _, err := buildGameSystem(sys, n, gameConfig(n))
			if err != nil {
				return nil, fmt.Errorf("build %s@%d: %w", sys, n, err)
			}
			res := workload.RunClosedLoop(app.DoOp, 24*n, 0, o.duration(), o.seed())
			app.Close()
			if res.Errors > 0 {
				return nil, fmt.Errorf("%s@%d: %d op errors", sys, n, res.Errors)
			}
			row = append(row, fmtK(res.Throughput))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig5b regenerates Figure 5b (game latency vs throughput at 8 servers) by
// sweeping the client count.
func Fig5b(o Options) (*Table, error) {
	const servers = 8
	clientCounts := []int{16, 32, 64, 128, 256, 512}
	if o.Quick {
		clientCounts = []int{16, 64, 256}
	}
	t := &Table{
		Title:   "Figure 5b: game latency vs throughput, 8 servers (cells: events/s | mean latency)",
		Columns: append([]string{"clients"}, gameSystems...),
		Notes: []string{
			"expected shape: AEON sustains the highest throughput before its latency knee; EventWave/Orleans saturate with few clients",
		},
	}
	for _, clients := range clientCounts {
		row := []string{fmt.Sprintf("%d", clients)}
		for _, sys := range gameSystems {
			o.progressf("fig5b: %s @ %d clients\n", sys, clients)
			app, _, err := buildGameSystem(sys, servers, gameConfig(servers))
			if err != nil {
				return nil, fmt.Errorf("build %s: %w", sys, err)
			}
			res := workload.RunClosedLoop(app.DoOp, clients, 0, o.duration(), o.seed())
			app.Close()
			if res.Errors > 0 {
				return nil, fmt.Errorf("%s@%d clients: %d op errors", sys, clients, res.Errors)
			}
			row = append(row, fmt.Sprintf("%s | %s", fmtK(res.Throughput), fmtMS(res.Latency.Mean)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
