package bench

import (
	"fmt"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/emanager"
	"aeon/internal/game"
	"aeon/internal/transport"
	"aeon/internal/workload"
)

// elasticSetup describes one Figure 7 configuration.
type elasticSetup struct {
	name    string
	servers int  // initial servers
	elastic bool // eManager-driven scaling
}

func fig7Setups(o Options) []elasticSetup {
	if o.Quick {
		return []elasticSetup{
			{"Elastic", 4, true},
			{"4-server", 4, false},
			{"12-server", 12, false},
		}
	}
	return []elasticSetup{
		{"Elastic", 8, true},
		{"8-server", 8, false},
		{"16-server", 16, false},
		{"22-server", 22, false},
		{"32-server", 32, false},
	}
}

// fig7Run is one elasticity run's outcome.
type fig7Run struct {
	setup      elasticSetup
	result     *workload.RampResult
	serverHist []serverSample
	avgServers float64
	pctOverSLA float64
}

type serverSample struct {
	offset  time.Duration
	servers int
}

// runFig7 executes the elasticity experiment of § 6.2: the game on
// m1.small servers, an SLA of 10 ms, and a normally distributed client ramp
// peaking at 128 clients.
func runFig7(o Options) ([]fig7Run, time.Duration, error) {
	const sla = 10 * time.Millisecond
	maxServers := 32
	rooms := 32
	duration := 60 * time.Second
	window := time.Second
	ramp := workload.Ramp{Machines: 8, PeakPerMachine: 16, Duration: duration}
	if o.Quick {
		maxServers = 12
		rooms = 12
		duration = 12 * time.Second
		ramp = workload.Ramp{Machines: 4, PeakPerMachine: 12, Duration: duration}
		window = 500 * time.Millisecond
	}

	cfg := game.DefaultConfig()
	cfg.Rooms = rooms
	cfg.PlayersPerRoom = 4
	cfg.SharedItemsPerRoom = 2
	cfg.ActionCost = 100 * time.Microsecond
	cfg.Mix = game.OpMix{PrivateGoldPct: 70, InteractPct: 20, CountPct: 10}

	var runs []fig7Run
	for _, setup := range fig7Setups(o) {
		o.progressf("fig7: running %s setup\n", setup.name)
		net := transport.NewSim(transport.DefaultSimConfig())
		cl := cluster.New(net)
		initial := setup.servers
		for i := 0; i < initial; i++ {
			cl.AddServer(cluster.M1Small)
		}
		app, err := game.BuildAEON(cl, cfg, false)
		if err != nil {
			return nil, 0, fmt.Errorf("fig7 %s: %w", setup.name, err)
		}

		var mgr *emanager.Manager
		if setup.elastic {
			mcfg := emanager.DefaultConfig()
			mcfg.MovableClasses = []string{"Room"}
			mcfg.PollInterval = window
			mgr = emanager.New(app.Runtime(), cloudstore.New(cloudstore.WithLatency(time.Millisecond)), mcfg)
			mgr.AddPolicy(&emanager.SLAPolicy{
				Target:     sla,
				Profile:    cluster.M1Small,
				MinServers: initial,
				Cooldown:   window,
				MaxStep:    4,
			})
			mgr.AddConstraint(emanager.MaxServers(maxServers))
			mgr.Start()
		}

		// Sample the server count alongside the ramp.
		samples := make(chan serverSample, 1024)
		stopSampling := make(chan struct{})
		samplerDone := make(chan struct{})
		go func() {
			defer close(samplerDone)
			begin := time.Now()
			ticker := time.NewTicker(window)
			defer ticker.Stop()
			for {
				select {
				case <-stopSampling:
					return
				case now := <-ticker.C:
					samples <- serverSample{offset: now.Sub(begin), servers: cl.Size()}
				}
			}
		}()

		res := workload.RunRamp(app.DoOp, ramp, window, o.seed())
		close(stopSampling)
		<-samplerDone
		close(samples)
		if mgr != nil {
			mgr.Stop()
		}
		app.Close()

		run := fig7Run{setup: setup, result: res}
		var sum int
		for s := range samples {
			run.serverHist = append(run.serverHist, s)
			sum += s.servers
		}
		if len(run.serverHist) > 0 {
			run.avgServers = float64(sum) / float64(len(run.serverHist))
		} else {
			run.avgServers = float64(initial)
		}
		run.pctOverSLA = res.Hist.FractionAbove(sla) * 100
		runs = append(runs, run)
	}
	return runs, window, nil
}

// Fig7 regenerates Figures 7a (average request latency over time) and 7b
// (server count over time) for the elastic and static setups.
func Fig7(o Options) ([]*Table, error) {
	runs, window, err := runFig7(o)
	if err != nil {
		return nil, err
	}

	latT := &Table{
		Title:   "Figure 7a: elastic vs static — mean request latency per window (ms)",
		Columns: []string{"t"},
		Notes: []string{
			"expected shape: small static setups blow past the 10ms SLA at the client peak; the 32-server and elastic setups stay under it",
		},
	}
	srvT := &Table{
		Title:   "Figure 7b: elastic vs static — server count per window",
		Columns: []string{"t"},
		Notes: []string{
			"expected shape: the elastic setup grows toward the peak and shrinks after; static lines are flat",
		},
	}
	clT := &Table{
		Title:   "Figure 7a (overlay): active clients per window",
		Columns: []string{"t", "clients"},
	}

	for _, r := range runs {
		latT.Columns = append(latT.Columns, r.setup.name)
		srvT.Columns = append(srvT.Columns, r.setup.name)
	}

	// Build rows window by window using the longest series.
	maxLen := 0
	latSeries := make([][]string, len(runs))
	srvSeries := make([][]string, len(runs))
	for i, r := range runs {
		for _, p := range r.result.LatencySeries.Points() {
			latSeries[i] = append(latSeries[i], fmt.Sprintf("%.2f", p.Mean))
		}
		for _, s := range r.serverHist {
			srvSeries[i] = append(srvSeries[i], fmt.Sprintf("%d", s.servers))
		}
		if len(latSeries[i]) > maxLen {
			maxLen = len(latSeries[i])
		}
		if len(srvSeries[i]) > maxLen {
			maxLen = len(srvSeries[i])
		}
	}
	for w := 0; w < maxLen; w++ {
		ts := fmt.Sprintf("%.0fs", (time.Duration(w) * window).Seconds())
		latRow := []string{ts}
		srvRow := []string{ts}
		for i := range runs {
			latRow = append(latRow, seriesCell(latSeries[i], w))
			srvRow = append(srvRow, seriesCell(srvSeries[i], w))
		}
		latT.Rows = append(latT.Rows, latRow)
		srvT.Rows = append(srvT.Rows, srvRow)
	}

	if len(runs) > 0 {
		for _, p := range runs[0].result.ClientSeries.Points() {
			clT.Rows = append(clT.Rows, []string{
				fmt.Sprintf("%.0fs", p.Offset.Seconds()),
				fmt.Sprintf("%.0f", p.Mean),
			})
		}
	}
	return []*Table{latT, srvT, clT}, nil
}

func seriesCell(s []string, i int) string {
	if i < len(s) {
		return s[i]
	}
	return "-"
}

// Table1 regenerates Table 1: SLA violations and server cost per setup.
func Table1(o Options) (*Table, error) {
	runs, _, err := runFig7(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Table 1: performance and cost (SLA 10ms)",
		Columns: []string{"Setup", "% requests > 10ms", "Avg. servers"},
		Notes: []string{
			"expected shape: the largest static setup and the elastic setup meet the SLA; the elastic one does so with substantially fewer servers on average",
		},
	}
	for _, r := range runs {
		t.Rows = append(t.Rows, []string{
			r.setup.name,
			fmt.Sprintf("%.1f%%", r.pctOverSLA),
			fmt.Sprintf("%.1f", r.avgServers),
		})
	}
	return t, nil
}
