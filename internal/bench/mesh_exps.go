package bench

// The `mesh` experiment measures what the distributed node runtime costs:
// event throughput and latency for local, remote (one mesh exchange), and
// stale-forwarded (two mesh exchanges) submits, across three substrates —
// the single-process baseline, N in-process nodes on the in-memory mesh,
// and N in-process nodes on real TCP loopback sockets. Recorded as
// BENCH_4.json.

import (
	"fmt"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/emanager"
	"aeon/internal/node"
	"aeon/internal/ownership"
	"aeon/internal/transport"
)

// MeshExp regenerates the mesh experiment table.
func MeshExp(o Options) (*Table, error) {
	const nodes = 3
	accounts := 8
	dur := o.duration()

	t := &Table{
		Title:   "Mesh: event cost by placement — single process vs in-memory mesh vs TCP loopback",
		Columns: []string{"substrate", "local ev/s", "local mean", "remote ev/s", "remote mean", "forward ev/s", "forward mean"},
		Notes: []string{
			"local: event's group hosted by the submitting node; remote: hosted by a peer (one mesh exchange)",
			"forward: submitter's directory is stale after a migration, so the event pays submitter→old-host→new-host (two mesh exchanges)",
			fmt.Sprintf("%d nodes (1:1 node per server), bank workload, single closed-loop client, %v per point", nodes, dur),
			"expected shape: local ≈ single process on every substrate (no mesh on the path); remote pays the frame codec (+ sockets on TCP); forward ≈ 2× remote",
		},
	}

	for _, mode := range []string{"single-process", "inmem-mesh", "tcp-mesh"} {
		o.progressf("mesh: %s\n", mode)
		row, err := meshModeRow(o, mode, nodes, accounts, dur)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mode, err)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// meshMeasure drives one closed-loop client round-robin over targets.
func meshMeasure(submit node.SubmitFunc, targets []ownership.ID, dur time.Duration) (rate float64, mean time.Duration, err error) {
	var (
		ops   int
		total time.Duration
		start = time.Now()
	)
	for time.Since(start) < dur {
		t0 := time.Now()
		if _, err := submit(targets[ops%len(targets)], "deposit", 1); err != nil {
			return 0, 0, err
		}
		total += time.Since(t0)
		ops++
	}
	if ops == 0 {
		return 0, 0, fmt.Errorf("no operations completed")
	}
	return float64(ops) / time.Since(start).Seconds(), total / time.Duration(ops), nil
}

// meshModeRow measures one substrate.
func meshModeRow(o Options, mode string, nodes, accounts int, dur time.Duration) ([]string, error) {
	var (
		submit  node.SubmitFunc
		top     *node.BankTopology
		migrate func(root ownership.ID, to cluster.ServerID) error
		cleanup func()
	)
	switch mode {
	case "single-process":
		cl := cluster.New(transport.NewSim(transport.SimConfig{}))
		for i := 0; i < nodes; i++ {
			cl.AddServer(cluster.M3Large)
		}
		s := node.BankSchema()
		if err := s.Freeze(); err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		cfg.ChargeClientHops = false
		rt, err := core.New(s, ownership.NewGraph(), cl, cfg)
		if err != nil {
			return nil, err
		}
		top, err = node.BuildBank(rt, accounts, 1000)
		if err != nil {
			rt.Close()
			return nil, err
		}
		mgr := emanager.New(rt, cloudstore.New(), emanager.DefaultConfig())
		submit = rt.Submit
		migrate = mgr.MigrateGroup
		cleanup = rt.Close
	case "inmem-mesh", "tcp-mesh":
		var mesh transport.Mesh
		if mode == "inmem-mesh" {
			mesh = transport.NewInMemMesh(transport.NewSim(transport.SimConfig{}))
		} else {
			mesh = transport.NewTCPMesh()
		}
		d, err := node.Deploy(mesh, node.Topology{
			Nodes:           nodes,
			AccountsPerBank: accounts,
			// Keep the submitter's directory deliberately stale so the
			// forward measurement pays the two-exchange path on every call.
			NodeDefaults: &node.Config{NoPlacementLearning: true},
		})
		if err != nil {
			return nil, err
		}
		if err := d.WaitReady(10 * time.Second); err != nil {
			d.Close()
			return nil, err
		}
		n1 := d.Nodes[0]
		submit = n1.Submit
		top = d.Top
		migrate = func(root ownership.ID, to cluster.ServerID) error {
			// Commanded at the owning node, like a real deployment.
			host, _ := d.Nodes[2].Runtime().Directory().Locate(root)
			return n1.MigrateRemote(transport.NodeID(host), root, to)
		}
		cleanup = d.Close
	default:
		return nil, fmt.Errorf("unknown mode %q", mode)
	}
	defer cleanup()

	localRate, localMean, err := meshMeasure(submit, top.Accounts[0], dur)
	if err != nil {
		return nil, fmt.Errorf("local: %w", err)
	}
	remoteRate, remoteMean, err := meshMeasure(submit, top.Accounts[1], dur)
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	// Open the forwarding path: bank 3's group moves server 3 → server 2,
	// but the submitter keeps routing to server 3 (stale directory).
	if err := migrate(top.Banks[2], 2); err != nil {
		return nil, fmt.Errorf("migrate: %w", err)
	}
	fwdRate, fwdMean, err := meshMeasure(submit, top.Accounts[2], dur)
	if err != nil {
		return nil, fmt.Errorf("forward: %w", err)
	}

	return []string{
		mode,
		fmtK(localRate), fmtMS(localMean),
		fmtK(remoteRate), fmtMS(remoteMean),
		fmtK(fwdRate), fmtMS(fwdMean),
	}, nil
}
