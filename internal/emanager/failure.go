package emanager

import (
	"fmt"
	"sort"
	"strings"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/migration"
	"aeon/internal/ownership"
)

// Server failure handling. The paper's § 5.3 defers the details of
// individual server failures to the project webpage; the behaviour
// implemented here follows its stated design: context state is
// checkpointed to cloud storage via the snapshot API, and when a server is
// lost, the eManager re-creates the lost contexts on surviving servers from
// their most recent checkpoints and republishes the mapping. Events
// submitted to a recovering context simply queue on its activation lock and
// execute once recovery completes.

// CheckpointServer snapshots every movable context hosted on the given
// server (a periodic call implements the paper's checkpoint-based fault
// tolerance). The sweep partitions the server's contexts into placement
// groups (like DrainAndRemove) and walks each group's subtree exactly once
// under one shared activation, emitting one per-context snapshot entry per
// member — each state is captured and stored once (a subtree snapshot per
// hosted context would store every descendant's state twice), and recovery
// keeps reading per-context keys.
//
// Publication is a CAS loop, not a blind write: the expensive capture walk
// runs once, then List → assign fresh sequences above the observed floors →
// CreateBatch (atomic create-only). A concurrent sweeper that published the
// same sequence first makes the CreateBatch fail with ErrVersionMismatch and
// the loop re-reads the floors and re-keys — so two sweeps interleave their
// histories instead of silently overwriting each other's entries. Pruning of
// the superseded sequences happens only after the fresh batch landed: a
// crash between the two writes leaves extra history, never a missing
// checkpoint. It returns the number of contexts captured.
func (m *Manager) CheckpointServer(srv cluster.ServerID) (int, error) {
	hosted := m.rt.Directory().HostedOn(srv)
	if len(hosted) == 0 {
		return 0, nil
	}
	view := m.rt.Graph().Snapshot()
	pending := make(map[ownership.ID]bool, len(hosted))
	for _, id := range hosted {
		pending[id] = true
	}
	roots, _ := drainGroups(view, hosted)
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })

	count := 0
	captured := make(map[uint64][]byte)
	for _, root := range roots {
		err := m.rt.WithSubtreeShared(root, func(ids []ownership.ID) error {
			for _, id := range ids {
				// Capture each hosted, movable member once, even when it is
				// reachable from two group roots (multi-owned contexts).
				if !pending[id] || !m.classAllowedIn(view, id) {
					continue
				}
				pending[id] = false
				b, ok := m.encodeState(id)
				if !ok {
					continue
				}
				encoded, err := encodePayload(snapshotPayload{
					Root:   uint64(id),
					States: map[uint64][]byte{uint64(id): b},
				})
				if err != nil {
					return err
				}
				captured[uint64(id)] = encoded
				count++
			}
			return nil
		})
		if err != nil {
			return count, fmt.Errorf("checkpoint %v: %w", root, err)
		}
	}
	if len(captured) == 0 {
		return 0, nil
	}

	var prune []string
	err := cloudstore.Retry(cloudstore.DefaultRetry(), func() error {
		// Re-read the sequence floors each attempt: a competing sweep may
		// have advanced them since the last try (sequences must stay
		// monotonic across processes; see nextSnapshotSeq).
		keys, err := m.store.List("snapshot/")
		if err != nil {
			return err
		}
		maxSeq := make(map[uint64]uint64)
		oldKeys := make(map[uint64][]string)
		for _, k := range keys {
			var root, seq uint64
			if _, err := fmt.Sscanf(k, "snapshot/%d/%d", &root, &seq); err == nil {
				oldKeys[root] = append(oldKeys[root], k)
				if seq > maxSeq[root] {
					maxSeq[root] = seq
				}
			}
		}
		entries := make(map[string][]byte, len(captured))
		prune = prune[:0]
		for id, encoded := range captured {
			entries[snapshotKey(ownership.ID(id), nextSnapshotSeq(maxSeq[id]))] = encoded
			prune = append(prune, oldKeys[id]...)
		}
		_, err = m.store.CreateBatch(entries)
		return err
	})
	if err != nil {
		return 0, fmt.Errorf("checkpoint %v: %w", srv, err)
	}
	if err := m.store.DeleteBatch(prune); err != nil {
		return count, fmt.Errorf("checkpoint %v prune: %w", srv, err)
	}
	return count, nil
}

// latestSnapshotKey finds the most recent snapshot of a context in the
// store (keys are "snapshot/<ctx>/<seq>" with monotonically increasing
// sequence numbers).
func (m *Manager) latestSnapshotKey(id ownership.ID) (string, bool, error) {
	prefix := fmt.Sprintf("snapshot/%d/", uint64(id))
	keys, err := m.store.List(prefix)
	if err != nil {
		return "", false, err
	}
	if len(keys) == 0 {
		return "", false, nil
	}
	// Sequence numbers sort numerically, not lexically.
	sort.Slice(keys, func(i, j int) bool {
		return snapshotSeqOf(keys[i]) < snapshotSeqOf(keys[j])
	})
	return keys[len(keys)-1], true, nil
}

func snapshotSeqOf(key string) uint64 {
	idx := strings.LastIndexByte(key, '/')
	if idx < 0 {
		return 0
	}
	var seq uint64
	_, _ = fmt.Sscanf(key[idx+1:], "%d", &seq)
	return seq
}

// FailureReport summarizes a server-loss recovery.
type FailureReport struct {
	// Lost lists the contexts that were hosted on the failed server.
	Lost []ownership.ID
	// Restored lists contexts whose state was recovered from checkpoints.
	Restored []ownership.ID
	// Reset lists contexts that had no checkpoint and restarted from
	// factory state.
	Reset []ownership.ID
}

// RecoverServerFailure handles the loss of a server: every context it
// hosted is re-homed onto surviving servers, state is restored from the
// most recent checkpoint where one exists (factory state otherwise), and
// the mapping is republished. The failed server is removed from the
// cluster.
func (m *Manager) RecoverServerFailure(failed cluster.ServerID) (*FailureReport, error) {
	// Checkpoint keys name log-assigned context IDs; replay them against
	// the replicated graph, not a possibly stale local rebuild.
	if err := m.syncReplica(); err != nil {
		return nil, fmt.Errorf("recover %v: sync replica: %w", failed, err)
	}
	dir := m.rt.Directory()
	lost := dir.HostedOn(failed)
	report := &FailureReport{Lost: lost}

	for _, id := range lost {
		to, err := m.pickDestination(failed)
		if err != nil {
			return report, fmt.Errorf("re-home %v: %w", id, err)
		}
		// Take the context exclusively (queued events wait, they are not
		// lost), reset or restore its state, and re-home it.
		release, err := m.rt.LockForMigration(id)
		if err != nil {
			return report, fmt.Errorf("lock %v: %w", id, err)
		}
		c, err := m.rt.Context(id)
		if err != nil {
			release()
			return report, err
		}
		key, ok, err := m.latestSnapshotKey(id)
		if err != nil {
			release()
			return report, err
		}
		if ok {
			states, err := m.LoadSnapshot(key)
			if err != nil {
				release()
				return report, fmt.Errorf("load checkpoint %q: %w", key, err)
			}
			if st, found := states[id]; found {
				c.SetState(st)
				report.Restored = append(report.Restored, id)
			} else {
				c.SetState(c.Class().NewState())
				report.Reset = append(report.Reset, id)
			}
		} else {
			c.SetState(c.Class().NewState())
			report.Reset = append(report.Reset, id)
		}
		if err := m.rt.Rehost(id, to); err != nil {
			release()
			return report, err
		}
		if _, err := m.store.Put(migration.MapKey(id), migration.EncodeServerID(to)); err != nil {
			release()
			return report, err
		}
		release()
	}
	if err := m.removeServer(failed); err != nil {
		return report, fmt.Errorf("remove failed server: %w", err)
	}
	return report, nil
}
