// Package emanager implements AEON's elasticity manager (§ 5): it maintains
// the authoritative context mapping and ownership network in cloud storage,
// migrates contexts between servers with the paper's five-step protocol
// (prepare → stop → δ remap → migrate event → resume), evaluates elasticity
// policies (resource utilization, server contention, SLA) against server
// telemetry, and provides the consistent snapshot API of § 5.3.
//
// Migration itself lives in the internal/migration engine: one batched
// protocol round per placement group, with disjoint groups moving
// concurrently on a bounded worker pool. The manager is an engine client —
// policy actions, rebalancing, and server drains launch asynchronous group
// migrations and join the futures, so the policy loop never serializes on
// δ-settle or state-transfer sleeps.
//
// The eManager itself is stateless: every migration step is journaled in
// the cloud store, so a crashed eManager can be replaced and the new one
// finishes in-flight migrations (Recover).
package emanager

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/metrics"
	"aeon/internal/migration"
	"aeon/internal/ownership"
)

// ManagerNode is the logical network location of the eManager service.
const ManagerNode = migration.ManagerNode

var (
	// ErrVetoed is returned when a constraint rejects an action.
	ErrVetoed = errors.New("emanager: action vetoed by constraint")
	// ErrNoTarget is returned when no destination server is available.
	ErrNoTarget = errors.New("emanager: no destination server available")
)

// Config tunes the manager.
type Config struct {
	// Delta is the paper's δ: the settle time between stopping the source
	// and publishing the new mapping (step III). The batched engine pays it
	// once per group, not once per member.
	Delta time.Duration
	// ProtocolWork is the CPU consumed on each endpoint per migration
	// protocol round (message handling, serialization); it scales with
	// instance speed and produces Figure 9's per-instance-type migration
	// throughput. The batched engine charges it once per group.
	ProtocolWork time.Duration
	// PollInterval is how often policies are evaluated.
	PollInterval time.Duration
	// MovableClasses restricts policy-driven migration to contexts of the
	// given classes (e.g. only Rooms move in the game); empty means any.
	MovableClasses []string
	// MigrateSubtrees moves a context together with the co-located contexts
	// it transitively owns, preserving locality. Honored everywhere a
	// migration is launched: policy actions, rebalancing, and server drains.
	MigrateSubtrees bool
	// MaxConcurrentMigrations bounds how many disjoint group migrations the
	// engine runs at once. Zero means the engine default (4).
	MaxConcurrentMigrations int
	// Transfer overrides the migration engine's state-transfer step: the
	// node runtime ships member state over the transport mesh to the
	// destination node here. nil keeps in-process transfer semantics.
	Transfer migration.TransferFunc
	// SyncReplica, when set, catches the local ownership/cluster replica up
	// with the fleet's replicated mutation log. Recovery paths call it
	// before replaying WAL or checkpoint records: those records name
	// context IDs assigned by log sequence, so they must be replayed
	// against the replicated graph, not whatever this process happened to
	// rebuild locally. nil means the topology is process-local (single
	// process, or a static multi-process deployment).
	SyncReplica func() error
	// Membership, when set, sequences cluster scale-out/scale-in through
	// the replicated mutation log so every node's cluster map applies the
	// change (the node runtime wires the replication plane here). nil
	// mutates the local cluster directly.
	Membership Membership
}

// Membership sequences cluster-membership mutations; the replication
// plane implements it in multi-process deployments.
type Membership interface {
	AddServer(p cluster.Profile) (cluster.ServerID, error)
	RemoveServer(id cluster.ServerID) error
}

// DefaultConfig returns production-ish defaults.
func DefaultConfig() Config {
	return Config{
		Delta:           2 * time.Millisecond,
		ProtocolWork:    1500 * time.Microsecond,
		PollInterval:    250 * time.Millisecond,
		MigrateSubtrees: true,
	}
}

// Manager is the elasticity manager.
type Manager struct {
	cfg    Config
	rt     *core.Runtime
	store  cloudstore.API
	engine *migration.Engine

	mu          sync.Mutex
	policies    []Policy
	constraints []Constraint

	// Migrations counts migrated contexts (group members) and MigrationTime
	// records per-group move durations (Figures 8/9 instrumentation). Both
	// alias the engine's counters; see Engine() for the full set (stop
	// windows, coalesced bytes, recoveries).
	Migrations    *metrics.Counter
	MigrationTime *metrics.Histogram

	stop chan struct{}
	done chan struct{}
}

// New creates a manager for a runtime, journaling into store — the local
// in-memory store, or (on a non-store node of a multi-process deployment) a
// RemoteStore reaching the authoritative one over the transport mesh.
func New(rt *core.Runtime, store cloudstore.API, cfg Config) *Manager {
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	engine := migration.NewEngine(rt, store, migration.Config{
		Delta:         cfg.Delta,
		ProtocolWork:  cfg.ProtocolWork,
		MaxConcurrent: cfg.MaxConcurrentMigrations,
		Transfer:      cfg.Transfer,
	})
	return &Manager{
		cfg:           cfg,
		rt:            rt,
		store:         store,
		engine:        engine,
		Migrations:    &engine.Members,
		MigrationTime: &engine.GroupTime,
	}
}

// Runtime returns the managed runtime.
func (m *Manager) Runtime() *core.Runtime { return m.rt }

// Store returns the backing cloud store.
func (m *Manager) Store() cloudstore.API { return m.store }

// Engine returns the migration engine (metrics, async API).
func (m *Manager) Engine() *migration.Engine { return m.engine }

// AddPolicy installs an elasticity policy.
func (m *Manager) AddPolicy(p Policy) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.policies = append(m.policies, p)
}

// AddConstraint installs a Tuba-style constraint that can veto actions.
func (m *Manager) AddConstraint(c Constraint) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.constraints = append(m.constraints, c)
}

// Start launches the policy evaluation loop; Stop shuts it down.
func (m *Manager) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stop != nil {
		return
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go m.loop(m.stop, m.done)
}

// Stop halts the policy loop and waits for it to exit.
func (m *Manager) Stop() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (m *Manager) loop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(m.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			m.Evaluate()
		}
	}
}

// Evaluate runs one policy round against current telemetry and applies the
// resulting actions (subject to constraints). Migrations launch onto the
// engine's worker pool and are joined at the end of the round, so N disjoint
// moves overlap their δ and transfer windows instead of queueing behind each
// other. It is called periodically by the loop and directly by tests.
func (m *Manager) Evaluate() {
	stats := m.CollectStats()
	m.mu.Lock()
	policies := append([]Policy(nil), m.policies...)
	m.mu.Unlock()
	var futures []*migration.Future
	for _, p := range policies {
		for _, action := range p.Decide(stats) {
			f, err := m.applyAsync(action)
			if err != nil &&
				!errors.Is(err, ErrVetoed) && !errors.Is(err, ErrNoTarget) {
				// Policy actions are advisory; failures surface in telemetry
				// on the next round.
				continue
			}
			if f != nil {
				futures = append(futures, f)
			}
		}
	}
	for _, f := range futures {
		// Outcomes feed back through telemetry, like every policy action.
		_ = f.Wait()
	}
}

// CollectStats gathers the per-server telemetry policies consume ("every
// server periodically sends its resource utilization data", § 5.2).
func (m *Manager) CollectStats() Stats {
	servers := m.rt.Cluster().Servers()
	st := Stats{
		RecentLatency: m.rt.RecentLatency(),
		Servers:       make([]ServerStat, 0, len(servers)),
	}
	for _, s := range servers {
		st.Servers = append(st.Servers, ServerStat{
			ID:          s.ID(),
			Profile:     s.Profile(),
			Utilization: s.Utilization(),
			Hosted:      s.Hosted(),
		})
	}
	return st
}

// Apply executes one elasticity action after constraint checks, blocking
// until it completes.
func (m *Manager) Apply(action Action) error {
	f, err := m.applyAsync(action)
	if err != nil {
		return err
	}
	if f != nil {
		return f.Wait()
	}
	return nil
}

// applyAsync executes one elasticity action after constraint checks.
// Migrations return a Future (the move runs on the engine pool); every other
// action completes synchronously with a nil Future.
func (m *Manager) applyAsync(action Action) (*migration.Future, error) {
	m.mu.Lock()
	constraints := append([]Constraint(nil), m.constraints...)
	m.mu.Unlock()
	for _, c := range constraints {
		if !c.Allow(action, m) {
			return nil, fmt.Errorf("%T: %w", action, ErrVetoed)
		}
	}
	switch a := action.(type) {
	case AddServer:
		return nil, m.addServer(a.Profile)
	case RemoveServer:
		return nil, m.DrainAndRemove(a.Server)
	case MigrateContext:
		to := a.To
		if to == 0 {
			var err error
			to, err = m.pickDestination(a.From)
			if err != nil {
				return nil, err
			}
		}
		if m.cfg.MigrateSubtrees {
			return m.engine.MigrateGroupAsync(a.Context, to), nil
		}
		return m.engine.MigrateAsync(a.Context, to), nil
	case Rebalance:
		return nil, m.rebalanceFrom(a.Server, a.Fraction)
	default:
		return nil, fmt.Errorf("emanager: unknown action %T", action)
	}
}

// pickDestination chooses the least-loaded other server ("the default
// algorithm tries to move contexts from overloaded hosts to underloaded
// ones", § 5.2).
func (m *Manager) pickDestination(from cluster.ServerID) (cluster.ServerID, error) {
	var best cluster.ServerID
	bestHosted := int(^uint(0) >> 1)
	for _, s := range m.rt.Cluster().Servers() {
		if s.ID() == from {
			continue
		}
		if h := s.Hosted(); h < bestHosted {
			bestHosted = h
			best = s.ID()
		}
	}
	if best == 0 {
		return 0, ErrNoTarget
	}
	return best, nil
}

// destPicker hands out least-loaded destinations for one concurrent sweep.
// Async group launches finish long after their destinations are chosen, so
// live Hosted() counts alone would send every group of the sweep to the
// same momentarily-least-loaded server; the picker layers its own tentative
// reservations on top.
type destPicker struct {
	m        *Manager
	reserved map[cluster.ServerID]int
}

func (m *Manager) newDestPicker() *destPicker {
	return &destPicker{m: m, reserved: make(map[cluster.ServerID]int)}
}

// pick chooses the least-loaded server other than from, counting weight
// (the approximate group size) against the winner for later picks.
func (p *destPicker) pick(from cluster.ServerID, weight int) (cluster.ServerID, error) {
	var best cluster.ServerID
	bestHosted := int(^uint(0) >> 1)
	for _, s := range p.m.rt.Cluster().Servers() {
		if s.ID() == from {
			continue
		}
		if h := s.Hosted() + p.reserved[s.ID()]; h < bestHosted {
			bestHosted = h
			best = s.ID()
		}
	}
	if best == 0 {
		return 0, ErrNoTarget
	}
	if weight < 1 {
		weight = 1
	}
	p.reserved[best] += weight
	return best, nil
}

// movableOn lists policy-movable contexts hosted on a server. One ownership
// snapshot serves every class lookup of the sweep.
func (m *Manager) movableOn(srv cluster.ServerID) []ownership.ID {
	hosted := m.rt.Directory().HostedOn(srv)
	view := m.rt.Graph().Snapshot()
	var out []ownership.ID
	for _, id := range hosted {
		if m.classAllowedIn(view, id) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *Manager) classAllowed(id ownership.ID) bool {
	return m.classAllowedIn(m.rt.Graph().Snapshot(), id)
}

func (m *Manager) classAllowedIn(view *ownership.Snapshot, id ownership.ID) bool {
	class, err := view.Class(id)
	if err != nil || class == ownership.VirtualClass {
		return false
	}
	if len(m.cfg.MovableClasses) == 0 {
		return true
	}
	for _, c := range m.cfg.MovableClasses {
		if c == class {
			return true
		}
	}
	return false
}

// rebalanceFrom moves the given fraction of movable contexts off a server.
// With MigrateSubtrees, each pick moves its whole co-located group; picks
// that an earlier group of this sweep already carried off are skipped (the
// old per-member loop would migrate them a second time, splitting the group
// it had just moved). Disjoint groups overlap on the engine pool.
func (m *Manager) rebalanceFrom(srv cluster.ServerID, fraction float64) error {
	movable := m.movableOn(srv)
	n := int(float64(len(movable)) * fraction)
	if n == 0 && len(movable) > 0 {
		n = 1
	}
	dir := m.rt.Directory()
	view := m.rt.Graph().Snapshot()
	picker := m.newDestPicker()
	var futures []*migration.Future
	for i := 0; i < n; i++ {
		if cur, ok := dir.Locate(movable[i]); !ok || cur != srv {
			continue // already moved with an earlier group
		}
		weight := 1
		if m.cfg.MigrateSubtrees {
			// Reserve the whole group's approximate size, not one slot.
			if desc, err := view.Desc(movable[i]); err == nil {
				for _, d := range desc {
					if cur, ok := dir.Locate(d); ok && cur == srv {
						weight++
					}
				}
			}
		}
		to, err := picker.pick(srv, weight)
		if err != nil {
			return err
		}
		if m.cfg.MigrateSubtrees {
			futures = append(futures, m.engine.MigrateGroupAsync(movable[i], to))
		} else {
			futures = append(futures, m.engine.MigrateAsync(movable[i], to))
		}
	}
	var firstErr error
	for _, f := range futures {
		if err := f.Wait(); err != nil && firstErr == nil &&
			!errors.Is(err, migration.ErrAlreadyMigrating) {
			// Overlap with an in-flight group is expected under concurrent
			// sweeps; the next poll round retries what remains.
			firstErr = err
		}
	}
	return firstErr
}

// maxDrainPasses bounds DrainAndRemove's sweep loop; each pass migrates
// every remaining placement group off the server, so the count only climbs
// when racing context creation keeps repopulating the source.
const maxDrainPasses = 64

// DrainAndRemove migrates everything off a server and releases it. With
// MigrateSubtrees it partitions the server's contexts into placement groups
// (hosted contexts with no hosted owner are group roots) and moves whole
// groups concurrently — one protocol round and one stop window per group —
// instead of a per-context loop that splits every group across servers
// mid-drain.
func (m *Manager) DrainAndRemove(srv cluster.ServerID) error {
	dir := m.rt.Directory()
	for pass := 0; ; pass++ {
		hosted := dir.HostedOn(srv)
		if len(hosted) == 0 {
			break
		}
		if pass >= maxDrainPasses {
			return fmt.Errorf("drain %v: %d contexts remain after %d passes",
				srv, len(hosted), pass)
		}
		roots := hosted
		var sizes map[ownership.ID]int
		if m.cfg.MigrateSubtrees {
			roots, sizes = drainGroups(m.rt.Graph().Snapshot(), hosted)
		}
		sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
		picker := m.newDestPicker()
		var futures []*migration.Future
		for _, root := range roots {
			to, err := picker.pick(srv, sizes[root])
			if err != nil {
				return err
			}
			if m.cfg.MigrateSubtrees {
				futures = append(futures, m.engine.MigrateGroupAsync(root, to))
			} else {
				futures = append(futures, m.engine.MigrateAsync(root, to))
			}
		}
		for _, f := range futures {
			if err := f.Wait(); err != nil &&
				!errors.Is(err, migration.ErrAlreadyMigrating) {
				// Overlapping groups (shared descendants) resolve on the
				// next pass; anything else fails the drain.
				return fmt.Errorf("drain %v: %w", srv, err)
			}
		}
	}
	return m.removeServer(srv)
}

// drainGroups partitions a server's hosted contexts into placement groups:
// a hosted context none of whose owners is also hosted there is a group
// root; every other hosted context is attributed to the root reached by
// climbing hosted owners (one of them, for multi-owned contexts — the
// group that wins the migration claim carries it). Returns the roots and
// each root's approximate member count, which destination picking uses as
// the reservation weight.
func drainGroups(view *ownership.Snapshot, hosted []ownership.ID) ([]ownership.ID, map[ownership.ID]int) {
	set := make(map[ownership.ID]bool, len(hosted))
	for _, id := range hosted {
		set[id] = true
	}
	rootOf := make(map[ownership.ID]ownership.ID, len(hosted))
	var findRoot func(id ownership.ID) ownership.ID
	findRoot = func(id ownership.ID) ownership.ID {
		if r, ok := rootOf[id]; ok {
			return r
		}
		rootOf[id] = id // self-placeholder; the graph is acyclic
		r := id
		if parents, err := view.Parents(id); err == nil {
			for _, p := range parents {
				if set[p] {
					r = findRoot(p)
					break
				}
			}
		}
		rootOf[id] = r
		return r
	}
	sizes := make(map[ownership.ID]int)
	var roots []ownership.ID
	for _, id := range hosted {
		r := findRoot(id)
		if sizes[r] == 0 {
			roots = append(roots, r)
		}
		sizes[r]++
	}
	return roots, sizes
}

// Migrate moves one context (without its subtree) to another server using
// the batched five-step protocol. It blocks until the context is live on the
// destination.
func (m *Manager) Migrate(id ownership.ID, to cluster.ServerID) error {
	return m.engine.Migrate(id, to)
}

// MigrateGroup migrates a context together with every transitively owned
// context currently co-located with it — one protocol round, one stop/δ
// window, one coalesced transfer for the whole group (a Room moves with its
// Players and Items, and stays whole throughout the move).
func (m *Manager) MigrateGroup(root ownership.ID, to cluster.ServerID) error {
	return m.engine.MigrateGroup(root, to)
}

// MigrateGroupAsync launches a group migration on the engine pool and
// returns its Future; disjoint groups move concurrently.
func (m *Manager) MigrateGroupAsync(root ownership.ID, to cluster.ServerID) *migration.Future {
	return m.engine.MigrateGroupAsync(root, to)
}

// Recover scans the migration journal and completes in-flight group
// migrations a crashed eManager left behind. Journal entries are cleared
// only after the group's move has converged, so a crash during recovery
// itself never orphans an in-flight migration. With a replicated topology
// the local replica is caught up with the mutation log first: WAL records
// name log-assigned context IDs, and a freshly restarted process has not
// necessarily applied the mutations that created them.
func (m *Manager) Recover() error {
	if err := m.syncReplica(); err != nil {
		return fmt.Errorf("recover: sync replica: %w", err)
	}
	return m.engine.Recover()
}

// syncReplica catches the local topology replica up with the fleet's
// mutation log, when one is wired.
func (m *Manager) syncReplica() error {
	if m.cfg.SyncReplica == nil {
		return nil
	}
	return m.cfg.SyncReplica()
}

// addServer provisions a server, through the replicated membership log when
// one is wired.
func (m *Manager) addServer(p cluster.Profile) error {
	if m.cfg.Membership != nil {
		_, err := m.cfg.Membership.AddServer(p)
		return err
	}
	m.rt.Cluster().AddServer(p)
	return nil
}

// removeServer releases a drained server, through the replicated membership
// log when one is wired.
func (m *Manager) removeServer(id cluster.ServerID) error {
	if m.cfg.Membership != nil {
		return m.cfg.Membership.RemoveServer(id)
	}
	return m.rt.Cluster().RemoveServer(id)
}

// PersistMapping journals the current context mapping to the cloud store
// (done in bulk at deployment time; individual migrations update entries).
// It reads one directory snapshot — a single pass over the shards — and
// writes it as one batched put instead of a round trip per context, using
// the same key/value schema the engine publishes in migration step III.
func (m *Manager) PersistMapping() error {
	snap := m.rt.Directory().Snapshot()
	entries := make(map[string][]byte, len(snap))
	for id, srv := range snap {
		entries[migration.MapKey(id)] = migration.EncodeServerID(srv)
	}
	_, err := m.store.PutBatch(entries)
	return err
}
