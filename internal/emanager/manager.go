// Package emanager implements AEON's elasticity manager (§ 5): it maintains
// the authoritative context mapping and ownership network in cloud storage,
// migrates contexts between servers with the paper's five-step protocol
// (prepare → stop → δ remap → migrate event → resume), evaluates elasticity
// policies (resource utilization, server contention, SLA) against server
// telemetry, and provides the consistent snapshot API of § 5.3.
//
// The eManager itself is stateless: every migration step is journaled in
// the cloud store, so a crashed eManager can be replaced and the new one
// finishes in-flight migrations (Recover).
package emanager

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/metrics"
	"aeon/internal/ownership"
	"aeon/internal/transport"
)

// ManagerNode is the logical network location of the eManager service.
const ManagerNode = transport.NodeID(-2)

var (
	// ErrVetoed is returned when a constraint rejects an action.
	ErrVetoed = errors.New("emanager: action vetoed by constraint")
	// ErrNoTarget is returned when no destination server is available.
	ErrNoTarget = errors.New("emanager: no destination server available")
)

// Config tunes the manager.
type Config struct {
	// Delta is the paper's δ: the settle time between stopping the source
	// and publishing the new mapping (step III).
	Delta time.Duration
	// ProtocolWork is the CPU consumed on each endpoint per migration
	// (message handling, serialization); it scales with instance speed and
	// produces Figure 9's per-instance-type migration throughput.
	ProtocolWork time.Duration
	// PollInterval is how often policies are evaluated.
	PollInterval time.Duration
	// MovableClasses restricts policy-driven migration to contexts of the
	// given classes (e.g. only Rooms move in the game); empty means any.
	MovableClasses []string
	// MigrateSubtrees moves a context together with the co-located contexts
	// it transitively owns, preserving locality.
	MigrateSubtrees bool
}

// DefaultConfig returns production-ish defaults.
func DefaultConfig() Config {
	return Config{
		Delta:           2 * time.Millisecond,
		ProtocolWork:    1500 * time.Microsecond,
		PollInterval:    250 * time.Millisecond,
		MigrateSubtrees: true,
	}
}

// Manager is the elasticity manager.
type Manager struct {
	cfg   Config
	rt    *core.Runtime
	store *cloudstore.Store

	mu          sync.Mutex
	policies    []Policy
	constraints []Constraint
	migrating   map[ownership.ID]bool

	// Migrations counts completed migrations; MigrationTime records their
	// durations (Figures 8/9 instrumentation).
	Migrations    metrics.Counter
	MigrationTime metrics.Histogram

	stop chan struct{}
	done chan struct{}
}

// New creates a manager for a runtime, journaling into store.
func New(rt *core.Runtime, store *cloudstore.Store, cfg Config) *Manager {
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	return &Manager{
		cfg:       cfg,
		rt:        rt,
		store:     store,
		migrating: make(map[ownership.ID]bool),
	}
}

// Runtime returns the managed runtime.
func (m *Manager) Runtime() *core.Runtime { return m.rt }

// Store returns the backing cloud store.
func (m *Manager) Store() *cloudstore.Store { return m.store }

// AddPolicy installs an elasticity policy.
func (m *Manager) AddPolicy(p Policy) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.policies = append(m.policies, p)
}

// AddConstraint installs a Tuba-style constraint that can veto actions.
func (m *Manager) AddConstraint(c Constraint) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.constraints = append(m.constraints, c)
}

// Start launches the policy evaluation loop; Stop shuts it down.
func (m *Manager) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stop != nil {
		return
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go m.loop(m.stop, m.done)
}

// Stop halts the policy loop and waits for it to exit.
func (m *Manager) Stop() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (m *Manager) loop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(m.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			m.Evaluate()
		}
	}
}

// Evaluate runs one policy round against current telemetry and applies the
// resulting actions (subject to constraints). It is called periodically by
// the loop and directly by tests.
func (m *Manager) Evaluate() {
	stats := m.CollectStats()
	m.mu.Lock()
	policies := append([]Policy(nil), m.policies...)
	m.mu.Unlock()
	for _, p := range policies {
		for _, action := range p.Decide(stats) {
			if err := m.Apply(action); err != nil &&
				!errors.Is(err, ErrVetoed) && !errors.Is(err, ErrNoTarget) {
				// Policy actions are advisory; failures surface in telemetry
				// on the next round.
				continue
			}
		}
	}
}

// CollectStats gathers the per-server telemetry policies consume ("every
// server periodically sends its resource utilization data", § 5.2).
func (m *Manager) CollectStats() Stats {
	servers := m.rt.Cluster().Servers()
	st := Stats{
		RecentLatency: m.rt.RecentLatency(),
		Servers:       make([]ServerStat, 0, len(servers)),
	}
	for _, s := range servers {
		st.Servers = append(st.Servers, ServerStat{
			ID:          s.ID(),
			Profile:     s.Profile(),
			Utilization: s.Utilization(),
			Hosted:      s.Hosted(),
		})
	}
	return st
}

// Apply executes one elasticity action after constraint checks.
func (m *Manager) Apply(action Action) error {
	m.mu.Lock()
	constraints := append([]Constraint(nil), m.constraints...)
	m.mu.Unlock()
	for _, c := range constraints {
		if !c.Allow(action, m) {
			return fmt.Errorf("%T: %w", action, ErrVetoed)
		}
	}
	switch a := action.(type) {
	case AddServer:
		m.rt.Cluster().AddServer(a.Profile)
		return nil
	case RemoveServer:
		return m.DrainAndRemove(a.Server)
	case MigrateContext:
		to := a.To
		if to == 0 {
			var err error
			to, err = m.pickDestination(a.From)
			if err != nil {
				return err
			}
		}
		if m.cfg.MigrateSubtrees {
			return m.MigrateGroup(a.Context, to)
		}
		return m.Migrate(a.Context, to)
	case Rebalance:
		return m.rebalanceFrom(a.Server, a.Fraction)
	default:
		return fmt.Errorf("emanager: unknown action %T", action)
	}
}

// pickDestination chooses the least-loaded other server ("the default
// algorithm tries to move contexts from overloaded hosts to underloaded
// ones", § 5.2).
func (m *Manager) pickDestination(from cluster.ServerID) (cluster.ServerID, error) {
	var best cluster.ServerID
	bestHosted := int(^uint(0) >> 1)
	for _, s := range m.rt.Cluster().Servers() {
		if s.ID() == from {
			continue
		}
		if h := s.Hosted(); h < bestHosted {
			bestHosted = h
			best = s.ID()
		}
	}
	if best == 0 {
		return 0, ErrNoTarget
	}
	return best, nil
}

// movableOn lists policy-movable contexts hosted on a server. One ownership
// snapshot serves every class lookup of the sweep.
func (m *Manager) movableOn(srv cluster.ServerID) []ownership.ID {
	hosted := m.rt.Directory().HostedOn(srv)
	view := m.rt.Graph().Snapshot()
	var out []ownership.ID
	for _, id := range hosted {
		if m.classAllowedIn(view, id) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *Manager) classAllowed(id ownership.ID) bool {
	return m.classAllowedIn(m.rt.Graph().Snapshot(), id)
}

func (m *Manager) classAllowedIn(view *ownership.Snapshot, id ownership.ID) bool {
	class, err := view.Class(id)
	if err != nil || class == ownership.VirtualClass {
		return false
	}
	if len(m.cfg.MovableClasses) == 0 {
		return true
	}
	for _, c := range m.cfg.MovableClasses {
		if c == class {
			return true
		}
	}
	return false
}

// rebalanceFrom moves the given fraction of movable contexts off a server.
func (m *Manager) rebalanceFrom(srv cluster.ServerID, fraction float64) error {
	movable := m.movableOn(srv)
	n := int(float64(len(movable)) * fraction)
	if n == 0 && len(movable) > 0 {
		n = 1
	}
	var firstErr error
	for i := 0; i < n; i++ {
		to, err := m.pickDestination(srv)
		if err != nil {
			return err
		}
		if m.cfg.MigrateSubtrees {
			err = m.MigrateGroup(movable[i], to)
		} else {
			err = m.Migrate(movable[i], to)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// DrainAndRemove migrates everything off a server and releases it.
func (m *Manager) DrainAndRemove(srv cluster.ServerID) error {
	dir := m.rt.Directory()
	for _, id := range dir.HostedOn(srv) {
		to, err := m.pickDestination(srv)
		if err != nil {
			return err
		}
		if err := m.Migrate(id, to); err != nil {
			return fmt.Errorf("drain %v: %w", id, err)
		}
	}
	return m.rt.Cluster().RemoveServer(srv)
}

// migrationWAL is the journal record persisted per migration step.
type migrationWAL struct {
	Context ownership.ID
	From    cluster.ServerID
	To      cluster.ServerID
	Step    int // 1=prepared 2=stopped 3=remapped 4=transferred 5=done
}

func walKey(id ownership.ID) string { return fmt.Sprintf("wal/migration/%d", uint64(id)) }
func mapKey(id ownership.ID) string { return fmt.Sprintf("map/%d", uint64(id)) }

func encodeWAL(w migrationWAL) []byte {
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(w)
	return buf.Bytes()
}

func decodeWAL(b []byte) (migrationWAL, error) {
	var w migrationWAL
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w)
	return w, err
}

// Migrate moves one context to another server using the five-step protocol
// of § 5.2. It blocks until the context is live on the destination.
func (m *Manager) Migrate(id ownership.ID, to cluster.ServerID) error {
	return m.migrate(id, to, 0)
}

// migrate implements Migrate; failAfterStep (test hook) aborts after the
// given step to simulate an eManager crash, leaving the WAL behind.
func (m *Manager) migrate(id ownership.ID, to cluster.ServerID, failAfterStep int) error {
	m.mu.Lock()
	if m.migrating[id] {
		m.mu.Unlock()
		return fmt.Errorf("emanager: %v already migrating", id)
	}
	m.migrating[id] = true
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.migrating, id)
		m.mu.Unlock()
	}()

	start := time.Now()
	dir := m.rt.Directory()
	from, ok := dir.Locate(id)
	if !ok {
		return fmt.Errorf("%v: %w", id, core.ErrUnknownContext)
	}
	if from == to {
		return nil
	}
	net := m.rt.Cluster().Net()
	srcServer, _ := m.rt.Cluster().Server(from)
	dstServer, ok := m.rt.Cluster().Server(to)
	if !ok {
		return fmt.Errorf("migrate to %v: %w", to, cluster.ErrNoSuchServer)
	}

	wal := migrationWAL{Context: id, From: from, To: to}

	// Step I: journal the intent, then prepare the destination (it creates
	// a queue for C) and wait for its ack.
	wal.Step = 1
	if _, err := m.store.Put(walKey(id), encodeWAL(wal)); err != nil {
		return fmt.Errorf("journal step I: %w", err)
	}
	if err := net.Hop(ManagerNode, to, 128); err != nil {
		return err
	}
	if err := net.Hop(to, ManagerNode, 64); err != nil {
		return err
	}
	if failAfterStep == 1 {
		return errSimulatedCrash
	}

	// Step II: tell the source to stop accepting events for C; ack.
	if err := net.Hop(ManagerNode, from, 128); err != nil {
		return err
	}
	if err := net.Hop(from, ManagerNode, 64); err != nil {
		return err
	}
	if failAfterStep == 2 {
		return errSimulatedCrash
	}

	// Step III: after δ, publish the new mapping (one journaled write).
	time.Sleep(m.cfg.Delta)
	wal.Step = 3
	if _, err := m.store.Put(walKey(id), encodeWAL(wal)); err != nil {
		return fmt.Errorf("journal step III: %w", err)
	}
	if failAfterStep == 3 {
		return errSimulatedCrash
	}

	// Step IV: the migrate(C,s2) event reaches the source (folded into the
	// step II exchange above) and the migratec pseudo-event drains C's
	// queue, then the state moves.
	release, err := m.rt.LockForMigration(id)
	if err != nil {
		return fmt.Errorf("migratec %v: %w", id, err)
	}
	defer release()

	c, err := m.rt.Context(id)
	if err != nil {
		return err
	}
	stateBytes := c.StateBytes()
	// Protocol CPU on both endpoints (serialize + deserialize); the slower
	// endpoint bounds the exchange, so charge it once there.
	slow := dstServer
	if srcServer != nil && srcServer.Profile().Speed < dstServer.Profile().Speed {
		slow = srcServer
	}
	slow.Work(2 * m.cfg.ProtocolWork)
	// State transfer at the endpoints' migration bandwidth.
	mbps := dstServer.Profile().MigrationMBps
	if srcServer != nil && srcServer.Profile().MigrationMBps < mbps {
		mbps = srcServer.Profile().MigrationMBps
	}
	if mbps > 0 && stateBytes > 0 {
		time.Sleep(time.Duration(float64(stateBytes) / (mbps * 1e6) * float64(time.Second)))
	}
	if err := m.rt.Rehost(id, to); err != nil {
		return err
	}

	// Step V: destination confirms and starts executing queued events —
	// release() (deferred) reopens the context; the journal entry clears.
	if err := m.store.Delete(walKey(id)); err != nil {
		return fmt.Errorf("journal step V: %w", err)
	}

	m.Migrations.Inc()
	m.MigrationTime.Record(time.Since(start))
	return nil
}

var errSimulatedCrash = errors.New("emanager: simulated crash (test hook)")

// MigrateGroup migrates a context together with every transitively owned
// context currently co-located with it, preserving the locality-aware
// placement (a Room moves with its Players and Items).
func (m *Manager) MigrateGroup(root ownership.ID, to cluster.ServerID) error {
	dir := m.rt.Directory()
	from, ok := dir.Locate(root)
	if !ok {
		return fmt.Errorf("%v: %w", root, core.ErrUnknownContext)
	}
	group := []ownership.ID{root}
	if desc, err := m.rt.Graph().Snapshot().Desc(root); err == nil {
		for _, d := range desc {
			if srv, ok := dir.Locate(d); ok && srv == from {
				group = append(group, d)
			}
		}
	}
	for _, id := range group {
		if err := m.Migrate(id, to); err != nil {
			return fmt.Errorf("group member %v: %w", id, err)
		}
	}
	return nil
}

// Recover scans the migration journal and completes in-flight migrations a
// crashed eManager left behind: steps ≤ II are rolled forward by re-running
// the migration; steps ≥ III (mapping already published) are finished by
// completing the transfer.
func (m *Manager) Recover() error {
	keys, err := m.store.List("wal/migration/")
	if err != nil {
		return err
	}
	for _, k := range keys {
		raw, _, err := m.store.Get(k)
		if err != nil {
			continue
		}
		wal, err := decodeWAL(raw)
		if err != nil {
			return fmt.Errorf("corrupt WAL %q: %w", k, err)
		}
		if err := m.store.Delete(k); err != nil {
			return err
		}
		// Whether the old manager died before or after publishing the
		// mapping, re-running the migration converges: the runtime-side
		// move happens atomically in step IV under the migratec lock.
		if cur, ok := m.rt.Directory().Locate(wal.Context); ok && cur != wal.To {
			if err := m.Migrate(wal.Context, wal.To); err != nil {
				return fmt.Errorf("recover %v: %w", wal.Context, err)
			}
		}
	}
	return nil
}

// PersistMapping journals the current context mapping to the cloud store
// (done in bulk at deployment time; individual migrations update entries).
// It reads one directory snapshot — a single pass over the shards — instead
// of a HostedOn scan per server.
func (m *Manager) PersistMapping() error {
	for id, srv := range m.rt.Directory().Snapshot() {
		if _, err := m.store.Put(mapKey(id), []byte(fmt.Sprintf("%d", int(srv)))); err != nil {
			return err
		}
	}
	return nil
}
