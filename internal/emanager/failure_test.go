package emanager

import (
	"testing"
)

func TestCheckpointAndRecoverServerFailure(t *testing.T) {
	RegisterSnapshotType(&counterState{})
	f := newFixture(t, 2, 4)

	// Put some state into every room.
	for i, room := range f.rooms {
		for j := 0; j <= i; j++ {
			if _, err := f.rt.Submit(room, "inc"); err != nil {
				t.Fatal(err)
			}
		}
	}
	victim := f.rt.Cluster().Servers()[0].ID()
	onVictim := f.rt.Directory().HostedOn(victim)
	if len(onVictim) == 0 {
		t.Fatal("test setup: victim hosts nothing")
	}

	// Periodic checkpoint, then the server fails.
	n, err := f.mgr.CheckpointServer(victim)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("checkpoint captured nothing")
	}
	report, err := f.mgr.RecoverServerFailure(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Lost) != len(onVictim) {
		t.Fatalf("lost = %v; want %v", report.Lost, onVictim)
	}
	if len(report.Restored) == 0 {
		t.Fatal("nothing restored from checkpoints")
	}
	if f.rt.Cluster().Size() != 1 {
		t.Fatalf("cluster size = %d; want 1", f.rt.Cluster().Size())
	}

	// Every room still works and checkpointed counts survived.
	for i, room := range f.rooms {
		res, err := f.rt.Submit(room, "get")
		if err != nil {
			t.Fatalf("room %d after recovery: %v", i, err)
		}
		if res.(int) != i+1 {
			t.Fatalf("room %d count = %v; want %d (checkpointed state)", i, res, i+1)
		}
		if srv, _ := f.rt.Directory().Locate(room); srv == victim {
			t.Fatalf("room %d still mapped to the failed server", i)
		}
	}
}

func TestRecoverServerFailureWithoutCheckpoints(t *testing.T) {
	f := newFixture(t, 2, 2)
	for _, room := range f.rooms {
		if _, err := f.rt.Submit(room, "inc"); err != nil {
			t.Fatal(err)
		}
	}
	victim := f.rt.Cluster().Servers()[0].ID()
	lost := f.rt.Directory().HostedOn(victim)

	report, err := f.mgr.RecoverServerFailure(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Reset) != len(lost) {
		t.Fatalf("reset = %v; want all %d lost contexts", report.Reset, len(lost))
	}
	// Un-checkpointed contexts restart from factory state: the counter is 0.
	for _, id := range report.Reset {
		res, err := f.rt.Submit(id, "get")
		if err != nil {
			t.Fatal(err)
		}
		if res.(int) != 0 {
			t.Fatalf("reset context count = %v; want 0", res)
		}
	}
}

func TestLatestSnapshotKeyPicksNewest(t *testing.T) {
	RegisterSnapshotType(&counterState{})
	f := newFixture(t, 1, 1)
	room := f.rooms[0]
	var lastKey string
	for i := 0; i < 3; i++ {
		if _, err := f.rt.Submit(room, "inc"); err != nil {
			t.Fatal(err)
		}
		k, _, err := f.mgr.Snapshot(room)
		if err != nil {
			t.Fatal(err)
		}
		lastKey = k
	}
	got, ok, err := f.mgr.latestSnapshotKey(room)
	if err != nil || !ok {
		t.Fatalf("latest = %v %v", ok, err)
	}
	if got != lastKey {
		t.Fatalf("latest = %q; want %q", got, lastKey)
	}
}
