package emanager

import (
	"testing"
)

// TestSnapshotSeqContinuesAboveStoreMax pins the cross-process sequence
// invariant: a fresh process (simulated by resetting the process-local
// floor) checkpointing into a store that already holds snapshots must
// continue above the store's maximum — otherwise failure recovery would
// pick a pre-migration checkpoint as "latest" and restore stale state.
func TestSnapshotSeqContinuesAboveStoreMax(t *testing.T) {
	RegisterSnapshotType(&counterState{})
	f := newFixture(t, 1, 1)
	room := f.rooms[0]
	if _, err := f.rt.Submit(room, "inc"); err != nil {
		t.Fatal(err)
	}
	var lastOld string
	for i := 0; i < 3; i++ {
		key, _, err := f.mgr.Snapshot(room)
		if err != nil {
			t.Fatal(err)
		}
		lastOld = key
	}

	// A new process starts with a zero local counter but the same store.
	snapSeqMu.Lock()
	snapSeqFloor = 0
	snapSeqMu.Unlock()

	if _, err := f.rt.Submit(room, "inc"); err != nil {
		t.Fatal(err)
	}
	keyNew, _, err := f.mgr.Snapshot(room)
	if err != nil {
		t.Fatal(err)
	}
	if snapshotSeqOf(keyNew) <= snapshotSeqOf(lastOld) {
		t.Fatalf("new process wrote seq %d under existing max %d",
			snapshotSeqOf(keyNew), snapshotSeqOf(lastOld))
	}
	latest, ok, err := f.mgr.latestSnapshotKey(room)
	if err != nil || !ok || latest != keyNew {
		t.Fatalf("latest = %q ok=%v err=%v, want %q", latest, ok, err, keyNew)
	}
	states, err := f.mgr.LoadSnapshot(latest)
	if err != nil {
		t.Fatal(err)
	}
	if st, found := states[room]; !found || st.(*counterState).N != 2 {
		t.Fatalf("latest snapshot state = %v, want counter 2", st)
	}
}

// TestCheckpointServerBatchesStoreWrites pins the batched checkpoint sweep:
// a server of N contexts costs one charged storage write (a single
// PutBatch), not N Puts — mirroring the migration engine's batched mapping
// publish.
func TestCheckpointServerBatchesStoreWrites(t *testing.T) {
	RegisterSnapshotType(&counterState{})
	f := newFixture(t, 1, 8)
	for _, room := range f.rooms {
		if _, err := f.rt.Submit(room, "inc"); err != nil {
			t.Fatal(err)
		}
	}
	victim := f.rt.Cluster().Servers()[0].ID()
	_, before := f.store.Stats()
	n, err := f.mgr.CheckpointServer(victim)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("checkpoint captured nothing")
	}
	_, after := f.store.Stats()
	if got := after - before; got != 1 {
		t.Fatalf("checkpoint sweep charged %d store writes, want 1 (batched)", got)
	}
	// Repeated sweeps prune the sequences they supersede: the keyspace
	// stays at one snapshot per context instead of growing per sweep, and
	// each later sweep costs at most two charged writes (fresh batch +
	// prune).
	for i := 0; i < 3; i++ {
		if _, err := f.mgr.CheckpointServer(victim); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := f.store.List("snapshot/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(f.rooms) {
		t.Fatalf("snapshot keyspace has %d keys after 4 sweeps, want %d (pruned)", len(keys), len(f.rooms))
	}
	_, afterSweeps := f.store.Stats()
	if got := afterSweeps - after; got != 3*2 {
		t.Fatalf("3 pruning sweeps charged %d writes, want 6 (batch+prune each)", got)
	}

	// The batched snapshots are individually loadable: every room restores.
	report, err := f.mgr.RecoverServerFailure(victim)
	if err == nil {
		t.Fatal("recovery with no surviving server should fail")
	}
	_ = report

	// Add a destination and verify restore-from-batched-checkpoint works.
	f.rt.Cluster().AddServer(f.rt.Cluster().Servers()[0].Profile())
	report, err = f.mgr.RecoverServerFailure(victim)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(report.Restored) != len(f.rooms) {
		t.Fatalf("restored %d contexts, want %d", len(report.Restored), len(f.rooms))
	}
	for i, room := range f.rooms {
		res, err := f.rt.Submit(room, "get")
		if err != nil {
			t.Fatalf("room %d: %v", i, err)
		}
		if res.(int) != 1 {
			t.Fatalf("room %d count = %v, want 1 (from batched checkpoint)", i, res)
		}
	}
}
