package emanager

import (
	"sort"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/ownership"
)

// Stats is the telemetry snapshot policies decide on.
type Stats struct {
	// RecentLatency is the runtime's EWMA of event latency.
	RecentLatency time.Duration
	// Servers lists per-server utilization and hosting counts.
	Servers []ServerStat
}

// ServerStat is one server's telemetry.
type ServerStat struct {
	ID          cluster.ServerID
	Profile     cluster.Profile
	Utilization float64
	Hosted      int
}

// Action is one elasticity decision.
type Action interface{ isAction() }

// AddServer provisions a new server ("scale out").
type AddServer struct {
	Profile cluster.Profile
}

// RemoveServer drains and releases a server ("scale in").
type RemoveServer struct {
	Server cluster.ServerID
}

// MigrateContext moves one context (To == 0 lets the manager pick the
// least-loaded destination).
type MigrateContext struct {
	Context ownership.ID
	From    cluster.ServerID
	To      cluster.ServerID
}

// Rebalance moves a fraction of the movable contexts off a server.
type Rebalance struct {
	Server   cluster.ServerID
	Fraction float64
}

func (AddServer) isAction()      {}
func (RemoveServer) isAction()   {}
func (MigrateContext) isAction() {}
func (Rebalance) isAction()      {}

// Policy decides elasticity actions from telemetry (§ 5.2: "AEON provides a
// simple API to define when the eManager must perform a migration").
type Policy interface {
	Decide(Stats) []Action
}

// Constraint can veto actions ("AEON allows programmers to define
// constraints on any attribute of the system similar to Tuba").
type Constraint interface {
	Allow(Action, *Manager) bool
}

// ConstraintFunc adapts a function to Constraint.
type ConstraintFunc func(Action, *Manager) bool

// Allow implements Constraint.
func (f ConstraintFunc) Allow(a Action, m *Manager) bool { return f(a, m) }

// MaxServers vetoes AddServer once the cluster reaches a size budget (the
// paper's "disallow a migration to a new host if total cost reaches some
// threshold").
func MaxServers(n int) Constraint {
	return ConstraintFunc(func(a Action, m *Manager) bool {
		if _, ok := a.(AddServer); ok {
			return m.Runtime().Cluster().Size() < n
		}
		return true
	})
}

// PinContexts vetoes migration of the given contexts.
func PinContexts(ids ...ownership.ID) Constraint {
	pinned := make(map[ownership.ID]bool, len(ids))
	for _, id := range ids {
		pinned[id] = true
	}
	return ConstraintFunc(func(a Action, m *Manager) bool {
		if mc, ok := a.(MigrateContext); ok {
			return !pinned[mc.Context]
		}
		return true
	})
}

// ResourceUtilizationPolicy is the paper's first built-in policy: "a
// programmer defines a lower and upper bound of a resource utilization
// along with an activation threshold. When a resource in a server reaches
// its upper bound plus a threshold the eManager triggers a migration."
type ResourceUtilizationPolicy struct {
	// Lower and Upper bound target utilization; Threshold is the
	// activation slack.
	Lower, Upper, Threshold float64
	// Fraction of movable contexts shed when overloaded.
	Fraction float64
}

// Decide implements Policy.
func (p ResourceUtilizationPolicy) Decide(s Stats) []Action {
	frac := p.Fraction
	if frac == 0 {
		frac = 0.5
	}
	var actions []Action
	for _, srv := range s.Servers {
		if srv.Utilization > p.Upper+p.Threshold && srv.Hosted > 0 {
			actions = append(actions, Rebalance{Server: srv.ID, Fraction: frac})
		}
	}
	return actions
}

// ServerContentionPolicy is the paper's second built-in policy: "a
// programmer defines the total number of acceptable contexts per server.
// Once a server reaches its maximum, the eManager triggers a migration."
type ServerContentionPolicy struct {
	MaxContexts int
}

// Decide implements Policy.
func (p ServerContentionPolicy) Decide(s Stats) []Action {
	var actions []Action
	for _, srv := range s.Servers {
		if srv.Hosted > p.MaxContexts {
			over := srv.Hosted - p.MaxContexts
			actions = append(actions, Rebalance{
				Server:   srv.ID,
				Fraction: float64(over) / float64(srv.Hosted),
			})
		}
	}
	return actions
}

// SLAPolicy scales the cluster out when recent request latency exceeds the
// SLA and back in when it is comfortably below (§ 6.2: "we set the SLA for
// clients requests to 10ms. AEON automatically scales out if it takes more
// than 10ms to handle a client request").
type SLAPolicy struct {
	// Target is the SLA latency.
	Target time.Duration
	// Profile of servers to add.
	Profile cluster.Profile
	// ScaleInBelow scales in when latency is under this fraction of Target
	// (default 0.3).
	ScaleInBelow float64
	// MinServers floors scale-in.
	MinServers int
	// Cooldown between scaling actions (default: 2 poll rounds worth).
	Cooldown time.Duration
	// MaxStep caps how many servers a single breach adds; the policy
	// scales out proportionally to the breach ratio (latency/Target), so a
	// deep breach provisions several servers at once (default 1).
	MaxStep int

	lastAction time.Time
}

// Decide implements Policy.
func (p *SLAPolicy) Decide(s Stats) []Action {
	cool := p.Cooldown
	if cool == 0 {
		cool = time.Second
	}
	if time.Since(p.lastAction) < cool {
		return nil
	}
	scaleIn := p.ScaleInBelow
	if scaleIn == 0 {
		scaleIn = 0.3
	}
	minServers := p.MinServers
	if minServers == 0 {
		minServers = 1
	}

	// Scale out proactively: trigger at 80% of the SLA (the paper's
	// "upper bound plus an activation threshold" applied to latency), and
	// proportionally to the breach depth.
	if s.RecentLatency > time.Duration(float64(p.Target)*0.8) {
		p.lastAction = time.Now()
		maxStep := p.MaxStep
		if maxStep == 0 {
			maxStep = 1
		}
		step := int(2 * float64(s.RecentLatency) / float64(p.Target))
		if step < 1 {
			step = 1
		}
		if step > maxStep {
			step = maxStep
		}
		var actions []Action
		for i := 0; i < step; i++ {
			actions = append(actions, AddServer{Profile: p.Profile})
		}
		// Shed load from the hottest servers onto the newcomers.
		byUtil := append([]ServerStat(nil), s.Servers...)
		sort.Slice(byUtil, func(i, j int) bool { return byUtil[i].Utilization > byUtil[j].Utilization })
		for i := 0; i < step && i < len(byUtil); i++ {
			if byUtil[i].Hosted > 1 {
				actions = append(actions, Rebalance{Server: byUtil[i].ID, Fraction: 0.5})
			}
		}
		return actions
	}
	if s.RecentLatency > 0 && s.RecentLatency < time.Duration(float64(p.Target)*scaleIn) &&
		len(s.Servers) > minServers {
		// Scale in: drain the emptiest server.
		idle := emptiest(s.Servers)
		if idle != nil {
			p.lastAction = time.Now()
			return []Action{RemoveServer{Server: idle.ID}}
		}
	}
	return nil
}

func hottest(servers []ServerStat) *ServerStat {
	var best *ServerStat
	for i := range servers {
		if best == nil || servers[i].Utilization > best.Utilization {
			best = &servers[i]
		}
	}
	return best
}

func emptiest(servers []ServerStat) *ServerStat {
	var best *ServerStat
	for i := range servers {
		if best == nil || servers[i].Hosted < best.Hosted {
			best = &servers[i]
		}
	}
	return best
}
