package emanager

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"aeon/internal/cluster"
)

// This file implements the "fine-grained elasticity policy language" the
// paper lists as future work (§ 8: "define a fine-grained elasticity policy
// language to allow the programmer control over the locality of contexts
// and usage of resources").
//
// The language is line-oriented; each line is one rule:
//
//	when latency > 10ms add server m1.small
//	when latency > 25ms add server m1.large
//	when latency < 2ms remove server
//	when util > 0.85 rebalance 0.5
//	when hosted > 40 rebalance 0.25
//	max servers 32
//	min servers 4
//	cooldown 2s
//
// Conditions reference the manager's telemetry: `latency` (the runtime's
// recent event latency), `util` (any server's utilization), and `hosted`
// (any server's context count). `util`/`hosted` rules act on the servers
// that match; `latency` rules act cluster-wide. Comments start with '#'.

// ErrPolicySyntax is returned for unparseable policy sources.
var ErrPolicySyntax = errors.New("emanager: policy syntax error")

type dslMetric int

const (
	metricLatency dslMetric = iota + 1
	metricUtil
	metricHosted
)

type dslCmp int

const (
	cmpGT dslCmp = iota + 1
	cmpLT
)

type dslActionKind int

const (
	actAddServer dslActionKind = iota + 1
	actRemoveServer
	actRebalance
)

type dslRule struct {
	metric    dslMetric
	cmp       dslCmp
	threshold float64 // latency in seconds, util fraction, hosted count
	action    dslActionKind
	profile   cluster.Profile
	fraction  float64
	line      string
}

// DSLPolicy is a compiled policy program; it implements Policy.
type DSLPolicy struct {
	rules      []dslRule
	maxServers int
	minServers int
	cooldown   time.Duration
	lastAction time.Time
}

var _ Policy = (*DSLPolicy)(nil)

// CompilePolicy parses a policy program into a DSLPolicy.
func CompilePolicy(src string) (*DSLPolicy, error) {
	p := &DSLPolicy{minServers: 1, cooldown: time.Second}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := p.compileLine(line); err != nil {
			return nil, fmt.Errorf("line %d %q: %w", lineNo+1, line, err)
		}
	}
	return p, nil
}

// MustCompilePolicy is CompilePolicy that panics on error (program
// initialization).
func MustCompilePolicy(src string) *DSLPolicy {
	p, err := CompilePolicy(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *DSLPolicy) compileLine(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "when":
		return p.compileWhen(fields[1:], line)
	case "max":
		if len(fields) != 3 || fields[1] != "servers" {
			return fmt.Errorf("want 'max servers N': %w", ErrPolicySyntax)
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 1 {
			return fmt.Errorf("bad server count %q: %w", fields[2], ErrPolicySyntax)
		}
		p.maxServers = n
		return nil
	case "min":
		if len(fields) != 3 || fields[1] != "servers" {
			return fmt.Errorf("want 'min servers N': %w", ErrPolicySyntax)
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 1 {
			return fmt.Errorf("bad server count %q: %w", fields[2], ErrPolicySyntax)
		}
		p.minServers = n
		return nil
	case "cooldown":
		if len(fields) != 2 {
			return fmt.Errorf("want 'cooldown D': %w", ErrPolicySyntax)
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			return fmt.Errorf("bad duration %q: %w", fields[1], ErrPolicySyntax)
		}
		p.cooldown = d
		return nil
	default:
		return fmt.Errorf("unknown statement %q: %w", fields[0], ErrPolicySyntax)
	}
}

func (p *DSLPolicy) compileWhen(fields []string, line string) error {
	// <metric> <cmp> <value> <action...>
	if len(fields) < 4 {
		return fmt.Errorf("incomplete rule: %w", ErrPolicySyntax)
	}
	var rule dslRule
	rule.line = line
	switch fields[0] {
	case "latency":
		rule.metric = metricLatency
	case "util":
		rule.metric = metricUtil
	case "hosted":
		rule.metric = metricHosted
	default:
		return fmt.Errorf("unknown metric %q: %w", fields[0], ErrPolicySyntax)
	}
	switch fields[1] {
	case ">":
		rule.cmp = cmpGT
	case "<":
		rule.cmp = cmpLT
	default:
		return fmt.Errorf("unknown comparison %q: %w", fields[1], ErrPolicySyntax)
	}
	switch rule.metric {
	case metricLatency:
		d, err := time.ParseDuration(fields[2])
		if err != nil {
			return fmt.Errorf("bad latency %q: %w", fields[2], ErrPolicySyntax)
		}
		rule.threshold = d.Seconds()
	default:
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return fmt.Errorf("bad threshold %q: %w", fields[2], ErrPolicySyntax)
		}
		rule.threshold = v
	}

	action := fields[3:]
	switch action[0] {
	case "add":
		if len(action) != 3 || action[1] != "server" {
			return fmt.Errorf("want 'add server PROFILE': %w", ErrPolicySyntax)
		}
		profile, err := profileByName(action[2])
		if err != nil {
			return err
		}
		rule.action = actAddServer
		rule.profile = profile
	case "remove":
		if len(action) != 2 || action[1] != "server" {
			return fmt.Errorf("want 'remove server': %w", ErrPolicySyntax)
		}
		rule.action = actRemoveServer
	case "rebalance":
		if len(action) != 2 {
			return fmt.Errorf("want 'rebalance FRACTION': %w", ErrPolicySyntax)
		}
		f, err := strconv.ParseFloat(action[1], 64)
		if err != nil || f <= 0 || f > 1 {
			return fmt.Errorf("bad fraction %q: %w", action[1], ErrPolicySyntax)
		}
		rule.action = actRebalance
		rule.fraction = f
	default:
		return fmt.Errorf("unknown action %q: %w", action[0], ErrPolicySyntax)
	}
	p.rules = append(p.rules, rule)
	return nil
}

func profileByName(name string) (cluster.Profile, error) {
	switch name {
	case "m3.large":
		return cluster.M3Large, nil
	case "m1.large":
		return cluster.M1Large, nil
	case "m1.medium":
		return cluster.M1Medium, nil
	case "m1.small":
		return cluster.M1Small, nil
	default:
		return cluster.Profile{}, fmt.Errorf("unknown profile %q: %w", name, ErrPolicySyntax)
	}
}

// Rules returns the source lines of the compiled rules (introspection).
func (p *DSLPolicy) Rules() []string {
	out := make([]string, len(p.rules))
	for i, r := range p.rules {
		out[i] = r.line
	}
	return out
}

func (r dslRule) holds(value float64) bool {
	if r.cmp == cmpGT {
		return value > r.threshold
	}
	return value < r.threshold
}

// Decide implements Policy: the first firing rule wins per round.
func (p *DSLPolicy) Decide(s Stats) []Action {
	if time.Since(p.lastAction) < p.cooldown {
		return nil
	}
	for _, r := range p.rules {
		var actions []Action
		switch r.metric {
		case metricLatency:
			if s.RecentLatency > 0 && r.holds(s.RecentLatency.Seconds()) {
				actions = p.clusterAction(r, s)
			}
		case metricUtil:
			for _, srv := range s.Servers {
				if r.holds(srv.Utilization) {
					actions = append(actions, p.serverAction(r, srv, s)...)
				}
			}
		case metricHosted:
			for _, srv := range s.Servers {
				if r.holds(float64(srv.Hosted)) {
					actions = append(actions, p.serverAction(r, srv, s)...)
				}
			}
		}
		if len(actions) > 0 {
			p.lastAction = time.Now()
			return actions
		}
	}
	return nil
}

func (p *DSLPolicy) clusterAction(r dslRule, s Stats) []Action {
	switch r.action {
	case actAddServer:
		if p.maxServers > 0 && len(s.Servers) >= p.maxServers {
			return nil
		}
		actions := []Action{AddServer{Profile: r.profile}}
		if hot := hottest(s.Servers); hot != nil && hot.Hosted > 1 {
			actions = append(actions, Rebalance{Server: hot.ID, Fraction: 0.5})
		}
		return actions
	case actRemoveServer:
		if len(s.Servers) <= p.minServers {
			return nil
		}
		if idle := emptiest(s.Servers); idle != nil {
			return []Action{RemoveServer{Server: idle.ID}}
		}
	case actRebalance:
		if hot := hottest(s.Servers); hot != nil && hot.Hosted > 0 {
			return []Action{Rebalance{Server: hot.ID, Fraction: r.fraction}}
		}
	}
	return nil
}

func (p *DSLPolicy) serverAction(r dslRule, srv ServerStat, s Stats) []Action {
	switch r.action {
	case actAddServer:
		if p.maxServers > 0 && len(s.Servers) >= p.maxServers {
			return nil
		}
		return []Action{AddServer{Profile: r.profile}, Rebalance{Server: srv.ID, Fraction: 0.5}}
	case actRemoveServer:
		if len(s.Servers) <= p.minServers {
			return nil
		}
		return []Action{RemoveServer{Server: srv.ID}}
	case actRebalance:
		if srv.Hosted == 0 {
			return nil
		}
		return []Action{Rebalance{Server: srv.ID, Fraction: r.fraction}}
	}
	return nil
}
