package emanager

import (
	"errors"
	"sync"
	"testing"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/ownership"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

type counterState struct {
	N   int
	Pad []byte
}

func (s *counterState) StateBytes() int { return 64 + len(s.Pad) }

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.New()
	room := s.MustDeclareClass("Room", func() any { return &counterState{} })
	room.MustDeclareMethod("inc", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*counterState)
		st.N++
		return st.N, nil
	})
	room.MustDeclareMethod("get", func(call schema.Call, args []any) (any, error) {
		return call.State().(*counterState).N, nil
	}, schema.RO())
	item := s.MustDeclareClass("Item", func() any { return &counterState{} })
	item.MustDeclareMethod("inc", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*counterState)
		st.N++
		return st.N, nil
	})
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	return s
}

type fixture struct {
	rt    *core.Runtime
	mgr   *Manager
	store *cloudstore.Store
	rooms []ownership.ID
}

func newFixture(t *testing.T, nServers, nRooms int) *fixture {
	t.Helper()
	s := testSchema(t)
	cl := cluster.New(transport.NullNetwork{})
	for i := 0; i < nServers; i++ {
		cl.AddServer(cluster.M3Large)
	}
	rt, err := core.New(s, ownership.NewGraph(), cl, core.Config{AcquireTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	store := cloudstore.New()
	cfg := DefaultConfig()
	cfg.Delta = time.Millisecond
	cfg.ProtocolWork = 0
	mgr := New(rt, store, cfg)
	f := &fixture{rt: rt, mgr: mgr, store: store}
	servers := cl.Servers()
	for i := 0; i < nRooms; i++ {
		id, err := rt.CreateContextOn(servers[i%len(servers)].ID(), "Room")
		if err != nil {
			t.Fatal(err)
		}
		f.rooms = append(f.rooms, id)
	}
	return f
}

func (f *fixture) otherServer(t *testing.T, not cluster.ServerID) cluster.ServerID {
	t.Helper()
	for _, s := range f.rt.Cluster().Servers() {
		if s.ID() != not {
			return s.ID()
		}
	}
	t.Fatal("no other server")
	return 0
}

func TestMigrateMovesContext(t *testing.T) {
	f := newFixture(t, 2, 1)
	room := f.rooms[0]
	from, _ := f.rt.Directory().Locate(room)
	to := f.otherServer(t, from)

	if _, err := f.rt.Submit(room, "inc"); err != nil {
		t.Fatal(err)
	}
	if err := f.mgr.Migrate(room, to); err != nil {
		t.Fatal(err)
	}
	got, _ := f.rt.Directory().Locate(room)
	if got != to {
		t.Fatalf("host = %v; want %v", got, to)
	}
	// State survived and events still run.
	res, err := f.rt.Submit(room, "inc")
	if err != nil {
		t.Fatal(err)
	}
	if res.(int) != 2 {
		t.Fatalf("count = %v; want 2 (state preserved)", res)
	}
	if f.mgr.Migrations.Value() != 1 {
		t.Fatalf("migrations = %d", f.mgr.Migrations.Value())
	}
	// WAL cleaned up.
	keys, _ := f.store.List("wal/")
	if len(keys) != 0 {
		t.Fatalf("wal keys left: %v", keys)
	}
}

func TestMigrateToSameServerIsNoop(t *testing.T) {
	f := newFixture(t, 2, 1)
	from, _ := f.rt.Directory().Locate(f.rooms[0])
	if err := f.mgr.Migrate(f.rooms[0], from); err != nil {
		t.Fatal(err)
	}
	if f.mgr.Migrations.Value() != 0 {
		t.Fatal("no-op migration should not count")
	}
}

// TestMigrationDoesNotDropEvents hammers a context with events while it
// migrates back and forth; every event must succeed and the final count
// must equal the number of incs (the § 5.2 correctness property).
func TestMigrationDoesNotDropEvents(t *testing.T) {
	f := newFixture(t, 2, 1)
	room := f.rooms[0]
	const incs = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < incs; i++ {
			if _, err := f.rt.Submit(room, "inc"); err != nil {
				t.Errorf("inc during migration: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 6; i++ {
		from, _ := f.rt.Directory().Locate(room)
		if err := f.mgr.Migrate(room, f.otherServer(t, from)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	res, err := f.rt.Submit(room, "get")
	if err != nil {
		t.Fatal(err)
	}
	if res.(int) != incs {
		t.Fatalf("count = %v; want %d", res, incs)
	}
}

func TestMigrateGroupKeepsLocality(t *testing.T) {
	f := newFixture(t, 2, 1)
	room := f.rooms[0]
	from, _ := f.rt.Directory().Locate(room)
	item1, _ := f.rt.CreateContext("Item", room)
	item2, _ := f.rt.CreateContext("Item", room)
	to := f.otherServer(t, from)

	if err := f.mgr.MigrateGroup(room, to); err != nil {
		t.Fatal(err)
	}
	for _, id := range []ownership.ID{room, item1, item2} {
		if srv, _ := f.rt.Directory().Locate(id); srv != to {
			t.Fatalf("%v on %v; want %v (group locality)", id, srv, to)
		}
	}
}

func TestRecoverFinishesCrashedMigration(t *testing.T) {
	for step := 1; step <= 3; step++ {
		f := newFixture(t, 2, 1)
		room := f.rooms[0]
		from, _ := f.rt.Directory().Locate(room)
		to := f.otherServer(t, from)

		err := f.mgr.migrate(room, to, step)
		if !errors.Is(err, errSimulatedCrash) {
			t.Fatalf("step %d: err = %v; want simulated crash", step, err)
		}
		// A WAL record must be present.
		keys, _ := f.store.List("wal/")
		if len(keys) != 1 {
			t.Fatalf("step %d: wal keys = %v", step, keys)
		}
		// A new manager over the same store finishes the job.
		mgr2 := New(f.rt, f.store, f.mgr.cfg)
		if err := mgr2.Recover(); err != nil {
			t.Fatalf("step %d: recover: %v", step, err)
		}
		if got, _ := f.rt.Directory().Locate(room); got != to {
			t.Fatalf("step %d: host = %v; want %v after recovery", step, got, to)
		}
		keys, _ = f.store.List("wal/")
		if len(keys) != 0 {
			t.Fatalf("step %d: wal not cleaned: %v", step, keys)
		}
		if _, err := f.rt.Submit(room, "inc"); err != nil {
			t.Fatalf("step %d: post-recovery event: %v", step, err)
		}
	}
}

func TestDrainAndRemove(t *testing.T) {
	f := newFixture(t, 2, 4)
	victim := f.rt.Cluster().Servers()[0].ID()
	if err := f.mgr.DrainAndRemove(victim); err != nil {
		t.Fatal(err)
	}
	if f.rt.Cluster().Size() != 1 {
		t.Fatalf("size = %d; want 1", f.rt.Cluster().Size())
	}
	for _, room := range f.rooms {
		if srv, _ := f.rt.Directory().Locate(room); srv == victim {
			t.Fatalf("%v still on removed server", room)
		}
		if _, err := f.rt.Submit(room, "inc"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestApplyAddServerAndConstraint(t *testing.T) {
	f := newFixture(t, 1, 0)
	if err := f.mgr.Apply(AddServer{Profile: cluster.M1Small}); err != nil {
		t.Fatal(err)
	}
	if f.rt.Cluster().Size() != 2 {
		t.Fatalf("size = %d; want 2", f.rt.Cluster().Size())
	}
	f.mgr.AddConstraint(MaxServers(2))
	if err := f.mgr.Apply(AddServer{Profile: cluster.M1Small}); !errors.Is(err, ErrVetoed) {
		t.Fatalf("err = %v; want ErrVetoed", err)
	}
}

func TestPinConstraint(t *testing.T) {
	f := newFixture(t, 2, 1)
	room := f.rooms[0]
	from, _ := f.rt.Directory().Locate(room)
	f.mgr.AddConstraint(PinContexts(room))
	err := f.mgr.Apply(MigrateContext{Context: room, From: from})
	if !errors.Is(err, ErrVetoed) {
		t.Fatalf("err = %v; want ErrVetoed", err)
	}
}

func TestServerContentionPolicy(t *testing.T) {
	f := newFixture(t, 2, 0)
	servers := f.rt.Cluster().Servers()
	// Crowd server 0 with 4 rooms; server 1 has none.
	for i := 0; i < 4; i++ {
		if _, err := f.rt.CreateContextOn(servers[0].ID(), "Room"); err != nil {
			t.Fatal(err)
		}
	}
	f.mgr.AddPolicy(ServerContentionPolicy{MaxContexts: 2})
	f.mgr.Evaluate()
	if h := servers[0].Hosted(); h > 2 {
		t.Fatalf("server 0 hosts %d; want ≤2 after contention policy", h)
	}
	if h := servers[1].Hosted(); h == 0 {
		t.Fatal("server 1 should have received contexts")
	}
}

func TestSLAPolicyScalesOut(t *testing.T) {
	f := newFixture(t, 1, 2)
	p := &SLAPolicy{Target: time.Millisecond, Profile: cluster.M1Small, Cooldown: time.Nanosecond}
	actions := p.Decide(Stats{RecentLatency: 5 * time.Millisecond, Servers: f.mgr.CollectStats().Servers})
	if len(actions) == 0 {
		t.Fatal("SLA breach should produce actions")
	}
	if _, ok := actions[0].(AddServer); !ok {
		t.Fatalf("first action = %T; want AddServer", actions[0])
	}
}

func TestSLAPolicyScalesIn(t *testing.T) {
	f := newFixture(t, 3, 0)
	p := &SLAPolicy{Target: 10 * time.Millisecond, Profile: cluster.M1Small,
		MinServers: 2, Cooldown: time.Nanosecond}
	stats := Stats{RecentLatency: time.Millisecond, Servers: f.mgr.CollectStats().Servers}
	actions := p.Decide(stats)
	if len(actions) != 1 {
		t.Fatalf("actions = %v; want one RemoveServer", actions)
	}
	if _, ok := actions[0].(RemoveServer); !ok {
		t.Fatalf("action = %T; want RemoveServer", actions[0])
	}
	// At the floor, no scale-in.
	p2 := &SLAPolicy{Target: 10 * time.Millisecond, Profile: cluster.M1Small,
		MinServers: 3, Cooldown: time.Nanosecond}
	if actions := p2.Decide(stats); len(actions) != 0 {
		t.Fatalf("actions = %v; want none at MinServers floor", actions)
	}
}

func TestResourceUtilizationPolicy(t *testing.T) {
	p := ResourceUtilizationPolicy{Lower: 0.2, Upper: 0.8, Threshold: 0.05}
	stats := Stats{Servers: []ServerStat{
		{ID: 1, Utilization: 0.95, Hosted: 4},
		{ID: 2, Utilization: 0.1, Hosted: 0},
	}}
	actions := p.Decide(stats)
	if len(actions) != 1 {
		t.Fatalf("actions = %v; want one Rebalance", actions)
	}
	rb, ok := actions[0].(Rebalance)
	if !ok || rb.Server != 1 {
		t.Fatalf("action = %#v; want Rebalance{Server:1}", actions[0])
	}
}

func TestPolicyLoopStartStop(t *testing.T) {
	f := newFixture(t, 1, 0)
	f.mgr.cfg.PollInterval = 5 * time.Millisecond
	f.mgr.Start()
	f.mgr.Start() // idempotent
	time.Sleep(20 * time.Millisecond)
	f.mgr.Stop()
	f.mgr.Stop() // idempotent
}

func TestSnapshotAndRestore(t *testing.T) {
	f := newFixture(t, 2, 1)
	RegisterSnapshotType(&counterState{})
	room := f.rooms[0]
	item, _ := f.rt.CreateContext("Item", room)
	for i := 0; i < 3; i++ {
		if _, err := f.rt.Submit(room, "inc"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.rt.Submit(item, "inc"); err != nil {
		t.Fatal(err)
	}

	key, n, err := f.mgr.Snapshot(room)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("captured %d contexts; want 2", n)
	}

	// Mutate, then restore.
	for i := 0; i < 5; i++ {
		if _, err := f.rt.Submit(room, "inc"); err != nil {
			t.Fatal(err)
		}
	}
	states, err := f.mgr.LoadSnapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.mgr.Restore(states); err != nil {
		t.Fatal(err)
	}
	res, err := f.rt.Submit(room, "get")
	if err != nil {
		t.Fatal(err)
	}
	if res.(int) != 3 {
		t.Fatalf("restored count = %v; want 3", res)
	}
}

func TestSnapshotSkipsNilCheckpoint(t *testing.T) {
	// A state whose Checkpointer returns nil is skipped (§ 5.3).
	s := schema.New()
	cls := s.MustDeclareClass("Ephemeral", func() any { return &ephemeralState{} })
	cls.MustDeclareMethod("noop", func(call schema.Call, args []any) (any, error) { return nil, nil })
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(transport.NullNetwork{})
	cl.AddServer(cluster.M3Large)
	rt, _ := core.New(s, ownership.NewGraph(), cl, core.Config{})
	defer rt.Close()
	mgr := New(rt, cloudstore.New(), DefaultConfig())
	id, _ := rt.CreateContext("Ephemeral")
	_, n, err := mgr.Snapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("captured %d contexts; want 0 (nil checkpoint skipped)", n)
	}
}

type ephemeralState struct{}

func (*ephemeralState) CheckpointState() any { return nil }

func TestSnapshotIsConsistentUnderLoad(t *testing.T) {
	// Snapshot while events mutate room and item: the snapshot must never
	// observe the room counter ahead of... here both inc'd in one event.
	s := schema.New()
	pair := s.MustDeclareClass("Pair", func() any { return &counterState{} })
	s.MustDeclareClass("Half", func() any { return &counterState{} }).
		MustDeclareMethod("inc", func(call schema.Call, args []any) (any, error) {
			call.State().(*counterState).N++
			return nil, nil
		})
	pair.MustDeclareMethod("incBoth", func(call schema.Call, args []any) (any, error) {
		halves, _ := call.Children("Half")
		for _, h := range halves {
			if _, err := call.Sync(h, "inc"); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}, schema.MayCall("Half", "inc"))
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(transport.NullNetwork{})
	cl.AddServer(cluster.M3Large)
	rt, _ := core.New(s, ownership.NewGraph(), cl, core.Config{AcquireTimeout: 10 * time.Second})
	defer rt.Close()
	RegisterSnapshotType(&counterState{})
	mgr := New(rt, cloudstore.New(), DefaultConfig())

	pairID, _ := rt.CreateContext("Pair")
	h1, _ := rt.CreateContext("Half", pairID)
	h2, _ := rt.CreateContext("Half", pairID)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := rt.Submit(pairID, "incBoth"); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for i := 0; i < 10; i++ {
		key, _, err := mgr.Snapshot(pairID)
		if err != nil {
			t.Fatal(err)
		}
		states, err := mgr.LoadSnapshot(key)
		if err != nil {
			t.Fatal(err)
		}
		a := states[h1].(*counterState).N
		b := states[h2].(*counterState).N
		if a != b {
			t.Fatalf("inconsistent snapshot: halves %d vs %d", a, b)
		}
	}
	close(stop)
	wg.Wait()
}
