package emanager

import (
	"errors"
	"sync"
	"testing"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/migration"
	"aeon/internal/ownership"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

type counterState struct {
	N   int
	Pad []byte
}

func (s *counterState) StateBytes() int { return 64 + len(s.Pad) }

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.New()
	room := s.MustDeclareClass("Room", func() any { return &counterState{} })
	room.MustDeclareMethod("inc", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*counterState)
		st.N++
		return st.N, nil
	})
	room.MustDeclareMethod("get", func(call schema.Call, args []any) (any, error) {
		return call.State().(*counterState).N, nil
	}, schema.RO())
	item := s.MustDeclareClass("Item", func() any { return &counterState{} })
	item.MustDeclareMethod("inc", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*counterState)
		st.N++
		return st.N, nil
	})
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	return s
}

type fixture struct {
	rt    *core.Runtime
	mgr   *Manager
	store *cloudstore.Store
	rooms []ownership.ID
}

func newFixture(t *testing.T, nServers, nRooms int) *fixture {
	t.Helper()
	s := testSchema(t)
	cl := cluster.New(transport.NullNetwork{})
	for i := 0; i < nServers; i++ {
		cl.AddServer(cluster.M3Large)
	}
	rt, err := core.New(s, ownership.NewGraph(), cl, core.Config{AcquireTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	store := cloudstore.New()
	cfg := DefaultConfig()
	cfg.Delta = time.Millisecond
	cfg.ProtocolWork = 0
	mgr := New(rt, store, cfg)
	f := &fixture{rt: rt, mgr: mgr, store: store}
	servers := cl.Servers()
	for i := 0; i < nRooms; i++ {
		id, err := rt.CreateContextOn(servers[i%len(servers)].ID(), "Room")
		if err != nil {
			t.Fatal(err)
		}
		f.rooms = append(f.rooms, id)
	}
	return f
}

func (f *fixture) otherServer(t *testing.T, not cluster.ServerID) cluster.ServerID {
	t.Helper()
	for _, s := range f.rt.Cluster().Servers() {
		if s.ID() != not {
			return s.ID()
		}
	}
	t.Fatal("no other server")
	return 0
}

func TestMigrateMovesContext(t *testing.T) {
	f := newFixture(t, 2, 1)
	room := f.rooms[0]
	from, _ := f.rt.Directory().Locate(room)
	to := f.otherServer(t, from)

	if _, err := f.rt.Submit(room, "inc"); err != nil {
		t.Fatal(err)
	}
	if err := f.mgr.Migrate(room, to); err != nil {
		t.Fatal(err)
	}
	got, _ := f.rt.Directory().Locate(room)
	if got != to {
		t.Fatalf("host = %v; want %v", got, to)
	}
	// State survived and events still run.
	res, err := f.rt.Submit(room, "inc")
	if err != nil {
		t.Fatal(err)
	}
	if res.(int) != 2 {
		t.Fatalf("count = %v; want 2 (state preserved)", res)
	}
	if f.mgr.Migrations.Value() != 1 {
		t.Fatalf("migrations = %d", f.mgr.Migrations.Value())
	}
	// WAL cleaned up.
	keys, _ := f.store.List("wal/")
	if len(keys) != 0 {
		t.Fatalf("wal keys left: %v", keys)
	}
}

func TestMigrateToSameServerIsNoop(t *testing.T) {
	f := newFixture(t, 2, 1)
	from, _ := f.rt.Directory().Locate(f.rooms[0])
	if err := f.mgr.Migrate(f.rooms[0], from); err != nil {
		t.Fatal(err)
	}
	if f.mgr.Migrations.Value() != 0 {
		t.Fatal("no-op migration should not count")
	}
}

// TestMigrationDoesNotDropEvents hammers a context with events while it
// migrates back and forth; every event must succeed and the final count
// must equal the number of incs (the § 5.2 correctness property).
func TestMigrationDoesNotDropEvents(t *testing.T) {
	f := newFixture(t, 2, 1)
	room := f.rooms[0]
	const incs = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < incs; i++ {
			if _, err := f.rt.Submit(room, "inc"); err != nil {
				t.Errorf("inc during migration: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 6; i++ {
		from, _ := f.rt.Directory().Locate(room)
		if err := f.mgr.Migrate(room, f.otherServer(t, from)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	res, err := f.rt.Submit(room, "get")
	if err != nil {
		t.Fatal(err)
	}
	if res.(int) != incs {
		t.Fatalf("count = %v; want %d", res, incs)
	}
}

func TestMigrateGroupKeepsLocality(t *testing.T) {
	f := newFixture(t, 2, 1)
	room := f.rooms[0]
	from, _ := f.rt.Directory().Locate(room)
	item1, _ := f.rt.CreateContext("Item", room)
	item2, _ := f.rt.CreateContext("Item", room)
	to := f.otherServer(t, from)

	if err := f.mgr.MigrateGroup(room, to); err != nil {
		t.Fatal(err)
	}
	for _, id := range []ownership.ID{room, item1, item2} {
		if srv, _ := f.rt.Directory().Locate(id); srv != to {
			t.Fatalf("%v on %v; want %v (group locality)", id, srv, to)
		}
	}
}

var errSimulatedCrash = errors.New("emanager_test: simulated crash")

// crashAfter aborts the engine's group migration after the given journaled
// step, simulating an eManager crash that leaves the WAL behind.
func crashAfter(mgr *Manager, step migration.Step) {
	mgr.Engine().Hooks.AfterStep = func(_ ownership.ID, s migration.Step) error {
		if s == step {
			return errSimulatedCrash
		}
		return nil
	}
}

// TestRecoverFinishesCrashedMigration crashes a group migration after every
// journaled WAL step; a fresh manager over the same store must converge the
// group onto the destination and only then clear the journal.
func TestRecoverFinishesCrashedMigration(t *testing.T) {
	for step := migration.StepPrepared; step <= migration.StepTransferred; step++ {
		f := newFixture(t, 2, 1)
		room := f.rooms[0]
		item, err := f.rt.CreateContext("Item", room)
		if err != nil {
			t.Fatal(err)
		}
		from, _ := f.rt.Directory().Locate(room)
		to := f.otherServer(t, from)

		crashAfter(f.mgr, step)
		err = f.mgr.MigrateGroup(room, to)
		if !errors.Is(err, errSimulatedCrash) {
			t.Fatalf("step %d: err = %v; want simulated crash", step, err)
		}
		// A WAL record must be present.
		keys, _ := f.store.List("wal/")
		if len(keys) != 1 {
			t.Fatalf("step %d: wal keys = %v", step, keys)
		}
		// A new manager over the same store finishes the job — the whole
		// group, not just the root.
		mgr2 := New(f.rt, f.store, f.mgr.cfg)
		if err := mgr2.Recover(); err != nil {
			t.Fatalf("step %d: recover: %v", step, err)
		}
		for _, id := range []ownership.ID{room, item} {
			if got, _ := f.rt.Directory().Locate(id); got != to {
				t.Fatalf("step %d: %v on %v; want %v after recovery", step, id, got, to)
			}
		}
		keys, _ = f.store.List("wal/")
		if len(keys) != 0 {
			t.Fatalf("step %d: wal not cleaned: %v", step, keys)
		}
		if _, err := f.rt.Submit(room, "inc"); err != nil {
			t.Fatalf("step %d: post-recovery event: %v", step, err)
		}
	}
}

// TestRecoverSurvivesCrashDuringRecovery pins the journal-ordering fix: the
// WAL record must be deleted only after the re-run migration converges. A
// recovery attempt that itself crashes mid-protocol must leave the journal
// entry behind so the next Recover can finish the job; the old code deleted
// the record first and orphaned the in-flight migration.
func TestRecoverSurvivesCrashDuringRecovery(t *testing.T) {
	f := newFixture(t, 2, 1)
	room := f.rooms[0]
	from, _ := f.rt.Directory().Locate(room)
	to := f.otherServer(t, from)

	// First crash: migration dies after the stop step.
	crashAfter(f.mgr, migration.StepStopped)
	if err := f.mgr.MigrateGroup(room, to); !errors.Is(err, errSimulatedCrash) {
		t.Fatalf("err = %v; want simulated crash", err)
	}

	// Second manager crashes again *during recovery*, this time after the
	// remap step of the re-run.
	mgr2 := New(f.rt, f.store, f.mgr.cfg)
	crashAfter(mgr2, migration.StepRemapped)
	if err := mgr2.Recover(); !errors.Is(err, errSimulatedCrash) {
		t.Fatalf("recover err = %v; want simulated crash", err)
	}
	keys, _ := f.store.List("wal/")
	if len(keys) != 1 {
		t.Fatalf("wal lost during crashed recovery: %v (the in-flight migration is orphaned)", keys)
	}

	// Third manager completes the move.
	mgr3 := New(f.rt, f.store, f.mgr.cfg)
	if err := mgr3.Recover(); err != nil {
		t.Fatalf("final recover: %v", err)
	}
	if got, _ := f.rt.Directory().Locate(room); got != to {
		t.Fatalf("host = %v; want %v after chained recovery", got, to)
	}
	keys, _ = f.store.List("wal/")
	if len(keys) != 0 {
		t.Fatalf("wal not cleaned: %v", keys)
	}
	if _, err := f.rt.Submit(room, "inc"); err != nil {
		t.Fatalf("post-recovery event: %v", err)
	}
}

func TestDrainAndRemove(t *testing.T) {
	f := newFixture(t, 2, 4)
	victim := f.rt.Cluster().Servers()[0].ID()
	if err := f.mgr.DrainAndRemove(victim); err != nil {
		t.Fatal(err)
	}
	if f.rt.Cluster().Size() != 1 {
		t.Fatalf("size = %d; want 1", f.rt.Cluster().Size())
	}
	for _, room := range f.rooms {
		if srv, _ := f.rt.Directory().Locate(room); srv == victim {
			t.Fatalf("%v still on removed server", room)
		}
		if _, err := f.rt.Submit(room, "inc"); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDrainAndRemoveKeepsGroupsWhole pins the MigrateSubtrees drain: a
// drained server's contexts leave as whole placement groups (each room
// lands co-located with its items) instead of the old per-context scatter.
func TestDrainAndRemoveKeepsGroupsWhole(t *testing.T) {
	f := newFixture(t, 3, 0)
	victim := f.rt.Cluster().Servers()[0].ID()
	groups := make(map[ownership.ID][]ownership.ID)
	for r := 0; r < 2; r++ {
		room, err := f.rt.CreateContextOn(victim, "Room")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			item, err := f.rt.CreateContext("Item", room)
			if err != nil {
				t.Fatal(err)
			}
			groups[room] = append(groups[room], item)
		}
	}
	if err := f.mgr.DrainAndRemove(victim); err != nil {
		t.Fatal(err)
	}
	if f.rt.Cluster().Size() != 2 {
		t.Fatalf("size = %d; want 2", f.rt.Cluster().Size())
	}
	for room, items := range groups {
		roomSrv, ok := f.rt.Directory().Locate(room)
		if !ok || roomSrv == victim {
			t.Fatalf("room %v on %v (ok=%v)", room, roomSrv, ok)
		}
		for _, item := range items {
			if srv, _ := f.rt.Directory().Locate(item); srv != roomSrv {
				t.Fatalf("item %v on %v; want %v (group split by drain)", item, srv, roomSrv)
			}
		}
		if _, err := f.rt.Submit(room, "inc"); err != nil {
			t.Fatal(err)
		}
	}
	// Two groups → two group migrations, not six per-context ones.
	if got := f.mgr.Engine().Groups.Value(); got != 2 {
		t.Fatalf("group moves = %d; want 2", got)
	}
	// Destination reservation spreads the drained groups across the
	// survivors instead of stacking both on the momentarily-least-loaded
	// one.
	occupied := 0
	for _, s := range f.rt.Cluster().Servers() {
		if s.Hosted() > 0 {
			occupied++
		}
	}
	if occupied != 2 {
		t.Fatalf("drained groups landed on %d server(s); want spread across 2", occupied)
	}
}

// TestRebalanceDoesNotSplitGroups pins the rebalance fix: with
// MigrateSubtrees, a sweep whose movable list contains both a root and its
// descendants must move the group once — the old loop re-migrated each
// already-moved member individually, splitting the group it had just moved.
func TestRebalanceDoesNotSplitGroups(t *testing.T) {
	f := newFixture(t, 2, 0)
	srv := f.rt.Cluster().Servers()[0].ID()
	room, err := f.rt.CreateContextOn(srv, "Room")
	if err != nil {
		t.Fatal(err)
	}
	items := make([]ownership.ID, 3)
	for i := range items {
		items[i], err = f.rt.CreateContext("Item", room)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := f.mgr.Apply(Rebalance{Server: srv, Fraction: 1.0}); err != nil {
		t.Fatal(err)
	}
	roomSrv, _ := f.rt.Directory().Locate(room)
	if roomSrv == srv {
		t.Fatalf("room still on %v after full rebalance", srv)
	}
	for _, item := range items {
		if got, _ := f.rt.Directory().Locate(item); got != roomSrv {
			t.Fatalf("item %v on %v; want %v (group split by rebalance)", item, got, roomSrv)
		}
	}
	if got := f.mgr.Engine().Groups.Value(); got != 1 {
		t.Fatalf("group moves = %d; want 1 (members re-migrated individually)", got)
	}
}

func TestApplyAddServerAndConstraint(t *testing.T) {
	f := newFixture(t, 1, 0)
	if err := f.mgr.Apply(AddServer{Profile: cluster.M1Small}); err != nil {
		t.Fatal(err)
	}
	if f.rt.Cluster().Size() != 2 {
		t.Fatalf("size = %d; want 2", f.rt.Cluster().Size())
	}
	f.mgr.AddConstraint(MaxServers(2))
	if err := f.mgr.Apply(AddServer{Profile: cluster.M1Small}); !errors.Is(err, ErrVetoed) {
		t.Fatalf("err = %v; want ErrVetoed", err)
	}
}

func TestPinConstraint(t *testing.T) {
	f := newFixture(t, 2, 1)
	room := f.rooms[0]
	from, _ := f.rt.Directory().Locate(room)
	f.mgr.AddConstraint(PinContexts(room))
	err := f.mgr.Apply(MigrateContext{Context: room, From: from})
	if !errors.Is(err, ErrVetoed) {
		t.Fatalf("err = %v; want ErrVetoed", err)
	}
}

func TestServerContentionPolicy(t *testing.T) {
	f := newFixture(t, 2, 0)
	servers := f.rt.Cluster().Servers()
	// Crowd server 0 with 4 rooms; server 1 has none.
	for i := 0; i < 4; i++ {
		if _, err := f.rt.CreateContextOn(servers[0].ID(), "Room"); err != nil {
			t.Fatal(err)
		}
	}
	f.mgr.AddPolicy(ServerContentionPolicy{MaxContexts: 2})
	f.mgr.Evaluate()
	if h := servers[0].Hosted(); h > 2 {
		t.Fatalf("server 0 hosts %d; want ≤2 after contention policy", h)
	}
	if h := servers[1].Hosted(); h == 0 {
		t.Fatal("server 1 should have received contexts")
	}
}

func TestSLAPolicyScalesOut(t *testing.T) {
	f := newFixture(t, 1, 2)
	p := &SLAPolicy{Target: time.Millisecond, Profile: cluster.M1Small, Cooldown: time.Nanosecond}
	actions := p.Decide(Stats{RecentLatency: 5 * time.Millisecond, Servers: f.mgr.CollectStats().Servers})
	if len(actions) == 0 {
		t.Fatal("SLA breach should produce actions")
	}
	if _, ok := actions[0].(AddServer); !ok {
		t.Fatalf("first action = %T; want AddServer", actions[0])
	}
}

func TestSLAPolicyScalesIn(t *testing.T) {
	f := newFixture(t, 3, 0)
	p := &SLAPolicy{Target: 10 * time.Millisecond, Profile: cluster.M1Small,
		MinServers: 2, Cooldown: time.Nanosecond}
	stats := Stats{RecentLatency: time.Millisecond, Servers: f.mgr.CollectStats().Servers}
	actions := p.Decide(stats)
	if len(actions) != 1 {
		t.Fatalf("actions = %v; want one RemoveServer", actions)
	}
	if _, ok := actions[0].(RemoveServer); !ok {
		t.Fatalf("action = %T; want RemoveServer", actions[0])
	}
	// At the floor, no scale-in.
	p2 := &SLAPolicy{Target: 10 * time.Millisecond, Profile: cluster.M1Small,
		MinServers: 3, Cooldown: time.Nanosecond}
	if actions := p2.Decide(stats); len(actions) != 0 {
		t.Fatalf("actions = %v; want none at MinServers floor", actions)
	}
}

func TestResourceUtilizationPolicy(t *testing.T) {
	p := ResourceUtilizationPolicy{Lower: 0.2, Upper: 0.8, Threshold: 0.05}
	stats := Stats{Servers: []ServerStat{
		{ID: 1, Utilization: 0.95, Hosted: 4},
		{ID: 2, Utilization: 0.1, Hosted: 0},
	}}
	actions := p.Decide(stats)
	if len(actions) != 1 {
		t.Fatalf("actions = %v; want one Rebalance", actions)
	}
	rb, ok := actions[0].(Rebalance)
	if !ok || rb.Server != 1 {
		t.Fatalf("action = %#v; want Rebalance{Server:1}", actions[0])
	}
}

func TestPolicyLoopStartStop(t *testing.T) {
	f := newFixture(t, 1, 0)
	f.mgr.cfg.PollInterval = 5 * time.Millisecond
	f.mgr.Start()
	f.mgr.Start() // idempotent
	time.Sleep(20 * time.Millisecond)
	f.mgr.Stop()
	f.mgr.Stop() // idempotent
}

func TestSnapshotAndRestore(t *testing.T) {
	f := newFixture(t, 2, 1)
	RegisterSnapshotType(&counterState{})
	room := f.rooms[0]
	item, _ := f.rt.CreateContext("Item", room)
	for i := 0; i < 3; i++ {
		if _, err := f.rt.Submit(room, "inc"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.rt.Submit(item, "inc"); err != nil {
		t.Fatal(err)
	}

	key, n, err := f.mgr.Snapshot(room)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("captured %d contexts; want 2", n)
	}

	// Mutate, then restore.
	for i := 0; i < 5; i++ {
		if _, err := f.rt.Submit(room, "inc"); err != nil {
			t.Fatal(err)
		}
	}
	states, err := f.mgr.LoadSnapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.mgr.Restore(states); err != nil {
		t.Fatal(err)
	}
	res, err := f.rt.Submit(room, "get")
	if err != nil {
		t.Fatal(err)
	}
	if res.(int) != 3 {
		t.Fatalf("restored count = %v; want 3", res)
	}
}

func TestSnapshotSkipsNilCheckpoint(t *testing.T) {
	// A state whose Checkpointer returns nil is skipped (§ 5.3).
	s := schema.New()
	cls := s.MustDeclareClass("Ephemeral", func() any { return &ephemeralState{} })
	cls.MustDeclareMethod("noop", func(call schema.Call, args []any) (any, error) { return nil, nil })
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(transport.NullNetwork{})
	cl.AddServer(cluster.M3Large)
	rt, _ := core.New(s, ownership.NewGraph(), cl, core.Config{})
	defer rt.Close()
	mgr := New(rt, cloudstore.New(), DefaultConfig())
	id, _ := rt.CreateContext("Ephemeral")
	_, n, err := mgr.Snapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("captured %d contexts; want 0 (nil checkpoint skipped)", n)
	}
}

type ephemeralState struct{}

func (*ephemeralState) CheckpointState() any { return nil }

func TestSnapshotIsConsistentUnderLoad(t *testing.T) {
	// Snapshot while events mutate room and item: the snapshot must never
	// observe the room counter ahead of... here both inc'd in one event.
	s := schema.New()
	pair := s.MustDeclareClass("Pair", func() any { return &counterState{} })
	s.MustDeclareClass("Half", func() any { return &counterState{} }).
		MustDeclareMethod("inc", func(call schema.Call, args []any) (any, error) {
			call.State().(*counterState).N++
			return nil, nil
		})
	pair.MustDeclareMethod("incBoth", func(call schema.Call, args []any) (any, error) {
		halves, _ := call.Children("Half")
		for _, h := range halves {
			if _, err := call.Sync(h, "inc"); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}, schema.MayCall("Half", "inc"))
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(transport.NullNetwork{})
	cl.AddServer(cluster.M3Large)
	rt, _ := core.New(s, ownership.NewGraph(), cl, core.Config{AcquireTimeout: 10 * time.Second})
	defer rt.Close()
	RegisterSnapshotType(&counterState{})
	mgr := New(rt, cloudstore.New(), DefaultConfig())

	pairID, _ := rt.CreateContext("Pair")
	h1, _ := rt.CreateContext("Half", pairID)
	h2, _ := rt.CreateContext("Half", pairID)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := rt.Submit(pairID, "incBoth"); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for i := 0; i < 10; i++ {
		key, _, err := mgr.Snapshot(pairID)
		if err != nil {
			t.Fatal(err)
		}
		states, err := mgr.LoadSnapshot(key)
		if err != nil {
			t.Fatal(err)
		}
		a := states[h1].(*counterState).N
		b := states[h2].(*counterState).N
		if a != b {
			t.Fatalf("inconsistent snapshot: halves %d vs %d", a, b)
		}
	}
	close(stop)
	wg.Wait()
}
