package emanager

import (
	"errors"
	"testing"
	"time"

	"aeon/internal/cluster"
)

func TestCompilePolicyFull(t *testing.T) {
	src := `
# elasticity program
when latency > 10ms add server m1.small
when latency < 2ms remove server
when util > 0.85 rebalance 0.5
when hosted > 40 rebalance 0.25
max servers 32
min servers 4
cooldown 2s
`
	p, err := CompilePolicy(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules()) != 4 {
		t.Fatalf("rules = %v", p.Rules())
	}
	if p.maxServers != 32 || p.minServers != 4 || p.cooldown != 2*time.Second {
		t.Fatalf("limits = %d/%d/%v", p.maxServers, p.minServers, p.cooldown)
	}
}

func TestCompilePolicyErrors(t *testing.T) {
	for _, src := range []string{
		"when latency >",                          // incomplete
		"when pressure > 3 add server m1.small",   // unknown metric
		"when latency >= 3ms add server m1.small", // unknown cmp
		"when latency > 3ms add server t2.nano",   // unknown profile
		"when latency > banana add server m1.small",
		"when util > 0.9 rebalance 2.0", // fraction out of range
		"when util > 0.9 explode",       // unknown action
		"max servers many",
		"cooldown fast",
		"frobnicate",
	} {
		if _, err := CompilePolicy(src); !errors.Is(err, ErrPolicySyntax) {
			t.Errorf("%q: err = %v; want ErrPolicySyntax", src, err)
		}
	}
}

func TestDSLPolicyLatencyScaleOut(t *testing.T) {
	p := MustCompilePolicy(`
when latency > 10ms add server m1.small
cooldown 1ns
max servers 4
`)
	stats := Stats{
		RecentLatency: 20 * time.Millisecond,
		Servers: []ServerStat{
			{ID: 1, Utilization: 0.9, Hosted: 4},
			{ID: 2, Utilization: 0.2, Hosted: 1},
		},
	}
	actions := p.Decide(stats)
	if len(actions) < 1 {
		t.Fatal("expected a scale-out action")
	}
	add, ok := actions[0].(AddServer)
	if !ok || add.Profile.Name != "m1.small" {
		t.Fatalf("action = %#v", actions[0])
	}
	// The hottest server sheds load to the newcomer.
	if len(actions) == 2 {
		rb, ok := actions[1].(Rebalance)
		if !ok || rb.Server != 1 {
			t.Fatalf("second action = %#v", actions[1])
		}
	}
}

func TestDSLPolicyMaxServersCap(t *testing.T) {
	p := MustCompilePolicy("when latency > 1ms add server m1.small\nmax servers 2\ncooldown 1ns")
	stats := Stats{
		RecentLatency: time.Second,
		Servers:       []ServerStat{{ID: 1}, {ID: 2}},
	}
	if actions := p.Decide(stats); len(actions) != 0 {
		t.Fatalf("actions = %v; want none at cap", actions)
	}
}

func TestDSLPolicyScaleInFloor(t *testing.T) {
	p := MustCompilePolicy("when latency < 5ms remove server\nmin servers 2\ncooldown 1ns")
	stats := Stats{
		RecentLatency: time.Millisecond,
		Servers:       []ServerStat{{ID: 1, Hosted: 3}, {ID: 2, Hosted: 0}, {ID: 3, Hosted: 2}},
	}
	actions := p.Decide(stats)
	if len(actions) != 1 {
		t.Fatalf("actions = %v", actions)
	}
	rm, ok := actions[0].(RemoveServer)
	if !ok || rm.Server != 2 {
		t.Fatalf("action = %#v; want RemoveServer{2} (emptiest)", actions[0])
	}
	// At the floor: no action.
	p2 := MustCompilePolicy("when latency < 5ms remove server\nmin servers 2\ncooldown 1ns")
	atFloor := Stats{RecentLatency: time.Millisecond, Servers: []ServerStat{{ID: 1}, {ID: 2}}}
	if actions := p2.Decide(atFloor); len(actions) != 0 {
		t.Fatalf("actions = %v; want none at floor", actions)
	}
}

func TestDSLPolicyUtilAndHostedRules(t *testing.T) {
	p := MustCompilePolicy(`
when util > 0.8 rebalance 0.5
when hosted > 10 rebalance 0.25
cooldown 1ns
`)
	// Util rule fires for the hot server only.
	actions := p.Decide(Stats{Servers: []ServerStat{
		{ID: 1, Utilization: 0.95, Hosted: 5},
		{ID: 2, Utilization: 0.1, Hosted: 5},
	}})
	if len(actions) != 1 {
		t.Fatalf("actions = %v", actions)
	}
	if rb := actions[0].(Rebalance); rb.Server != 1 || rb.Fraction != 0.5 {
		t.Fatalf("action = %#v", actions[0])
	}
	// Hosted rule fires when util rule does not.
	p2 := MustCompilePolicy("when hosted > 10 rebalance 0.25\ncooldown 1ns")
	actions = p2.Decide(Stats{Servers: []ServerStat{{ID: 3, Hosted: 12}}})
	if len(actions) != 1 || actions[0].(Rebalance).Server != 3 {
		t.Fatalf("actions = %v", actions)
	}
}

func TestDSLPolicyCooldown(t *testing.T) {
	p := MustCompilePolicy("when latency > 1ms add server m1.small\ncooldown 1h")
	stats := Stats{RecentLatency: time.Second, Servers: []ServerStat{{ID: 1}}}
	if actions := p.Decide(stats); len(actions) == 0 {
		t.Fatal("first decision should fire")
	}
	if actions := p.Decide(stats); len(actions) != 0 {
		t.Fatalf("actions = %v; want none during cooldown", actions)
	}
}

func TestDSLPolicyDrivesManager(t *testing.T) {
	f := newFixture(t, 1, 2)
	f.mgr.AddPolicy(MustCompilePolicy(`
when latency > 1ns add server m1.small
max servers 2
cooldown 1ns
`))
	// Give the EWMA a sample so latency > 0.
	if _, err := f.rt.Submit(f.rooms[0], "inc"); err != nil {
		t.Fatal(err)
	}
	f.mgr.Evaluate()
	if n := f.rt.Cluster().Size(); n != 2 {
		t.Fatalf("cluster size = %d; want 2", n)
	}
	if _, err := profileByName("m1.large"); err != nil {
		t.Fatal(err)
	}
	if _, err := profileByName("m3.large"); err != nil {
		t.Fatal(err)
	}
	_ = cluster.M1Medium
}
