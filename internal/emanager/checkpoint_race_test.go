package emanager

import (
	"errors"
	"testing"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/ownership"
	"aeon/internal/transport"
)

// contentiousStore wraps the real store and, on the sweep's first
// CreateBatch, lands a competing write on one of the exact keys the sweep is
// about to create — the interleaving two concurrent checkpoint sweeps (two
// eManager processes, or a periodic sweep racing a manual one) produce when
// both List the same sequence floors.
type contentiousStore struct {
	cloudstore.API
	t        *testing.T
	attempts int
	injected string
}

func (s *contentiousStore) CreateBatch(entries map[string][]byte) (uint64, error) {
	s.attempts++
	if s.attempts == 1 {
		for k := range entries {
			if _, err := s.API.Put(k, []byte("competing-sweep")); err != nil {
				s.t.Fatalf("inject competitor: %v", err)
			}
			s.injected = k
			break
		}
	}
	return s.API.CreateBatch(entries)
}

// TestCheckpointServerSurvivesConcurrentSweep pins the CAS publication loop:
// when a concurrent sweeper publishes the same snapshot generation between
// this sweep's List and its write, the write must fail and re-key above the
// competitor — never blind-overwrite its entry. The old PutBatch path would
// silently replace the competitor's checkpoint with state captured earlier,
// leaving "latest" pointing at data both sweeps believed superseded.
func TestCheckpointServerSurvivesConcurrentSweep(t *testing.T) {
	RegisterSnapshotType(&counterState{})
	s := testSchema(t)
	cl := cluster.New(transport.NullNetwork{})
	cl.AddServer(cluster.M3Large)
	rt, err := core.New(s, ownership.NewGraph(), cl, core.Config{AcquireTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	inner := cloudstore.New()
	store := &contentiousStore{API: inner, t: t}
	cfg := DefaultConfig()
	cfg.Delta = time.Millisecond
	cfg.ProtocolWork = 0
	mgr := New(rt, store, cfg)

	srv := cl.Servers()[0].ID()
	room, err := rt.CreateContextOn(srv, "Room")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Submit(room, "inc"); err != nil {
		t.Fatal(err)
	}

	n, err := mgr.CheckpointServer(srv)
	if err != nil {
		t.Fatalf("checkpoint under contention: %v", err)
	}
	if n != 1 {
		t.Fatalf("captured %d contexts, want 1", n)
	}
	if store.attempts < 2 {
		t.Fatalf("CreateBatch ran %d times, want ≥2 (conflict must force a retry)", store.attempts)
	}

	// The sweep re-keyed above the competitor instead of overwriting it.
	latest, ok, err := mgr.latestSnapshotKey(room)
	if err != nil || !ok {
		t.Fatalf("latest snapshot: ok=%v err=%v", ok, err)
	}
	if latest == store.injected {
		t.Fatalf("sweep landed on the competitor's key %q — blind overwrite", latest)
	}
	if snapshotSeqOf(latest) <= snapshotSeqOf(store.injected) {
		t.Fatalf("sweep seq %d did not advance past competitor seq %d",
			snapshotSeqOf(latest), snapshotSeqOf(store.injected))
	}
	states, err := mgr.LoadSnapshot(latest)
	if err != nil {
		t.Fatalf("load re-keyed checkpoint: %v", err)
	}
	if st, found := states[room]; !found || st.(*counterState).N != 1 {
		t.Fatalf("re-keyed checkpoint state = %v, want counter 1", st)
	}
}

// TestCreateBatchAtomicCreateOnly pins the store primitive the sweep relies
// on: any existing key fails the whole batch with ErrVersionMismatch and
// nothing is written.
func TestCreateBatchAtomicCreateOnly(t *testing.T) {
	s := cloudstore.New()
	if _, err := s.Put("a", []byte("old")); err != nil {
		t.Fatal(err)
	}
	_, err := s.CreateBatch(map[string][]byte{
		"a": []byte("new"),
		"b": []byte("fresh"),
	})
	if !errors.Is(err, cloudstore.ErrVersionMismatch) {
		t.Fatalf("CreateBatch over existing key: %v, want ErrVersionMismatch", err)
	}
	if v, _, err := s.Get("a"); err != nil || string(v) != "old" {
		t.Fatalf("existing key mutated by failed CreateBatch: %q, %v", v, err)
	}
	if _, _, err := s.Get("b"); err == nil {
		t.Fatalf("failed CreateBatch leaked a partial write")
	}
	if _, err := s.CreateBatch(map[string][]byte{"b": []byte("fresh"), "c": []byte("x")}); err != nil {
		t.Fatalf("clean CreateBatch: %v", err)
	}
	if v, _, err := s.Get("b"); err != nil || string(v) != "fresh" {
		t.Fatalf("created key: %q, %v", v, err)
	}
}
