package emanager

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"

	"aeon/internal/cloudstore"
	"aeon/internal/ownership"
	"aeon/internal/schema"
)

// Checkpointer lets application state customize what a snapshot stores
// (§ 5.3: "a programmer is able to override a method returning the state of
// a context. In case the overridden method returns null ... the runtime
// system will ignore that context during the checkpointing phase").
type Checkpointer interface {
	CheckpointState() any
}

// RegisterSnapshotType registers an application state type with the shared
// wire codec (see schema.RegisterWireType); call once per state type at
// startup. The same registration covers checkpoints, migration state
// transfer, and node wire frames, so the codecs cannot drift.
func RegisterSnapshotType(v any) { schema.RegisterWireType(v) }

type snapshotPayload struct {
	Root   uint64
	States map[uint64][]byte
}

// Snapshot sequence numbers must be monotonic per root *across processes*:
// in multi-process deployments every node checkpoints into one
// authoritative store, and failure recovery picks the highest sequence as
// the freshest checkpoint. A plain process-local counter would let the
// group's new host (after a migration) write seq 1 under the old host's
// seq 7 and have recovery restore stale state. So writers first read the
// store's current maximum for the root and continue above it; the
// process-local floor keeps concurrent local snapshots from colliding.
var (
	snapSeqMu    sync.Mutex
	snapSeqFloor uint64
)

// nextSnapshotSeq returns a sequence number above both the store's maximum
// for the root and everything issued by this process.
func nextSnapshotSeq(storeMax uint64) uint64 {
	snapSeqMu.Lock()
	defer snapSeqMu.Unlock()
	if storeMax > snapSeqFloor {
		snapSeqFloor = storeMax
	}
	snapSeqFloor++
	return snapSeqFloor
}

// storeMaxSnapshotSeq reads the highest sequence number the store holds for
// a root.
func (m *Manager) storeMaxSnapshotSeq(root ownership.ID) (uint64, error) {
	keys, err := m.store.List(fmt.Sprintf("snapshot/%d/", uint64(root)))
	if err != nil {
		return 0, err
	}
	var max uint64
	for _, k := range keys {
		if s := snapshotSeqOf(k); s > max {
			max = s
		}
	}
	return max, nil
}

// snapshotKey renders the storage key of one checkpoint.
func snapshotKey(root ownership.ID, seq uint64) string {
	return fmt.Sprintf("snapshot/%d/%d", uint64(root), seq)
}

// encodeState captures one context's current state for a checkpoint
// payload. A Checkpointer override is honored; a nil or unencodable state
// reports ok=false and is skipped.
func (m *Manager) encodeState(id ownership.ID) (b []byte, ok bool) {
	c, err := m.rt.Context(id)
	if err != nil {
		return nil, false
	}
	st := c.State()
	if cp, isCP := st.(Checkpointer); isCP {
		st = cp.CheckpointState()
	}
	if st == nil {
		return nil, false
	}
	b, err = schema.EncodeWire(st)
	if err != nil {
		return nil, false // unregistered or unencodable state: skip
	}
	return b, true
}

// encodePayload gob-encodes one snapshot payload.
func encodePayload(p snapshotPayload) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, fmt.Errorf("encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Snapshot takes a consistent checkpoint of a context and all its
// descendants and writes it to the cloud store. It returns the storage key
// and the number of contexts captured.
func (m *Manager) Snapshot(root ownership.ID) (string, int, error) {
	max, err := m.storeMaxSnapshotSeq(root)
	if err != nil {
		return "", 0, err
	}
	payload := snapshotPayload{Root: uint64(root), States: make(map[uint64][]byte)}
	err = m.rt.WithSubtreeShared(root, func(ids []ownership.ID) error {
		for _, id := range ids {
			if b, ok := m.encodeState(id); ok {
				payload.States[uint64(id)] = b
			}
		}
		return nil
	})
	if err != nil {
		return "", 0, err
	}
	encoded, err := encodePayload(payload)
	if err != nil {
		return "", 0, err
	}
	// CAS-create the sequence slot instead of a blind Put: two processes
	// checkpointing the same root concurrently can compute the same next
	// sequence, and overwriting would silently drop one checkpoint. On a
	// conflict the loser re-reads the store's maximum and takes the next
	// slot (shared retry/backoff helper, same loop the replication log
	// uses).
	var key string
	err = cloudstore.Retry(cloudstore.DefaultRetry(), func() error {
		key = snapshotKey(root, nextSnapshotSeq(max))
		_, casErr := m.store.CAS(key, 0, encoded)
		if errors.Is(casErr, cloudstore.ErrVersionMismatch) {
			if m2, merr := m.storeMaxSnapshotSeq(root); merr == nil && m2 > max {
				max = m2
			}
		}
		return casErr
	})
	if err != nil {
		return "", 0, fmt.Errorf("store snapshot: %w", err)
	}
	return key, len(payload.States), nil
}

// LoadSnapshot reads a checkpoint back from the store.
func (m *Manager) LoadSnapshot(key string) (map[ownership.ID]any, error) {
	raw, _, err := m.store.Get(key)
	if err != nil {
		return nil, err
	}
	var payload snapshotPayload
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&payload); err != nil {
		return nil, fmt.Errorf("decode snapshot: %w", err)
	}
	out := make(map[ownership.ID]any, len(payload.States))
	for id, b := range payload.States {
		v, err := schema.DecodeWire(b)
		if err != nil {
			return nil, fmt.Errorf("decode state %d: %w", id, err)
		}
		out[ownership.ID(id)] = v
	}
	return out, nil
}

// Restore applies a loaded checkpoint to the live contexts, taking each
// context exclusively first.
func (m *Manager) Restore(states map[ownership.ID]any) error {
	for id, st := range states {
		release, err := m.rt.LockForMigration(id)
		if err != nil {
			return fmt.Errorf("restore %v: %w", id, err)
		}
		c, err := m.rt.Context(id)
		if err != nil {
			release()
			return err
		}
		c.SetState(st)
		release()
	}
	return nil
}
