package emanager

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync/atomic"

	"aeon/internal/ownership"
)

// Checkpointer lets application state customize what a snapshot stores
// (§ 5.3: "a programmer is able to override a method returning the state of
// a context. In case the overridden method returns null ... the runtime
// system will ignore that context during the checkpointing phase").
type Checkpointer interface {
	CheckpointState() any
}

// RegisterSnapshotType registers an application state type with the
// snapshot codec (gob); call once per state type at startup.
func RegisterSnapshotType(v any) { gob.Register(v) }

type snapshotPayload struct {
	Root   uint64
	States map[uint64][]byte
}

type stateBox struct {
	V any
}

var snapshotSeq atomic.Uint64

// Snapshot takes a consistent checkpoint of a context and all its
// descendants and writes it to the cloud store. It returns the storage key
// and the number of contexts captured. Contexts whose Checkpointer returns
// nil, and contexts with nil or unencodable state, are skipped.
func (m *Manager) Snapshot(root ownership.ID) (string, int, error) {
	payload := snapshotPayload{Root: uint64(root), States: make(map[uint64][]byte)}
	err := m.rt.WithSubtreeShared(root, func(ids []ownership.ID) error {
		for _, id := range ids {
			c, err := m.rt.Context(id)
			if err != nil {
				continue
			}
			st := c.State()
			if cp, ok := st.(Checkpointer); ok {
				st = cp.CheckpointState()
			}
			if st == nil {
				continue
			}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(stateBox{V: st}); err != nil {
				continue // unregistered or unencodable state: skip
			}
			payload.States[uint64(id)] = buf.Bytes()
		}
		return nil
	})
	if err != nil {
		return "", 0, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return "", 0, fmt.Errorf("encode snapshot: %w", err)
	}
	key := fmt.Sprintf("snapshot/%d/%d", uint64(root), snapshotSeq.Add(1))
	if _, err := m.store.Put(key, buf.Bytes()); err != nil {
		return "", 0, fmt.Errorf("store snapshot: %w", err)
	}
	return key, len(payload.States), nil
}

// LoadSnapshot reads a checkpoint back from the store.
func (m *Manager) LoadSnapshot(key string) (map[ownership.ID]any, error) {
	raw, _, err := m.store.Get(key)
	if err != nil {
		return nil, err
	}
	var payload snapshotPayload
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&payload); err != nil {
		return nil, fmt.Errorf("decode snapshot: %w", err)
	}
	out := make(map[ownership.ID]any, len(payload.States))
	for id, b := range payload.States {
		var box stateBox
		if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&box); err != nil {
			return nil, fmt.Errorf("decode state %d: %w", id, err)
		}
		out[ownership.ID(id)] = box.V
	}
	return out, nil
}

// Restore applies a loaded checkpoint to the live contexts, taking each
// context exclusively first.
func (m *Manager) Restore(states map[ownership.ID]any) error {
	for id, st := range states {
		release, err := m.rt.LockForMigration(id)
		if err != nil {
			return fmt.Errorf("restore %v: %w", id, err)
		}
		c, err := m.rt.Context(id)
		if err != nil {
			release()
			return err
		}
		c.SetState(st)
		release()
	}
	return nil
}
