package tpcc

import (
	"fmt"
	"math/rand"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/ownership"
)

type ownershipID = ownership.ID

func ownID(v uint64) ownership.ID { return ownership.ID(v) }

// AEONApp is TPC-C on the AEON runtime (multiple or single ownership).
type AEONApp struct {
	name string
	cfg  Config
	rt   *core.Runtime
	so   bool

	warehouse ownership.ID
	districts []ownership.ID
	customers [][]ownership.ID // per district
}

var _ App = (*AEONApp)(nil)

// BuildAEON deploys TPC-C on a fresh AEON runtime: the warehouse (with its
// stock) on the first server, one district per server round-robin, and the
// customers co-located with their district. Each customer gets one seed
// order so the ownership sharing (and therefore the dominator structure) is
// established before measurement.
func BuildAEON(cl *cluster.Cluster, cfg Config, singleOwnership bool) (*AEONApp, error) {
	s, err := Schema(cfg, singleOwnership)
	if err != nil {
		return nil, err
	}
	cfg2 := core.Config{
		MessageBytes:     256,
		ChargeClientHops: true,
		AcquireTimeout:   30 * time.Second,
	}
	if !singleOwnership {
		// Creating each multi-owned Order publishes sharing edges to the
		// authoritative ownership network (§ 5.1) — a globally serialized
		// update AEON pays and AEON_SO avoids.
		cfg2.SharedOwnershipUpdateCost = 500 * time.Microsecond
	}
	rt, err := core.New(s, ownership.NewGraph(), cl, cfg2)
	if err != nil {
		return nil, err
	}
	app := &AEONApp{name: "AEON", cfg: cfg, rt: rt, so: singleOwnership}
	if singleOwnership {
		app.name = "AEON_SO"
	}
	if err := app.deploy(); err != nil {
		rt.Close()
		return nil, err
	}
	return app, nil
}

func (a *AEONApp) deploy() error {
	servers := a.rt.Cluster().Servers()
	if len(servers) == 0 {
		return fmt.Errorf("tpcc: cluster has no servers")
	}
	var err error
	a.warehouse, err = a.rt.CreateContextOn(servers[0].ID(), "Warehouse")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	for d := 0; d < a.cfg.Districts; d++ {
		srv := servers[d%len(servers)].ID()
		district, err := a.rt.CreateContextOn(srv, "District", a.warehouse)
		if err != nil {
			return err
		}
		a.districts = append(a.districts, district)
		var custs []ownership.ID
		for c := 0; c < a.cfg.CustomersPerDistrict; c++ {
			cust, err := a.rt.CreateContext("Customer", district)
			if err != nil {
				return err
			}
			custs = append(custs, cust)
		}
		a.customers = append(a.customers, custs)

		// Seed one order per customer so sharing (multi-ownership) exists
		// before the dominator caches warm.
		for _, cust := range custs {
			if _, err := a.rt.Submit(a.warehouse, "new_order",
				district, cust, a.cfg.genLines(rng)); err != nil {
				return fmt.Errorf("seed order: %w", err)
			}
		}
	}
	// Warm the dominator caches: steady-state order creation keeps them
	// valid only once every parent's dominator is cached.
	g := a.rt.Graph()
	if _, err := g.Dom(a.warehouse); err != nil {
		return err
	}
	for d, district := range a.districts {
		if _, err := g.Dom(district); err != nil {
			return err
		}
		for _, cust := range a.customers[d] {
			if _, err := g.Dom(cust); err != nil {
				return err
			}
		}
	}
	return nil
}

// Name implements App.
func (a *AEONApp) Name() string { return a.name }

// Runtime exposes the underlying runtime.
func (a *AEONApp) Runtime() *core.Runtime { return a.rt }

// Warehouse returns the warehouse context.
func (a *AEONApp) Warehouse() ownership.ID { return a.warehouse }

// Districts returns the district contexts.
func (a *AEONApp) Districts() []ownership.ID { return a.districts }

// DoTxn implements App.
func (a *AEONApp) DoTxn(rng *rand.Rand) error {
	d := rng.Intn(len(a.districts))
	district := a.districts[d]
	cust := a.customers[d][rng.Intn(len(a.customers[d]))]
	var err error
	switch a.cfg.pickTxn(rng) {
	case txnNewOrder:
		_, err = a.rt.Submit(a.warehouse, "new_order", district, cust, a.cfg.genLines(rng))
	case txnPayment:
		_, err = a.rt.Submit(a.warehouse, "payment", district, cust, 1+rng.Intn(5000))
	case txnOrderStatus:
		_, err = a.rt.Submit(cust, "order_status")
	case txnDelivery:
		_, err = a.rt.Submit(district, "deliver")
	case txnStockLevel:
		_, err = a.rt.Submit(a.warehouse, "stock_level", district)
	}
	return err
}

// DistrictState returns a district's state (tests).
func (a *AEONApp) DistrictState(d int) (*DistrictState, error) {
	c, err := a.rt.Context(a.districts[d])
	if err != nil {
		return nil, err
	}
	st, ok := c.State().(*DistrictState)
	if !ok {
		return nil, fmt.Errorf("district state is %T", c.State())
	}
	return st, nil
}

// Close implements App.
func (a *AEONApp) Close() { a.rt.Close() }
