package tpcc

import (
	"fmt"
	"math/rand"

	"aeon/internal/cluster"
	"aeon/internal/eventwave"
	"aeon/internal/ownership"
)

// EventWaveApp is TPC-C on the EventWave baseline: the single-ownership
// tree Warehouse → District → Customer → Order with every transaction
// totally ordered at the Warehouse root.
type EventWaveApp struct {
	cfg Config
	rt  *eventwave.Runtime

	warehouse ownership.ID
	districts []ownership.ID
	customers [][]ownership.ID
}

var _ App = (*EventWaveApp)(nil)

// BuildEventWave deploys TPC-C on an EventWave runtime.
func BuildEventWave(cl *cluster.Cluster, cfg Config) (*EventWaveApp, error) {
	s, err := Schema(cfg, true) // tree ⇒ single ownership
	if err != nil {
		return nil, err
	}
	rt, err := eventwave.New(s, cl, eventwave.DefaultConfig())
	if err != nil {
		return nil, err
	}
	app := &EventWaveApp{cfg: cfg, rt: rt}
	if err := app.deploy(); err != nil {
		rt.Close()
		return nil, err
	}
	return app, nil
}

func (a *EventWaveApp) deploy() error {
	servers := a.rt.Cluster().Servers()
	if len(servers) == 0 {
		return fmt.Errorf("tpcc: cluster has no servers")
	}
	var err error
	a.warehouse, err = a.rt.CreateContextOn(servers[0].ID(), "Warehouse")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	for d := 0; d < a.cfg.Districts; d++ {
		srv := servers[d%len(servers)].ID()
		district, err := a.rt.CreateContextOn(srv, "District", a.warehouse)
		if err != nil {
			return err
		}
		a.districts = append(a.districts, district)
		var custs []ownership.ID
		for c := 0; c < a.cfg.CustomersPerDistrict; c++ {
			cust, err := a.rt.CreateContext("Customer", district)
			if err != nil {
				return err
			}
			custs = append(custs, cust)
		}
		a.customers = append(a.customers, custs)
		for _, cust := range custs {
			if _, err := a.rt.Submit(a.warehouse, "new_order",
				district, cust, a.cfg.genLines(rng)); err != nil {
				return fmt.Errorf("seed order: %w", err)
			}
		}
	}
	return nil
}

// Name implements App.
func (a *EventWaveApp) Name() string { return "EventWave" }

// Runtime exposes the underlying runtime.
func (a *EventWaveApp) Runtime() *eventwave.Runtime { return a.rt }

// DoTxn implements App.
func (a *EventWaveApp) DoTxn(rng *rand.Rand) error {
	d := rng.Intn(len(a.districts))
	district := a.districts[d]
	cust := a.customers[d][rng.Intn(len(a.customers[d]))]
	var err error
	switch a.cfg.pickTxn(rng) {
	case txnNewOrder:
		_, err = a.rt.Submit(a.warehouse, "new_order", district, cust, a.cfg.genLines(rng))
	case txnPayment:
		_, err = a.rt.Submit(a.warehouse, "payment", district, cust, 1+rng.Intn(5000))
	case txnOrderStatus:
		_, err = a.rt.Submit(cust, "order_status")
	case txnDelivery:
		_, err = a.rt.Submit(district, "deliver")
	case txnStockLevel:
		_, err = a.rt.Submit(a.warehouse, "stock_level", district)
	}
	return err
}

// Close implements App.
func (a *EventWaveApp) Close() { a.rt.Close() }
