package tpcc

import (
	"math/rand"
	"sync"
	"testing"

	"aeon/internal/cluster"
	"aeon/internal/transport"
)

func testCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	cl := cluster.New(transport.NullNetwork{})
	for i := 0; i < n; i++ {
		cl.AddServer(cluster.M3Large)
	}
	return cl
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Districts = 2
	cfg.CustomersPerDistrict = 5
	cfg.Items = 100
	cfg.StepCost = 0
	return cfg
}

func drive(t *testing.T, app App, clients, txns int) {
	t.Helper()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < txns; i++ {
				if err := app.DoTxn(rng); err != nil {
					t.Errorf("%s txn: %v", app.Name(), err)
					return
				}
			}
		}(int64(c + 1))
	}
	wg.Wait()
}

func TestAEONTPCC(t *testing.T) {
	app, err := BuildAEON(testCluster(t, 2), smallConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	drive(t, app, 4, 30)
}

func TestAEONSOTPCC(t *testing.T) {
	app, err := BuildAEON(testCluster(t, 2), smallConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	drive(t, app, 4, 30)
}

func TestDominatorStructure(t *testing.T) {
	// Multiple ownership: orders shared by district+customer pull the
	// customers' dominators up to their district (§ 6.1.2).
	app, err := BuildAEON(testCluster(t, 2), smallConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	g := app.Runtime().Graph()
	for d, district := range app.districts {
		for _, cust := range app.customers[d] {
			dom, err := g.Dom(cust)
			if err != nil {
				t.Fatal(err)
			}
			if dom != district {
				t.Fatalf("dom(customer %v) = %v; want district %v", cust, dom, district)
			}
		}
	}

	// Single ownership: customers dominate themselves.
	appSO, err := BuildAEON(testCluster(t, 2), smallConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer appSO.Close()
	gSO := appSO.Runtime().Graph()
	for d := range appSO.districts {
		for _, cust := range appSO.customers[d] {
			dom, err := gSO.Dom(cust)
			if err != nil {
				t.Fatal(err)
			}
			if dom != cust {
				t.Fatalf("SO dom(customer %v) = %v; want self", cust, dom)
			}
		}
	}
}

func TestGraphCacheStableUnderOrders(t *testing.T) {
	// Steady-state order creation must not invalidate the dominator caches
	// (the incremental fast path); detect by version-sensitive timing:
	// run orders, then a dominator query must be a cache hit. We can't
	// observe the cache directly, so assert dominators stay correct and
	// the workload completes quickly enough to be running the fast path.
	app, err := BuildAEON(testCluster(t, 2), smallConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		d := rng.Intn(len(app.districts))
		cust := app.customers[d][rng.Intn(len(app.customers[d]))]
		if _, err := app.Runtime().Submit(app.warehouse, "new_order",
			app.districts[d], cust, app.cfg.genLines(rng)); err != nil {
			t.Fatal(err)
		}
	}
	dom, err := app.Runtime().Graph().Dom(app.customers[0][0])
	if err != nil {
		t.Fatal(err)
	}
	if dom != app.districts[0] {
		t.Fatalf("dom = %v; want district", dom)
	}
}

func TestDeliveryDrainsPendingOrders(t *testing.T) {
	app, err := BuildAEON(testCluster(t, 1), smallConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	rng := rand.New(rand.NewSource(3))
	// Seed left pending orders; deliver until drained.
	for i := 0; i < 5; i++ {
		if _, err := app.rt.Submit(app.districts[0], "deliver"); err != nil {
			t.Fatal(err)
		}
	}
	st, err := app.DistrictState(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.PendingOrders) != 0 {
		t.Fatalf("pending = %d; want 0", len(st.PendingOrders))
	}
	// New orders repopulate the queue.
	cust := app.customers[0][0]
	if _, err := app.rt.Submit(app.warehouse, "new_order",
		app.districts[0], cust, app.cfg.genLines(rng)); err != nil {
		t.Fatal(err)
	}
	st, _ = app.DistrictState(0)
	if len(st.PendingOrders) != 1 {
		t.Fatalf("pending = %d; want 1", len(st.PendingOrders))
	}
}

func TestEventWaveTPCC(t *testing.T) {
	app, err := BuildEventWave(testCluster(t, 2), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	drive(t, app, 4, 25)
}

func TestOrleansTPCC(t *testing.T) {
	app, err := BuildOrleans(testCluster(t, 2), smallConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	drive(t, app, 4, 25)
	if app.Runtime().Deadlocks.Value() != 0 {
		t.Fatalf("deadlocks = %d", app.Runtime().Deadlocks.Value())
	}
}

func TestOrleansStarTPCC(t *testing.T) {
	app, err := BuildOrleans(testCluster(t, 2), smallConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	drive(t, app, 4, 25)
}

func TestAllSystemsRunSameWorkload(t *testing.T) {
	cfg := smallConfig()
	builds := []func() (App, error){
		func() (App, error) { return BuildAEON(testCluster(t, 2), cfg, false) },
		func() (App, error) { return BuildAEON(testCluster(t, 2), cfg, true) },
		func() (App, error) { return BuildEventWave(testCluster(t, 2), cfg) },
		func() (App, error) { return BuildOrleans(testCluster(t, 2), cfg, false) },
		func() (App, error) { return BuildOrleans(testCluster(t, 2), cfg, true) },
	}
	for _, build := range builds {
		app, err := build()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 60; i++ {
			if err := app.DoTxn(rng); err != nil {
				t.Fatalf("%s: %v", app.Name(), err)
			}
		}
		app.Close()
	}
}

func TestTxnMixDistribution(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(1))
	counts := make(map[txnKind]int)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[cfg.pickTxn(rng)]++
	}
	within := func(kind txnKind, pct int) {
		got := float64(counts[kind]) / n * 100
		if got < float64(pct)-2 || got > float64(pct)+2 {
			t.Errorf("txn %d: %.1f%%; want ≈%d%%", kind, got, pct)
		}
	}
	within(txnNewOrder, cfg.Mix.NewOrderPct)
	within(txnPayment, cfg.Mix.PaymentPct)
	within(txnOrderStatus, cfg.Mix.OrderStatusPct)
	within(txnDelivery, cfg.Mix.DeliveryPct)
	within(txnStockLevel, cfg.Mix.StockLevelPct)
}

func TestGenLinesBounds(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		lines := cfg.genLines(rng)
		if len(lines) < cfg.MinLines || len(lines) > cfg.MaxLines {
			t.Fatalf("lines = %d; want [%d,%d]", len(lines), cfg.MinLines, cfg.MaxLines)
		}
		for _, l := range lines {
			if l.Item < 0 || l.Item >= cfg.Items || l.Qty < 1 || l.Amount < 1 {
				t.Fatalf("bad line %+v", l)
			}
		}
	}
}
