// Package tpcc implements the TPC-C benchmark of § 6.1.2 on all five
// systems. Following the paper: the Warehouse and its Stock form a single
// context ("since the number of items is fixed ... warehouse and items form
// a single context"); one District is placed per server (partitioning by
// district à la Rococo, which stresses distributed transactions); Districts
// own Customers; and each Order context is owned by its District *and* its
// Customer under multiple ownership, or by the Customer alone under single
// ownership — the structural difference behind Figure 6's crossover:
//
//   - multiple ownership: "method calls from Customer contexts to Order
//     contexts have to be synchronized by the District context, which is the
//     dominator of Customer contexts. This leads to the District context
//     becoming saturated fast."
//   - single ownership: "the dominators for Customer contexts are
//     themselves. Therefore, the District context does not become the
//     bottleneck" — the runtime can crab from the District into the
//     Customer, releasing the District early.
//
// The five standard transactions run with the standard mix: NewOrder 45%,
// Payment 43%, OrderStatus 4%, Delivery 4%, StockLevel 4%.
package tpcc

import (
	"fmt"
	"math/rand"
	"time"

	"aeon/internal/schema"
)

// Config sizes the benchmark.
type Config struct {
	// Districts is the number of districts (one per server in the paper's
	// scale-out runs).
	Districts int
	// CustomersPerDistrict sizes each district (3000 in the full spec;
	// scaled down for CI-speed runs).
	CustomersPerDistrict int
	// Items is the warehouse stock catalogue size (100k in the spec).
	Items int
	// MinLines and MaxLines bound order line counts (spec: 5–15).
	MinLines, MaxLines int
	// StepCost is the simulated CPU per transaction step.
	StepCost time.Duration
	// Mix weights the transactions in percent.
	Mix TxnMix
}

// TxnMix weights the five TPC-C transactions.
type TxnMix struct {
	NewOrderPct    int
	PaymentPct     int
	OrderStatusPct int
	DeliveryPct    int
	StockLevelPct  int
}

// DefaultConfig mirrors the paper's setup at benchmark-friendly scale.
func DefaultConfig() Config {
	return Config{
		Districts:            4,
		CustomersPerDistrict: 40,
		Items:                1000,
		MinLines:             5,
		MaxLines:             15,
		StepCost:             40 * time.Microsecond,
		Mix: TxnMix{
			NewOrderPct:    45,
			PaymentPct:     43,
			OrderStatusPct: 4,
			DeliveryPct:    4,
			StockLevelPct:  4,
		},
	}
}

type txnKind int

const (
	txnNewOrder txnKind = iota + 1
	txnPayment
	txnOrderStatus
	txnDelivery
	txnStockLevel
)

func (c Config) pickTxn(rng *rand.Rand) txnKind {
	n := rng.Intn(100)
	m := c.Mix
	switch {
	case n < m.NewOrderPct:
		return txnNewOrder
	case n < m.NewOrderPct+m.PaymentPct:
		return txnPayment
	case n < m.NewOrderPct+m.PaymentPct+m.OrderStatusPct:
		return txnOrderStatus
	case n < m.NewOrderPct+m.PaymentPct+m.OrderStatusPct+m.DeliveryPct:
		return txnDelivery
	default:
		return txnStockLevel
	}
}

// genLines samples order lines.
func (c Config) genLines(rng *rand.Rand) []OrderLine {
	n := c.MinLines
	if c.MaxLines > c.MinLines {
		n += rng.Intn(c.MaxLines - c.MinLines + 1)
	}
	lines := make([]OrderLine, n)
	for i := range lines {
		lines[i] = OrderLine{
			Item:   rng.Intn(c.Items),
			Qty:    1 + rng.Intn(10),
			Amount: 1 + rng.Intn(9999),
		}
	}
	return lines
}

// App is a deployed TPC-C the load generator drives.
type App interface {
	// Name identifies the system variant.
	Name() string
	// DoTxn executes one transaction of the standard mix.
	DoTxn(rng *rand.Rand) error
	// Close tears the deployment down.
	Close()
}

// OrderLine is one line of an order. Per § 6.3 ("one context plays the role
// of a container for several objects"), OrderLine and the NewOrder marker
// are plain objects folded into the Order context's state rather than
// separate contexts.
type OrderLine struct {
	Item   int
	Qty    int
	Amount int
}

// WarehouseState is the Warehouse context (including Stock).
type WarehouseState struct {
	YTD   int
	Stock []int // quantity per item
}

// DistrictState is a District context.
type DistrictState struct {
	ID      int
	YTD     int
	NextOID int
	// PendingOrders queues undelivered orders as (order context, customer
	// context) pairs for the Delivery transaction.
	PendingOrders []PendingOrder
	// RecentItems remembers the last order's items for StockLevel.
	RecentItems []int
}

// PendingOrder is a to-be-delivered order reference.
type PendingOrder struct {
	Order    uint64
	Customer uint64
}

// CustomerState is a Customer context.
type CustomerState struct {
	Balance    int
	YTDPayment int
	Payments   int
	LastOrder  uint64
	Delivered  int
}

// OrderState is an Order context (lines and markers folded in).
type OrderState struct {
	OID       int
	Lines     []OrderLine
	Total     int
	Delivered bool
}

// Schema declares the TPC-C contextclasses for the AEON-protocol runtimes.
// so selects the single-ownership variant's district crab path.
func Schema(cfg Config, so bool) (*schema.Schema, error) {
	s := schema.New()
	warehouse, err := s.DeclareClass("Warehouse", func() any {
		st := &WarehouseState{Stock: make([]int, cfg.Items)}
		for i := range st.Stock {
			st.Stock[i] = 100
		}
		return st
	})
	if err != nil {
		return nil, err
	}
	district, err := s.DeclareClass("District", func() any { return &DistrictState{} })
	if err != nil {
		return nil, err
	}
	customer, err := s.DeclareClass("Customer", func() any { return &CustomerState{} })
	if err != nil {
		return nil, err
	}
	order, err := s.DeclareClass("Order", func() any { return &OrderState{} })
	if err != nil {
		return nil, err
	}

	cost := cfg.StepCost
	// Cost model: the Warehouse's stock bookkeeping is cheap array math (it
	// must be — every NewOrder and Payment passes through the single
	// Warehouse context), while customer- and order-side work (record
	// creation, balance maintenance, history) carries the bulk of a
	// transaction's compute.
	whCost := cost / 4
	custCost := cost * 3 / 2
	fillCost := cost * 2

	// --- Order methods -------------------------------------------------
	order.MustDeclareMethod("fill", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*OrderState)
		st.OID = args[0].(int)
		st.Lines = args[1].([]OrderLine)
		for _, l := range st.Lines {
			st.Total += l.Amount
		}
		return nil, nil
	}, schema.Cost(fillCost))
	order.MustDeclareMethod("mark_delivered", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*OrderState)
		st.Delivered = true
		return st.Total, nil
	}, schema.Cost(cost))
	order.MustDeclareMethod("read", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*OrderState)
		return struct {
			OID       int
			Lines     int
			Delivered bool
		}{st.OID, len(st.Lines), st.Delivered}, nil
	}, schema.RO(), schema.Cost(cost))

	// --- Customer methods ----------------------------------------------
	// place_order creates the Order context. Under multiple ownership the
	// order is owned by District and Customer; under single ownership by
	// the Customer alone.
	customer.MustDeclareMethod("place_order", func(call schema.Call, args []any) (any, error) {
		oid := args[0].(int)
		lines := args[1].([]OrderLine)
		districtID := args[2].(ownershipID)
		var owners []ownershipID
		if so {
			owners = []ownershipID{call.Self()}
		} else {
			owners = []ownershipID{districtID, call.Self()}
		}
		ord, err := call.NewContext("Order", owners...)
		if err != nil {
			return nil, err
		}
		if _, err := call.Sync(ord, "fill", oid, lines); err != nil {
			return nil, err
		}
		st := call.State().(*CustomerState)
		st.LastOrder = uint64(ord)
		return ord, nil
	}, schema.MayCall("Order", "fill"), schema.Cost(custCost))

	customer.MustDeclareMethod("pay", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*CustomerState)
		amt := args[0].(int)
		st.Balance -= amt
		st.YTDPayment += amt
		st.Payments++
		return st.Balance, nil
	}, schema.Cost(custCost))

	customer.MustDeclareMethod("deliver_order", func(call schema.Call, args []any) (any, error) {
		ord := args[0].(ownershipID)
		total, err := call.Sync(ord, "mark_delivered")
		if err != nil {
			return nil, err
		}
		st := call.State().(*CustomerState)
		st.Balance += total.(int)
		st.Delivered++
		return total, nil
	}, schema.MayCall("Order", "mark_delivered"), schema.Cost(cost))

	customer.MustDeclareMethod("order_status", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*CustomerState)
		if st.LastOrder == 0 {
			return nil, nil
		}
		return call.Sync(ownID(st.LastOrder), "read")
	}, schema.RO(), schema.MayCall("Order", "read"), schema.Cost(cost))

	// --- District methods ----------------------------------------------
	// new_order_district: assign the order id and hand off to the
	// customer. Under single ownership the customer subtree is private, so
	// the district crabs into it and frees itself; under multiple
	// ownership the district must stay locked while customer→order calls
	// run (orders are reachable from the district around the customer).
	district.MustDeclareMethod("new_order_district", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*DistrictState)
		cust := args[0].(ownershipID)
		lines := args[1].([]OrderLine)
		st.NextOID++
		st.RecentItems = st.RecentItems[:0]
		for _, l := range lines {
			st.RecentItems = append(st.RecentItems, l.Item)
		}
		if so {
			// The pending-order record is filed when the order id is known;
			// under SO the order context id comes back via a dispatch-free
			// convention: customers record it, the district queues the
			// customer and resolves the order at delivery time.
			st.PendingOrders = append(st.PendingOrders, PendingOrder{Customer: uint64(cust)})
			return nil, call.Crab(cust, "place_order", st.NextOID, lines, call.Self())
		}
		ord, err := call.Sync(cust, "place_order", st.NextOID, lines, call.Self())
		if err != nil {
			return nil, err
		}
		st.PendingOrders = append(st.PendingOrders, PendingOrder{
			Order: uint64(ord.(ownershipID)), Customer: uint64(cust),
		})
		return ord, nil
	}, schema.MayCall("Customer", "place_order"), schema.Cost(cost))

	district.MustDeclareMethod("payment_district", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*DistrictState)
		cust := args[0].(ownershipID)
		amt := args[1].(int)
		st.YTD += amt
		if so {
			return nil, call.Crab(cust, "pay", amt)
		}
		return call.Sync(cust, "pay", amt)
	}, schema.MayCall("Customer", "pay"), schema.Cost(cost))

	// deliver: pop up to 10 pending orders. Multiple ownership reaches the
	// order contexts directly (the district owns them); single ownership
	// routes through the owning customer.
	district.MustDeclareMethod("deliver", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*DistrictState)
		n := len(st.PendingOrders)
		if n > 10 {
			n = 10
		}
		batch := st.PendingOrders[:n]
		st.PendingOrders = append([]PendingOrder(nil), st.PendingOrders[n:]...)
		delivered := 0
		for _, p := range batch {
			if so {
				// Resolve the order via the customer's last-order record.
				if _, err := call.Sync(ownID(p.Customer), "deliver_last"); err != nil {
					return nil, err
				}
			} else {
				if _, err := call.Sync(ownID(p.Customer), "deliver_order", ownID(p.Order)); err != nil {
					return nil, err
				}
			}
			delivered++
		}
		return delivered, nil
	}, schema.MayCall("Customer", "deliver_order"), schema.MayCall("Customer", "deliver_last"), schema.Cost(cost))

	customer.MustDeclareMethod("deliver_last", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*CustomerState)
		if st.LastOrder == 0 {
			return 0, nil
		}
		total, err := call.Sync(ownID(st.LastOrder), "mark_delivered")
		if err != nil {
			return nil, err
		}
		st.Balance += total.(int)
		st.Delivered++
		return total, nil
	}, schema.MayCall("Order", "mark_delivered"), schema.Cost(cost))

	district.MustDeclareMethod("recent_items", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*DistrictState)
		return append([]int(nil), st.RecentItems...), nil
	}, schema.RO(), schema.Cost(cost))

	// --- Warehouse methods ----------------------------------------------
	// new_order: reserve stock, then continue in the district via an
	// asynchronous tail call, releasing the Warehouse (§ 6.1.2: "once a
	// payment transaction finishes its execution in a Warehouse context, it
	// calls a method in a District context asynchronously, and releases the
	// Warehouse context. This allows another event to enter the Warehouse").
	warehouse.MustDeclareMethod("new_order", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*WarehouseState)
		district := args[0].(ownershipID)
		cust := args[1].(ownershipID)
		lines := args[2].([]OrderLine)
		for _, l := range lines {
			if st.Stock[l.Item] < l.Qty {
				st.Stock[l.Item] += 100 // restock per the spec's wrap rule
			}
			st.Stock[l.Item] -= l.Qty
		}
		call.Work(time.Duration(len(lines)) * whCost / 10)
		return nil, call.Crab(district, "new_order_district", cust, lines)
	}, schema.MayCall("District", "new_order_district"), schema.Cost(whCost))

	warehouse.MustDeclareMethod("payment", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*WarehouseState)
		district := args[0].(ownershipID)
		cust := args[1].(ownershipID)
		amt := args[2].(int)
		st.YTD += amt
		return nil, call.Crab(district, "payment_district", cust, amt)
	}, schema.MayCall("District", "payment_district"), schema.Cost(whCost))

	warehouse.MustDeclareMethod("stock_level", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*WarehouseState)
		district := args[0].(ownershipID)
		items, err := call.Sync(district, "recent_items")
		if err != nil {
			return nil, err
		}
		low := 0
		for _, it := range items.([]int) {
			if st.Stock[it] < 15 {
				low++
			}
		}
		return low, nil
	}, schema.RO(), schema.MayCall("District", "recent_items"), schema.Cost(whCost))

	if err := s.Freeze(); err != nil {
		return nil, fmt.Errorf("tpcc schema: %w", err)
	}
	return s, nil
}
