package tpcc

import (
	"fmt"
	"math/rand"
	"sync"

	"aeon/internal/cluster"
	"aeon/internal/orleans"
)

// OrleansApp is TPC-C on the Orleans baseline, in two variants (§ 6.1.2):
//
//   - "Orleans": strict serializability by orchestrating the grains in a
//     tree-like structure à la EventWave — every transaction takes an
//     application-level lock on the Warehouse grain, serializing globally.
//   - "Orleans*": grains called directly with no cross-grain
//     synchronization; TPC-C invariants can break, but it serves as
//     Orleans' best case.
type OrleansApp struct {
	cfg    Config
	rt     *orleans.Runtime
	unsafe bool

	warehouse orleans.GrainID
	districts []orleans.GrainID
	customers [][]orleans.GrainID
}

var _ App = (*OrleansApp)(nil)

// whGrainState is the Warehouse grain state, including the global
// application-level lock of the serializable variant.
type whGrainState struct {
	YTD      int
	Stock    []int
	lockHeld bool
	waiters  []*orleans.Deferred
}

// dGrainState is the District grain state.
type dGrainState struct {
	YTD           int
	NextOID       int
	PendingOrders []orleans.GrainID
	RecentItems   []int
}

// cGrainState is the Customer grain state.
type cGrainState struct {
	Balance    int
	YTDPayment int
	Payments   int
	LastOrder  orleans.GrainID
	Delivered  int
}

// oGrainState is an Order grain's state.
type oGrainState struct {
	mu        sync.Mutex // Orleans* can race order creation vs delivery
	OID       int
	Lines     []OrderLine
	Total     int
	Delivered bool
}

// BuildOrleans deploys TPC-C on an Orleans runtime; unsafe selects Orleans*.
func BuildOrleans(cl *cluster.Cluster, cfg Config, unsafe bool) (*OrleansApp, error) {
	rt := orleans.New(cl, orleans.DefaultConfig())
	app := &OrleansApp{cfg: cfg, rt: rt, unsafe: unsafe}
	if err := app.declare(); err != nil {
		rt.Close()
		return nil, err
	}
	if err := app.deploy(); err != nil {
		rt.Close()
		return nil, err
	}
	return app, nil
}

func (a *OrleansApp) declare() error {
	rt := a.rt
	cfg := a.cfg
	cost := cfg.StepCost

	if err := rt.RegisterClass(&orleans.Class{Name: "Warehouse", New: func() any {
		st := &whGrainState{Stock: make([]int, cfg.Items)}
		for i := range st.Stock {
			st.Stock[i] = 100
		}
		return st
	}}); err != nil {
		return err
	}
	if err := rt.RegisterClass(&orleans.Class{Name: "District", New: func() any { return &dGrainState{} }}); err != nil {
		return err
	}
	if err := rt.RegisterClass(&orleans.Class{Name: "Customer", New: func() any { return &cGrainState{} }}); err != nil {
		return err
	}
	if err := rt.RegisterClass(&orleans.Class{Name: "Order", New: func() any { return &oGrainState{} }}); err != nil {
		return err
	}

	decl := func(class, name string, h orleans.Handler) error {
		return rt.DeclareMethod(class, name, cost, h)
	}

	// Warehouse lock for the serializable variant.
	if err := rt.DeclareMethod("Warehouse", "lock", 0, func(call *orleans.Call, args []any) (any, error) {
		st := call.State().(*whGrainState)
		if !st.lockHeld {
			st.lockHeld = true
			return true, nil
		}
		st.waiters = append(st.waiters, call.DeferReply())
		return nil, nil
	}); err != nil {
		return err
	}
	if err := rt.DeclareMethod("Warehouse", "unlock", 0, func(call *orleans.Call, args []any) (any, error) {
		st := call.State().(*whGrainState)
		if len(st.waiters) > 0 {
			next := st.waiters[0]
			st.waiters = st.waiters[1:]
			next.Resolve(true, nil)
		} else {
			st.lockHeld = false
		}
		return nil, nil
	}); err != nil {
		return err
	}

	if err := decl("Warehouse", "reserve_stock", func(call *orleans.Call, args []any) (any, error) {
		st := call.State().(*whGrainState)
		for _, l := range args[0].([]OrderLine) {
			if st.Stock[l.Item] < l.Qty {
				st.Stock[l.Item] += 100
			}
			st.Stock[l.Item] -= l.Qty
		}
		return nil, nil
	}); err != nil {
		return err
	}
	if err := decl("Warehouse", "pay_ytd", func(call *orleans.Call, args []any) (any, error) {
		st := call.State().(*whGrainState)
		st.YTD += args[0].(int)
		return nil, nil
	}); err != nil {
		return err
	}
	if err := decl("Warehouse", "stock_level", func(call *orleans.Call, args []any) (any, error) {
		st := call.State().(*whGrainState)
		low := 0
		for _, it := range args[0].([]int) {
			if st.Stock[it] < 15 {
				low++
			}
		}
		return low, nil
	}); err != nil {
		return err
	}

	if err := decl("Order", "fill", func(call *orleans.Call, args []any) (any, error) {
		st := call.State().(*oGrainState)
		st.mu.Lock()
		defer st.mu.Unlock()
		st.OID = args[0].(int)
		st.Lines = args[1].([]OrderLine)
		for _, l := range st.Lines {
			st.Total += l.Amount
		}
		return nil, nil
	}); err != nil {
		return err
	}
	if err := decl("Order", "mark_delivered", func(call *orleans.Call, args []any) (any, error) {
		st := call.State().(*oGrainState)
		st.mu.Lock()
		defer st.mu.Unlock()
		st.Delivered = true
		return st.Total, nil
	}); err != nil {
		return err
	}

	if err := decl("Customer", "place_order", func(call *orleans.Call, args []any) (any, error) {
		ord, err := a.rt.CreateGrain("Order")
		if err != nil {
			return nil, err
		}
		if _, err := call.Call(ord, "fill", args[0], args[1]); err != nil {
			return nil, err
		}
		st := call.State().(*cGrainState)
		st.LastOrder = ord
		return ord, nil
	}); err != nil {
		return err
	}
	if err := decl("Customer", "pay", func(call *orleans.Call, args []any) (any, error) {
		st := call.State().(*cGrainState)
		amt := args[0].(int)
		st.Balance -= amt
		st.YTDPayment += amt
		st.Payments++
		return st.Balance, nil
	}); err != nil {
		return err
	}
	if err := decl("Customer", "order_status", func(call *orleans.Call, args []any) (any, error) {
		st := call.State().(*cGrainState)
		return st.LastOrder, nil
	}); err != nil {
		return err
	}
	if err := decl("Customer", "credit_delivery", func(call *orleans.Call, args []any) (any, error) {
		st := call.State().(*cGrainState)
		st.Balance += args[0].(int)
		st.Delivered++
		return nil, nil
	}); err != nil {
		return err
	}

	if err := decl("District", "new_order", func(call *orleans.Call, args []any) (any, error) {
		st := call.State().(*dGrainState)
		wh := args[0].(orleans.GrainID)
		cust := args[1].(orleans.GrainID)
		lines := args[2].([]OrderLine)
		if _, err := call.Call(wh, "reserve_stock", lines); err != nil {
			return nil, err
		}
		st.NextOID++
		st.RecentItems = st.RecentItems[:0]
		for _, l := range lines {
			st.RecentItems = append(st.RecentItems, l.Item)
		}
		ord, err := call.Call(cust, "place_order", st.NextOID, lines)
		if err != nil {
			return nil, err
		}
		st.PendingOrders = append(st.PendingOrders, ord.(orleans.GrainID))
		return ord, nil
	}); err != nil {
		return err
	}
	if err := decl("District", "payment", func(call *orleans.Call, args []any) (any, error) {
		st := call.State().(*dGrainState)
		wh := args[0].(orleans.GrainID)
		cust := args[1].(orleans.GrainID)
		amt := args[2].(int)
		if _, err := call.Call(wh, "pay_ytd", amt); err != nil {
			return nil, err
		}
		st.YTD += amt
		return call.Call(cust, "pay", amt)
	}); err != nil {
		return err
	}
	if err := decl("District", "deliver", func(call *orleans.Call, args []any) (any, error) {
		st := call.State().(*dGrainState)
		cust := args[0].(orleans.GrainID)
		n := len(st.PendingOrders)
		if n > 10 {
			n = 10
		}
		batch := st.PendingOrders[:n]
		st.PendingOrders = append([]orleans.GrainID(nil), st.PendingOrders[n:]...)
		for _, ord := range batch {
			total, err := call.Call(ord, "mark_delivered")
			if err != nil {
				return nil, err
			}
			if _, err := call.Call(cust, "credit_delivery", total); err != nil {
				return nil, err
			}
		}
		return n, nil
	}); err != nil {
		return err
	}
	return decl("District", "stock_level", func(call *orleans.Call, args []any) (any, error) {
		st := call.State().(*dGrainState)
		wh := args[0].(orleans.GrainID)
		return call.Call(wh, "stock_level", append([]int(nil), st.RecentItems...))
	})
}

func (a *OrleansApp) deploy() error {
	var err error
	a.warehouse, err = a.rt.CreateGrain("Warehouse")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	for d := 0; d < a.cfg.Districts; d++ {
		district, err := a.rt.CreateGrain("District")
		if err != nil {
			return err
		}
		a.districts = append(a.districts, district)
		var custs []orleans.GrainID
		for c := 0; c < a.cfg.CustomersPerDistrict; c++ {
			cust, err := a.rt.CreateGrain("Customer")
			if err != nil {
				return err
			}
			custs = append(custs, cust)
		}
		a.customers = append(a.customers, custs)
		for _, cust := range custs {
			if _, err := a.rt.Call(district, "new_order",
				a.warehouse, cust, a.cfg.genLines(rng)); err != nil {
				return fmt.Errorf("seed order: %w", err)
			}
		}
	}
	return nil
}

// Name implements App.
func (a *OrleansApp) Name() string {
	if a.unsafe {
		return "Orleans*"
	}
	return "Orleans"
}

// Runtime exposes the underlying runtime.
func (a *OrleansApp) Runtime() *orleans.Runtime { return a.rt }

// withLock wraps fn in the warehouse lock for the serializable variant.
func (a *OrleansApp) withLock(fn func() error) error {
	if !a.unsafe {
		if _, err := a.rt.Call(a.warehouse, "lock"); err != nil {
			return err
		}
		defer func() { _, _ = a.rt.Call(a.warehouse, "unlock") }()
	}
	return fn()
}

// DoTxn implements App.
func (a *OrleansApp) DoTxn(rng *rand.Rand) error {
	d := rng.Intn(len(a.districts))
	district := a.districts[d]
	cust := a.customers[d][rng.Intn(len(a.customers[d]))]
	switch a.cfg.pickTxn(rng) {
	case txnNewOrder:
		lines := a.cfg.genLines(rng)
		return a.withLock(func() error {
			_, err := a.rt.Call(district, "new_order", a.warehouse, cust, lines)
			return err
		})
	case txnPayment:
		amt := 1 + rng.Intn(5000)
		return a.withLock(func() error {
			_, err := a.rt.Call(district, "payment", a.warehouse, cust, amt)
			return err
		})
	case txnOrderStatus:
		_, err := a.rt.Call(cust, "order_status")
		return err
	case txnDelivery:
		return a.withLock(func() error {
			_, err := a.rt.Call(district, "deliver", cust)
			return err
		})
	default: // stock level
		_, err := a.rt.Call(district, "stock_level", a.warehouse)
		return err
	}
}

// Close implements App.
func (a *OrleansApp) Close() { a.rt.Close() }
