package transport

import "sync/atomic"

// Process-wide mux-stream instrumentation. Kept as package-level atomics so
// the hot paths (deliver, acquire/release) pay one uncontended atomic each
// and the ops plane can read them without threading a registry through
// OpenStream. In a normal deployment one process hosts one node, so
// process-wide equals per-node.
var (
	muxDroppedResponses atomic.Uint64
	muxSlotsInUse       atomic.Int64
	muxStreamsOpen      atomic.Int64
)

// MuxStats is a snapshot of the process-wide mux internals.
type MuxStats struct {
	// DroppedResponses counts late or duplicated responses that arrived for
	// a correlation ID with no parked caller (slot re-armed or already
	// completed). Before this counter they vanished silently in the
	// slot-table generation check.
	DroppedResponses uint64
	// SlotsInUse is the current number of occupied completion slots across
	// every open mux stream (per-stream occupancy is bounded by MuxWindow).
	SlotsInUse int64
	// StreamsOpen is the current number of live mux streams.
	StreamsOpen int64
}

// ReadMuxStats returns the current process-wide mux counters.
func ReadMuxStats() MuxStats {
	return MuxStats{
		DroppedResponses: muxDroppedResponses.Load(),
		SlotsInUse:       muxSlotsInUse.Load(),
		StreamsOpen:      muxStreamsOpen.Load(),
	}
}
