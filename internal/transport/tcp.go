package transport

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// isTimeout reports whether err is a network timeout (deadline exceeded on
// the socket).
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// TCPMesh is a Mesh whose endpoints communicate over real TCP sockets with
// gob-encoded frames. It supports multi-process deployments: each process
// attaches its node and dials peers by address.
//
// Wire protocol: a one-shot connection carries a stream of gob-encoded
// wireReq frames from client to server and wireResp frames back, strictly
// request/response (one outstanding call per connection; the client pools
// connections). A connection that instead opens with the mux magic carries
// the pipelined multiplexed protocol (see mux.go): many in-flight requests
// per connection, responses matched by correlation ID. The server peeks the
// first bytes to tell the two apart, so both protocols share one listener
// port.
type TCPMesh struct {
	mu     sync.RWMutex
	addrs  map[NodeID]string
	locals map[NodeID]*tcpEndpoint
}

var _ Mesh = (*TCPMesh)(nil)

type wireReq struct {
	From NodeID
	Req  Message
}

type wireResp struct {
	Resp Message
	Err  string
}

// NewTCPMesh returns a TCP mesh. Peers must be registered with Register
// before they can be called.
func NewTCPMesh() *TCPMesh {
	return &TCPMesh{
		addrs:  make(map[NodeID]string),
		locals: make(map[NodeID]*tcpEndpoint),
	}
}

// ErrCallTimeout is returned by TCP mesh calls whose context deadline
// expired before the peer answered (dead peer, partition, or overload); the
// connection is discarded so a late response can never be mis-matched to a
// later call.
var ErrCallTimeout = errors.New("transport: call timed out")

// Register associates a node ID with a dialable address. Registering the
// local node's own ID before Attach makes Attach listen on that address.
func (m *TCPMesh) Register(id NodeID, addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.addrs[id] = addr
}

// Attach implements Mesh: it starts a TCP listener — on the node's
// registered address when one was Registered, otherwise on an ephemeral
// loopback port — and serves requests with h.
func (m *TCPMesh) Attach(id NodeID, h Handler) (Endpoint, error) {
	m.mu.RLock()
	addr, ok := m.addrs[id]
	m.mu.RUnlock()
	if !ok {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	return m.AttachListener(id, h, ln)
}

// AttachListener attaches a node serving on the given listener.
func (m *TCPMesh) AttachListener(id NodeID, h Handler, ln net.Listener) (Endpoint, error) {
	m.mu.Lock()
	if _, ok := m.locals[id]; ok {
		m.mu.Unlock()
		_ = ln.Close()
		return nil, fmt.Errorf("%v: %w", id, ErrNodeAttached)
	}
	ep := &tcpEndpoint{
		mesh:    m,
		id:      id,
		handler: h,
		ln:      ln,
		conns:   make(map[NodeID][]*clientConn),
		served:  make(map[net.Conn]bool),
		streams: make(map[*muxStream]bool),
		done:    make(chan struct{}),
	}
	m.locals[id] = ep
	m.addrs[id] = ln.Addr().String()
	m.mu.Unlock()

	ep.wg.Add(1)
	go ep.serve()
	return ep, nil
}

// Addr returns the registered address of a node.
func (m *TCPMesh) Addr(id NodeID) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	a, ok := m.addrs[id]
	return a, ok
}

type clientConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

type tcpEndpoint struct {
	mesh    *TCPMesh
	id      NodeID
	handler Handler
	ln      net.Listener

	mu      sync.Mutex
	conns   map[NodeID][]*clientConn
	served  map[net.Conn]bool
	streams map[*muxStream]bool
	closed  bool

	done chan struct{}
	wg   sync.WaitGroup
}

var _ Endpoint = (*tcpEndpoint)(nil)

func (e *tcpEndpoint) ID() NodeID { return e.id }

func (e *tcpEndpoint) serve() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			select {
			case <-e.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		e.wg.Add(1)
		go e.serveConn(conn)
	}
}

func (e *tcpEndpoint) serveConn(conn net.Conn) {
	defer e.wg.Done()
	defer func() { _ = conn.Close() }()
	// Track the accepted connection so Close can unblock the decoder even
	// when the remote side keeps the connection open.
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.served[conn] = true
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.served, conn)
		e.mu.Unlock()
	}()
	// Peek the opening bytes: a mux connection announces itself with a
	// magic gob can never emit, everything else is the one-shot protocol.
	br := bufio.NewReader(conn)
	head, err := br.Peek(len(muxMagic))
	if err != nil {
		return
	}
	if bytes.Equal(head, muxMagic[:]) {
		_, _ = br.Discard(len(muxMagic))
		serveMux(&peekedConn{Conn: conn, r: br}, e.handler, e.done)
		return
	}
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(conn)
	for {
		var req wireReq
		if err := dec.Decode(&req); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return
			}
			return
		}
		resp, err := e.handler(context.Background(), req.From, req.Req)
		out := wireResp{Resp: resp}
		if err != nil {
			out.Err = err.Error()
		}
		if err := enc.Encode(out); err != nil {
			return
		}
	}
}

// peekedConn is a net.Conn whose reads go through the bufio.Reader that
// peeked the protocol magic (so no peeked bytes are lost).
type peekedConn struct {
	net.Conn
	r *bufio.Reader
}

func (c *peekedConn) Read(p []byte) (int, error) { return c.r.Read(p) }

// Stream implements Streamer: it dials a dedicated mux connection to the
// peer. The stream lives until Close (its own or the endpoint's); callers
// cache streams and reopen on failure.
func (e *tcpEndpoint) Stream(to NodeID) (Stream, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	e.mu.Unlock()
	addr, ok := e.mesh.Addr(to)
	if !ok {
		return nil, fmt.Errorf("%v: %w", to, ErrNodeUnknown)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial mux %v: %w", to, err)
	}
	s, err := dialMux(conn, e.id, to)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		_ = s.Close()
		return nil, ErrClosed
	}
	e.streams[s] = true
	e.mu.Unlock()
	return &tcpStream{ep: e, mux: s}, nil
}

// tcpStream wraps a muxStream to untrack it from the endpoint on Close.
type tcpStream struct {
	ep  *tcpEndpoint
	mux *muxStream
}

var (
	_ Stream      = (*tcpStream)(nil)
	_ BatchCaller = (*tcpStream)(nil)
)

func (s *tcpStream) Call(ctx context.Context, req Message) (Message, error) {
	return s.mux.Call(ctx, req)
}

func (s *tcpStream) CallBatch(ctx context.Context, reqs []Message) ([]Message, []error, error) {
	return s.mux.CallBatch(ctx, reqs)
}

func (s *tcpStream) Close() error {
	s.ep.mu.Lock()
	delete(s.ep.streams, s.mux)
	s.ep.mu.Unlock()
	return s.mux.Close()
}

func (e *tcpEndpoint) Call(ctx context.Context, to NodeID, req Message) (Message, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return Message{}, ErrClosed
	}
	var cc *clientConn
	if pool := e.conns[to]; len(pool) > 0 {
		cc = pool[len(pool)-1]
		e.conns[to] = pool[:len(pool)-1]
	}
	e.mu.Unlock()

	if cc == nil {
		addr, ok := e.mesh.Addr(to)
		if !ok {
			return Message{}, fmt.Errorf("%v: %w", to, ErrNodeUnknown)
		}
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			// A peer whose handshake never completes (host down, SYN
			// blackholed) is the same dead-peer case as a hung response:
			// surface the typed timeout.
			if isTimeout(err) || errors.Is(err, context.DeadlineExceeded) {
				return Message{}, fmt.Errorf("dial %v: %w", to, ErrCallTimeout)
			}
			return Message{}, fmt.Errorf("dial %v: %w", to, err)
		}
		cc = &clientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	}

	// Honor the caller's deadline on the socket itself: without it a dead
	// peer (process gone but connection alive, or a partition that eats the
	// response) wedges the decoder forever. A timed-out connection is closed,
	// never pooled, so a late response cannot be mis-matched to a later call.
	if deadline, ok := ctx.Deadline(); ok {
		if err := cc.conn.SetDeadline(deadline); err != nil {
			_ = cc.conn.Close()
			return Message{}, fmt.Errorf("set deadline for %v: %w", to, err)
		}
	}
	if err := cc.enc.Encode(wireReq{From: e.id, Req: req}); err != nil {
		_ = cc.conn.Close()
		if isTimeout(err) {
			return Message{}, fmt.Errorf("send to %v: %w", to, ErrCallTimeout)
		}
		return Message{}, fmt.Errorf("send to %v: %w", to, err)
	}
	var resp wireResp
	if err := cc.dec.Decode(&resp); err != nil {
		_ = cc.conn.Close()
		if isTimeout(err) {
			return Message{}, fmt.Errorf("recv from %v: %w", to, ErrCallTimeout)
		}
		return Message{}, fmt.Errorf("recv from %v: %w", to, err)
	}
	pool := true
	if _, ok := ctx.Deadline(); ok {
		// Clear the deadline before the connection returns to the pool.
		if err := cc.conn.SetDeadline(time.Time{}); err != nil {
			_ = cc.conn.Close()
			pool = false
		}
	}

	e.mu.Lock()
	if pool && !e.closed {
		e.conns[to] = append(e.conns[to], cc)
		e.mu.Unlock()
	} else {
		e.mu.Unlock()
		_ = cc.conn.Close()
	}

	if resp.Err != "" {
		return Message{}, &RemoteError{Node: to, Msg: resp.Err}
	}
	return resp.Resp, nil
}

func (e *tcpEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	for _, pool := range e.conns {
		for _, cc := range pool {
			_ = cc.conn.Close()
		}
	}
	e.conns = make(map[NodeID][]*clientConn)
	for conn := range e.served {
		_ = conn.Close() // unblock serveConn decoders
	}
	streams := make([]*muxStream, 0, len(e.streams))
	for s := range e.streams {
		streams = append(streams, s)
	}
	e.streams = make(map[*muxStream]bool)
	e.mu.Unlock()
	for _, s := range streams {
		_ = s.Close() // fail pending mux calls fast
	}

	close(e.done)
	err := e.ln.Close()
	e.wg.Wait()

	e.mesh.mu.Lock()
	delete(e.mesh.locals, e.id)
	e.mesh.mu.Unlock()
	return err
}

// RemoteError carries an error string returned by a remote handler.
type RemoteError struct {
	Node NodeID
	Msg  string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote %v: %s", e.Node, e.Msg)
}
