package transport

// Pipelined, multiplexed connections. The one-shot TCP protocol is strictly
// request/response — one outstanding call per connection — so a remote
// submit costs a full round trip and the wire idles between frames. A mux
// connection instead carries many in-flight requests: each call is stamped
// with a correlation ID, a writer goroutine coalesces queued frames into
// single buffered flushes (writev-style — one syscall covers every frame
// queued while the previous flush was in flight), the server dispatches
// frames to a bounded worker pool as they arrive, and a reader goroutine
// matches responses back to callers by correlation ID, in whatever order
// the handlers finish.
//
// Completion plane. Completions are delivered through a fixed per-stream
// slot table instead of one channel per call: a correlation ID encodes its
// slot index in the low bits and a per-slot generation in the high bits, so
// the reader finds the destination slot with a mask, writes the result, and
// wakes the caller through one of a small set of striped notifiers. A burst
// of responses arriving in one read batch wakes each touched stripe once —
// not once per call — which is what removes the per-event channel allocation
// and wakeup that dominated the pipelined submit path (BENCH_6's residual).
//
// Correlation IDs are still never reused: the generation increments on every
// slot acquisition, so a late response (its caller timed out and abandoned
// the slot) or a duplicated response can only mismatch the slot's current ID
// and be discarded; it can never be delivered to a newer request.
//
// Backpressure: the slot freelist doubles as the bounded in-flight window
// (MuxWindow, 1024). When no slot is free, Call blocks until one frees or
// the caller's context expires — pressure propagates to the submitter
// instead of growing an unbounded queue or dropping frames. The server side
// weighs admission by *events*, not frames (schema.HotFrameEvents), so a
// 128-event batch frame takes 128 admission slots and batching cannot be
// used to sidestep the window.
//
// Wire format (unchanged since PR 6). A mux connection opens with a 12-byte
// preamble:
//
//	[4]byte{0xA7, 'M', 'X', '1'}   magic (0xA7 never begins a gob stream)
//	uint64 BE                      caller's NodeID
//
// then carries length-prefixed frames in both directions:
//
//	uint32 BE      frame length (bytes that follow; ≤ 64 MiB)
//	uint64 BE      correlation ID
//	uvarint+bytes  kind
//	uvarint+bytes  err (responses; empty on requests and successes)
//	rest           payload

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aeon/internal/schema"
)

// muxMagic opens every multiplexed connection.
var muxMagic = [4]byte{0xA7, 'M', 'X', '1'}

// MuxWindow is the per-stream in-flight window: at most this many calls may
// be pending on one mux connection; further Calls block (backpressure).
// Must be a power of two — correlation IDs carry the slot index in their
// low bits.
const MuxWindow = 1024

// muxSlotShift is the number of correlation-ID bits holding the slot index.
const muxSlotShift = 10

// muxNotifyStripes is the number of completion notifiers a stream's slots
// hash onto. Waiters park on their slot's stripe; the reader wakes each
// dirty stripe once per read burst.
const muxNotifyStripes = 16

// muxServerAdmission bounds the total in-flight event weight (frames
// weighted by their event count) one server connection admits before the
// read loop stops pulling frames off the socket.
const muxServerAdmission = 4 * MuxWindow

// muxWorkerIdle is how long a server pool worker stays parked waiting for
// the next frame before exiting; the pool grows on demand up to MuxWindow
// workers and shrinks back when a burst passes.
const muxWorkerIdle = time.Second

// maxMuxFrame bounds a frame body so a corrupt length prefix cannot demand
// an absurd allocation.
const maxMuxFrame = 64 << 20

// ErrStreamBroken is returned by calls pending on a mux stream whose
// connection failed; the stream is dead and must be reopened.
var ErrStreamBroken = errors.New("transport: mux stream broken")

// writeMuxFrame appends one frame to w using scratch for the header; the
// payload bytes are written directly (bufio coalesces them into the next
// flush).
func writeMuxFrame(w *bufio.Writer, scratch []byte, corrID uint64, kind, errStr string, payload []byte) error {
	body := 8 + uvarintLen(uint64(len(kind))) + len(kind) +
		uvarintLen(uint64(len(errStr))) + len(errStr) + len(payload)
	if body > maxMuxFrame {
		return fmt.Errorf("transport: mux frame too large (%d bytes)", body)
	}
	scratch = binary.BigEndian.AppendUint32(scratch[:0], uint32(body))
	scratch = binary.BigEndian.AppendUint64(scratch, corrID)
	scratch = binary.AppendUvarint(scratch, uint64(len(kind)))
	scratch = append(scratch, kind...)
	scratch = binary.AppendUvarint(scratch, uint64(len(errStr)))
	scratch = append(scratch, errStr...)
	if _, err := w.Write(scratch); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// readMuxFrame reads one frame, reusing *buf for the body. The returned
// kind/err/payload alias *buf and are only valid until the next call.
func readMuxFrame(r io.Reader, buf *[]byte) (corrID uint64, kind, errStr string, payload []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, "", "", nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 8 || n > maxMuxFrame {
		return 0, "", "", nil, fmt.Errorf("transport: bad mux frame length %d", n)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	body := (*buf)[:n]
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, "", "", nil, err
	}
	corrID = binary.BigEndian.Uint64(body[:8])
	rest := body[8:]
	take := func() ([]byte, error) {
		ln, sz := binary.Uvarint(rest)
		if sz <= 0 || uint64(len(rest)-sz) < ln {
			return nil, fmt.Errorf("transport: corrupt mux frame field")
		}
		f := rest[sz : sz+int(ln)]
		rest = rest[sz+int(ln):]
		return f, nil
	}
	kb, err := take()
	if err != nil {
		return 0, "", "", nil, err
	}
	eb, err := take()
	if err != nil {
		return 0, "", "", nil, err
	}
	return corrID, string(kb), string(eb), rest, nil
}

// ---- flush barriers ----

// flushBarrier is the write barrier between a caller that may recycle its
// pooled request payload and the writer goroutine that flushes it. It is
// pooled (one barrier per call was measurable churn at depth ≥256): the
// writer signals with a token send (a closed channel could not be reused)
// and the last of the two references — caller and writer — drains any
// unconsumed token and returns the barrier to the pool.
type flushBarrier struct {
	ch   chan struct{}
	refs atomic.Int32
}

var barrierPool = sync.Pool{
	New: func() any { return &flushBarrier{ch: make(chan struct{}, 1)} },
}

func getFlushBarrier() *flushBarrier {
	fb := barrierPool.Get().(*flushBarrier)
	fb.refs.Store(2)
	return fb
}

// signal marks the barrier's frame flushed. Writer side, called once.
func (fb *flushBarrier) signal() {
	select {
	case fb.ch <- struct{}{}:
	default:
	}
}

// release drops one reference; the last reference recycles the barrier. A
// barrier stranded in the write queue of a failed stream keeps its writer
// reference forever and is simply garbage collected.
func (fb *flushBarrier) release() {
	if fb.refs.Add(-1) == 0 {
		select {
		case <-fb.ch:
		default:
		}
		barrierPool.Put(fb)
	}
}

// ---- client stream ----

// muxWrite is one queued outbound frame.
type muxWrite struct {
	corrID  uint64
	kind    string
	errStr  string
	payload []byte
	// flushed, when non-nil, is signalled once the frame (and everything
	// queued before it) has been flushed to the socket — the write barrier
	// callers releasing pooled payload buffers need.
	flushed *flushBarrier
}

// muxSlot is one entry of the completion plane. The owner (the caller
// holding the slot between acquire and release) and the reader synchronize
// on mu; gen is touched only by owners while they hold the slot, so it
// survives across uses without wider locking.
type muxSlot struct {
	mu   sync.Mutex
	corr uint64 // current correlation ID; 0 = no caller listening
	done bool
	msg  Message
	err  error
	gen  uint64
}

// notifyStripe wakes every waiter parked on it by closing and replacing its
// channel. Waiters grab the current channel before re-checking their slot,
// so a wake between check and park is never lost.
type notifyStripe struct {
	mu sync.Mutex
	ch chan struct{}
}

func (n *notifyStripe) get() <-chan struct{} {
	n.mu.Lock()
	ch := n.ch
	n.mu.Unlock()
	return ch
}

func (n *notifyStripe) wake() {
	n.mu.Lock()
	close(n.ch)
	n.ch = make(chan struct{})
	n.mu.Unlock()
}

// muxStream is the client half of a multiplexed connection.
type muxStream struct {
	to   NodeID
	conn net.Conn

	writeCh chan muxWrite

	slots   []muxSlot
	free    chan uint32 // slot freelist; doubles as the in-flight window
	stripes [muxNotifyStripes]notifyStripe

	mu     sync.Mutex
	broken error

	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

var (
	_ Stream      = (*muxStream)(nil)
	_ BatchCaller = (*muxStream)(nil)
)

// dialMux opens a mux stream over an established connection, sending the
// preamble and starting the writer/reader goroutines.
func dialMux(conn net.Conn, from, to NodeID) (*muxStream, error) {
	var pre [12]byte
	copy(pre[:4], muxMagic[:])
	binary.BigEndian.PutUint64(pre[4:], uint64(int64(from)))
	if _, err := conn.Write(pre[:]); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("mux preamble to %v: %w", to, err)
	}
	s := &muxStream{
		to:      to,
		conn:    conn,
		writeCh: make(chan muxWrite, MuxWindow),
		slots:   make([]muxSlot, MuxWindow),
		free:    make(chan uint32, MuxWindow),
		done:    make(chan struct{}),
	}
	for i := range s.stripes {
		s.stripes[i].ch = make(chan struct{})
	}
	for i := uint32(0); i < MuxWindow; i++ {
		s.free <- i
	}
	s.wg.Add(2)
	muxStreamsOpen.Add(1)
	go s.writer()
	go s.reader()
	return s, nil
}

// fail breaks the stream: the connection closes, done wakes every parked
// caller (they observe the break directly — no per-call delivery needed),
// and future calls fail fast.
func (s *muxStream) fail(err error) {
	s.once.Do(func() {
		s.mu.Lock()
		s.broken = err
		s.mu.Unlock()
		close(s.done)
		_ = s.conn.Close()
		muxStreamsOpen.Add(-1)
	})
}

// Close implements Stream.
func (s *muxStream) Close() error {
	s.fail(ErrStreamBroken)
	s.wg.Wait()
	return nil
}

// writer drains the queue into the buffered socket writer, flushing once
// per burst: every frame queued while the previous flush was on the wire
// rides the next syscall.
func (s *muxStream) writer() {
	defer s.wg.Done()
	w := bufio.NewWriterSize(s.conn, 64<<10)
	scratch := make([]byte, 0, 64)
	var notify []*flushBarrier
	for {
		var first muxWrite
		select {
		case first = <-s.writeCh:
		case <-s.done:
			return
		}
		err := writeMuxFrame(w, scratch, first.corrID, first.kind, first.errStr, first.payload)
		if first.flushed != nil {
			notify = append(notify, first.flushed)
		}
		// Drain the burst before flushing. When the queue looks empty, yield
		// once and re-check: callers that just woke from the previous flush
		// are usually about to enqueue, and folding their frames into this
		// flush is what turns N round-trip syscalls into one.
		yielded := false
	drain:
		for err == nil {
			select {
			case next := <-s.writeCh:
				err = writeMuxFrame(w, scratch, next.corrID, next.kind, next.errStr, next.payload)
				if next.flushed != nil {
					notify = append(notify, next.flushed)
				}
			default:
				if !yielded && w.Buffered() < 32<<10 {
					yielded = true
					runtime.Gosched()
					continue
				}
				break drain
			}
		}
		if err == nil {
			err = w.Flush()
		}
		for i, fb := range notify {
			fb.signal()
			fb.release()
			notify[i] = nil
		}
		notify = notify[:0]
		if err != nil {
			s.fail(fmt.Errorf("mux write to %v: %w", s.to, err))
			return
		}
	}
}

// frameBuffered reports whether a complete frame is already sitting in r's
// buffer — i.e. whether the next readMuxFrame can return without blocking.
// The reader uses it to batch completion wakeups: notifications are held
// while more responses are decodable and flushed just before the loop would
// block on the socket.
func frameBuffered(r *bufio.Reader) bool {
	if r.Buffered() < 4 {
		return false // Peek would hit the socket and block
	}
	hdr, err := r.Peek(4)
	if err != nil {
		return false
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > maxMuxFrame {
		return false // corrupt length; the next read will surface the error
	}
	return r.Buffered() >= 4+int(n)
}

// reader matches inbound frames to completion slots by correlation ID. A
// frame whose ID mismatches its slot's current ID — its caller timed out,
// or a faulty network duplicated the response — is discarded: IDs are never
// reused, so it cannot belong to a newer call. Wakeups are batched per read
// burst: each touched stripe is woken once, after every already-buffered
// response has been delivered.
func (s *muxStream) reader() {
	defer s.wg.Done()
	r := bufio.NewReaderSize(s.conn, 64<<10)
	var buf []byte
	var dirty uint32 // bitmask of stripes with undelivered wakeups
	for {
		corrID, kind, errStr, payload, err := readMuxFrame(r, &buf)
		if err != nil {
			s.fail(fmt.Errorf("mux read from %v: %w", s.to, err))
			return
		}
		if s.deliver(corrID, kind, errStr, payload) {
			dirty |= 1 << (uint32(corrID&(MuxWindow-1)) % muxNotifyStripes)
		}
		if dirty != 0 && !frameBuffered(r) {
			for i := uint32(0); dirty != 0; i++ {
				if dirty&(1<<i) != 0 {
					s.stripes[i].wake()
					dirty &^= 1 << i
				}
			}
		}
	}
}

// deliver writes one response into its slot; it reports whether a caller is
// listening (and therefore whether its stripe needs a wakeup).
func (s *muxStream) deliver(corrID uint64, kind, errStr string, payload []byte) bool {
	sl := &s.slots[corrID&(MuxWindow-1)]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.corr != corrID || sl.done {
		muxDroppedResponses.Add(1)
		return false // late or duplicated response: no caller, drop it
	}
	if errStr != "" {
		sl.err = &RemoteError{Node: s.to, Msg: errStr}
	} else {
		// The read buffer is reused for the next frame; the payload handed
		// to the caller must own its bytes.
		p := make([]byte, len(payload))
		copy(p, payload)
		sl.msg = Message{Kind: kind, Payload: p}
	}
	sl.done = true
	return true
}

// acquire takes a free completion slot (the backpressure point).
func (s *muxStream) acquire(ctx context.Context) (uint32, error) {
	select {
	case idx := <-s.free:
		select {
		case <-s.done:
			s.free <- idx
			return 0, s.brokenErr()
		default:
			muxSlotsInUse.Add(1)
			return idx, nil
		}
	case <-ctx.Done():
		return 0, fmt.Errorf("mux call to %v: %w", s.to, ErrCallTimeout)
	case <-s.done:
		return 0, s.brokenErr()
	}
}

// arm stamps a fresh, never-before-used correlation ID onto an acquired
// slot and opens it for delivery.
func (s *muxStream) arm(idx uint32) uint64 {
	sl := &s.slots[idx]
	sl.mu.Lock()
	sl.gen++
	corr := sl.gen<<muxSlotShift | uint64(idx)
	sl.corr = corr
	sl.done = false
	sl.msg = Message{}
	sl.err = nil
	sl.mu.Unlock()
	return corr
}

// disarm closes a slot for delivery without completing it (the frame never
// reached the write queue).
func (s *muxStream) disarm(idx uint32) {
	sl := &s.slots[idx]
	sl.mu.Lock()
	sl.corr = 0
	sl.done = false
	sl.msg, sl.err = Message{}, nil
	sl.mu.Unlock()
}

// release returns a slot to the freelist.
func (s *muxStream) release(idx uint32) {
	muxSlotsInUse.Add(-1)
	s.free <- idx
}

// enqueue hands a frame to the writer.
func (s *muxStream) enqueue(ctx context.Context, wr muxWrite) error {
	select {
	case s.writeCh <- wr:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("mux call to %v: %w", s.to, ErrCallTimeout)
	case <-s.done:
		return s.brokenErr()
	}
}

// awaitSlot parks on the slot's stripe until the reader completes the slot,
// the context expires, or the stream breaks. callErr is a per-call handler
// failure (RemoteError); fatal is a transport-level failure that voids the
// whole flight. Exactly one of the three outcomes is set, and in every case
// the slot has been returned to the freelist when awaitSlot returns.
func (s *muxStream) awaitSlot(ctx context.Context, idx uint32, fb *flushBarrier) (msg Message, callErr, fatal error) {
	sl := &s.slots[idx]
	stripe := &s.stripes[idx%muxNotifyStripes]
	for {
		ch := stripe.get()
		sl.mu.Lock()
		if sl.done {
			msg, callErr = sl.msg, sl.err
			sl.corr, sl.done, sl.msg, sl.err = 0, false, Message{}, nil
			sl.mu.Unlock()
			fb.release()
			s.release(idx)
			return msg, callErr, nil
		}
		sl.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			s.disarm(idx)
			// Callers may recycle the payload once we return, so an
			// abandoned call must wait out the flush first.
			select {
			case <-fb.ch:
			case <-s.done:
			}
			fb.release()
			s.release(idx)
			return Message{}, nil, fmt.Errorf("mux call to %v: %w", s.to, ErrCallTimeout)
		case <-s.done:
			// A completion may have raced the failure; prefer it.
			sl.mu.Lock()
			if sl.done {
				msg, callErr = sl.msg, sl.err
				sl.corr, sl.done, sl.msg, sl.err = 0, false, Message{}, nil
				sl.mu.Unlock()
				fb.release()
				s.release(idx)
				return msg, callErr, nil
			}
			sl.corr = 0
			sl.mu.Unlock()
			fb.release()
			s.release(idx)
			return Message{}, nil, s.brokenErr()
		}
	}
}

// Call implements Stream: it is safe for concurrent use, and concurrent
// calls pipeline on the single connection. The request payload is not
// retained after Call returns.
func (s *muxStream) Call(ctx context.Context, req Message) (Message, error) {
	idx, err := s.acquire(ctx)
	if err != nil {
		return Message{}, err
	}
	corr := s.arm(idx)
	fb := getFlushBarrier()
	if err := s.enqueue(ctx, muxWrite{corrID: corr, kind: req.Kind, payload: req.Payload, flushed: fb}); err != nil {
		s.disarm(idx)
		fb.release()
		fb.release() // the writer never saw it: both references are ours
		s.release(idx)
		return Message{}, err
	}
	msg, callErr, fatal := s.awaitSlot(ctx, idx, fb)
	if fatal != nil {
		return Message{}, fatal
	}
	return msg, callErr
}

// CallBatch implements BatchCaller: every request becomes its own pipelined
// frame, enqueued as one burst (the writer folds them into one flush) and
// awaited through the completion plane with one parked caller instead of
// len(reqs) goroutines. Handler failures land per-index in errs; a
// transport-level failure (context expiry, broken stream) aborts the whole
// flight and is returned as fatal with every in-flight slot abandoned.
func (s *muxStream) CallBatch(ctx context.Context, reqs []Message) ([]Message, []error, error) {
	if len(reqs) == 0 {
		return nil, nil, nil
	}
	type flight struct {
		idx uint32
		fb  *flushBarrier
	}
	flights := make([]flight, 0, len(reqs))
	abandon := func() {
		for _, fl := range flights {
			s.disarm(fl.idx)
			select {
			case <-fl.fb.ch:
			case <-s.done:
			}
			fl.fb.release()
			s.release(fl.idx)
		}
	}
	for i := range reqs {
		idx, err := s.acquire(ctx)
		if err != nil {
			abandon()
			return nil, nil, err
		}
		corr := s.arm(idx)
		fb := getFlushBarrier()
		if err := s.enqueue(ctx, muxWrite{corrID: corr, kind: reqs[i].Kind, payload: reqs[i].Payload, flushed: fb}); err != nil {
			s.disarm(idx)
			fb.release()
			fb.release()
			s.release(idx)
			abandon()
			return nil, nil, err
		}
		flights = append(flights, flight{idx: idx, fb: fb})
	}
	msgs := make([]Message, len(reqs))
	errs := make([]error, len(reqs))
	for i, fl := range flights {
		msg, callErr, fatal := s.awaitSlot(ctx, fl.idx, fl.fb)
		if fatal != nil {
			flights = flights[i+1:]
			abandon()
			return nil, nil, fatal
		}
		msgs[i], errs[i] = msg, callErr
	}
	return msgs, errs, nil
}

func (s *muxStream) brokenErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return s.broken
	}
	return ErrStreamBroken
}

// ---- server side ----

// weightedSem is the server's batch-aware admission: capacity is measured in
// events, and a frame acquires its event weight before dispatch. acquire
// blocks the read loop when the connection's in-flight work is heavy enough
// — TCP backpressure — and fails once the endpoint starts closing.
type weightedSem struct {
	mu     sync.Mutex
	cond   *sync.Cond
	avail  int
	closed bool
}

func newWeightedSem(n int) *weightedSem {
	s := &weightedSem{avail: n}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *weightedSem) acquire(n int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.avail < n && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return false
	}
	s.avail -= n
	return true
}

func (s *weightedSem) release(n int) {
	s.mu.Lock()
	s.avail += n
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *weightedSem) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// muxJob is one admitted request frame awaiting a pool worker.
type muxJob struct {
	corrID uint64
	req    Message
	weight int
}

// muxWorkerPool runs handler jobs on a dynamically sized, bounded set of
// workers: a job spawns a worker only when none is idle and the pool is
// below its cap, and workers exit after an idle timeout — so a steady
// pipeline reuses the same few goroutines instead of paying a
// goroutine-per-frame spawn, while a deep burst still fans out to
// MuxWindow-way concurrency (parked handlers hold workers, as the
// pipelining tests require).
type muxWorkerPool struct {
	work    chan muxJob
	handle  func(muxJob)
	max     int32
	workers atomic.Int32
	idle    atomic.Int32
	wg      sync.WaitGroup
}

func newMuxWorkerPool(max int, handle func(muxJob)) *muxWorkerPool {
	return &muxWorkerPool{
		work:   make(chan muxJob, MuxWindow),
		handle: handle,
		max:    int32(max),
	}
}

// dispatch queues one job, growing the pool if nobody is idle. The
// spawn-vs-idle-exit race is closed on the worker side: a worker drains the
// queue once more after deciding to exit, so a job enqueued against a
// dying worker is either picked up by it or sees workers below cap on the
// next dispatch.
func (p *muxWorkerPool) dispatch(j muxJob) {
	p.work <- j
	if p.idle.Load() == 0 && p.workers.Load() < p.max {
		p.workers.Add(1)
		p.wg.Add(1)
		go p.worker()
	}
}

func (p *muxWorkerPool) worker() {
	defer p.wg.Done()
	timer := time.NewTimer(muxWorkerIdle)
	defer timer.Stop()
	for {
		p.idle.Add(1)
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(muxWorkerIdle)
		select {
		case j, ok := <-p.work:
			p.idle.Add(-1)
			if !ok {
				p.workers.Add(-1)
				return
			}
			p.handle(j)
		case <-timer.C:
			p.idle.Add(-1)
			// Final non-blocking drain before leaving, closing the race with
			// a dispatch that saw this worker as idle.
			select {
			case j, ok := <-p.work:
				if !ok {
					p.workers.Add(-1)
					return
				}
				p.handle(j)
			default:
				p.workers.Add(-1)
				return
			}
		}
	}
}

// close stops the pool after the queue drains and waits for every worker.
func (p *muxWorkerPool) close() {
	close(p.work)
	p.wg.Wait()
}

// serveMux is the server half: conn already consumed the magic; the peer's
// node ID follows, then a stream of request frames. Frames are admitted by
// event weight, dispatched to the bounded worker pool, and responses are
// coalesced by a writer goroutine, so slow handlers never stall the read
// loop and responses flow back in completion order.
//
// Handler contract on this path: the request payload is only valid for the
// duration of the handler call (the read buffer is recycled); in-tree
// handlers decode synchronously and retain nothing.
func serveMux(conn net.Conn, h Handler, closing <-chan struct{}) {
	var idBuf [8]byte
	if _, err := io.ReadFull(conn, idBuf[:]); err != nil {
		return
	}
	from := NodeID(int64(binary.BigEndian.Uint64(idBuf[:])))

	respCh := make(chan muxWrite, MuxWindow)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		w := bufio.NewWriterSize(conn, 64<<10)
		scratch := make([]byte, 0, 64)
		for wr := range respCh {
			err := writeMuxFrame(w, scratch, wr.corrID, wr.kind, wr.errStr, wr.payload)
			// Same burst coalescing as muxStream.writer: yield once before
			// flushing so handlers finishing right now ride this syscall.
			yielded := false
		drain:
			for err == nil {
				select {
				case next, ok := <-respCh:
					if !ok {
						break drain
					}
					err = writeMuxFrame(w, scratch, next.corrID, next.kind, next.errStr, next.payload)
				default:
					if !yielded && w.Buffered() < 32<<10 {
						yielded = true
						runtime.Gosched()
						continue
					}
					break drain
				}
			}
			if err == nil {
				err = w.Flush()
			}
			if err != nil {
				_ = conn.Close() // unblock the read loop; remaining responses are moot
				// Keep draining so pool workers sending responses never block
				// on a dead writer.
				for range respCh {
				}
				return
			}
		}
		_ = w.Flush()
	}()

	// Handlers get a context cancelled on endpoint shutdown, so long-running
	// work can observe Close instead of wedging the drain below.
	hctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	adm := newWeightedSem(muxServerAdmission)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-closing:
			cancel()
			adm.close()
		case <-stop:
		}
	}()

	pool := newMuxWorkerPool(MuxWindow, func(j muxJob) {
		resp, herr := h(hctx, from, j.req)
		wr := muxWrite{corrID: j.corrID, kind: resp.Kind, payload: resp.Payload}
		if herr != nil {
			wr.errStr = herr.Error()
			wr.payload = nil
		}
		respCh <- wr
		adm.release(j.weight)
	})

	r := bufio.NewReaderSize(conn, 64<<10)
	var buf []byte
	for {
		corrID, kind, _, payload, err := readMuxFrame(r, &buf)
		if err != nil {
			break
		}
		select {
		case <-closing:
			err = errors.New("endpoint closing")
		default:
		}
		if err != nil {
			break
		}
		weight := schema.HotFrameEvents(payload)
		if weight > muxServerAdmission {
			weight = muxServerAdmission
		}
		if !adm.acquire(weight) {
			break // endpoint closing
		}
		// The read buffer is reused; the worker owns a copy.
		p := make([]byte, len(payload))
		copy(p, payload)
		pool.dispatch(muxJob{corrID: corrID, req: Message{Kind: kind, Payload: p}, weight: weight})
	}
	pool.close()
	close(respCh)
	<-writerDone
}
