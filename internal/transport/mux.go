package transport

// Pipelined, multiplexed connections. The one-shot TCP protocol is strictly
// request/response — one outstanding call per connection — so a remote
// submit costs a full round trip and the wire idles between frames. A mux
// connection instead carries many in-flight requests: each call is stamped
// with a correlation ID, a writer goroutine coalesces queued frames into
// single buffered flushes (writev-style — one syscall covers every frame
// queued while the previous flush was in flight), the server dispatches
// frames to handler goroutines as they arrive, and a reader goroutine
// matches responses back to callers by correlation ID, in whatever order
// the handlers finish.
//
// Correlation IDs are a per-connection monotonically increasing uint64 —
// never reused, so a late response (its caller timed out and abandoned the
// ID) or a duplicated response can only miss the pending table and be
// discarded; it can never be delivered to a newer request.
//
// Backpressure: each stream has a bounded in-flight window (MuxWindow,
// 1024). When the window is full, Call blocks until a slot frees or the
// caller's context expires — pressure propagates to the submitter instead
// of growing an unbounded queue or dropping frames.
//
// Wire format. A mux connection opens with a 12-byte preamble:
//
//	[4]byte{0xA7, 'M', 'X', '1'}   magic (0xA7 never begins a gob stream)
//	uint64 BE                      caller's NodeID
//
// then carries length-prefixed frames in both directions:
//
//	uint32 BE      frame length (bytes that follow; ≤ 64 MiB)
//	uint64 BE      correlation ID
//	uvarint+bytes  kind
//	uvarint+bytes  err (responses; empty on requests and successes)
//	rest           payload

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
)

// muxMagic opens every multiplexed connection.
var muxMagic = [4]byte{0xA7, 'M', 'X', '1'}

// MuxWindow is the per-stream in-flight window: at most this many calls may
// be pending on one mux connection; further Calls block (backpressure).
const MuxWindow = 1024

// maxMuxFrame bounds a frame body so a corrupt length prefix cannot demand
// an absurd allocation.
const maxMuxFrame = 64 << 20

// ErrStreamBroken is returned by calls pending on a mux stream whose
// connection failed; the stream is dead and must be reopened.
var ErrStreamBroken = errors.New("transport: mux stream broken")

// writeMuxFrame appends one frame to w using scratch for the header; the
// payload bytes are written directly (bufio coalesces them into the next
// flush).
func writeMuxFrame(w *bufio.Writer, scratch []byte, corrID uint64, kind, errStr string, payload []byte) error {
	body := 8 + uvarintLen(uint64(len(kind))) + len(kind) +
		uvarintLen(uint64(len(errStr))) + len(errStr) + len(payload)
	if body > maxMuxFrame {
		return fmt.Errorf("transport: mux frame too large (%d bytes)", body)
	}
	scratch = binary.BigEndian.AppendUint32(scratch[:0], uint32(body))
	scratch = binary.BigEndian.AppendUint64(scratch, corrID)
	scratch = binary.AppendUvarint(scratch, uint64(len(kind)))
	scratch = append(scratch, kind...)
	scratch = binary.AppendUvarint(scratch, uint64(len(errStr)))
	scratch = append(scratch, errStr...)
	if _, err := w.Write(scratch); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// readMuxFrame reads one frame, reusing *buf for the body. The returned
// kind/err/payload alias *buf and are only valid until the next call.
func readMuxFrame(r io.Reader, buf *[]byte) (corrID uint64, kind, errStr string, payload []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, "", "", nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 8 || n > maxMuxFrame {
		return 0, "", "", nil, fmt.Errorf("transport: bad mux frame length %d", n)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	body := (*buf)[:n]
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, "", "", nil, err
	}
	corrID = binary.BigEndian.Uint64(body[:8])
	rest := body[8:]
	take := func() ([]byte, error) {
		ln, sz := binary.Uvarint(rest)
		if sz <= 0 || uint64(len(rest)-sz) < ln {
			return nil, fmt.Errorf("transport: corrupt mux frame field")
		}
		f := rest[sz : sz+int(ln)]
		rest = rest[sz+int(ln):]
		return f, nil
	}
	kb, err := take()
	if err != nil {
		return 0, "", "", nil, err
	}
	eb, err := take()
	if err != nil {
		return 0, "", "", nil, err
	}
	return corrID, string(kb), string(eb), rest, nil
}

// muxWrite is one queued outbound frame.
type muxWrite struct {
	corrID  uint64
	kind    string
	errStr  string
	payload []byte
	// fsync, when non-nil, is closed once the frame (and everything queued
	// before it) has been flushed to the socket — the write barrier callers
	// releasing pooled payload buffers need.
	flushed chan struct{}
}

// muxResult is one matched response.
type muxResult struct {
	msg Message
	err error
}

// muxStream is the client half of a multiplexed connection.
type muxStream struct {
	to   NodeID
	conn net.Conn

	writeCh chan muxWrite

	mu      sync.Mutex
	pending map[uint64]chan muxResult
	nextID  uint64
	broken  error

	window chan struct{}
	done   chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

var _ Stream = (*muxStream)(nil)

// dialMux opens a mux stream over an established connection, sending the
// preamble and starting the writer/reader goroutines.
func dialMux(conn net.Conn, from, to NodeID) (*muxStream, error) {
	var pre [12]byte
	copy(pre[:4], muxMagic[:])
	binary.BigEndian.PutUint64(pre[4:], uint64(int64(from)))
	if _, err := conn.Write(pre[:]); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("mux preamble to %v: %w", to, err)
	}
	s := &muxStream{
		to:      to,
		conn:    conn,
		writeCh: make(chan muxWrite, MuxWindow),
		pending: make(map[uint64]chan muxResult, 64),
		window:  make(chan struct{}, MuxWindow),
		done:    make(chan struct{}),
	}
	s.wg.Add(2)
	go s.writer()
	go s.reader()
	return s, nil
}

// fail breaks the stream: the connection closes, every pending call gets
// err, and future calls fail fast.
func (s *muxStream) fail(err error) {
	s.once.Do(func() {
		s.mu.Lock()
		s.broken = err
		pend := s.pending
		s.pending = nil
		s.mu.Unlock()
		close(s.done)
		_ = s.conn.Close()
		for _, ch := range pend {
			ch <- muxResult{err: err}
		}
	})
}

// Close implements Stream.
func (s *muxStream) Close() error {
	s.fail(ErrStreamBroken)
	s.wg.Wait()
	return nil
}

// writer drains the queue into the buffered socket writer, flushing once
// per burst: every frame queued while the previous flush was on the wire
// rides the next syscall.
func (s *muxStream) writer() {
	defer s.wg.Done()
	w := bufio.NewWriterSize(s.conn, 64<<10)
	scratch := make([]byte, 0, 64)
	var notify []chan struct{}
	for {
		var first muxWrite
		select {
		case first = <-s.writeCh:
		case <-s.done:
			return
		}
		err := writeMuxFrame(w, scratch, first.corrID, first.kind, first.errStr, first.payload)
		if first.flushed != nil {
			notify = append(notify, first.flushed)
		}
		// Drain the burst before flushing. When the queue looks empty, yield
		// once and re-check: callers that just woke from the previous flush
		// are usually about to enqueue, and folding their frames into this
		// flush is what turns N round-trip syscalls into one.
		yielded := false
	drain:
		for err == nil {
			select {
			case next := <-s.writeCh:
				err = writeMuxFrame(w, scratch, next.corrID, next.kind, next.errStr, next.payload)
				if next.flushed != nil {
					notify = append(notify, next.flushed)
				}
			default:
				if !yielded && w.Buffered() < 32<<10 {
					yielded = true
					runtime.Gosched()
					continue
				}
				break drain
			}
		}
		if err == nil {
			err = w.Flush()
		}
		for _, ch := range notify {
			close(ch)
		}
		notify = notify[:0]
		if err != nil {
			s.fail(fmt.Errorf("mux write to %v: %w", s.to, err))
			return
		}
	}
}

// reader matches inbound frames to pending calls by correlation ID. A frame
// whose ID is unknown — its caller timed out, or a faulty network
// duplicated the response — is discarded: IDs are never reused, so it
// cannot belong to a newer call.
func (s *muxStream) reader() {
	defer s.wg.Done()
	r := bufio.NewReaderSize(s.conn, 64<<10)
	var buf []byte
	for {
		corrID, kind, errStr, payload, err := readMuxFrame(r, &buf)
		if err != nil {
			s.fail(fmt.Errorf("mux read from %v: %w", s.to, err))
			return
		}
		s.mu.Lock()
		ch, ok := s.pending[corrID]
		if ok {
			delete(s.pending, corrID)
		}
		s.mu.Unlock()
		if !ok {
			continue // late or duplicated response: no caller, drop it
		}
		res := muxResult{}
		if errStr != "" {
			res.err = &RemoteError{Node: s.to, Msg: errStr}
		} else {
			// The read buffer is reused for the next frame; the payload
			// handed to the caller must own its bytes.
			p := make([]byte, len(payload))
			copy(p, payload)
			res.msg = Message{Kind: kind, Payload: p}
		}
		ch <- res
	}
}

// Call implements Stream: it is safe for concurrent use, and concurrent
// calls pipeline on the single connection. The request payload is not
// retained after Call returns.
func (s *muxStream) Call(ctx context.Context, req Message) (Message, error) {
	// Acquire an in-flight slot (backpressure point).
	select {
	case s.window <- struct{}{}:
	case <-ctx.Done():
		return Message{}, fmt.Errorf("mux call to %v: %w", s.to, ErrCallTimeout)
	case <-s.done:
		return Message{}, s.brokenErr()
	}
	defer func() { <-s.window }()

	ch := make(chan muxResult, 1)
	s.mu.Lock()
	if s.broken != nil {
		err := s.broken
		s.mu.Unlock()
		return Message{}, err
	}
	s.nextID++
	id := s.nextID
	s.pending[id] = ch
	s.mu.Unlock()

	abandon := func() {
		s.mu.Lock()
		if s.pending != nil {
			delete(s.pending, id)
		}
		s.mu.Unlock()
	}

	// Callers may release (pool) the payload once Call returns, so a call
	// abandoned before the writer flushed it must wait out the flush.
	flushed := make(chan struct{})
	select {
	case s.writeCh <- muxWrite{corrID: id, kind: req.Kind, payload: req.Payload, flushed: flushed}:
	case <-ctx.Done():
		abandon()
		return Message{}, fmt.Errorf("mux call to %v: %w", s.to, ErrCallTimeout)
	case <-s.done:
		abandon()
		return Message{}, s.brokenErr()
	}

	select {
	case res := <-ch:
		return res.msg, res.err
	case <-ctx.Done():
		abandon()
		select {
		case <-flushed:
		case <-s.done:
		}
		return Message{}, fmt.Errorf("mux call to %v: %w", s.to, ErrCallTimeout)
	case <-s.done:
		// fail() may have already routed an error to ch.
		select {
		case res := <-ch:
			return res.msg, res.err
		default:
		}
		abandon()
		return Message{}, s.brokenErr()
	}
}

func (s *muxStream) brokenErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return s.broken
	}
	return ErrStreamBroken
}

// serveMux is the server half: conn already consumed the magic; the peer's
// node ID follows, then a stream of request frames. Each frame dispatches
// to a handler goroutine (bounded by MuxWindow) and responses are coalesced
// by a writer goroutine, so slow handlers never stall the read loop and
// responses flow back in completion order.
//
// Handler contract on this path: the request payload is only valid for the
// duration of the handler call (the read buffer is recycled); in-tree
// handlers decode synchronously and retain nothing.
func serveMux(conn net.Conn, h Handler, closing <-chan struct{}) {
	var idBuf [8]byte
	if _, err := io.ReadFull(conn, idBuf[:]); err != nil {
		return
	}
	from := NodeID(int64(binary.BigEndian.Uint64(idBuf[:])))

	respCh := make(chan muxWrite, MuxWindow)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		w := bufio.NewWriterSize(conn, 64<<10)
		scratch := make([]byte, 0, 64)
		for wr := range respCh {
			err := writeMuxFrame(w, scratch, wr.corrID, wr.kind, wr.errStr, wr.payload)
			// Same burst coalescing as muxStream.writer: yield once before
			// flushing so handlers finishing right now ride this syscall.
			yielded := false
		drain:
			for err == nil {
				select {
				case next, ok := <-respCh:
					if !ok {
						break drain
					}
					err = writeMuxFrame(w, scratch, next.corrID, next.kind, next.errStr, next.payload)
				default:
					if !yielded && w.Buffered() < 32<<10 {
						yielded = true
						runtime.Gosched()
						continue
					}
					break drain
				}
			}
			if err == nil {
				err = w.Flush()
			}
			if err != nil {
				_ = conn.Close() // unblock the read loop; remaining responses are moot
				// Keep draining so handler goroutines sending responses
				// never block on a dead writer.
				for range respCh {
				}
				return
			}
		}
		_ = w.Flush()
	}()

	// Handlers get a context cancelled on endpoint shutdown, so long-running
	// work can observe Close instead of wedging the drain below.
	hctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-closing:
			cancel()
		case <-stop:
		}
	}()

	sem := make(chan struct{}, MuxWindow)
	var handlers sync.WaitGroup
	r := bufio.NewReaderSize(conn, 64<<10)
	var buf []byte
	for {
		corrID, kind, _, payload, err := readMuxFrame(r, &buf)
		if err != nil {
			break
		}
		select {
		case <-closing:
			err = errors.New("endpoint closing")
		default:
		}
		if err != nil {
			break
		}
		// The read buffer is reused; the handler goroutine owns a copy.
		p := make([]byte, len(payload))
		copy(p, payload)
		req := Message{Kind: kind, Payload: p}
		sem <- struct{}{}
		handlers.Add(1)
		go func(corrID uint64, req Message) {
			defer handlers.Done()
			defer func() { <-sem }()
			resp, herr := h(hctx, from, req)
			wr := muxWrite{corrID: corrID, kind: resp.Kind, payload: resp.Payload}
			if herr != nil {
				wr.errStr = herr.Error()
				wr.payload = nil
			}
			respCh <- wr
		}(corrID, req)
	}
	handlers.Wait()
	close(respCh)
	<-writerDone
}
