package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Message is a request or response exchanged between mesh endpoints.
type Message struct {
	// Kind routes the message to a handler action (e.g. "migrate.prepare").
	Kind string `json:"kind"`
	// Payload is an opaque, codec-encoded body.
	Payload []byte `json:"payload"`
}

// Handler processes a request and produces a response.
type Handler func(ctx context.Context, from NodeID, req Message) (Message, error)

// Endpoint is one node's attachment to a mesh.
type Endpoint interface {
	// ID returns this endpoint's node ID.
	ID() NodeID
	// Call sends a request to another node and waits for its response. The
	// request payload is not retained after Call returns, so callers may
	// recycle pooled payload buffers.
	Call(ctx context.Context, to NodeID, req Message) (Message, error)
	// Close detaches the endpoint.
	Close() error
}

// Stream is a pipelined connection to one peer: Call is safe for
// concurrent use and concurrent calls share the connection with many
// requests in flight (responses are matched by correlation ID, so they may
// complete in any order). When the stream's in-flight window is full, Call
// blocks until a slot frees or ctx expires — backpressure propagates to
// the submitter. The request payload is not retained after Call returns.
type Stream interface {
	Call(ctx context.Context, req Message) (Message, error)
	Close() error
}

// BatchCaller is implemented by streams that can issue several requests as
// one burst through a shared completion plane: the frames ride one writer
// flush and one parked waiter instead of len(reqs) goroutines. Responses
// are index-aligned with reqs; per-call handler failures land in errs; a
// non-nil overall error is a transport-level failure (context expiry,
// broken stream) that voided the whole flight.
type BatchCaller interface {
	CallBatch(ctx context.Context, reqs []Message) ([]Message, []error, error)
}

// StreamCallBatch issues reqs over st as one pipelined flight, using the
// stream's native CallBatch when it has one and falling back to concurrent
// Calls otherwise (the fallback reports transport failures per-index rather
// than as an overall error).
func StreamCallBatch(ctx context.Context, st Stream, reqs []Message) ([]Message, []error, error) {
	if bc, ok := st.(BatchCaller); ok {
		return bc.CallBatch(ctx, reqs)
	}
	msgs := make([]Message, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	wg.Add(len(reqs))
	for i := range reqs {
		go func(i int) {
			defer wg.Done()
			msgs[i], errs[i] = st.Call(ctx, reqs[i])
		}(i)
	}
	wg.Wait()
	return msgs, errs, nil
}

// Streamer is implemented by endpoints that support pipelined multiplexed
// streams in addition to one-shot calls.
type Streamer interface {
	// Stream opens a pipelined stream to a peer. Streams are not pooled by
	// the transport: callers cache and reopen them.
	Stream(to NodeID) (Stream, error)
}

// OpenStream opens a pipelined stream to a peer when the endpoint supports
// it; ok is false otherwise (callers fall back to one-shot Call).
func OpenStream(ep Endpoint, to NodeID) (Stream, bool, error) {
	s, ok := ep.(Streamer)
	if !ok {
		return nil, false, nil
	}
	st, err := s.Stream(to)
	if err != nil {
		return nil, true, err
	}
	return st, true, nil
}

// Mesh connects endpoints so they can exchange request/response messages.
type Mesh interface {
	// Attach registers a node with its request handler and returns its
	// endpoint.
	Attach(id NodeID, h Handler) (Endpoint, error)
}

var (
	// ErrNodeUnknown is returned when calling a node that is not attached.
	ErrNodeUnknown = errors.New("transport: unknown node")
	// ErrNodeAttached is returned when attaching an already-attached node.
	ErrNodeAttached = errors.New("transport: node already attached")
	// ErrClosed is returned when using a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
)

// InMemMesh is a Mesh connecting endpoints within one process. Delivery cost
// is charged through the supplied Network (both directions).
type InMemMesh struct {
	net Network

	mu    sync.RWMutex
	nodes map[NodeID]*inMemEndpoint
}

var _ Mesh = (*InMemMesh)(nil)

// NewInMemMesh returns a mesh whose message latency is charged via net.
func NewInMemMesh(net Network) *InMemMesh {
	return &InMemMesh{net: net, nodes: make(map[NodeID]*inMemEndpoint)}
}

// Attach implements Mesh.
func (m *InMemMesh) Attach(id NodeID, h Handler) (Endpoint, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.nodes[id]; ok {
		return nil, fmt.Errorf("%v: %w", id, ErrNodeAttached)
	}
	ep := &inMemEndpoint{mesh: m, id: id, handler: h}
	m.nodes[id] = ep
	return ep, nil
}

type inMemEndpoint struct {
	mesh    *InMemMesh
	id      NodeID
	handler Handler

	mu     sync.Mutex
	closed bool
}

var _ Endpoint = (*inMemEndpoint)(nil)

func (e *inMemEndpoint) ID() NodeID { return e.id }

func (e *inMemEndpoint) Call(ctx context.Context, to NodeID, req Message) (Message, error) {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return Message{}, ErrClosed
	}
	e.mesh.mu.RLock()
	dst, ok := e.mesh.nodes[to]
	e.mesh.mu.RUnlock()
	if !ok {
		return Message{}, fmt.Errorf("%v: %w", to, ErrNodeUnknown)
	}
	if err := e.mesh.net.Hop(e.id, to, len(req.Payload)); err != nil {
		return Message{}, err
	}
	if err := ctx.Err(); err != nil {
		return Message{}, err
	}
	resp, err := dst.handler(ctx, e.id, req)
	if err != nil {
		return Message{}, err
	}
	if err := e.mesh.net.Hop(to, e.id, len(resp.Payload)); err != nil {
		return Message{}, err
	}
	return resp, nil
}

// Stream implements Streamer: the in-memory "connection" has no socket to
// multiplex, so pipelining is expressed directly — concurrent Calls run
// concurrently against the destination handler, bounded by the same
// in-flight window a mux connection has. This keeps stream-path semantics
// (windowed backpressure, concurrent dispatch) testable in-process.
func (e *inMemEndpoint) Stream(to NodeID) (Stream, error) {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	return &inMemStream{ep: e, to: to, window: make(chan struct{}, MuxWindow)}, nil
}

type inMemStream struct {
	ep     *inMemEndpoint
	to     NodeID
	window chan struct{}

	mu     sync.Mutex
	closed bool
}

var _ Stream = (*inMemStream)(nil)

func (s *inMemStream) Call(ctx context.Context, req Message) (Message, error) {
	select {
	case s.window <- struct{}{}:
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
	defer func() { <-s.window }()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return Message{}, ErrStreamBroken
	}
	return s.ep.Call(ctx, s.to, req)
}

func (s *inMemStream) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

func (e *inMemEndpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.mesh.mu.Lock()
	delete(e.mesh.nodes, e.id)
	e.mesh.mu.Unlock()
	return nil
}
