package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// mirrorHandler answers every request with its own payload, tagging the kind,
// so a mismatched correlation would be visible as a wrong payload.
func mirrorHandler(ctx context.Context, from NodeID, req Message) (Message, error) {
	return Message{Kind: req.Kind, Payload: req.Payload}, nil
}

func tcpPair(t *testing.T, h Handler) (client Endpoint, server Endpoint, mesh *TCPMesh) {
	t.Helper()
	mesh = NewTCPMesh()
	srv, err := mesh.Attach(1, h)
	if err != nil {
		t.Fatalf("attach server: %v", err)
	}
	cli, err := mesh.Attach(2, func(ctx context.Context, from NodeID, req Message) (Message, error) {
		return Message{}, errors.New("client does not serve")
	})
	if err != nil {
		t.Fatalf("attach client: %v", err)
	}
	t.Cleanup(func() {
		_ = cli.Close()
		_ = srv.Close()
	})
	return cli, srv, mesh
}

// TestMuxStreamRoundTrip pins the basic pipelined exchange on real TCP:
// requests submitted concurrently on one stream all come back with their
// own payloads.
func TestMuxStreamRoundTrip(t *testing.T) {
	cli, _, _ := tcpPair(t, mirrorHandler)
	st, ok, err := OpenStream(cli, 1)
	if !ok || err != nil {
		t.Fatalf("OpenStream: ok=%v err=%v", ok, err)
	}
	defer st.Close()

	const calls = 200
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := []byte(fmt.Sprintf("payload-%d", i))
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			resp, err := st.Call(ctx, Message{Kind: "echo", Payload: want})
			if err != nil {
				errs <- err
				return
			}
			if string(resp.Payload) != string(want) {
				errs <- fmt.Errorf("call %d: got %q want %q (correlation mismatch)", i, resp.Payload, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMuxStreamPipelines proves many requests genuinely overlap on one
// connection: with a handler that parks until N requests are concurrently
// inside it, N pipelined calls on a single stream all complete — impossible
// on the one-outstanding-call-per-connection path.
func TestMuxStreamPipelines(t *testing.T) {
	const depth = 16
	var inside atomic.Int32
	release := make(chan struct{})
	h := func(ctx context.Context, from NodeID, req Message) (Message, error) {
		if inside.Add(1) == depth {
			close(release)
		}
		<-release
		return Message{Kind: req.Kind, Payload: req.Payload}, nil
	}
	cli, _, _ := tcpPair(t, h)
	st, _, err := OpenStream(cli, 1)
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	defer st.Close()

	var wg sync.WaitGroup
	errs := make(chan error, depth)
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if _, err := st.Call(ctx, Message{Kind: "park", Payload: []byte{byte(i)}}); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("pipelined call failed — requests did not overlap: %v", err)
	}
}

// TestMuxLateResponseNeverMatchesNewerRequest pins the correlation-ID
// contract: a response that arrives after its caller timed out must be
// discarded, never delivered to a later request. The handler parks the
// first request until after a second request has completed.
func TestMuxLateResponseNeverMatchesNewerRequest(t *testing.T) {
	firstParked := make(chan struct{})
	releaseFirst := make(chan struct{})
	var seen atomic.Int32
	h := func(ctx context.Context, from NodeID, req Message) (Message, error) {
		if seen.Add(1) == 1 {
			close(firstParked)
			<-releaseFirst // answer late, long after the caller gave up
		}
		return Message{Kind: req.Kind, Payload: req.Payload}, nil
	}
	cli, _, _ := tcpPair(t, h)
	st, _, err := OpenStream(cli, 1)
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	defer st.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := st.Call(ctx, Message{Kind: "late", Payload: []byte("stale")}); !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("parked call: got %v, want ErrCallTimeout", err)
	}
	<-firstParked

	// The stale response is still pending server-side. Issue a fresh call
	// and release the stale one while it is in flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(20 * time.Millisecond)
		close(releaseFirst)
	}()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	resp, err := st.Call(ctx2, Message{Kind: "fresh", Payload: []byte("fresh")})
	if err != nil {
		t.Fatalf("fresh call: %v", err)
	}
	if string(resp.Payload) != "fresh" {
		t.Fatalf("fresh call got stale response %q — late response matched a newer request", resp.Payload)
	}
	<-done
}

// fakeMuxServer speaks the raw mux wire protocol so tests can inject
// protocol-level misbehavior (duplicated responses, unknown correlation
// IDs, reordering) that a well-behaved server never produces.
func fakeMuxServer(t *testing.T, script func(conn net.Conn, r *bufio.Reader)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		var pre [12]byte
		if _, err := io.ReadFull(r, pre[:]); err != nil {
			return
		}
		script(conn, r)
	}()
	return ln.Addr().String()
}

func readReqFrame(t *testing.T, r *bufio.Reader) (corrID uint64, payload []byte) {
	t.Helper()
	var buf []byte
	corrID, _, _, p, err := readMuxFrame(r, &buf)
	if err != nil {
		t.Errorf("fake server read: %v", err)
		return 0, nil
	}
	payload = append([]byte(nil), p...)
	return corrID, payload
}

func writeRespFrame(t *testing.T, conn net.Conn, corrID uint64, payload []byte) {
	t.Helper()
	w := bufio.NewWriter(conn)
	if err := writeMuxFrame(w, nil, corrID, "resp", "", payload); err != nil {
		t.Errorf("fake server write: %v", err)
		return
	}
	if err := w.Flush(); err != nil {
		t.Errorf("fake server flush: %v", err)
	}
}

func dialFake(t *testing.T, addr string) *muxStream {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial fake: %v", err)
	}
	s, err := dialMux(conn, 99, 1)
	if err != nil {
		t.Fatalf("dialMux: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// TestMuxReorderedResponses pins out-of-order completion: responses sent in
// reverse order still reach their own callers.
func TestMuxReorderedResponses(t *testing.T) {
	addr := fakeMuxServer(t, func(conn net.Conn, r *bufio.Reader) {
		id1, p1 := readReqFrame(t, r)
		id2, p2 := readReqFrame(t, r)
		// Answer in reverse arrival order.
		writeRespFrame(t, conn, id2, p2)
		writeRespFrame(t, conn, id1, p1)
	})
	s := dialFake(t, addr)

	var wg sync.WaitGroup
	results := make([]string, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			resp, err := s.Call(ctx, Message{Kind: "q", Payload: []byte("req-" + strconv.Itoa(i))})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			results[i] = string(resp.Payload)
		}(i)
		time.Sleep(50 * time.Millisecond) // deterministic arrival order
	}
	wg.Wait()
	for i, got := range results {
		if want := "req-" + strconv.Itoa(i); got != want {
			t.Errorf("caller %d got %q, want %q — reordered response mis-matched", i, got, want)
		}
	}
}

// TestMuxDuplicatedAndUnknownResponses pins discard behavior: a duplicated
// response (same correlation ID twice) and a response with a never-issued
// ID are both dropped, and the stream keeps serving.
func TestMuxDuplicatedAndUnknownResponses(t *testing.T) {
	dropsBefore := ReadMuxStats().DroppedResponses
	addr := fakeMuxServer(t, func(conn net.Conn, r *bufio.Reader) {
		id1, p1 := readReqFrame(t, r)
		writeRespFrame(t, conn, 0xDEAD, []byte("never-issued")) // unknown ID first
		writeRespFrame(t, conn, id1, p1)
		writeRespFrame(t, conn, id1, []byte("duplicate")) // retired ID again
		id2, p2 := readReqFrame(t, r)
		writeRespFrame(t, conn, id2, p2)
	})
	s := dialFake(t, addr)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := s.Call(ctx, Message{Kind: "q", Payload: []byte("one")})
	if err != nil || string(resp.Payload) != "one" {
		t.Fatalf("first call: %q, %v", resp.Payload, err)
	}
	// The duplicate and the unknown-ID frame must not poison the stream or
	// leak into this fresh call.
	resp, err = s.Call(ctx, Message{Kind: "q", Payload: []byte("two")})
	if err != nil || string(resp.Payload) != "two" {
		t.Fatalf("second call after duplicate response: %q, %v", resp.Payload, err)
	}
	// Both discarded frames — the never-issued ID and the retired duplicate —
	// must show up in the ops-plane drop counter. (Package-level stats, so
	// assert the delta, not the absolute value.)
	if d := ReadMuxStats().DroppedResponses - dropsBefore; d < 2 {
		t.Fatalf("dropped-response counter rose by %d; want >= 2", d)
	}
}

// TestFaultyStreamFaults pins fault injection on the pipelined path:
// drop (request lost), duplicate (handler runs twice), and lost ack
// (handler runs, caller sees ErrDropped) — same semantics as one-shot.
func TestFaultyStreamFaults(t *testing.T) {
	var handled atomic.Int32
	inner := NewInMemMesh(NewSim(SimConfig{}))
	fm := NewFaultyMesh(inner)
	srv, err := fm.Attach(1, func(ctx context.Context, from NodeID, req Message) (Message, error) {
		handled.Add(1)
		return Message{Kind: req.Kind, Payload: req.Payload}, nil
	})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	defer srv.Close()
	cli, err := fm.Attach(2, mirrorHandler)
	if err != nil {
		t.Fatalf("attach client: %v", err)
	}
	defer cli.Close()

	st, ok, err := OpenStream(cli, 1)
	if !ok || err != nil {
		t.Fatalf("OpenStream: ok=%v err=%v", ok, err)
	}
	defer st.Close()
	ctx := context.Background()

	fm.Drop(2, 1)
	if _, err := st.Call(ctx, Message{Kind: "q"}); !errors.Is(err, ErrDropped) {
		t.Fatalf("dropped stream call: got %v", err)
	}
	if handled.Load() != 0 {
		t.Fatalf("dropped request reached the handler")
	}
	fm.Heal(2, 1)

	fm.Duplicate(2, 1, 1)
	if _, err := st.Call(ctx, Message{Kind: "q"}); err != nil {
		t.Fatalf("duplicated stream call: %v", err)
	}
	if got := handled.Load(); got != 2 {
		t.Fatalf("duplicated request ran handler %d times, want 2", got)
	}

	fm.DropReply(2, 1, 1)
	if _, err := st.Call(ctx, Message{Kind: "q"}); !errors.Is(err, ErrDropped) {
		t.Fatalf("lost-ack stream call: got %v", err)
	}
	if got := handled.Load(); got != 3 {
		t.Fatalf("lost-ack request ran handler %d times, want 3", got)
	}
}

// TestMuxStreamBrokenConn pins failure propagation: when the connection
// dies mid-flight, pending and future calls fail fast instead of hanging.
func TestMuxStreamBrokenConn(t *testing.T) {
	addr := fakeMuxServer(t, func(conn net.Conn, r *bufio.Reader) {
		readReqFrame(t, r) // accept the request, then die without answering
		_ = conn.Close()
	})
	s := dialFake(t, addr)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.Call(ctx, Message{Kind: "q"}); err == nil {
		t.Fatalf("pending call survived a dead connection")
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if _, err := s.Call(ctx2, Message{Kind: "q"}); !errors.Is(err, ErrStreamBroken) && err == nil {
		t.Fatalf("call on broken stream succeeded")
	}
}

// TestMuxServerShutdownCancelsHandlers pins graceful shutdown: closing the
// serving endpoint cancels the context handed to in-flight mux handlers, so
// long-running handlers can observe shutdown and Close does not wedge.
func TestMuxServerShutdownCancelsHandlers(t *testing.T) {
	entered := make(chan struct{})
	h := func(ctx context.Context, from NodeID, req Message) (Message, error) {
		close(entered)
		<-ctx.Done() // park until shutdown cancels us
		return Message{}, ctx.Err()
	}
	cli, srv, _ := tcpPair(t, h)
	st, _, err := OpenStream(cli, 1)
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	defer st.Close()

	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, _ = st.Call(ctx, Message{Kind: "park"})
	}()
	<-entered

	closed := make(chan struct{})
	go func() {
		_ = srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatalf("endpoint Close wedged behind an in-flight mux handler")
	}
}

// TestMuxConcurrentClientsStress is the -race stress for correlation-ID
// multiplexing: N clients × M concurrent pipelined calls each over TCP,
// every response checked against its request.
func TestMuxConcurrentClientsStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	mesh := NewTCPMesh()
	srv, err := mesh.Attach(1, mirrorHandler)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	defer srv.Close()

	const clients = 4
	const workers = 8
	const callsPerWorker = 100
	var wg sync.WaitGroup
	errs := make(chan error, clients*workers)
	for c := 0; c < clients; c++ {
		ep, err := mesh.Attach(NodeID(10+c), mirrorHandler)
		if err != nil {
			t.Fatalf("attach client %d: %v", c, err)
		}
		defer ep.Close()
		st, _, err := OpenStream(ep, 1)
		if err != nil {
			t.Fatalf("stream client %d: %v", c, err)
		}
		defer st.Close()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(c, w int) {
				defer wg.Done()
				for i := 0; i < callsPerWorker; i++ {
					want := fmt.Sprintf("c%d-w%d-i%d", c, w, i)
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					resp, err := st.Call(ctx, Message{Kind: "echo", Payload: []byte(want)})
					cancel()
					if err != nil {
						errs <- fmt.Errorf("client %d worker %d call %d: %w", c, w, i, err)
						return
					}
					if string(resp.Payload) != want {
						errs <- fmt.Errorf("client %d worker %d call %d: got %q want %q (cross-matched)", c, w, i, resp.Payload, want)
						return
					}
				}
			}(c, w)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMuxCallBatchRoundTrip pins the batched flight: K requests issued as
// one CallBatch come back index-aligned through the shared completion plane,
// even when the server answers them out of order.
func TestMuxCallBatchRoundTrip(t *testing.T) {
	addr := fakeMuxServer(t, func(conn net.Conn, r *bufio.Reader) {
		const k = 8
		ids := make([]uint64, k)
		payloads := make([][]byte, k)
		for i := 0; i < k; i++ {
			ids[i], payloads[i] = readReqFrame(t, r)
		}
		for i := k - 1; i >= 0; i-- { // reverse order
			writeRespFrame(t, conn, ids[i], payloads[i])
		}
	})
	s := dialFake(t, addr)

	reqs := make([]Message, 8)
	for i := range reqs {
		reqs[i] = Message{Kind: "q", Payload: []byte("batch-" + strconv.Itoa(i))}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	msgs, errs, err := s.CallBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("CallBatch: %v", err)
	}
	for i := range reqs {
		if errs[i] != nil {
			t.Errorf("call %d: %v", i, errs[i])
			continue
		}
		if want := "batch-" + strconv.Itoa(i); string(msgs[i].Payload) != want {
			t.Errorf("call %d: got %q want %q — batch responses mis-aligned", i, msgs[i].Payload, want)
		}
	}
}

// TestMuxCallBatchPerCallErrors pins partial failure inside one flight: a
// handler error on one request lands in its own error slot as a RemoteError
// and its batchmates complete normally.
func TestMuxCallBatchPerCallErrors(t *testing.T) {
	h := func(ctx context.Context, from NodeID, req Message) (Message, error) {
		if string(req.Payload) == "poison" {
			return Message{}, errors.New("handler rejected this one")
		}
		return Message{Kind: req.Kind, Payload: req.Payload}, nil
	}
	cli, _, _ := tcpPair(t, h)
	st, _, err := OpenStream(cli, 1)
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	defer st.Close()
	bc, ok := st.(BatchCaller)
	if !ok {
		t.Fatalf("mux stream does not implement BatchCaller")
	}

	reqs := []Message{
		{Kind: "q", Payload: []byte("ok-0")},
		{Kind: "q", Payload: []byte("poison")},
		{Kind: "q", Payload: []byte("ok-2")},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	msgs, errs, err := bc.CallBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("CallBatch: %v", err)
	}
	var re *RemoteError
	if !errors.As(errs[1], &re) {
		t.Fatalf("poisoned call error: got %v, want RemoteError", errs[1])
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("sibling calls poisoned: %v, %v", errs[0], errs[2])
	}
	if string(msgs[0].Payload) != "ok-0" || string(msgs[2].Payload) != "ok-2" {
		t.Fatalf("sibling payloads wrong: %q, %q", msgs[0].Payload, msgs[2].Payload)
	}
}

// TestMuxSlotReuseAcrossWindow pins the completion plane's slot recycling:
// far more sequential calls than MuxWindow slots complete correctly (every
// slot is re-armed with a fresh, never-reused correlation ID each time).
func TestMuxSlotReuseAcrossWindow(t *testing.T) {
	cli, _, _ := tcpPair(t, mirrorHandler)
	st, _, err := OpenStream(cli, 1)
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	defer st.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const calls = 3 * MuxWindow
	const depth = 64
	var wg sync.WaitGroup
	errCh := make(chan error, depth)
	for w := 0; w < depth; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < calls/depth; i++ {
				want := fmt.Sprintf("w%d-i%d", w, i)
				resp, err := st.Call(ctx, Message{Kind: "echo", Payload: []byte(want)})
				if err != nil {
					errCh <- err
					return
				}
				if string(resp.Payload) != want {
					errCh <- fmt.Errorf("slot cross-talk: got %q want %q", resp.Payload, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestMuxCallBatchAbandonReleasesAllSlots pins window accounting under
// partial failure: a batch abandoned by context expiry returns every one of
// its N slots to the freelist — no leak, no double release.
func TestMuxCallBatchAbandonReleasesAllSlots(t *testing.T) {
	addr := fakeMuxServer(t, func(conn net.Conn, r *bufio.Reader) {
		for { // swallow requests, never answer
			if _, _, _, _, err := readMuxFrame(r, new([]byte)); err != nil {
				return
			}
		}
	})
	s := dialFake(t, addr)

	reqs := make([]Message, 16)
	for i := range reqs {
		reqs[i] = Message{Kind: "q", Payload: []byte{byte(i)}}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, _, err := s.CallBatch(ctx, reqs); !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("abandoned batch: got %v, want ErrCallTimeout", err)
	}
	if got := len(s.free); got != MuxWindow {
		t.Fatalf("freelist has %d slots after abandoned batch, want %d", got, MuxWindow)
	}
}

// TestWeightedSem pins the server admission semaphore: acquisition blocks
// until weight is released, close unblocks waiters with failure, and a
// frame's weight is bounded by capacity.
func TestWeightedSem(t *testing.T) {
	sem := newWeightedSem(10)
	if !sem.acquire(8) {
		t.Fatalf("acquire within capacity failed")
	}
	acquired := make(chan bool)
	go func() { acquired <- sem.acquire(4) }()
	select {
	case <-acquired:
		t.Fatalf("over-capacity acquire did not block")
	case <-time.After(50 * time.Millisecond):
	}
	sem.release(8)
	select {
	case ok := <-acquired:
		if !ok {
			t.Fatalf("unblocked acquire reported closed")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("release did not unblock waiter")
	}

	blocked := make(chan bool)
	go func() { blocked <- sem.acquire(100) }()
	time.Sleep(20 * time.Millisecond)
	sem.close()
	select {
	case ok := <-blocked:
		if ok {
			t.Fatalf("acquire on closed semaphore succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("close did not unblock waiter")
	}
}

// TestStreamCallBatchFallback pins the helper's degraded path: a stream
// without a native CallBatch still completes a batch via concurrent Calls.
func TestStreamCallBatchFallback(t *testing.T) {
	mesh := NewInMemMesh(NewSim(SimConfig{}))
	srv, err := mesh.Attach(1, mirrorHandler)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	defer srv.Close()
	cli, err := mesh.Attach(2, mirrorHandler)
	if err != nil {
		t.Fatalf("attach client: %v", err)
	}
	defer cli.Close()
	st, ok, err := OpenStream(cli, 1)
	if !ok || err != nil {
		t.Fatalf("OpenStream: ok=%v err=%v", ok, err)
	}
	defer st.Close()

	reqs := make([]Message, 5)
	for i := range reqs {
		reqs[i] = Message{Kind: "q", Payload: []byte(strconv.Itoa(i))}
	}
	msgs, errs, err := StreamCallBatch(context.Background(), st, reqs)
	if err != nil {
		t.Fatalf("StreamCallBatch: %v", err)
	}
	for i := range reqs {
		if errs[i] != nil {
			t.Errorf("call %d: %v", i, errs[i])
		} else if string(msgs[i].Payload) != strconv.Itoa(i) {
			t.Errorf("call %d: got %q", i, msgs[i].Payload)
		}
	}
}

// TestMuxFrameCodec pins the frame layout round trip and its bounds checks.
func TestMuxFrameCodec(t *testing.T) {
	var netBuf bufWriter
	w := bufio.NewWriter(&netBuf)
	if err := writeMuxFrame(w, nil, 42, "node.submit", "boom", []byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	var scratch []byte
	corrID, kind, errStr, payload, err := readMuxFrame(bufio.NewReader(&netBuf), &scratch)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if corrID != 42 || kind != "node.submit" || errStr != "boom" || string(payload) != "hello" {
		t.Fatalf("round trip: %d %q %q %q", corrID, kind, errStr, payload)
	}

	// A frame with an absurd length prefix must be rejected, not allocated.
	var huge [12]byte
	binary.BigEndian.PutUint32(huge[:4], 1<<30)
	if _, _, _, _, err := readMuxFrame(bufio.NewReader(&readerOf{huge[:]}), &scratch); err == nil {
		t.Fatalf("oversized frame accepted")
	}
}

type bufWriter struct {
	b []byte
	r int
}

func (w *bufWriter) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *bufWriter) Read(p []byte) (int, error) {
	if w.r >= len(w.b) {
		return 0, io.EOF
	}
	n := copy(p, w.b[w.r:])
	w.r += n
	return n, nil
}

type readerOf struct{ b []byte }

func (r *readerOf) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
