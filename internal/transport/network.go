// Package transport provides the network substrate for the AEON
// reproduction: a latency-model Network used by the simulated cluster to
// charge cross-server hops (the stand-in for the paper's EC2 data-center
// network), and a message Mesh with in-memory and TCP implementations used
// where real request/response messaging is exercised (multi-process
// deployments, migration state transfer, cloud-store access).
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// NodeID identifies a node (server) on the network.
type NodeID int

// String renders the node ID.
func (n NodeID) String() string { return fmt.Sprintf("node%d", int(n)) }

// ErrPartitioned is returned when a link is administratively blocked.
var ErrPartitioned = errors.New("transport: link partitioned")

// Network models message delivery cost between nodes. Implementations must
// be safe for concurrent use.
type Network interface {
	// Hop blocks for the delivery latency of a message of the given size
	// and returns an error if the link is unavailable.
	Hop(from, to NodeID, bytes int) error
	// Latency reports the delivery latency without sleeping.
	Latency(from, to NodeID, bytes int) time.Duration
}

// SimConfig parameterizes the simulated network.
type SimConfig struct {
	// BaseLatency is the one-way latency of any cross-node message.
	BaseLatency time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter).
	Jitter time.Duration
	// BandwidthMBps is the per-link bandwidth applied to payload bytes;
	// zero means payload size is free.
	BandwidthMBps float64
	// LocalLatency is the latency of a same-node message (loopback).
	LocalLatency time.Duration
	// Seed seeds the jitter source; zero picks a fixed default so runs are
	// reproducible unless configured otherwise.
	Seed int64
}

// DefaultSimConfig returns the latency model used by the benchmark harness:
// an intra-datacenter network in the spirit of the paper's EC2 deployment.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		BaseLatency:   200 * time.Microsecond,
		Jitter:        50 * time.Microsecond,
		BandwidthMBps: 100,
		LocalLatency:  0,
	}
}

// SimNetwork is an in-memory latency-model network with optional partitions.
type SimNetwork struct {
	cfg SimConfig

	mu      sync.Mutex
	rng     *rand.Rand
	blocked map[[2]NodeID]bool

	// sleep is indirected for tests.
	sleep func(time.Duration)
}

var _ Network = (*SimNetwork)(nil)

// NewSim returns a simulated network with the given configuration.
func NewSim(cfg SimConfig) *SimNetwork {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &SimNetwork{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(seed)),
		blocked: make(map[[2]NodeID]bool),
		sleep:   time.Sleep,
	}
}

// Latency implements Network.
func (s *SimNetwork) Latency(from, to NodeID, bytes int) time.Duration {
	if from == to {
		return s.cfg.LocalLatency
	}
	d := s.cfg.BaseLatency
	if s.cfg.Jitter > 0 {
		s.mu.Lock()
		d += time.Duration(s.rng.Int63n(int64(s.cfg.Jitter)))
		s.mu.Unlock()
	}
	if s.cfg.BandwidthMBps > 0 && bytes > 0 {
		perByte := float64(time.Second) / (s.cfg.BandwidthMBps * 1e6)
		d += time.Duration(perByte * float64(bytes))
	}
	return d
}

// Hop implements Network.
func (s *SimNetwork) Hop(from, to NodeID, bytes int) error {
	s.mu.Lock()
	cut := s.blocked[[2]NodeID{from, to}]
	s.mu.Unlock()
	if cut {
		return fmt.Errorf("%v→%v: %w", from, to, ErrPartitioned)
	}
	if d := s.Latency(from, to, bytes); d > 0 {
		s.sleep(d)
	}
	return nil
}

// Partition blocks the directed link from→to until Heal is called.
func (s *SimNetwork) Partition(from, to NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blocked[[2]NodeID{from, to}] = true
}

// Heal unblocks the directed link from→to.
func (s *SimNetwork) Heal(from, to NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.blocked, [2]NodeID{from, to})
}

// NullNetwork is a Network with zero latency everywhere; useful in unit
// tests that exercise protocol logic without timing.
type NullNetwork struct{}

var _ Network = NullNetwork{}

// Hop implements Network.
func (NullNetwork) Hop(_, _ NodeID, _ int) error { return nil }

// Latency implements Network.
func (NullNetwork) Latency(_, _ NodeID, _ int) time.Duration { return 0 }
