package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSimLatencyLocalVsRemote(t *testing.T) {
	n := NewSim(SimConfig{BaseLatency: time.Millisecond, LocalLatency: 0})
	if d := n.Latency(1, 1, 0); d != 0 {
		t.Fatalf("local latency = %v; want 0", d)
	}
	if d := n.Latency(1, 2, 0); d != time.Millisecond {
		t.Fatalf("remote latency = %v; want 1ms", d)
	}
}

func TestSimLatencyBandwidth(t *testing.T) {
	n := NewSim(SimConfig{BaseLatency: 0, BandwidthMBps: 1}) // 1 MB/s
	d := n.Latency(1, 2, 1_000_000)
	if d < 900*time.Millisecond || d > 1100*time.Millisecond {
		t.Fatalf("1MB at 1MB/s = %v; want ≈1s", d)
	}
	if d := n.Latency(1, 2, 0); d != 0 {
		t.Fatalf("empty payload latency = %v; want 0", d)
	}
}

func TestSimJitterBounded(t *testing.T) {
	n := NewSim(SimConfig{BaseLatency: time.Millisecond, Jitter: time.Millisecond})
	for i := 0; i < 100; i++ {
		d := n.Latency(1, 2, 0)
		if d < time.Millisecond || d >= 2*time.Millisecond {
			t.Fatalf("latency %v outside [1ms, 2ms)", d)
		}
	}
}

func TestSimHopSleeps(t *testing.T) {
	n := NewSim(SimConfig{BaseLatency: time.Millisecond})
	var slept time.Duration
	n.sleep = func(d time.Duration) { slept += d }
	if err := n.Hop(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	if slept != time.Millisecond {
		t.Fatalf("slept %v; want 1ms", slept)
	}
}

func TestSimPartition(t *testing.T) {
	n := NewSim(SimConfig{})
	n.Partition(1, 2)
	if err := n.Hop(1, 2, 0); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("err = %v; want ErrPartitioned", err)
	}
	// Direction matters.
	if err := n.Hop(2, 1, 0); err != nil {
		t.Fatalf("reverse direction err = %v; want nil", err)
	}
	n.Heal(1, 2)
	if err := n.Hop(1, 2, 0); err != nil {
		t.Fatalf("after heal err = %v; want nil", err)
	}
}

func echoHandler(_ context.Context, from NodeID, req Message) (Message, error) {
	return Message{Kind: req.Kind + "-reply", Payload: append([]byte(fmt.Sprintf("from %v: ", from)), req.Payload...)}, nil
}

func TestInMemMeshCall(t *testing.T) {
	mesh := NewInMemMesh(NullNetwork{})
	a, err := mesh.Attach(1, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mesh.Attach(2, echoHandler); err != nil {
		t.Fatal(err)
	}
	resp, err := a.Call(context.Background(), 2, Message{Kind: "ping", Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "ping-reply" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestInMemMeshUnknownNode(t *testing.T) {
	mesh := NewInMemMesh(NullNetwork{})
	a, _ := mesh.Attach(1, echoHandler)
	if _, err := a.Call(context.Background(), 9, Message{}); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("err = %v; want ErrNodeUnknown", err)
	}
}

func TestInMemMeshDoubleAttach(t *testing.T) {
	mesh := NewInMemMesh(NullNetwork{})
	_, _ = mesh.Attach(1, echoHandler)
	if _, err := mesh.Attach(1, echoHandler); !errors.Is(err, ErrNodeAttached) {
		t.Fatalf("err = %v; want ErrNodeAttached", err)
	}
}

func TestInMemMeshClose(t *testing.T) {
	mesh := NewInMemMesh(NullNetwork{})
	a, _ := mesh.Attach(1, echoHandler)
	b, _ := mesh.Attach(2, echoHandler)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call(context.Background(), 2, Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v; want ErrClosed", err)
	}
	// Node 1 is gone from the mesh.
	if _, err := b.Call(context.Background(), 1, Message{}); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("err = %v; want ErrNodeUnknown", err)
	}
	// The ID can be reused after Close.
	if _, err := mesh.Attach(1, echoHandler); err != nil {
		t.Fatalf("re-attach: %v", err)
	}
}

func TestInMemMeshPartitioned(t *testing.T) {
	sim := NewSim(SimConfig{})
	mesh := NewInMemMesh(sim)
	a, _ := mesh.Attach(1, echoHandler)
	_, _ = mesh.Attach(2, echoHandler)
	sim.Partition(1, 2)
	if _, err := a.Call(context.Background(), 2, Message{}); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("err = %v; want ErrPartitioned", err)
	}
}

func TestTCPMeshCall(t *testing.T) {
	mesh := NewTCPMesh()
	a, err := mesh.Attach(1, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := mesh.Attach(2, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()

	resp, err := a.Call(context.Background(), 2, Message{Kind: "ping", Payload: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "ping-reply" || string(resp.Payload) != "from node1: hello" {
		t.Fatalf("resp = %+v", resp)
	}
	// Round trip the other way, exercising a fresh connection.
	resp, err = b.Call(context.Background(), 1, Message{Kind: "pong"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "pong-reply" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestTCPMeshRemoteError(t *testing.T) {
	mesh := NewTCPMesh()
	a, _ := mesh.Attach(1, echoHandler)
	defer func() { _ = a.Close() }()
	failing, _ := mesh.Attach(2, func(_ context.Context, _ NodeID, _ Message) (Message, error) {
		return Message{}, errors.New("boom")
	})
	defer func() { _ = failing.Close() }()

	_, err := a.Call(context.Background(), 2, Message{Kind: "x"})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v; want RemoteError", err)
	}
	if remote.Msg != "boom" || remote.Node != 2 {
		t.Fatalf("remote = %+v", remote)
	}
}

func TestTCPMeshConcurrentCalls(t *testing.T) {
	mesh := NewTCPMesh()
	a, _ := mesh.Attach(1, echoHandler)
	defer func() { _ = a.Close() }()
	b, _ := mesh.Attach(2, echoHandler)
	defer func() { _ = b.Close() }()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := a.Call(context.Background(), 2,
				Message{Kind: "k", Payload: []byte(fmt.Sprintf("%d", i))})
			if err != nil {
				errs <- err
				return
			}
			if string(resp.Payload) != fmt.Sprintf("from node1: %d", i) {
				errs <- fmt.Errorf("mismatched reply %q for %d", resp.Payload, i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestTCPMeshUnknownNode(t *testing.T) {
	mesh := NewTCPMesh()
	a, _ := mesh.Attach(1, echoHandler)
	defer func() { _ = a.Close() }()
	if _, err := a.Call(context.Background(), 42, Message{}); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("err = %v; want ErrNodeUnknown", err)
	}
}

func TestTCPMeshCloseIdempotent(t *testing.T) {
	mesh := NewTCPMesh()
	a, _ := mesh.Attach(1, echoHandler)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := a.Call(context.Background(), 1, Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v; want ErrClosed", err)
	}
}
