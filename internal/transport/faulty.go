package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrDropped is returned when a fault-injecting mesh drops a call: the
// request was lost before reaching the destination handler. Callers must
// treat it like a timed-out call — the operation did not happen.
var ErrDropped = errors.New("transport: call dropped (injected fault)")

// FaultyMesh wraps another Mesh and injects message-level faults for tests:
// directed links can drop calls (the request never reaches the handler) or
// duplicate them (the handler runs twice; the caller sees the first
// response). Faults are configured per directed (from, to) pair, so a test
// can partition one direction while the reverse stays healthy, exactly like
// an asymmetric network failure.
type FaultyMesh struct {
	inner Mesh

	mu        sync.Mutex
	drop      map[[2]NodeID]bool
	dup       map[[2]NodeID]int // remaining duplications on the link
	dropReply map[[2]NodeID]int // remaining lost-ack deliveries on the link
}

var _ Mesh = (*FaultyMesh)(nil)

// NewFaultyMesh wraps inner with fault injection. With no faults configured
// it is transparent.
func NewFaultyMesh(inner Mesh) *FaultyMesh {
	return &FaultyMesh{
		inner:     inner,
		drop:      make(map[[2]NodeID]bool),
		dup:       make(map[[2]NodeID]int),
		dropReply: make(map[[2]NodeID]int),
	}
}

// Drop makes every call from→to fail with ErrDropped until Heal.
func (m *FaultyMesh) Drop(from, to NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.drop[[2]NodeID{from, to}] = true
}

// Heal removes the drop fault on from→to.
func (m *FaultyMesh) Heal(from, to NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.drop, [2]NodeID{from, to})
}

// Duplicate makes the next n calls from→to deliver twice (at-least-once
// delivery): the destination handler runs for both copies, the caller
// receives the first response.
func (m *FaultyMesh) Duplicate(from, to NodeID, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dup[[2]NodeID{from, to}] = n
}

// DropReply makes the next n calls from→to deliver — the destination
// handler runs and commits its effects — but lose the response: the caller
// sees ErrDropped. This is the "lost ack" failure that distinguishes
// at-least-once commit ambiguity from a plain dropped request.
func (m *FaultyMesh) DropReply(from, to NodeID, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dropReply[[2]NodeID{from, to}] = n
}

// Attach implements Mesh.
func (m *FaultyMesh) Attach(id NodeID, h Handler) (Endpoint, error) {
	ep, err := m.inner.Attach(id, h)
	if err != nil {
		return nil, err
	}
	return &faultyEndpoint{mesh: m, inner: ep}, nil
}

type faultyEndpoint struct {
	mesh  *FaultyMesh
	inner Endpoint
}

var _ Endpoint = (*faultyEndpoint)(nil)

func (e *faultyEndpoint) ID() NodeID { return e.inner.ID() }

func (e *faultyEndpoint) Call(ctx context.Context, to NodeID, req Message) (Message, error) {
	link := [2]NodeID{e.inner.ID(), to}
	e.mesh.mu.Lock()
	dropped := e.mesh.drop[link]
	duplicate := false
	if n := e.mesh.dup[link]; n > 0 {
		duplicate = true
		e.mesh.dup[link] = n - 1
	}
	lostAck := false
	if n := e.mesh.dropReply[link]; n > 0 {
		lostAck = true
		e.mesh.dropReply[link] = n - 1
	}
	e.mesh.mu.Unlock()
	if dropped {
		return Message{}, fmt.Errorf("%v→%v: %w", e.inner.ID(), to, ErrDropped)
	}
	resp, err := e.inner.Call(ctx, to, req)
	if duplicate {
		// Deliver the same request again; the stale second response is
		// discarded, as a retransmitting network would have the caller do.
		_, _ = e.inner.Call(ctx, to, req)
	}
	if lostAck {
		// The handler ran; only the response is lost.
		return Message{}, fmt.Errorf("%v→%v reply: %w", e.inner.ID(), to, ErrDropped)
	}
	return resp, err
}

func (e *faultyEndpoint) Close() error { return e.inner.Close() }

// Stream implements Streamer when the inner endpoint does: the pipelined
// path is subject to the same directed-link faults as one-shot calls, so
// tests can drop, duplicate, and lose-the-response-of individual pipelined
// requests.
func (e *faultyEndpoint) Stream(to NodeID) (Stream, error) {
	inner, ok, err := OpenStream(e.inner, to)
	if !ok {
		return nil, fmt.Errorf("%T: %w", e.inner, ErrNoStreams)
	}
	if err != nil {
		return nil, err
	}
	return &faultyStream{mesh: e.mesh, from: e.inner.ID(), to: to, inner: inner}, nil
}

// ErrNoStreams is returned when opening a stream on a mesh whose inner
// endpoints only support one-shot calls.
var ErrNoStreams = errors.New("transport: endpoint does not support streams")

type faultyStream struct {
	mesh  *FaultyMesh
	from  NodeID
	to    NodeID
	inner Stream
}

var _ Stream = (*faultyStream)(nil)

func (s *faultyStream) Call(ctx context.Context, req Message) (Message, error) {
	link := [2]NodeID{s.from, s.to}
	s.mesh.mu.Lock()
	dropped := s.mesh.drop[link]
	duplicate := false
	if n := s.mesh.dup[link]; n > 0 {
		duplicate = true
		s.mesh.dup[link] = n - 1
	}
	lostAck := false
	if n := s.mesh.dropReply[link]; n > 0 {
		lostAck = true
		s.mesh.dropReply[link] = n - 1
	}
	s.mesh.mu.Unlock()
	if dropped {
		return Message{}, fmt.Errorf("%v→%v: %w", s.from, s.to, ErrDropped)
	}
	resp, err := s.inner.Call(ctx, req)
	if duplicate {
		// The request is delivered twice (the handler runs for both); the
		// duplicate's response is discarded like a retransmission's would
		// be — on a real mux connection its correlation ID is already
		// retired, so it can never match a newer request.
		_, _ = s.inner.Call(ctx, req)
	}
	if lostAck {
		return Message{}, fmt.Errorf("%v→%v reply: %w", s.from, s.to, ErrDropped)
	}
	return resp, err
}

func (s *faultyStream) Close() error { return s.inner.Close() }
