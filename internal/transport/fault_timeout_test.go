package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// TestTCPCallTimeoutOnDeadPeer pins the satellite fix: a peer that accepts
// connections but never answers (a hung process) must not wedge Call
// forever — the caller's context deadline applies to the socket and the
// call fails with the typed ErrCallTimeout.
func TestTCPCallTimeoutOnDeadPeer(t *testing.T) {
	// A "dead" peer: accepts and then ignores the connection.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			_ = conn // read nothing, answer nothing
		}
	}()

	m := NewTCPMesh()
	m.Register(2, ln.Addr().String())
	ep, err := m.Attach(1, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = ep.Call(ctx, 2, Message{Kind: "ping"})
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timed-out call took %v", elapsed)
	}
}

// TestTCPCallDeadlineDoesNotPoisonPool verifies a deadline-bearing call that
// succeeds leaves a reusable connection behind: the next (deadline-free)
// call must not inherit the old deadline.
func TestTCPCallDeadlineDoesNotPoisonPool(t *testing.T) {
	m := NewTCPMesh()
	srv, err := m.Attach(2, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ep, err := m.Attach(1, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	if _, err := ep.Call(ctx, 2, Message{Kind: "a"}); err != nil {
		cancel()
		t.Fatalf("deadline call: %v", err)
	}
	cancel()
	// Wait past the old deadline, then reuse the pooled connection.
	time.Sleep(1100 * time.Millisecond)
	if _, err := ep.Call(context.Background(), 2, Message{Kind: "b"}); err != nil {
		t.Fatalf("pooled reuse after deadline: %v", err)
	}
}

// TestTCPAttachUsesRegisteredAddr pins the daemon-facing behavior: a node
// that registered its own address before Attach listens there, so peers can
// dial the configured port.
func TestTCPAttachUsesRegisteredAddr(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close() // free the port for Attach (racy on busy hosts, fine in CI)

	m := NewTCPMesh()
	m.Register(1, addr)
	ep, err := m.Attach(1, echoHandler)
	if err != nil {
		t.Skipf("port %s re-bind raced: %v", addr, err)
	}
	defer ep.Close()
	got, ok := m.Addr(1)
	if !ok || got != addr {
		t.Fatalf("Addr(1) = %q ok=%v, want %q", got, ok, addr)
	}
}

func TestFaultyMeshDropAndHeal(t *testing.T) {
	fm := NewFaultyMesh(NewInMemMesh(NullNetwork{}))
	a, err := fm.Attach(1, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := fm.Attach(2, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	fm.Drop(1, 2)
	if _, err := a.Call(context.Background(), 2, Message{Kind: "x"}); !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	// The reverse direction stays healthy (asymmetric fault).
	if _, err := b.Call(context.Background(), 1, Message{Kind: "x"}); err != nil {
		t.Fatalf("reverse direction: %v", err)
	}
	fm.Heal(1, 2)
	if _, err := a.Call(context.Background(), 2, Message{Kind: "x"}); err != nil {
		t.Fatalf("post-heal: %v", err)
	}
}

func TestFaultyMeshDuplicateDeliversTwice(t *testing.T) {
	var calls int
	counting := func(_ context.Context, _ NodeID, req Message) (Message, error) {
		calls++
		return req, nil
	}
	fm := NewFaultyMesh(NewInMemMesh(NullNetwork{}))
	srv, err := fm.Attach(2, counting)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	a, err := fm.Attach(1, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	fm.Duplicate(1, 2, 1)
	if _, err := a.Call(context.Background(), 2, Message{Kind: "x"}); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("handler ran %d times, want 2 (duplicated)", calls)
	}
	if _, err := a.Call(context.Background(), 2, Message{Kind: "x"}); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("handler ran %d times, want 3 (duplication budget spent)", calls)
	}
}
