// Package eventwave reimplements the EventWave baseline (Chuang et al.,
// SoCC'13) the paper compares against in § 6: applications are a *tree* of
// contexts, every event is totally ordered at the single root context, and
// ordering flows down the tree hand-over-hand — so the root is a sequencing
// bottleneck ("EventWave guarantees strict-serializability by totally
// ordering all requests at the (single) root context ... this clearly
// limits scalability"). Migration halts all execution for its duration
// ("halting all executions during migration", § 2.1).
//
// The package reuses the schema declarations of the AEON applications so
// the same handler code runs on both systems; ownership is restricted to a
// tree at context creation.
package eventwave

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/metrics"
	"aeon/internal/ownership"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

var (
	// ErrClosed is returned when submitting to a closed runtime.
	ErrClosed = errors.New("eventwave: runtime closed")
	// ErrNotTree is returned when a context would get a second owner.
	ErrNotTree = errors.New("eventwave: contexts form a strict tree")
	// ErrNoRoot is returned when submitting before a root context exists.
	ErrNoRoot = errors.New("eventwave: no root context")
	// ErrUnknown is returned for unknown contexts or methods.
	ErrUnknown = errors.New("eventwave: unknown context or method")
	// ErrNotOwned mirrors the AEON runtime's direct-ownership rule.
	ErrNotOwned = errors.New("eventwave: callee not owned by caller")
)

// ClientNode is the logical client network location.
const ClientNode = transport.NodeID(-1)

// Config tunes the runtime.
type Config struct {
	// RootCost is the CPU the root context spends ordering each event —
	// the sequencing bottleneck.
	RootCost time.Duration
	// MessageBytes sizes protocol messages for latency charging.
	MessageBytes int
	// ChargeClientHops charges client↔server hops per event.
	ChargeClientHops bool
}

// DefaultConfig matches the benchmark harness settings.
func DefaultConfig() Config {
	return Config{
		RootCost:         100 * time.Microsecond,
		MessageBytes:     256,
		ChargeClientHops: true,
	}
}

type context struct {
	id     ownership.ID
	class  *schema.Class
	parent ownership.ID
	state  any

	mu       sync.Mutex // FIFO via ticket queue below
	queue    []chan struct{}
	held     bool
	children []ownership.ID
}

// lockQueued takes a FIFO queue slot immediately and returns a channel that
// closes on admission; taking the slot while an upstream context is still
// held preserves the total order established at the root.
func (c *context) lockQueued() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.held && len(c.queue) == 0 {
		c.held = true
		return closedCh
	}
	ch := make(chan struct{})
	c.queue = append(c.queue, ch)
	return ch
}

var closedCh = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// lock acquires the context's exclusive lock in FIFO order.
func (c *context) lock() {
	<-c.lockQueued()
}

// unlock releases the lock, admitting the next FIFO waiter.
func (c *context) unlock() {
	c.mu.Lock()
	if len(c.queue) > 0 {
		next := c.queue[0]
		c.queue = c.queue[1:]
		close(next)
	} else {
		c.held = false
	}
	c.mu.Unlock()
}

// Runtime executes events over an EventWave context tree.
type Runtime struct {
	cfg     Config
	schema  *schema.Schema
	cluster *cluster.Cluster

	mu       sync.RWMutex
	contexts map[ownership.ID]*context
	location map[ownership.ID]cluster.ServerID
	root     ownership.ID
	nextID   ownership.ID

	// migrationGate is held in write mode during migrations: EventWave
	// halts all event execution while a context moves.
	migrationGate sync.RWMutex

	closed atomic.Bool
	subWG  sync.WaitGroup

	// Latency and Completed mirror the AEON runtime's counters.
	Latency   metrics.Histogram
	Completed metrics.Counter
}

// New creates an EventWave runtime over a frozen schema.
func New(s *schema.Schema, cl *cluster.Cluster, cfg Config) (*Runtime, error) {
	if !s.Frozen() {
		return nil, fmt.Errorf("eventwave: schema must be frozen")
	}
	if cfg.MessageBytes == 0 {
		cfg.MessageBytes = 256
	}
	return &Runtime{
		cfg:      cfg,
		schema:   s,
		cluster:  cl,
		contexts: make(map[ownership.ID]*context),
		location: make(map[ownership.ID]cluster.ServerID),
		nextID:   1,
	}, nil
}

// Cluster returns the compute substrate.
func (r *Runtime) Cluster() *cluster.Cluster { return r.cluster }

// Close drains sub-events and stops the runtime.
func (r *Runtime) Close() {
	r.closed.Store(true)
	r.subWG.Wait()
}

// CreateContext creates a tree context. The first ownerless context becomes
// the root; every other context must have exactly one owner.
func (r *Runtime) CreateContext(class string, owner ...ownership.ID) (ownership.ID, error) {
	srv := cluster.ServerID(0)
	if len(owner) > 0 {
		r.mu.RLock()
		srv = r.location[owner[0]]
		r.mu.RUnlock()
	}
	if srv == 0 {
		servers := r.cluster.Servers()
		if len(servers) == 0 {
			return ownership.None, fmt.Errorf("eventwave: no servers")
		}
		srv = servers[int(r.nextID)%len(servers)].ID()
	}
	return r.CreateContextOn(srv, class, owner...)
}

// CreateContextOn creates a tree context on an explicit server.
func (r *Runtime) CreateContextOn(srv cluster.ServerID, class string, owner ...ownership.ID) (ownership.ID, error) {
	cls := r.schema.Class(class)
	if cls == nil {
		return ownership.None, fmt.Errorf("class %q: %w", class, ErrUnknown)
	}
	if len(owner) > 1 {
		return ownership.None, ErrNotTree
	}
	server, ok := r.cluster.Server(srv)
	if !ok {
		return ownership.None, cluster.ErrNoSuchServer
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var parent ownership.ID
	if len(owner) == 1 {
		if _, ok := r.contexts[owner[0]]; !ok {
			return ownership.None, fmt.Errorf("owner %v: %w", owner[0], ErrUnknown)
		}
		parent = owner[0]
	} else if r.root != ownership.None {
		return ownership.None, fmt.Errorf("second root: %w", ErrNotTree)
	}
	id := r.nextID
	r.nextID++
	c := &context{id: id, class: cls, parent: parent, state: cls.NewState()}
	r.contexts[id] = c
	r.location[id] = srv
	server.AddHosted(1)
	if parent == ownership.None {
		r.root = id
	} else {
		r.contexts[parent].children = append(r.contexts[parent].children, id)
	}
	return id, nil
}

// Context returns a context's state (tests and setup).
func (r *Runtime) State(id ownership.ID) (any, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.contexts[id]
	if !ok {
		return nil, fmt.Errorf("%v: %w", id, ErrUnknown)
	}
	return c.state, nil
}

// Location returns a context's hosting server.
func (r *Runtime) Location(id ownership.ID) (cluster.ServerID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.location[id]
	return s, ok
}

// Submit runs one event to completion: sequencing at the root, then a
// hand-over-hand descent to the target, then execution holding the target's
// subtree.
func (r *Runtime) Submit(target ownership.ID, method string, args ...any) (any, error) {
	return r.run(target, method, args, false)
}

func (r *Runtime) run(target ownership.ID, method string, args []any, asSub bool) (any, error) {
	if r.closed.Load() && !asSub {
		return nil, ErrClosed
	}
	start := time.Now()

	// Migration halts all execution.
	r.migrationGate.RLock()
	defer r.migrationGate.RUnlock()

	r.mu.RLock()
	root := r.root
	tc, ok := r.contexts[target]
	r.mu.RUnlock()
	if root == ownership.None {
		return nil, ErrNoRoot
	}
	if !ok {
		return nil, fmt.Errorf("%v: %w", target, ErrUnknown)
	}
	m := tc.class.Method(method)
	if m == nil {
		return nil, fmt.Errorf("%s.%s: %w", tc.class.Name(), method, ErrUnknown)
	}

	// Path root → target.
	path, err := r.pathFromRoot(target)
	if err != nil {
		return nil, err
	}

	net := r.cluster.Net()
	if r.cfg.ChargeClientHops {
		if err := net.Hop(ClientNode, r.locationOf(root), r.cfg.MessageBytes); err != nil {
			return nil, err
		}
	}

	ev := &event{rt: r}
	defer ev.releaseAll()

	// Sequence at the root: acquire the root lock, pay the ordering cost.
	rootCtx := r.context(root)
	rootCtx.lock()
	ev.hold(rootCtx)
	if r.cfg.RootCost > 0 {
		if srv, ok := r.cluster.Server(r.locationOf(root)); ok {
			srv.Work(r.cfg.RootCost)
		}
	}

	// Hand-over-hand descent: take the child's queue slot while the parent
	// is still held (preserving the root's total order at every context),
	// release the parent, then pay the downstream message hop and wait for
	// admission — the pipeline behaviour that lets EventWave overlap events
	// in disjoint subtrees while the root only pays its ordering cost.
	cur := r.locationOf(root)
	for i := 1; i < len(path); i++ {
		c := r.context(path[i])
		admitted := c.lockQueued()
		ev.hold(c)
		ev.releaseOne(path[i-1]) // crab down
		next := r.locationOf(path[i])
		if next != cur {
			if err := net.Hop(cur, next, r.cfg.MessageBytes); err != nil {
				<-admitted // own the slot before bailing so releaseAll is safe
				return nil, err
			}
			cur = next
		}
		<-admitted
	}

	env := &callEnv{rt: r, ev: ev, ctx: tc, method: m}
	res, err := r.invoke(env, args)
	ev.wg.Wait()
	// Locks release at event termination, before the reply travels back.
	ev.releaseAll()

	if r.cfg.ChargeClientHops {
		_ = net.Hop(r.locationOf(target), ClientNode, r.cfg.MessageBytes)
	}
	r.Latency.Record(time.Since(start))
	r.Completed.Inc()

	for _, sub := range ev.takeSubs() {
		r.subWG.Add(1)
		go func(s subEvent) {
			defer r.subWG.Done()
			_, _ = r.run(s.target, s.method, s.args, true)
		}(sub)
	}
	return res, err
}

func (r *Runtime) invoke(env *callEnv, args []any) (any, error) {
	if env.method.Cost > 0 {
		if srv, ok := r.cluster.Server(r.locationOf(env.ctx.id)); ok {
			srv.Work(env.method.Cost)
		}
	}
	if env.method.Handler == nil {
		return nil, fmt.Errorf("%s.%s: %w", env.ctx.class.Name(), env.method.Name, ErrUnknown)
	}
	return env.method.Handler(env, args)
}

func (r *Runtime) context(id ownership.ID) *context {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.contexts[id]
}

func (r *Runtime) locationOf(id ownership.ID) cluster.ServerID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.location[id]
}

func (r *Runtime) pathFromRoot(target ownership.ID) ([]ownership.ID, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var rev []ownership.ID
	cur := target
	for {
		rev = append(rev, cur)
		c, ok := r.contexts[cur]
		if !ok {
			return nil, fmt.Errorf("%v: %w", cur, ErrUnknown)
		}
		if c.parent == ownership.None {
			break
		}
		cur = c.parent
	}
	if rev[len(rev)-1] != r.root {
		return nil, fmt.Errorf("%v not under root: %w", target, ErrUnknown)
	}
	// Reverse to root→target order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// Migrate moves a context to another server, halting all event execution
// for the duration (EventWave's stop-the-world migration).
func (r *Runtime) Migrate(id ownership.ID, to cluster.ServerID) error {
	r.migrationGate.Lock()
	defer r.migrationGate.Unlock()

	r.mu.Lock()
	from, ok := r.location[id]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%v: %w", id, ErrUnknown)
	}
	r.mu.Unlock()
	if from == to {
		return nil
	}
	dst, ok := r.cluster.Server(to)
	if !ok {
		return cluster.ErrNoSuchServer
	}
	// Transfer cost at NIC bandwidth.
	bytes := 1024
	if st, err := r.State(id); err == nil {
		if s, ok := st.(interface{ StateBytes() int }); ok {
			bytes = s.StateBytes()
		}
	}
	if mbps := dst.Profile().MigrationMBps; mbps > 0 {
		time.Sleep(time.Duration(float64(bytes) / (mbps * 1e6) * float64(time.Second)))
	}
	r.mu.Lock()
	r.location[id] = to
	r.mu.Unlock()
	if src, ok := r.cluster.Server(from); ok {
		src.AddHosted(-1)
	}
	dst.AddHosted(1)
	return nil
}
