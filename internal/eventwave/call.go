package eventwave

import (
	"fmt"
	"sync"
	"time"

	"aeon/internal/ownership"
	"aeon/internal/schema"
)

// event tracks the contexts an EventWave event holds.
type event struct {
	rt *Runtime

	mu   sync.Mutex
	held []*context
	set  map[ownership.ID]bool
	subs []subEvent

	wg sync.WaitGroup
}

type subEvent struct {
	target ownership.ID
	method string
	args   []any
}

func (e *event) hold(c *context) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.set == nil {
		e.set = make(map[ownership.ID]bool, 4)
	}
	if e.set[c.id] {
		return
	}
	e.set[c.id] = true
	e.held = append(e.held, c)
}

func (e *event) holds(id ownership.ID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.set[id]
}

// releaseOne releases one held context (hand-over-hand descent).
func (e *event) releaseOne(id ownership.ID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.set[id] {
		return
	}
	delete(e.set, id)
	for i, c := range e.held {
		if c.id == id {
			e.held = append(e.held[:i], e.held[i+1:]...)
			c.unlock()
			return
		}
	}
}

// releaseAll releases everything still held, in reverse order.
func (e *event) releaseAll() {
	e.mu.Lock()
	held := e.held
	e.held = nil
	e.set = nil
	e.mu.Unlock()
	for i := len(held) - 1; i >= 0; i-- {
		held[i].unlock()
	}
}

func (e *event) addSub(target ownership.ID, method string, args []any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.subs = append(e.subs, subEvent{target, method, args})
}

func (e *event) takeSubs() []subEvent {
	e.mu.Lock()
	defer e.mu.Unlock()
	subs := e.subs
	e.subs = nil
	return subs
}

// callEnv implements schema.Call for EventWave so the same application
// handlers run on both systems.
type callEnv struct {
	rt     *Runtime
	ev     *event
	ctx    *context
	method *schema.Method
}

var _ schema.Call = (*callEnv)(nil)

// Self implements schema.Call.
func (c *callEnv) Self() ownership.ID { return c.ctx.id }

// Class implements schema.Call.
func (c *callEnv) Class() string { return c.ctx.class.Name() }

// State implements schema.Call.
func (c *callEnv) State() any { return c.ctx.state }

// EventID implements schema.Call (EventWave does not expose ids; 0).
func (c *callEnv) EventID() uint64 { return 0 }

// ReadOnly implements schema.Call: EventWave totally orders all events, so
// nothing runs in share mode.
func (c *callEnv) ReadOnly() bool { return false }

func (c *callEnv) prepare(child ownership.ID, method string) (*context, *schema.Method, error) {
	cc := c.rt.context(child)
	if cc == nil {
		return nil, nil, fmt.Errorf("%v: %w", child, ErrUnknown)
	}
	if cc.parent != c.ctx.id {
		return nil, nil, fmt.Errorf("%v → %v: %w", c.ctx.id, child, ErrNotOwned)
	}
	m := cc.class.Method(method)
	if m == nil {
		return nil, nil, fmt.Errorf("%s.%s: %w", cc.class.Name(), method, ErrUnknown)
	}
	from := c.rt.locationOf(c.ctx.id)
	to := c.rt.locationOf(child)
	if from != to {
		if err := c.rt.cluster.Net().Hop(from, to, c.rt.cfg.MessageBytes); err != nil {
			return nil, nil, err
		}
	}
	if !c.ev.holds(child) {
		cc.lock()
		c.ev.hold(cc)
	}
	return cc, m, nil
}

// Sync implements schema.Call.
func (c *callEnv) Sync(child ownership.ID, method string, args ...any) (any, error) {
	cc, m, err := c.prepare(child, method)
	if err != nil {
		return nil, err
	}
	env := &callEnv{rt: c.rt, ev: c.ev, ctx: cc, method: m}
	return c.rt.invoke(env, args)
}

type asyncResult struct {
	done chan struct{}
	res  any
	err  error
}

// Wait implements schema.AsyncResult.
func (a *asyncResult) Wait() (any, error) {
	<-a.done
	return a.res, a.err
}

// Async implements schema.Call.
func (c *callEnv) Async(child ownership.ID, method string, args ...any) schema.AsyncResult {
	a := &asyncResult{done: make(chan struct{})}
	cc, m, err := c.prepare(child, method)
	if err != nil {
		a.err = err
		close(a.done)
		return a
	}
	c.ev.wg.Add(1)
	go func() {
		defer c.ev.wg.Done()
		defer close(a.done)
		env := &callEnv{rt: c.rt, ev: c.ev, ctx: cc, method: m}
		a.res, a.err = c.rt.invoke(env, args)
	}()
	return a
}

// Crab implements schema.Call. EventWave has no early-release tail calls;
// it degrades to a plain asynchronous call.
func (c *callEnv) Crab(child ownership.ID, method string, args ...any) error {
	c.Async(child, method, args...)
	return nil
}

// Dispatch implements schema.Call.
func (c *callEnv) Dispatch(target ownership.ID, method string, args ...any) {
	c.ev.addSub(target, method, args)
}

// NewContext implements schema.Call.
func (c *callEnv) NewContext(class string, owners ...ownership.ID) (ownership.ID, error) {
	if len(owners) > 1 {
		return ownership.None, ErrNotTree
	}
	return c.rt.CreateContext(class, owners...)
}

// AddOwner implements schema.Call: EventWave "does not support modification
// of tree edges" (§ 2.1).
func (c *callEnv) AddOwner(parent, child ownership.ID) error {
	return fmt.Errorf("add owner: %w", ErrNotTree)
}

// Children implements schema.Call.
func (c *callEnv) Children(class string) ([]ownership.ID, error) {
	c.rt.mu.RLock()
	defer c.rt.mu.RUnlock()
	var out []ownership.ID
	for _, ch := range c.ctx.children {
		if class == "" || c.rt.contexts[ch].class.Name() == class {
			out = append(out, ch)
		}
	}
	return out, nil
}

// Work implements schema.Call.
func (c *callEnv) Work(d time.Duration) {
	if srv, ok := c.rt.cluster.Server(c.rt.locationOf(c.ctx.id)); ok {
		srv.Work(d)
	}
}
