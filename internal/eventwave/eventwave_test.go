package eventwave

import (
	"errors"
	"sync"
	"testing"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/ownership"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

type counter struct {
	N int
}

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.New()
	root := s.MustDeclareClass("Root", func() any { return &counter{} })
	room := s.MustDeclareClass("Room", func() any { return &counter{} })
	item := s.MustDeclareClass("Item", func() any { return &counter{} })

	item.MustDeclareMethod("add", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*counter)
		st.N += args[0].(int)
		return st.N, nil
	})
	room.MustDeclareMethod("inc", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*counter)
		st.N++
		return st.N, nil
	})
	room.MustDeclareMethod("addAll", func(call schema.Call, args []any) (any, error) {
		items, err := call.Children("Item")
		if err != nil {
			return nil, err
		}
		var res []schema.AsyncResult
		for _, it := range items {
			res = append(res, call.Async(it, "add", args[0]))
		}
		for _, r := range res {
			if _, err := r.Wait(); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}, schema.MayCall("Item", "add"))
	room.MustDeclareMethod("transfer", func(call schema.Call, args []any) (any, error) {
		from := args[0].(ownership.ID)
		to := args[1].(ownership.ID)
		amt := args[2].(int)
		if _, err := call.Sync(from, "add", -amt); err != nil {
			return nil, err
		}
		if _, err := call.Sync(to, "add", amt); err != nil {
			return nil, err
		}
		return nil, nil
	}, schema.MayCall("Item", "add"))
	root.MustDeclareMethod("noop", func(call schema.Call, args []any) (any, error) {
		return nil, nil
	})
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	return s
}

type world struct {
	rt    *Runtime
	root  ownership.ID
	rooms []ownership.ID
	items map[ownership.ID][]ownership.ID
}

func newWorld(t *testing.T, nServers, nRooms, itemsPerRoom int) *world {
	t.Helper()
	s := testSchema(t)
	cl := cluster.New(transport.NullNetwork{})
	for i := 0; i < nServers; i++ {
		cl.AddServer(cluster.M3Large)
	}
	rt, err := New(s, cl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	w := &world{rt: rt, items: make(map[ownership.ID][]ownership.ID)}
	servers := cl.Servers()
	w.root, err = rt.CreateContextOn(servers[0].ID(), "Root")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nRooms; i++ {
		room, err := rt.CreateContextOn(servers[i%len(servers)].ID(), "Room", w.root)
		if err != nil {
			t.Fatal(err)
		}
		w.rooms = append(w.rooms, room)
		for j := 0; j < itemsPerRoom; j++ {
			it, err := rt.CreateContext("Item", room)
			if err != nil {
				t.Fatal(err)
			}
			w.items[room] = append(w.items[room], it)
		}
	}
	return w
}

func TestTreeEnforced(t *testing.T) {
	w := newWorld(t, 1, 1, 1)
	// Second root rejected.
	if _, err := w.rt.CreateContext("Root"); !errors.Is(err, ErrNotTree) {
		t.Fatalf("err = %v; want ErrNotTree", err)
	}
	// Multi-owner rejected.
	if _, err := w.rt.CreateContext("Item", w.rooms[0], w.root); !errors.Is(err, ErrNotTree) {
		t.Fatalf("err = %v; want ErrNotTree", err)
	}
}

func TestSubmitAndState(t *testing.T) {
	w := newWorld(t, 2, 2, 2)
	if _, err := w.rt.Submit(w.rooms[0], "inc"); err != nil {
		t.Fatal(err)
	}
	st, err := w.rt.State(w.rooms[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.(*counter).N != 1 {
		t.Fatalf("N = %d", st.(*counter).N)
	}
}

func TestTransferConservation(t *testing.T) {
	w := newWorld(t, 2, 1, 2)
	room := w.rooms[0]
	i1, i2 := w.items[room][0], w.items[room][1]
	if _, err := w.rt.Submit(i1, "add", 1000); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				from, to := i1, i2
				if g%2 == 0 {
					from, to = to, from
				}
				if _, err := w.rt.Submit(room, "transfer", from, to, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s1, _ := w.rt.State(i1)
	s2, _ := w.rt.State(i2)
	if total := s1.(*counter).N + s2.(*counter).N; total != 1000 {
		t.Fatalf("total = %d; want 1000", total)
	}
}

func TestRootSequencingSerializes(t *testing.T) {
	// With a large RootCost, events serialize at the root even when they
	// target disjoint rooms — the EventWave bottleneck.
	s := testSchema(t)
	cl := cluster.New(transport.NullNetwork{})
	cl.AddServer(cluster.M3Large)
	cl.AddServer(cluster.M3Large)
	rt, err := New(s, cl, Config{RootCost: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	root, _ := rt.CreateContext("Root")
	r1, _ := rt.CreateContext("Room", root)
	r2, _ := rt.CreateContext("Room", root)

	start := time.Now()
	var wg sync.WaitGroup
	for _, room := range []ownership.ID{r1, r2, r1, r2} {
		wg.Add(1)
		go func(id ownership.ID) {
			defer wg.Done()
			if _, err := rt.Submit(id, "inc"); err != nil {
				t.Error(err)
			}
		}(room)
	}
	wg.Wait()
	// Root work is serialized on the root's server (2 cores, but the root
	// lock is held during the Work), so 4 events ≥ ~80ms.
	if el := time.Since(start); el < 75*time.Millisecond {
		t.Fatalf("4 events took %v; want ≥80ms (root bottleneck)", el)
	}
}

func TestPipelineParallelismBelowRoot(t *testing.T) {
	// With zero root cost, events to different rooms overlap their room
	// work (the pipeline property): 4×20ms across 2 rooms ≈ 40ms, not 80.
	s := schema.New()
	s.MustDeclareClass("Root", nil)
	room := s.MustDeclareClass("Room", nil)
	room.MustDeclareMethod("slow", func(call schema.Call, args []any) (any, error) {
		time.Sleep(20 * time.Millisecond)
		return nil, nil
	})
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(transport.NullNetwork{})
	cl.AddServer(cluster.M3Large)
	cl.AddServer(cluster.M3Large)
	rt, _ := New(s, cl, Config{})
	defer rt.Close()
	root, _ := rt.CreateContext("Root")
	r1, _ := rt.CreateContext("Room", root)
	r2, _ := rt.CreateContext("Room", root)

	start := time.Now()
	var wg sync.WaitGroup
	for i, room := range []ownership.ID{r1, r2, r1, r2} {
		wg.Add(1)
		go func(id ownership.ID, i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * time.Millisecond) // stagger arrival
			if _, err := rt.Submit(id, "slow"); err != nil {
				t.Error(err)
			}
		}(room, i)
	}
	wg.Wait()
	if el := time.Since(start); el > 70*time.Millisecond {
		t.Fatalf("pipeline took %v; want ≈40ms (parallel rooms)", el)
	}
}

func TestAsyncChildren(t *testing.T) {
	w := newWorld(t, 1, 1, 4)
	if _, err := w.rt.Submit(w.rooms[0], "addAll", 7); err != nil {
		t.Fatal(err)
	}
	for _, it := range w.items[w.rooms[0]] {
		st, _ := w.rt.State(it)
		if st.(*counter).N != 7 {
			t.Fatalf("item = %d; want 7", st.(*counter).N)
		}
	}
}

func TestMigrationStopsTheWorldAndPreservesState(t *testing.T) {
	w := newWorld(t, 2, 2, 0)
	room := w.rooms[0]
	if _, err := w.rt.Submit(room, "inc"); err != nil {
		t.Fatal(err)
	}
	from, _ := w.rt.Location(room)
	var to cluster.ServerID
	for _, s := range w.rt.Cluster().Servers() {
		if s.ID() != from {
			to = s.ID()
		}
	}
	if err := w.rt.Migrate(room, to); err != nil {
		t.Fatal(err)
	}
	if got, _ := w.rt.Location(room); got != to {
		t.Fatalf("location = %v; want %v", got, to)
	}
	res, err := w.rt.Submit(room, "inc")
	if err != nil {
		t.Fatal(err)
	}
	if res.(int) != 2 {
		t.Fatalf("count = %v; want 2", res)
	}
}

func TestDirectOwnershipEnforced(t *testing.T) {
	w := newWorld(t, 1, 2, 1)
	other := w.items[w.rooms[1]][0]
	_, err := w.rt.Submit(w.rooms[0], "transfer", other, w.items[w.rooms[0]][0], 1)
	if !errors.Is(err, ErrNotOwned) {
		t.Fatalf("err = %v; want ErrNotOwned", err)
	}
}

func TestSubmitClosed(t *testing.T) {
	w := newWorld(t, 1, 1, 0)
	w.rt.Close()
	if _, err := w.rt.Submit(w.rooms[0], "inc"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v; want ErrClosed", err)
	}
}

func TestUnknownTargets(t *testing.T) {
	w := newWorld(t, 1, 1, 0)
	if _, err := w.rt.Submit(ownership.ID(999), "inc"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("err = %v; want ErrUnknown", err)
	}
	if _, err := w.rt.Submit(w.rooms[0], "ghost"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("err = %v; want ErrUnknown", err)
	}
}
