package ops

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Admin serves the observability plane over HTTP:
//
//	/healthz        liveness + per-subsystem readiness (JSON; 503 when degraded)
//	/metrics        Prometheus text exposition, merged on read
//	/events         NDJSON event feed; ?follow=1 streams, default dumps buffer
//	/debug/pprof/*  the standard profiles
type Admin struct {
	reg *Registry
	srv *http.Server
	ln  net.Listener
}

// ServeAdmin binds addr (host:port; :0 picks a free port) and serves the
// admin API for reg in a background goroutine.
func ServeAdmin(addr string, reg *Registry) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &Admin{reg: reg, ln: ln}
	a.srv = &http.Server{Handler: Handler(reg)}
	go a.srv.Serve(ln)
	return a, nil
}

// Addr returns the bound listen address.
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close stops the server, interrupting in-flight streams.
func (a *Admin) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	err := a.srv.Shutdown(ctx)
	if err != nil {
		return a.srv.Close()
	}
	return nil
}

// Handler builds the admin HTTP mux for a registry. Exposed separately so
// tests can drive it through httptest without a listener.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		ok, subs := reg.Health()
		w.Header().Set("Content-Type", "application/json")
		status := "ok"
		if !ok {
			status = "degraded"
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(map[string]any{
			"status":     status,
			"uptime_s":   int64(reg.Uptime().Seconds()),
			"subsystems": subs,
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(reg, w, r)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveEvents writes the event feed as NDJSON. Without ?follow=1 it dumps
// the currently buffered events (from ?from=SEQ, default 0) and closes;
// with follow it keeps streaming until the client goes away. A lapped
// consumer first receives a synthetic ops.dropped line — the ring sheds,
// it never blocks emitters on a slow reader.
func serveEvents(reg *Registry, w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	follow := r.URL.Query().Get("follow") == "1"
	from := uint64(0)
	if s := r.URL.Query().Get("from"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad from", http.StatusBadRequest)
			return
		}
		from = v
	}
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		events, dropped, next, wait := reg.EventsSince(from)
		if dropped > 0 {
			enc.Encode(map[string]any{"type": "ops.dropped", "dropped": dropped, "resume": next - uint64(len(events))})
		}
		for i := range events {
			if enc.Encode(events[i]) != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		from = next
		if !follow {
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}
