// Package ops is the per-node observability plane: a process-wide metric
// registry exported in Prometheus text format, per-subsystem readiness
// checks, a bounded structural-event ring with trace spans, and an admin
// HTTP server (/healthz, /metrics, /events, /debug/pprof/*).
//
// The registry is pull-based: subsystems register closures over the striped
// primitives they already maintain (metrics.StripedHistogram,
// StripedCounter, plain atomics), and merge-on-read happens only when a
// scraper asks. Nothing here adds work — or locks — to the hot path.
package ops

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// HistogramSource is the read-side surface the exporter needs from a
// histogram. Both metrics.Histogram and metrics.StripedHistogram satisfy it.
type HistogramSource interface {
	Count() uint64
	Sum() time.Duration
	Quantile(q float64) time.Duration
}

// Labels are rendered sorted by key into the Prometheus exposition.
type Labels map[string]string

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindSummary
)

type metricEntry struct {
	name    string
	help    string
	labels  Labels
	kind    metricKind
	counter func() uint64
	gauge   func() float64
	hist    HistogramSource
}

type readiness struct {
	name  string
	check func() error
}

// Registry holds one process's registered metrics, readiness checks, and
// event ring. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	metrics []metricEntry
	checks  []readiness
	ring    *ring
	start   time.Time
}

// NewRegistry creates a registry with an event ring of the given capacity
// (<=0 selects the default, 4096 events).
func NewRegistry(ringCap int) *Registry {
	if ringCap <= 0 {
		ringCap = 4096
	}
	return &Registry{ring: newRing(ringCap), start: time.Now()}
}

// Counter registers a monotonically increasing metric read through fn.
func (r *Registry) Counter(name, help string, labels Labels, fn func() uint64) {
	r.add(metricEntry{name: name, help: help, labels: labels, kind: kindCounter, counter: fn})
}

// Gauge registers an instantaneous-value metric read through fn.
func (r *Registry) Gauge(name, help string, labels Labels, fn func() float64) {
	r.add(metricEntry{name: name, help: help, labels: labels, kind: kindGauge, gauge: fn})
}

// Histogram registers a latency distribution, exported as a Prometheus
// summary (quantiles 0.5/0.99/0.999 plus _sum and _count) in seconds.
func (r *Registry) Histogram(name, help string, labels Labels, h HistogramSource) {
	r.add(metricEntry{name: name, help: help, labels: labels, kind: kindSummary, hist: h})
}

func (r *Registry) add(e metricEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, e)
}

// Summary reads a registered histogram back out of the registry: count,
// median, and p99. SLO assertions (the chaos harness's p99 ceiling) read
// the node-side latency distributions through this instead of scraping
// and re-parsing the Prometheus exposition.
func (r *Registry) Summary(name string) (count uint64, p50, p99 time.Duration, ok bool) {
	r.mu.RLock()
	var h HistogramSource
	for _, e := range r.metrics {
		if e.kind == kindSummary && e.name == name {
			h = e.hist
			break
		}
	}
	r.mu.RUnlock()
	if h == nil {
		return 0, 0, 0, false
	}
	return h.Count(), h.Quantile(0.5), h.Quantile(0.99), true
}

// Readiness registers a named per-subsystem readiness check; a nil error
// means ready. Checks run on every /healthz request.
func (r *Registry) Readiness(name string, check func() error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checks = append(r.checks, readiness{name: name, check: check})
}

// Health runs every readiness check and reports per-subsystem status. ok is
// true only when every check passes.
func (r *Registry) Health() (ok bool, subsystems map[string]string) {
	r.mu.RLock()
	checks := make([]readiness, len(r.checks))
	copy(checks, r.checks)
	r.mu.RUnlock()
	ok = true
	subsystems = make(map[string]string, len(checks))
	for _, c := range checks {
		if err := c.check(); err != nil {
			ok = false
			subsystems[c.name] = err.Error()
		} else {
			subsystems[c.name] = "ok"
		}
	}
	return ok, subsystems
}

// summaryQuantiles are the quantiles exported per summary metric.
var summaryQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50},
	{"0.99", 0.99},
	{"0.999", 0.999},
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by metric name so output is
// stable. Striped primitives are merged at this point — merge-on-read.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	entries := make([]metricEntry, len(r.metrics))
	copy(entries, r.metrics)
	r.mu.RUnlock()

	sort.SliceStable(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	var b strings.Builder
	lastName := ""
	for _, e := range entries {
		if e.name != lastName {
			// HELP/TYPE once per family even when several label sets share it.
			fmt.Fprintf(&b, "# HELP %s %s\n", e.name, escapeHelp(e.help))
			fmt.Fprintf(&b, "# TYPE %s %s\n", e.name, typeString(e.kind))
			lastName = e.name
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", e.name, renderLabels(e.labels, "", ""), e.counter())
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %s\n", e.name, renderLabels(e.labels, "", ""), formatFloat(e.gauge()))
		case kindSummary:
			for _, sq := range summaryQuantiles {
				fmt.Fprintf(&b, "%s%s %s\n", e.name, renderLabels(e.labels, "quantile", sq.label),
					formatFloat(e.hist.Quantile(sq.q).Seconds()))
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", e.name, renderLabels(e.labels, "", ""), formatFloat(e.hist.Sum().Seconds()))
			fmt.Fprintf(&b, "%s_count%s %d\n", e.name, renderLabels(e.labels, "", ""), e.hist.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func typeString(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// renderLabels renders a sorted {k="v",...} block, folding in one extra
// label (used for quantile) when extraKey is nonempty.
func renderLabels(labels Labels, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels)+1)
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	return strings.ReplaceAll(s, "\n", "\\n")
}

// formatFloat renders a float the way Prometheus expects (no exponent for
// typical magnitudes, full precision otherwise).
func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}

// Uptime reports how long ago the registry was created.
func (r *Registry) Uptime() time.Duration { return time.Since(r.start) }
