package ops

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// Event is one structural occurrence (migration start/commit, fence advance,
// backpressure onset, route repair, trace span). Fields are small and
// flat — the ring holds them by value.
type Event struct {
	Seq    uint64         `json:"seq"`
	Time   time.Time      `json:"ts"`
	Type   string         `json:"type"`
	Fields map[string]any `json:"fields,omitempty"`
}

// ring is a bounded event buffer. Emitters never block: when the ring wraps,
// the oldest events are overwritten and slow consumers observe a dropped
// count the next time they read — shedding, not backpressure.
type ring struct {
	mu     sync.Mutex
	buf    []Event
	next   uint64        // seq to assign to the next event
	notify chan struct{} // closed and replaced on every emit
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]Event, capacity), notify: make(chan struct{})}
}

// Emit appends one structural event to the ring. Cheap and non-blocking
// (one short critical section, no I/O); safe from any goroutine.
func (r *Registry) Emit(typ string, fields map[string]any) {
	rg := r.ring
	rg.mu.Lock()
	rg.buf[rg.next%uint64(len(rg.buf))] = Event{Seq: rg.next, Time: time.Now(), Type: typ, Fields: fields}
	rg.next++
	close(rg.notify)
	rg.notify = make(chan struct{})
	rg.mu.Unlock()
}

// EventsSince copies out every buffered event with seq >= from. When the
// ring has lapped the caller, dropped reports how many events were shed and
// the copy starts at the oldest retained event. next is the cursor to pass
// on the following call; wait is closed on the next emit (poll-free follow).
func (r *Registry) EventsSince(from uint64) (events []Event, dropped uint64, next uint64, wait <-chan struct{}) {
	rg := r.ring
	rg.mu.Lock()
	defer rg.mu.Unlock()
	capacity := uint64(len(rg.buf))
	oldest := uint64(0)
	if rg.next > capacity {
		oldest = rg.next - capacity
	}
	if from < oldest {
		dropped = oldest - from
		from = oldest
	}
	if from < rg.next {
		events = make([]Event, 0, rg.next-from)
		for s := from; s < rg.next; s++ {
			events = append(events, rg.buf[s%capacity])
		}
	}
	return events, dropped, rg.next, rg.notify
}

// EventSeq returns the sequence number the next emitted event will get.
func (r *Registry) EventSeq() uint64 {
	r.ring.mu.Lock()
	defer r.ring.mu.Unlock()
	return r.ring.next
}

// NDJSON renders one event as a single JSON line (no trailing newline).
func (e Event) NDJSON() ([]byte, error) { return json.Marshal(e) }

// TraceHex renders an 8-byte trace ID the way span events and logs show it.
func TraceHex(trace uint64) string { return fmt.Sprintf("%016x", trace) }

// Span emits one per-hop trace span record into the event feed. action says
// what the node did with the traced frame ("execute", "forward",
// "batch-execute", "batch-forward"); hop is the frame's hop count when the
// node saw it, so a client → node A → node B submit yields hop 0 and hop 1
// spans under one trace.
func (r *Registry) Span(trace uint64, node int64, action string, target uint64, method string, hop int, d time.Duration) {
	r.Emit("trace.span", map[string]any{
		"trace":  TraceHex(trace),
		"node":   node,
		"action": action,
		"target": target,
		"method": method,
		"hop":    hop,
		"us":     d.Microseconds(),
	})
}
