package ops

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"aeon/internal/metrics"
)

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry(16)
	var c uint64 = 42
	reg.Counter("aeon_test_total", "A test counter.", nil, func() uint64 { return c })
	reg.Gauge("aeon_test_depth", "A test gauge.", Labels{"pool": "a"}, func() float64 { return 1.5 })
	var h metrics.Histogram
	for i := 0; i < 100; i++ {
		h.Record(time.Millisecond)
	}
	reg.Histogram("aeon_test_seconds", "A test summary.", nil, &h)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP aeon_test_total A test counter.",
		"# TYPE aeon_test_total counter",
		"aeon_test_total 42",
		"# TYPE aeon_test_depth gauge",
		`aeon_test_depth{pool="a"} 1.5`,
		"# TYPE aeon_test_seconds summary",
		`aeon_test_seconds{quantile="0.5"}`,
		`aeon_test_seconds{quantile="0.99"}`,
		`aeon_test_seconds{quantile="0.999"}`,
		"aeon_test_seconds_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Histogram values are exported in seconds: 100 × 1ms ≈ 0.1s total.
	var sum float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "aeon_test_seconds_sum ") {
			fmt.Sscanf(line, "aeon_test_seconds_sum %g", &sum)
		}
	}
	if sum < 0.05 || sum > 0.2 {
		t.Fatalf("summary _sum = %v; want ~0.1 seconds", sum)
	}

	// Every non-comment line must be "name{labels} value" parseable, and the
	// output must be stable across renders (sorted, no map-order flapping).
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if sp := strings.LastIndexByte(line, ' '); sp <= 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
	}
	var b2 strings.Builder
	reg.WritePrometheus(&b2)
	if b2.String() != out {
		t.Fatalf("exposition is not deterministic across renders")
	}
}

func TestRegistryHealth(t *testing.T) {
	reg := NewRegistry(16)
	degraded := false
	reg.Readiness("store", func() error {
		if degraded {
			return errors.New("quorum lost")
		}
		return nil
	})
	if ok, subs := reg.Health(); !ok || subs["store"] != "ok" {
		t.Fatalf("health = %v %v; want healthy", ok, subs)
	}
	degraded = true
	if ok, subs := reg.Health(); ok || !strings.Contains(subs["store"], "quorum lost") {
		t.Fatalf("health = %v %v; want degraded with cause", ok, subs)
	}
}

func TestEventRingShedsWhenLapped(t *testing.T) {
	reg := NewRegistry(8)
	for i := 0; i < 20; i++ {
		reg.Emit("tick", map[string]any{"i": i})
	}
	events, dropped, next, _ := reg.EventsSince(0)
	if dropped != 12 {
		t.Fatalf("dropped = %d; want 12 (20 emitted into a ring of 8)", dropped)
	}
	if len(events) != 8 {
		t.Fatalf("got %d events; want the 8 retained", len(events))
	}
	if events[0].Seq != 12 || events[len(events)-1].Seq != 19 {
		t.Fatalf("retained window = [%d, %d]; want [12, 19]", events[0].Seq, events[len(events)-1].Seq)
	}
	if next != 20 {
		t.Fatalf("next = %d; want 20", next)
	}
	// A current cursor sees no drops and no events.
	events, dropped, _, _ = reg.EventsSince(next)
	if dropped != 0 || len(events) != 0 {
		t.Fatalf("current cursor saw %d events, %d dropped; want none", len(events), dropped)
	}
}

func TestEventNotifyWakesFollower(t *testing.T) {
	reg := NewRegistry(8)
	_, _, next, wait := reg.EventsSince(0)
	done := make(chan Event, 1)
	go func() {
		<-wait
		events, _, _, _ := reg.EventsSince(next)
		done <- events[0]
	}()
	reg.Emit("poke", nil)
	select {
	case ev := <-done:
		if ev.Type != "poke" {
			t.Fatalf("woke with %q; want poke", ev.Type)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("follower never woken by emit")
	}
}

func TestEmitConcurrent(t *testing.T) {
	reg := NewRegistry(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				reg.Emit("tick", nil)
			}
		}()
	}
	wg.Wait()
	if n := reg.EventSeq(); n != 1600 {
		t.Fatalf("EventSeq = %d; want 1600", n)
	}
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry(16)
	reg.Counter("aeon_admin_test_total", "Requests.", nil, func() uint64 { return 7 })
	healthy := true
	reg.Readiness("sub", func() error {
		if !healthy {
			return errors.New("wedged")
		}
		return nil
	})
	reg.Emit("hello", map[string]any{"n": 1})
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			b.WriteString(sc.Text())
			b.WriteByte('\n')
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), b.String()
	}

	code, ctype, body := get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if !strings.Contains(ctype, "application/json") {
		t.Fatalf("/healthz content-type = %q", ctype)
	}

	code, ctype, body = get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "aeon_admin_test_total 7") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("/metrics content-type = %q", ctype)
	}

	code, ctype, body = get("/events")
	if code != http.StatusOK {
		t.Fatalf("/events = %d", code)
	}
	if !strings.Contains(ctype, "application/x-ndjson") {
		t.Fatalf("/events content-type = %q", ctype)
	}
	var ev Event
	if err := json.Unmarshal([]byte(strings.SplitN(body, "\n", 2)[0]), &ev); err != nil {
		t.Fatalf("/events line not JSON: %v\n%s", err, body)
	}
	if ev.Type != "hello" {
		t.Fatalf("/events first line = %+v; want hello", ev)
	}

	// Degrade a subsystem: liveness flips to 503 and names the cause.
	healthy = false
	code, _, body = get("/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "wedged") {
		t.Fatalf("degraded /healthz = %d %q; want 503 with cause", code, body)
	}
}

func TestAdminEventsLappedCursor(t *testing.T) {
	reg := NewRegistry(4)
	for i := 0; i < 10; i++ {
		reg.Emit("tick", nil)
	}
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/events?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no first line")
	}
	var shed struct {
		Type    string `json:"type"`
		Dropped uint64 `json:"dropped"`
	}
	if err := json.Unmarshal(sc.Bytes(), &shed); err != nil {
		t.Fatal(err)
	}
	if shed.Type != "ops.dropped" || shed.Dropped != 6 {
		t.Fatalf("lapped cursor first line = %+v; want ops.dropped with 6", shed)
	}
	lines := 0
	for sc.Scan() {
		lines++
	}
	if lines != 4 {
		t.Fatalf("lapped dump carried %d events; want the 4 retained", lines)
	}
}

func TestSpanEvent(t *testing.T) {
	reg := NewRegistry(8)
	reg.Span(0xdeadbeef, 3, "forward", 17, "deposit", 1, 250*time.Microsecond)
	events, _, _, _ := reg.EventsSince(0)
	if len(events) != 1 || events[0].Type != "trace.span" {
		t.Fatalf("events = %+v", events)
	}
	f := events[0].Fields
	if f["trace"] != TraceHex(0xdeadbeef) || f["action"] != "forward" || f["hop"] != 1 {
		t.Fatalf("span fields = %+v", f)
	}
	if TraceHex(0xdeadbeef) != "00000000deadbeef" {
		t.Fatalf("TraceHex = %q", TraceHex(0xdeadbeef))
	}
}
