package workload

// The social/chat fan-out scenario: shared subtrees and heavy virtual-join
// traffic, plus deep single-parent chains for migration churn.
//
// Users are grouped into pods of podSize users hosted on one server. Every
// pod member owns every pod timeline, so each timeline has podSize parents
// and every post or timeline read resolves at the pod's minted virtual-join
// dominator. Pods are disjoint share components, which is what makes the
// virtual joins stable and identical across processes: the pod's virtual
// owns all pod users, so it is an ancestor of any pod member and never
// leaks into another dominator query's share set — no cascading mints, and
// every replica derives the same (maxima → placement) mapping even though
// virtual IDs themselves are process-local.
//
// Each user additionally owns a Desk: the root of a deep single-parent
// chain of Draft contexts. Desks are the migration-safe group roots (their
// groups never share members and resolve events at the desk itself), so
// chaos migration churn moves desk chains between servers while posts and
// timeline reads keep hammering the pod virtual joins.

import (
	"fmt"
	"math/rand"

	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/ownership"
	"aeon/internal/schema"
)

// SocialTimeline accumulates delivered posts; exported and wire-registered
// for migration state transfer and checkpoints.
type SocialTimeline struct {
	Posts int
	Chars int
}

// SocialUser holds the precomputed fan-out list: the pod's timelines as raw
// context IDs (gob moves them without custom codecs).
type SocialUser struct {
	Feed []uint64
}

// SocialDesk counts scribbles at the root of a deep draft chain.
type SocialDesk struct {
	Scribbles int
}

// SocialDraft is one link of a desk's chain; its body is dead weight that
// migrations and checkpoints must carry.
type SocialDraft struct {
	Body string
}

func init() {
	schema.RegisterWireType(&SocialTimeline{})
	schema.RegisterWireType(&SocialUser{})
	schema.RegisterWireType(&SocialDesk{})
	schema.RegisterWireType(&SocialDraft{})
	RegisterScenario("social", func(servers int) Scenario { return NewSocial(servers, 0, 0) })
}

// Social is the chat fan-out scenario instance.
type Social struct {
	servers int
	podSize int // users (and timelines) per pod; one pod per server here
	depth   int // drafts chained under each desk

	users     []ownership.ID // flattened, server-major
	timelines []ownership.ID // timelines[u] is users[u]'s timeline
	desks     []ownership.ID // desks[u] is users[u]'s desk-chain root
}

// NewSocial sizes the scenario: podSize users per server forming one pod
// (default 4), each desk chaining depth drafts (default 6).
func NewSocial(servers, podSize, depth int) *Social {
	if podSize <= 0 {
		podSize = 4
	}
	if depth <= 0 {
		depth = 6
	}
	return &Social{servers: servers, podSize: podSize, depth: depth}
}

func (w *Social) Name() string { return "social" }

// pod returns the user indices of u's pod (the users sharing u's server).
func (w *Social) pod(u int) []int {
	base := (u / w.podSize) * w.podSize
	members := make([]int, w.podSize)
	for i := range members {
		members[i] = base + i
	}
	return members
}

// Schema declares User, Timeline, Desk, and Draft. User.post is the
// fan-out write; Timeline reads are the virtual-join-heavy path (every
// timeline has podSize parents); Desk.scribble is the op that rides along
// with migration churn; User.join is the inert churn op.
func (w *Social) Schema() *schema.Schema {
	s := schema.New()
	tl := s.MustDeclareClass("Timeline", func() any { return &SocialTimeline{} })
	tl.MustDeclareMethod("push", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*SocialTimeline)
		st.Posts++
		st.Chars += len(args[0].(string))
		return st.Posts, nil
	})
	tl.MustDeclareMethod("count", func(call schema.Call, args []any) (any, error) {
		return call.State().(*SocialTimeline).Posts, nil
	}, schema.RO())
	tl.MustDeclareMethod("read", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*SocialTimeline)
		return fmt.Sprintf("%d/%d", st.Posts, st.Chars), nil
	}, schema.RO())

	user := s.MustDeclareClass("User", func() any { return &SocialUser{} })
	user.MustDeclareMethod("post", func(call schema.Call, args []any) (any, error) {
		msg := args[0].(string)
		st := call.State().(*SocialUser)
		for _, tid := range st.Feed {
			if _, err := call.Sync(ownership.ID(tid), "push", msg); err != nil {
				return nil, err
			}
		}
		return len(st.Feed), nil
	}, schema.MayCall("Timeline", "push"))
	user.MustDeclareMethod("join", func(call schema.Call, args []any) (any, error) {
		return call.NewContext("Timeline", call.Self())
	})

	desk := s.MustDeclareClass("Desk", func() any { return &SocialDesk{} })
	desk.MustDeclareMethod("scribble", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*SocialDesk)
		st.Scribbles++
		return st.Scribbles, nil
	})
	desk.MustDeclareMethod("count", func(call schema.Call, args []any) (any, error) {
		return call.State().(*SocialDesk).Scribbles, nil
	}, schema.RO())

	s.MustDeclareClass("Draft", func() any { return &SocialDraft{} })
	return s
}

// Build creates users, timelines, and desk chains server-major, then wires
// the pods: every pod member gains an ownership edge to every other pod
// timeline, and a Feed listing the whole pod. Order is fixed, so every
// replica derives identical IDs and edges.
func (w *Social) Build(rt *core.Runtime) error {
	w.users = w.users[:0]
	w.timelines = w.timelines[:0]
	w.desks = w.desks[:0]
	servers := rt.Cluster().Servers()
	for _, srv := range servers {
		for i := 0; i < w.podSize; i++ {
			u, err := rt.CreateContextOn(srv.ID(), "User")
			if err != nil {
				return fmt.Errorf("social user %d on %v: %w", i, srv.ID(), err)
			}
			t, err := rt.CreateContextOn(srv.ID(), "Timeline", u)
			if err != nil {
				return fmt.Errorf("social timeline %d on %v: %w", i, srv.ID(), err)
			}
			d, err := rt.CreateContextOn(srv.ID(), "Desk")
			if err != nil {
				return fmt.Errorf("social desk %d on %v: %w", i, srv.ID(), err)
			}
			parent := d
			for k := 0; k < w.depth; k++ {
				c, err := rt.CreateContextOn(srv.ID(), "Draft", parent)
				if err != nil {
					return fmt.Errorf("social draft %d/%d on %v: %w", i, k, srv.ID(), err)
				}
				cc, err := rt.Context(c)
				if err != nil {
					return err
				}
				cc.SetState(&SocialDraft{Body: fmt.Sprintf("draft-%d-%d", i, k)})
				parent = c
			}
			w.users = append(w.users, u)
			w.timelines = append(w.timelines, t)
			w.desks = append(w.desks, d)
		}
	}
	for u := range w.users {
		var feed []uint64
		for _, m := range w.pod(u) {
			if m != u {
				if err := rt.AddOwnerEdge(w.users[u], w.timelines[m]); err != nil {
					return fmt.Errorf("social edge %d->%d: %w", u, m, err)
				}
			}
			feed = append(feed, uint64(w.timelines[m]))
		}
		c, err := rt.Context(w.users[u])
		if err != nil {
			return err
		}
		c.SetState(&SocialUser{Feed: feed})
	}
	return nil
}

// Script posts once from every user (each fanning out to the whole pod),
// scribbles once on every desk, then reads every timeline back — the reads
// crossing the multi-parent virtual-join path.
func (w *Social) Script(submit Submit) []string {
	var out []string
	rec := recorder(&out)
	for u, user := range w.users {
		rec(submit(user, "post", fmt.Sprintf("hello-%d", u)))
	}
	for _, d := range w.desks {
		rec(submit(d, "scribble"))
	}
	for _, t := range w.timelines {
		rec(submit(t, "read"))
	}
	return out
}

// Roots are the desks: single-parent chains whose groups never share
// members, so migration churn can move them freely. Pods are deliberately
// not migration roots — their timelines sequence at a virtual join that a
// group move would leave behind.
func (w *Social) Roots() []ownership.ID { return w.desks }

// Entities: timelines first (index = user index), then desks.
func (w *Social) Entities() int { return len(w.timelines) + len(w.desks) }

func (w *Social) EntityServer(e int) cluster.ServerID {
	if e >= len(w.timelines) {
		e -= len(w.timelines)
	}
	return cluster.ServerID(e/w.podSize + 1)
}

func (w *Social) RootServer(root int) cluster.ServerID {
	return cluster.ServerID(root/w.podSize + 1)
}

// RootEntity maps desk root r to its desk entity.
func (w *Social) RootEntity(root int) int { return len(w.timelines) + root }

// SoakOp posts (3 in 5) — one post lands Delta 1 on every timeline in the
// author's pod — scribbles a desk (1 in 5), or reads a random timeline
// through its virtual dominator (1 in 5).
func (w *Social) SoakOp(rng *rand.Rand) SoakOp {
	switch rng.Intn(5) {
	case 0:
		return SoakOp{Target: w.timelines[rng.Intn(len(w.timelines))], Method: "count"}
	case 1:
		d := rng.Intn(len(w.desks))
		return SoakOp{Target: w.desks[d], Method: "scribble",
			Effects: []Effect{{Entity: len(w.timelines) + d, Delta: 1}}}
	default:
		u := rng.Intn(len(w.users))
		effects := make([]Effect, 0, w.podSize)
		for _, m := range w.pod(u) {
			effects = append(effects, Effect{Entity: m, Delta: 1})
		}
		msg := fmt.Sprintf("m%d", rng.Intn(1000))
		return SoakOp{Target: w.users[u], Method: "post", Args: []any{msg}, Effects: effects}
	}
}

// ReadEntity reads a timeline's delivered-post count or a desk's scribble
// count — the monotone counters the chaos harness model-checks.
func (w *Social) ReadEntity(submit Submit, e int) (uint64, error) {
	target := ownership.ID(0)
	if e < len(w.timelines) {
		target = w.timelines[e]
	} else {
		target = w.desks[e-len(w.timelines)]
	}
	v, err := submit(target, "count")
	if err != nil {
		return 0, err
	}
	return uint64(v.(int)), nil
}

// ChurnOp creates a fresh timeline under the first user: replicated
// structural churn that no feed references and no read observes.
func (w *Social) ChurnOp() (ownership.ID, string, []any) {
	return w.users[0], "join", nil
}
