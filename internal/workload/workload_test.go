package workload

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

func TestClosedLoopRuns(t *testing.T) {
	var n atomic.Uint64
	op := func(rng *rand.Rand) error {
		n.Add(1)
		time.Sleep(time.Millisecond)
		return nil
	}
	res := RunClosedLoop(op, 4, 0, 100*time.Millisecond, 1)
	if res.Ops == 0 || res.Ops != n.Load() {
		t.Fatalf("ops = %d (counter %d)", res.Ops, n.Load())
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %v", res.Throughput)
	}
	if res.Latency.Count != res.Ops {
		t.Fatalf("latency count = %d; want %d", res.Latency.Count, res.Ops)
	}
	// 4 clients at ~1ms/op for 100ms ≈ 400 ops, give wide slack.
	if res.Ops < 100 || res.Ops > 800 {
		t.Fatalf("ops = %d; implausible for 4 closed-loop clients", res.Ops)
	}
}

func TestClosedLoopCountsErrors(t *testing.T) {
	op := func(rng *rand.Rand) error { return errors.New("boom") }
	res := RunClosedLoop(op, 2, time.Millisecond, 50*time.Millisecond, 1)
	if res.Errors == 0 || res.Ops != 0 {
		t.Fatalf("ops=%d errors=%d", res.Ops, res.Errors)
	}
}

func TestClosedLoopThinkTime(t *testing.T) {
	var n atomic.Uint64
	op := func(rng *rand.Rand) error { n.Add(1); return nil }
	RunClosedLoop(op, 1, 10*time.Millisecond, 100*time.Millisecond, 1)
	// ~10 ops with 10ms think; allow slack.
	if v := n.Load(); v > 30 {
		t.Fatalf("ops = %d; think time not honored", v)
	}
}

func TestRampShape(t *testing.T) {
	r := Ramp{Machines: 8, PeakPerMachine: 16, Duration: 600 * time.Second}
	if n := r.ActiveAt(300 * time.Second); n != 128 {
		t.Fatalf("peak = %d; want 128", n)
	}
	if n := r.ActiveAt(0); n < 8 || n > 20 {
		t.Fatalf("start = %d; want near the 8-client floor", n)
	}
	if n := r.ActiveAt(600 * time.Second); n < 8 || n > 20 {
		t.Fatalf("end = %d; want near the 8-client floor", n)
	}
	if r.ActiveAt(-time.Second) != 0 || r.ActiveAt(601*time.Second) != 0 {
		t.Fatal("outside the window should be 0")
	}
	// Monotone rise to the midpoint.
	prev := 0
	for s := 0; s <= 300; s += 30 {
		n := r.ActiveAt(time.Duration(s) * time.Second)
		if n < prev {
			t.Fatalf("ramp not monotone rising at %ds: %d < %d", s, n, prev)
		}
		prev = n
	}
}

func TestRunRamp(t *testing.T) {
	op := func(rng *rand.Rand) error {
		time.Sleep(time.Millisecond)
		return nil
	}
	res := RunRamp(op, Ramp{Machines: 2, PeakPerMachine: 4, Duration: 300 * time.Millisecond},
		50*time.Millisecond, 1)
	if res.Ops == 0 {
		t.Fatal("no ops completed")
	}
	clientPts := res.ClientSeries.Points()
	if len(clientPts) < 3 {
		t.Fatalf("client series too short: %d", len(clientPts))
	}
	// Mid-run should have more clients than the edges.
	first := clientPts[0].Mean
	var peak float64
	for _, p := range clientPts {
		if p.Mean > peak {
			peak = p.Mean
		}
	}
	if peak <= first {
		t.Fatalf("peak clients %v not above start %v", peak, first)
	}
	if res.LatencySeries.Points() == nil || res.ThroughputSeries.Points() == nil {
		t.Fatal("missing series")
	}
}
