// Package workload provides the client load generators the benchmark
// harness drives the applications with: a closed-loop generator (N clients,
// each issuing the next operation as soon as the previous one returns) for
// the throughput/latency experiments, and a normally distributed client
// ramp reproducing the elasticity experiment of § 6.2 ("we varied the
// number of clients on each client machine from 1 to 16 according to the
// normal distribution. At its peak time, there were 128 active clients").
package workload

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"aeon/internal/metrics"
)

// Op is one client operation.
type Op func(rng *rand.Rand) error

// Result summarizes a load run.
type Result struct {
	// Ops completed and Errors observed.
	Ops, Errors uint64
	// Elapsed wall-clock time.
	Elapsed time.Duration
	// Throughput in operations per second.
	Throughput float64
	// Latency distribution summary.
	Latency metrics.Snapshot
	// Hist is the full latency histogram.
	Hist *metrics.Histogram
}

// RunClosedLoop drives op with the given number of closed-loop clients for
// the duration and returns the measured result.
func RunClosedLoop(op Op, clients int, think, duration time.Duration, seed int64) Result {
	res, _ := RunClosedLoopSeries(op, clients, think, duration, 0, seed)
	return res
}

// RunClosedLoopSeries is RunClosedLoop that additionally returns an
// ops-per-window time series when window > 0 (used by the migration-impact
// experiment to see the throughput dip).
func RunClosedLoopSeries(op Op, clients int, think, duration, window time.Duration, seed int64) (Result, *metrics.TimeSeries) {
	var (
		hist   metrics.Histogram
		ops    atomic.Uint64
		errs   atomic.Uint64
		stopAt = time.Now().Add(duration)
		wg     sync.WaitGroup
		series *metrics.TimeSeries
	)
	if window > 0 {
		series = metrics.NewTimeSeries(window)
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(stopAt) {
				start := time.Now()
				if err := op(rng); err != nil {
					errs.Add(1)
				} else {
					hist.Record(time.Since(start))
					ops.Add(1)
					if series != nil {
						series.Observe(1)
					}
				}
				if think > 0 {
					time.Sleep(think)
				}
			}
		}(seed + int64(c))
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start) + 0 // clients stop on their own clocks
	res := Result{
		Ops:     ops.Load(),
		Errors:  errs.Load(),
		Elapsed: elapsed,
		Latency: hist.Snapshot(),
		Hist:    &hist,
	}
	if sec := duration.Seconds(); sec > 0 {
		res.Throughput = float64(res.Ops) / sec
	}
	return res, series
}

// Ramp describes a normally distributed active-client schedule.
type Ramp struct {
	// Machines is the number of client machines (8 in the paper).
	Machines int
	// PeakPerMachine is the per-machine client peak (16 in the paper).
	PeakPerMachine int
	// Duration of the whole experiment.
	Duration time.Duration
}

// ActiveAt returns the number of active clients at offset t: a bell curve
// peaking at Machines×PeakPerMachine mid-run, floored at Machines (one
// client per machine).
func (r Ramp) ActiveAt(t time.Duration) int {
	if t < 0 || t > r.Duration {
		return 0
	}
	mid := r.Duration.Seconds() / 2
	sigma := r.Duration.Seconds() / 6
	x := t.Seconds()
	bell := math.Exp(-((x - mid) * (x - mid)) / (2 * sigma * sigma))
	peak := float64(r.Machines * r.PeakPerMachine)
	floor := float64(r.Machines)
	n := floor + (peak-floor)*bell
	return int(n + 0.5)
}

// RampResult is the time-series output of a ramp run.
type RampResult struct {
	// LatencySeries has one point per sampling window with the mean
	// latency of ops completing in that window (seconds → ms).
	LatencySeries *metrics.TimeSeries
	// ClientSeries records the active client count per window.
	ClientSeries *metrics.TimeSeries
	// ThroughputSeries records completed ops per window.
	ThroughputSeries *metrics.TimeSeries
	// Hist is the full latency distribution of the run.
	Hist *metrics.Histogram
	// Ops completed and Errors observed.
	Ops, Errors uint64
}

// RunRamp drives op with a client population following the ramp schedule,
// adjusting the number of active clients every window. Window also sets the
// sampling granularity of the returned series.
func RunRamp(op Op, ramp Ramp, window time.Duration, seed int64) *RampResult {
	res := &RampResult{
		LatencySeries:    metrics.NewTimeSeries(window),
		ClientSeries:     metrics.NewTimeSeries(window),
		ThroughputSeries: metrics.NewTimeSeries(window),
		Hist:             &metrics.Histogram{},
	}
	var (
		ops  atomic.Uint64
		errs atomic.Uint64
		stop = make(chan struct{})
		wg   sync.WaitGroup
	)

	// client goroutine: runs until its quit channel closes.
	client := func(quit <-chan struct{}, seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for {
			select {
			case <-quit:
				return
			case <-stop:
				return
			default:
			}
			start := time.Now()
			if err := op(rng); err != nil {
				errs.Add(1)
			} else {
				d := time.Since(start)
				res.Hist.Record(d)
				res.LatencySeries.Observe(d.Seconds() * 1000) // ms
				res.ThroughputSeries.Observe(1)
				ops.Add(1)
			}
		}
	}

	begin := time.Now()
	var quits []chan struct{}
	nextSeed := seed
	ticker := time.NewTicker(window)
	defer ticker.Stop()

	adjust := func(now time.Time) {
		want := ramp.ActiveAt(now.Sub(begin))
		for len(quits) < want {
			q := make(chan struct{})
			quits = append(quits, q)
			wg.Add(1)
			nextSeed++
			go client(q, nextSeed)
		}
		for len(quits) > want {
			close(quits[len(quits)-1])
			quits = quits[:len(quits)-1]
		}
		res.ClientSeries.ObserveAt(now, float64(want))
	}

	adjust(begin)
	for now := range ticker.C {
		if now.Sub(begin) >= ramp.Duration {
			break
		}
		adjust(now)
	}
	close(stop)
	wg.Wait()
	res.Ops = ops.Load()
	res.Errors = errs.Load()
	return res
}
