package workload

// The IoT/telemetry ingestion scenario: a wide, shallow ownership graph —
// one Region context per server, each owning a row of Sensor contexts —
// with high fan-in aggregation (Region.rollup sweeps every sensor into the
// region's rollup state). This is the shape the context-aware/IoT
// middleware surveys describe (PAPERS.md, arXiv:1905.11365 / 1309.1515):
// many small leaf contexts, writes fanning in to per-region aggregates.
// Soak traffic is ingest-dominated, which the ingress coalescer batches
// into SubmitBatch frames when driven through client futures.

import (
	"fmt"
	"math/rand"

	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/ownership"
	"aeon/internal/schema"
)

// IoTSensor is a leaf telemetry accumulator; exported and wire-registered
// so it can ride migration state transfer and checkpoints.
type IoTSensor struct {
	Count int
	Sum   int
}

// IoTRegion aggregates its sensors' readings on demand.
type IoTRegion struct {
	Rollups int
	Total   int
}

func init() {
	schema.RegisterWireType(&IoTSensor{})
	schema.RegisterWireType(&IoTRegion{})
	RegisterScenario("iot", func(servers int) Scenario { return NewIoT(servers, 0) })
}

// IoT is the telemetry scenario instance. Zero-valued fields take defaults.
type IoT struct {
	servers          int
	sensorsPerRegion int

	regions []ownership.ID
	sensors []ownership.ID // flattened, region-major: entity e = region*S + i
}

// NewIoT sizes the scenario: one region per server, sensorsPerRegion leaf
// sensors each (default 6).
func NewIoT(servers, sensorsPerRegion int) *IoT {
	if sensorsPerRegion <= 0 {
		sensorsPerRegion = 6
	}
	return &IoT{servers: servers, sensorsPerRegion: sensorsPerRegion}
}

func (w *IoT) Name() string { return "iot" }

// Schema declares the two contextclasses. Sensor.ingest is the hot write;
// Region.rollup is the fan-in sweep; Region.provision is the inert churn
// op (a fresh sensor starts at zero, so rollup totals are unperturbed).
func (w *IoT) Schema() *schema.Schema {
	s := schema.New()
	sensor := s.MustDeclareClass("Sensor", func() any { return &IoTSensor{} })
	sensor.MustDeclareMethod("ingest", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*IoTSensor)
		st.Count++
		st.Sum += args[0].(int)
		return st.Sum, nil
	})
	sensor.MustDeclareMethod("total", func(call schema.Call, args []any) (any, error) {
		return call.State().(*IoTSensor).Sum, nil
	}, schema.RO())
	sensor.MustDeclareMethod("read", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*IoTSensor)
		return fmt.Sprintf("%d/%d", st.Count, st.Sum), nil
	}, schema.RO())

	region := s.MustDeclareClass("Region", func() any { return &IoTRegion{} })
	region.MustDeclareMethod("rollup", func(call schema.Call, args []any) (any, error) {
		sensors, err := call.Children("Sensor")
		if err != nil {
			return nil, err
		}
		total := 0
		for _, id := range sensors {
			v, err := call.Sync(id, "total")
			if err != nil {
				return nil, err
			}
			total += v.(int)
		}
		st := call.State().(*IoTRegion)
		st.Rollups++
		st.Total = total
		return total, nil
	}, schema.MayCall("Sensor", "total"))
	region.MustDeclareMethod("stats", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*IoTRegion)
		return fmt.Sprintf("%d/%d", st.Rollups, st.Total), nil
	}, schema.RO())
	region.MustDeclareMethod("provision", func(call schema.Call, args []any) (any, error) {
		return call.NewContext("Sensor", call.Self())
	})
	return s
}

// Build creates one region per server, each owning sensorsPerRegion
// sensors, in fixed server-then-index order.
func (w *IoT) Build(rt *core.Runtime) error {
	w.regions = w.regions[:0]
	w.sensors = w.sensors[:0]
	for _, srv := range rt.Cluster().Servers() {
		region, err := rt.CreateContextOn(srv.ID(), "Region")
		if err != nil {
			return fmt.Errorf("iot region on %v: %w", srv.ID(), err)
		}
		w.regions = append(w.regions, region)
		for i := 0; i < w.sensorsPerRegion; i++ {
			sensor, err := rt.CreateContextOn(srv.ID(), "Sensor", region)
			if err != nil {
				return fmt.Errorf("iot sensor %d on %v: %w", i, srv.ID(), err)
			}
			w.sensors = append(w.sensors, sensor)
		}
	}
	return nil
}

// Script ingests two fixed readings into every sensor, reads each back,
// then rolls up and reads every region — cross-server when driven from one
// node, so transcripts pin the full forwarding path.
func (w *IoT) Script(submit Submit) []string {
	var out []string
	rec := recorder(&out)
	for e, sensor := range w.sensors {
		rec(submit(sensor, "ingest", 10+e))
		rec(submit(sensor, "ingest", 3*e+1))
	}
	for _, sensor := range w.sensors {
		rec(submit(sensor, "read"))
	}
	for _, region := range w.regions {
		rec(submit(region, "rollup"))
		rec(submit(region, "stats"))
	}
	return out
}

// Roots are the regions: single-parent trees, safe for migration churn.
func (w *IoT) Roots() []ownership.ID { return w.regions }
func (w *IoT) Entities() int         { return len(w.sensors) }
func (w *IoT) EntityServer(e int) cluster.ServerID {
	return cluster.ServerID(e/w.sensorsPerRegion + 1)
}
func (w *IoT) RootServer(root int) cluster.ServerID {
	return cluster.ServerID(root + 1)
}
func (w *IoT) RootEntity(root int) int { return root * w.sensorsPerRegion }

// SoakOp is ingest-dominated (7 in 8) with periodic region rollups — the
// fan-in sweep riding alongside the leaf writes.
func (w *IoT) SoakOp(rng *rand.Rand) SoakOp {
	if rng.Intn(8) == 0 {
		r := rng.Intn(len(w.regions))
		return SoakOp{Target: w.regions[r], Method: "rollup"}
	}
	e := rng.Intn(len(w.sensors))
	v := 1 + rng.Intn(100)
	return SoakOp{
		Target:  w.sensors[e],
		Method:  "ingest",
		Args:    []any{v},
		Effects: []Effect{{Entity: e, Delta: uint64(v)}},
	}
}

// ReadEntity reads a sensor's cumulative ingested sum — the monotone
// counter the chaos harness model-checks.
func (w *IoT) ReadEntity(submit Submit, e int) (uint64, error) {
	v, err := submit(w.sensors[e], "total")
	if err != nil {
		return 0, err
	}
	return uint64(v.(int)), nil
}

// ChurnOp provisions a fresh (zero-valued) sensor in the first region: a
// replicated context creation that perturbs no counter.
func (w *IoT) ChurnOp() (ownership.ID, string, []any) {
	return w.regions[0], "provision", nil
}
