package workload

// The scenario contract is what the chaos harness model-checks against, so
// it is pinned directly: oracle transcripts are deterministic and
// error-free, and the SoakOp effect model agrees exactly with the
// authoritative counters after any op sequence.

import (
	"math/rand"
	"testing"
)

func TestScenarioOracleDeterministicAndClean(t *testing.T) {
	for _, name := range []string{"iot", "social"} {
		a, err := Oracle(name, 3)
		if err != nil {
			t.Fatalf("%s oracle: %v", name, err)
		}
		b, err := Oracle(name, 3)
		if err != nil {
			t.Fatalf("%s oracle (2nd): %v", name, err)
		}
		if len(a) == 0 {
			t.Fatalf("%s oracle transcript empty", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s oracle diverges at %d: %q vs %q", name, i, a[i], b[i])
			}
			if len(a[i]) >= 4 && a[i][:4] == "err:" {
				t.Fatalf("%s oracle op %d failed: %s", name, i, a[i])
			}
		}
	}
}

func TestSoakOpEffectModelMatchesAuthoritativeCounters(t *testing.T) {
	for _, name := range []string{"iot", "social"} {
		scen, err := NewScenario(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := NewScenarioRuntime(scen, 3)
		if err != nil {
			t.Fatalf("%s runtime: %v", name, err)
		}
		// Baseline after the deterministic script, then random traffic on
		// top — the chaos harness does exactly this (script, baseline,
		// soak), so the model must hold from a dirty starting state too.
		scen.Script(rt.Submit)
		base := make([]uint64, scen.Entities())
		for e := range base {
			v, err := scen.ReadEntity(rt.Submit, e)
			if err != nil {
				t.Fatalf("%s baseline entity %d: %v", name, e, err)
			}
			base[e] = v
		}
		want := make([]uint64, scen.Entities())
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 400; i++ {
			op := scen.SoakOp(rng)
			if _, err := rt.Submit(op.Target, op.Method, op.Args...); err != nil {
				t.Fatalf("%s soak op %d (%s): %v", name, i, op.Method, err)
			}
			for _, ef := range op.Effects {
				want[ef.Entity] += ef.Delta
			}
		}
		// A churn op must not perturb any counter.
		target, method, args := scen.ChurnOp()
		if _, err := rt.Submit(target, method, args...); err != nil {
			t.Fatalf("%s churn op: %v", name, err)
		}
		for e := range want {
			got, err := scen.ReadEntity(rt.Submit, e)
			if err != nil {
				t.Fatalf("%s read entity %d: %v", name, e, err)
			}
			if got != base[e]+want[e] {
				t.Fatalf("%s entity %d = %d, want %d (base %d + %d modeled)",
					name, e, got, base[e]+want[e], base[e], want[e])
			}
		}
		rt.Close()
	}
}

func TestScenarioTopologyShape(t *testing.T) {
	scen, err := NewScenario("social", 2)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewScenarioRuntime(scen, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	s := scen.(*Social)
	// Every timeline has podSize parents: every member of its pod — the
	// shared-subtree shape that makes posts and timeline reads resolve at
	// the pod's virtual dominator.
	view := rt.Graph().Snapshot()
	for i, tl := range s.timelines {
		owners, err := view.Parents(tl)
		if err != nil {
			t.Fatalf("timeline %d parents: %v", i, err)
		}
		if len(owners) != s.podSize {
			t.Fatalf("timeline %d has %d owners, want %d", i, len(owners), s.podSize)
		}
	}
	// Every desk chains depth drafts: desk → draft → ... → draft.
	cur := s.desks[0]
	for k := 0; k < s.depth; k++ {
		kids, err := view.Children(cur)
		if err != nil || len(kids) != 1 {
			t.Fatalf("desk chain link %d: children %v err %v", k, kids, err)
		}
		cur = kids[0]
	}
	if got := scen.Entities(); got != 2*2*s.podSize {
		t.Fatalf("entities = %d, want %d", got, 2*2*s.podSize)
	}
}
