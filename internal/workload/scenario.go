package workload

// Scenario is the contract between an end-to-end workload and everything
// that hosts or drives one: the node harness builds the same scenario on
// every process (deterministic construction, so IDs and placements agree
// without coordination, exactly like the bank workload), `aeon-node
// -workload` selects one by name, and the chaos/soak harness
// (internal/chaos) drives its traffic against fault schedules while
// model-checking the acked effects.
//
// Determinism rules a Scenario must obey:
//   - Build is called once per process against an identically constructed
//     cluster and must create contexts in a fixed order, so every replica
//     derives identical context IDs. Build must reset any state from a
//     previous Build (the harness reuses one instance across restarts).
//   - Script replays a fixed op sequence whose outcome strings match a
//     single-process run of the same scenario (the oracle) exactly.
//   - SoakOp is pure: it derives the op from the rng and the built
//     topology only, so concurrent soak workers can share the instance.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/ownership"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

// Submit abstracts "submit an event" over node deployments, ingress
// clients, and plain runtimes, so one script drives all of them. It is the
// same shape as node.SubmitFunc.
type Submit func(target ownership.ID, method string, args ...any) (any, error)

// Effect is one modeled state change of a soak op: Delta is added to
// entity Entity's monotone counter when the op is acknowledged.
type Effect struct {
	Entity int
	Delta  uint64
}

// SoakOp is one randomly generated traffic operation together with its
// modeled effects. Every effect entity is a monotone counter (telemetry
// sums, timeline pushes), which is what lets the chaos harness assert "no
// acked-write loss" under faults: after quiescing, each entity's
// authoritative counter must equal the sum of acknowledged deltas, plus at
// most the deltas whose outcome was ambiguous.
type SoakOp struct {
	Target  ownership.ID
	Method  string
	Args    []any
	Effects []Effect
}

// Scenario is a deterministic end-to-end workload.
type Scenario interface {
	// Name is the registry key ("iot", "social", ...).
	Name() string
	// Schema returns a fresh, unfrozen schema declaring the scenario's
	// contextclasses. Callers freeze it before building a runtime.
	Schema() *schema.Schema
	// Build populates rt with the scenario topology, deterministically.
	Build(rt *core.Runtime) error
	// Script replays the deterministic op sequence, recording each outcome
	// as a printable string (errors as "err:<message>").
	Script(submit Submit) []string

	// Roots lists the scenario's migration-safe group roots, in build
	// order: groups the chaos harness may MigrateGroup freely because
	// their members never resolve events at a sequencing point outside
	// the group (no shared subtrees, no minted virtual dominators left
	// behind by a move). Valid after Build.
	Roots() []ownership.ID
	// Entities reports how many monotone counters the scenario models.
	Entities() int
	// EntityServer maps an entity to the server where its events execute
	// at boot placement — the server whose death freezes the entity and
	// whose checkpoint captures its state.
	EntityServer(e int) cluster.ServerID
	// RootServer maps a root index (into Roots) to the server hosting
	// that group at boot, which is where a migration round-trip returns it.
	RootServer(root int) cluster.ServerID
	// RootEntity maps a root index to one entity inside that group, which
	// is how the chaos harness probes a migrated group's liveness.
	RootEntity(root int) int
	// SoakOp derives one random traffic op from rng.
	SoakOp(rng *rand.Rand) SoakOp
	// ReadEntity reads entity e's authoritative counter with a readonly
	// submit.
	ReadEntity(submit Submit, e int) (uint64, error)
	// ChurnOp returns a semantically inert runtime-topology mutation (a
	// context creation that does not perturb any entity counter or script
	// outcome). The chaos harness uses it to push traffic through the
	// replicated mutation log, e.g. to make replication lag observable.
	ChurnOp() (target ownership.ID, method string, args []any)
}

// Oracle builds a fresh single-process runtime hosting the named scenario
// across the given server count, replays the deterministic script on it,
// and returns the transcript. Multi-process drivers diff their transcript
// against it: the node layer must be semantically invisible.
func Oracle(name string, servers int) ([]string, error) {
	scen, err := NewScenario(name, servers)
	if err != nil {
		return nil, err
	}
	rt, err := NewScenarioRuntime(scen, servers)
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	return scen.Script(rt.Submit), nil
}

// NewScenarioRuntime builds a single-process runtime with the scenario's
// schema and topology over a zero-latency simulated cluster of the given
// size — the shared oracle substrate.
func NewScenarioRuntime(scen Scenario, servers int) (*core.Runtime, error) {
	cl := cluster.New(transport.NewSim(transport.SimConfig{}))
	for i := 0; i < servers; i++ {
		cl.AddServer(cluster.M3Large)
	}
	s := scen.Schema()
	if err := s.Freeze(); err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.ChargeClientHops = false
	rt, err := core.New(s, ownership.NewGraph(), cl, cfg)
	if err != nil {
		return nil, err
	}
	if err := scen.Build(rt); err != nil {
		rt.Close()
		return nil, err
	}
	return rt, nil
}

// recorder returns a closure appending op outcomes to a script transcript
// in the shared format ("err:<message>" for failures, "%v" otherwise) —
// the same convention node.RunBankScript uses, so drivers can diff any
// scenario's transcript the same way.
func recorder(out *[]string) func(v any, err error) {
	return func(v any, err error) {
		if err != nil {
			*out = append(*out, "err:"+err.Error())
			return
		}
		*out = append(*out, fmt.Sprintf("%v", v))
	}
}

// ---- registry ----

var (
	scenarioMu  sync.Mutex
	scenarioReg = make(map[string]func(servers int) Scenario)
)

// RegisterScenario makes a scenario constructable by NewScenario. The
// factory receives the deployment's server count. Duplicate names panic,
// matching the cloudstore backend registry discipline.
func RegisterScenario(name string, factory func(servers int) Scenario) {
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if _, dup := scenarioReg[name]; dup {
		panic(fmt.Sprintf("workload: scenario %q registered twice", name))
	}
	scenarioReg[name] = factory
}

// NewScenario constructs a fresh instance of the named scenario.
func NewScenario(name string, servers int) (Scenario, error) {
	scenarioMu.Lock()
	factory, ok := scenarioReg[name]
	scenarioMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("workload: unknown scenario %q (have %v)", name, ScenarioNames())
	}
	return factory(servers), nil
}

// ScenarioNames lists the registered scenario names, sorted.
func ScenarioNames() []string {
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	names := make([]string, 0, len(scenarioReg))
	for n := range scenarioReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
