package metrics

import (
	"sync/atomic"
	"time"
)

// stripeCount is the number of independent histograms a StripedHistogram
// fans writes across. Power of two so stripe selection is a mask.
const stripeCount = 64

// StripedHistogram spreads Record calls over independent Histograms so the
// record path never contends on shared counters; queries merge the stripes
// on read. The zero value is ready to use. Use RecordAt with a well-spread
// hint (e.g. an event sequence number) so concurrent recorders land on
// different stripes.
type StripedHistogram struct {
	stripes [stripeCount]Histogram
	// recordCursor backs the hint-less Record; hot paths should prefer
	// RecordAt and avoid this shared counter.
	recordCursor atomic.Uint64
}

// RecordAt adds one observation to the stripe selected by hint.
func (s *StripedHistogram) RecordAt(hint uint64, d time.Duration) {
	s.stripes[hint&(stripeCount-1)].Record(d)
}

// Record adds one observation on a round-robin stripe. Prefer RecordAt on
// hot paths.
func (s *StripedHistogram) Record(d time.Duration) {
	s.RecordAt(s.recordCursor.Add(1), d)
}

// merged folds all stripes into one Histogram. The result is a consistent-
// enough view under concurrent recording: each stripe is read atomically
// per counter, exactly like a plain shared Histogram would be.
func (s *StripedHistogram) merged() *Histogram {
	var out Histogram
	var total uint64
	var sumNs, maxNs int64
	for i := range s.stripes {
		h := &s.stripes[i]
		for b := 0; b < bucketCount; b++ {
			if c := h.counts[b].Load(); c != 0 {
				out.counts[b].Add(c)
			}
		}
		total += h.total.Load()
		sumNs += h.sumNs.Load()
		if m := h.maxNs.Load(); m > maxNs {
			maxNs = m
		}
	}
	out.total.Store(total)
	out.sumNs.Store(sumNs)
	out.maxNs.Store(maxNs)
	return &out
}

// Count returns the number of observations across all stripes.
func (s *StripedHistogram) Count() uint64 {
	var n uint64
	for i := range s.stripes {
		n += s.stripes[i].total.Load()
	}
	return n
}

// Mean returns the mean observation across all stripes.
func (s *StripedHistogram) Mean() time.Duration { return s.merged().Mean() }

// Max returns the largest observation across all stripes.
func (s *StripedHistogram) Max() time.Duration { return s.merged().Max() }

// Sum returns the total of all observations across stripes.
func (s *StripedHistogram) Sum() time.Duration {
	var ns int64
	for i := range s.stripes {
		ns += s.stripes[i].sumNs.Load()
	}
	return time.Duration(ns)
}

// Quantile returns the approximate q-quantile of the merged distribution.
func (s *StripedHistogram) Quantile(q float64) time.Duration {
	return s.merged().Quantile(q)
}

// FractionAbove returns the merged fraction of observations strictly above
// the threshold.
func (s *StripedHistogram) FractionAbove(threshold time.Duration) float64 {
	return s.merged().FractionAbove(threshold)
}

// Snapshot captures the merged distribution summary.
func (s *StripedHistogram) Snapshot() Snapshot { return s.merged().Snapshot() }

// StripedCounter is a monotonically increasing counter whose increments fan
// out across cache-line-padded stripes; Value sums them on read. Use IncAt
// with a well-spread hint on hot paths.
type StripedCounter struct {
	stripes [stripeCount]counterStripe
}

type counterStripe struct {
	v atomic.Uint64
	_ [56]byte // pad to a cache line
}

// IncAt increments the stripe selected by hint.
func (c *StripedCounter) IncAt(hint uint64) {
	c.stripes[hint&(stripeCount-1)].v.Add(1)
}

// Value returns the current total across stripes.
func (c *StripedCounter) Value() uint64 {
	var n uint64
	for i := range c.stripes {
		n += c.stripes[i].v.Load()
	}
	return n
}

// StripedEWMA is an exponentially weighted moving average whose updates fan
// out across cache-line-padded stripes; Value averages the occupied stripes
// on read. With hints spread uniformly (e.g. event sequence numbers), each
// stripe sees every stripeCount-th observation — callers should raise their
// smoothing factor accordingly (alpha' = 1-(1-alpha)^stripeCount preserves
// a single EWMA's time constant).
type StripedEWMA struct {
	stripes [stripeCount]ewmaStripe
}

type ewmaStripe struct {
	ns atomic.Int64
	_  [56]byte // pad to a cache line
}

// ObserveAt folds one observation into the stripe selected by hint.
func (e *StripedEWMA) ObserveAt(hint uint64, d time.Duration, alpha float64) {
	st := &e.stripes[hint&(stripeCount-1)]
	for {
		old := st.ns.Load()
		var next int64
		if old == 0 {
			next = d.Nanoseconds()
		} else {
			next = int64((1-alpha)*float64(old) + alpha*float64(d.Nanoseconds()))
		}
		if st.ns.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the mean of the occupied stripes (zero when nothing has
// been observed).
func (e *StripedEWMA) Value() time.Duration {
	var sum, n int64
	for i := range e.stripes {
		if v := e.stripes[i].ns.Load(); v != 0 {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return time.Duration(sum / n)
}
