// Package metrics provides the measurement primitives the benchmark harness
// uses to regenerate the paper's figures: latency histograms with percentile
// queries, throughput counters, windowed time series (for the elasticity and
// migration experiments), and SLA accounting (Table 1).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram records durations in logarithmically spaced buckets from 1µs to
// ~17min and answers quantile queries. It is safe for concurrent use and
// allocation-free on the record path.
type Histogram struct {
	counts [bucketCount]atomic.Uint64
	total  atomic.Uint64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

const (
	// bucketCount covers 1µs..~17min with 16 sub-buckets per octave.
	bucketsPerOctave = 16
	octaves          = 30
	bucketCount      = bucketsPerOctave * octaves
)

func bucketIndex(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns < 1000 {
		return 0
	}
	us := float64(ns) / 1000.0
	idx := int(math.Log2(us) * bucketsPerOctave)
	if idx < 0 {
		idx = 0
	}
	if idx >= bucketCount {
		idx = bucketCount - 1
	}
	return idx
}

func bucketValue(idx int) time.Duration {
	us := math.Exp2(float64(idx) / bucketsPerOctave)
	return time.Duration(us * 1000)
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.counts[bucketIndex(d)].Add(1)
	h.total.Add(1)
	h.sumNs.Add(d.Nanoseconds())
	for {
		cur := h.maxNs.Load()
		if d.Nanoseconds() <= cur || h.maxNs.CompareAndSwap(cur, d.Nanoseconds()) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Mean returns the mean observation.
func (h *Histogram) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / int64(n))
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Quantile returns the approximate q-quantile. q is clamped to [0,1]; an
// empty histogram answers 0 for every quantile. (Unclamped negative q would
// convert to a huge unsigned rank and always answer Max.)
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var cum uint64
	for i := 0; i < bucketCount; i++ {
		cum += h.counts[i].Load()
		if cum > rank {
			return bucketValue(i)
		}
	}
	return h.Max()
}

// FractionAbove returns the fraction of observations strictly above the
// threshold (used for SLA-violation accounting in Table 1). The threshold is
// resolved at bucket granularity.
func (h *Histogram) FractionAbove(threshold time.Duration) float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	idx := bucketIndex(threshold)
	var above uint64
	for i := idx + 1; i < bucketCount; i++ {
		above += h.counts[i].Load()
	}
	return float64(above) / float64(n)
}

// Snapshot summarizes the histogram.
type Snapshot struct {
	Count  uint64
	Mean   time.Duration
	P50    time.Duration
	P95    time.Duration
	P99    time.Duration
	P999   time.Duration
	Max    time.Duration
	TookAt time.Time
}

// Snapshot captures the current distribution summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count:  h.Count(),
		Mean:   h.Mean(),
		P50:    h.Quantile(0.50),
		P95:    h.Quantile(0.95),
		P99:    h.Quantile(0.99),
		P999:   h.Quantile(0.999),
		Max:    h.Max(),
		TookAt: time.Now(),
	}
}

// String renders the snapshot compactly, always including p50/p99/p999.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v p999=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.P999.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// Counter is a monotonically increasing event counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Throughput measures completed operations over a wall-clock window.
type Throughput struct {
	count Counter
	start time.Time
}

// NewThroughput starts a throughput measurement now.
func NewThroughput() *Throughput {
	return &Throughput{start: time.Now()}
}

// Done records one completed operation.
func (t *Throughput) Done() { t.count.Inc() }

// Count returns completed operations so far.
func (t *Throughput) Count() uint64 { return t.count.Value() }

// PerSecond returns the average operations per second since start.
func (t *Throughput) PerSecond() float64 {
	el := time.Since(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.count.Value()) / el
}

// TimeSeries accumulates per-window samples (e.g. events/s per second for
// Figure 8, or average latency per second for Figure 7a).
type TimeSeries struct {
	mu      sync.Mutex
	window  time.Duration
	start   time.Time
	buckets map[int]*seriesBucket
}

type seriesBucket struct {
	count int
	sum   float64
}

// NewTimeSeries creates a series with the given window size, anchored now.
func NewTimeSeries(window time.Duration) *TimeSeries {
	return &TimeSeries{
		window:  window,
		start:   time.Now(),
		buckets: make(map[int]*seriesBucket),
	}
}

// Observe adds a sample at the current time.
func (ts *TimeSeries) Observe(v float64) { ts.ObserveAt(time.Now(), v) }

// ObserveAt adds a sample at an explicit time.
func (ts *TimeSeries) ObserveAt(at time.Time, v float64) {
	idx := int(at.Sub(ts.start) / ts.window)
	if idx < 0 {
		idx = 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	b := ts.buckets[idx]
	if b == nil {
		b = &seriesBucket{}
		ts.buckets[idx] = b
	}
	b.count++
	b.sum += v
}

// Point is one window of a time series.
type Point struct {
	// Offset is the window start relative to series start.
	Offset time.Duration
	// Count is the number of samples in the window.
	Count int
	// Sum is the total of samples in the window.
	Sum float64
	// Mean is Sum/Count (0 when empty).
	Mean float64
	// Rate is Count divided by the window length in seconds.
	Rate float64
}

// Points returns the series in time order, including empty windows between
// the first and last occupied ones.
func (ts *TimeSeries) Points() []Point {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if len(ts.buckets) == 0 {
		return nil
	}
	idxs := make([]int, 0, len(ts.buckets))
	for i := range ts.buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	first, last := idxs[0], idxs[len(idxs)-1]
	out := make([]Point, 0, last-first+1)
	winSec := ts.window.Seconds()
	for i := first; i <= last; i++ {
		p := Point{Offset: time.Duration(i) * ts.window}
		if b, ok := ts.buckets[i]; ok {
			p.Count = b.count
			p.Sum = b.sum
			if b.count > 0 {
				p.Mean = b.sum / float64(b.count)
			}
			p.Rate = float64(b.count) / winSec
		}
		out = append(out, p)
	}
	return out
}

// Window returns the configured window size.
func (ts *TimeSeries) Window() time.Duration { return ts.window }

// Start returns the series anchor time.
func (ts *TimeSeries) Start() time.Time { return ts.start }
