package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestStripedHistogramMergesOnRead(t *testing.T) {
	var s StripedHistogram
	// Spread observations across every stripe with known values.
	for i := uint64(0); i < 10*stripeCount; i++ {
		s.RecordAt(i, 5*time.Millisecond)
	}
	s.RecordAt(3, time.Second) // one outlier on one stripe
	if n := s.Count(); n != 10*stripeCount+1 {
		t.Fatalf("Count = %d; want %d", n, 10*stripeCount+1)
	}
	if max := s.Max(); max < time.Second {
		t.Fatalf("Max = %v; want >= 1s", max)
	}
	if p50 := s.Quantile(0.5); p50 < 4*time.Millisecond || p50 > 7*time.Millisecond {
		t.Fatalf("p50 = %v; want ~5ms", p50)
	}
	if f := s.FractionAbove(100 * time.Millisecond); f <= 0 || f > 0.01 {
		t.Fatalf("FractionAbove(100ms) = %v; want one outlier's worth", f)
	}
	snap := s.Snapshot()
	if snap.Count != 10*stripeCount+1 {
		t.Fatalf("snapshot count = %d", snap.Count)
	}
}

func TestStripedHistogramConcurrentRecord(t *testing.T) {
	var s StripedHistogram
	const goroutines = 8
	const per = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.RecordAt(uint64(g*per+i), time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	if n := s.Count(); n != goroutines*per {
		t.Fatalf("Count = %d; want %d", n, goroutines*per)
	}
}

func TestStripedCounter(t *testing.T) {
	var c StripedCounter
	const goroutines = 8
	const per = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.IncAt(uint64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	if v := c.Value(); v != goroutines*per {
		t.Fatalf("Value = %d; want %d", v, goroutines*per)
	}
}
