package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestStripedHistogramMergesOnRead(t *testing.T) {
	var s StripedHistogram
	// Spread observations across every stripe with known values.
	for i := uint64(0); i < 10*stripeCount; i++ {
		s.RecordAt(i, 5*time.Millisecond)
	}
	s.RecordAt(3, time.Second) // one outlier on one stripe
	if n := s.Count(); n != 10*stripeCount+1 {
		t.Fatalf("Count = %d; want %d", n, 10*stripeCount+1)
	}
	if max := s.Max(); max < time.Second {
		t.Fatalf("Max = %v; want >= 1s", max)
	}
	if p50 := s.Quantile(0.5); p50 < 4*time.Millisecond || p50 > 7*time.Millisecond {
		t.Fatalf("p50 = %v; want ~5ms", p50)
	}
	if f := s.FractionAbove(100 * time.Millisecond); f <= 0 || f > 0.01 {
		t.Fatalf("FractionAbove(100ms) = %v; want one outlier's worth", f)
	}
	snap := s.Snapshot()
	if snap.Count != 10*stripeCount+1 {
		t.Fatalf("snapshot count = %d", snap.Count)
	}
}

func TestStripedHistogramConcurrentRecord(t *testing.T) {
	var s StripedHistogram
	const goroutines = 8
	const per = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.RecordAt(uint64(g*per+i), time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	if n := s.Count(); n != goroutines*per {
		t.Fatalf("Count = %d; want %d", n, goroutines*per)
	}
}

func TestStripedCounter(t *testing.T) {
	var c StripedCounter
	const goroutines = 8
	const per = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.IncAt(uint64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	if v := c.Value(); v != goroutines*per {
		t.Fatalf("Value = %d; want %d", v, goroutines*per)
	}
}

// TestStripedHistogramMergeDuringRecord reads merged views (Count, Quantile,
// Snapshot, Sum) while writers are recording — the merge-on-read path must
// be race-free and every merged count must be a value some writer actually
// reached. Run under -race this pins the lock-free stripe discipline.
func TestStripedHistogramMergeDuringRecord(t *testing.T) {
	var s StripedHistogram
	const goroutines = 8
	const per = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.RecordAt(uint64(g*per+i), time.Duration(1+i%5)*time.Millisecond)
			}
		}(g)
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := s.Count()
				if n < last {
					t.Errorf("merged Count went backwards: %d -> %d", last, n)
					return
				}
				last = n
				if n > 0 {
					if q := s.Quantile(0.5); q <= 0 {
						t.Errorf("mid-flight Quantile(0.5) = %v with count %d", q, n)
						return
					}
				}
				_ = s.Snapshot()
				_ = s.Sum()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if n := s.Count(); n != goroutines*per {
		t.Fatalf("final Count = %d; want %d", n, goroutines*per)
	}
	if sum := s.Sum(); sum <= 0 {
		t.Fatalf("final Sum = %v; want positive", sum)
	}
}
