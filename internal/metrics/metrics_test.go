package metrics

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should be all zeros")
	}
	h.Record(1 * time.Millisecond)
	h.Record(2 * time.Millisecond)
	h.Record(3 * time.Millisecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if m := h.Mean(); m != 2*time.Millisecond {
		t.Fatalf("mean = %v; want 2ms", m)
	}
	if mx := h.Max(); mx != 3*time.Millisecond {
		t.Fatalf("max = %v; want 3ms", mx)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	// Uniform 1..1000 ms.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 500 * time.Millisecond},
		{0.95, 950 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	} {
		got := h.Quantile(tc.q)
		// Log-bucketed: accept 10% relative error.
		lo := time.Duration(float64(tc.want) * 0.9)
		hi := time.Duration(float64(tc.want) * 1.1)
		if got < lo || got > hi {
			t.Errorf("q%.2f = %v; want within [%v, %v]", tc.q, got, lo, hi)
		}
	}
}

func TestHistogramFractionAbove(t *testing.T) {
	var h Histogram
	for i := 0; i < 80; i++ {
		h.Record(time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		h.Record(time.Second)
	}
	f := h.FractionAbove(10 * time.Millisecond)
	if f < 0.19 || f > 0.21 {
		t.Fatalf("fraction above 10ms = %v; want ≈0.2", f)
	}
	if f := h.FractionAbove(2 * time.Second); f != 0 {
		t.Fatalf("fraction above 2s = %v; want 0", f)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(i%50+1) * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d; want 8000", h.Count())
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		for i := 0; i < 200; i++ {
			h.Record(time.Duration(rng.Intn(1_000_000)+1) * time.Microsecond)
		}
		prev := time.Duration(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotString(t *testing.T) {
	var h Histogram
	h.Record(5 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("snapshot count = %d", s.Count)
	}
	if str := s.String(); str == "" {
		t.Fatal("empty snapshot string")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d; want 5", c.Value())
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput()
	for i := 0; i < 100; i++ {
		tp.Done()
	}
	if tp.Count() != 100 {
		t.Fatalf("count = %d", tp.Count())
	}
	time.Sleep(10 * time.Millisecond)
	ps := tp.PerSecond()
	if ps <= 0 || ps > 100/0.009 {
		t.Fatalf("per second = %v; implausible", ps)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(100 * time.Millisecond)
	base := ts.Start()
	ts.ObserveAt(base.Add(10*time.Millisecond), 1)
	ts.ObserveAt(base.Add(20*time.Millisecond), 3)
	ts.ObserveAt(base.Add(250*time.Millisecond), 10)

	pts := ts.Points()
	if len(pts) != 3 {
		t.Fatalf("points = %d; want 3 (including gap window)", len(pts))
	}
	if pts[0].Count != 2 || pts[0].Mean != 2 || pts[0].Sum != 4 {
		t.Fatalf("window 0 = %+v", pts[0])
	}
	if pts[0].Rate != 20 { // 2 samples / 0.1s
		t.Fatalf("window 0 rate = %v; want 20", pts[0].Rate)
	}
	if pts[1].Count != 0 {
		t.Fatalf("gap window = %+v; want empty", pts[1])
	}
	if pts[2].Count != 1 || pts[2].Mean != 10 {
		t.Fatalf("window 2 = %+v", pts[2])
	}
	if pts[2].Offset != 200*time.Millisecond {
		t.Fatalf("window 2 offset = %v", pts[2].Offset)
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	if pts := ts.Points(); pts != nil {
		t.Fatalf("points = %v; want nil", pts)
	}
}

func TestTimeSeriesConcurrent(t *testing.T) {
	ts := NewTimeSeries(time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ts.Observe(1)
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, p := range ts.Points() {
		total += p.Count
	}
	if total != 2000 {
		t.Fatalf("total = %d; want 2000", total)
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// bucketValue(bucketIndex(d)) should be within one sub-bucket of d.
	for _, d := range []time.Duration{
		time.Microsecond, 10 * time.Microsecond, time.Millisecond,
		17 * time.Millisecond, time.Second, 90 * time.Second,
	} {
		idx := bucketIndex(d)
		v := bucketValue(idx)
		ratio := float64(v) / float64(d)
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("round trip %v → bucket %d → %v (ratio %.3f)", d, idx, v, ratio)
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var empty Histogram
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		if v := empty.Quantile(q); v != 0 {
			t.Fatalf("empty Quantile(%v) = %v; want 0", q, v)
		}
	}
	if empty.Mean() != 0 || empty.Sum() != 0 {
		t.Fatalf("empty Mean/Sum = %v/%v; want 0", empty.Mean(), empty.Sum())
	}

	var h Histogram
	h.Record(time.Millisecond)
	h.Record(10 * time.Millisecond)
	// Out-of-range and NaN quantiles clamp instead of indexing a garbage
	// rank (a negative q used to convert to a huge uint64 and return Max).
	lo, hi := h.Quantile(0), h.Quantile(1)
	if v := h.Quantile(-0.5); v != lo {
		t.Fatalf("Quantile(-0.5) = %v; want clamp to Quantile(0) = %v", v, lo)
	}
	if v := h.Quantile(1.5); v != hi {
		t.Fatalf("Quantile(1.5) = %v; want clamp to Quantile(1) = %v", v, hi)
	}
	if v := h.Quantile(math.NaN()); v != lo {
		t.Fatalf("Quantile(NaN) = %v; want clamp to Quantile(0) = %v", v, lo)
	}
	if s := h.Sum(); s != 11*time.Millisecond {
		t.Fatalf("Sum = %v; want 11ms", s)
	}
}

func TestSnapshotStringTailQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 500; i++ {
		h.Record(time.Millisecond)
	}
	h.Record(time.Second) // tail outlier: p999 must surface it, p99 must not
	s := h.Snapshot()
	if s.P999 < s.P99 {
		t.Fatalf("p999 = %v < p99 = %v", s.P999, s.P99)
	}
	if s.P999 < 500*time.Millisecond {
		t.Fatalf("p999 = %v; want the 1s outlier visible", s.P999)
	}
	str := s.String()
	for _, want := range []string{"p50=", "p99=", "p999="} {
		if !strings.Contains(str, want) {
			t.Fatalf("Snapshot.String() = %q; missing %s", str, want)
		}
	}
}
