package node

import (
	"testing"
	"time"

	"aeon/internal/transport"
	"aeon/internal/workload"
)

// runScenarioOnHarness deploys scen on a live n-node deployment and replays
// its script through node 1, returning the transcript.
func runScenarioOnHarness(t *testing.T, name string, nodes int) []string {
	t.Helper()
	scen, err := workload.NewScenario(name, nodes)
	if err != nil {
		t.Fatalf("scenario %s: %v", name, err)
	}
	mesh := transport.NewInMemMesh(transport.NewSim(transport.SimConfig{}))
	// Replicate is required for the social workload: a post's virtual-join
	// dominator is minted by whichever node first runs the dominator query,
	// and the mint must reach the mesh through the mutation log before the
	// forwarded event lands on the virtual's host.
	d, err := Deploy(mesh, Topology{Nodes: nodes, Scenario: scen, StoreParts: 2, Replicate: true})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	t.Cleanup(d.Close)
	if err := d.WaitReady(10 * time.Second); err != nil {
		t.Fatalf("mesh not ready: %v", err)
	}
	return scen.Script(d.Nodes[0].Submit)
}

// TestScenarioScriptMatchesOracleOnHarness is the scenario layer's
// ground-truth check: the same deterministic script, run once against a
// single-process runtime (the oracle) and once against a live multi-node
// deployment with real forwarding, must produce identical transcripts —
// including for the social workload, whose multi-owned timelines make every
// post resolve through a virtual-join dominator.
func TestScenarioScriptMatchesOracleOnHarness(t *testing.T) {
	for _, name := range workload.ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			const nodes = 3
			want, err := workload.Oracle(name, nodes)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			got := runScenarioOnHarness(t, name, nodes)
			if len(got) != len(want) {
				t.Fatalf("transcript length: harness %d oracle %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("transcript diverges at line %d:\n  harness: %s\n  oracle:  %s", i, got[i], want[i])
				}
			}
		})
	}
}
