package node

// Store-plane tests: wire-level sentinel fidelity for every store op, the
// RemoteStore lifecycle context, the sharded/replicated deployment against
// the single-process oracle, and the store-failover chaos smoke (kill a
// partition's primary store server mid-traffic; the fleet must converge
// with no split brain).

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/transport"
)

// storeWireRig is a StoreServer and a RemoteStore client on one in-memory
// mesh: every op crosses the full encode→handle→execStoreOp→errFields→
// WireError path.
func storeWireRig(t *testing.T) (*cloudstore.Store, *RemoteStore) {
	t.Helper()
	mesh := transport.NewInMemMesh(transport.NewSim(transport.SimConfig{}))
	st := cloudstore.New()
	srv, err := ServeStore(mesh, StoreIDBase+1, st)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ep, err := mesh.Attach(999, func(context.Context, transport.NodeID, transport.Message) (transport.Message, error) {
		return transport.Message{}, errors.New("client endpoint serves nothing")
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	return st, NewRemoteStore(ep, StoreIDBase+1, 5*time.Second, nil)
}

// TestStoreWireSentinelRoundTrip pins that every cloudstore sentinel
// survives the RemoteStore→handler→WireError translation for every store
// op: ErrUnavailable for all of them (a downed replica must look downed, or
// failover never triggers), and the op-specific semantic sentinels
// (ErrNotFound, ErrVersionMismatch, ErrFenced) where the op can produce
// them.
func TestStoreWireSentinelRoundTrip(t *testing.T) {
	// Every op, for the all-ops ErrUnavailable sweep.
	allOps := []struct {
		name string
		op   func(r *RemoteStore) error
	}{
		{"Get", func(r *RemoteStore) error { _, _, err := r.Get("k"); return err }},
		{"Put", func(r *RemoteStore) error { _, err := r.Put("k", nil); return err }},
		{"PutBatch", func(r *RemoteStore) error { _, err := r.PutBatch(map[string][]byte{"k": nil}); return err }},
		{"CreateBatch", func(r *RemoteStore) error { _, err := r.CreateBatch(map[string][]byte{"k": nil}); return err }},
		{"CAS", func(r *RemoteStore) error { _, err := r.CAS("k", 0, nil); return err }},
		{"Delete", func(r *RemoteStore) error { return r.Delete("k") }},
		{"DeleteBatch", func(r *RemoteStore) error { return r.DeleteBatch([]string{"k"}) }},
		{"List", func(r *RemoteStore) error { _, err := r.List(""); return err }},
		{"GetF", func(r *RemoteStore) error { _, _, err := r.GetF(0, 1, "k"); return err }},
		{"ListF", func(r *RemoteStore) error { _, err := r.ListF(0, 1, ""); return err }},
		{"PutF", func(r *RemoteStore) error { _, err := r.PutF(0, 1, "k", nil); return err }},
		{"PutBatchF", func(r *RemoteStore) error { _, err := r.PutBatchF(0, 1, map[string][]byte{"k": nil}); return err }},
		{"CreateBatchF", func(r *RemoteStore) error { _, err := r.CreateBatchF(0, 1, map[string][]byte{"k": nil}); return err }},
		{"CASF", func(r *RemoteStore) error { _, err := r.CASF(0, 1, "k", 0, nil); return err }},
		{"DeleteF", func(r *RemoteStore) error { _, err := r.DeleteF(0, 1, "k"); return err }},
		{"DeleteBatchF", func(r *RemoteStore) error { _, err := r.DeleteBatchF(0, 1, []string{"k"}); return err }},
		{"Apply", func(r *RemoteStore) error { return r.Apply(0, 1, cloudstore.Commit{}) }},
		{"Promote", func(r *RemoteStore) error { _, err := r.Promote(0, 1); return err }},
		{"FenceEpoch", func(r *RemoteStore) error { _, err := r.FenceEpoch(0); return err }},
	}
	for _, tc := range allOps {
		t.Run("Unavailable/"+tc.name, func(t *testing.T) {
			st, r := storeWireRig(t)
			st.Fail()
			if err := tc.op(r); !errors.Is(err, cloudstore.ErrUnavailable) {
				t.Fatalf("err = %v; want ErrUnavailable", err)
			}
		})
	}

	// Op-specific semantic sentinels.
	semantic := []struct {
		name  string
		setup func(st *cloudstore.Store)
		op    func(r *RemoteStore) error
		want  error
	}{
		{"Get/NotFound", nil,
			func(r *RemoteStore) error { _, _, err := r.Get("ghost"); return err }, cloudstore.ErrNotFound},
		{"Delete/NotFound", nil,
			func(r *RemoteStore) error { return r.Delete("ghost") }, cloudstore.ErrNotFound},
		{"GetF/NotFound", nil,
			func(r *RemoteStore) error { _, _, err := r.GetF(0, 1, "ghost"); return err }, cloudstore.ErrNotFound},
		{"DeleteF/NotFound", nil,
			func(r *RemoteStore) error { _, err := r.DeleteF(0, 1, "ghost"); return err }, cloudstore.ErrNotFound},
		{"CASF/VersionMismatch",
			func(st *cloudstore.Store) { _, _ = st.Put("k", []byte("v")) },
			func(r *RemoteStore) error { _, err := r.CASF(0, 1, "k", 99, nil); return err }, cloudstore.ErrVersionMismatch},
		{"CreateBatchF/VersionMismatchExists",
			func(st *cloudstore.Store) { _, _ = st.Put("k", []byte("v")) },
			func(r *RemoteStore) error {
				_, err := r.CreateBatchF(0, 1, map[string][]byte{"k": nil})
				return err
			}, cloudstore.ErrVersionMismatch},
		{"GetF/Fenced",
			func(st *cloudstore.Store) { _, _ = st.Promote(0, 5) },
			func(r *RemoteStore) error { _, _, err := r.GetF(0, 2, "k"); return err }, cloudstore.ErrFenced},
		{"ListF/Fenced",
			func(st *cloudstore.Store) { _, _ = st.Promote(0, 5) },
			func(r *RemoteStore) error { _, err := r.ListF(0, 2, ""); return err }, cloudstore.ErrFenced},
		{"PutF/Fenced",
			func(st *cloudstore.Store) { _, _ = st.Promote(0, 5) },
			func(r *RemoteStore) error { _, err := r.PutF(0, 2, "k", nil); return err }, cloudstore.ErrFenced},
		{"PutBatchF/Fenced",
			func(st *cloudstore.Store) { _, _ = st.Promote(0, 5) },
			func(r *RemoteStore) error { _, err := r.PutBatchF(0, 2, map[string][]byte{"k": nil}); return err }, cloudstore.ErrFenced},
		{"CreateBatchF/Fenced",
			func(st *cloudstore.Store) { _, _ = st.Promote(0, 5) },
			func(r *RemoteStore) error { _, err := r.CreateBatchF(0, 2, map[string][]byte{"k": nil}); return err }, cloudstore.ErrFenced},
		{"CASF/Fenced",
			func(st *cloudstore.Store) { _, _ = st.Promote(0, 5) },
			func(r *RemoteStore) error { _, err := r.CASF(0, 2, "k", 0, nil); return err }, cloudstore.ErrFenced},
		{"DeleteF/Fenced",
			func(st *cloudstore.Store) { _, _ = st.Promote(0, 5) },
			func(r *RemoteStore) error { _, err := r.DeleteF(0, 2, "k"); return err }, cloudstore.ErrFenced},
		{"DeleteBatchF/Fenced",
			func(st *cloudstore.Store) { _, _ = st.Promote(0, 5) },
			func(r *RemoteStore) error { _, err := r.DeleteBatchF(0, 2, []string{"k"}); return err }, cloudstore.ErrFenced},
		{"CAS/VersionMismatchConflict",
			func(st *cloudstore.Store) { _, _ = st.Put("k", []byte("v")) },
			func(r *RemoteStore) error { _, err := r.CAS("k", 99, nil); return err }, cloudstore.ErrVersionMismatch},
		{"CAS/VersionMismatchMissing", nil,
			func(r *RemoteStore) error { _, err := r.CAS("ghost", 3, nil); return err }, cloudstore.ErrVersionMismatch},
		{"CreateBatch/VersionMismatchExists",
			func(st *cloudstore.Store) { _, _ = st.Put("k", []byte("v")) },
			func(r *RemoteStore) error {
				_, err := r.CreateBatch(map[string][]byte{"k": nil, "fresh": nil})
				return err
			}, cloudstore.ErrVersionMismatch},
		{"Apply/Fenced",
			func(st *cloudstore.Store) { _, _ = st.Promote(0, 5) },
			func(r *RemoteStore) error { return r.Apply(0, 2, cloudstore.Commit{}) }, cloudstore.ErrFenced},
		{"Promote/Fenced",
			func(st *cloudstore.Store) { _, _ = st.Promote(0, 5) },
			func(r *RemoteStore) error { _, err := r.Promote(0, 2); return err }, cloudstore.ErrFenced},
	}
	for _, tc := range semantic {
		t.Run(tc.name, func(t *testing.T) {
			st, r := storeWireRig(t)
			if tc.setup != nil {
				tc.setup(st)
			}
			if err := tc.op(r); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v; want %v", err, tc.want)
			}
		})
	}
}

// TestRemoteStorePromoteCarriesFenceOnRefusal pins the failover contract
// over the wire: a fenced Promote must still deliver the accepted epoch so
// the client adopts the newer view without a second round trip.
func TestRemoteStorePromoteCarriesFenceOnRefusal(t *testing.T) {
	st, r := storeWireRig(t)
	if _, err := st.Promote(3, 9); err != nil {
		t.Fatal(err)
	}
	cur, err := r.Promote(3, 4)
	if !errors.Is(err, cloudstore.ErrFenced) {
		t.Fatalf("err = %v; want ErrFenced", err)
	}
	if cur != 9 {
		t.Fatalf("refused promote reported fence %d; want 9", cur)
	}
}

// TestRemoteStoreHonorsBaseContext pins the satellite fix for
// RemoteStore.call using context.Background() unconditionally: calls now
// derive from the owner's lifecycle context, so an abandoned client's ops
// cancel immediately instead of stacking dead calls behind the timeout.
func TestRemoteStoreHonorsBaseContext(t *testing.T) {
	mesh := transport.NewInMemMesh(transport.NewSim(transport.SimConfig{}))
	st := cloudstore.New()
	srv, err := ServeStore(mesh, StoreIDBase+1, st)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ep, err := mesh.Attach(999, func(context.Context, transport.NodeID, transport.Message) (transport.Message, error) {
		return transport.Message{}, errors.New("client endpoint serves nothing")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	base, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRemoteStore(ep, StoreIDBase+1, time.Hour, base)
	start := time.Now()
	_, werr := r.Put("k", nil)
	if werr == nil {
		t.Fatal("call under a canceled lifecycle must fail")
	}
	if !errors.Is(werr, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", werr)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("canceled call took %v; must not wait out the timeout", elapsed)
	}
}

// deployStorePlane builds an n-node replicated deployment whose cloud store
// is the sharded, replicated store plane (parts × StoreRF store servers)
// over the given mesh.
func deployStorePlane(t *testing.T, mesh transport.Mesh, nodes, parts int) *Deployment {
	t.Helper()
	d, err := Deploy(mesh, Topology{Nodes: nodes, Replicate: true, StoreParts: parts})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	if err := d.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestStorePlaneDeploymentMatchesOracle runs the full static + dynamic
// workload — including runtime context creation sequenced through the
// replication log, whose CAS commit point now lives on one partition of the
// store plane — and diffs every outcome against the single-process oracle.
func TestStorePlaneDeploymentMatchesOracle(t *testing.T) {
	mesh := transport.NewInMemMesh(transport.NewSim(transport.SimConfig{}))
	d := deployStorePlane(t, mesh, 3, 2)

	n1 := d.Nodes[0]
	static := RunBankScript(n1.Submit, d.Top)
	dynamic := RunBankDynamicScript(n1.Submit, d.Top)
	wantStatic, wantDynamic, err := BankDynamicOracle(3, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	diffScripts(t, "static", static, wantStatic)
	diffScripts(t, "dynamic", dynamic, wantDynamic)

	// The plane really is sharded: both partitions' primaries hold keys.
	for p := 0; p < 2; p++ {
		keys, err := d.StoreBackends[StoreRF*p].List("")
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) == 0 {
			t.Fatalf("partition %d primary holds no keys; keyspace not sharded", p)
		}
	}
}

// replogPartition reports which of n partitions owns the replication log's
// record keys (the CAS-sequenced commit point — the hottest store state).
func replogPartition(n int) int {
	probe := cloudstore.NewPartitioned(make([]cloudstore.API, n)...)
	return probe.PartitionOf("replog/rec/00000000000000000001")
}

// TestStoreFailoverChaos is the store-loss chaos smoke: under a fault-
// injecting mesh, kill the store primary of the partition serving the
// replication log mid-traffic. Writes must resume through the promoted
// follower (CAS-fenced failover), runtime context creation must keep
// sequencing through the log, and the full outcome stream must still match
// the single-process oracle — no split brain, no lost acks.
func TestStoreFailoverChaos(t *testing.T) {
	net := transport.NewSim(transport.SimConfig{})
	fm := transport.NewFaultyMesh(transport.NewInMemMesh(net))
	d := deployStorePlane(t, fm, 3, 2)
	n1 := d.Nodes[0]

	// Phase 1: static traffic with the full plane up.
	static := RunBankScript(n1.Submit, d.Top)

	// Mid-traffic fault: first sever node 1 from the other partition's
	// primary (transport fault, not a crash) so its client must fail over
	// on a dropped call…
	p := replogPartition(2)
	other := 1 - p
	otherPrimary := StoreIDBase + transport.NodeID(StoreRF*other+1)
	fm.Drop(1, otherPrimary)
	// …then kill the replog partition's primary outright: its endpoint
	// detaches, every in-flight and future call fails fast, and the
	// follower must be promoted by whichever client trips first.
	if srv := d.StoreServerFor(StoreIDBase + transport.NodeID(StoreRF*p+1)); srv != nil {
		_ = srv.Close()
	} else {
		t.Fatalf("no store server for partition %d primary", p)
	}

	// Phase 2: dynamic traffic through the degraded plane — context
	// creation CASes records into the replication log via the promoted
	// follower.
	dynamic := RunBankDynamicScript(n1.Submit, d.Top)

	wantStatic, wantDynamic, err := BankDynamicOracle(3, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	diffScripts(t, "static", static, wantStatic)
	diffScripts(t, "dynamic", dynamic, wantDynamic)

	// The replog partition failed over: its follower's fence epoch moved
	// past the boot epoch, and the follower holds the post-kill records.
	fol := d.StoreBackends[StoreRF*p+1]
	epoch, err := fol.FenceEpoch(p)
	if err != nil {
		t.Fatal(err)
	}
	if epoch < 2 {
		t.Fatalf("replog partition fence epoch = %d; follower was never promoted", epoch)
	}
	keys, err := fol.List("replog/rec/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 {
		t.Fatal("promoted follower holds no replication log records")
	}

	// No split brain: the dead primary's store must not have acknowledged
	// writes the promoted follower never saw. Every record on the dead
	// primary past the follower's set would be an acked-but-lost write;
	// the fence makes that impossible, so the follower's log is a superset.
	dead := d.StoreBackends[StoreRF*p]
	deadKeys, err := dead.List("replog/rec/")
	if err != nil {
		t.Fatal(err)
	}
	folSet := make(map[string]bool, len(keys))
	for _, k := range keys {
		folSet[k] = true
	}
	for _, k := range deadKeys {
		if !folSet[k] {
			t.Fatalf("dead primary holds %s which the promoted follower never saw — a split-brain ack window", k)
		}
	}

	// The stale-primary fence holds across the mesh: a client still acting
	// for the boot view has its fenced apply refused by the promoted
	// follower.
	err = fol.Apply(p, 1, cloudstore.Commit{Sets: []cloudstore.KV{{Key: "rogue", Val: nil, Ver: 1 << 40}}})
	if !errors.Is(err, cloudstore.ErrFenced) {
		t.Fatalf("stale-epoch apply err = %v; want ErrFenced", err)
	}

	// Heal the dropped link; traffic keeps flowing on the converged view.
	fm.Heal(1, otherPrimary)
	if _, err := n1.Submit(d.Top.Accounts[0][0], "deposit", 1); err != nil {
		t.Fatalf("post-chaos submit: %v", err)
	}
}

// TestStorePlaneTCP runs the sharded plane over real TCP loopback sockets:
// store servers and nodes in one process but separate sockets, the same
// wiring cmd/aeon-node uses.
func TestStorePlaneTCP(t *testing.T) {
	mesh := transport.NewTCPMesh()
	d := deployStorePlane(t, mesh, 2, 2)
	n1 := d.Nodes[0]
	static := RunBankScript(n1.Submit, d.Top)
	wantStatic, _, err := BankDynamicOracle(2, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	diffScripts(t, "static", static, wantStatic)
}

// TestStorePlaneDiskBackend runs the replicated workload over disk-backed
// store servers, then reopens one journal and checks the state survived.
func TestStorePlaneDiskBackend(t *testing.T) {
	mesh := transport.NewInMemMesh(transport.NewSim(transport.SimConfig{}))
	dir := t.TempDir()
	d, err := Deploy(mesh, Topology{Nodes: 2, Replicate: true, StoreParts: 2, StoreBackend: "disk:" + dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WaitReady(10 * time.Second); err != nil {
		d.Close()
		t.Fatal(err)
	}
	// The dynamic script writes through the store plane (replication-log
	// records, mapping entries); the static one alone would leave the
	// journals empty.
	static := RunBankScript(d.Nodes[0].Submit, d.Top)
	dynamic := RunBankDynamicScript(d.Nodes[0].Submit, d.Top)
	wantStatic, wantDynamic, oerr := BankDynamicOracle(2, 4, 1000)
	if oerr != nil {
		d.Close()
		t.Fatal(oerr)
	}
	diffScripts(t, "static", static, wantStatic)
	diffScripts(t, "dynamic", dynamic, wantDynamic)
	wantKeys := make([]int, 2)
	for p := 0; p < 2; p++ {
		keys, err := d.StoreBackends[StoreRF*p].List("")
		if err != nil {
			d.Close()
			t.Fatal(err)
		}
		wantKeys[p] = len(keys)
	}
	d.Close()

	// Reopen each partition primary's journal: the replayed state must
	// match what the live backend held, and the plane as a whole must have
	// persisted something.
	total := 0
	for p := 0; p < 2; p++ {
		re, err := cloudstore.OpenDisk(fmt.Sprintf("%s/p%d-r0", dir, p))
		if err != nil {
			t.Fatal(err)
		}
		keys, err := re.List("")
		re.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != wantKeys[p] {
			t.Fatalf("partition %d journal replay found %d keys; want %d", p, len(keys), wantKeys[p])
		}
		total += len(keys)
	}
	if total == 0 {
		t.Fatal("no partition journal holds any keys; the workload never hit the disk backend")
	}
}
