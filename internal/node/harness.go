package node

// In-process multi-node harness: builds N node runtimes — each embodying
// one server of an identically replicated topology — and attaches them to
// one Mesh, so the full wire protocol (submit, forwarding, remote store,
// mesh state transfer) is exercised inside ordinary `go test` with either
// the in-memory mesh or TCP loopback.

import (
	"fmt"
	"strings"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/emanager"
	"aeon/internal/ops"
	"aeon/internal/ownership"
	"aeon/internal/transport"
	"aeon/internal/workload"
)

// Topology describes an in-process deployment.
type Topology struct {
	// Nodes is the number of node processes (and servers; 1:1).
	Nodes int
	// Profile is the server instance profile (default m3.large).
	Profile cluster.Profile
	// StoreNode serves the authoritative cloud store (default node 1).
	// Ignored when StoreParts > 0.
	StoreNode transport.NodeID
	// StoreParts, when > 0, deploys the sharded, replicated store plane
	// instead of a store-serving node: each of the StoreParts partitions is
	// served by StoreRF dedicated StoreServer processes (partition p's
	// replica r attaches at StoreIDBase+StoreRF*p+r+1; replica 0 is the
	// boot primary), and every node routes through a Partitioned client.
	StoreParts int
	// StoreBackend opens each store server's backend ("memory" when empty;
	// "disk:<dir>" gets "/p<partition>-r<replica>" appended so replicas
	// never share a journal).
	StoreBackend string
	// NetCfg is the simulated intra-node network (default: zero-latency
	// NullNetwork semantics via zero SimConfig — mesh calls carry the real
	// cost in TCP deployments).
	NetCfg transport.SimConfig
	// Runtime overrides the runtime config (zero value → DefaultConfig
	// with client-hop charging off, since the mesh pays real costs).
	Runtime *core.Config
	// Manager configures each node's elasticity manager.
	Manager emanager.Config
	// AccountsPerBank sizes the bank workload (default 4).
	AccountsPerBank int
	// InitialBalance seeds every account (default 1000).
	InitialBalance int
	// Scenario, when non-nil, replaces the bank workload: every node hosts
	// the scenario's schema and topology instead (Top stays nil). The same
	// instance is shared across nodes — Build is deterministic and resets
	// itself, so each node's replica derives identical IDs, and Restart
	// rebuilds the same boot topology.
	Scenario workload.Scenario
	// Replicate enables the replicated ownership-metadata control plane on
	// every node: runtime structural mutations are sequenced through the
	// authoritative store's mutation log instead of staying process-local.
	Replicate bool
	// NodeDefaults, when non-nil, is applied to every node Config before
	// ID/Runtime/stores are filled in (timeouts, hop budget, learning).
	NodeDefaults *Config
	// EnableOps gives every node its own ops.Registry (admin-plane metrics,
	// events, traces), reachable via Node.Ops.
	EnableOps bool
}

// Deployment is a set of in-process nodes attached to one mesh.
type Deployment struct {
	// Nodes in ID order (Nodes[0] is node 1).
	Nodes []*Node
	// Top is the replicated bank topology (identical on every node); nil
	// when the deployment hosts a Topology.Scenario instead.
	Top *BankTopology
	// Scenario is the hosted scenario workload (Topology.Scenario).
	Scenario workload.Scenario
	// Stores[i] is node i+1's local in-memory store; only the store
	// node's is authoritative (all unauthoritative with StoreParts).
	Stores []*cloudstore.Store
	// StoreServers are the dedicated store-replica processes, in partition
	// order: [p0 replica 0 (boot primary), p0 replica 1, p0 replica 2,
	// p1 replica 0, ...] — StoreRF per partition. Empty without
	// Topology.StoreParts.
	StoreServers []*StoreServer
	// StoreBackends are the backends behind StoreServers, same order. The
	// deployment owns them (closed by Close); they outlive a killed server
	// so chaos tests can inspect or re-serve them.
	StoreBackends []cloudstore.Backend
}

// StoreServerFor returns the deployed store server at the given mesh
// address (nil if none or already removed).
func (d *Deployment) StoreServerFor(id transport.NodeID) *StoreServer {
	for _, s := range d.StoreServers {
		if s != nil && s.ID() == id {
			return s
		}
	}
	return nil
}

// storePartitions derives the StorePartition list the topology implies.
func (top Topology) storePartitions() []StorePartition {
	parts := make([]StorePartition, top.StoreParts)
	for p := 0; p < top.StoreParts; p++ {
		ids := make([]transport.NodeID, StoreRF)
		for r := 0; r < StoreRF; r++ {
			ids[r] = StoreIDBase + transport.NodeID(StoreRF*p+r+1)
		}
		parts[p] = StorePartition{Replicas: ids}
	}
	return parts
}

// withDefaults fills the Topology defaults shared by Deploy and Restart —
// one place, so a restarted node always rebuilds the same boot topology as
// its original incarnation.
func (top Topology) withDefaults() Topology {
	if top.Profile.Name == "" {
		top.Profile = cluster.M3Large
	}
	if top.StoreNode == 0 {
		top.StoreNode = 1
	}
	if top.AccountsPerBank <= 0 {
		top.AccountsPerBank = 4
	}
	if top.InitialBalance == 0 {
		top.InitialBalance = 1000
	}
	return top
}

// Deploy builds and starts an in-process deployment on mesh. Every node
// replays the same deterministic construction: same schema, same cluster,
// same bank topology — so IDs and placements agree without coordination,
// exactly like N processes launched from the same binary and flags.
func Deploy(mesh transport.Mesh, top Topology) (*Deployment, error) {
	if top.Nodes <= 0 {
		return nil, fmt.Errorf("node: deployment needs at least one node")
	}
	top = top.withDefaults()
	d := &Deployment{}
	// Store servers come up before any node: nodes with Replicate catch up
	// from the store during Start, so the plane must already be serving.
	if top.StoreParts > 0 {
		for p := 0; p < top.StoreParts; p++ {
			for r := 0; r < StoreRF; r++ {
				spec := top.StoreBackend
				if spec == "" {
					spec = "memory"
				} else if name, arg, ok := diskSpec(spec); ok {
					spec = fmt.Sprintf("%s:%s/p%d-r%d", name, arg, p, r)
				}
				be, err := cloudstore.Open(spec)
				if err != nil {
					d.Close()
					return nil, fmt.Errorf("store backend %q: %w", spec, err)
				}
				srv, err := ServeStore(mesh, StoreIDBase+transport.NodeID(StoreRF*p+r+1), be)
				if err != nil {
					be.Close()
					d.Close()
					return nil, err
				}
				d.StoreServers = append(d.StoreServers, srv)
				d.StoreBackends = append(d.StoreBackends, be)
			}
		}
	}
	for i := 1; i <= top.Nodes; i++ {
		n, bank, store, err := buildNode(mesh, top, transport.NodeID(i))
		if err != nil {
			d.Close()
			return nil, err
		}
		d.Nodes = append(d.Nodes, n)
		d.Stores = append(d.Stores, store)
		if d.Top == nil {
			d.Top = bank
		}
	}
	d.Scenario = top.Scenario
	return d, nil
}

// buildNode constructs one node's full replica and attaches it.
func buildNode(mesh transport.Mesh, top Topology, id transport.NodeID) (*Node, *BankTopology, *cloudstore.Store, error) {
	net := transport.NewSim(top.NetCfg)
	cl := cluster.New(net)
	for i := 0; i < top.Nodes; i++ {
		cl.AddServer(top.Profile)
	}
	rtCfg := core.DefaultConfig()
	rtCfg.ChargeClientHops = false
	if top.Runtime != nil {
		rtCfg = *top.Runtime
	}
	s := BankSchema()
	if top.Scenario != nil {
		s = top.Scenario.Schema()
	}
	if err := s.Freeze(); err != nil {
		return nil, nil, nil, err
	}
	rt, err := core.New(s, ownership.NewGraph(), cl, rtCfg)
	if err != nil {
		return nil, nil, nil, err
	}
	var bank *BankTopology
	if top.Scenario != nil {
		if err := top.Scenario.Build(rt); err != nil {
			return nil, nil, nil, fmt.Errorf("scenario %s on node %v: %w", top.Scenario.Name(), id, err)
		}
	} else {
		bank, err = BuildBank(rt, top.AccountsPerBank, top.InitialBalance)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	store := cloudstore.New()
	cfg := Config{}
	if top.NodeDefaults != nil {
		cfg = *top.NodeDefaults
	}
	cfg.ID = id
	cfg.Runtime = rt
	cfg.LocalStore = store
	if top.StoreParts > 0 {
		cfg.StoreReplicas = top.storePartitions()
	} else {
		cfg.StoreNode = top.StoreNode
	}
	cfg.Manager = top.Manager
	if top.EnableOps {
		cfg.Ops = ops.NewRegistry(0)
	}
	if top.Replicate {
		cfg.Replicate = true
		for i := 1; i <= top.Nodes; i++ {
			cfg.Peers = append(cfg.Peers, transport.NodeID(i))
		}
	}
	n, err := Start(mesh, cfg)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("start node %v: %w", id, err)
	}
	return n, bank, store, nil
}

// Restart rebuilds the node with the given mesh ID from scratch — a fresh
// deterministic startup replica, like a crashed process relaunched from the
// same binary and flags — and re-attaches it to the mesh. The previous
// incarnation must have been closed (Close + Runtime().Close()). With
// Topology.Replicate the restarted node replays the mutation log before it
// serves, which is how a rejoining process recovers runtime-created
// topology it was not alive to apply.
func (d *Deployment) Restart(mesh transport.Mesh, top Topology, id transport.NodeID) (*Node, error) {
	top = top.withDefaults()
	if top.StoreParts == 0 && id == top.StoreNode {
		return nil, fmt.Errorf("node %v: restarting the store node would lose the log", id)
	}
	n, _, store, err := buildNode(mesh, top, id)
	if err != nil {
		return nil, err
	}
	for i := range d.Nodes {
		if d.Nodes[i] != nil && d.Nodes[i].ID() == id {
			d.Nodes[i] = n
			d.Stores[i] = store
		}
	}
	return n, nil
}

// Node returns the node with the given mesh ID.
func (d *Deployment) Node(id transport.NodeID) *Node {
	for _, n := range d.Nodes {
		if n != nil && n.ID() == id {
			return n
		}
	}
	return nil
}

// WaitReady pings every node from every other until the deployment is fully
// meshed or the timeout elapses.
func (d *Deployment) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, from := range d.Nodes {
		for _, to := range d.Nodes {
			if from == to {
				continue
			}
			for {
				if err := from.Ping(to.ID()); err == nil {
					break
				} else if time.Now().After(deadline) {
					return fmt.Errorf("node %v unreachable from %v: %w", to.ID(), from.ID(), err)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
	}
	return nil
}

// Close detaches every node and drains its runtime, then tears down the
// store plane (servers detached, backends closed).
func (d *Deployment) Close() {
	for _, n := range d.Nodes {
		if n == nil {
			continue
		}
		_ = n.Close()
		n.Runtime().Close()
	}
	for _, s := range d.StoreServers {
		if s != nil {
			_ = s.Close()
		}
	}
	for _, be := range d.StoreBackends {
		if be != nil {
			_ = be.Close()
		}
	}
}

// diskSpec splits a journaling-backend spec ("disk:<dir>" or
// "disk+fsync:<dir>") into its backend name and directory, reporting
// whether the spec is one. Both variants get per-replica directory
// suffixes so replicas never share a journal.
func diskSpec(spec string) (name, dir string, ok bool) {
	i := strings.IndexByte(spec, ':')
	if i <= 0 {
		return "", "", false
	}
	if n := spec[:i]; n == "disk" || n == "disk+fsync" {
		return n, spec[i+1:], true
	}
	return "", "", false
}
