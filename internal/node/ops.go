package node

// The node's half of the observability plane (internal/ops): registerOps
// wires every subsystem the node owns — its own submit/forward/batch
// counters and latency histograms, the runtime, the transport mux, the
// replication plane, the migration engine, and the store plane — onto the
// process registry, all pull-based so scraping merges the striped
// primitives on read and the hot path pays nothing. emit/span are the event
// hooks the handlers call; both are no-ops when the plane is off.

import (
	"errors"
	"strconv"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/ops"
	"aeon/internal/ownership"
	"aeon/internal/transport"
)

// Ops returns the node's observability registry (nil when the plane is off).
func (n *Node) Ops() *ops.Registry { return n.ops }

var errNodeShutdown = errors.New("node shut down")

func (n *Node) registerOps() {
	reg := n.ops

	reg.Counter("aeon_node_submits_executed_total",
		"Submitted events this node executed locally.", nil, n.executed.Load)
	reg.Counter("aeon_node_submits_forwarded_total",
		"Submits this node forwarded to the hosting peer.", nil, n.forwarded.Load)
	reg.Counter("aeon_node_batch_frames_total",
		"Batch submit frames this node handled.", nil, n.batches.Load)
	reg.Counter("aeon_node_batch_events_total",
		"Events carried by handled batch frames.", nil, n.batchEvents.Load)
	reg.Counter("aeon_node_transfers_in_total",
		"Migration state transfers installed on this node.", nil, n.transfersIn.Load)
	reg.Counter("aeon_node_transfers_out_total",
		"Migration state transfers shipped from this node.", nil, n.transfersOut.Load)
	reg.Histogram("aeon_node_submit_seconds",
		"Handler latency of locally executed submit frames.", nil, &n.submitLat)
	reg.Histogram("aeon_node_forward_seconds",
		"Round-trip latency of forwarded submit frames.", nil, &n.forwardLat)
	reg.Histogram("aeon_node_batch_seconds",
		"Handler latency of batch submit frames.", nil, &n.batchLat)
	reg.Readiness("node", func() error {
		select {
		case <-n.shutdownCh:
			return errNodeShutdown
		default:
			return nil
		}
	})

	n.rt.RegisterOps(reg)

	// Transport mux internals are process-wide atomics (one node per
	// process in real deployments).
	reg.Counter("aeon_mux_dropped_responses_total",
		"Late or duplicated mux responses dropped by the slot-table generation check.", nil,
		func() uint64 { return transport.ReadMuxStats().DroppedResponses })
	reg.Gauge("aeon_mux_slots_in_use",
		"Occupied mux completion slots across open streams.", nil,
		func() float64 { return float64(transport.ReadMuxStats().SlotsInUse) })
	reg.Gauge("aeon_mux_streams_open",
		"Live mux streams in this process.", nil,
		func() float64 { return float64(transport.ReadMuxStats().StreamsOpen) })

	if n.plane != nil {
		reg.Gauge("aeon_replication_applied_seq",
			"Mutation-log sequence applied by the local replica.", nil,
			func() float64 { return float64(n.plane.Applied()) })
		reg.Gauge("aeon_replication_head_seq",
			"Highest mutation-log sequence this replica knows exists.", nil,
			func() float64 { return float64(n.plane.Head()) })
		reg.Gauge("aeon_replication_lag",
			"Known mutation-log records not yet applied locally (head - applied).", nil,
			func() float64 { return float64(n.plane.Head() - n.plane.Applied()) })
		reg.Counter("aeon_replication_appends_total",
			"Mutation-log records appended by this node.", nil, n.plane.Appends)
		reg.Counter("aeon_replication_conflicts_total",
			"CAS append conflicts (sequence races lost and retried).", nil, n.plane.Conflicts)
		reg.Counter("aeon_replication_applies_total",
			"Mutation-log records applied by this replica.", nil, n.plane.Applies)
		reg.Counter("aeon_replication_notifies_total",
			"Replicate-notify hints received.", nil, n.plane.Notified)
		reg.Readiness("replication", n.plane.LastError)
	}

	eng := n.mgr.Engine()
	reg.Counter("aeon_migration_groups_total",
		"Completed group migrations.", nil, eng.Groups.Value)
	reg.Counter("aeon_migration_members_total",
		"Contexts moved by group migrations.", nil, eng.Members.Value)
	reg.Counter("aeon_migration_stop_windows_total",
		"Group stop windows taken.", nil, eng.StopWindows.Value)
	reg.Counter("aeon_migration_stop_retries_total",
		"Preempted group stop attempts.", nil, eng.StopRetries.Value)
	reg.Counter("aeon_migration_recovered_total",
		"Groups rolled forward by WAL recovery.", nil, eng.Recovered.Value)
	reg.Counter("aeon_migration_bytes_moved_total",
		"State bytes shipped by migrations.", nil, eng.BytesMoved.Value)
	reg.Histogram("aeon_migration_group_seconds",
		"Wall time per group migration.", nil, &eng.GroupTime)
	reg.Histogram("aeon_migration_stop_seconds",
		"Full-stop window duration per group migration (event unavailability).", nil, &eng.StopTime)

	if part, ok := n.store.(*cloudstore.Partitioned); ok {
		for i := 0; i < part.Parts(); i++ {
			rep, ok := part.Partition(i).(*cloudstore.Replicated)
			if !ok {
				continue
			}
			lbl := ops.Labels{"part": strconv.Itoa(rep.Part())}
			reg.Gauge("aeon_store_fence_epoch",
				"Fence epoch of this node's view of the partition.", lbl,
				func() float64 { e, _ := rep.View(); return float64(e) })
			reg.Counter("aeon_store_fence_advances_total",
				"Fence-epoch advances (failovers) this node observed.", lbl, rep.FenceAdvances)
			reg.Counter("aeon_store_quorum_failures_total",
				"Writes and fence spreads refused for lack of a replica majority.", lbl, rep.QuorumFailures)
			rep.SetOnFenceAdvance(func(partIdx int, epoch uint64) {
				reg.Emit("store.fence_advance", map[string]any{
					"node": int64(n.id), "part": partIdx, "epoch": epoch,
				})
			})
		}
	}
}

// emit publishes a structural event when the ops plane is on.
func (n *Node) emit(typ string, fields map[string]any) {
	if n.ops != nil {
		n.ops.Emit(typ, fields)
	}
}

// span records one per-hop trace span for a traced frame; a no-op for
// untraced frames or with the plane off, so the hot path never builds the
// fields map.
func (n *Node) span(trace uint64, action string, target ownership.ID, method string, hop int, d time.Duration) {
	if n.ops == nil || trace == 0 {
		return
	}
	n.ops.Span(trace, int64(n.id), action, uint64(target), method, hop, d)
}
