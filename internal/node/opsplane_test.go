package node

import (
	"strings"
	"testing"

	"aeon/internal/transport"
)

// TestOpsPlaneNodeExposition pins the node-side instrumentation sweep: after
// local and forwarded traffic, every subsystem family the ops plane promises
// shows up in one Prometheus scrape of a node registry, the executed/
// forwarded counters are live, and health reports every subsystem ready.
func TestOpsPlaneNodeExposition(t *testing.T) {
	d := deployOps(t, 2)
	n1, n2 := d.Nodes[0], d.Nodes[1]

	if _, err := n1.Submit(d.Top.Accounts[0][0], "deposit", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := n1.Submit(d.Top.Accounts[1][0], "deposit", 1); err != nil {
		t.Fatal(err) // bank 2 is hosted on node 2: crosses the mesh
	}

	var b strings.Builder
	if err := n1.Ops().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, family := range []string{
		"aeon_node_submits_executed_total",
		"aeon_node_submits_forwarded_total",
		"aeon_node_batch_frames_total",
		"aeon_node_submit_seconds",
		"aeon_node_forward_seconds",
		"aeon_event_latency_seconds",
		"aeon_events_completed_total",
		"aeon_exec_queue_depth",
		"aeon_mux_dropped_responses_total",
		"aeon_migration_groups_total",
		"aeon_migration_stop_seconds",
	} {
		if !strings.Contains(out, "# TYPE "+family) {
			t.Fatalf("node exposition missing family %s:\n%s", family, out)
		}
	}
	// Node 1 executed its own submit in-process (no frame, no counter); the
	// cross-mesh one shows as a forward here and an execute on node 2.
	if !strings.Contains(out, "aeon_node_submits_forwarded_total 1") {
		t.Fatalf("forwarded counter not live:\n%s", out)
	}
	if ok, subs := n1.Ops().Health(); !ok {
		t.Fatalf("node 1 unhealthy: %v", subs)
	}
	if ok, _ := n2.Ops().Health(); !ok {
		t.Fatal("node 2 unhealthy")
	}

	// The forward landed on node 2's latency histogram via its registry too.
	var b2 strings.Builder
	if err := n2.Ops().WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), "aeon_node_submits_executed_total 1") {
		t.Fatalf("node 2 executed counter not live:\n%s", b2.String())
	}
}

// TestOpsPlaneMigrationEvents pins the structural event feed: a commanded
// mesh migration leaves migration.start and migration.commit on the source
// node's feed and transfer.install on the destination's.
func TestOpsPlaneMigrationEvents(t *testing.T) {
	d := deployOps(t, 2)
	n1, n2 := d.Nodes[0], d.Nodes[1]
	bank2 := d.Top.Banks[1] // hosted on node 2

	if err := n1.MigrateRemote(n2.ID(), bank2, 1); err != nil {
		t.Fatalf("commanded migration: %v", err)
	}

	types := func(n *Node) map[string]int {
		events, _, _, _ := n.Ops().EventsSince(0)
		m := map[string]int{}
		for _, ev := range events {
			m[ev.Type]++
		}
		return m
	}
	src, dst := types(n2), types(n1)
	if src["migration.start"] == 0 || src["migration.commit"] == 0 {
		t.Fatalf("source feed missing migration events: %v", src)
	}
	if dst["transfer.install"] == 0 {
		t.Fatalf("destination feed missing transfer.install: %v", dst)
	}
	// The stop-window histogram saw the migration's full-stop.
	if eng := n2.mgr.Engine(); eng.StopTime.Count() == 0 {
		t.Fatal("stop-window histogram empty after migration")
	}
}

// deployOps builds an n-node in-memory deployment with per-node registries.
func deployOps(t *testing.T, n int) *Deployment {
	t.Helper()
	mesh := transport.NewInMemMesh(transport.NewSim(transport.SimConfig{}))
	d, err := Deploy(mesh, Topology{Nodes: n, EnableOps: true})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	t.Cleanup(d.Close)
	return d
}
