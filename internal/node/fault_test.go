package node

// Fault injection at the mesh layer: node crashes, partitions, and
// dropped/duplicated calls. The invariants under test: operations fail fast
// with typed errors instead of wedging, queued work keeps draining, and the
// eManager's checkpoint-based failure recovery still rehosts lost contexts
// from the authoritative store after a node dies.

import (
	"errors"
	"testing"
	"time"

	"aeon/internal/transport"
)

// deployFaulty builds a 2-node deployment over a fault-injecting wrapper of
// the in-memory mesh (itself over a partitionable simulated network).
func deployFaulty(t *testing.T, nodes int) (*Deployment, *transport.FaultyMesh, *transport.SimNetwork) {
	t.Helper()
	net := transport.NewSim(transport.SimConfig{})
	fm := transport.NewFaultyMesh(transport.NewInMemMesh(net))
	d, err := Deploy(fm, Topology{Nodes: nodes})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	t.Cleanup(d.Close)
	return d, fm, net
}

func TestDroppedCallFailsTypedNotWedged(t *testing.T) {
	d, fm, _ := deployFaulty(t, 2)
	acct := d.Top.Accounts[1][0]

	fm.Drop(1, 2)
	done := make(chan error, 1)
	go func() {
		_, err := d.Nodes[0].Submit(acct, "deposit", 10)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, transport.ErrDropped) {
			t.Fatalf("err = %v, want ErrDropped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dropped call wedged the submitter")
	}

	// The link heals and the same submit succeeds — nothing leaked.
	fm.Heal(1, 2)
	res, err := d.Nodes[0].Submit(acct, "deposit", 10)
	if err != nil || res.(int) != 1010 {
		t.Fatalf("post-heal submit = %v err=%v", res, err)
	}
}

func TestPartitionedNetworkFailsTyped(t *testing.T) {
	d, _, net := deployFaulty(t, 2)
	acct := d.Top.Accounts[1][0]

	net.Partition(1, 2)
	_, err := d.Nodes[0].Submit(acct, "deposit", 10)
	if !errors.Is(err, transport.ErrPartitioned) {
		t.Fatalf("err = %v, want ErrPartitioned", err)
	}
	net.Heal(1, 2)
	if _, err := d.Nodes[0].Submit(acct, "deposit", 10); err != nil {
		t.Fatalf("post-heal: %v", err)
	}
}

func TestDuplicatedCallDoesNotWedgeAndReadsStayCorrect(t *testing.T) {
	d, fm, _ := deployFaulty(t, 2)
	acct := d.Top.Accounts[1][0]

	// A duplicated readonly call executes twice on the owner; the caller
	// sees one correct response and the system stays consistent.
	fm.Duplicate(1, 2, 1)
	res, err := d.Nodes[0].Submit(acct, "balance")
	if err != nil || res.(int) != 1000 {
		t.Fatalf("duplicated balance = %v err=%v", res, err)
	}
	// A duplicated mutating call is at-least-once delivery: the owner
	// applies it twice. The caller still gets a response and nothing
	// wedges — the visible cost of retransmission without event IDs, which
	// is why only the transport duplicates here, never the node layer.
	fm.Duplicate(1, 2, 1)
	if _, err := d.Nodes[0].Submit(acct, "deposit", 5); err != nil {
		t.Fatalf("duplicated deposit err=%v", err)
	}
	res, err = d.Nodes[1].Submit(acct, "balance")
	if err != nil {
		t.Fatal(err)
	}
	if res.(int) != 1010 { // 1000 + 2×5: both deliveries applied
		t.Fatalf("balance after duplicated deposit = %v, want 1010", res)
	}
}

func TestCrashedNodeFailsFastAndQueuedWorkDrains(t *testing.T) {
	d, _, _ := deployFaulty(t, 2)
	n1 := d.Nodes[0]
	remote := d.Top.Accounts[1][0]
	local := d.Top.Accounts[0][0]

	// Queue asynchronous work against both banks, then crash node 2.
	fLocal := n1.Runtime().SubmitAsync(local, "deposit", 1)
	if err := d.Nodes[1].Close(); err != nil {
		t.Fatal(err)
	}

	// Remote submits fail typed (the mesh no longer knows the node), fast.
	done := make(chan error, 1)
	go func() {
		_, err := n1.Submit(remote, "deposit", 1)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, transport.ErrNodeUnknown) {
			t.Fatalf("err = %v, want ErrNodeUnknown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("submit to crashed node wedged")
	}

	// Local work queued before the crash still completes.
	if _, err := fLocal.Wait(); err != nil {
		t.Fatalf("local async work: %v", err)
	}
	if res, err := n1.Submit(local, "balance"); err != nil || res.(int) != 1001 {
		t.Fatalf("local balance = %v err=%v", res, err)
	}
}

// TestTransferSurvivesLostAck pins the split-brain fix: the destination
// commits a migration transfer (state install + directory remap) inside the
// handler, so a lost acknowledgment leaves the source unsure whether the
// group moved. The source must probe the destination and, on "committed",
// complete its own remap — never abort into a state where both processes
// consider themselves authoritative.
func TestTransferSurvivesLostAck(t *testing.T) {
	net := transport.NewSim(transport.SimConfig{})
	fm := transport.NewFaultyMesh(transport.NewInMemMesh(net))
	// Store on node 2, so the only 2→1 calls during the migration are the
	// transfer and its commit probe.
	d, err := Deploy(fm, Topology{Nodes: 2, StoreNode: 2})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	t.Cleanup(d.Close)
	n1, n2 := d.Nodes[0], d.Nodes[1]
	bank2 := d.Top.Banks[1]
	acct := d.Top.Accounts[1][0]
	if _, err := n2.Submit(acct, "deposit", 500); err != nil {
		t.Fatal(err)
	}

	// The transfer's ack is lost; its commit probe goes through.
	fm.DropReply(2, 1, 1)
	if err := n1.MigrateRemote(n2.ID(), bank2, 1); err != nil {
		t.Fatalf("migration must resolve the lost ack via the commit probe: %v", err)
	}

	// One authority: both replicas agree the group lives on server 1, and
	// both sides serve the transferred balance.
	for i, n := range d.Nodes {
		if srv, _ := n.Runtime().Directory().Locate(bank2); srv != 1 {
			t.Fatalf("node %d maps bank2 to %v, want 1", i+1, srv)
		}
	}
	if res, err := n1.Submit(acct, "balance"); err != nil || res.(int) != 1500 {
		t.Fatalf("node1 balance = %v err=%v, want 1500", res, err)
	}
	if res, err := n2.Submit(acct, "balance"); err != nil || res.(int) != 1500 {
		t.Fatalf("node2 balance = %v err=%v, want 1500", res, err)
	}
	// The journal cleared: the migration completed, it was not abandoned.
	if keys, _ := d.Stores[1].List("wal/migration/"); len(keys) != 0 {
		t.Fatalf("migration WAL left behind: %v", keys)
	}
}

// TestFailureRecoveryRehostsFromCheckpointsAfterNodeCrash is the paper's
// § 5.3 story across processes: node 2 checkpoints its server through the
// mesh into the authoritative store, crashes, and the surviving node's
// eManager re-homes the lost contexts from those checkpoints.
func TestFailureRecoveryRehostsFromCheckpointsAfterNodeCrash(t *testing.T) {
	d, _, _ := deployFaulty(t, 2)
	n1, n2 := d.Nodes[0], d.Nodes[1]
	acct := d.Top.Accounts[1][0]

	// Real money lands on node 2, then its server checkpoints over the mesh
	// (the writes go through RemoteStore into node 1's store).
	if _, err := n2.Submit(acct, "deposit", 500); err != nil {
		t.Fatal(err)
	}
	if _, err := n2.Manager().CheckpointServer(2); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if keys, _ := d.Stores[0].List("snapshot/"); len(keys) == 0 {
		t.Fatal("no checkpoints reached the authoritative store")
	}

	// Node 2 dies.
	if err := n2.Close(); err != nil {
		t.Fatal(err)
	}

	// The survivor re-homes server 2's contexts from checkpoints.
	report, err := n1.Manager().RecoverServerFailure(2)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(report.Lost) == 0 {
		t.Fatal("recovery found nothing to re-home")
	}
	found := false
	for _, id := range report.Restored {
		if id == acct {
			found = true
		}
	}
	if !found {
		t.Fatalf("account %v not restored from checkpoint (restored=%v reset=%v)",
			acct, report.Restored, report.Reset)
	}

	// The restored account serves events on node 1 with the checkpointed
	// balance.
	res, err := n1.Submit(acct, "balance")
	if err != nil {
		t.Fatalf("post-recovery balance: %v", err)
	}
	if res.(int) != 1500 {
		t.Fatalf("recovered balance = %v, want 1500", res)
	}
}

// TestTransferResidualConvergesViaWALRecovery is the two-phase migration's
// worst residual: the destination installs the group and commits its remap,
// but the transfer ack is lost AND the destination is unreachable for the
// commit probe, so the source aborts in doubt — destination authoritative
// per its own directory, source still authoritative per its own, and the
// migration WAL entry pinned. Healing the link and running WAL recovery on
// the source must converge the split to exactly one authority.
func TestTransferResidualConvergesViaWALRecovery(t *testing.T) {
	net := transport.NewSim(transport.SimConfig{})
	fm := transport.NewFaultyMesh(transport.NewInMemMesh(net))
	// Store on node 2: the only 2→1 calls during the migration are the
	// transfer and its commit probe, so a reply-drop budget of two kills
	// exactly those.
	d, err := Deploy(fm, Topology{Nodes: 2, StoreNode: 2})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	t.Cleanup(d.Close)
	n1, n2 := d.Nodes[0], d.Nodes[1]
	bank2 := d.Top.Banks[1]
	acct := d.Top.Accounts[1][0]
	if _, err := n2.Submit(acct, "deposit", 500); err != nil {
		t.Fatal(err)
	}

	// Both the transfer ack and the commit-probe reply vanish: the
	// destination commits, the source cannot learn that.
	fm.DropReply(2, 1, 2)
	if err := n1.MigrateRemote(n2.ID(), bank2, 1); err == nil {
		t.Fatal("migration must abort in doubt when ack and probe are both lost")
	}

	// The split is real while the link is down: each side claims the group.
	net.Partition(2, 1)
	net.Partition(1, 2)
	if srv, _ := n1.Runtime().Directory().Locate(bank2); srv != 1 {
		t.Fatalf("destination should have committed its remap, locates %v", srv)
	}
	if srv, _ := n2.Runtime().Directory().Locate(bank2); srv != 2 {
		t.Fatalf("source should still claim the group in doubt, locates %v", srv)
	}
	if keys, _ := d.Stores[1].List("wal/migration/"); len(keys) == 0 {
		t.Fatal("aborted migration must leave its WAL entry pinned")
	}

	// Heal and recover: the source's WAL replay re-runs the protocol,
	// discovers the committed transfer, and finishes its own remap.
	net.Heal(2, 1)
	net.Heal(1, 2)
	if err := n2.Manager().Recover(); err != nil {
		t.Fatalf("WAL recovery: %v", err)
	}
	for i, n := range d.Nodes {
		if srv, _ := n.Runtime().Directory().Locate(bank2); srv != 1 {
			t.Fatalf("node %d maps bank2 to %v after recovery, want exactly one authority on 1", i+1, srv)
		}
	}
	if res, err := n1.Submit(acct, "balance"); err != nil || res.(int) != 1500 {
		t.Fatalf("node1 balance = %v err=%v, want 1500", res, err)
	}
	if res, err := n2.Submit(acct, "balance"); err != nil || res.(int) != 1500 {
		t.Fatalf("node2 balance = %v err=%v, want 1500", res, err)
	}
	if keys, _ := d.Stores[1].List("wal/migration/"); len(keys) != 0 {
		t.Fatalf("migration WAL left behind after recovery: %v", keys)
	}
}
