package node

// The deterministic bank workload hosted by multi-process deployments: one
// Bank context per server, each owning a row of Account contexts, built in
// the same order on every node so context IDs and placements agree across
// processes without any coordination. It is the quickstart example's schema,
// made reproducible enough to serve as the node smoke/bench workload.

import (
	"errors"
	"fmt"

	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/ownership"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

// BankAccount is the account state; exported (and wire-registered) so it
// can ride migration state transfer and checkpoints across processes.
type BankAccount struct {
	Balance int
}

func init() {
	schema.RegisterWireType(&BankAccount{})
}

// ErrInsufficientFunds is returned by withdraw/transfer when the source
// account cannot cover the amount.
var ErrInsufficientFunds = errors.New("bank: insufficient funds")

// BankSchema declares the bank contextclasses (quickstart's schema): Bank
// owns Accounts; transfer atomically moves money, audit is a readonly sweep.
func BankSchema() *schema.Schema {
	s := schema.New()
	acc := s.MustDeclareClass("Account", func() any { return &BankAccount{} })
	acc.MustDeclareMethod("deposit", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*BankAccount)
		st.Balance += args[0].(int)
		return st.Balance, nil
	})
	acc.MustDeclareMethod("withdraw", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*BankAccount)
		amt := args[0].(int)
		if amt > st.Balance {
			return nil, ErrInsufficientFunds
		}
		st.Balance -= amt
		return st.Balance, nil
	})
	acc.MustDeclareMethod("balance", func(call schema.Call, args []any) (any, error) {
		return call.State().(*BankAccount).Balance, nil
	}, schema.RO())

	bank := s.MustDeclareClass("Bank", nil)
	bank.MustDeclareMethod("open", func(call schema.Call, args []any) (any, error) {
		// Runtime topology mutation: create a fresh account owned by this
		// bank and seed it. In a replicated deployment the creation is
		// sequenced through the fleet-wide mutation log on whichever node
		// executes this event, so the returned ID is immediately
		// submittable from every other node.
		id, err := call.NewContext("Account", call.Self())
		if err != nil {
			return nil, err
		}
		if initial := args[0].(int); initial != 0 {
			if _, err := call.Sync(id, "deposit", initial); err != nil {
				return nil, err
			}
		}
		return id, nil
	}, schema.MayCall("Account", "deposit"))
	bank.MustDeclareMethod("transfer", func(call schema.Call, args []any) (any, error) {
		from, to, amt := args[0].(ownership.ID), args[1].(ownership.ID), args[2].(int)
		if _, err := call.Sync(from, "withdraw", amt); err != nil {
			return nil, err
		}
		return call.Sync(to, "deposit", amt)
	}, schema.MayCall("Account", "withdraw"), schema.MayCall("Account", "deposit"))
	bank.MustDeclareMethod("audit", func(call schema.Call, args []any) (any, error) {
		accounts, err := call.Children("Account")
		if err != nil {
			return nil, err
		}
		total := 0
		for _, a := range accounts {
			b, err := call.Sync(a, "balance")
			if err != nil {
				return nil, err
			}
			total += b.(int)
		}
		return total, nil
	}, schema.RO(), schema.MayCall("Account", "balance"))
	return s
}

// BankTopology records the deterministic placement of the bank workload.
type BankTopology struct {
	// Banks[i] is the Bank placed on server i+1.
	Banks []ownership.ID
	// Accounts[i] are Banks[i]'s accounts, in creation order.
	Accounts [][]ownership.ID
}

// BuildBank populates rt with one Bank per cluster server, each owning
// accountsPerBank accounts seeded with initialBalance. Creation order is
// fixed (server order, then account index), so every node that runs it
// against an identically built cluster derives identical context IDs —
// the agreement multi-process routing relies on.
func BuildBank(rt *core.Runtime, accountsPerBank, initialBalance int) (*BankTopology, error) {
	top := &BankTopology{}
	for _, srv := range rt.Cluster().Servers() {
		bankID, err := rt.CreateContextOn(srv.ID(), "Bank")
		if err != nil {
			return nil, fmt.Errorf("bank on %v: %w", srv.ID(), err)
		}
		accounts := make([]ownership.ID, 0, accountsPerBank)
		for i := 0; i < accountsPerBank; i++ {
			a, err := rt.CreateContextOn(srv.ID(), "Account", bankID)
			if err != nil {
				return nil, fmt.Errorf("account %d on %v: %w", i, srv.ID(), err)
			}
			if initialBalance != 0 {
				if c, err := rt.Context(a); err == nil {
					c.SetState(&BankAccount{Balance: initialBalance})
				}
			}
			accounts = append(accounts, a)
		}
		top.Banks = append(top.Banks, bankID)
		top.Accounts = append(top.Accounts, accounts)
	}
	return top, nil
}

// SubmitFunc abstracts "submit an event" over node deployments and plain
// runtimes, so the same script drives both.
type SubmitFunc func(target ownership.ID, method string, args ...any) (any, error)

// RunBankScript replays one deterministic op sequence against the bank
// topology — deposits to every account (cross-bank, so submits from one
// node cross the mesh), an in-bank transfer, a failing transfer, and a
// final audit per bank — recording every outcome as a printable string. The
// multi-process smoke driver compares its output against a single-process
// run of the same script: the node layer must be semantically invisible.
func RunBankScript(submit SubmitFunc, top *BankTopology) []string {
	var out []string
	rec := func(v any, err error) {
		if err != nil {
			out = append(out, "err:"+err.Error())
		} else {
			out = append(out, fmt.Sprintf("%v", v))
		}
	}
	for b := range top.Banks {
		for i, acct := range top.Accounts[b] {
			rec(submit(acct, "deposit", 10*(b+1)+i))
		}
	}
	if len(top.Banks) > 0 && len(top.Accounts[0]) > 1 {
		rec(submit(top.Banks[0], "transfer", top.Accounts[0][0], top.Accounts[0][1], 30))
	}
	if len(top.Banks) > 1 && len(top.Accounts[1]) > 1 {
		rec(submit(top.Banks[1], "transfer", top.Accounts[1][0], top.Accounts[1][1], 1<<30)) // insufficient funds
	}
	for b := range top.Banks {
		rec(submit(top.Banks[b], "audit"))
	}
	return out
}

// RunBankDynamicScript replays one deterministic runtime-topology-churn
// sequence: open a fresh account at every bank (the creation executes on
// whichever node hosts the bank, so a multi-process driver exercises
// context creation from several processes), deposit into each new account
// by its returned ID, then audit every bank. Outcomes include the created
// context IDs, so diffing against a single-process run pins log-order ID
// assignment, not just balances.
func RunBankDynamicScript(submit SubmitFunc, top *BankTopology) []string {
	var out []string
	rec := func(v any, err error) {
		if err != nil {
			out = append(out, "err:"+err.Error())
		} else {
			out = append(out, fmt.Sprintf("%v", v))
		}
	}
	var opened []ownership.ID
	for b := range top.Banks {
		v, err := submit(top.Banks[b], "open", 100*(b+1))
		rec(v, err)
		if id, ok := v.(ownership.ID); err == nil && ok {
			opened = append(opened, id)
		}
	}
	for i, id := range opened {
		rec(submit(id, "deposit", 7*(i+1)))
	}
	for b := range top.Banks {
		rec(submit(top.Banks[b], "audit"))
	}
	return out
}

// BankOracle builds a fresh single-process runtime with the identical bank
// topology, replays the script on it, and returns (outcomes, per-bank audit
// totals). Multi-process drivers use it as the ground truth.
func BankOracle(nodes, accountsPerBank, initialBalance int) ([]string, *BankTopology, error) {
	cl := cluster.New(transport.NewSim(transport.SimConfig{}))
	for i := 0; i < nodes; i++ {
		cl.AddServer(cluster.M3Large)
	}
	s := BankSchema()
	if err := s.Freeze(); err != nil {
		return nil, nil, err
	}
	cfg := core.DefaultConfig()
	cfg.ChargeClientHops = false
	rt, err := core.New(s, ownership.NewGraph(), cl, cfg)
	if err != nil {
		return nil, nil, err
	}
	defer rt.Close()
	top, err := BuildBank(rt, accountsPerBank, initialBalance)
	if err != nil {
		return nil, nil, err
	}
	return RunBankScript(rt.Submit, top), top, nil
}

// BankDynamicOracle replays the static script and then the dynamic
// (topology-churn) script on a fresh single-process runtime and returns
// both outcome slices. A replicated multi-process deployment that drives
// the same two scripts in the same order must produce identical outcomes —
// including the runtime-created context IDs, since sequential submission
// makes log order equal submission order.
func BankDynamicOracle(nodes, accountsPerBank, initialBalance int) (static, dynamic []string, err error) {
	cl := cluster.New(transport.NewSim(transport.SimConfig{}))
	for i := 0; i < nodes; i++ {
		cl.AddServer(cluster.M3Large)
	}
	s := BankSchema()
	if err := s.Freeze(); err != nil {
		return nil, nil, err
	}
	cfg := core.DefaultConfig()
	cfg.ChargeClientHops = false
	rt, err := core.New(s, ownership.NewGraph(), cl, cfg)
	if err != nil {
		return nil, nil, err
	}
	defer rt.Close()
	top, err := BuildBank(rt, accountsPerBank, initialBalance)
	if err != nil {
		return nil, nil, err
	}
	return RunBankScript(rt.Submit, top), RunBankDynamicScript(rt.Submit, top), nil
}
