package node

import (
	"errors"
	"testing"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/core"
	"aeon/internal/transport"
)

// deploy builds an n-node in-memory-mesh deployment with the bank workload.
func deploy(t *testing.T, n int) *Deployment {
	t.Helper()
	mesh := transport.NewInMemMesh(transport.NewSim(transport.SimConfig{}))
	d, err := Deploy(mesh, Topology{Nodes: n})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestLocalSubmitDoesNotTouchTheMesh(t *testing.T) {
	d := deploy(t, 2)
	n1 := d.Nodes[0]
	acct := d.Top.Accounts[0][0] // bank 1's account, hosted on server 1

	res, err := n1.Submit(acct, "deposit", 50)
	if err != nil {
		t.Fatalf("local deposit: %v", err)
	}
	if res.(int) != 1050 {
		t.Fatalf("balance = %v, want 1050", res)
	}
	if n1.Forwarded() != 0 {
		t.Fatalf("local submit forwarded %d times", n1.Forwarded())
	}
}

func TestRemoteSubmitExecutesOnOwningNode(t *testing.T) {
	d := deploy(t, 2)
	n1, n2 := d.Nodes[0], d.Nodes[1]
	acct := d.Top.Accounts[1][0] // bank 2's account, hosted on server 2

	res, err := n1.Submit(acct, "deposit", 25)
	if err != nil {
		t.Fatalf("remote deposit: %v", err)
	}
	if res.(int) != 1025 {
		t.Fatalf("balance = %v, want 1025", res)
	}
	if n1.Forwarded() == 0 {
		t.Fatal("remote submit was not forwarded")
	}
	if n2.Executed() == 0 {
		t.Fatal("owning node executed nothing")
	}
	// Authoritative state lives on node 2; node 1's replica is untouched.
	c2, err := n2.Runtime().Context(acct)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.State().(*BankAccount).Balance; got != 1025 {
		t.Fatalf("node2 balance = %d, want 1025", got)
	}
	c1, err := n1.Runtime().Context(acct)
	if err != nil {
		t.Fatal(err)
	}
	if got := c1.State().(*BankAccount).Balance; got != 1000 {
		t.Fatalf("node1 replica balance = %d, want untouched 1000", got)
	}
}

func TestRemoteAuditMatchesSingleProcess(t *testing.T) {
	d := deploy(t, 2)
	n1 := d.Nodes[0]
	bank2 := d.Top.Banks[1]

	// A multi-context readonly event executed across the mesh must see the
	// same total a single-process deployment computes.
	if _, err := n1.Submit(d.Top.Accounts[1][1], "deposit", 111); err != nil {
		t.Fatal(err)
	}
	res, err := n1.Submit(bank2, "audit")
	if err != nil {
		t.Fatalf("remote audit: %v", err)
	}
	want := 4*1000 + 111
	if res.(int) != want {
		t.Fatalf("audit = %v, want %d", res, want)
	}
}

func TestSubmitUnknownContextTypedError(t *testing.T) {
	d := deploy(t, 2)
	_, err := d.Nodes[0].Submit(9999, "deposit", 1)
	if !errors.Is(err, core.ErrUnknownContext) {
		t.Fatalf("err = %v, want ErrUnknownContext", err)
	}
}

func TestRemoteStoreOps(t *testing.T) {
	d := deploy(t, 2)
	rs := d.Nodes[1].Store() // node 2 reaches node 1's store over the mesh
	if _, ok := rs.(*RemoteStore); !ok {
		t.Fatalf("node 2 store is %T, want *RemoteStore", rs)
	}

	v1, err := rs.Put("k", []byte("a"))
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	val, ver, err := rs.Get("k")
	if err != nil || string(val) != "a" || ver != v1 {
		t.Fatalf("get = %q v%d err=%v, want \"a\" v%d", val, ver, err, v1)
	}
	if _, _, err := rs.Get("missing"); !errors.Is(err, cloudstore.ErrNotFound) {
		t.Fatalf("get missing err = %v, want ErrNotFound", err)
	}
	if _, err := rs.CAS("k", v1+100, []byte("b")); !errors.Is(err, cloudstore.ErrVersionMismatch) {
		t.Fatalf("stale CAS err = %v, want ErrVersionMismatch", err)
	}
	if _, err := rs.CAS("k", v1, []byte("b")); err != nil {
		t.Fatalf("CAS: %v", err)
	}
	if _, err := rs.PutBatch(map[string][]byte{"x/1": []byte("1"), "x/2": []byte("2")}); err != nil {
		t.Fatalf("putbatch: %v", err)
	}
	keys, err := rs.List("x/")
	if err != nil || len(keys) != 2 {
		t.Fatalf("list = %v err=%v, want 2 keys", keys, err)
	}
	if err := rs.Delete("x/1"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := rs.Delete("x/1"); !errors.Is(err, cloudstore.ErrNotFound) {
		t.Fatalf("double delete err = %v, want ErrNotFound", err)
	}
	// Everything landed on node 1's authoritative store.
	if _, _, err := d.Stores[0].Get("k"); err != nil {
		t.Fatalf("authoritative store missing k: %v", err)
	}
	// Node 2's own local store was never written.
	if keys, _ := d.Stores[1].List(""); len(keys) != 0 {
		t.Fatalf("non-store node's local store has %v", keys)
	}
}

func TestRemoteStorePutBatchIsOneChargedWrite(t *testing.T) {
	d := deploy(t, 2)
	rs := d.Nodes[1].Store()
	_, w0 := d.Stores[0].Stats()
	if _, err := rs.PutBatch(map[string][]byte{"a": nil, "b": nil, "c": nil}); err != nil {
		t.Fatal(err)
	}
	_, w1 := d.Stores[0].Stats()
	if w1-w0 != 1 {
		t.Fatalf("batch cost %d charged writes, want 1", w1-w0)
	}
}

func TestPersistMappingJournalsIntoAuthoritativeStore(t *testing.T) {
	d := deploy(t, 2)
	if err := d.Nodes[1].Manager().PersistMapping(); err != nil {
		t.Fatalf("persist: %v", err)
	}
	keys, err := d.Stores[0].List("map/")
	if err != nil || len(keys) == 0 {
		t.Fatalf("authoritative store mapping keys = %v err=%v", keys, err)
	}
}

func TestMeshMigrationTransfersStateBetweenLiveNodes(t *testing.T) {
	d := deploy(t, 2)
	n1, n2 := d.Nodes[0], d.Nodes[1]
	bank2 := d.Top.Banks[1]
	acct := d.Top.Accounts[1][0]

	// Real balances live only on node 2 before the move.
	if _, err := n2.Submit(acct, "deposit", 500); err != nil {
		t.Fatal(err)
	}

	// Command the owning node to migrate its whole bank group onto server 1.
	if err := n1.MigrateRemote(n2.ID(), bank2, 1); err != nil {
		t.Fatalf("commanded migration: %v", err)
	}

	// Node 1 now executes events for the moved group locally, against the
	// transferred state.
	fwdBefore := n1.Forwarded()
	res, err := n1.Submit(acct, "balance")
	if err != nil {
		t.Fatalf("post-migration balance: %v", err)
	}
	if res.(int) != 1500 {
		t.Fatalf("transferred balance = %v, want 1500", res)
	}
	if n1.Forwarded() != fwdBefore {
		t.Fatal("post-migration local read still forwarded")
	}
	// Both directory replicas agree on the new placement.
	if srv, _ := n1.Runtime().Directory().Locate(bank2); srv != 1 {
		t.Fatalf("node1 locates bank2 on %v, want 1", srv)
	}
	if srv, _ := n2.Runtime().Directory().Locate(bank2); srv != 1 {
		t.Fatalf("node2 locates bank2 on %v, want 1", srv)
	}
	// The source keeps serving: its submits now forward to node 1.
	res, err = n2.Submit(acct, "balance")
	if err != nil || res.(int) != 1500 {
		t.Fatalf("source-side balance = %v err=%v, want 1500", res, err)
	}
	// NIC accounting landed on both endpoints of both replicas.
	for i, n := range d.Nodes {
		for _, srv := range []transport.NodeID{1, 2} {
			s, ok := n.Runtime().Cluster().Server(srv)
			if !ok {
				t.Fatalf("node %d missing server %v", i+1, srv)
			}
			if s.TransferBytes() == 0 {
				t.Fatalf("node %d server %v has no transfer bytes", i+1, srv)
			}
		}
	}
	// The migration journal cleared from the authoritative store.
	if keys, _ := d.Stores[0].List("wal/migration/"); len(keys) != 0 {
		t.Fatalf("migration WAL not cleared: %v", keys)
	}
}

func TestStaleNodeForwardsThenRepairsItsDirectory(t *testing.T) {
	d := deploy(t, 3)
	n1, n2, n3 := d.Nodes[0], d.Nodes[1], d.Nodes[2]
	bank2 := d.Top.Banks[1]
	acct := d.Top.Accounts[1][0]

	// Move bank 2's group from server 2 to server 3; node 1 is not told.
	if err := n1.MigrateRemote(n2.ID(), bank2, 3); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	// The command response carries no placement, so node 1 is genuinely
	// stale about the moved account.
	if srv, _ := n1.Runtime().Directory().Locate(acct); srv != 2 {
		t.Skipf("node1 already learned placement (%v); staleness scenario gone", srv)
	}

	// First call pays the forwarding hop: node1 → node2 (stale) → node3.
	n2fwd := n2.Forwarded()
	res, err := n1.Submit(acct, "balance")
	if err != nil || res.(int) != 1000 {
		t.Fatalf("stale-path balance = %v err=%v", res, err)
	}
	if n2.Forwarded() != n2fwd+1 {
		t.Fatalf("node2 forwarded %d times, want %d (the stale hop)", n2.Forwarded(), n2fwd+1)
	}
	// The response repaired node 1's cache for the account it touched: the
	// next call goes direct.
	if srv, _ := n1.Runtime().Directory().Locate(acct); srv != 3 {
		t.Fatalf("node1 did not learn new placement, still %v", srv)
	}
	if _, err := n1.Submit(acct, "balance"); err != nil {
		t.Fatal(err)
	}
	if n2.Forwarded() != n2fwd+1 {
		t.Fatalf("repaired node still routed through node2 (forwards=%d)", n2.Forwarded())
	}
	_ = n3
}

func TestShutdownFrame(t *testing.T) {
	d := deploy(t, 2)
	if err := d.Nodes[0].Shutdown(2); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case <-d.Nodes[1].Done():
	case <-time.After(time.Second):
		t.Fatal("shutdown frame did not close Done")
	}
}

func TestTCPDeploymentEndToEnd(t *testing.T) {
	// The full protocol over real TCP loopback sockets: remote submit,
	// remote store, commanded migration with mesh state transfer.
	mesh := transport.NewTCPMesh()
	d, err := Deploy(mesh, Topology{Nodes: 2})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	defer d.Close()
	if err := d.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	n1, n2 := d.Nodes[0], d.Nodes[1]
	acct := d.Top.Accounts[1][0]

	res, err := n1.Submit(acct, "deposit", 77)
	if err != nil || res.(int) != 1077 {
		t.Fatalf("tcp remote deposit = %v err=%v", res, err)
	}
	if err := n2.Manager().PersistMapping(); err != nil {
		t.Fatalf("tcp persist: %v", err)
	}
	if err := n1.MigrateRemote(2, d.Top.Banks[1], 1); err != nil {
		t.Fatalf("tcp migrate: %v", err)
	}
	res, err = n1.Submit(acct, "balance")
	if err != nil || res.(int) != 1077 {
		t.Fatalf("tcp post-migration balance = %v err=%v", res, err)
	}
}

// TestDeploymentMatchesSingleProcess replays the shared bank script on a
// 2-node deployment (every op submitted at node 1, so bank 2's ops cross
// the mesh) and compares every result against the single-process oracle —
// the node layer must be semantically invisible.
func TestDeploymentMatchesSingleProcess(t *testing.T) {
	d := deploy(t, 2)
	got := RunBankScript(d.Nodes[0].Submit, d.Top)
	want, _, err := BankOracle(2, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("result counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result %d differs: deployment=%q single-process=%q", i, got[i], want[i])
		}
	}
}
