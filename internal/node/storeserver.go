package node

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"aeon/internal/cloudstore"
	"aeon/internal/ops"
	"aeon/internal/transport"
)

// StoreIDBase is the mesh address band for dedicated store-server
// processes: store replica k attaches as StoreIDBase + k. Far above both
// node IDs (small integers) and the ingress client band, so a store server
// is never mistaken for an AEON server and can be killed — for chaos tests
// and real failover — without taking any application contexts with it.
const StoreIDBase transport.NodeID = 1 << 20

// StoreRF is the replication factor of the sharded store plane: each
// keyspace partition is served by StoreRF store replicas, partition p's
// replica r attaching at StoreIDBase + StoreRF*p + r + 1 (replica 0 is the
// boot primary). Three is the minimum that can both survive one replica
// loss and refuse split-brain acks under the majority-quorum discipline
// (cloudstore.Replicated acknowledges a write only when a majority of the
// set holds it, and a failover fence only takes effect on a majority).
const StoreRF = 3

// StoreServer is a dedicated store-replica process attachment: it serves
// the cloud-store wire protocol (KindStore, via the same execStoreOp as
// store-serving nodes) from a pluggable backend, answers pings, and honors
// shutdown frames. It embodies no AEON servers — losing one loses a store
// replica and nothing else, which is exactly the blast radius the sharded
// store plane is designed around.
type StoreServer struct {
	id transport.NodeID
	be cloudstore.Backend
	ep transport.Endpoint

	storeOps atomic.Uint64
	pings    atomic.Uint64

	shutdownOnce sync.Once
	shutdownCh   chan struct{}
	closeOnce    sync.Once
}

// ServeStore attaches a store server at the given mesh address, serving
// backend. The caller owns the backend: Close detaches from the mesh but
// does not close it (a chaos kill must be able to drop the endpoint while
// the backend's state survives for inspection or restart).
func ServeStore(mesh transport.Mesh, id transport.NodeID, backend cloudstore.Backend) (*StoreServer, error) {
	if backend == nil {
		return nil, fmt.Errorf("store server %v: backend is required", id)
	}
	s := &StoreServer{id: id, be: backend, shutdownCh: make(chan struct{})}
	ep, err := mesh.Attach(id, s.handle)
	if err != nil {
		return nil, fmt.Errorf("store server %v: attach: %w", id, err)
	}
	s.ep = ep
	return s, nil
}

// ID returns the store server's mesh address.
func (s *StoreServer) ID() transport.NodeID { return s.id }

// Backend returns the backend this server serves.
func (s *StoreServer) Backend() cloudstore.Backend { return s.be }

// Done is closed when a peer requests shutdown (KindShutdown).
func (s *StoreServer) Done() <-chan struct{} { return s.shutdownCh }

// Close detaches the server from the mesh. The backend stays open.
func (s *StoreServer) Close() error {
	var err error
	s.closeOnce.Do(func() { err = s.ep.Close() })
	return err
}

var errStoreServerDown = errors.New("store server shut down")

// RegisterOps exposes the store server's request counters and liveness on an
// ops registry, so a dedicated store-replica process can serve the same
// admin plane (/healthz, /metrics, /events) as an AEON node.
func (s *StoreServer) RegisterOps(reg *ops.Registry) {
	reg.Counter("aeon_store_server_ops_total",
		"Cloud-store operations served by this store replica.", nil, s.storeOps.Load)
	reg.Counter("aeon_store_server_pings_total",
		"Ping frames answered by this store replica.", nil, s.pings.Load)
	reg.Readiness("store-server", func() error {
		select {
		case <-s.shutdownCh:
			return errStoreServerDown
		default:
			return nil
		}
	})
}

func (s *StoreServer) handle(_ context.Context, _ transport.NodeID, req transport.Message) (transport.Message, error) {
	switch req.Kind {
	case KindPing:
		s.pings.Add(1)
		payload, err := encodeFrame(pingResp{Node: s.id})
		return transport.Message{Kind: KindPing, Payload: payload}, err
	case KindStore:
		s.storeOps.Add(1)
		var sr storeReq
		if err := decodeFrame(req.Payload, &sr); err != nil {
			return transport.Message{}, err
		}
		payload, err := encodeFrame(execStoreOp(s.be, s.id, sr))
		return transport.Message{Kind: KindStore, Payload: payload}, err
	case KindShutdown:
		s.shutdownOnce.Do(func() { close(s.shutdownCh) })
		return transport.Message{Kind: KindShutdown}, nil
	default:
		return transport.Message{}, fmt.Errorf("store server %v: unknown frame kind %q", s.id, req.Kind)
	}
}
