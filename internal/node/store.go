package node

import (
	"context"
	"fmt"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/transport"
)

// RemoteStore is a cloudstore.ReplicaAPI client over the transport mesh:
// every operation is one request/response exchange with a store replica, so
// all processes of a deployment journal migrations, mappings, and
// checkpoints into one authoritative store plane — the paper's cloud-storage
// role (§ 5.1), with store-server processes (or a store-serving node)
// standing in for ZooKeeper/S3.
//
// Every call runs under a context derived from the owner's lifecycle (the
// node's base context, canceled on Close): when a partition client abandons
// a replica mid-failover, its in-flight calls are canceled instead of
// stacking up behind dead peers until CallTimeout.
type RemoteStore struct {
	node *Node // set when owned by a node: endpoint/timeout/ctx resolve lazily

	// Standalone wiring (partition clients owned by the harness or driver).
	ep      transport.Endpoint
	to      transport.NodeID
	timeout time.Duration
	base    context.Context
}

var _ cloudstore.ReplicaAPI = (*RemoteStore)(nil)

// NewRemoteStore returns a mesh client for the store replica at `to`,
// bounding each call by timeout and canceling in-flight calls when base is
// canceled. A nil base means context.Background().
func NewRemoteStore(ep transport.Endpoint, to transport.NodeID, timeout time.Duration, base context.Context) *RemoteStore {
	if base == nil {
		base = context.Background()
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &RemoteStore{ep: ep, to: to, timeout: timeout, base: base}
}

// callCtx derives the per-call context: the owning node's base context when
// node-owned (so node shutdown cancels in-flight store ops), the configured
// base otherwise.
func (r *RemoteStore) callCtx() (context.Context, context.CancelFunc) {
	if r.node != nil {
		return context.WithTimeout(r.node.baseCtx, r.node.cfg.CallTimeout)
	}
	return context.WithTimeout(r.base, r.timeout)
}

func (r *RemoteStore) endpoint() transport.Endpoint {
	if r.node != nil {
		return r.node.ep
	}
	return r.ep
}

// call performs one store exchange. Store frames stay on the gob codec
// (control path), but encode into a pooled buffer: endpoints do not retain
// request payloads past Call, so the buffer recycles per exchange.
func (r *RemoteStore) call(req storeReq) (storeResp, error) {
	buf, payload, err := encodeFramePooled(req)
	if err != nil {
		return storeResp{}, err
	}
	ctx, cancel := r.callCtx()
	defer cancel()
	raw, err := r.endpoint().Call(ctx, r.to, transport.Message{Kind: KindStore, Payload: payload})
	releaseFrameBuf(buf)
	if err != nil {
		return storeResp{}, fmt.Errorf("store %s via %v: %w", req.Op, r.to, err)
	}
	var resp storeResp
	if err := decodeFrame(raw.Payload, &resp); err != nil {
		return storeResp{}, err
	}
	if resp.Err != "" {
		// Return the decoded response alongside the typed error: Promote's
		// fenced refusal carries the accepted epoch in Version.
		return resp, WireError(resp.ErrKind, resp.Err)
	}
	return resp, nil
}

// Get implements cloudstore.API.
func (r *RemoteStore) Get(key string) ([]byte, uint64, error) {
	resp, err := r.call(storeReq{Op: storeGet, Key: key})
	if err != nil {
		return nil, 0, err
	}
	return resp.Value, resp.Version, nil
}

// Put implements cloudstore.API.
func (r *RemoteStore) Put(key string, value []byte) (uint64, error) {
	resp, err := r.call(storeReq{Op: storePut, Key: key, Value: value})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// PutBatch implements cloudstore.API: the whole batch is one mesh round
// trip and one charged store write, preserving the batched-migration and
// batched-checkpoint cost model across the process boundary.
func (r *RemoteStore) PutBatch(entries map[string][]byte) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	resp, err := r.call(storeReq{Op: storePutBatch, Entries: entries})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// CreateBatch implements cloudstore.API: atomic create-only batch in one
// mesh round trip and one charged store write.
func (r *RemoteStore) CreateBatch(entries map[string][]byte) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	resp, err := r.call(storeReq{Op: storeCreateBatch, Entries: entries})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// CAS implements cloudstore.API.
func (r *RemoteStore) CAS(key string, expect uint64, value []byte) (uint64, error) {
	resp, err := r.call(storeReq{Op: storeCAS, Key: key, Expect: expect, Value: value})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// Delete implements cloudstore.API.
func (r *RemoteStore) Delete(key string) error {
	_, err := r.call(storeReq{Op: storeDelete, Key: key})
	return err
}

// DeleteBatch implements cloudstore.API: one mesh round trip, one charged
// write for the whole prune.
func (r *RemoteStore) DeleteBatch(keys []string) error {
	if len(keys) == 0 {
		return nil
	}
	_, err := r.call(storeReq{Op: storeDelBatch, Keys: keys})
	return err
}

// List implements cloudstore.API.
func (r *RemoteStore) List(prefix string) ([]string, error) {
	resp, err := r.call(storeReq{Op: storeList, Key: prefix})
	if err != nil {
		return nil, err
	}
	return resp.Keys, nil
}

// GetF implements cloudstore.ReplicaAPI: Get under the partition fence.
func (r *RemoteStore) GetF(part int, epoch uint64, key string) ([]byte, uint64, error) {
	resp, err := r.call(storeReq{Op: storeGetF, Part: part, Epoch: epoch, Key: key})
	if err != nil {
		return nil, 0, err
	}
	return resp.Value, resp.Version, nil
}

// ListF implements cloudstore.ReplicaAPI: List under the partition fence.
func (r *RemoteStore) ListF(part int, epoch uint64, prefix string) ([]string, error) {
	resp, err := r.call(storeReq{Op: storeListF, Part: part, Epoch: epoch, Key: prefix})
	if err != nil {
		return nil, err
	}
	return resp.Keys, nil
}

// PutF implements cloudstore.ReplicaAPI: Put under the partition fence.
func (r *RemoteStore) PutF(part int, epoch uint64, key string, value []byte) (uint64, error) {
	resp, err := r.call(storeReq{Op: storePutF, Part: part, Epoch: epoch, Key: key, Value: value})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// PutBatchF implements cloudstore.ReplicaAPI: PutBatch under the partition
// fence.
func (r *RemoteStore) PutBatchF(part int, epoch uint64, entries map[string][]byte) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	resp, err := r.call(storeReq{Op: storePutBatchF, Part: part, Epoch: epoch, Entries: entries})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// CreateBatchF implements cloudstore.ReplicaAPI: CreateBatch under the
// partition fence.
func (r *RemoteStore) CreateBatchF(part int, epoch uint64, entries map[string][]byte) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	resp, err := r.call(storeReq{Op: storeCreateBatchF, Part: part, Epoch: epoch, Entries: entries})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// CASF implements cloudstore.ReplicaAPI: CAS under the partition fence.
func (r *RemoteStore) CASF(part int, epoch uint64, key string, expect uint64, value []byte) (uint64, error) {
	resp, err := r.call(storeReq{Op: storeCASF, Part: part, Epoch: epoch, Key: key, Expect: expect, Value: value})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// DeleteF implements cloudstore.ReplicaAPI: fenced delete returning the
// tombstone version.
func (r *RemoteStore) DeleteF(part int, epoch uint64, key string) (uint64, error) {
	resp, err := r.call(storeReq{Op: storeDeleteF, Part: part, Epoch: epoch, Key: key})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// DeleteBatchF implements cloudstore.ReplicaAPI: fenced batch delete
// returning the highest tombstone version.
func (r *RemoteStore) DeleteBatchF(part int, epoch uint64, keys []string) (uint64, error) {
	if len(keys) == 0 {
		return 0, nil
	}
	resp, err := r.call(storeReq{Op: storeDelBatchF, Part: part, Epoch: epoch, Keys: keys})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// Apply implements cloudstore.ReplicaAPI: forward a fenced commit to a
// follower replica.
func (r *RemoteStore) Apply(part int, epoch uint64, c cloudstore.Commit) error {
	_, err := r.call(storeReq{Op: storeApply, Part: part, Epoch: epoch, Commit: c})
	return err
}

// Promote implements cloudstore.ReplicaAPI: claim the partition's primary
// role at epoch on the remote replica.
func (r *RemoteStore) Promote(part int, epoch uint64) (uint64, error) {
	resp, err := r.call(storeReq{Op: storePromote, Part: part, Epoch: epoch})
	if err != nil {
		// The accepted fence rides Version even on refusal, so a fenced
		// caller can adopt the newer epoch without a second round trip.
		return resp.Version, err
	}
	return resp.Version, nil
}

// FenceEpoch implements cloudstore.ReplicaAPI.
func (r *RemoteStore) FenceEpoch(part int) (uint64, error) {
	resp, err := r.call(storeReq{Op: storeEpoch, Part: part})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// execStoreOp executes one store wire request against a replica surface. It
// is the single translation point between storeReq frames and
// cloudstore.ReplicaAPI, shared by store-serving nodes and dedicated store
// servers so both speak exactly the same protocol.
func execStoreOp(st cloudstore.ReplicaAPI, owner transport.NodeID, req storeReq) storeResp {
	var resp storeResp
	var err error
	switch req.Op {
	case storeGet:
		resp.Value, resp.Version, err = st.Get(req.Key)
	case storePut:
		resp.Version, err = st.Put(req.Key, req.Value)
	case storePutBatch:
		resp.Version, err = st.PutBatch(req.Entries)
	case storeCreateBatch:
		resp.Version, err = st.CreateBatch(req.Entries)
	case storeCAS:
		resp.Version, err = st.CAS(req.Key, req.Expect, req.Value)
	case storeDelete:
		err = st.Delete(req.Key)
	case storeDelBatch:
		err = st.DeleteBatch(req.Keys)
	case storeList:
		resp.Keys, err = st.List(req.Key)
	case storeGetF:
		resp.Value, resp.Version, err = st.GetF(req.Part, req.Epoch, req.Key)
	case storeListF:
		resp.Keys, err = st.ListF(req.Part, req.Epoch, req.Key)
	case storePutF:
		resp.Version, err = st.PutF(req.Part, req.Epoch, req.Key, req.Value)
	case storePutBatchF:
		resp.Version, err = st.PutBatchF(req.Part, req.Epoch, req.Entries)
	case storeCreateBatchF:
		resp.Version, err = st.CreateBatchF(req.Part, req.Epoch, req.Entries)
	case storeCASF:
		resp.Version, err = st.CASF(req.Part, req.Epoch, req.Key, req.Expect, req.Value)
	case storeDeleteF:
		resp.Version, err = st.DeleteF(req.Part, req.Epoch, req.Key)
	case storeDelBatchF:
		resp.Version, err = st.DeleteBatchF(req.Part, req.Epoch, req.Keys)
	case storeApply:
		err = st.Apply(req.Part, req.Epoch, req.Commit)
	case storePromote:
		resp.Version, err = st.Promote(req.Part, req.Epoch)
	case storeEpoch:
		resp.Version, err = st.FenceEpoch(req.Part)
	default:
		err = fmt.Errorf("node %v: unknown store op %q", owner, req.Op)
	}
	resp.Err, resp.ErrKind = errFields(err)
	return resp
}
