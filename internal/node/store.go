package node

import (
	"context"
	"fmt"

	"aeon/internal/cloudstore"
	"aeon/internal/transport"
)

// RemoteStore is a cloudstore.API client over the transport mesh: every
// operation is one request/response exchange with the store node, so all
// processes of a deployment journal migrations, mappings, and checkpoints
// into one authoritative store — the paper's cloud-storage role (§ 5.1),
// with a node (or a dedicated external process running the same frame
// handler) standing in for ZooKeeper/S3.
type RemoteStore struct {
	node *Node
	to   transport.NodeID
}

var _ cloudstore.API = (*RemoteStore)(nil)

// call performs one store exchange. Store frames stay on the gob codec
// (control path), but encode into a pooled buffer: endpoints do not retain
// request payloads past Call, so the buffer recycles per exchange.
func (r *RemoteStore) call(req storeReq) (storeResp, error) {
	buf, payload, err := encodeFramePooled(req)
	if err != nil {
		return storeResp{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.node.cfg.CallTimeout)
	defer cancel()
	raw, err := r.node.ep.Call(ctx, r.to, transport.Message{Kind: KindStore, Payload: payload})
	releaseFrameBuf(buf)
	if err != nil {
		return storeResp{}, fmt.Errorf("store %s via %v: %w", req.Op, r.to, err)
	}
	var resp storeResp
	if err := decodeFrame(raw.Payload, &resp); err != nil {
		return storeResp{}, err
	}
	if resp.Err != "" {
		return storeResp{}, WireError(resp.ErrKind, resp.Err)
	}
	return resp, nil
}

// Get implements cloudstore.API.
func (r *RemoteStore) Get(key string) ([]byte, uint64, error) {
	resp, err := r.call(storeReq{Op: storeGet, Key: key})
	if err != nil {
		return nil, 0, err
	}
	return resp.Value, resp.Version, nil
}

// Put implements cloudstore.API.
func (r *RemoteStore) Put(key string, value []byte) (uint64, error) {
	resp, err := r.call(storeReq{Op: storePut, Key: key, Value: value})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// PutBatch implements cloudstore.API: the whole batch is one mesh round
// trip and one charged store write, preserving the batched-migration and
// batched-checkpoint cost model across the process boundary.
func (r *RemoteStore) PutBatch(entries map[string][]byte) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	resp, err := r.call(storeReq{Op: storePutBatch, Entries: entries})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// CreateBatch implements cloudstore.API: atomic create-only batch in one
// mesh round trip and one charged store write.
func (r *RemoteStore) CreateBatch(entries map[string][]byte) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	resp, err := r.call(storeReq{Op: storeCreateBatch, Entries: entries})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// CAS implements cloudstore.API.
func (r *RemoteStore) CAS(key string, expect uint64, value []byte) (uint64, error) {
	resp, err := r.call(storeReq{Op: storeCAS, Key: key, Expect: expect, Value: value})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// Delete implements cloudstore.API.
func (r *RemoteStore) Delete(key string) error {
	_, err := r.call(storeReq{Op: storeDelete, Key: key})
	return err
}

// DeleteBatch implements cloudstore.API: one mesh round trip, one charged
// write for the whole prune.
func (r *RemoteStore) DeleteBatch(keys []string) error {
	if len(keys) == 0 {
		return nil
	}
	_, err := r.call(storeReq{Op: storeDelBatch, Keys: keys})
	return err
}

// List implements cloudstore.API.
func (r *RemoteStore) List(prefix string) ([]string, error) {
	resp, err := r.call(storeReq{Op: storeList, Key: prefix})
	if err != nil {
		return nil, err
	}
	return resp.Keys, nil
}
