// Package node implements AEON's distributed node runtime: it wraps one
// process's server-slice of the system and attaches it to a transport.Mesh,
// so N AEON servers run as N OS processes exchanging gob frames instead of
// sharing an address space.
//
// Deployment model. Every node process builds the same cluster topology and
// the same ownership network (deterministic construction from a shared
// workload spec — identical creation order yields identical context IDs),
// but each process *embodies* only its own server(s): context state is
// authoritative only on the node hosting the context, and events execute on
// the node embodying the server that hosts their sequencing point (the
// dominator). The remaining replicas are routing metadata — exactly the
// paper's split between the authoritative context mapping in cloud storage
// and the cached mapping on every host (§ 5.1).
//
// Wire protocol (see wire.go): client submit and cross-node event
// forwarding (placement resolved against the local directory snapshot;
// misses forward along the directory's answer, stale callers pay the
// forwarding hop of § 5.2 and repair their cache from the response), remote
// cloud-store access (one node serves Get/Put/PutBatch/CAS/List to the
// others, so every process journals into one authoritative store), and
// migration state transfer (the engine's step IV ships serialized member
// state to the destination node instead of relying on a shared registry).
//
// Dynamic topologies: with Config.Replicate, structural mutations —
// runtime context creation (Call.NewContext), edge changes, context
// destruction, server membership — are sequenced through the replicated
// ownership-metadata control plane (internal/replication): a CAS-appended
// mutation log in the authoritative cloud store that every node tails and
// applies in order, with a node.replicate.notify frame as the steady-state
// propagation hint. Log order assigns context IDs, so a context created at
// runtime on one node is immediately submittable from every other; submits
// carry the sender's applied log sequence and the receiver blocks on that
// sequence before admission, so a lagging replica can never reject a
// freshly created target.
package node

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/emanager"
	"aeon/internal/metrics"
	"aeon/internal/ops"
	"aeon/internal/ownership"
	"aeon/internal/replication"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

// Config describes one node process.
type Config struct {
	// ID is the node's mesh address. By default the node embodies the
	// server with the same ID (ServerID and transport.NodeID are the same
	// type), which is the 1:1 node-per-server deployment.
	ID transport.NodeID
	// Runtime is the node's runtime over the replicated topology. Start
	// installs the multi-process hooks on it (Runtime.SetRemote).
	Runtime *core.Runtime
	// Servers lists the servers this process embodies. Empty means
	// {ServerID(ID)}.
	Servers []cluster.ServerID
	// LocalStore is this process's in-memory cloud store. Required on the
	// store node (it becomes the authoritative store every peer reaches
	// over the mesh); ignored elsewhere unless StoreNode is zero.
	LocalStore *cloudstore.Store
	// StoreNode is the node serving the authoritative cloud store. Zero
	// means this node uses its LocalStore directly (single-node or test
	// deployments). Ignored when StoreReplicas is set.
	StoreNode transport.NodeID
	// StoreReplicas, when set, replaces the single-store deployment with the
	// sharded, replicated store plane: partition i of the keyspace is served
	// by StoreReplicas[i]'s replica set (primary first), each replica a mesh
	// address — usually a dedicated store-server process (ServeStore), but a
	// node's own ID works too and routes to its LocalStore. The node's store
	// handle becomes a Partitioned client over per-partition Replicated
	// clients with CAS-fenced failover. Every node of a deployment must be
	// configured with the same partition list, in the same order.
	StoreReplicas []StorePartition
	// Manager configures the node's elasticity manager; its migration
	// engine is wired to transfer state over the mesh automatically.
	Manager emanager.Config
	// MaxHops bounds submit forwarding chains. Zero means 4.
	MaxHops int
	// CallTimeout bounds each mesh call (submit forwards, store ops). Zero
	// means 10s. Transfers and commanded migrations use TransferTimeout.
	CallTimeout time.Duration
	// TransferTimeout bounds state-transfer and commanded-migration calls,
	// which move real bytes and sleep through protocol windows. Zero means
	// 60s.
	TransferTimeout time.Duration
	// NoPlacementLearning disables repairing the local directory from
	// submit responses. The mesh bench uses it to keep a deliberately stale
	// directory paying the forwarding hop on every call.
	NoPlacementLearning bool
	// Replicate sequences structural mutations (runtime context creation,
	// edge changes, server membership) through the replicated mutation log
	// in the authoritative cloud store, making dynamic topologies work
	// across processes. Off, mutations stay process-local (static
	// topologies only, the pre-replication behavior).
	Replicate bool
	// ReplicationPoll overrides the log tailer's fallback poll interval
	// (zero: the replication default). Steady-state propagation rides
	// notify frames; the poll only bounds staleness under frame loss.
	ReplicationPoll time.Duration
	// ReplicaLagWait bounds how long a submit handler blocks waiting for
	// the local replica to reach the sender's log sequence before failing
	// typed with replication.ErrReplicaLagging. Zero means 5s.
	ReplicaLagWait time.Duration
	// Peers lists the mesh nodes of the deployment (this node included or
	// not — it is skipped either way); replicate-notify hints go to them.
	// Empty falls back to deriving peers from the cluster's server set via
	// the 1:1 node-per-server mapping — correct until a replicated
	// scale-out adds a server no process embodies, so deployments that
	// scale at runtime should set it.
	Peers []transport.NodeID
	// Ops, when set, is the process-wide observability registry: Start
	// registers the node's and every wired subsystem's metrics and
	// readiness checks on it, and the node emits structural events
	// (migrations, fence advances, backpressure, route repairs, trace
	// spans) into its ring. Nil disables the ops plane — the hot path pays
	// nothing either way.
	Ops *ops.Registry
}

// StorePartition names the replica set serving one keyspace partition of
// the store plane (primary first; failover promotes in list order).
type StorePartition struct {
	Replicas []transport.NodeID
}

// Node is one process's attachment to the AEON deployment.
type Node struct {
	cfg         Config
	id          transport.NodeID
	rt          *core.Runtime
	local       map[cluster.ServerID]bool
	servesStore bool

	// baseCtx parents every RemoteStore call so node shutdown cancels
	// in-flight store ops instead of letting failover retries stack dead
	// calls behind CallTimeout.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	ep    transport.Endpoint
	mgr   *emanager.Manager
	store cloudstore.API
	plane *replication.Plane

	// streams caches one pipelined mux stream per peer for the hot submit
	// path; entries are dropped (and the stream closed) on transport failure
	// so the next call redials. Nil entries never appear: meshes without
	// stream support simply leave the map empty and calls fall back to the
	// one-shot path.
	streamMu sync.Mutex
	streams  map[transport.NodeID]transport.Stream

	// forwarded counts submits this node forwarded to another node;
	// executed counts peer submits it executed locally; batches counts
	// batch frames it handled (however many events each carried);
	// batchEvents counts the events those frames carried.
	forwarded, executed, batches, batchEvents, transfersIn, transfersOut atomic.Uint64

	// ops is the process observability registry (Config.Ops; nil = off).
	// submitLat/forwardLat/batchLat are striped per-frame handler latency
	// histograms, recorded lock-free on the hot path and merged on scrape.
	ops        *ops.Registry
	submitLat  metrics.StripedHistogram
	forwardLat metrics.StripedHistogram
	batchLat   metrics.StripedHistogram

	shutdownOnce sync.Once
	shutdownCh   chan struct{}

	closeOnce sync.Once
}

// Start attaches a node to the mesh: it wires the runtime's multi-process
// hooks, builds the store handle (local on the store node, RemoteStore over
// the mesh elsewhere), and creates the node's elasticity manager with
// mesh-based migration state transfer. The node serves peer requests as
// soon as Start returns.
func Start(mesh transport.Mesh, cfg Config) (*Node, error) {
	if cfg.Runtime == nil {
		return nil, fmt.Errorf("node %v: runtime is required", cfg.ID)
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 4
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 10 * time.Second
	}
	if cfg.TransferTimeout <= 0 {
		cfg.TransferTimeout = 60 * time.Second
	}
	if cfg.ReplicaLagWait <= 0 {
		cfg.ReplicaLagWait = 5 * time.Second
	}
	servers := cfg.Servers
	if len(servers) == 0 {
		servers = []cluster.ServerID{cluster.ServerID(cfg.ID)}
	}
	n := &Node{
		cfg:        cfg,
		id:         cfg.ID,
		rt:         cfg.Runtime,
		local:      make(map[cluster.ServerID]bool, len(servers)),
		streams:    make(map[transport.NodeID]transport.Stream),
		shutdownCh: make(chan struct{}),
	}
	for _, s := range servers {
		n.local[s] = true
	}
	n.baseCtx, n.baseCancel = context.WithCancel(context.Background())

	// Wire the node fully before it can serve a single frame: a peer whose
	// ping raced ahead must never reach an unconfigured manager, store, or
	// runtime. Only the endpoint itself is pending when Attach runs, so the
	// handler gates on `ready` until it is recorded.
	if len(cfg.StoreReplicas) > 0 {
		// Sharded, replicated store plane: one Replicated client per
		// partition (failing over across its replica set), routed by a
		// Partitioned client. A replica naming this node serves from
		// LocalStore without a mesh hop.
		parts := make([]cloudstore.API, 0, len(cfg.StoreReplicas))
		for i, sp := range cfg.StoreReplicas {
			if len(sp.Replicas) == 0 {
				return nil, fmt.Errorf("node %v: store partition %d has no replicas", cfg.ID, i)
			}
			replicas := make([]cloudstore.ReplicaAPI, 0, len(sp.Replicas))
			for _, rep := range sp.Replicas {
				if rep == cfg.ID {
					if cfg.LocalStore == nil {
						return nil, fmt.Errorf("node %v: named as store replica but has no LocalStore", cfg.ID)
					}
					replicas = append(replicas, cfg.LocalStore)
					n.servesStore = true
					continue
				}
				replicas = append(replicas, &RemoteStore{node: n, to: rep})
			}
			parts = append(parts, cloudstore.NewReplicated(i, replicas...))
		}
		n.store = cloudstore.NewPartitioned(parts...)
	} else if cfg.StoreNode == 0 || cfg.StoreNode == cfg.ID {
		if cfg.LocalStore == nil {
			return nil, fmt.Errorf("node %v: store node needs a LocalStore", cfg.ID)
		}
		n.store = cfg.LocalStore
		n.servesStore = true
	} else {
		n.store = &RemoteStore{node: n, to: cfg.StoreNode}
	}
	if cfg.Replicate {
		// The replicated ownership-metadata control plane: structural
		// mutations captured on this node append to the shared log, and the
		// tailer applies every node's mutations to the local replica.
		n.plane = replication.New(n.rt, n.store, replication.Config{
			Origin: cfg.ID,
			Poll:   cfg.ReplicationPoll,
		})
		n.plane.SetNotify(n.notifyReplicated)
		n.rt.SetReplicator(n.plane)
	}
	mgrCfg := cfg.Manager
	mgrCfg.Transfer = n.transferGroup
	if n.plane != nil {
		// Recovery replays WAL and checkpoint records against the
		// replicated graph, so it must catch the replica up first; and
		// policy-driven scale-out/in must mutate membership fleet-wide, not
		// just this node's cluster replica.
		if mgrCfg.SyncReplica == nil {
			mgrCfg.SyncReplica = n.plane.CatchUp
		}
		if mgrCfg.Membership == nil {
			mgrCfg.Membership = n.plane
		}
	}
	n.mgr = emanager.New(n.rt, n.store, mgrCfg)
	n.rt.SetRemote(n.isLocal, n.forward)
	if cfg.Ops != nil {
		n.ops = cfg.Ops
		n.registerOps()
	}

	ready := make(chan struct{})
	ep, err := mesh.Attach(cfg.ID, func(ctx context.Context, from transport.NodeID, req transport.Message) (transport.Message, error) {
		<-ready
		return n.handle(ctx, from, req)
	})
	if err != nil {
		return nil, fmt.Errorf("node %v: attach: %w", cfg.ID, err)
	}
	n.ep = ep
	if n.plane != nil {
		// Catch up from the log before serving a single frame, so a node
		// that (re)joins a live deployment replays every mutation it missed
		// before peers can route to it. Best-effort: when the store node is
		// not reachable yet (peers booting in any order) the tailer keeps
		// retrying, and admission gating covers the window.
		_ = n.plane.Start()
	}
	close(ready)
	return n, nil
}

// ID returns the node's mesh address.
func (n *Node) ID() transport.NodeID { return n.id }

// Runtime returns the node's runtime.
func (n *Node) Runtime() *core.Runtime { return n.rt }

// Manager returns the node's elasticity manager (mesh-wired migrations).
func (n *Node) Manager() *emanager.Manager { return n.mgr }

// Store returns the node's view of the authoritative cloud store.
func (n *Node) Store() cloudstore.API { return n.store }

// Plane returns the node's replication plane (nil unless Config.Replicate).
func (n *Node) Plane() *replication.Plane { return n.plane }

// Forwarded returns how many submits this node forwarded to peers.
func (n *Node) Forwarded() uint64 { return n.forwarded.Load() }

// Executed returns how many peer-submitted events this node executed.
func (n *Node) Executed() uint64 { return n.executed.Load() }

// Batches returns how many batch submit frames this node handled (tests and
// the bench use it to verify coalescing actually reduced frame count).
func (n *Node) Batches() uint64 { return n.batches.Load() }

// Done is closed when a peer requests shutdown (KindShutdown).
func (n *Node) Done() <-chan struct{} { return n.shutdownCh }

// Close detaches the node from the mesh and stops its manager. The runtime
// is left to the caller (it may outlive the mesh attachment in tests).
func (n *Node) Close() error {
	var err error
	n.closeOnce.Do(func() {
		n.baseCancel()
		n.mgr.Stop()
		if n.plane != nil {
			n.plane.Close()
		}
		n.streamMu.Lock()
		streams := n.streams
		n.streams = make(map[transport.NodeID]transport.Stream)
		n.streamMu.Unlock()
		for _, st := range streams {
			_ = st.Close()
		}
		err = n.ep.Close()
	})
	return err
}

// isLocal reports whether this process embodies srv.
func (n *Node) isLocal(srv cluster.ServerID) bool { return n.local[srv] }

// nodeFor maps a server to the mesh address of the node embodying it (the
// 1:1 deployment: same numeric ID).
func (n *Node) nodeFor(srv cluster.ServerID) transport.NodeID {
	return transport.NodeID(srv)
}

// Submit executes one event from this node: locally when this node embodies
// the server hosting the event's sequencing point, otherwise over the mesh.
// It is the multi-process equivalent of Runtime.Submit (and delegates to
// it — the runtime's forwarding hook does the mesh call).
func (n *Node) Submit(target ownership.ID, method string, args ...any) (any, error) {
	return n.rt.Submit(target, method, args...)
}

// Ping checks that a peer is attached and serving.
func (n *Node) Ping(peer transport.NodeID) error {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.CallTimeout)
	defer cancel()
	buf, payload, err := encodeFramePooled(pingResp{Node: n.id})
	if err != nil {
		return err
	}
	_, err = n.ep.Call(ctx, peer, transport.Message{Kind: KindPing, Payload: payload})
	releaseFrameBuf(buf)
	return err
}

// Shutdown asks a peer to shut down (its Done channel closes).
func (n *Node) Shutdown(peer transport.NodeID) error {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.CallTimeout)
	defer cancel()
	_, err := n.ep.Call(ctx, peer, transport.Message{Kind: KindShutdown})
	return err
}

// MigrateRemote commands the node embodying the group's current host to
// migrate root (and its co-located subtree) to server `to`. The migration —
// including the mesh state transfer — runs on the owning node; this call
// blocks until the group is live on the destination.
func (n *Node) MigrateRemote(owner transport.NodeID, root ownership.ID, to cluster.ServerID) error {
	buf, payload, err := encodeFramePooled(migrateReq{Root: root, To: to})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.TransferTimeout)
	defer cancel()
	raw, err := n.ep.Call(ctx, owner, transport.Message{Kind: KindMigrate, Payload: payload})
	releaseFrameBuf(buf)
	if err != nil {
		return fmt.Errorf("migrate %v via %v: %w", root, owner, err)
	}
	var resp migrateResp
	if err := decodeFrame(raw.Payload, &resp); err != nil {
		return err
	}
	return WireError(resp.ErrKind, resp.Err)
}

// notifyReplicated is the replication plane's propagation hint: after a
// durable append, tell every peer node the log advanced so their tailers
// pull immediately instead of waiting out a poll interval. Fire-and-forget
// per peer — a lost hint only costs poll latency, never correctness.
func (n *Node) notifyReplicated(seq uint64) {
	// A notify hint fans out on every durable append: it rides the hot codec
	// (a 12-byte frame instead of a gob stream with type metadata).
	rec := schema.NotifyRec{Seq: seq}
	payload, err := rec.MarshalWire(nil)
	if err != nil {
		return
	}
	peers := make(map[transport.NodeID]bool)
	if len(n.cfg.Peers) > 0 {
		for _, p := range n.cfg.Peers {
			if p != n.id {
				peers[p] = true
			}
		}
	} else {
		// 1:1 node-per-server fallback; a replicated scale-out can add a
		// server no process embodies, so configured Peers take precedence.
		for _, s := range n.rt.Cluster().Servers() {
			if !n.isLocal(s.ID()) {
				peers[n.nodeFor(s.ID())] = true
			}
		}
	}
	for peer := range peers {
		go func(peer transport.NodeID) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			msg := transport.Message{Kind: KindReplicate, Payload: payload}
			// Ride the cached pipelined stream when there is one — hints
			// interleave with submits on the same connection. Best-effort
			// either way: a lost hint costs poll latency, never correctness.
			if st := n.stream(peer); st != nil {
				if _, err := st.Call(ctx, msg); err != nil {
					var remote *transport.RemoteError
					if !errors.As(err, &remote) {
						n.dropStream(peer, st)
					}
				}
				return
			}
			_, _ = n.ep.Call(ctx, peer, msg)
		}(peer)
	}
}

// replicaSeq reports the local replica's applied log sequence (0 without
// replication), stamped into outgoing submits as the receiver's admission
// floor.
func (n *Node) replicaSeq() uint64 {
	if n.plane == nil {
		return 0
	}
	return n.plane.Applied()
}

// forward is the runtime's multi-process hook: the event's sequencing point
// is hosted on a server another node embodies, so ship the whole event
// there. The response's authoritative host repairs this node's directory
// cache when the placement moved.
func (n *Node) forward(host cluster.ServerID, target ownership.ID, method string, args []any) (any, error) {
	n.forwarded.Add(1)
	resp, err := n.callSubmit(n.nodeFor(host), submitReq{
		Target: target,
		Method: method,
		Args:   args,
		Hops:   1,
		MinSeq: n.replicaSeq(),
	})
	if err != nil {
		return nil, err
	}
	n.learnPlacement(target, resp.Host)
	if resp.Err != "" {
		return nil, WireError(resp.ErrKind, resp.Err)
	}
	return resp.Result, nil
}

// stream returns the cached pipelined stream to a peer, opening one on first
// use. Nil means the mesh has no stream support (or the dial failed) and the
// caller should use the one-shot path.
func (n *Node) stream(to transport.NodeID) transport.Stream {
	n.streamMu.Lock()
	st, ok := n.streams[to]
	n.streamMu.Unlock()
	if ok {
		return st
	}
	st, supported, err := transport.OpenStream(n.ep, to)
	if !supported || err != nil {
		return nil
	}
	n.streamMu.Lock()
	if cur, ok := n.streams[to]; ok {
		// Another caller raced the dial; keep theirs.
		n.streamMu.Unlock()
		_ = st.Close()
		return cur
	}
	n.streams[to] = st
	n.streamMu.Unlock()
	return st
}

// dropStream discards a cached stream after a transport failure so the next
// call redials instead of reusing a broken connection.
func (n *Node) dropStream(to transport.NodeID, st transport.Stream) {
	n.streamMu.Lock()
	if cur, ok := n.streams[to]; ok && cur == st {
		delete(n.streams, to)
	}
	n.streamMu.Unlock()
	_ = st.Close()
}

// callSubmit sends one submit frame and decodes the response. Submits are
// the hot path: the frame rides the hand-rolled hot codec in a pooled
// buffer, and travels over the cached pipelined stream to the peer when the
// mesh supports one — many submits share one connection with in-flight
// windowing — falling back to the one-shot call otherwise.
func (n *Node) callSubmit(to transport.NodeID, req submitReq) (submitResp, error) {
	hot := schema.SubmitReq{
		Target: req.Target,
		Method: req.Method,
		Args:   req.Args,
		Hops:   uint32(req.Hops),
		MinSeq: req.MinSeq,
		Trace:  req.Trace,
	}
	buf := schema.GetFrameBuf()
	payload, err := hot.MarshalWire((*buf)[:0])
	if err != nil {
		schema.PutFrameBuf(buf)
		return submitResp{}, err
	}
	*buf = payload

	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.CallTimeout)
	defer cancel()
	msg := transport.Message{Kind: KindSubmit, Payload: payload}
	var raw transport.Message
	if st := n.stream(to); st != nil {
		raw, err = st.Call(ctx, msg)
		var remote *transport.RemoteError
		if err != nil && !errors.As(err, &remote) {
			// Transport failure (not a handler error): the stream is broken
			// or timed out; discard it so the next submit redials. No retry
			// here — the outcome is ambiguous and events are not idempotent.
			n.dropStream(to, st)
		}
	} else {
		raw, err = n.ep.Call(ctx, to, msg)
	}
	schema.PutFrameBuf(buf) // endpoints do not retain payloads past Call
	if err != nil {
		return submitResp{}, fmt.Errorf("submit to %v: %w", to, err)
	}
	var resp submitResp
	if schema.IsHotFrame(raw.Payload) {
		var hr schema.SubmitResp
		if err := hr.UnmarshalWire(raw.Payload); err != nil {
			return submitResp{}, err
		}
		resp = submitResp{
			Result:  hr.Result,
			Host:    cluster.ServerID(hr.Host),
			Err:     hr.Err,
			ErrKind: hr.ErrKind,
		}
	} else if err := decodeFrame(raw.Payload, &resp); err != nil {
		return submitResp{}, err
	}
	return resp, nil
}

// learnPlacement repairs the local directory cache from an authoritative
// placement carried in a submit response. The response's Host is the
// placement of the event's *dominator* — the entry every routing decision
// (ours and our peers') is made on — so only that entry is repaired: the
// target itself may legitimately live on another server (a leaf migrated
// without its subtree), and overwriting its correct entry with the
// dominator's host would corrupt it.
func (n *Node) learnPlacement(target ownership.ID, host cluster.ServerID) {
	if host == 0 || n.cfg.NoPlacementLearning {
		return
	}
	dom, _, err := n.rt.Graph().Resolve(target)
	if err != nil {
		return
	}
	dir := n.rt.Directory()
	if cur, ok := dir.Locate(dom); ok && cur != host && !n.isLocal(cur) {
		// Cache repair only — hosted counters track authoritative
		// placements and are maintained by the migration protocol.
		_ = dir.Move(dom, host)
		n.emit("route.repair", map[string]any{
			"node": int64(n.id), "dom": uint64(dom), "from": int64(cur), "to": int64(host),
		})
	}
}

// handle is the node's mesh request handler.
func (n *Node) handle(ctx context.Context, from transport.NodeID, req transport.Message) (transport.Message, error) {
	switch req.Kind {
	case KindPing:
		payload, err := encodeFrame(pingResp{Node: n.id})
		return transport.Message{Kind: KindPing, Payload: payload}, err
	case KindSubmit:
		// Hot path: submits arrive on the hand-rolled codec and answer in
		// kind; the gob branch remains for mixed-version peers and tests
		// speaking the old frames.
		if schema.IsHotFrame(req.Payload) {
			var hr schema.SubmitReq
			if err := hr.UnmarshalWire(req.Payload); err != nil {
				return transport.Message{}, err
			}
			resp := n.handleSubmit(submitReq{
				Target: hr.Target,
				Method: hr.Method,
				Args:   hr.Args,
				Hops:   int(hr.Hops),
				MinSeq: hr.MinSeq,
				Trace:  hr.Trace,
			})
			hot := schema.SubmitResp{
				Result:  resp.Result,
				Host:    int64(resp.Host),
				Err:     resp.Err,
				ErrKind: resp.ErrKind,
			}
			payload, err := hot.MarshalWire(nil)
			return transport.Message{Kind: KindSubmit, Payload: payload}, err
		}
		var sr submitReq
		if err := decodeFrame(req.Payload, &sr); err != nil {
			return transport.Message{}, err
		}
		payload, err := encodeFrame(n.handleSubmit(sr))
		return transport.Message{Kind: KindSubmit, Payload: payload}, err
	case KindSubmitBatch:
		var br schema.SubmitBatchReq
		if err := br.UnmarshalWire(req.Payload); err != nil {
			return transport.Message{}, err
		}
		resp := n.handleSubmitBatch(&br)
		payload, err := resp.MarshalWire(nil)
		return transport.Message{Kind: KindSubmitBatch, Payload: payload}, err
	case KindStore:
		var sr storeReq
		if err := decodeFrame(req.Payload, &sr); err != nil {
			return transport.Message{}, err
		}
		payload, err := encodeFrame(n.handleStore(sr))
		return transport.Message{Kind: KindStore, Payload: payload}, err
	case KindTransfer:
		var tr transferReq
		if schema.IsHotFrame(req.Payload) {
			var rec schema.TransferRec
			if err := rec.UnmarshalWire(req.Payload); err != nil {
				return transport.Message{}, err
			}
			tr = transferReq{
				Members:    rec.Members,
				From:       cluster.ServerID(rec.From),
				To:         cluster.ServerID(rec.To),
				TotalBytes: int(rec.TotalBytes),
				States:     rec.States,
				MinSeq:     rec.MinSeq,
			}
		} else if err := decodeFrame(req.Payload, &tr); err != nil {
			return transport.Message{}, err
		}
		msg, kind := errFields(n.handleTransfer(tr))
		payload, err := encodeFrame(transferResp{Err: msg, ErrKind: kind})
		return transport.Message{Kind: KindTransfer, Payload: payload}, err
	case KindTransferQuery:
		var tq transferQueryReq
		if err := decodeFrame(req.Payload, &tq); err != nil {
			return transport.Message{}, err
		}
		host, ok := n.rt.Directory().Locate(tq.Probe)
		payload, err := encodeFrame(transferQueryResp{Committed: ok && host == tq.To})
		return transport.Message{Kind: KindTransferQuery, Payload: payload}, err
	case KindMigrate:
		var mr migrateReq
		if err := decodeFrame(req.Payload, &mr); err != nil {
			return transport.Message{}, err
		}
		msg, kind := errFields(n.handleMigrate(mr))
		payload, err := encodeFrame(migrateResp{Err: msg, ErrKind: kind})
		return transport.Message{Kind: KindMigrate, Payload: payload}, err
	case KindReplicate:
		if schema.IsHotFrame(req.Payload) {
			var nr schema.NotifyRec
			if err := nr.UnmarshalWire(req.Payload); err != nil {
				return transport.Message{}, err
			}
			if n.plane != nil {
				n.plane.Poke(nr.Seq)
			}
			// The hint is fire-and-forget; an empty ack suffices.
			return transport.Message{Kind: KindReplicate}, nil
		}
		var rr replicateReq
		if err := decodeFrame(req.Payload, &rr); err != nil {
			return transport.Message{}, err
		}
		if n.plane != nil {
			n.plane.Poke(rr.Seq)
		}
		payload, err := encodeFrame(replicateResp{})
		return transport.Message{Kind: KindReplicate, Payload: payload}, err
	case KindShutdown:
		n.shutdownOnce.Do(func() { close(n.shutdownCh) })
		return transport.Message{Kind: KindShutdown}, nil
	default:
		return transport.Message{}, fmt.Errorf("node %v: unknown frame kind %q", n.id, req.Kind)
	}
}

// handleSubmit executes or forwards one submitted event. Placement is
// resolved against the local directory snapshot; a miss forwards along the
// directory's answer with the hop budget decremented, so a stale sender
// pays exactly the forwarding hop of the paper's staleness window.
func (n *Node) handleSubmit(req submitReq) submitResp {
	// Lag-aware admission: the sender's replica had applied MinSeq of the
	// mutation log when it routed here. Block until ours has too (the
	// target may only exist past that sequence), then fail typed if the
	// replica stays behind — never admit against a torn view.
	if n.plane != nil && req.MinSeq > n.plane.Applied() {
		if err := n.plane.WaitFor(req.MinSeq, n.cfg.ReplicaLagWait); err != nil {
			n.emit("backpressure.lag", map[string]any{
				"node": int64(n.id), "min_seq": req.MinSeq, "applied": n.plane.Applied(), "err": err.Error(),
			})
			msg, kind := errFields(fmt.Errorf("submit %v at seq %d: %w", req.Target, req.MinSeq, err))
			return submitResp{Err: msg, ErrKind: kind}
		}
	}
	dom, _, err := n.rt.Graph().Resolve(req.Target)
	if err != nil && errors.Is(err, ownership.ErrNotFound) &&
		n.plane != nil && n.plane.CatchUp() == nil {
		// The sender may know the target from a mutation whose sequence it
		// did not carry (e.g. a client-side retry): pull the log once
		// before declaring the context unknown. Gated on not-found so other
		// resolve failures don't buy a store round trip per submit.
		dom, _, err = n.rt.Graph().Resolve(req.Target)
	}
	if err != nil {
		// Keep the typed sentinel for the wire kind, but carry the real
		// cause (store outage mid-catch-up, resolve ambiguity) in the
		// message — "unknown context" alone hides what actually failed.
		msg, kind := errFields(fmt.Errorf("dominator of %v: %v: %w", req.Target, err, core.ErrUnknownContext))
		return submitResp{Err: msg, ErrKind: kind}
	}
	dir := n.rt.Directory()
	host, ok := dir.Locate(dom)
	if !ok {
		// A forwarded event can name a sequencing point this node has
		// resolved but never materialized: a virtual join minted by the
		// Resolve above is placed only when the runtime materializes it.
		// Materialize it here — the runtime places it deterministically
		// alongside its first child — then re-read the directory.
		if _, cerr := n.rt.Context(dom); cerr == nil {
			host, ok = dir.Locate(dom)
		}
	}
	if !ok {
		msg, kind := errFields(fmt.Errorf("%v: %w", dom, core.ErrUnknownContext))
		return submitResp{Err: msg, ErrKind: kind}
	}
	if !n.isLocal(host) {
		// Forward on miss: our cached mapping says another node hosts the
		// sequencing point.
		if req.Hops >= n.cfg.MaxHops {
			msg, kind := errFields(fmt.Errorf("%v after %d hops: %w", req.Target, req.Hops, ErrTooManyHops))
			return submitResp{Err: msg, ErrKind: kind, Host: host}
		}
		fwd := req
		fwd.Hops++
		if s := n.replicaSeq(); s > fwd.MinSeq {
			fwd.MinSeq = s
		}
		n.forwarded.Add(1)
		start := time.Now()
		resp, err := n.callSubmit(n.nodeFor(host), fwd)
		d := time.Since(start)
		n.forwardLat.Record(d)
		n.span(req.Trace, "forward", req.Target, req.Method, req.Hops, d)
		if err != nil {
			msg, kind := errFields(err)
			return submitResp{Err: msg, ErrKind: kind, Host: host}
		}
		n.learnPlacement(req.Target, resp.Host)
		return resp
	}
	n.executed.Add(1)
	start := time.Now()
	res, err := n.rt.Submit(req.Target, req.Method, req.Args...)
	d := time.Since(start)
	n.submitLat.Record(d)
	n.span(req.Trace, "execute", req.Target, req.Method, req.Hops, d)
	resp := submitResp{Result: res}
	resp.Err, resp.ErrKind = errFields(err)
	// Report the authoritative placement after execution (the runtime may
	// itself have forwarded if a migration raced admission).
	if cur, ok := dir.Locate(dom); ok {
		resp.Host = cur
	}
	return resp
}

// callSubmitBatch forwards a sub-batch of events to a peer as one hot batch
// frame over the cached pipelined stream, mirroring callSubmit's transport
// discipline (pooled encode buffer, stream drop on transport failure, no
// retry — outcomes are ambiguous and events are not idempotent).
func (n *Node) callSubmitBatch(to transport.NodeID, req *schema.SubmitBatchReq) (schema.SubmitBatchResp, error) {
	buf := schema.GetFrameBuf()
	payload, err := req.MarshalWire((*buf)[:0])
	if err != nil {
		schema.PutFrameBuf(buf)
		return schema.SubmitBatchResp{}, err
	}
	*buf = payload

	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.CallTimeout)
	defer cancel()
	msg := transport.Message{Kind: KindSubmitBatch, Payload: payload}
	var raw transport.Message
	if st := n.stream(to); st != nil {
		raw, err = st.Call(ctx, msg)
		var remote *transport.RemoteError
		if err != nil && !errors.As(err, &remote) {
			n.dropStream(to, st)
		}
	} else {
		raw, err = n.ep.Call(ctx, to, msg)
	}
	schema.PutFrameBuf(buf) // endpoints do not retain payloads past Call
	if err != nil {
		return schema.SubmitBatchResp{}, fmt.Errorf("batch submit to %v: %w", to, err)
	}
	var resp schema.SubmitBatchResp
	if err := resp.UnmarshalWire(raw.Payload); err != nil {
		return schema.SubmitBatchResp{}, err
	}
	return resp, nil
}

// handleSubmitBatch executes or forwards a batch of independent events in
// one admission. The frame-level fields are charged once — one replication-
// lag gate, one hop budget — while every outcome is per-event: a typed
// failure (unknown context, backpressure, hop exhaustion) fills only its own
// slot and its batchmates proceed. Events whose dominators live on peers are
// regrouped into per-host sub-batches and forwarded as batch frames, so a
// stale route costs one extra frame per host, not per event; each forwarded
// outcome carries the authoritative Host, which is learned here exactly like
// the single-submit path does.
func (n *Node) handleSubmitBatch(req *schema.SubmitBatchReq) schema.SubmitBatchResp {
	n.batches.Add(1)
	n.batchEvents.Add(uint64(len(req.Events)))
	batchStart := time.Now()
	defer func() { n.batchLat.Record(time.Since(batchStart)) }()
	out := make([]schema.BatchOutcome, len(req.Events))
	resp := schema.SubmitBatchResp{Outcomes: out}
	if len(req.Events) == 0 {
		return resp
	}
	// One lag-aware admission for the whole frame (see handleSubmit).
	if n.plane != nil && req.MinSeq > n.plane.Applied() {
		if err := n.plane.WaitFor(req.MinSeq, n.cfg.ReplicaLagWait); err != nil {
			n.emit("backpressure.lag", map[string]any{
				"node": int64(n.id), "min_seq": req.MinSeq, "applied": n.plane.Applied(), "err": err.Error(),
			})
			msg, kind := errFields(fmt.Errorf("batch submit at seq %d: %w", req.MinSeq, err))
			for i := range out {
				out[i].Err, out[i].ErrKind = msg, kind
			}
			return resp
		}
	}
	// At most one log catch-up per batch: the first unknown target pulls the
	// log once; batchmates resolve against the refreshed snapshot.
	caughtUp := false
	executedHere := 0
	var fwd map[cluster.ServerID][]int
	for i := range req.Events {
		ev := &req.Events[i]
		dom, _, err := n.rt.Graph().Resolve(ev.Target)
		if err != nil && errors.Is(err, ownership.ErrNotFound) && !caughtUp && n.plane != nil {
			caughtUp = true
			if n.plane.CatchUp() == nil {
				dom, _, err = n.rt.Graph().Resolve(ev.Target)
			}
		}
		if err != nil {
			msg, kind := errFields(fmt.Errorf("dominator of %v: %v: %w", ev.Target, err, core.ErrUnknownContext))
			out[i].Err, out[i].ErrKind = msg, kind
			continue
		}
		dir := n.rt.Directory()
		host, ok := dir.Locate(dom)
		if !ok {
			msg, kind := errFields(fmt.Errorf("%v: %w", dom, core.ErrUnknownContext))
			out[i].Err, out[i].ErrKind = msg, kind
			continue
		}
		if !n.isLocal(host) {
			if req.Hops >= uint32(n.cfg.MaxHops) {
				msg, kind := errFields(fmt.Errorf("%v after %d hops: %w", ev.Target, req.Hops, ErrTooManyHops))
				out[i].Err, out[i].ErrKind, out[i].Host = msg, kind, int64(host)
				continue
			}
			if fwd == nil {
				fwd = make(map[cluster.ServerID][]int)
			}
			fwd[host] = append(fwd[host], i)
			continue
		}
		n.executed.Add(1)
		res, err := n.rt.Submit(ev.Target, ev.Method, ev.Args...)
		executedHere++
		out[i].Result = res
		out[i].Err, out[i].ErrKind = errFields(err)
		if cur, ok := dir.Locate(dom); ok {
			out[i].Host = int64(cur)
		}
	}
	if executedHere > 0 {
		// One span covers the frame's locally executed slice — per-event spans
		// would multiply the feed by the batch size for no extra structure.
		n.span(req.Trace, "batch-execute", ownership.ID(executedHere), "", int(req.Hops), time.Since(batchStart))
	}
	if len(fwd) == 0 {
		return resp
	}
	// Regroup misrouted events per host and forward each group as one batch
	// frame, concurrently across hosts. Outcome slots are disjoint per group,
	// so the goroutines never write the same index.
	minSeq := req.MinSeq
	if s := n.replicaSeq(); s > minSeq {
		minSeq = s
	}
	var wg sync.WaitGroup
	for host, idxs := range fwd {
		wg.Add(1)
		go func(host cluster.ServerID, idxs []int) {
			defer wg.Done()
			sub := schema.SubmitBatchReq{
				Hops:   req.Hops + 1,
				MinSeq: minSeq,
				Trace:  req.Trace,
				Events: make([]schema.BatchEvent, len(idxs)),
			}
			for j, i := range idxs {
				sub.Events[j] = req.Events[i]
				n.forwarded.Add(1)
			}
			start := time.Now()
			fres, err := n.callSubmitBatch(n.nodeFor(host), &sub)
			n.span(req.Trace, "batch-forward", ownership.ID(len(idxs)), "", int(req.Hops), time.Since(start))
			if err != nil {
				msg, kind := errFields(err)
				for _, i := range idxs {
					out[i].Err, out[i].ErrKind, out[i].Host = msg, kind, int64(host)
				}
				return
			}
			for j, i := range idxs {
				if j >= len(fres.Outcomes) {
					out[i].Err, out[i].ErrKind = "batch response truncated", errKindApp
					continue
				}
				out[i] = fres.Outcomes[j]
				n.learnPlacement(req.Events[i].Target, cluster.ServerID(fres.Outcomes[j].Host))
			}
		}(host, idxs)
	}
	wg.Wait()
	return resp
}

// handleMigrate serves a commanded migration: only the node embodying the
// group's current host may run it (the migration engine is source-driven).
func (n *Node) handleMigrate(req migrateReq) error {
	host, ok := n.rt.Directory().Locate(req.Root)
	if !ok {
		return fmt.Errorf("%v: %w", req.Root, core.ErrUnknownContext)
	}
	if !n.isLocal(host) {
		return fmt.Errorf("migrate %v hosted on %v: %w", req.Root, host, ErrNotLocalServer)
	}
	n.emit("migration.start", map[string]any{
		"node": int64(n.id), "root": uint64(req.Root), "from": int64(host), "to": int64(req.To),
	})
	start := time.Now()
	err := n.mgr.MigrateGroup(req.Root, req.To)
	if err != nil {
		n.emit("migration.abort", map[string]any{
			"node": int64(n.id), "root": uint64(req.Root), "to": int64(req.To), "err": err.Error(),
		})
		return err
	}
	n.emit("migration.commit", map[string]any{
		"node": int64(n.id), "root": uint64(req.Root), "from": int64(host), "to": int64(req.To),
		"us": time.Since(start).Microseconds(),
	})
	return nil
}

// transferGroup is the migration engine's Transfer hook: serialize every
// member's state and ship it to the destination node, which installs it and
// remaps its directory replica. Destinations embodied by this node need no
// wire round trip (the registry is shared process-wide).
func (n *Node) transferGroup(members []ownership.ID, from, to cluster.ServerID, totalBytes int) error {
	if n.isLocal(to) {
		return nil
	}
	states := make(map[uint64][]byte, len(members))
	for _, id := range members {
		c, err := n.rt.Context(id)
		if err != nil {
			return fmt.Errorf("transfer %v: %w", id, err)
		}
		st := c.State()
		if st == nil {
			continue
		}
		b, err := schema.EncodeWire(st)
		if err != nil {
			return fmt.Errorf("transfer %v: %w", id, err)
		}
		states[uint64(id)] = b
	}
	rec := schema.TransferRec{
		Members:    members,
		From:       int64(from),
		To:         int64(to),
		TotalBytes: int64(totalBytes),
		States:     states,
		MinSeq:     n.replicaSeq(),
	}
	payload, err := rec.MarshalWire(nil)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.TransferTimeout)
	defer cancel()
	n.transfersOut.Add(1)
	raw, err := n.ep.Call(ctx, n.nodeFor(to), transport.Message{Kind: KindTransfer, Payload: payload})
	if err != nil {
		// Ambiguous outcome: the request — or just its ack — may have been
		// lost after the destination installed the state and remapped its
		// directory (it commits inside the handler). Probe the destination:
		// if it committed, the transfer succeeded and the source must
		// proceed with its own remap, or two processes would both consider
		// themselves authoritative for the group. If the probe says "not
		// committed" (or the peer is unreachable), abort with the WAL
		// intact; Recover re-runs the protocol and converges.
		if len(members) > 0 && n.transferCommitted(members[0], to) {
			return nil
		}
		return fmt.Errorf("transfer to %v: %w", to, err)
	}
	var resp transferResp
	if err := decodeFrame(raw.Payload, &resp); err != nil {
		return err
	}
	return WireError(resp.ErrKind, resp.Err)
}

// transferCommitted asks the destination whether it committed a transfer
// whose acknowledgment was lost. Any probe failure reports false — the
// caller then aborts and leaves convergence to WAL recovery.
func (n *Node) transferCommitted(probe ownership.ID, to cluster.ServerID) bool {
	buf, payload, err := encodeFramePooled(transferQueryReq{Probe: probe, To: to})
	if err != nil {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.CallTimeout)
	defer cancel()
	raw, err := n.ep.Call(ctx, n.nodeFor(to), transport.Message{Kind: KindTransferQuery, Payload: payload})
	releaseFrameBuf(buf)
	if err != nil {
		return false
	}
	var resp transferQueryResp
	if err := decodeFrame(raw.Payload, &resp); err != nil {
		return false
	}
	return resp.Committed
}

// handleTransfer installs a migrated group on this node: decode and set
// each member's state, then remap the local directory replica in one
// MoveBatch epoch (RehostBatch) and mirror the NIC transfer accounting the
// source engine charges on its side.
func (n *Node) handleTransfer(req transferReq) error {
	if !n.isLocal(req.To) {
		return fmt.Errorf("transfer for %v: %w", req.To, ErrNotLocalServer)
	}
	// Group members created at runtime exist here only once the replica has
	// applied their creating records: block on the source's sequence before
	// installing, exactly like submit admission.
	if n.plane != nil && req.MinSeq > n.plane.Applied() {
		if err := n.plane.WaitFor(req.MinSeq, n.cfg.ReplicaLagWait); err != nil {
			return fmt.Errorf("transfer at seq %d: %w", req.MinSeq, err)
		}
	}
	for _, id := range req.Members {
		c, err := n.rt.Context(id)
		if err != nil {
			return fmt.Errorf("install %v: %w", id, err)
		}
		b, ok := req.States[uint64(id)]
		if !ok {
			continue
		}
		v, err := schema.DecodeWire(b)
		if err != nil {
			return fmt.Errorf("install %v: %w", id, err)
		}
		c.SetState(v)
	}
	if err := n.rt.RehostBatch(req.Members, req.To); err != nil {
		return err
	}
	n.transfersIn.Add(1)
	n.emit("transfer.install", map[string]any{
		"node": int64(n.id), "members": len(req.Members),
		"from": int64(req.From), "to": int64(req.To), "bytes": req.TotalBytes,
	})
	cl := n.rt.Cluster()
	if s, ok := cl.Server(req.To); ok {
		s.AddTransferBytes(int64(req.TotalBytes))
	}
	if s, ok := cl.Server(req.From); ok {
		s.AddTransferBytes(int64(req.TotalBytes))
	}
	return nil
}

// handleStore serves one cloud-store operation from the authoritative local
// store. Non-store nodes refuse typed, so a misconfigured peer fails fast.
func (n *Node) handleStore(req storeReq) storeResp {
	st := n.cfg.LocalStore
	if !n.servesStore || st == nil {
		msg, kind := errFields(fmt.Errorf("node %v: %w", n.id, ErrNotStoreNode))
		return storeResp{Err: msg, ErrKind: kind}
	}
	return execStoreOp(st, n.id, req)
}
