package node

import (
	"errors"
	"testing"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/emanager"
	"aeon/internal/ownership"
	"aeon/internal/replication"
	"aeon/internal/transport"
)

// deployReplicated builds an n-node in-process deployment with the
// replicated ownership-metadata control plane enabled.
func deployReplicated(t *testing.T, mesh transport.Mesh, n int, defaults *Config) *Deployment {
	t.Helper()
	d, err := Deploy(mesh, Topology{Nodes: n, Replicate: true, NodeDefaults: defaults})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	if err := d.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return d
}

// diffScripts fails the test when the deployment's outcomes diverge from
// the oracle's.
func diffScripts(t *testing.T, phase string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: result counts differ: %d vs %d\ngot:  %v\nwant: %v", phase, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d diverged: deployment=%q oracle=%q", phase, i, got[i], want[i])
		}
	}
}

// TestReplicatedRuntimeCreationMatchesOracle is the acceptance-criterion
// test: contexts created at runtime through events executing on different
// nodes are submittable from every node, and the full outcome stream —
// including the log-assigned context IDs — is identical to a single-process
// run.
func TestReplicatedRuntimeCreationMatchesOracle(t *testing.T) {
	mesh := transport.NewInMemMesh(transport.NewSim(transport.SimConfig{}))
	d := deployReplicated(t, mesh, 3, nil)

	n1 := d.Nodes[0]
	static := RunBankScript(n1.Submit, d.Top)
	dynamic := RunBankDynamicScript(n1.Submit, d.Top)
	wantStatic, wantDynamic, err := BankDynamicOracle(3, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	diffScripts(t, "static", static, wantStatic)
	diffScripts(t, "dynamic", dynamic, wantDynamic)

	// The dynamic script opened one account per bank; bank 2 and 3's opens
	// executed on nodes 2 and 3 (two different processes captured the
	// mutations). Now submit to a node-2-created context from node 3, and a
	// node-3-created one from node 2 — neither was creator or driver.
	id2, err := n1.Submit(d.Top.Banks[1], "open", 5)
	if err != nil {
		t.Fatalf("open on node 2: %v", err)
	}
	id3, err := n1.Submit(d.Top.Banks[2], "open", 5)
	if err != nil {
		t.Fatalf("open on node 3: %v", err)
	}
	if _, err := d.Nodes[2].Submit(id2.(ownership.ID), "deposit", 1); err != nil {
		t.Fatalf("node 3 submit to node-2-created context: %v", err)
	}
	if _, err := d.Nodes[1].Submit(id3.(ownership.ID), "deposit", 1); err != nil {
		t.Fatalf("node 2 submit to node-3-created context: %v", err)
	}
	// Everyone converged on the same applied sequence.
	want := d.Nodes[0].Plane().Applied()
	for _, n := range d.Nodes[1:] {
		if err := n.Plane().WaitFor(want, 5*time.Second); err != nil {
			t.Fatalf("node %v never converged to seq %d: %v", n.ID(), want, err)
		}
	}
}

// TestReplicatedTCPDynamicTopology runs the same dynamic-topology flow over
// real TCP loopback sockets.
func TestReplicatedTCPDynamicTopology(t *testing.T) {
	mesh := transport.NewTCPMesh()
	d := deployReplicated(t, mesh, 2, nil)

	n1 := d.Nodes[0]
	static := RunBankScript(n1.Submit, d.Top)
	dynamic := RunBankDynamicScript(n1.Submit, d.Top)
	wantStatic, wantDynamic, err := BankDynamicOracle(2, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	diffScripts(t, "static", static, wantStatic)
	diffScripts(t, "dynamic", dynamic, wantDynamic)
}

// TestReplicationSurvivesNotifyFaults drops and duplicates the notify-hint
// frames: propagation degrades to the tailer poll, never to divergence, and
// duplicated hints never double-apply a record.
func TestReplicationSurvivesNotifyFaults(t *testing.T) {
	net := transport.NewSim(transport.SimConfig{})
	fm := transport.NewFaultyMesh(transport.NewInMemMesh(net))
	d := deployReplicated(t, fm, 3, &Config{ReplicationPoll: 25 * time.Millisecond})

	n1, n2, n3 := d.Nodes[0], d.Nodes[1], d.Nodes[2]
	// Node 2 loses every frame from node 1 — including notify hints. Its
	// store traffic flows 2→1, which stays healthy, so the poll catches it
	// up. Node 3 receives duplicated frames (at-least-once delivery).
	fm.Drop(1, 2)
	fm.Duplicate(1, 3, 8)

	id, err := n1.Submit(d.Top.Banks[0], "open", 50)
	if err != nil {
		t.Fatalf("open during notify faults: %v", err)
	}
	target := n1.Plane().Applied()
	for _, n := range []*Node{n2, n3} {
		if err := n.Plane().WaitFor(target, 5*time.Second); err != nil {
			t.Fatalf("node %v did not converge with faulty notifies: %v", n.ID(), err)
		}
	}
	// Exactly-once apply: every replica holds exactly one new context.
	wantLen := n1.Runtime().Graph().Len()
	for _, n := range []*Node{n2, n3} {
		if got := n.Runtime().Graph().Len(); got != wantLen {
			t.Fatalf("node %v graph has %d contexts, node 1 has %d (duplicate or lost apply)",
				n.ID(), got, wantLen)
		}
	}
	fm.Heal(1, 2)
	// The created context is submittable from the node that was cut off.
	if _, err := n2.Submit(id.(ownership.ID), "deposit", 1); err != nil {
		t.Fatalf("node 2 submit to context created during partition: %v", err)
	}
}

// TestReplicatedNodeRejoinCatchesUp kills a node, mutates the topology
// while it is gone, and restarts it: the fresh process must replay the
// mutation log before serving, and then both serve the missed contexts
// locally and submit to them remotely.
func TestReplicatedNodeRejoinCatchesUp(t *testing.T) {
	mesh := transport.NewInMemMesh(transport.NewSim(transport.SimConfig{}))
	top := Topology{Nodes: 2, Replicate: true}
	d, err := Deploy(mesh, top)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	if err := d.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	n1 := d.Nodes[0]

	// Kill node 2 (the non-store node: the log must survive).
	old := d.Nodes[1]
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}
	old.Runtime().Close()

	// Mutate the topology while node 2 is down: a context placed on node
	// 2's server, created through node 1.
	id, err := n1.Runtime().CreateContextOn(2, "Account", d.Top.Banks[1])
	if err != nil {
		t.Fatalf("create while peer down: %v", err)
	}

	// Restart node 2 from scratch; Start replays the log before serving.
	n2, err := d.Restart(mesh, top, 2)
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if got, want := n2.Plane().Applied(), n1.Plane().Applied(); got != want {
		t.Fatalf("rejoined node at seq %d, fleet at %d (did not catch up before serving)", got, want)
	}
	if !n2.Runtime().Graph().Contains(id) {
		t.Fatalf("rejoined node missing context %v created while it was down", id)
	}
	// The missed context executes locally on the rejoined node (it owns the
	// hosting server) and is reachable from node 1 over the mesh.
	if _, err := n2.Submit(id, "deposit", 10); err != nil {
		t.Fatalf("rejoined node submit to missed context: %v", err)
	}
	fwd := n1.Forwarded()
	if _, err := n1.Submit(id, "deposit", 10); err != nil {
		t.Fatalf("node 1 submit to rejoined node's context: %v", err)
	}
	if n1.Forwarded() == fwd {
		t.Fatal("node 1's submit should have crossed the mesh to the rejoined node")
	}
	bal, err := n2.Submit(id, "balance")
	if err != nil {
		t.Fatal(err)
	}
	if bal.(int) != 20 {
		t.Fatalf("balance = %v, want 20", bal)
	}
}

// TestEManagerScaleOutReplicatesMembership pins the membership hook: a
// policy-driven AddServer on one node's eManager must appear in every
// node's cluster replica (sequenced through the log), not just the local
// map.
func TestEManagerScaleOutReplicatesMembership(t *testing.T) {
	mesh := transport.NewInMemMesh(transport.NewSim(transport.SimConfig{}))
	d := deployReplicated(t, mesh, 2, nil)
	n1, n2 := d.Nodes[0], d.Nodes[1]

	before := n1.Runtime().Cluster().Size()
	if err := n1.Manager().Apply(emanager.AddServer{Profile: cluster.M1Small}); err != nil {
		t.Fatalf("policy scale-out: %v", err)
	}
	if got := n1.Runtime().Cluster().Size(); got != before+1 {
		t.Fatalf("node 1 cluster size = %d, want %d", got, before+1)
	}
	if err := n2.Plane().WaitFor(n1.Plane().Applied(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := n2.Runtime().Cluster().Size(); got != before+1 {
		t.Fatalf("scale-out did not replicate: node 2 cluster size = %d, want %d", got, before+1)
	}
}

// TestReplicaLagGateBlocksThenFails pins the typed failure mode: a submit
// carrying a sequence the receiver can never reach (its store view is the
// authority and holds less) fails with replication.ErrReplicaLagging
// instead of misrouting, and a reachable sequence blocks-and-succeeds.
func TestReplicaLagGateBlocksThenFails(t *testing.T) {
	mesh := transport.NewInMemMesh(transport.NewSim(transport.SimConfig{}))
	d := deployReplicated(t, mesh, 2, &Config{ReplicaLagWait: 100 * time.Millisecond})
	n2 := d.Nodes[1]
	err := n2.Plane().WaitFor(n2.Plane().Applied()+100, 50*time.Millisecond)
	if !errors.Is(err, replication.ErrReplicaLagging) {
		t.Fatalf("WaitFor an unreachable sequence = %v, want ErrReplicaLagging", err)
	}
	// The sentinel survives the wire: classify and reconstruct.
	msg, kind := errFields(err)
	if kind != errKindReplicaLag {
		t.Fatalf("lag error classifies as %q, want %q", kind, errKindReplicaLag)
	}
	if back := WireError(kind, msg); !errors.Is(back, replication.ErrReplicaLagging) {
		t.Fatalf("wire round trip lost the sentinel: %v", back)
	}
	// A reachable sequence blocks and succeeds.
	if err := n2.Plane().WaitFor(d.Nodes[0].Plane().Applied(), 2*time.Second); err != nil {
		t.Fatalf("WaitFor a durable sequence: %v", err)
	}
}
