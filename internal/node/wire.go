package node

// The node wire protocol: gob frames carried in transport.Message payloads
// over Mesh.Call. Every exchange is strictly request/response. Handler-level
// failures travel in-band as an error kind plus message, so typed errors
// (unknown context, hop-budget exhaustion, backpressure, store version
// mismatch) survive the wire instead of flattening into strings.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/ownership"
	"aeon/internal/replication"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

// Frame kinds, routed by transport.Message.Kind.
const (
	// KindPing checks liveness and readiness of a peer.
	KindPing = "node.ping"
	// KindSubmit submits (or forwards) one event for execution.
	KindSubmit = "node.submit"
	// KindSubmitBatch submits (or forwards) a batch of independent events in
	// one frame: one admission, one response, per-event outcomes. Batch
	// frames are hot-codec only (schema.SubmitBatchReq/Resp) — they were
	// born after the gob fallback era.
	KindSubmitBatch = "node.submit.batch"
	// KindStore performs one cloud-store operation on the store node.
	KindStore = "node.store"
	// KindTransfer installs a migrated group's state on the destination
	// node (migration protocol step IV over the mesh).
	KindTransfer = "node.transfer"
	// KindTransferQuery asks a destination whether it committed a transfer
	// (state installed and directory remapped). The source uses it to
	// resolve a lost transfer ack: without it, a dropped response would
	// leave the destination live while the source aborted — two
	// authoritative copies.
	KindTransferQuery = "node.transfer.query"
	// KindReplicate hints that the replication log advanced to a sequence:
	// the appender sends it to every peer after a durable append so
	// steady-state mutation propagation is one frame, not a poll interval.
	// Best-effort — a lost or duplicated hint is absorbed by the tailer's
	// poll and per-record idempotency.
	KindReplicate = "node.replicate.notify"
	// KindMigrate asks a node to migrate a group it hosts (control plane).
	KindMigrate = "node.migrate"
	// KindShutdown asks a node to shut down (control plane; the smoke
	// driver uses it to stop its peers).
	KindShutdown = "node.shutdown"
)

// Wire error kinds; mapped back to sentinel errors on the calling side.
const (
	errKindNone            = ""
	errKindApp             = "app"
	errKindUnknownContext  = "unknown-context"
	errKindUnknownMethod   = "unknown-method"
	errKindTooManyHops     = "too-many-hops"
	errKindBackpressure    = "backpressure"
	errKindClosed          = "closed"
	errKindNotLocal        = "not-local"
	errKindNotStoreNode    = "not-store-node"
	errKindNotFound        = "store-not-found"
	errKindVersionMismatch = "store-version-mismatch"
	errKindUnavailable     = "store-unavailable"
	errKindFenced          = "store-fenced"
	errKindReplicaLag      = "replica-lagging"
)

var (
	// ErrTooManyHops is returned when a submit frame exhausts its forwarding
	// budget — the placement directories of the involved nodes disagree
	// persistently (a bug or a torn deployment), so the event fails typed
	// instead of bouncing forever.
	ErrTooManyHops = errors.New("node: submit exceeded forwarding hop budget")
	// ErrNotStoreNode is returned when a store frame reaches a node that
	// does not serve the authoritative cloud store.
	ErrNotStoreNode = errors.New("node: not the store node")
	// ErrNotLocalServer is returned when a frame requires a server this
	// node does not embody (e.g. a transfer addressed to the wrong node).
	ErrNotLocalServer = errors.New("node: server not embodied by this node")
)

// submitReq asks the receiving node to execute one event. Hops counts how
// many times the frame has been forwarded already. MinSeq is the sender's
// applied replication sequence: the receiver must have applied at least
// that much of the mutation log before admitting the event, or it could
// reject a target the sender just created (it blocks on the needed
// sequence, then fails typed if the replica stays behind).
type submitReq struct {
	Target ownership.ID
	Method string
	Args   []any
	Hops   int
	MinSeq uint64
	// Trace is the optional 8-byte trace ID carried by hot frames (0 =
	// untraced); forwards propagate it and traced hops emit span records.
	Trace uint64
}

// submitResp carries the event result. Host is the authoritative placement
// of the event's sequencing point after execution, so stale callers can
// repair their directory cache ("notify source host to update its context
// map", § 5.2).
type submitResp struct {
	Result  any
	Host    cluster.ServerID
	Err     string
	ErrKind string
}

// Store operation selectors.
const (
	storeGet         = "get"
	storePut         = "put"
	storePutBatch    = "putbatch"
	storeCreateBatch = "createbatch"
	storeCAS         = "cas"
	storeDelete      = "delete"
	storeDelBatch    = "deletebatch"
	storeList        = "list"
	// Replica-plane selectors (cloudstore.ReplicaAPI over the mesh): the
	// fenced per-op surface (every op of a replicated deployment carries
	// its partition and fence epoch), fenced commit application, and fence
	// promotion/inspection for partition failover.
	storeGetF         = "getf"
	storeListF        = "listf"
	storePutF         = "putf"
	storePutBatchF    = "putbatchf"
	storeCreateBatchF = "createbatchf"
	storeCASF         = "casf"
	storeDeleteF      = "deletef"
	storeDelBatchF    = "deletebatchf"
	storeApply        = "apply"
	storePromote      = "promote"
	storeEpoch        = "epoch"
)

// storeReq is one cloud-store operation. Part/Epoch ride the replica-plane
// ops (the fenced surface, apply, promote, epoch); Commit rides apply only.
type storeReq struct {
	Op      string
	Key     string
	Keys    []string
	Value   []byte
	Entries map[string][]byte
	Expect  uint64
	Part    int
	Epoch   uint64
	Commit  cloudstore.Commit
}

// storeResp is the result of a store operation.
type storeResp struct {
	Value   []byte
	Version uint64
	Keys    []string
	Err     string
	ErrKind string
}

// transferReq ships a stopped migration group's serialized state to the
// destination node. States maps member ID to its schema.EncodeWire payload;
// members without an entry (nil state, adopted stragglers carrying factory
// state) are remapped without a state install. MinSeq is the source's
// applied replication sequence: members created at runtime exist on the
// destination only once its replica reaches their creating records, so the
// install blocks on that sequence like submit admission does.
type transferReq struct {
	Members    []ownership.ID
	From       cluster.ServerID
	To         cluster.ServerID
	TotalBytes int
	States     map[uint64][]byte
	MinSeq     uint64
}

// transferResp acknowledges a state transfer.
type transferResp struct {
	Err     string
	ErrKind string
}

// transferQueryReq probes whether the destination committed a transfer:
// Probe is the group's root (first member), To the destination server.
type transferQueryReq struct {
	Probe ownership.ID
	To    cluster.ServerID
}

// transferQueryResp answers a commit probe.
type transferQueryResp struct {
	Committed bool
	Err       string
	ErrKind   string
}

// migrateReq asks the receiving node to migrate a group it hosts.
type migrateReq struct {
	Root ownership.ID
	To   cluster.ServerID
}

// migrateResp acknowledges a commanded migration.
type migrateResp struct {
	Err     string
	ErrKind string
}

// replicateReq hints that the replication log reached Seq (the transport
// already identifies the sender).
type replicateReq struct {
	Seq uint64
}

// replicateResp acknowledges a replicate-notify hint.
type replicateResp struct{}

// pingResp reports liveness.
type pingResp struct {
	Node transport.NodeID
}

func init() {
	// Node wire frames travel through the shared registry like every other
	// cross-process payload.
	schema.RegisterWireTypes(
		submitReq{}, submitResp{},
		storeReq{}, storeResp{},
		transferReq{}, transferResp{},
		transferQueryReq{}, transferQueryResp{},
		migrateReq{}, migrateResp{},
		replicateReq{}, replicateResp{},
		pingResp{},
	)
}

// encodeFrame gob-encodes one wire frame.
func encodeFrame(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("node: encode frame %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// gobBufPool recycles encode buffers on the gob control path: mesh endpoints
// do not retain request payloads after Call returns, so a caller can encode
// into a pooled buffer, send, and return the buffer — one steady-state
// allocation fewer per control frame.
var gobBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeFramePooled gob-encodes v into a pooled buffer. The returned bytes
// alias the buffer: release it with releaseFrameBuf only after the payload is
// no longer referenced (for mesh calls, after Call returns).
func encodeFramePooled(v any) (*bytes.Buffer, []byte, error) {
	buf := gobBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		gobBufPool.Put(buf)
		return nil, nil, fmt.Errorf("node: encode frame %T: %w", v, err)
	}
	return buf, buf.Bytes(), nil
}

// releaseFrameBuf recycles a buffer from encodeFramePooled.
func releaseFrameBuf(buf *bytes.Buffer) {
	if buf == nil || buf.Cap() > 1<<20 {
		return // don't let one huge transfer pin a huge buffer in the pool
	}
	gobBufPool.Put(buf)
}

// decodeFrame decodes a wire frame into out (a pointer).
func decodeFrame(b []byte, out any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(out); err != nil {
		return fmt.Errorf("node: decode frame %T: %w", out, err)
	}
	return nil
}

// errKindOf classifies an error for the wire.
func errKindOf(err error) string {
	switch {
	case err == nil:
		return errKindNone
	case errors.Is(err, core.ErrUnknownContext):
		return errKindUnknownContext
	case errors.Is(err, core.ErrUnknownMethod):
		return errKindUnknownMethod
	case errors.Is(err, core.ErrBackpressure):
		return errKindBackpressure
	case errors.Is(err, core.ErrClosed):
		return errKindClosed
	case errors.Is(err, core.ErrNotLocal):
		return errKindNotLocal
	case errors.Is(err, ErrTooManyHops):
		return errKindTooManyHops
	case errors.Is(err, ErrNotStoreNode):
		return errKindNotStoreNode
	case errors.Is(err, ErrNotLocalServer):
		return errKindNotLocal
	case errors.Is(err, cloudstore.ErrNotFound):
		return errKindNotFound
	case errors.Is(err, cloudstore.ErrVersionMismatch):
		return errKindVersionMismatch
	case errors.Is(err, cloudstore.ErrUnavailable):
		return errKindUnavailable
	case errors.Is(err, cloudstore.ErrFenced):
		return errKindFenced
	case errors.Is(err, replication.ErrReplicaLagging):
		return errKindReplicaLag
	default:
		return errKindApp
	}
}

// WireError reconstructs a typed error from its wire (kind, message) form,
// so callers — peer nodes and ingress clients alike — can branch with
// errors.Is across the process boundary.
func WireError(kind, msg string) error {
	var sentinel error
	switch kind {
	case errKindNone:
		return nil
	case errKindUnknownContext:
		sentinel = core.ErrUnknownContext
	case errKindUnknownMethod:
		sentinel = core.ErrUnknownMethod
	case errKindBackpressure:
		sentinel = core.ErrBackpressure
	case errKindClosed:
		sentinel = core.ErrClosed
	case errKindNotLocal:
		sentinel = core.ErrNotLocal
	case errKindTooManyHops:
		sentinel = ErrTooManyHops
	case errKindNotStoreNode:
		sentinel = ErrNotStoreNode
	case errKindNotFound:
		sentinel = cloudstore.ErrNotFound
	case errKindVersionMismatch:
		sentinel = cloudstore.ErrVersionMismatch
	case errKindUnavailable:
		sentinel = cloudstore.ErrUnavailable
	case errKindFenced:
		sentinel = cloudstore.ErrFenced
	case errKindReplicaLag:
		sentinel = replication.ErrReplicaLagging
	default:
		return errors.New(msg)
	}
	return fmt.Errorf("%s: %w", msg, sentinel)
}

// errFields renders an error into (message, kind) wire fields.
func errFields(err error) (msg, kind string) {
	if err == nil {
		return "", errKindNone
	}
	return err.Error(), errKindOf(err)
}
