package game

import (
	"fmt"
	"math/rand"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/ownership"
)

// ownershipID aliases the context ID type for terse handler casts.
type ownershipID = ownership.ID

func ownID(v uint64) ownership.ID { return ownership.ID(v) }

// AEONApp is the game deployed on the AEON runtime, in either multiple-
// ownership (the real AEON) or single-ownership (AEON_SO) wiring.
//
// Multiple ownership: each Player owns their Mine and Treasure directly, so
// dom(Player) = Player and private-gold events parallelize within a room;
// shared objects are owned by the Room and accessed through room events.
//
// Single ownership (the EventWave-identical structure of § 6.1.1): the Room
// owns every item — "the implementation does not allow Players to access
// Items directly. They could only access Items via Room" — so every item
// operation is a room event and serializes per room.
type AEONApp struct {
	name string
	cfg  Config
	rt   *core.Runtime
	so   bool

	building ownership.ID
	rooms    []ownership.ID
	players  [][]ownership.ID              // per room
	mines    map[ownership.ID]ownership.ID // player → mine (SO: room-held)
	treasure map[ownership.ID]ownership.ID
	shared   [][]ownership.ID // per room
}

var _ App = (*AEONApp)(nil)

// BuildAEON deploys the game on a fresh AEON runtime over the cluster,
// placing one batch of rooms round-robin across servers. singleOwnership
// selects the AEON_SO wiring.
func BuildAEON(cl *cluster.Cluster, cfg Config, singleOwnership bool) (*AEONApp, error) {
	s, err := Schema(cfg)
	if err != nil {
		return nil, err
	}
	rt, err := core.New(s, ownership.NewGraph(), cl, core.Config{
		MessageBytes:     256,
		ChargeClientHops: true,
		AcquireTimeout:   30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	app := &AEONApp{
		name:     "AEON",
		cfg:      cfg,
		rt:       rt,
		so:       singleOwnership,
		mines:    make(map[ownership.ID]ownership.ID),
		treasure: make(map[ownership.ID]ownership.ID),
	}
	if singleOwnership {
		app.name = "AEON_SO"
	}
	if err := app.deploy(); err != nil {
		rt.Close()
		return nil, err
	}
	return app, nil
}

func (a *AEONApp) deploy() error {
	servers := a.rt.Cluster().Servers()
	if len(servers) == 0 {
		return fmt.Errorf("game: cluster has no servers")
	}
	var err error
	a.building, err = a.rt.CreateContextOn(servers[0].ID(), "Building")
	if err != nil {
		return err
	}
	for i := 0; i < a.cfg.Rooms; i++ {
		srv := servers[i%len(servers)].ID()
		room, err := a.rt.CreateContextOn(srv, "Room", a.building)
		if err != nil {
			return err
		}
		a.rooms = append(a.rooms, room)

		var roomPlayers []ownership.ID
		for p := 0; p < a.cfg.PlayersPerRoom; p++ {
			player, err := a.rt.CreateContext("Player", room)
			if err != nil {
				return err
			}
			roomPlayers = append(roomPlayers, player)

			// Private items: owned by the player under multiple ownership,
			// by the room under single ownership.
			itemOwner := player
			if a.so {
				itemOwner = room
			}
			mine, err := a.rt.CreateContext("Item", itemOwner)
			if err != nil {
				return err
			}
			tre, err := a.rt.CreateContext("Item", itemOwner)
			if err != nil {
				return err
			}
			a.mines[player] = mine
			a.treasure[player] = tre
			a.seedItem(mine, 1_000_000)
			if !a.so {
				pc, err := a.rt.Context(player)
				if err != nil {
					return err
				}
				st := pc.State().(*PlayerState)
				st.Mine = uint64(mine)
				st.Treasure = uint64(tre)
			}
		}
		a.players = append(a.players, roomPlayers)

		var sharedItems []ownership.ID
		for it := 0; it < a.cfg.SharedItemsPerRoom; it++ {
			item, err := a.rt.CreateContext("Item", room)
			if err != nil {
				return err
			}
			a.seedItem(item, 1_000_000)
			sharedItems = append(sharedItems, item)
		}
		a.shared = append(a.shared, sharedItems)

		rc, err := a.rt.Context(room)
		if err != nil {
			return err
		}
		rc.State().(*RoomState).NPlayers = a.cfg.PlayersPerRoom
	}
	return nil
}

func (a *AEONApp) seedItem(id ownership.ID, gold int) {
	if c, err := a.rt.Context(id); err == nil {
		c.State().(*ItemState).Gold = gold
	}
}

// Name implements App.
func (a *AEONApp) Name() string { return a.name }

// Runtime exposes the underlying runtime (elasticity experiments attach the
// eManager to it).
func (a *AEONApp) Runtime() *core.Runtime { return a.rt }

// Rooms returns the room contexts (the movable unit for migration
// experiments).
func (a *AEONApp) Rooms() []ownership.ID { return a.rooms }

// DoOp implements App.
func (a *AEONApp) DoOp(rng *rand.Rand) error {
	r := rng.Intn(len(a.rooms))
	p := a.players[r][rng.Intn(len(a.players[r]))]
	var err error
	switch a.cfg.pickOp(rng) {
	case opPrivateGold:
		if a.so {
			_, err = a.rt.Submit(a.rooms[r], "player_gold", a.mines[p], a.treasure[p], 10)
		} else {
			_, err = a.rt.Submit(p, "get_gold", 10)
		}
	case opInteract:
		item := a.shared[r][rng.Intn(len(a.shared[r]))]
		if a.so {
			_, err = a.rt.Submit(a.rooms[r], "interact_so", item, a.treasure[p], 5)
		} else {
			_, err = a.rt.Submit(a.rooms[r], "interact", item, p, 5)
		}
	case opCount:
		_, err = a.rt.Submit(a.rooms[r], "nr_players")
	case opTimeOfDay:
		_, err = a.rt.Submit(a.building, "updateTimeOfDay")
	}
	return err
}

// TotalGold sums all item gold (conservation checks in tests).
func (a *AEONApp) TotalGold() (int, error) {
	total := 0
	add := func(id ownership.ID) error {
		c, err := a.rt.Context(id)
		if err != nil {
			return err
		}
		total += c.State().(*ItemState).Gold
		return nil
	}
	for _, roomPlayers := range a.players {
		for _, p := range roomPlayers {
			if err := add(a.mines[p]); err != nil {
				return 0, err
			}
			if err := add(a.treasure[p]); err != nil {
				return 0, err
			}
		}
	}
	for _, items := range a.shared {
		for _, it := range items {
			if err := add(it); err != nil {
				return 0, err
			}
		}
	}
	return total, nil
}

// Close implements App.
func (a *AEONApp) Close() { a.rt.Close() }
