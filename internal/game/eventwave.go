package game

import (
	"fmt"
	"math/rand"

	"aeon/internal/cluster"
	"aeon/internal/eventwave"
	"aeon/internal/ownership"
)

// EventWaveApp is the game on the EventWave baseline: the single-ownership
// tree (Building → Rooms → Players/Items) with every event totally ordered
// at the Building root.
type EventWaveApp struct {
	cfg Config
	rt  *eventwave.Runtime

	building ownership.ID
	rooms    []ownership.ID
	players  [][]ownership.ID
	mines    map[ownership.ID]ownership.ID
	treasure map[ownership.ID]ownership.ID
	shared   [][]ownership.ID
}

var _ App = (*EventWaveApp)(nil)

// BuildEventWave deploys the game on an EventWave runtime.
func BuildEventWave(cl *cluster.Cluster, cfg Config) (*EventWaveApp, error) {
	s, err := Schema(cfg)
	if err != nil {
		return nil, err
	}
	rt, err := eventwave.New(s, cl, eventwave.DefaultConfig())
	if err != nil {
		return nil, err
	}
	app := &EventWaveApp{
		cfg:      cfg,
		rt:       rt,
		mines:    make(map[ownership.ID]ownership.ID),
		treasure: make(map[ownership.ID]ownership.ID),
	}
	if err := app.deploy(); err != nil {
		rt.Close()
		return nil, err
	}
	return app, nil
}

func (a *EventWaveApp) deploy() error {
	servers := a.rt.Cluster().Servers()
	if len(servers) == 0 {
		return fmt.Errorf("game: cluster has no servers")
	}
	var err error
	a.building, err = a.rt.CreateContextOn(servers[0].ID(), "Building")
	if err != nil {
		return err
	}
	for i := 0; i < a.cfg.Rooms; i++ {
		srv := servers[i%len(servers)].ID()
		room, err := a.rt.CreateContextOn(srv, "Room", a.building)
		if err != nil {
			return err
		}
		a.rooms = append(a.rooms, room)
		var roomPlayers []ownership.ID
		for p := 0; p < a.cfg.PlayersPerRoom; p++ {
			player, err := a.rt.CreateContext("Player", room)
			if err != nil {
				return err
			}
			roomPlayers = append(roomPlayers, player)
			mine, err := a.rt.CreateContext("Item", room)
			if err != nil {
				return err
			}
			tre, err := a.rt.CreateContext("Item", room)
			if err != nil {
				return err
			}
			a.mines[player] = mine
			a.treasure[player] = tre
			if st, err := a.rt.State(mine); err == nil {
				st.(*ItemState).Gold = 1_000_000
			}
		}
		a.players = append(a.players, roomPlayers)
		var sharedItems []ownership.ID
		for it := 0; it < a.cfg.SharedItemsPerRoom; it++ {
			item, err := a.rt.CreateContext("Item", room)
			if err != nil {
				return err
			}
			if st, err := a.rt.State(item); err == nil {
				st.(*ItemState).Gold = 1_000_000
			}
			sharedItems = append(sharedItems, item)
		}
		a.shared = append(a.shared, sharedItems)
		if st, err := a.rt.State(room); err == nil {
			st.(*RoomState).NPlayers = a.cfg.PlayersPerRoom
		}
	}
	return nil
}

// Name implements App.
func (a *EventWaveApp) Name() string { return "EventWave" }

// Runtime exposes the underlying runtime.
func (a *EventWaveApp) Runtime() *eventwave.Runtime { return a.rt }

// Rooms returns the room contexts.
func (a *EventWaveApp) Rooms() []ownership.ID { return a.rooms }

// DoOp implements App.
func (a *EventWaveApp) DoOp(rng *rand.Rand) error {
	r := rng.Intn(len(a.rooms))
	p := a.players[r][rng.Intn(len(a.players[r]))]
	var err error
	switch a.cfg.pickOp(rng) {
	case opPrivateGold:
		_, err = a.rt.Submit(a.rooms[r], "player_gold", a.mines[p], a.treasure[p], 10)
	case opInteract:
		item := a.shared[r][rng.Intn(len(a.shared[r]))]
		_, err = a.rt.Submit(a.rooms[r], "interact_so", item, a.treasure[p], 5)
	case opCount:
		_, err = a.rt.Submit(a.rooms[r], "nr_players")
	case opTimeOfDay:
		_, err = a.rt.Submit(a.building, "updateTimeOfDay")
	}
	return err
}

// Close implements App.
func (a *EventWaveApp) Close() { a.rt.Close() }
