package game

import (
	"fmt"
	"math/rand"

	"aeon/internal/cluster"
	"aeon/internal/orleans"
)

// OrleansApp is the game on the Orleans baseline, in two variants (§ 6.1.1):
//
//   - "Orleans": strict serializability enforced at the application level —
//     "Players simply lock the whole Room when they access their Items" —
//     using a deferred-reply lock on the Room grain.
//   - "Orleans*": players access items directly with no synchronization;
//     fast but erroneous ("it should otherwise be considered erroneous"),
//     used as Orleans' best case.
type OrleansApp struct {
	cfg    Config
	rt     *orleans.Runtime
	unsafe bool

	building orleans.GrainID
	rooms    []orleans.GrainID
	players  [][]orleans.GrainID
	mines    map[orleans.GrainID]orleans.GrainID
	treasure map[orleans.GrainID]orleans.GrainID
	shared   [][]orleans.GrainID
}

var _ App = (*OrleansApp)(nil)

// roomGrainState is the Room grain's state, including the application-level
// lock used by the serializable variant.
type roomGrainState struct {
	NPlayers  int
	TimeOfDay int
	lockHeld  bool
	waiters   []*orleans.Deferred
}

// BuildOrleans deploys the game on an Orleans runtime; unsafe selects the
// Orleans* variant.
func BuildOrleans(cl *cluster.Cluster, cfg Config, unsafe bool) (*OrleansApp, error) {
	rt := orleans.New(cl, orleans.DefaultConfig())
	app := &OrleansApp{
		cfg:      cfg,
		rt:       rt,
		unsafe:   unsafe,
		mines:    make(map[orleans.GrainID]orleans.GrainID),
		treasure: make(map[orleans.GrainID]orleans.GrainID),
	}
	if err := app.declare(); err != nil {
		rt.Close()
		return nil, err
	}
	if err := app.deploy(); err != nil {
		rt.Close()
		return nil, err
	}
	return app, nil
}

func (a *OrleansApp) declare() error {
	cost := a.cfg.ActionCost
	rt := a.rt
	if err := rt.RegisterClass(&orleans.Class{Name: "Building", New: func() any { return &BuildingState{} }}); err != nil {
		return err
	}
	if err := rt.RegisterClass(&orleans.Class{Name: "Room", New: func() any { return &roomGrainState{} }}); err != nil {
		return err
	}
	if err := rt.RegisterClass(&orleans.Class{Name: "Player", New: func() any { return &PlayerState{} }}); err != nil {
		return err
	}
	if err := rt.RegisterClass(&orleans.Class{Name: "Item", New: func() any { return &ItemState{} }}); err != nil {
		return err
	}

	decl := func(class, name string, h orleans.Handler) error {
		return rt.DeclareMethod(class, name, cost, h)
	}

	if err := decl("Item", "get", func(call *orleans.Call, args []any) (any, error) {
		st := call.State().(*ItemState)
		amt := args[0].(int)
		if amt > st.Gold {
			amt = st.Gold
		}
		st.Gold -= amt
		return amt, nil
	}); err != nil {
		return err
	}
	if err := decl("Item", "put", func(call *orleans.Call, args []any) (any, error) {
		st := call.State().(*ItemState)
		st.Gold += args[0].(int)
		return st.Gold, nil
	}); err != nil {
		return err
	}

	// Application-level room lock (serializable variant).
	if err := rt.DeclareMethod("Room", "lock", 0, func(call *orleans.Call, args []any) (any, error) {
		st := call.State().(*roomGrainState)
		if !st.lockHeld {
			st.lockHeld = true
			return true, nil
		}
		st.waiters = append(st.waiters, call.DeferReply())
		return nil, nil
	}); err != nil {
		return err
	}
	if err := rt.DeclareMethod("Room", "unlock", 0, func(call *orleans.Call, args []any) (any, error) {
		st := call.State().(*roomGrainState)
		if len(st.waiters) > 0 {
			next := st.waiters[0]
			st.waiters = st.waiters[1:]
			next.Resolve(true, nil)
		} else {
			st.lockHeld = false
		}
		return nil, nil
	}); err != nil {
		return err
	}
	if err := decl("Room", "nr_players", func(call *orleans.Call, args []any) (any, error) {
		return call.State().(*roomGrainState).NPlayers, nil
	}); err != nil {
		return err
	}
	if err := decl("Room", "updateTimeOfDay", func(call *orleans.Call, args []any) (any, error) {
		call.State().(*roomGrainState).TimeOfDay = args[0].(int)
		return nil, nil
	}); err != nil {
		return err
	}

	// get_gold: move gold mine→treasure, with or without the room lock.
	if err := decl("Player", "get_gold", func(call *orleans.Call, args []any) (any, error) {
		mine := args[0].(orleans.GrainID)
		tre := args[1].(orleans.GrainID)
		room := args[2].(orleans.GrainID)
		amt := args[3].(int)
		locked := args[4].(bool)
		if locked {
			if _, err := call.Call(room, "lock"); err != nil {
				return nil, err
			}
			defer func() { _, _ = call.Call(room, "unlock") }()
		}
		taken, err := call.Call(mine, "get", amt)
		if err != nil {
			return nil, err
		}
		if taken.(int) == 0 {
			return false, nil
		}
		if _, err := call.Call(tre, "put", taken); err != nil {
			return nil, err
		}
		return true, nil
	}); err != nil {
		return err
	}

	// interact: take from a shared room object into the treasure.
	if err := decl("Player", "interact", func(call *orleans.Call, args []any) (any, error) {
		item := args[0].(orleans.GrainID)
		tre := args[1].(orleans.GrainID)
		room := args[2].(orleans.GrainID)
		amt := args[3].(int)
		locked := args[4].(bool)
		if locked {
			if _, err := call.Call(room, "lock"); err != nil {
				return nil, err
			}
			defer func() { _, _ = call.Call(room, "unlock") }()
		}
		taken, err := call.Call(item, "get", amt)
		if err != nil {
			return nil, err
		}
		if taken.(int) == 0 {
			return false, nil
		}
		if _, err := call.Call(tre, "put", taken); err != nil {
			return nil, err
		}
		return true, nil
	}); err != nil {
		return err
	}

	if err := decl("Building", "updateTimeOfDay", func(call *orleans.Call, args []any) (any, error) {
		st := call.State().(*BuildingState)
		st.TimeOfDay++
		rooms := args[0].([]orleans.GrainID)
		promises := make([]*orleans.Promise, 0, len(rooms))
		for _, r := range rooms {
			promises = append(promises, call.CallAsync(r, "updateTimeOfDay", st.TimeOfDay))
		}
		for _, p := range promises {
			if _, err := p.Wait(); err != nil {
				return nil, err
			}
		}
		return st.TimeOfDay, nil
	}); err != nil {
		return err
	}
	return decl("Building", "countPlayers", func(call *orleans.Call, args []any) (any, error) {
		rooms := args[0].([]orleans.GrainID)
		total := 0
		for _, r := range rooms {
			n, err := call.Call(r, "nr_players")
			if err != nil {
				return nil, err
			}
			total += n.(int)
		}
		return total, nil
	})
}

func (a *OrleansApp) deploy() error {
	var err error
	a.building, err = a.rt.CreateGrain("Building")
	if err != nil {
		return err
	}
	for i := 0; i < a.cfg.Rooms; i++ {
		room, err := a.rt.CreateGrain("Room")
		if err != nil {
			return err
		}
		a.rooms = append(a.rooms, room)
		var roomPlayers []orleans.GrainID
		for p := 0; p < a.cfg.PlayersPerRoom; p++ {
			player, err := a.rt.CreateGrain("Player")
			if err != nil {
				return err
			}
			roomPlayers = append(roomPlayers, player)
			mine, err := a.rt.CreateGrain("Item")
			if err != nil {
				return err
			}
			tre, err := a.rt.CreateGrain("Item")
			if err != nil {
				return err
			}
			a.mines[player] = mine
			a.treasure[player] = tre
			if st, err := a.rt.State(mine); err == nil {
				st.(*ItemState).Gold = 1_000_000
			}
		}
		a.players = append(a.players, roomPlayers)
		var sharedItems []orleans.GrainID
		for it := 0; it < a.cfg.SharedItemsPerRoom; it++ {
			item, err := a.rt.CreateGrain("Item")
			if err != nil {
				return err
			}
			if st, err := a.rt.State(item); err == nil {
				st.(*ItemState).Gold = 1_000_000
			}
			sharedItems = append(sharedItems, item)
		}
		a.shared = append(a.shared, sharedItems)
		if st, err := a.rt.State(room); err == nil {
			st.(*roomGrainState).NPlayers = a.cfg.PlayersPerRoom
		}
	}
	return nil
}

// Name implements App.
func (a *OrleansApp) Name() string {
	if a.unsafe {
		return "Orleans*"
	}
	return "Orleans"
}

// Runtime exposes the underlying runtime.
func (a *OrleansApp) Runtime() *orleans.Runtime { return a.rt }

// DoOp implements App.
func (a *OrleansApp) DoOp(rng *rand.Rand) error {
	r := rng.Intn(len(a.rooms))
	p := a.players[r][rng.Intn(len(a.players[r]))]
	locked := !a.unsafe
	var err error
	switch a.cfg.pickOp(rng) {
	case opPrivateGold:
		_, err = a.rt.Call(p, "get_gold", a.mines[p], a.treasure[p], a.rooms[r], 10, locked)
	case opInteract:
		item := a.shared[r][rng.Intn(len(a.shared[r]))]
		_, err = a.rt.Call(p, "interact", item, a.treasure[p], a.rooms[r], 5, locked)
	case opCount:
		_, err = a.rt.Call(a.rooms[r], "nr_players")
	case opTimeOfDay:
		_, err = a.rt.Call(a.building, "updateTimeOfDay", a.rooms)
	}
	if err != nil {
		return fmt.Errorf("%s op: %w", a.Name(), err)
	}
	return nil
}

// Close implements App.
func (a *OrleansApp) Close() { a.rt.Close() }
