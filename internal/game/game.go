// Package game implements the paper's evaluation application (§§ 2, 6.1.1):
// a massively multiplayer game with Buildings containing Rooms, Rooms
// containing Players and Items, players interacting with their own items and
// with shared room objects. The same game is built on five systems — AEON
// (multiple ownership), AEON_SO (single ownership), EventWave, Orleans
// (serializable via room locks) and Orleans* (unsafe) — so the benchmark
// harness can regenerate Figures 5a/5b/7/8 and Table 1.
package game

import (
	"fmt"
	"math/rand"
	"time"

	"aeon/internal/schema"
)

// Config sizes the game world and its costs.
type Config struct {
	// Rooms in the building (the scale-out experiments place one per
	// server).
	Rooms int
	// PlayersPerRoom is the number of players in each room.
	PlayersPerRoom int
	// SharedItemsPerRoom is the number of room-owned objects players
	// interact with.
	SharedItemsPerRoom int
	// ActionCost is the simulated CPU per item/method touch.
	ActionCost time.Duration
	// RoomStatePad pads each Room's state so migration experiments can use
	// 1 MB contexts (Figure 8).
	RoomStatePad int
	// Mix weights the operation types (percent; should sum to 100).
	Mix OpMix
}

// OpMix weights the client operation types.
type OpMix struct {
	// PrivateGoldPct: a player moves gold from their mine to their
	// treasure (private items; parallel across players under AEON).
	PrivateGoldPct int
	// InteractPct: a player takes from a shared room object (serialized
	// per room on every strict system).
	InteractPct int
	// CountPct: readonly room census.
	CountPct int
	// TimeOfDayPct: building-wide time update fanning out to all rooms.
	TimeOfDayPct int
}

// DefaultConfig mirrors the paper's setup at benchmark-friendly scale.
func DefaultConfig() Config {
	return Config{
		Rooms:              4,
		PlayersPerRoom:     8,
		SharedItemsPerRoom: 4,
		ActionCost:         50 * time.Microsecond,
		Mix: OpMix{
			PrivateGoldPct: 70,
			InteractPct:    20,
			CountPct:       9,
			TimeOfDayPct:   1,
		},
	}
}

// opKind enumerates client operations.
type opKind int

const (
	opPrivateGold opKind = iota + 1
	opInteract
	opCount
	opTimeOfDay
)

// pickOp samples an operation from the mix.
func (c Config) pickOp(rng *rand.Rand) opKind {
	n := rng.Intn(100)
	switch {
	case n < c.Mix.PrivateGoldPct:
		return opPrivateGold
	case n < c.Mix.PrivateGoldPct+c.Mix.InteractPct:
		return opInteract
	case n < c.Mix.PrivateGoldPct+c.Mix.InteractPct+c.Mix.CountPct:
		return opCount
	default:
		return opTimeOfDay
	}
}

// App is a deployed game a load generator can drive. All five system
// variants implement it.
type App interface {
	// Name identifies the system variant ("AEON", "AEON_SO", ...).
	Name() string
	// DoOp executes one client operation.
	DoOp(rng *rand.Rand) error
	// Close tears the deployment down.
	Close()
}

// ItemState is the gold store of mines, treasures and shared objects.
type ItemState struct {
	Gold int
}

// PlayerState holds a player's private item references (context references
// in contextclass fields, § 3).
type PlayerState struct {
	Mine     uint64
	Treasure uint64
}

// RoomState is a room's mutable state, padded for migration experiments.
type RoomState struct {
	TimeOfDay int
	NPlayers  int
	Pad       []byte
}

// StateBytes implements the runtime's Sized so migrations charge the
// configured context size.
func (s *RoomState) StateBytes() int { return 64 + len(s.Pad) }

// BuildingState tracks the global day counter.
type BuildingState struct {
	TimeOfDay int
}

// Schema declares the game's contextclasses for the AEON-protocol runtimes
// (AEON, AEON_SO and EventWave all execute these handlers).
func Schema(cfg Config) (*schema.Schema, error) {
	s := schema.New()
	building, err := s.DeclareClass("Building", func() any { return &BuildingState{} })
	if err != nil {
		return nil, err
	}
	room, err := s.DeclareClass("Room", func() any {
		return &RoomState{Pad: make([]byte, cfg.RoomStatePad)}
	})
	if err != nil {
		return nil, err
	}
	player, err := s.DeclareClass("Player", func() any { return &PlayerState{} })
	if err != nil {
		return nil, err
	}
	item, err := s.DeclareClass("Item", func() any { return &ItemState{} })
	if err != nil {
		return nil, err
	}

	cost := cfg.ActionCost

	item.MustDeclareMethod("get", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*ItemState)
		amt := args[0].(int)
		if amt > st.Gold {
			amt = st.Gold
		}
		st.Gold -= amt
		return amt, nil
	}, schema.Cost(cost))
	item.MustDeclareMethod("put", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*ItemState)
		st.Gold += args[0].(int)
		return st.Gold, nil
	}, schema.Cost(cost))
	item.MustDeclareMethod("peek", func(call schema.Call, args []any) (any, error) {
		return call.State().(*ItemState).Gold, nil
	}, schema.RO(), schema.Cost(cost))

	// get_gold: the § 2 example — move gold from the player's mine into
	// their treasure.
	player.MustDeclareMethod("get_gold", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*PlayerState)
		amt := args[0].(int)
		taken, err := call.Sync(ownID(st.Mine), "get", amt)
		if err != nil {
			return nil, err
		}
		if taken.(int) == 0 {
			return false, nil
		}
		if _, err := call.Sync(ownID(st.Treasure), "put", taken); err != nil {
			return nil, err
		}
		return true, nil
	}, schema.MayCall("Item", "get"), schema.MayCall("Item", "put"), schema.Cost(cost))

	// receive: deposit into the player's treasure (called by Room during
	// shared-object interactions under multiple ownership).
	player.MustDeclareMethod("receive", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*PlayerState)
		return call.Sync(ownID(st.Treasure), "put", args[0])
	}, schema.MayCall("Item", "put"), schema.Cost(cost))

	// player_gold: the single-ownership path — the Room holds all items, so
	// it moves gold between the player's room-held mine and treasure.
	room.MustDeclareMethod("player_gold", func(call schema.Call, args []any) (any, error) {
		taken, err := call.Sync(args[0].(ownershipID), "get", args[2])
		if err != nil {
			return nil, err
		}
		if taken.(int) == 0 {
			return false, nil
		}
		if _, err := call.Sync(args[1].(ownershipID), "put", taken); err != nil {
			return nil, err
		}
		return true, nil
	}, schema.MayCall("Item", "get"), schema.MayCall("Item", "put"), schema.Cost(cost))

	// interact: a player takes from a shared room object (multi-ownership
	// wiring: Room reaches the player, who banks into their treasure).
	room.MustDeclareMethod("interact", func(call schema.Call, args []any) (any, error) {
		taken, err := call.Sync(args[0].(ownershipID), "get", args[2])
		if err != nil {
			return nil, err
		}
		if taken.(int) == 0 {
			return false, nil
		}
		if _, err := call.Sync(args[1].(ownershipID), "receive", taken); err != nil {
			return nil, err
		}
		return true, nil
	}, schema.MayCall("Item", "get"), schema.MayCall("Player", "receive"), schema.Cost(cost))

	// interact_so: single-ownership variant — both objects are room items.
	room.MustDeclareMethod("interact_so", func(call schema.Call, args []any) (any, error) {
		taken, err := call.Sync(args[0].(ownershipID), "get", args[2])
		if err != nil {
			return nil, err
		}
		if taken.(int) == 0 {
			return false, nil
		}
		if _, err := call.Sync(args[1].(ownershipID), "put", taken); err != nil {
			return nil, err
		}
		return true, nil
	}, schema.MayCall("Item", "get"), schema.MayCall("Item", "put"), schema.Cost(cost))

	room.MustDeclareMethod("nr_players", func(call schema.Call, args []any) (any, error) {
		return call.State().(*RoomState).NPlayers, nil
	}, schema.RO(), schema.Cost(cost))

	room.MustDeclareMethod("updateTimeOfDay", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*RoomState)
		st.TimeOfDay = args[0].(int)
		return nil, nil
	}, schema.Cost(cost))

	// updateTimeOfDay: change time of day in all rooms in parallel (the
	// Listing 1 async fan-out).
	building.MustDeclareMethod("updateTimeOfDay", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*BuildingState)
		st.TimeOfDay++
		rooms, err := call.Children("Room")
		if err != nil {
			return nil, err
		}
		for _, r := range rooms {
			call.Async(r, "updateTimeOfDay", st.TimeOfDay)
		}
		return st.TimeOfDay, nil
	}, schema.MayCall("Room", "updateTimeOfDay"), schema.Cost(cost))

	building.MustDeclareMethod("countPlayers", func(call schema.Call, args []any) (any, error) {
		rooms, err := call.Children("Room")
		if err != nil {
			return nil, err
		}
		total := 0
		for _, r := range rooms {
			n, err := call.Sync(r, "nr_players")
			if err != nil {
				return nil, err
			}
			total += n.(int)
		}
		return total, nil
	}, schema.RO(), schema.MayCall("Room", "nr_players"), schema.Cost(cost))

	if err := s.Freeze(); err != nil {
		return nil, fmt.Errorf("game schema: %w", err)
	}
	return s, nil
}
