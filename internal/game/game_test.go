package game

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/transport"
)

func testCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	cl := cluster.New(transport.NullNetwork{})
	for i := 0; i < n; i++ {
		cl.AddServer(cluster.M3Large)
	}
	return cl
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Rooms = 2
	cfg.PlayersPerRoom = 3
	cfg.SharedItemsPerRoom = 2
	cfg.ActionCost = 0
	return cfg
}

// driveApp runs concurrent clients against an app and fails on any error.
func driveApp(t *testing.T, app App, clients, opsPerClient int) {
	t.Helper()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerClient; i++ {
				if err := app.DoOp(rng); err != nil {
					t.Errorf("%s: %v", app.Name(), err)
					return
				}
			}
		}(int64(c + 1))
	}
	wg.Wait()
}

func TestAEONGameOps(t *testing.T) {
	app, err := BuildAEON(testCluster(t, 2), smallConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if app.Name() != "AEON" {
		t.Fatalf("name = %s", app.Name())
	}
	before, err := app.TotalGold()
	if err != nil {
		t.Fatal(err)
	}
	driveApp(t, app, 4, 50)
	after, err := app.TotalGold()
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("gold not conserved: %d → %d", before, after)
	}
}

func TestAEONSOGameOps(t *testing.T) {
	app, err := BuildAEON(testCluster(t, 2), smallConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if app.Name() != "AEON_SO" {
		t.Fatalf("name = %s", app.Name())
	}
	before, _ := app.TotalGold()
	driveApp(t, app, 4, 50)
	after, _ := app.TotalGold()
	if before != after {
		t.Fatalf("gold not conserved: %d → %d", before, after)
	}
}

func TestAEONDominatorStructure(t *testing.T) {
	// The multi-ownership wiring must give players their own dominators
	// (the parallelism the paper credits), while SO rooms dominate
	// everything they own.
	app, err := BuildAEON(testCluster(t, 2), smallConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	g := app.Runtime().Graph()
	for _, roomPlayers := range app.players {
		for _, p := range roomPlayers {
			d, err := g.Dom(p)
			if err != nil {
				t.Fatal(err)
			}
			if d != p {
				t.Fatalf("dom(player %v) = %v; want self (private items)", p, d)
			}
		}
	}
	for _, room := range app.rooms {
		d, err := g.Dom(room)
		if err != nil {
			t.Fatal(err)
		}
		if d != room {
			t.Fatalf("dom(room %v) = %v; want self", room, d)
		}
	}
}

func TestEventWaveGameOps(t *testing.T) {
	app, err := BuildEventWave(testCluster(t, 2), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	driveApp(t, app, 4, 40)
}

func TestOrleansGameOps(t *testing.T) {
	app, err := BuildOrleans(testCluster(t, 2), smallConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if app.Name() != "Orleans" {
		t.Fatalf("name = %s", app.Name())
	}
	driveApp(t, app, 4, 40)
	if app.Runtime().Deadlocks.Value() != 0 {
		t.Fatalf("deadlocks = %d; want 0", app.Runtime().Deadlocks.Value())
	}
}

func TestOrleansStarGameOps(t *testing.T) {
	app, err := BuildOrleans(testCluster(t, 2), smallConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if app.Name() != "Orleans*" {
		t.Fatalf("name = %s", app.Name())
	}
	driveApp(t, app, 4, 40)
}

func TestAllSystemsAgreeOnWorkload(t *testing.T) {
	// Same seed, same op stream; every system must execute it without
	// error (apples-to-apples workload).
	cfg := smallConfig()
	systems := []func() (App, error){
		func() (App, error) { return BuildAEON(testCluster(t, 2), cfg, false) },
		func() (App, error) { return BuildAEON(testCluster(t, 2), cfg, true) },
		func() (App, error) { return BuildEventWave(testCluster(t, 2), cfg) },
		func() (App, error) { return BuildOrleans(testCluster(t, 2), cfg, false) },
		func() (App, error) { return BuildOrleans(testCluster(t, 2), cfg, true) },
	}
	for _, build := range systems {
		app, err := build()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 100; i++ {
			if err := app.DoOp(rng); err != nil {
				t.Fatalf("%s: %v", app.Name(), err)
			}
		}
		app.Close()
	}
}

// TestAEONPrivateOpsParallelism is a micro-benchmark-ish shape check: with
// real per-op CPU, private gold ops across the players of one room finish
// much faster under multiple ownership (parallel players) than under single
// ownership (room-serialized).
func TestAEONPrivateOpsParallelism(t *testing.T) {
	cfg := smallConfig()
	cfg.Rooms = 1
	cfg.PlayersPerRoom = 8
	cfg.ActionCost = 2 * time.Millisecond
	cfg.Mix = OpMix{PrivateGoldPct: 100}

	elapsed := func(so bool) time.Duration {
		cl := cluster.New(transport.NullNetwork{})
		// Plenty of cores so CPU capacity is not the limiter; the lock
		// structure is.
		cl.AddServer(cluster.Profile{Name: "big", Cores: 16, Speed: 1, MigrationMBps: 100})
		app, err := BuildAEON(cl, cfg, so)
		if err != nil {
			t.Fatal(err)
		}
		defer app.Close()
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 5; i++ {
					if err := app.DoOp(rng); err != nil {
						t.Error(err)
						return
					}
				}
			}(int64(c))
		}
		wg.Wait()
		return time.Since(start)
	}

	multi := elapsed(false)
	single := elapsed(true)
	if single < multi*2 {
		t.Fatalf("single-ownership (%v) should be ≫ multi-ownership (%v) on private ops", single, multi)
	}
}
