package ownership

import "sync/atomic"

// domCache memoizes dominator results for the snapshot(s) that share it. It
// is a lock-free open-addressing hash table: readers probe with two atomic
// loads per slot and never take a mutex. All inserts happen under the graph's
// writer mutex (dominator-cache fills re-validate snapshot currency there),
// so writers never race each other; a slot's value is stored before its key
// is published and neither changes afterwards, so any reader that observes a
// key observes its value.
//
// Entries may be carried across snapshots, but only by mutations that prove
// every entry still holds: fresh-leaf creation runs the leafDomCacheStable
// audit, and RemoveContext (edgeless contexts only) cannot move any other
// context's dominator. Every other mutation — edge changes, detaches and
// virtual-join mints — publishes a fresh cache. The cache is consulted only
// after the caller has resolved the queried ID in its own snapshot, so a
// stale self-entry left behind by RemoveContext is unreachable.
type domCache struct {
	t atomic.Pointer[domTable]
}

type domTable struct {
	mask uint64
	keys []atomic.Uint64 // ID; 0 = empty slot (None is never a valid key)
	vals []atomic.Uint64 // valid once the slot's key is published
	used int             // writer-side occupancy count
}

const domCacheMinSize = 64

func newDomCache() *domCache {
	c := &domCache{}
	c.t.Store(newDomTable(domCacheMinSize))
	return c
}

func newDomTable(size int) *domTable {
	return &domTable{
		mask: uint64(size - 1),
		keys: make([]atomic.Uint64, size),
		vals: make([]atomic.Uint64, size),
	}
}

// get is the lock-free read path.
func (c *domCache) get(id ID) (ID, bool) {
	t := c.t.Load()
	for i := mix64(uint64(id)) & t.mask; ; i = (i + 1) & t.mask {
		switch t.keys[i].Load() {
		case 0:
			return None, false
		case uint64(id):
			return ID(t.vals[i].Load()), true
		}
	}
}

// put records id→dom. The caller must hold the graph's writer mutex.
func (c *domCache) put(id, dom ID) {
	t := c.t.Load()
	if (t.used+1)*4 > len(t.keys)*3 {
		t = c.grow(t)
	}
	t.insert(id, dom)
}

// insert stores into a table the writer owns exclusively.
func (t *domTable) insert(id, dom ID) {
	for i := mix64(uint64(id)) & t.mask; ; i = (i + 1) & t.mask {
		switch t.keys[i].Load() {
		case 0:
			// Value first, key second: publishing the key is what makes the
			// slot visible to lock-free readers.
			t.vals[i].Store(uint64(dom))
			t.keys[i].Store(uint64(id))
			t.used++
			return
		case uint64(id):
			t.vals[i].Store(uint64(dom))
			return
		}
	}
}

// grow republishes the entries into a table twice the size. Readers keep
// probing the old (now frozen) table until they reload the pointer.
func (c *domCache) grow(old *domTable) *domTable {
	nt := newDomTable(len(old.keys) * 2)
	old.each(func(k, v ID) { nt.insert(k, v) })
	c.t.Store(nt)
	return nt
}

func (t *domTable) each(fn func(k, v ID)) {
	for i := range t.keys {
		if k := t.keys[i].Load(); k != 0 {
			fn(ID(k), ID(t.vals[i].Load()))
		}
	}
}

// mix64 is the splitmix64 finalizer: IDs are small sequential integers, and
// the finalizer spreads them over the table uniformly (same rationale as the
// core registry's shard hash).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
