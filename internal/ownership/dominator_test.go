package ownership

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// gameGraph builds the Figure 3 network from the paper:
//
//	Castle owns Kings Room and Armory.
//	Kings Room owns Player1, Player2 and Treasure.
//	Player1 and Player2 also own Treasure and both own Horse.
//	Armory owns Weapons Vault and Player3; Player3 owns Sword.
type gameGraph struct {
	g                                  *Graph
	castle, kingsRoom, armory          ID
	player1, player2, player3          ID
	treasure, horse, sword, weaponsVlt ID
}

func buildGameGraph(t *testing.T) gameGraph {
	t.Helper()
	g := NewGraph()
	var gg gameGraph
	gg.g = g
	var err error
	check := func() {
		if err != nil {
			t.Fatal(err)
		}
	}
	gg.castle, err = g.AddContext("Building")
	check()
	gg.kingsRoom, err = g.AddContext("Room", gg.castle)
	check()
	gg.armory, err = g.AddContext("Room", gg.castle)
	check()
	gg.player1, err = g.AddContext("Player", gg.kingsRoom)
	check()
	gg.player2, err = g.AddContext("Player", gg.kingsRoom)
	check()
	gg.treasure, err = g.AddContext("Item", gg.kingsRoom, gg.player1, gg.player2)
	check()
	gg.horse, err = g.AddContext("Item", gg.player1, gg.player2)
	check()
	gg.weaponsVlt, err = g.AddContext("Item", gg.armory)
	check()
	gg.player3, err = g.AddContext("Player", gg.armory)
	check()
	gg.sword, err = g.AddContext("Item", gg.player3)
	check()
	return gg
}

func mustDom(t *testing.T, g *Graph, id ID) ID {
	t.Helper()
	d, err := g.Dom(id)
	if err != nil {
		t.Fatalf("Dom(%v): %v", id, err)
	}
	return d
}

// TestDomGameExample checks the dominators the paper states for Figure 3.
func TestDomGameExample(t *testing.T) {
	gg := buildGameGraph(t)
	g := gg.g

	if d := mustDom(t, g, gg.player1); d != gg.kingsRoom {
		t.Errorf("dom(Player1) = %v; want Kings Room %v", d, gg.kingsRoom)
	}
	if d := mustDom(t, g, gg.player2); d != gg.kingsRoom {
		t.Errorf("dom(Player2) = %v; want Kings Room %v", d, gg.kingsRoom)
	}
	if d := mustDom(t, g, gg.sword); d != gg.sword {
		t.Errorf("dom(Sword) = %v; want Sword itself %v", d, gg.sword)
	}
	if d := mustDom(t, g, gg.horse); d != gg.horse {
		t.Errorf("dom(Horse) = %v; want Horse itself %v", d, gg.horse)
	}
	// Player3 shares nothing: its own dominator.
	if d := mustDom(t, g, gg.player3); d != gg.player3 {
		t.Errorf("dom(Player3) = %v; want itself", d)
	}
	// Single-owner interior contexts dominate themselves.
	if d := mustDom(t, g, gg.castle); d != gg.castle {
		t.Errorf("dom(Castle) = %v; want itself", d)
	}
	if d := mustDom(t, g, gg.armory); d != gg.armory {
		t.Errorf("dom(Armory) = %v; want itself", d)
	}
	// Kings Room shares children (Treasure) with its own descendants
	// (Player1/2) but no incomparable context: dominator is itself.
	if d := mustDom(t, g, gg.kingsRoom); d != gg.kingsRoom {
		t.Errorf("dom(Kings Room) = %v; want itself", d)
	}
}

// TestDomTreeIsSelf: in a pure tree every context is its own dominator
// (this is the AEON_SO configuration).
func TestDomTreeIsSelf(t *testing.T) {
	g := NewGraph()
	root, _ := g.AddContext("Root")
	ids := []ID{root}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		parent := ids[rng.Intn(len(ids))]
		id, err := g.AddContext("N", parent)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if d := mustDom(t, g, id); d != id {
			t.Fatalf("tree dom(%v) = %v; want self", id, d)
		}
	}
}

// TestDomCacheStableAcrossLeafAdds exercises the incremental fast path: a
// cached dominator must be raised when a new shared leaf introduces sharing.
func TestDomCacheStableAcrossLeafAdds(t *testing.T) {
	g := NewGraph()
	district, _ := g.AddContext("District")
	customer, _ := g.AddContext("Customer", district)
	// Prime the cache: no sharing yet.
	if d := mustDom(t, g, customer); d != customer {
		t.Fatalf("dom(customer) = %v; want self before sharing", d)
	}
	// A new Order shared by District and Customer makes District the
	// customer's dominator (the § 6.1.2 TPC-C situation).
	if _, err := g.AddContext("Order", district, customer); err != nil {
		t.Fatal(err)
	}
	if d := mustDom(t, g, customer); d != district {
		t.Fatalf("dom(customer) = %v; want district %v after shared order", d, district)
	}
	// Further shared orders keep it stable.
	for i := 0; i < 5; i++ {
		if _, err := g.AddContext("Order", district, customer); err != nil {
			t.Fatal(err)
		}
	}
	if d := mustDom(t, g, customer); d != district {
		t.Fatalf("dom(customer) = %v; want district after more orders", d)
	}
}

// TestDomVirtualJoin: two roots sharing a child have no common ancestor, so
// Dom must insert a virtual context owning both.
func TestDomVirtualJoin(t *testing.T) {
	g := NewGraph()
	a, _ := g.AddContext("A")
	b, _ := g.AddContext("B")
	if _, err := g.AddContext("Shared", a, b); err != nil {
		t.Fatal(err)
	}
	da := mustDom(t, g, a)
	db := mustDom(t, g, b)
	if da != db {
		t.Fatalf("dom(a)=%v dom(b)=%v; want a common virtual dominator", da, db)
	}
	class, err := g.Class(da)
	if err != nil || class != VirtualClass {
		t.Fatalf("dominator class = %q, %v; want virtual", class, err)
	}
	if !g.Owns(da, a) || !g.Owns(da, b) {
		t.Fatal("virtual dominator must own both roots")
	}
	// Asking again must reuse the same virtual context, not mint new ones.
	n := g.Len()
	_ = mustDom(t, g, a)
	_ = mustDom(t, g, b)
	if g.Len() != n {
		t.Fatal("repeated Dom queries must not create more virtual contexts")
	}
}

// TestDomAfterEdgeMutation verifies full invalidation on structural changes.
func TestDomAfterEdgeMutation(t *testing.T) {
	gg := buildGameGraph(t)
	g := gg.g
	if d := mustDom(t, g, gg.player1); d != gg.kingsRoom {
		t.Fatalf("precondition failed: dom(Player1) = %v", d)
	}
	// Player2 drops its claims to the shared items: Player1 no longer shares
	// Treasure/Horse with an incomparable context... but Kings Room still
	// directly owns Treasure which is a descendant of Player1, so Kings Room
	// remains the dominator.
	if err := g.RemoveEdge(gg.player2, gg.treasure); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge(gg.player2, gg.horse); err != nil {
		t.Fatal(err)
	}
	if d := mustDom(t, g, gg.player1); d != gg.kingsRoom {
		t.Fatalf("dom(Player1) = %v; want Kings Room (owner sharing child)", d)
	}
	// Now the Kings Room lets go of the Treasure; Player1's subtree is
	// private, so Player1 dominates itself.
	if err := g.RemoveEdge(gg.kingsRoom, gg.treasure); err != nil {
		t.Fatal(err)
	}
	if d := mustDom(t, g, gg.player1); d != gg.player1 {
		t.Fatalf("dom(Player1) = %v; want self after unsharing", d)
	}
}

// domBruteForce recomputes the dominator from the paper's literal definition
// with naive full scans: share(G,C) evaluated once over all contexts, then
// the lub of share ∪ {C}. It runs against one snapshot.
func domBruteForce(g *Graph, id ID) (ID, bool) {
	s := g.Snapshot()
	descC := s.descSet(id)
	members := map[ID]bool{id: true}
	for _, other := range s.IDs() {
		if other == id {
			continue
		}
		// First set: children(other) ∩ desc(C) ≠ ∅.
		inFirst := false
		children, _ := s.Children(other)
		for _, ch := range children {
			if descC[ch] {
				inFirst = true
				break
			}
		}
		// Second set: desc(other) ∩ desc(C) ≠ ∅ and incomparable.
		inSecond := false
		if !inFirst {
			descO := s.descSet(other)
			if !descC[other] && !descO[id] {
				for d := range descO {
					if descC[d] {
						inSecond = true
						break
					}
				}
			}
		}
		if inFirst || inSecond {
			members[other] = true
		}
	}
	list := make([]ID, 0, len(members))
	for m := range members {
		list = append(list, m)
	}
	return s.lub(list)
}

// TestDomMatchesBruteForce cross-checks the closure-based Dom against the
// literal definition on randomized DAGs (only cases where a lub exists).
func TestDomMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		g := NewGraph()
		root, _ := g.AddContext("root")
		ids := []ID{root}
		n := 3 + rng.Intn(25)
		for i := 0; i < n; i++ {
			// Each new context gets 1-3 random parents from existing ones;
			// rooting everything under a single root guarantees a lub exists.
			nParents := 1 + rng.Intn(3)
			parentSet := map[ID]bool{}
			for j := 0; j < nParents; j++ {
				parentSet[ids[rng.Intn(len(ids))]] = true
			}
			parents := make([]ID, 0, len(parentSet))
			for p := range parentSet {
				parents = append(parents, p)
			}
			id, err := g.AddContext("N", parents...)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			want, ok := domBruteForce(g, id)
			if !ok {
				continue // ambiguous lub; virtual-join case tested elsewhere
			}
			got := mustDom(t, g, id)
			if got != want {
				t.Fatalf("trial %d: dom(%v) = %v; brute force says %v\n%s",
					trial, id, got, want, g.DumpDOT())
			}
		}
	}
}

// TestDomDominatesSharers is the core protocol invariant, checked with
// testing/quick over random DAG shapes: for any context C, dom(C)
// transitively owns C and every context that shares a descendant with C.
func TestDomDominatesSharers(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		root, _ := g.AddContext("root")
		ids := []ID{root}
		n := 2 + int(size%28)
		for i := 0; i < n; i++ {
			nParents := 1 + rng.Intn(2)
			parentSet := map[ID]bool{}
			for j := 0; j < nParents; j++ {
				parentSet[ids[rng.Intn(len(ids))]] = true
			}
			parents := make([]ID, 0, len(parentSet))
			for p := range parentSet {
				parents = append(parents, p)
			}
			id, err := g.AddContext("N", parents...)
			if err != nil {
				return false
			}
			ids = append(ids, id)
		}
		for _, c := range ids {
			dom, err := g.Dom(c)
			if err != nil {
				return false
			}
			if dom != c && !g.Owns(dom, c) {
				return false
			}
			// Every sharer must be dominated too.
			descC := map[ID]bool{}
			dc, _ := g.Desc(c)
			for _, d := range dc {
				descC[d] = true
			}
			for _, other := range ids {
				if other == c {
					continue
				}
				do, _ := g.Desc(other)
				shares := false
				for _, d := range do {
					if descC[d] {
						shares = true
						break
					}
				}
				// Also "owner sharing a child": other directly owns a
				// descendant of C.
				if !shares {
					ch, _ := g.Children(other)
					for _, d := range ch {
						if descC[d] {
							shares = true
							break
						}
					}
				}
				if shares {
					comparable := g.Owns(c, other) || g.Owns(other, c)
					if !comparable && dom != other && !g.Owns(dom, other) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDomGameGraph(b *testing.B) {
	g := NewGraph()
	castle, _ := g.AddContext("Building")
	var players []ID
	for r := 0; r < 16; r++ {
		room, _ := g.AddContext("Room", castle)
		var roomPlayers []ID
		for p := 0; p < 8; p++ {
			pl, _ := g.AddContext("Player", room)
			roomPlayers = append(roomPlayers, pl)
			for i := 0; i < 2; i++ {
				if _, err := g.AddContext("Item", pl); err != nil {
					b.Fatal(err)
				}
			}
		}
		// One shared item per room.
		if _, err := g.AddContext("Item", append([]ID{room}, roomPlayers...)...); err != nil {
			b.Fatal(err)
		}
		players = append(players, roomPlayers...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Dom(players[i%len(players)]); err != nil {
			b.Fatal(err)
		}
	}
}
