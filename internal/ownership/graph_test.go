package ownership

import (
	"errors"
	"testing"
)

func TestAddContextAndLookup(t *testing.T) {
	g := NewGraph()
	room, err := g.AddContext("Room")
	if err != nil {
		t.Fatalf("AddContext: %v", err)
	}
	player, err := g.AddContext("Player", room)
	if err != nil {
		t.Fatalf("AddContext: %v", err)
	}
	if !g.Contains(room) || !g.Contains(player) {
		t.Fatal("contexts should exist")
	}
	class, err := g.Class(player)
	if err != nil || class != "Player" {
		t.Fatalf("Class = %q, %v; want Player", class, err)
	}
	if !g.OwnsDirectly(room, player) {
		t.Fatal("room should directly own player")
	}
	if g.OwnsDirectly(player, room) {
		t.Fatal("player must not own room")
	}
}

func TestAddContextUnknownParent(t *testing.T) {
	g := NewGraph()
	if _, err := g.AddContext("X", ID(42)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v; want ErrNotFound", err)
	}
}

func TestAddContextDedupesParents(t *testing.T) {
	g := NewGraph()
	room, _ := g.AddContext("Room")
	item, err := g.AddContext("Item", room, room)
	if err != nil {
		t.Fatalf("AddContext: %v", err)
	}
	parents, _ := g.Parents(item)
	if len(parents) != 1 {
		t.Fatalf("parents = %v; want exactly one", parents)
	}
}

func TestAddEdgeRejectsCycle(t *testing.T) {
	g := NewGraph()
	a, _ := g.AddContext("A")
	b, _ := g.AddContext("B", a)
	c, _ := g.AddContext("C", b)
	if err := g.AddEdge(c, a); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v; want ErrCycle", err)
	}
	if err := g.AddEdge(a, a); !errors.Is(err, ErrCycle) {
		t.Fatalf("self edge err = %v; want ErrCycle", err)
	}
}

func TestAddEdgeRejectsDuplicate(t *testing.T) {
	g := NewGraph()
	a, _ := g.AddContext("A")
	b, _ := g.AddContext("B", a)
	if err := g.AddEdge(a, b); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v; want ErrExists", err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := NewGraph()
	a, _ := g.AddContext("A")
	b, _ := g.AddContext("B", a)
	if err := g.RemoveEdge(a, b); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	if g.OwnsDirectly(a, b) {
		t.Fatal("edge should be gone")
	}
	if err := g.RemoveEdge(a, b); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second remove err = %v; want ErrNotFound", err)
	}
}

func TestRemoveContextRequiresNoEdges(t *testing.T) {
	g := NewGraph()
	a, _ := g.AddContext("A")
	b, _ := g.AddContext("B", a)
	if err := g.RemoveContext(b); !errors.Is(err, ErrHasEdges) {
		t.Fatalf("err = %v; want ErrHasEdges", err)
	}
	if err := g.RemoveEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveContext(b); err != nil {
		t.Fatalf("RemoveContext: %v", err)
	}
	if g.Contains(b) {
		t.Fatal("b should be gone")
	}
}

func TestDetachContext(t *testing.T) {
	g := NewGraph()
	a, _ := g.AddContext("A")
	b, _ := g.AddContext("B", a)
	c, _ := g.AddContext("C", b)
	if err := g.DetachContext(b); err != nil {
		t.Fatalf("DetachContext: %v", err)
	}
	if g.Contains(b) {
		t.Fatal("b should be gone")
	}
	children, _ := g.Children(a)
	if len(children) != 0 {
		t.Fatalf("a children = %v; want empty", children)
	}
	parents, _ := g.Parents(c)
	if len(parents) != 0 {
		t.Fatalf("c parents = %v; want empty", parents)
	}
}

func TestOwnsTransitive(t *testing.T) {
	g := NewGraph()
	a, _ := g.AddContext("A")
	b, _ := g.AddContext("B", a)
	c, _ := g.AddContext("C", b)
	if !g.Owns(a, c) {
		t.Fatal("a should transitively own c")
	}
	if g.Owns(c, a) || g.Owns(a, a) {
		t.Fatal("Owns must be strict and directed")
	}
}

func TestDescAndRoots(t *testing.T) {
	g := NewGraph()
	a, _ := g.AddContext("A")
	b, _ := g.AddContext("B", a)
	c, _ := g.AddContext("C", a, b) // shared child
	d, _ := g.AddContext("D", c)

	desc, err := g.Desc(a)
	if err != nil {
		t.Fatal(err)
	}
	want := map[ID]bool{b: true, c: true, d: true}
	if len(desc) != len(want) {
		t.Fatalf("desc = %v; want %v", desc, want)
	}
	for _, id := range desc {
		if !want[id] {
			t.Fatalf("unexpected descendant %v", id)
		}
	}
	roots := g.Roots()
	if len(roots) != 1 || roots[0] != a {
		t.Fatalf("roots = %v; want [%v]", roots, a)
	}
}

func TestPath(t *testing.T) {
	g := NewGraph()
	a, _ := g.AddContext("A")
	b, _ := g.AddContext("B", a)
	c, _ := g.AddContext("C", b)

	path, err := g.Path(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[0] != a || path[1] != b || path[2] != c {
		t.Fatalf("path = %v; want [a b c]", path)
	}

	self, err := g.Path(b, b)
	if err != nil || len(self) != 1 || self[0] != b {
		t.Fatalf("self path = %v, %v", self, err)
	}

	if _, err := g.Path(c, a); !errors.Is(err, ErrNoPath) {
		t.Fatalf("upward path err = %v; want ErrNoPath", err)
	}
}

func TestPathPrefersShortest(t *testing.T) {
	g := NewGraph()
	a, _ := g.AddContext("A")
	b, _ := g.AddContext("B", a)
	c, _ := g.AddContext("C", b)
	d, _ := g.AddContext("D", c, a) // both long (a,b,c,d) and short (a,d) paths

	path, err := g.Path(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 || path[0] != a || path[1] != d {
		t.Fatalf("path = %v; want direct [a d]", path)
	}
}

func TestVersionBumpsOnMutation(t *testing.T) {
	g := NewGraph()
	v0 := g.Version()
	a, _ := g.AddContext("A")
	if g.Version() == v0 {
		t.Fatal("AddContext should bump version")
	}
	v1 := g.Version()
	b, _ := g.AddContext("B")
	_ = g.AddEdge(a, b)
	if g.Version() <= v1 {
		t.Fatal("AddEdge should bump version")
	}
}

func TestDumpDOT(t *testing.T) {
	g := NewGraph()
	a, _ := g.AddContext("A")
	_, _ = g.AddContext("B", a)
	dot := g.DumpDOT()
	if dot == "" {
		t.Fatal("DumpDOT should render something")
	}
}
