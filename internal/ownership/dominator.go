package ownership

import (
	"fmt"
	"sort"
	"strings"
)

// Dom computes the dominator of context id per § 3 of the paper:
//
//	share(G,C) = {C' | desc(G,C) ∩ children(G,C') ≠ ∅} ∪
//	             {C' | desc(G,C') ∩ desc(G,C) ≠ ∅ ∧ C' ∉ desc(G,C) ∧ C ∉ desc(G,C')}
//	dom(G,C)   = lub(G, share(G,C) ∪ {C})
//
// desc is the *strict* descendant relation (this reading makes the paper's
// worked examples hold: dom(Sword) = Sword, dom(Player1) = Kings Room).
//
// The first set contains every direct owner of a descendant of C (including
// owners comparable to C — e.g. an ancestor that reaches into C's subtree
// directly); the second contains every context incomparable to C whose
// descendants overlap C's. Both are computed with a single walk over
// desc(G,C) plus upward walks from those descendants.
//
// When the lub does not exist because the network has multiple minimal common
// ancestors (the semi-lattice has multiple maxima sharing descendants), Dom
// transparently inserts an unnamed virtual context owning those maxima and
// returns it, per the paper's footnote. The same virtual context is reused
// for identical queries.
func (g *Graph) Dom(id ID) (ID, error) {
	// Fast path: cache hits only need the read lock, keeping concurrent
	// event submission contention-free.
	g.mu.RLock()
	if _, ok := g.nodes[id]; !ok {
		g.mu.RUnlock()
		return None, fmt.Errorf("%v: %w", id, ErrNotFound)
	}
	if d, ok := g.domCache[id]; ok {
		g.mu.RUnlock()
		return d, nil
	}
	g.mu.RUnlock()

	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[id]; !ok {
		return None, fmt.Errorf("%v: %w", id, ErrNotFound)
	}
	if d, ok := g.domCache[id]; ok {
		return d, nil
	}
	d, err := g.domLocked(id)
	if err != nil {
		return None, err
	}
	g.domCache[id] = d
	return d, nil
}

func (g *Graph) domLocked(id ID) (ID, error) {
	members := g.shareMembersLocked(id)
	if len(members) == 1 {
		return members[0], nil
	}
	lub, ok := g.lubLocked(members)
	if ok {
		return lub, nil
	}
	// No unique least upper bound: restore the lattice with a virtual
	// context owning the maximal members.
	return g.ensureVirtualJoinLocked(members)
}

// shareMembersLocked returns share(G,id) ∪ {id}.
func (g *Graph) shareMembersLocked(id ID) []ID {
	descC := g.descSetLocked(id)
	ancSelfC := g.ancSetLocked(id)

	members := map[ID]bool{id: true}
	// Set 1: direct owners of any descendant of C.
	for d := range descC {
		for _, p := range g.nodes[d].parents {
			members[p] = true
		}
	}
	// Set 2: ancestors of descendants of C that are incomparable to C.
	// Upward walk from every descendant; membership filters exclude C's own
	// subtree (descC) and C's ancestors-or-self (ancSelfC).
	seen := make(map[ID]bool, len(descC))
	stack := make([]ID, 0, len(descC))
	for d := range descC {
		stack = append(stack, d)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.nodes[cur].parents {
			if seen[p] {
				continue
			}
			seen[p] = true
			stack = append(stack, p)
			if !descC[p] && !ancSelfC[p] {
				members[p] = true
			}
		}
	}

	out := make([]ID, 0, len(members))
	for m := range members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// lubLocked computes the unique least upper bound of members under the
// ownership order (X ≥ Y iff X transitively owns Y or X == Y). It returns
// ok=false when no unique lub exists.
func (g *Graph) lubLocked(members []ID) (ID, bool) {
	if len(members) == 0 {
		return None, false
	}
	// Common ancestors-or-self of every member.
	common := g.ancSetLocked(members[0])
	for _, m := range members[1:] {
		next := g.ancSetLocked(m)
		for c := range common {
			if !next[c] {
				delete(common, c)
			}
		}
		if len(common) == 0 {
			return None, false
		}
	}
	minima := g.minimaLocked(common)
	if len(minima) == 1 {
		return minima[0], true
	}
	return None, false
}

// minimaLocked returns the minimal elements of set under the ownership order
// (those with no strict descendant inside the set).
func (g *Graph) minimaLocked(set map[ID]bool) []ID {
	var minima []ID
	for c := range set {
		hasLower := false
		stack := append([]ID(nil), g.nodes[c].children...)
		seen := make(map[ID]bool)
		for len(stack) > 0 && !hasLower {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[cur] {
				continue
			}
			seen[cur] = true
			if set[cur] {
				hasLower = true
				break
			}
			stack = append(stack, g.nodes[cur].children...)
		}
		if !hasLower {
			minima = append(minima, c)
		}
	}
	sort.Slice(minima, func(i, j int) bool { return minima[i] < minima[j] })
	return minima
}

// ensureVirtualJoinLocked returns (creating on first use) an unnamed context
// owning the maximal elements of members, restoring a unique upper bound.
func (g *Graph) ensureVirtualJoinLocked(members []ID) (ID, error) {
	// Use the maxima of the member set: owning them transitively owns all.
	maxima := g.maximaLocked(members)
	key := joinKey(maxima)
	if v, ok := g.virtualJoin[key]; ok {
		if _, alive := g.nodes[v]; alive {
			return v, nil
		}
		delete(g.virtualJoin, key)
	}
	id := g.nextID
	g.nextID++
	n := &node{id: id, class: VirtualClass}
	g.nodes[id] = n
	for _, m := range maxima {
		n.children = append(n.children, m)
		g.nodes[m].parents = append(g.nodes[m].parents, id)
	}
	g.version++
	// The new context only adds an upper element; it never lowers an
	// existing lub, so cached dominators stay valid.
	g.virtualJoin[key] = id
	return id, nil
}

// maximaLocked returns the maximal elements of members under the ownership
// order (those not strictly owned by another member).
func (g *Graph) maximaLocked(members []ID) []ID {
	memberSet := make(map[ID]bool, len(members))
	for _, m := range members {
		memberSet[m] = true
	}
	var maxima []ID
	for _, m := range members {
		hasUpper := false
		stack := append([]ID(nil), g.nodes[m].parents...)
		seen := make(map[ID]bool)
		for len(stack) > 0 && !hasUpper {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[cur] {
				continue
			}
			seen[cur] = true
			if memberSet[cur] {
				hasUpper = true
				break
			}
			stack = append(stack, g.nodes[cur].parents...)
		}
		if !hasUpper {
			maxima = append(maxima, m)
		}
	}
	sort.Slice(maxima, func(i, j int) bool { return maxima[i] < maxima[j] })
	return maxima
}

func joinKey(ids []ID) string {
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", uint64(id))
	}
	return b.String()
}
