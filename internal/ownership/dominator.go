package ownership

import (
	"fmt"
	"sort"
	"strings"
)

// Dom computes the dominator of context id per § 3 of the paper:
//
//	share(G,C) = {C' | desc(G,C) ∩ children(G,C') ≠ ∅} ∪
//	             {C' | desc(G,C') ∩ desc(G,C) ≠ ∅ ∧ C' ∉ desc(G,C) ∧ C ∉ desc(G,C')}
//	dom(G,C)   = lub(G, share(G,C) ∪ {C})
//
// desc is the *strict* descendant relation (this reading makes the paper's
// worked examples hold: dom(Sword) = Sword, dom(Player1) = Kings Room).
//
// The first set contains every direct owner of a descendant of C (including
// owners comparable to C — e.g. an ancestor that reaches into C's subtree
// directly); the second contains every context incomparable to C whose
// descendants overlap C's. Both are computed with a single walk over
// desc(G,C) plus upward walks from those descendants.
//
// When the lub does not exist because the network has multiple minimal common
// ancestors (the semi-lattice has multiple maxima sharing descendants), Dom
// transparently inserts an unnamed virtual context owning those maxima and
// returns it, per the paper's footnote. The same virtual context is reused
// for identical queries while it still covers them.
func (g *Graph) Dom(id ID) (ID, error) {
	d, _, err := g.Snapshot().resolveDom(id)
	return d, err
}

// Resolve returns the dominator of target together with a snapshot that
// contains both target and dominator, so the caller can run the rest of its
// admission sequence (Path, Children) against one consistent version of the
// network. When the query mints a virtual join, the returned snapshot is the
// newly published one.
func (g *Graph) Resolve(target ID) (ID, *Snapshot, error) {
	return g.Snapshot().resolveDom(target)
}

// Dom computes the dominator of id against this snapshot. Cache hits and
// pure recomputation are lock-free; only a cache fill or a virtual-join mint
// touches the graph's writer mutex.
//
// When the query has to mint a virtual join, the returned ID exists only in
// snapshots at or after the mint, not necessarily in the receiver. Callers
// that go on to query the dominator (Path, Contains, ...) should use
// Graph.Resolve, which returns the snapshot the dominator is valid in.
func (s *Snapshot) Dom(id ID) (ID, error) {
	d, _, err := s.resolveDom(id)
	return d, err
}

// resolveDom returns the dominator and the snapshot it is valid in (s
// itself, unless a virtual join had to be minted into a newer snapshot).
func (s *Snapshot) resolveDom(id ID) (ID, *Snapshot, error) {
	if s.nodes.get(id) == nil {
		return None, s, fmt.Errorf("%v: %w", id, ErrNotFound)
	}
	// Lock-free fast path: the cache is valid for every snapshot sharing it.
	if d, ok := s.dom.get(id); ok {
		return d, s, nil
	}
	members := s.shareMembers(id)
	if len(members) == 1 {
		s.g.fillDomCache(s, id, members[0])
		return members[0], s, nil
	}
	if lub, ok := s.lub(members); ok {
		s.g.fillDomCache(s, id, lub)
		return lub, s, nil
	}
	// No unique least upper bound: restore the lattice with a virtual
	// context owning the maximal members.
	return s.g.mintVirtualJoin(s, id)
}

// fillDomCache opportunistically memoizes a dominator computed lock-free
// against s. The store happens under the writer mutex and only if s is still
// the current snapshot: a value computed against a superseded structure must
// not leak into a cache handle newer snapshots share.
func (g *Graph) fillDomCache(s *Snapshot, id, d ID) {
	if g.snap.Load() != s {
		// Already superseded: the store below would be discarded anyway, so
		// don't contend with writers. The authoritative re-check still runs
		// under the mutex.
		return
	}
	g.mu.Lock()
	if g.snap.Load() == s {
		s.dom.put(id, d)
	}
	g.mu.Unlock()
}

// mintVirtualJoin creates (or reuses) the unnamed context owning the maximal
// share members of id, publishing a new snapshot that contains it. If the
// caller's snapshot is no longer current the dominator is re-derived against
// the current one, matching the previous single-lock behavior of answering
// against the latest structure.
func (g *Graph) mintVirtualJoin(s *Snapshot, id ID) (ID, *Snapshot, error) {
	g.mu.Lock()
	defer g.mu.Unlock()

	cur := g.snap.Load()
	if cur != s {
		if cur.nodes.get(id) == nil {
			return None, cur, fmt.Errorf("%v: %w", id, ErrNotFound)
		}
		if d, ok := cur.dom.get(id); ok {
			return d, cur, nil
		}
	}
	members := cur.shareMembers(id)
	if len(members) == 1 {
		cur.dom.put(id, members[0])
		return members[0], cur, nil
	}
	if lub, ok := cur.lub(members); ok {
		cur.dom.put(id, lub)
		return lub, cur, nil
	}

	// Use the maxima of the member set: owning them transitively owns all.
	maxima := cur.maxima(members)
	key := joinKey(maxima)
	if v, ok := g.virtualJoin[key]; ok {
		// The memo entry is only reusable while the virtual context is both
		// alive and still covering every maximum; edge removals and context
		// removals drop entries eagerly (dropVirtualKeyLocked), and this
		// check keeps a stale entry from ever resurfacing a deleted or
		// non-covering context ID.
		if cur.coversAll(v, maxima) {
			cur.dom.put(id, v)
			return v, cur, nil
		}
		g.dropVirtualKeyLocked(v)
	}

	vid := g.nextVirtual
	g.nextVirtual++
	vn := &node{id: vid, class: VirtualClass}
	nodes := cur.nodes
	for _, m := range maxima {
		mc := nodes.get(m).clone()
		mc.parents = append(mc.parents, vid)
		vn.children = append(vn.children, m)
		nodes = nodes.set(m, mc)
	}
	nodes = nodes.set(vid, vn)
	// Minting is a structural edge mutation like any other: the new virtual
	// becomes a second upper bound that can make a previously unique lub
	// ambiguous, and as a fresh direct owner of its maxima it can even join
	// other contexts' share sets — so cached dominators do NOT carry over.
	// (The differential fuzzer caught exactly this against the pre-COW
	// implementation, which shared the cache across mints.)
	dom := newDomCache()
	dom.put(id, vid)
	next := g.publishLocked(nodes, dom)
	g.virtualJoin[key] = vid
	g.virtualKey[vid] = key
	return vid, next, nil
}

// coversAll reports whether v is alive and directly owns every given context.
func (s *Snapshot) coversAll(v ID, ids []ID) bool {
	n := s.nodes.get(v)
	if n == nil {
		return false
	}
	for _, m := range ids {
		if !containsID(n.children, m) {
			return false
		}
	}
	return true
}

// shareMembers returns share(G,id) ∪ {id}.
func (s *Snapshot) shareMembers(id ID) []ID {
	descC := s.descSet(id)
	ancSelfC := s.ancSet(id)

	members := map[ID]bool{id: true}
	// Set 1: direct owners of any descendant of C.
	for d := range descC {
		for _, p := range s.nodes.get(d).parents {
			members[p] = true
		}
	}
	// Set 2: ancestors of descendants of C that are incomparable to C.
	// Upward walk from every descendant; membership filters exclude C's own
	// subtree (descC) and C's ancestors-or-self (ancSelfC).
	seen := make(map[ID]bool, len(descC))
	stack := make([]ID, 0, len(descC))
	for d := range descC {
		stack = append(stack, d)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range s.nodes.get(cur).parents {
			if seen[p] {
				continue
			}
			seen[p] = true
			stack = append(stack, p)
			if !descC[p] && !ancSelfC[p] {
				members[p] = true
			}
		}
	}

	out := make([]ID, 0, len(members))
	for m := range members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// lub computes the unique least upper bound of members under the ownership
// order (X ≥ Y iff X transitively owns Y or X == Y). It returns ok=false
// when no unique lub exists.
func (s *Snapshot) lub(members []ID) (ID, bool) {
	if len(members) == 0 {
		return None, false
	}
	// Common ancestors-or-self of every member.
	common := s.ancSet(members[0])
	for _, m := range members[1:] {
		next := s.ancSet(m)
		for c := range common {
			if !next[c] {
				delete(common, c)
			}
		}
		if len(common) == 0 {
			return None, false
		}
	}
	minima := s.minima(common)
	if len(minima) == 1 {
		return minima[0], true
	}
	return None, false
}

// minima returns the minimal elements of set under the ownership order
// (those with no strict descendant inside the set).
func (s *Snapshot) minima(set map[ID]bool) []ID {
	var minima []ID
	for c := range set {
		hasLower := false
		stack := append([]ID(nil), s.nodes.get(c).children...)
		seen := make(map[ID]bool)
		for len(stack) > 0 && !hasLower {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[cur] {
				continue
			}
			seen[cur] = true
			if set[cur] {
				hasLower = true
				break
			}
			stack = append(stack, s.nodes.get(cur).children...)
		}
		if !hasLower {
			minima = append(minima, c)
		}
	}
	sort.Slice(minima, func(i, j int) bool { return minima[i] < minima[j] })
	return minima
}

// maxima returns the maximal elements of members under the ownership order
// (those not strictly owned by another member).
func (s *Snapshot) maxima(members []ID) []ID {
	memberSet := make(map[ID]bool, len(members))
	for _, m := range members {
		memberSet[m] = true
	}
	var maxima []ID
	for _, m := range members {
		hasUpper := false
		stack := append([]ID(nil), s.nodes.get(m).parents...)
		seen := make(map[ID]bool)
		for len(stack) > 0 && !hasUpper {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[cur] {
				continue
			}
			seen[cur] = true
			if memberSet[cur] {
				hasUpper = true
				break
			}
			stack = append(stack, s.nodes.get(cur).parents...)
		}
		if !hasUpper {
			maxima = append(maxima, m)
		}
	}
	sort.Slice(maxima, func(i, j int) bool { return maxima[i] < maxima[j] })
	return maxima
}

// leafDomCacheStable audits whether the dominator cache can be carried to
// the snapshot that adds a fresh leaf under the given parents.
//
// A single-owner leaf introduces no new sharing: the only new share member
// any ancestor A gains is L's sole parent P, which lies on the A→L path and
// is therefore already ≤ A; no lub can move, so every cache entry stays.
//
// A multi-owner leaf L enlarges share(A) for every ancestor A of L: set 1
// gains L's parents, and set 2 gains every ancestor of those parents that is
// incomparable to A. A cached dom(A) stays valid iff it already covers every
// such potential new member. The check below verifies that condition for
// every cached ancestor entry; if any entry would move — or a parent's own
// dominator is unknown — the whole cache is dropped (dominators of contexts
// far from L that share with the parents' subtrees could move too, and
// tracking them precisely is not worth the complexity). In the steady state
// of leaf-creating workloads (TPC-C order creation: dom(District) =
// dom(Customer) = District and Warehouse comparable to both) every check
// passes and no invalidation happens.
//
// next is the snapshot being built (with the leaf already wired in); cache
// is the previous snapshot's handle. Caller holds the writer mutex.
func leafDomCacheStable(next *Snapshot, cache *domCache, leaf ID, parents []ID) bool {
	if len(parents) <= 1 {
		return true
	}
	for _, p := range parents {
		if _, ok := cache.get(p); !ok {
			return false
		}
	}
	// Potential new share members for any ancestor of L: the parents and all
	// their ancestors. Upward chains are short in practice.
	newMembers := make(map[ID]bool)
	parentSet := make(map[ID]bool, len(parents))
	for _, p := range parents {
		parentSet[p] = true
		for a := range next.ancSet(p) {
			newMembers[a] = true
		}
	}
	ancSelfLeaf := next.ancSet(leaf)
	for a := range ancSelfLeaf {
		if a == leaf {
			continue
		}
		cached, ok := cache.get(a)
		if !ok {
			continue
		}
		ancSelfA := next.ancSet(a)
		ancSelfDom := next.ancSet(cached)
		for m := range newMembers {
			if m == a {
				continue
			}
			if !parentSet[m] {
				// Non-parent ancestors join share(A) only when incomparable
				// to A (set 2); comparable ones are not members.
				if ancSelfA[m] || next.ancSet(m)[a] {
					continue
				}
			}
			// Member m must already be covered by the cached dominator:
			// cached ≥ m, i.e. cached ∈ ancestors-or-self of m.
			if m != cached && !next.inAncSelf(m, cached, ancSelfDom) {
				return false
			}
		}
	}
	return true
}

// inAncSelf reports whether dom is an ancestor-or-self of m. ancSelfDom (the
// ancestors of dom) is passed in to short-circuit the common case where m is
// below dom on a chain through dom.
func (s *Snapshot) inAncSelf(m, dom ID, ancSelfDom map[ID]bool) bool {
	if ancSelfDom[m] {
		// m is an ancestor of dom; dom cannot cover it (m != dom checked).
		return false
	}
	return s.ancSet(m)[dom]
}

func joinKey(ids []ID) string {
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", uint64(id))
	}
	return b.String()
}
