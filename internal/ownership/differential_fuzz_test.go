package ownership

import (
	"math/rand"
	"sort"
	"testing"
)

// This file pins the graph's semantics with a differential fuzzer: random
// mutation scripts run against both the copy-on-write Graph and refModel, a
// deliberately naive single-threaded reference that recomputes everything
// from the paper's literal definitions with full scans. After every step the
// two must agree on membership, adjacency, Dom, Owns, Desc, Roots and Path.
// Virtual contexts minted by the real graph are mirrored into the reference
// as soon as they appear, so the models stay in lockstep across the
// semi-lattice repair cases too.

// refModel is the brute-force reference implementation.
type refModel struct {
	nodes map[ID]*refNode
}

type refNode struct {
	class    string
	parents  map[ID]bool
	children map[ID]bool
}

func newRefModel() *refModel {
	return &refModel{nodes: make(map[ID]*refNode)}
}

func (r *refModel) contains(id ID) bool { _, ok := r.nodes[id]; return ok }

func (r *refModel) ids() []ID {
	out := make([]ID, 0, len(r.nodes))
	for id := range r.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (r *refModel) add(id ID, class string, parents []ID) bool {
	for _, p := range parents {
		if !r.contains(p) {
			return false
		}
	}
	n := &refNode{class: class, parents: make(map[ID]bool), children: make(map[ID]bool)}
	r.nodes[id] = n
	for _, p := range parents {
		if n.parents[p] {
			continue
		}
		n.parents[p] = true
		r.nodes[p].children[id] = true
	}
	return true
}

func (r *refModel) addEdge(parent, child ID) bool {
	pn, pok := r.nodes[parent]
	cn, cok := r.nodes[child]
	if !pok || !cok || pn.children[child] || parent == child || r.reachableDown(child, parent) {
		return false
	}
	pn.children[child] = true
	cn.parents[parent] = true
	return true
}

func (r *refModel) removeEdge(parent, child ID) bool {
	pn, pok := r.nodes[parent]
	cn, cok := r.nodes[child]
	if !pok || !cok || !pn.children[child] {
		return false
	}
	delete(pn.children, child)
	delete(cn.parents, parent)
	return true
}

func (r *refModel) removeContext(id ID) bool {
	n, ok := r.nodes[id]
	if !ok || len(n.parents) != 0 || len(n.children) != 0 {
		return false
	}
	delete(r.nodes, id)
	return true
}

func (r *refModel) detach(id ID) bool {
	n, ok := r.nodes[id]
	if !ok {
		return false
	}
	for p := range n.parents {
		delete(r.nodes[p].children, id)
	}
	for c := range n.children {
		delete(r.nodes[c].parents, id)
	}
	delete(r.nodes, id)
	return true
}

// reachableDown reports whether to is reachable from from via child edges.
func (r *refModel) reachableDown(from, to ID) bool {
	if from == to {
		return true
	}
	seen := map[ID]bool{from: true}
	stack := []ID{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := range r.nodes[cur].children {
			if c == to {
				return true
			}
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return false
}

func (r *refModel) descSet(id ID) map[ID]bool {
	set := make(map[ID]bool)
	for other := range r.nodes {
		if other != id && r.reachableDown(id, other) {
			set[other] = true
		}
	}
	return set
}

func (r *refModel) ancSelfSet(id ID) map[ID]bool {
	set := map[ID]bool{id: true}
	for other := range r.nodes {
		if other != id && r.reachableDown(other, id) {
			set[other] = true
		}
	}
	return set
}

// shareMembers evaluates share(G,C) ∪ {C} from the paper's literal
// definition with full scans over all contexts.
func (r *refModel) shareMembers(id ID) []ID {
	descC := r.descSet(id)
	members := map[ID]bool{id: true}
	for other, on := range r.nodes {
		if other == id {
			continue
		}
		inFirst := false
		for ch := range on.children {
			if descC[ch] {
				inFirst = true
				break
			}
		}
		inSecond := false
		if !inFirst && !descC[other] && !r.reachableDown(other, id) {
			for d := range r.descSet(other) {
				if descC[d] {
					inSecond = true
					break
				}
			}
		}
		if inFirst || inSecond {
			members[other] = true
		}
	}
	out := make([]ID, 0, len(members))
	for m := range members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// dom computes lub(share ∪ {C}); ok=false when no unique lub exists.
func (r *refModel) dom(id ID) (ID, bool) {
	members := r.shareMembers(id)
	common := r.ancSelfSet(members[0])
	for _, m := range members[1:] {
		next := r.ancSelfSet(m)
		for c := range common {
			if !next[c] {
				delete(common, c)
			}
		}
	}
	if len(common) == 0 {
		return None, false
	}
	var minima []ID
	for c := range common {
		hasLower := false
		for o := range common {
			if o != c && r.reachableDown(c, o) {
				hasLower = true
				break
			}
		}
		if !hasLower {
			minima = append(minima, c)
		}
	}
	if len(minima) == 1 {
		return minima[0], true
	}
	return None, false
}

// script interpreter ------------------------------------------------------

type scriptReader struct {
	buf []byte
	pos int
}

func (s *scriptReader) next() (byte, bool) {
	if s.pos >= len(s.buf) {
		return 0, false
	}
	b := s.buf[s.pos]
	s.pos++
	return b, true
}

// pick selects a live context deterministically from one script byte.
func pick(ids []ID, b byte) (ID, bool) {
	if len(ids) == 0 {
		return None, false
	}
	return ids[int(b)%len(ids)], true
}

const maxScriptOps = 48

// runDifferential interprets one fuzz script against both models, verifying
// full agreement after every mutation.
func runDifferential(t *testing.T, script []byte) {
	t.Helper()
	g := NewGraph()
	ref := newRefModel()

	// Both start from one root so early ops have something to attach to.
	root, err := g.AddContext("root")
	if err != nil {
		t.Fatal(err)
	}
	ref.add(root, "root", nil)

	rd := &scriptReader{buf: script}
	for op := 0; op < maxScriptOps; op++ {
		code, ok := rd.next()
		if !ok {
			break
		}
		ids := ref.ids()
		switch code % 8 {
		case 0, 1: // single-owner leaf
			pb, ok := rd.next()
			if !ok {
				break
			}
			p, ok := pick(ids, pb)
			if !ok {
				continue
			}
			id, err := g.AddContext("n", p)
			if err != nil {
				t.Fatalf("AddContext(%v): %v", p, err)
			}
			ref.add(id, "n", []ID{p})
		case 2: // shared leaf (the TPC-C hot mutation)
			pb1, ok1 := rd.next()
			pb2, ok2 := rd.next()
			if !ok1 || !ok2 {
				break
			}
			p1, _ := pick(ids, pb1)
			p2, _ := pick(ids, pb2)
			id, err := g.AddContext("shared", p1, p2)
			if err != nil {
				t.Fatalf("AddContext(%v,%v): %v", p1, p2, err)
			}
			ref.add(id, "shared", []ID{p1, p2})
		case 3: // add edge
			pb1, ok1 := rd.next()
			pb2, ok2 := rd.next()
			if !ok1 || !ok2 {
				break
			}
			p, _ := pick(ids, pb1)
			c, _ := pick(ids, pb2)
			realOK := g.AddEdge(p, c) == nil
			refOK := ref.addEdge(p, c)
			if realOK != refOK {
				t.Fatalf("AddEdge(%v,%v): real=%v ref=%v", p, c, realOK, refOK)
			}
		case 4: // remove edge
			pb1, ok1 := rd.next()
			pb2, ok2 := rd.next()
			if !ok1 || !ok2 {
				break
			}
			p, _ := pick(ids, pb1)
			c, _ := pick(ids, pb2)
			realOK := g.RemoveEdge(p, c) == nil
			refOK := ref.removeEdge(p, c)
			if realOK != refOK {
				t.Fatalf("RemoveEdge(%v,%v): real=%v ref=%v", p, c, realOK, refOK)
			}
		case 5: // detach
			pb, ok := rd.next()
			if !ok {
				break
			}
			id, ok := pick(ids, pb)
			if !ok || id == root {
				continue
			}
			realOK := g.DetachContext(id) == nil
			refOK := ref.detach(id)
			if realOK != refOK {
				t.Fatalf("DetachContext(%v): real=%v ref=%v", id, realOK, refOK)
			}
		case 6: // remove (edgeless only)
			pb, ok := rd.next()
			if !ok {
				break
			}
			id, ok := pick(ids, pb)
			if !ok || id == root {
				continue
			}
			realOK := g.RemoveContext(id) == nil
			refOK := ref.removeContext(id)
			if realOK != refOK {
				t.Fatalf("RemoveContext(%v): real=%v ref=%v", id, realOK, refOK)
			}
		case 7: // mid-script dominator query (may mint a virtual)
			pb, ok := rd.next()
			if !ok {
				break
			}
			id, ok := pick(ids, pb)
			if !ok {
				continue
			}
			checkDomAgree(t, g, ref, id)
		}
		checkAgree(t, g, ref)
	}
	// Final sweep: dominators of every context.
	for _, id := range ref.ids() {
		checkDomAgree(t, g, ref, id)
	}
	checkAgree(t, g, ref)
}

// maxima returns the maximal elements of members (those not strictly owned
// by another member).
func (r *refModel) maxima(members []ID) []ID {
	var out []ID
	for _, m := range members {
		owned := false
		for _, o := range members {
			if o != m && r.reachableDown(o, m) {
				owned = true
				break
			}
		}
		if !owned {
			out = append(out, m)
		}
	}
	return out
}

// checkDomAgree compares one dominator query against the literal definition,
// mirroring freshly minted virtual contexts into the reference.
//
// The contract: when share ∪ {C} has a unique lub, Dom returns exactly it;
// when it does not, Dom returns a virtual context directly owning every
// maximal member (the memoized semi-lattice repair). In both cases the
// result must be an upper bound of every share member.
func checkDomAgree(t *testing.T, g *Graph, ref *refModel, id ID) {
	t.Helper()
	d, err := g.Dom(id)
	if err != nil {
		t.Fatalf("Dom(%v): %v\n%s", id, err, g.DumpDOT())
	}
	if !ref.contains(d) {
		// Must be a virtual join minted by this query: mirror it.
		class, cerr := g.Class(d)
		if cerr != nil || class != VirtualClass {
			t.Fatalf("Dom(%v) = %v: unknown non-virtual context (class %q, %v)", id, d, class, cerr)
		}
		children, _ := g.Children(d)
		ref.add(d, VirtualClass, nil)
		for _, c := range children {
			if !ref.addEdge(d, c) {
				t.Fatalf("cannot mirror virtual edge %v→%v into reference", d, c)
			}
		}
	}
	members := ref.shareMembers(id)
	for _, m := range members {
		if d != m && !ref.reachableDown(d, m) {
			t.Fatalf("Dom(%v) = %v does not own share member %v\n%s", id, d, m, g.DumpDOT())
		}
	}
	if want, unique := ref.dom(id); unique {
		if d != want {
			t.Fatalf("Dom(%v) = %v; reference lub is %v\n%s", id, d, want, g.DumpDOT())
		}
		return
	}
	// Ambiguous lub: the answer must be a virtual join covering the maxima
	// directly (a fresh mint or a still-valid memo entry).
	if class, _ := g.Class(d); class != VirtualClass {
		t.Fatalf("Dom(%v) = %v (class %q); reference has no unique lub, want a virtual join\n%s",
			id, d, class, g.DumpDOT())
	}
	for _, m := range ref.maxima(members) {
		if !ref.nodes[d].children[m] {
			t.Fatalf("Dom(%v) = virtual %v does not directly own maximum %v\n%s", id, d, m, g.DumpDOT())
		}
	}
}

// checkAgree compares the full observable state of both models.
func checkAgree(t *testing.T, g *Graph, ref *refModel) {
	t.Helper()
	s := g.Snapshot()
	realIDs := s.IDs()
	refIDs := ref.ids()
	if len(realIDs) != len(refIDs) {
		t.Fatalf("membership: real %v vs ref %v\n%s", realIDs, refIDs, s.DumpDOT())
	}
	for i := range realIDs {
		if realIDs[i] != refIDs[i] {
			t.Fatalf("membership: real %v vs ref %v", realIDs, refIDs)
		}
	}
	if s.Len() != len(refIDs) {
		t.Fatalf("Len = %d; ref has %d", s.Len(), len(refIDs))
	}

	var refRoots []ID
	for _, id := range refIDs {
		n := ref.nodes[id]

		class, err := s.Class(id)
		if err != nil || class != n.class {
			t.Fatalf("Class(%v) = %q, %v; ref %q", id, class, err, n.class)
		}
		children, err := s.Children(id)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDSet(children, n.children) {
			t.Fatalf("Children(%v) = %v; ref %v", id, children, keys(n.children))
		}
		parents, err := s.Parents(id)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDSet(parents, n.parents) {
			t.Fatalf("Parents(%v) = %v; ref %v", id, parents, keys(n.parents))
		}
		desc, err := s.Desc(id)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDSet(desc, ref.descSet(id)) {
			t.Fatalf("Desc(%v) = %v; ref %v", id, desc, keys(ref.descSet(id)))
		}
		if len(n.parents) == 0 {
			refRoots = append(refRoots, id)
		}
	}
	roots := s.Roots()
	if len(roots) != len(refRoots) {
		t.Fatalf("Roots = %v; ref %v", roots, refRoots)
	}
	for i := range roots {
		if roots[i] != refRoots[i] {
			t.Fatalf("Roots = %v; ref %v", roots, refRoots)
		}
	}

	// Owns and Path over sampled pairs.
	n := len(refIDs)
	for i, a := range refIDs {
		b := refIDs[(i*7+3)%n]
		reach := a != b && ref.reachableDown(a, b)
		if got := s.Owns(a, b); got != reach {
			t.Fatalf("Owns(%v,%v) = %v; ref %v", a, b, got, reach)
		}
		path, err := s.Path(a, b)
		if reachable := a == b || reach; (err == nil) != reachable {
			t.Fatalf("Path(%v,%v) err=%v; ref reachable=%v", a, b, err, reachable)
		}
		if err == nil {
			if path[0] != a || path[len(path)-1] != b {
				t.Fatalf("Path(%v,%v) endpoints: %v", a, b, path)
			}
			for j := 0; j < len(path)-1; j++ {
				if !ref.nodes[path[j]].children[path[j+1]] {
					t.Fatalf("Path(%v,%v) step %v→%v is not an edge", a, b, path[j], path[j+1])
				}
			}
		}
	}
}

func sameIDSet(got []ID, want map[ID]bool) bool {
	if len(got) != len(want) {
		return false
	}
	for _, id := range got {
		if !want[id] {
			return false
		}
	}
	return true
}

func keys(m map[ID]bool) []ID {
	out := make([]ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FuzzGraphDifferential is the go test -fuzz entry point; the seed corpus
// covers tree growth, shared leaves, edge churn, detaches and the
// virtual-join regression shape.
func FuzzGraphDifferential(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 0, 2, 2, 1, 2}) // small tree + shared leaf
	f.Add([]byte{2, 0, 0, 7, 1, 4, 3, 1, 4, 3, 2, 7, 1})
	f.Add([]byte{0, 0, 2, 1, 1, 7, 2, 5, 3, 7, 0, 6, 3})
	f.Add([]byte{2, 0, 0, 2, 1, 1, 2, 2, 2, 7, 3, 7, 4, 5, 5, 5, 6})
	f.Add([]byte{1, 0, 1, 1, 1, 2, 3, 0, 3, 4, 0, 3, 7, 2, 7, 3, 7, 4})
	f.Fuzz(func(t *testing.T, script []byte) {
		runDifferential(t, script)
	})
}

// TestGraphDifferentialSeededScripts runs the differential check over a
// deterministic pseudorandom corpus on every plain `go test`, so the
// equivalence is exercised in CI even without -fuzz.
func TestGraphDifferentialSeededScripts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 250; trial++ {
		script := make([]byte, rng.Intn(96))
		rng.Read(script)
		runDifferential(t, script)
	}
}
