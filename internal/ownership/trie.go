package ownership

// trie is a persistent (path-copying) radix tree mapping context IDs to
// nodes. IDs are dense integers assigned sequentially by the graph and never
// reused, so a fixed-radix tree over the ID bits gives O(log₆₄ n) lookups and
// lets a mutation share every untouched block with the previous version:
// setting one entry copies only the blocks on the root→value path (64
// pointers per level), never the whole map. This is what keeps leaf creation
// — the TPC-C hot mutation — O(parents) instead of O(graph).
//
// A trie is immutable once published inside a Snapshot; set and delete
// return new tries sharing structure with the receiver.

const (
	trieBits  = 6
	trieWidth = 1 << trieBits
	trieMask  = trieWidth - 1
)

// trieBlock is one radix block: interior blocks route through kids, bottom
// blocks hold the values. Exactly one of the two slices is non-nil.
type trieBlock struct {
	kids []*trieBlock
	vals []*node
}

type trie struct {
	root   *trieBlock
	height uint // radix levels between the root and the value blocks
	size   int
}

// capacity is the exclusive upper bound of IDs representable at the current
// height.
func (t *trie) capacity() uint64 {
	if t.root == nil {
		return 0
	}
	return 1 << ((t.height + 1) * trieBits)
}

func (t *trie) len() int { return t.size }

// get returns the node stored for id, or nil.
func (t *trie) get(id ID) *node {
	u := uint64(id)
	if t.root == nil || u >= t.capacity() {
		return nil
	}
	b := t.root
	for h := t.height; h > 0; h-- {
		b = b.kids[(u>>(h*trieBits))&trieMask]
		if b == nil {
			return nil
		}
	}
	return b.vals[u&trieMask]
}

// set returns a trie with id mapped to v (non-nil), sharing every untouched
// block with the receiver.
func (t *trie) set(id ID, v *node) *trie {
	u := uint64(id)
	root, height := t.root, t.height
	if root == nil {
		root, height = newBlock(0), 0
	}
	for u >= 1<<((height+1)*trieBits) {
		grown := newBlock(height + 1)
		grown.kids[0] = root
		root, height = grown, height+1
	}
	size := t.size
	if t.get(id) == nil {
		size++
	}
	return &trie{root: setPath(root, height, u, v), height: height, size: size}
}

// delete returns a trie without id. Blocks are not shrunk or reclaimed: IDs
// are never reused, so a drained block stays sparse but correct.
func (t *trie) delete(id ID) *trie {
	if t.get(id) == nil {
		return t
	}
	return &trie{root: setPath(t.root, t.height, uint64(id), nil), height: t.height, size: t.size - 1}
}

// walk visits every stored node in ascending ID order.
func (t *trie) walk(fn func(*node)) {
	walkBlock(t.root, fn)
}

func newBlock(h uint) *trieBlock {
	if h == 0 {
		return &trieBlock{vals: make([]*node, trieWidth)}
	}
	return &trieBlock{kids: make([]*trieBlock, trieWidth)}
}

// setPath path-copies the blocks from b down to id's value slot.
func setPath(b *trieBlock, h uint, u uint64, v *node) *trieBlock {
	if h == 0 {
		c := &trieBlock{vals: append([]*node(nil), b.vals...)}
		c.vals[u&trieMask] = v
		return c
	}
	c := &trieBlock{kids: append([]*trieBlock(nil), b.kids...)}
	idx := (u >> (h * trieBits)) & trieMask
	child := c.kids[idx]
	if child == nil {
		child = newBlock(h - 1)
	}
	c.kids[idx] = setPath(child, h-1, u, v)
	return c
}

func walkBlock(b *trieBlock, fn func(*node)) {
	if b == nil {
		return
	}
	if b.vals != nil {
		for _, v := range b.vals {
			if v != nil {
				fn(v)
			}
		}
		return
	}
	for _, k := range b.kids {
		walkBlock(k, fn)
	}
}
