// Package ownership implements AEON's context ownership network (§ 3 of the
// paper): a directed acyclic graph of contexts in which an edge parent→child
// means the parent "directly owns" the child. The graph supports the
// dominator computation dom(G,C) = lub(share(G,C) ∪ {C}) that the runtime
// uses as the sequencing point for events, path finding for top-down lock
// activation, and dynamic mutation (context creation, ownership edge changes,
// context removal) with acyclicity enforcement.
//
// The paper models the network as a join semi-lattice; when a dominator query
// discovers multiple minimal common ancestors (the "multiple maxima which
// share common descendants" case of § 3), the graph transparently inserts an
// unnamed virtual context owning them, exactly as the paper's footnote
// prescribes.
package ownership

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ID identifies a context in the ownership network. IDs are assigned by the
// graph and are never reused.
type ID uint64

// None is the zero ID; it never names a valid context.
const None ID = 0

// String renders the ID for logs and errors.
func (id ID) String() string { return fmt.Sprintf("ctx#%d", uint64(id)) }

// VirtualClass is the class name given to unnamed contexts the graph inserts
// to restore the join semi-lattice property.
const VirtualClass = "__virtual__"

var (
	// ErrNotFound is returned when an ID does not name a context.
	ErrNotFound = errors.New("ownership: context not found")
	// ErrCycle is returned when a mutation would create an ownership cycle.
	ErrCycle = errors.New("ownership: mutation would create a cycle")
	// ErrExists is returned when an edge or context already exists.
	ErrExists = errors.New("ownership: already exists")
	// ErrHasEdges is returned when removing a context that still owns or is
	// owned by others.
	ErrHasEdges = errors.New("ownership: context still has ownership edges")
	// ErrNoPath is returned when no downward path connects two contexts.
	ErrNoPath = errors.New("ownership: no ownership path")
)

type node struct {
	id       ID
	class    string
	parents  []ID
	children []ID
}

// Graph is a mutable, internally synchronized ownership network.
//
// The zero value is not usable; construct with NewGraph.
type Graph struct {
	mu      sync.RWMutex
	nodes   map[ID]*node
	nextID  ID
	version uint64

	// domCache memoizes dominator results; entries are invalidated precisely
	// on mutation (see invalidateUp) so that steady-state workloads that
	// create fresh leaf contexts (e.g. TPC-C orders) do not pay repeated
	// recomputation for stable interior contexts.
	domCache map[ID]ID
	// virtualJoin memoizes virtual contexts created for a given set of
	// minimal upper bounds so repeated queries reuse the same context.
	virtualJoin map[string]ID
}

// NewGraph returns an empty ownership network.
func NewGraph() *Graph {
	return &Graph{
		nodes:       make(map[ID]*node),
		nextID:      1,
		domCache:    make(map[ID]ID),
		virtualJoin: make(map[string]ID),
	}
}

// Version returns a counter incremented by every mutation. Server-side
// caches use it to detect staleness.
func (g *Graph) Version() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.version
}

// Len reports the number of contexts in the network.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// AddContext creates a new context of the given class owned by the given
// parents and returns its ID. Creating a context with no parents makes it a
// root. A fresh context is necessarily a leaf, so this mutation can never
// introduce a cycle; dominator caches of its ancestors are updated
// incrementally rather than invalidated wholesale.
func (g *Graph) AddContext(class string, parents ...ID) (ID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()

	for _, p := range parents {
		if _, ok := g.nodes[p]; !ok {
			return None, fmt.Errorf("parent %v: %w", p, ErrNotFound)
		}
	}
	id := g.nextID
	g.nextID++
	n := &node{id: id, class: class}
	g.nodes[id] = n
	seen := make(map[ID]bool, len(parents))
	for _, p := range parents {
		if seen[p] {
			continue
		}
		seen[p] = true
		n.parents = append(n.parents, p)
		pn := g.nodes[p]
		pn.children = append(pn.children, id)
	}
	g.version++
	g.reviewDomsForNewLeaf(id, n.parents)
	return id, nil
}

// Class reports the class of a context.
func (g *Graph) Class(id ID) (string, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	if !ok {
		return "", fmt.Errorf("%v: %w", id, ErrNotFound)
	}
	return n.class, nil
}

// Contains reports whether the context exists.
func (g *Graph) Contains(id ID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.nodes[id]
	return ok
}

// AddEdge records that parent directly owns child. It fails with ErrCycle if
// the edge would make the network cyclic.
func (g *Graph) AddEdge(parent, child ID) error {
	g.mu.Lock()
	defer g.mu.Unlock()

	pn, ok := g.nodes[parent]
	if !ok {
		return fmt.Errorf("parent %v: %w", parent, ErrNotFound)
	}
	cn, ok := g.nodes[child]
	if !ok {
		return fmt.Errorf("child %v: %w", child, ErrNotFound)
	}
	for _, c := range pn.children {
		if c == child {
			return fmt.Errorf("edge %v→%v: %w", parent, child, ErrExists)
		}
	}
	if parent == child || g.reachableLocked(child, parent) {
		return fmt.Errorf("edge %v→%v: %w", parent, child, ErrCycle)
	}
	pn.children = append(pn.children, child)
	cn.parents = append(cn.parents, parent)
	g.version++
	g.invalidateAllLocked()
	return nil
}

// RemoveEdge deletes a direct-ownership edge.
func (g *Graph) RemoveEdge(parent, child ID) error {
	g.mu.Lock()
	defer g.mu.Unlock()

	pn, ok := g.nodes[parent]
	if !ok {
		return fmt.Errorf("parent %v: %w", parent, ErrNotFound)
	}
	cn, ok := g.nodes[child]
	if !ok {
		return fmt.Errorf("child %v: %w", child, ErrNotFound)
	}
	if !removeID(&pn.children, child) {
		return fmt.Errorf("edge %v→%v: %w", parent, child, ErrNotFound)
	}
	removeID(&cn.parents, parent)
	g.version++
	g.invalidateAllLocked()
	return nil
}

// RemoveContext deletes a context that has no remaining ownership edges.
func (g *Graph) RemoveContext(id ID) error {
	g.mu.Lock()
	defer g.mu.Unlock()

	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("%v: %w", id, ErrNotFound)
	}
	if len(n.parents) != 0 || len(n.children) != 0 {
		return fmt.Errorf("%v: %w", id, ErrHasEdges)
	}
	delete(g.nodes, id)
	delete(g.domCache, id)
	g.version++
	return nil
}

// DetachContext removes every ownership edge touching id and then deletes the
// context. Used when destroying subtree leaves (e.g. delivered orders).
func (g *Graph) DetachContext(id ID) error {
	g.mu.Lock()
	defer g.mu.Unlock()

	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("%v: %w", id, ErrNotFound)
	}
	for _, p := range n.parents {
		removeID(&g.nodes[p].children, id)
	}
	for _, c := range n.children {
		removeID(&g.nodes[c].parents, id)
	}
	delete(g.nodes, id)
	g.version++
	g.invalidateAllLocked()
	return nil
}

// Children returns a copy of the direct children of id.
func (g *Graph) Children(id ID) ([]ID, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	if !ok {
		return nil, fmt.Errorf("%v: %w", id, ErrNotFound)
	}
	out := make([]ID, len(n.children))
	copy(out, n.children)
	return out, nil
}

// Parents returns a copy of the direct owners of id.
func (g *Graph) Parents(id ID) ([]ID, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	if !ok {
		return nil, fmt.Errorf("%v: %w", id, ErrNotFound)
	}
	out := make([]ID, len(n.parents))
	copy(out, n.parents)
	return out, nil
}

// OwnsDirectly reports whether parent directly owns child.
func (g *Graph) OwnsDirectly(parent, child ID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	pn, ok := g.nodes[parent]
	if !ok {
		return false
	}
	for _, c := range pn.children {
		if c == child {
			return true
		}
	}
	return false
}

// Owns reports whether anc transitively owns desc (strictly).
func (g *Graph) Owns(anc, desc ID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if anc == desc {
		return false
	}
	return g.reachableLocked(anc, desc)
}

// Desc returns the strict descendants of id (excluding id itself), in
// unspecified order.
func (g *Graph) Desc(id ID) ([]ID, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.nodes[id]; !ok {
		return nil, fmt.Errorf("%v: %w", id, ErrNotFound)
	}
	set := g.descSetLocked(id)
	out := make([]ID, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Roots returns the contexts with no owners.
func (g *Graph) Roots() []ID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []ID
	for id, n := range g.nodes {
		if len(n.parents) == 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Path returns a downward direct-ownership path from anc to desc, inclusive
// on both ends. If anc == desc the path is the single context. The runtime
// activates the returned contexts top-down when escorting an event from its
// dominator to its target (Algorithm 2, activatePath).
func (g *Graph) Path(anc, desc ID) ([]ID, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.nodes[anc]; !ok {
		return nil, fmt.Errorf("%v: %w", anc, ErrNotFound)
	}
	if _, ok := g.nodes[desc]; !ok {
		return nil, fmt.Errorf("%v: %w", desc, ErrNotFound)
	}
	if anc == desc {
		return []ID{anc}, nil
	}
	// BFS upward from desc to anc following parent edges; shortest path.
	prev := map[ID]ID{desc: None}
	queue := []ID{desc}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range g.nodes[cur].parents {
			if _, seen := prev[p]; seen {
				continue
			}
			prev[p] = cur
			if p == anc {
				var path []ID
				for c := anc; c != None; c = prev[c] {
					path = append(path, c)
				}
				return path, nil
			}
			queue = append(queue, p)
		}
	}
	return nil, fmt.Errorf("%v→%v: %w", anc, desc, ErrNoPath)
}

// reachableLocked reports whether to is reachable from from via child edges.
func (g *Graph) reachableLocked(from, to ID) bool {
	if from == to {
		return true
	}
	seen := map[ID]bool{from: true}
	stack := []ID{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.nodes[cur].children {
			if c == to {
				return true
			}
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return false
}

// descSetLocked computes the strict descendant set of id.
func (g *Graph) descSetLocked(id ID) map[ID]bool {
	set := make(map[ID]bool)
	stack := []ID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.nodes[cur].children {
			if !set[c] {
				set[c] = true
				stack = append(stack, c)
			}
		}
	}
	return set
}

// ancSetLocked computes the ancestors-or-self set of id.
func (g *Graph) ancSetLocked(id ID) map[ID]bool {
	set := map[ID]bool{id: true}
	stack := []ID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.nodes[cur].parents {
			if !set[p] {
				set[p] = true
				stack = append(stack, p)
			}
		}
	}
	return set
}

func (g *Graph) invalidateAllLocked() {
	// Structural edge mutations can move dominators arbitrarily; wholesale
	// invalidation keeps correctness simple. The hot mutation path (fresh
	// leaf creation via AddContext) avoids this entirely.
	clear(g.domCache)
}

// reviewDomsForNewLeaf audits cached dominators after a fresh leaf L was
// added under the given parents.
//
// A single-owner leaf introduces no new sharing: the only new share member
// any ancestor A gains is L's sole parent P, which lies on the A→L path and
// is therefore already ≤ A; no lub can move, so every cache entry stays.
//
// A multi-owner leaf L enlarges share(A) for every ancestor A of L: set 1
// gains L's parents, and set 2 gains every ancestor of those parents that is
// incomparable to A. A cached dom(A) stays valid iff it already covers every
// such potential new member. The check below verifies that condition for
// every cached ancestor entry; if any entry would move — or a parent's own
// dominator is unknown — the whole cache is dropped (dominators of contexts
// far from L that share with the parents' subtrees could move too, and
// tracking them precisely is not worth the complexity). In the steady state
// of leaf-creating workloads (TPC-C order creation: dom(District) =
// dom(Customer) = District and Warehouse comparable to both) every check
// passes and no invalidation happens.
func (g *Graph) reviewDomsForNewLeaf(leaf ID, parents []ID) {
	if len(parents) <= 1 {
		return
	}
	for _, p := range parents {
		if _, ok := g.domCache[p]; !ok {
			g.invalidateAllLocked()
			return
		}
	}
	// Potential new share members for any ancestor of L: the parents and all
	// their ancestors. Upward chains are short in practice.
	newMembers := make(map[ID]bool)
	parentSet := make(map[ID]bool, len(parents))
	for _, p := range parents {
		parentSet[p] = true
		for a := range g.ancSetLocked(p) {
			newMembers[a] = true
		}
	}
	ancSelfLeaf := g.ancSetLocked(leaf)
	for a := range ancSelfLeaf {
		if a == leaf {
			continue
		}
		cached, ok := g.domCache[a]
		if !ok {
			continue
		}
		ancSelfA := g.ancSetLocked(a)
		ancSelfDom := g.ancSetLocked(cached)
		for m := range newMembers {
			if m == a {
				continue
			}
			if !parentSet[m] {
				// Non-parent ancestors join share(A) only when incomparable
				// to A (set 2); comparable ones are not members.
				if ancSelfA[m] || g.ancSetLocked(m)[a] {
					continue
				}
			}
			// Member m must already be covered by the cached dominator:
			// cached ≥ m, i.e. cached ∈ ancestors-or-self of m.
			if m != cached && !containsInAncSelf(g, m, cached, ancSelfDom) {
				g.invalidateAllLocked()
				return
			}
		}
	}
}

// containsInAncSelf reports whether dom is an ancestor-or-self of m.
// ancSelfDom (the ancestors of dom) is passed in to short-circuit the
// common case where m is below dom on a chain through dom.
func containsInAncSelf(g *Graph, m, dom ID, ancSelfDom map[ID]bool) bool {
	if ancSelfDom[m] {
		// m is an ancestor of dom; dom cannot cover it (m != dom checked).
		return false
	}
	return g.ancSetLocked(m)[dom]
}

func removeID(s *[]ID, id ID) bool {
	for i, v := range *s {
		if v == id {
			*s = append((*s)[:i], (*s)[i+1:]...)
			return true
		}
	}
	return false
}

// DumpDOT renders the graph in Graphviz DOT form (debugging aid).
func (g *Graph) DumpDOT() string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var b strings.Builder
	b.WriteString("digraph ownership {\n")
	ids := make([]ID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := g.nodes[id]
		fmt.Fprintf(&b, "  %d [label=%q];\n", uint64(id), fmt.Sprintf("%s#%d", n.class, uint64(id)))
		for _, c := range n.children {
			fmt.Fprintf(&b, "  %d -> %d;\n", uint64(id), uint64(c))
		}
	}
	b.WriteString("}\n")
	return b.String()
}
